// Command rtoss is the CLI front end of the pruning framework:
//
//	rtoss census              kernel-size census of the zoo models
//	rtoss prune [flags]       prune a model and report the accounting
//	rtoss platforms           show the analytic platform models
//	rtoss compare [flags]     full framework comparison on one model
//	rtoss tradeoff [flags]    sparsity/accuracy/latency sweeps
//	rtoss forward [flags]     run the real execution engine (-engine=dense|sparse|auto)
//	rtoss detect [flags]      end-to-end detection: image in, JSON boxes out
//	rtoss serve [flags]       serve a compiled model over HTTP with micro-batching
//	rtoss bench [flags]       single vs batched vs served throughput (optionally as JSON)
//	rtoss eval [flags]        mAP + latency over the synthetic-KITTI set, via any backend
//	rtoss stream [flags]      streaming eval: deadline-hit-rate + mAP over rendered videos
//	rtoss route [flags]       consistent-hash failover router over N serve shards
//	rtoss loadtest [flags]    closed-loop /detect load generator with tail-latency report
//	rtoss chaos [flags]       seeded fault-injection run against an in-process fleet
//
// Run any subcommand with -h for its flags.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"rtoss"
	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/experiments"
	"rtoss/internal/kitti"
	"rtoss/internal/models"
	"rtoss/internal/report"
	"rtoss/internal/rng"
	"rtoss/internal/serve"
	"rtoss/internal/stream"
	"rtoss/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "census":
		err = census()
	case "prune":
		err = pruneCmd(os.Args[2:])
	case "platforms":
		err = platforms()
	case "compare":
		err = compare(os.Args[2:])
	case "tradeoff":
		err = tradeoff(os.Args[2:])
	case "forward":
		err = forward(os.Args[2:])
	case "detect":
		err = detectCmd(os.Args[2:])
	case "serve":
		err = serveCmd(os.Args[2:])
	case "bench":
		err = benchCmd(os.Args[2:])
	case "eval":
		err = evalCmd(os.Args[2:])
	case "stream":
		err = streamCmd(os.Args[2:])
	case "route":
		err = routeCmd(os.Args[2:])
	case "loadtest":
		err = loadtestCmd(os.Args[2:])
	case "chaos":
		err = chaosCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rtoss: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtoss:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println("usage: rtoss <census|prune|platforms|compare|tradeoff|forward|detect|serve|bench|eval|stream|route|loadtest|chaos> [flags]")
}

// evalCmd scores the detection stack with the real mAP evaluator over
// a deterministic synthetic-KITTI scene set. The accuracy section of
// the report is bitwise-identical across backends and engine modes for
// a fixed seed — `-backend=http -mode=sparse` must reproduce
// `-backend=inprocess -mode=dense` exactly.
func evalCmd(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model to evaluate (yolov5s|retinanet)")
	variant := fs.String("variant", "rtoss-3ep", "pruning variant (dense|rtoss-2ep..rtoss-5ep)")
	engineMode := fs.String("mode", "sparse", "kernel dispatch: dense|sparse|auto")
	fs.StringVar(engineMode, "engine", "sparse", "alias of -mode (matches forward/detect/serve)")
	backend := fs.String("backend", "inprocess", "pipeline backend: inprocess|server|http|oracle")
	urlFlag := fs.String("url", "", "score an externally running /detect server (http backend; empty = self-host)")
	scenes := fs.Int("scenes", 8, "synthetic-KITTI scene count")
	seed := fs.Uint64("seed", 1, "scene-set generation seed")
	res := fs.Int("res", 256, "model input resolution (letterboxed; multiple of the head stride)")
	conc := fs.Int("concurrency", 1, "images in flight at once")
	score := fs.Float64("score", 0.25, "confidence threshold in (0, 1]")
	iou := fs.Float64("iou", 0.45, "NMS IoU threshold in (0, 1]")
	evalIoU := fs.Float64("eval-iou", 0.5, "mAP matching IoU threshold")
	exact := fs.Bool("exact", false, "decode with exact float64 math instead of the fast float32 path")
	jsonPath := fs.String("json", "", "also write the report to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := zooName(*modelName)
	if err != nil {
		return err
	}
	mode, err := rtoss.ParseEngineMode(*engineMode)
	if err != nil {
		return err
	}
	rep, err := rtoss.Eval(rtoss.EvalConfig{
		Scenes: *scenes, Seed: *seed,
		Arch: arch, Variant: *variant, Mode: mode, Res: *res,
		Detect:  detect.Config{ScoreThreshold: *score, IoUThreshold: *iou, ExactMath: *exact},
		Backend: *backend, URL: *urlFlag,
		Concurrency: *conc, EvalIoU: *evalIoU,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

// streamCmd replays deterministic moving-scene videos through the
// streaming subsystem (sessions -> deadline-aware scheduler -> batch
// executors) and reports timeliness alongside accuracy. With -golden
// it instead regenerates the committed sample motion frames under
// examples/data (run from the repository root).
func streamCmd(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model to evaluate (yolov5s|retinanet)")
	variant := fs.String("variant", "rtoss-3ep", "pruning variant (dense|rtoss-2ep..rtoss-5ep)")
	engineMode := fs.String("mode", "sparse", "kernel dispatch: dense|sparse|auto")
	fs.StringVar(engineMode, "engine", "sparse", "alias of -mode (matches forward/detect/serve)")
	streams := fs.Int("streams", 2, "concurrent video sessions")
	frames := fs.Int("frames", 30, "frames per stream")
	fps := fs.Float64("fps", 30, "per-stream frame rate (paced mode)")
	budgetMS := fs.Float64("budget-ms", 0, "per-frame deadline budget in ms (0 = 4 frame intervals, <0 = no deadline)")
	lockstep := fs.Bool("lockstep", false, "push each frame only after the previous resolved (drop-free parity mode)")
	seed := fs.Uint64("seed", 1, "video generation seed (stream i renders seed+i)")
	sceneW := fs.Int("scene-w", 320, "rendered frame width")
	sceneH := fs.Int("scene-h", 192, "rendered frame height")
	res := fs.Int("res", 256, "model input resolution (letterboxed; multiple of the head stride)")
	score := fs.Float64("score", 0.25, "confidence threshold in (0, 1]")
	iou := fs.Float64("iou", 0.45, "NMS IoU threshold in (0, 1]")
	evalIoU := fs.Float64("eval-iou", 0.5, "mAP matching IoU threshold")
	exact := fs.Bool("exact", false, "decode with exact float64 math instead of the fast float32 path")
	jsonPath := fs.String("json", "", "also write the report to this JSON file")
	golden := fs.Bool("golden", false, "regenerate examples/data/kitti_motion_NN.ppm and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *golden {
		return regenMotionGoldens()
	}
	arch, err := zooName(*modelName)
	if err != nil {
		return err
	}
	mode, err := rtoss.ParseEngineMode(*engineMode)
	if err != nil {
		return err
	}
	budget := time.Duration(*budgetMS * float64(time.Millisecond))
	if *budgetMS < 0 {
		budget = -1
	}
	rep, err := rtoss.EvalStream(rtoss.StreamEvalConfig{
		Streams: *streams, Frames: *frames, FPS: *fps,
		Budget: budget, Lockstep: *lockstep,
		Seed: *seed, SceneW: *sceneW, SceneH: *sceneH,
		Arch: arch, Variant: *variant, Mode: mode, Res: *res,
		Detect:  detect.Config{ScoreThreshold: *score, IoUThreshold: *iou, ExactMath: *exact},
		EvalIoU: *evalIoU,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

// regenMotionGoldens rewrites the committed sample motion frames that
// TestMotionSequenceMatchesGoldenFrames byte-compares against.
func regenMotionGoldens() error {
	const goldenFrames = 4
	seq := kitti.RenderedSequence(kitti.SampleMotionSeed, goldenFrames, 160, 96)
	for i, rs := range seq {
		path := filepath.Join("examples", "data", fmt.Sprintf("kitti_motion_%02d.ppm", i))
		var buf bytes.Buffer
		if err := tensor.EncodePPM(&buf, rs.Image); err != nil {
			return err
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, buf.Len())
	}
	return nil
}

// zooName maps a CLI model flag to its zoo display name.
func zooName(cli string) (string, error) {
	switch cli {
	case "yolov5s":
		return "YOLOv5s", nil
	case "retinanet":
		return "RetinaNet", nil
	}
	return "", fmt.Errorf("unknown model %q (yolov5s|retinanet)", cli)
}

// serveCmd compiles one model variant through the serving registry and
// exposes it over HTTP with the micro-batching scheduler.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	modelName := fs.String("model", "yolov5s", "model to serve (yolov5s|retinanet)")
	variant := fs.String("variant", "rtoss-3ep", "pruning variant (dense|rtoss-2ep..rtoss-5ep)")
	engineMode := fs.String("engine", "sparse", "kernel dispatch: dense|sparse|auto")
	res := fs.Int("res", 64, "input resolution (HxW) accepted by /infer")
	maxBatch := fs.Int("max-batch", 8, "max images coalesced into one forward")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "max wait for a fuller batch")
	workers := fs.Int("workers", 2, "concurrent batch executors")
	queue := fs.Int("queue", 64, "pending request queue bound")
	shed := fs.Bool("shed", false, "reject with 503 when the queue is full instead of blocking")
	exact := fs.Bool("exact", false, "/detect decodes with exact float64 math instead of the fast float32 path")
	budget := fs.Duration("budget", 0, "default per-frame deadline budget for /stream sessions (0 = no deadline)")
	memBudget := fs.Int64("mem-budget", 0, "max bytes of cached Programs before LRU eviction (0 = unlimited)")
	warmFrom := fs.String("warm-from", "", "peer base URL to fetch a warm Program snapshot from before cold building")
	watchdog := fs.Duration("watchdog", 0, "stuck-batch watchdog allowance: a batch exceeding it is answered with 503 (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := zooName(*modelName)
	if err != nil {
		return err
	}
	mode, err := rtoss.ParseEngineMode(*engineMode)
	if err != nil {
		return err
	}
	// Validate the cheap flag-derived config before the multi-second
	// prune+compile.
	spec, err := models.HeadByName(arch, models.KITTIClasses)
	if err != nil {
		return err
	}
	if s := spec.MaxStride(); *res <= 0 || *res%s != 0 {
		return fmt.Errorf("-res %d must be a positive multiple of the %s head stride %d", *res, arch, s)
	}
	key := serve.Key{Arch: arch, Variant: *variant, Mode: mode}
	reg := serve.NewRegistry()
	if *memBudget > 0 {
		reg.SetBudget(*memBudget)
	}
	start := time.Now()
	var prog *engine.Program
	if *warmFrom != "" {
		// Warm handoff: skip the multi-second prune by installing the
		// peer's snapshot; fall back to a cold build if the peer is
		// down or doesn't have the key yet.
		fmt.Printf("fetching %v snapshot from %s ...\n", key, *warmFrom)
		if snap, err := serve.FetchSnapshot(context.Background(), *warmFrom, key, 0); err != nil {
			fmt.Printf("warm handoff unavailable (%v); cold building\n", err)
		} else if prog, err = reg.Install(key, snap); err != nil {
			return err
		}
	}
	if prog == nil {
		fmt.Printf("compiling %v ...\n", key)
		if prog, err = reg.Program(key); err != nil {
			return err
		}
	}
	p, c := prog.SparseLayers()
	fmt.Printf("compiled in %.2fs (%d pattern-sparse layers, %d CSR layers)\n",
		time.Since(start).Seconds(), p, c)
	srv := serve.NewServer(prog, serve.Config{
		MaxBatch: *maxBatch, MaxDelay: *maxDelay, Workers: *workers, QueueCap: *queue,
		Watchdog: *watchdog,
	})
	defer srv.Close()
	inC, hw := prog.Model().InputC, *res
	pipe := detect.Config{Spec: spec, ExactMath: *exact}
	hub := stream.NewHub(srv, stream.Config{Pipe: pipe, ResH: hw, ResW: hw, Budget: *budget})
	defer hub.Close()
	fmt.Printf("serving on http://%s\n", *addr)
	fmt.Printf("  POST /infer   %d float32 LE = %dx%dx%d image\n", inC*hw*hw, inC, hw, hw)
	fmt.Printf("  POST /detect  PPM/PGM/PNG/JPEG image -> JSON detections\n")
	fmt.Printf("  POST /stream  MJPEG multipart or length-prefixed frame sequence -> JSON summary\n")
	fmt.Printf("  GET  /stats, /healthz, /program (warm-handoff snapshot)\n")
	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(srv, serve.HandlerConfig{
		InputC: inC, InputH: hw, InputW: hw,
		Detect:      &pipe,
		Labels:      kitti.ClassNames[:],
		ShedLoad:    *shed,
		ExtraStats:  hub.StatsMap,
		SnapshotKey: &key,
	}))
	mux.Handle("POST /stream", hub.Handler())
	// Drain order on SIGTERM/SIGINT: stop accepting, close the stream
	// sessions, drain the batch queue, then evict the registry through
	// its OnEvict path.
	return serveGracefully(*addr, mux, hub.Close, srv.Close, reg.Close)
}

// benchCmd measures single-stream vs batched vs served throughput,
// then the detection pipeline (postprocess alone, end-to-end image ->
// boxes dense vs sparse, and the served batched-detect path), and
// optionally writes either report as JSON (the CI artifact formats:
// -json emits the PR2 forward bench, -detect-json the PR5 detect
// bench).
func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model to bench (yolov5s|retinanet)")
	entries := fs.Int("entries", 3, "R-TOSS entry patterns for the sparse variant")
	res := fs.Int("res", 64, "input resolution (HxW)")
	batch := fs.Int("batch", 8, "images per batched forward")
	streams := fs.Int("streams", 8, "concurrent client streams")
	images := fs.Int("images", 0, "images per scenario (0 = 2*streams)")
	jsonPath := fs.String("json", "", "also write the forward report to this JSON file")
	detectStage := fs.Bool("detect", true, "also run the detection-pipeline stage")
	detectRes := fs.Int("detect-res", 256, "letterbox resolution for the detect stage")
	detectJSON := fs.String("detect-json", "", "also write the detect report to this JSON file (BENCH_PR8 format)")
	streamStage := fs.Bool("stream", true, "also run the paced streaming scenario (detect stage only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := zooName(*modelName)
	if err != nil {
		return err
	}
	rep, err := serve.RunBench(serve.BenchConfig{
		Arch: arch, Entries: *entries, Res: *res,
		Batch: *batch, Streams: *streams, Images: *images,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if !*detectStage {
		return nil
	}
	drep, err := serve.RunDetectBench(serve.DetectBenchConfig{
		Arch: arch, Entries: *entries, Res: *detectRes,
		Streams: *streams, Images: *images,
	})
	if err != nil {
		return err
	}
	if *streamStage {
		row, err := stream.RunStreamBench(stream.BenchConfig{Arch: arch, Entries: *entries})
		if err != nil {
			return err
		}
		drep.Results = append(drep.Results, row)
	}
	fmt.Print(drep.Render())
	if *detectJSON != "" {
		if err := drep.WriteJSON(*detectJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *detectJSON)
	}
	return nil
}

// forward runs the real execution engine on a (optionally pruned) model
// and reports wall-clock per pass, comparing the selected engine mode
// against the dense baseline.
func forward(args []string) error {
	fs := flag.NewFlagSet("forward", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model to run (yolov5s|retinanet)")
	engineMode := fs.String("engine", "auto", "kernel dispatch: dense|sparse|auto")
	entries := fs.Int("entries", 3, "R-TOSS entry patterns to prune with first (0 = leave dense)")
	res := fs.Int("res", 64, "input resolution (HxW)")
	runs := fs.Int("runs", 3, "timed passes per engine (best is reported)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := rtoss.ParseEngineMode(*engineMode)
	if err != nil {
		return err
	}
	if *runs < 1 {
		*runs = 1
	}
	m, err := buildModel(*modelName)
	if err != nil {
		return err
	}
	if *entries > 0 {
		fw, err := rtoss.NewRTOSSWithConfig(rtoss.RTOSSConfig{
			Entries: *entries, UseDFSGrouping: true, Transform1x1: true,
		})
		if err != nil {
			return err
		}
		if _, err := fw.Prune(m); err != nil {
			return err
		}
		fmt.Printf("pruned with R-TOSS (%dEP): %.2f%% sparsity\n", *entries, 100*m.Sparsity())
	}
	in := rtoss.NewTensor(1, 3, *res, *res)
	r := rng.New(7)
	for i := range in.Data {
		in.Data[i] = float32(r.Range(-1, 1))
	}

	timeEngine := func(mode rtoss.EngineMode) (float64, *rtoss.Tensor, error) {
		e, err := rtoss.NewEngine(m, rtoss.EngineOptions{Mode: mode, Workers: *workers})
		if err != nil {
			return 0, nil, err
		}
		if mode != rtoss.EngineDense {
			p, c := e.SparseLayers()
			fmt.Printf("%-7s engine: %d pattern-sparse layers, %d CSR layers\n", mode, p, c)
		}
		return experiments.MeasureForward(e, in, *runs)
	}

	t, out, err := timeEngine(mode)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s engine: %.2f ms/pass (%d runs, %dx%d input, output %v)\n",
		mode, t*1e3, *runs, *res, *res, out.Shape())
	if mode == rtoss.EngineDense {
		return nil
	}
	td, outDense, err := timeEngine(rtoss.EngineDense)
	if err != nil {
		return err
	}
	var maxDiff float64
	for i := range out.Data {
		d := float64(out.Data[i] - outDense.Data[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("%-7s engine: %.2f ms/pass\n", rtoss.EngineDense, td*1e3)
	fmt.Printf("measured speedup: %.2fx (max abs output diff %.2g)\n", td/t, maxDiff)
	return nil
}

// detectCmd runs the full detection pipeline on one image and prints
// the boxes as JSON: letterbox preprocess, (optionally pruned) sparse
// forward pass, head decode, class-aware NMS, un-letterbox.
func detectCmd(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model to run (yolov5s|retinanet)")
	engineMode := fs.String("engine", "sparse", "kernel dispatch: dense|sparse|auto")
	entries := fs.Int("entries", 3, "R-TOSS entry patterns to prune with first (0 = leave dense)")
	res := fs.Int("res", 256, "model input resolution (letterboxed; multiple of 32)")
	imagePath := fs.String("image", "", "image to run (PPM/PGM/PNG/JPEG; empty = bundled synthetic KITTI sample)")
	score := fs.Float64("score", 0.25, "confidence threshold in (0, 1] (0 = default)")
	iou := fs.Float64("iou", 0.45, "NMS IoU threshold in (0, 1] (0 = default)")
	maxDet := fs.Int("max", 100, "max detections in the output")
	exact := fs.Bool("exact", false, "decode with exact float64 math instead of the fast float32 path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := rtoss.ParseEngineMode(*engineMode)
	if err != nil {
		return err
	}
	m, err := buildModel(*modelName)
	if err != nil {
		return err
	}
	variant := "dense"
	if *entries > 0 {
		fw, err := rtoss.NewRTOSSWithConfig(rtoss.RTOSSConfig{
			Entries: *entries, UseDFSGrouping: true, Transform1x1: true,
		})
		if err != nil {
			return err
		}
		if _, err := fw.Prune(m); err != nil {
			return err
		}
		variant = fmt.Sprintf("rtoss-%dep", *entries)
	}
	prog, err := rtoss.CompileProgram(m, rtoss.EngineOptions{Mode: mode})
	if err != nil {
		return err
	}
	det, err := rtoss.NewDetector(prog, *res, rtoss.DetectConfig{
		ScoreThreshold: *score, IoUThreshold: *iou, MaxDetections: *maxDet,
		ExactMath: *exact,
	})
	if err != nil {
		return err
	}
	// A file runs through DetectBytes so the decode (ingest) stage is
	// timed like a served request; the synthetic sample is rendered
	// directly as a tensor, so its ingest is legitimately zero.
	var result *rtoss.DetectResult
	source := "synthetic-kitti-sample"
	if *imagePath != "" {
		data, err := os.ReadFile(*imagePath)
		if err != nil {
			return err
		}
		source = *imagePath
		if result, err = det.DetectBytes(data); err != nil {
			return fmt.Errorf("%s: %w", *imagePath, err)
		}
	} else {
		var err error
		if result, err = det.Detect(rtoss.KITTISampleImage(496, 160)); err != nil {
			return err
		}
	}
	labels := rtoss.KITTIClassNames()
	type detJSON struct {
		Box   [4]float64 `json:"box"`
		Class int        `json:"class"`
		Label string     `json:"label,omitempty"`
		Score float64    `json:"score"`
	}
	out := struct {
		Model      string             `json:"model"`
		Variant    string             `json:"variant"`
		Engine     string             `json:"engine"`
		Image      string             `json:"image"`
		ImageSize  [2]int             `json:"image_size"`
		InputRes   int                `json:"input_res"`
		Count      int                `json:"count"`
		Detections []detJSON          `json:"detections"`
		TimingMS   map[string]float64 `json:"timing_ms"`
	}{
		Model: m.Name, Variant: variant, Engine: mode.String(),
		Image: source, ImageSize: [2]int{result.SrcW, result.SrcH}, InputRes: *res,
		Count: len(result.Detections),
		TimingMS: map[string]float64{
			"ingest":     float64(result.Timing.Ingest) / 1e6,
			"preprocess": float64(result.Timing.Preprocess) / 1e6,
			"forward":    float64(result.Timing.Forward) / 1e6,
			"decode":     float64(result.Timing.Decode) / 1e6,
			"total":      float64(result.Timing.Total()) / 1e6,
		},
	}
	for _, d := range result.Detections {
		dj := detJSON{
			Box:   [4]float64{d.Box.X1, d.Box.Y1, d.Box.X2, d.Box.Y2},
			Class: d.Class,
			Score: d.Score,
		}
		if d.Class >= 0 && d.Class < len(labels) {
			dj.Label = labels[d.Class]
		}
		out.Detections = append(out.Detections, dj)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func buildModel(name string) (*rtoss.Model, error) {
	switch name {
	case "yolov5s":
		return rtoss.NewYOLOv5s(), nil
	case "retinanet":
		return rtoss.NewRetinaNet(), nil
	default:
		return nil, fmt.Errorf("unknown model %q (yolov5s|retinanet)", name)
	}
}

func census() error {
	t := &report.Table{
		Title:   "Model zoo census",
		Headers: []string{"Model", "Params (M)", "MACs (G)", "Conv layers", "1x1 share", "Modules"},
	}
	for _, m := range models.Table2Models() {
		macs, err := m.MACs()
		if err != nil {
			return err
		}
		t.AddRow(m.Name,
			fmt.Sprintf("%.2f", float64(m.Params())/1e6),
			fmt.Sprintf("%.2f", float64(macs)/1e9),
			len(m.ConvLayers()),
			fmt.Sprintf("%.2f%%", 100*models.Frac1x1Layers(m)),
			models.ModuleCount(m))
	}
	fmt.Print(t.Render())
	return nil
}

func pruneCmd(args []string) error {
	fs := flag.NewFlagSet("prune", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model to prune (yolov5s|retinanet)")
	entries := fs.Int("entries", 3, "entry pattern count (2|3|4|5)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := buildModel(*modelName)
	if err != nil {
		return err
	}
	orig := m.Clone()
	fw, err := rtoss.NewRTOSSWithConfig(rtoss.RTOSSConfig{
		Entries: *entries, UseDFSGrouping: true, Transform1x1: true,
	})
	if err != nil {
		return err
	}
	res, err := fw.Prune(m)
	if err != nil {
		return err
	}
	q := rtoss.Assess(orig, m, res)
	enc := rtoss.Encode(m, res.Structure)
	fmt.Printf("%s on %s\n", fw.Name(), m.Name)
	fmt.Printf("  groups:            %d\n", res.Groups)
	fmt.Printf("  best-fit searches: %d (inherited %d kernels via DFS grouping)\n",
		res.BestFitSearches, res.InheritedKernels)
	fmt.Printf("  distinct patterns: %d\n", res.DistinctPatterns())
	fmt.Printf("  sparsity:          %.2f%%\n", 100*res.Sparsity())
	fmt.Printf("  compression:       %.2fx (params), %.2fx (encoded bytes)\n",
		res.CompressionRatio(), enc.CompressionRatio())
	fmt.Printf("  surrogate mAP:     %.2f (baseline %.2f)\n", q.MAP, rtoss.Assess(orig, orig, nil).MAP)
	for _, p := range []rtoss.Platform{rtoss.RTX2080Ti(), rtoss.JetsonTX2()} {
		base, err := rtoss.Estimate(orig, p, rtoss.Dense)
		if err != nil {
			return err
		}
		c, err := rtoss.Estimate(m, p, res.Structure)
		if err != nil {
			return err
		}
		fmt.Printf("  %-11s %.2f ms (%.2fx speedup), %.3f J (%.1f%% energy saved)\n",
			p.Name+":", c.Time*1e3, c.Speedup(base), c.Energy, 100*c.EnergyReduction(base))
	}
	return nil
}

func platforms() error {
	t := &report.Table{
		Title:   "Analytic platform models",
		Headers: []string{"Platform", "Dense GMAC/s", "Pattern gain", "Layer overhead", "Static W", "pJ/MAC"},
	}
	for _, p := range []rtoss.Platform{rtoss.RTX2080Ti(), rtoss.JetsonTX2()} {
		t.AddRow(p.Name,
			fmt.Sprintf("%.1f", p.DenseThroughput/1e9),
			fmt.Sprintf("%.2f", p.PatternGain),
			fmt.Sprintf("%.0f us", p.LayerOverhead*1e6),
			fmt.Sprintf("%.1f", p.StaticPower),
			fmt.Sprintf("%.1f", p.EnergyPerMAC*1e12))
	}
	fmt.Print(t.Render())
	return nil
}

func compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model (yolov5s|retinanet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var zooName string
	switch *modelName {
	case "yolov5s":
		zooName = "YOLOv5s"
	case "retinanet":
		zooName = "RetinaNet"
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	rs, err := rtoss.RunFrameworks(zooName)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: "Framework comparison on " + zooName,
		Headers: []string{"Framework", "Compression", "mAP", "GPU ms", "GPU speedup",
			"TX2 ms", "TX2 speedup", "TX2 energy J", "Measured ms", "Measured speedup"},
	}
	for _, r := range rs {
		t.AddRow(r.Framework,
			fmt.Sprintf("%.2fx", r.Compression),
			fmt.Sprintf("%.2f", r.MAP),
			fmt.Sprintf("%.2f", r.TimeGPU*1e3),
			fmt.Sprintf("%.2fx", r.SpeedupGPU),
			fmt.Sprintf("%.0f", r.TimeTX2*1e3),
			fmt.Sprintf("%.2fx", r.SpeedupTX2),
			fmt.Sprintf("%.2f", r.EnergyTX2),
			fmt.Sprintf("%.1f", r.MeasuredSparse*1e3),
			fmt.Sprintf("%.2fx", r.MeasuredSpeedup))
	}
	fmt.Print(t.Render())
	return nil
}

func tradeoff(args []string) error {
	fs := flag.NewFlagSet("tradeoff", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model (yolov5s|retinanet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var zooName string
	switch *modelName {
	case "yolov5s":
		zooName = "YOLOv5s"
	case "retinanet":
		zooName = "RetinaNet"
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	rt, err := rtoss.RTOSSTradeoff(zooName)
	if err != nil {
		return err
	}
	fmt.Print(rt.Render())
	nms, err := rtoss.NMSTradeoff(zooName, []float64{0.5, 0.6, 0.7, 0.8, 0.9})
	if err != nil {
		return err
	}
	fmt.Print(nms.Render())
	pd, err := rtoss.PDTradeoff(zooName, []float64{0, 0.15, 0.3, 0.45, 0.6})
	if err != nil {
		return err
	}
	fmt.Print(pd.Render())
	return nil
}
