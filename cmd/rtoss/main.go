// Command rtoss is the CLI front end of the pruning framework:
//
//	rtoss census              kernel-size census of the zoo models
//	rtoss prune [flags]       prune a model and report the accounting
//	rtoss platforms           show the analytic platform models
//	rtoss compare [flags]     full framework comparison on one model
//	rtoss tradeoff [flags]    sparsity/accuracy/latency sweeps
//
// Run any subcommand with -h for its flags.
package main

import (
	"flag"
	"fmt"
	"os"

	"rtoss"
	"rtoss/internal/models"
	"rtoss/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "census":
		err = census()
	case "prune":
		err = pruneCmd(os.Args[2:])
	case "platforms":
		err = platforms()
	case "compare":
		err = compare(os.Args[2:])
	case "tradeoff":
		err = tradeoff(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rtoss: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtoss:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println("usage: rtoss <census|prune|platforms|compare|tradeoff> [flags]")
}

func buildModel(name string) (*rtoss.Model, error) {
	switch name {
	case "yolov5s":
		return rtoss.NewYOLOv5s(), nil
	case "retinanet":
		return rtoss.NewRetinaNet(), nil
	default:
		return nil, fmt.Errorf("unknown model %q (yolov5s|retinanet)", name)
	}
}

func census() error {
	t := &report.Table{
		Title:   "Model zoo census",
		Headers: []string{"Model", "Params (M)", "MACs (G)", "Conv layers", "1x1 share", "Modules"},
	}
	for _, m := range models.Table2Models() {
		macs, err := m.MACs()
		if err != nil {
			return err
		}
		t.AddRow(m.Name,
			fmt.Sprintf("%.2f", float64(m.Params())/1e6),
			fmt.Sprintf("%.2f", float64(macs)/1e9),
			len(m.ConvLayers()),
			fmt.Sprintf("%.2f%%", 100*models.Frac1x1Layers(m)),
			models.ModuleCount(m))
	}
	fmt.Print(t.Render())
	return nil
}

func pruneCmd(args []string) error {
	fs := flag.NewFlagSet("prune", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model to prune (yolov5s|retinanet)")
	entries := fs.Int("entries", 3, "entry pattern count (2|3|4|5)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := buildModel(*modelName)
	if err != nil {
		return err
	}
	orig := m.Clone()
	fw, err := rtoss.NewRTOSSWithConfig(rtoss.RTOSSConfig{
		Entries: *entries, UseDFSGrouping: true, Transform1x1: true,
	})
	if err != nil {
		return err
	}
	res, err := fw.Prune(m)
	if err != nil {
		return err
	}
	q := rtoss.Assess(orig, m, res)
	enc := rtoss.Encode(m, res.Structure)
	fmt.Printf("%s on %s\n", fw.Name(), m.Name)
	fmt.Printf("  groups:            %d\n", res.Groups)
	fmt.Printf("  best-fit searches: %d (inherited %d kernels via DFS grouping)\n",
		res.BestFitSearches, res.InheritedKernels)
	fmt.Printf("  distinct patterns: %d\n", res.DistinctPatterns())
	fmt.Printf("  sparsity:          %.2f%%\n", 100*res.Sparsity())
	fmt.Printf("  compression:       %.2fx (params), %.2fx (encoded bytes)\n",
		res.CompressionRatio(), enc.CompressionRatio())
	fmt.Printf("  surrogate mAP:     %.2f (baseline %.2f)\n", q.MAP, rtoss.Assess(orig, orig, nil).MAP)
	for _, p := range []rtoss.Platform{rtoss.RTX2080Ti(), rtoss.JetsonTX2()} {
		base, err := rtoss.Estimate(orig, p, rtoss.Dense)
		if err != nil {
			return err
		}
		c, err := rtoss.Estimate(m, p, res.Structure)
		if err != nil {
			return err
		}
		fmt.Printf("  %-11s %.2f ms (%.2fx speedup), %.3f J (%.1f%% energy saved)\n",
			p.Name+":", c.Time*1e3, c.Speedup(base), c.Energy, 100*c.EnergyReduction(base))
	}
	return nil
}

func platforms() error {
	t := &report.Table{
		Title:   "Analytic platform models",
		Headers: []string{"Platform", "Dense GMAC/s", "Pattern gain", "Layer overhead", "Static W", "pJ/MAC"},
	}
	for _, p := range []rtoss.Platform{rtoss.RTX2080Ti(), rtoss.JetsonTX2()} {
		t.AddRow(p.Name,
			fmt.Sprintf("%.1f", p.DenseThroughput/1e9),
			fmt.Sprintf("%.2f", p.PatternGain),
			fmt.Sprintf("%.0f us", p.LayerOverhead*1e6),
			fmt.Sprintf("%.1f", p.StaticPower),
			fmt.Sprintf("%.1f", p.EnergyPerMAC*1e12))
	}
	fmt.Print(t.Render())
	return nil
}

func compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model (yolov5s|retinanet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var zooName string
	switch *modelName {
	case "yolov5s":
		zooName = "YOLOv5s"
	case "retinanet":
		zooName = "RetinaNet"
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	rs, err := rtoss.RunFrameworks(zooName)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: "Framework comparison on " + zooName,
		Headers: []string{"Framework", "Compression", "mAP", "GPU ms", "GPU speedup",
			"TX2 ms", "TX2 speedup", "TX2 energy J"},
	}
	for _, r := range rs {
		t.AddRow(r.Framework,
			fmt.Sprintf("%.2fx", r.Compression),
			fmt.Sprintf("%.2f", r.MAP),
			fmt.Sprintf("%.2f", r.TimeGPU*1e3),
			fmt.Sprintf("%.2fx", r.SpeedupGPU),
			fmt.Sprintf("%.0f", r.TimeTX2*1e3),
			fmt.Sprintf("%.2fx", r.SpeedupTX2),
			fmt.Sprintf("%.2f", r.EnergyTX2))
	}
	fmt.Print(t.Render())
	return nil
}

func tradeoff(args []string) error {
	fs := flag.NewFlagSet("tradeoff", flag.ExitOnError)
	modelName := fs.String("model", "yolov5s", "model (yolov5s|retinanet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var zooName string
	switch *modelName {
	case "yolov5s":
		zooName = "YOLOv5s"
	case "retinanet":
		zooName = "RetinaNet"
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	rt, err := rtoss.RTOSSTradeoff(zooName)
	if err != nil {
		return err
	}
	fmt.Print(rt.Render())
	nms, err := rtoss.NMSTradeoff(zooName, []float64{0.5, 0.6, 0.7, 0.8, 0.9})
	if err != nil {
		return err
	}
	fmt.Print(nms.Render())
	pd, err := rtoss.PDTradeoff(zooName, []float64{0, 0.15, 0.3, 0.45, 0.6})
	if err != nil {
		return err
	}
	fmt.Print(pd.Render())
	return nil
}
