package main

// Fleet subcommands: `rtoss route` fronts N serve processes with the
// consistent-hash failover router, `rtoss loadtest` drives a router
// (or a single shard) with closed-loop /detect traffic and reports
// tail latency, and `rtoss chaos` runs the seeded fault-injection
// harness against an in-process fleet and gates on the robustness
// acceptance invariants.

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"rtoss"
	"rtoss/internal/faultinject"
	"rtoss/internal/fleet"
	"rtoss/internal/serve"
)

func routeCmd(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8090", "listen address")
	backends := fs.String("backends", "", "comma-separated shard base URLs (required)")
	modelName := fs.String("model", "yolov5s", "default model for requests without routing params")
	variant := fs.String("variant", "rtoss-3ep", "default pruning variant")
	engineMode := fs.String("engine", "sparse", "default kernel dispatch: dense|sparse|auto")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
	attempts := fs.Int("attempts", 0, "max replica attempts per request (0 = one per backend)")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "initial failover backoff (doubles per retry)")
	timeout := fs.Duration("timeout", serve.DefaultClientTimeout, "per-attempt upstream timeout")
	probeEvery := fs.Duration("probe-interval", 250*time.Millisecond, "health probe interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls := splitBackends(*backends)
	if len(urls) == 0 {
		return fmt.Errorf("route: -backends needs at least one shard URL")
	}
	key, err := fleetKey(*modelName, *variant, *engineMode)
	if err != nil {
		return err
	}
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Backends:       urls,
		Default:        key,
		VNodes:         *vnodes,
		Attempts:       *attempts,
		Backoff:        *backoff,
		AttemptTimeout: *timeout,
		Probe:          fleet.ProberConfig{Interval: *probeEvery},
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	fmt.Printf("routing on http://%s for %d backends (default key %v)\n", *addr, len(urls), key)
	for _, u := range urls {
		fmt.Printf("  shard %s\n", u)
	}
	fmt.Printf("  POST /detect, /infer  consistent-hash by model key, failover on 5xx\n")
	fmt.Printf("  GET  /stats, /healthz, /program\n")
	return serveGracefully(*addr, rt.Handler(), rt.Close)
}

func loadtestCmd(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	urlFlag := fs.String("url", "http://localhost:8090", "router or shard base URL")
	duration := fs.Duration("duration", 5*time.Second, "firing window")
	conc := fs.Int("concurrency", 4, "closed-loop workers")
	keysFlag := fs.String("keys", "", "comma-separated model keys (Arch/variant/mode) to mix; empty = target's default")
	scenes := fs.Int("scenes", 4, "distinct pre-rendered images")
	sceneW := fs.Int("scene-w", 320, "rendered image width")
	sceneH := fs.Int("scene-h", 192, "rendered image height")
	seed := fs.Uint64("seed", 1, "scene rendering seed")
	score := fs.Float64("score", 0, "confidence threshold override (0 = server default)")
	iou := fs.Float64("iou", 0, "NMS IoU threshold override (0 = server default)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	jsonPath := fs.String("json", "", "also write the report to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var keys []serve.Key
	for _, s := range splitBackends(*keysFlag) {
		k, err := serve.ParseKey(s)
		if err != nil {
			return err
		}
		keys = append(keys, k)
	}
	rep, err := fleet.RunLoad(fleet.LoadConfig{
		URL:      *urlFlag,
		Duration: *duration, Concurrency: *conc,
		Keys:   keys,
		Scenes: *scenes, SceneW: *sceneW, SceneH: *sceneH, Seed: *seed,
		Score: *score, IoU: *iou,
		Timeout: *timeout,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

// chaosCmd runs the seeded fault-injection harness: an in-process
// 3-shard fleet behind the failover router, every injection point
// armed from one schedule, and the acceptance invariants checked at
// the end. A run with violations exits nonzero so CI can gate on it.
func chaosCmd(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "seed for every random draw (injection, jitter, scenes)")
	schedule := fs.String("schedule", "mixed", "fault schedule: preset (none|panics|network|ingest|registry|mixed) or point:p=..,max=..,after=..,delay=..;... spec")
	shards := fs.Int("shards", 3, "in-process shard count")
	modelName := fs.String("model", "tiny", "model to serve: tiny (built-in, fast) | yolov5s | retinanet")
	variant := fs.String("variant", "dense", "pruning variant for zoo models")
	engineMode := fs.String("engine", "sparse", "kernel dispatch for zoo models")
	res := fs.Int("res", 0, "input resolution (0 = 32 for tiny, 64 for zoo models)")
	duration := fs.Duration("duration", 3*time.Second, "load-phase firing window")
	conc := fs.Int("concurrency", 4, "load-phase workers")
	scenes := fs.Int("scenes", 4, "distinct pre-rendered images")
	sceneW := fs.Int("scene-w", 96, "rendered image width")
	sceneH := fs.Int("scene-h", 64, "rendered image height")
	max5xx := fs.Float64("max-5xx-rate", 0.05, "client-visible 5xx rate bound for the load phase")
	watchdog := fs.Duration("watchdog", 2*time.Second, "per-shard stuck-batch watchdog allowance")
	streamFrames := fs.Int("stream-frames", 16, "frames per stream-phase session (negative skips the phase)")
	jsonPath := fs.String("json", "", "also write the report to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := faultinject.ParsePlan(*schedule)
	if err != nil {
		return err
	}
	cfg := fleet.ChaosConfig{
		Seed: *seed, Plan: plan, Shards: *shards, Res: *res,
		Duration: *duration, Concurrency: *conc,
		Scenes: *scenes, SceneW: *sceneW, SceneH: *sceneH,
		Max5xxRate: *max5xx, Watchdog: *watchdog,
		StreamFrames: *streamFrames,
	}
	if *modelName != "tiny" {
		if cfg.Key, err = fleetKey(*modelName, *variant, *engineMode); err != nil {
			return err
		}
	}
	rep, err := fleet.RunChaos(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if !rep.OK() {
		return fmt.Errorf("chaos: %d acceptance invariant(s) violated", len(rep.Violations))
	}
	return nil
}

func splitBackends(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fleetKey(model, variant, engineMode string) (serve.Key, error) {
	arch, err := zooName(model)
	if err != nil {
		return serve.Key{}, err
	}
	mode, err := rtoss.ParseEngineMode(engineMode)
	if err != nil {
		return serve.Key{}, err
	}
	if _, err := serve.ParseVariant(variant); err != nil {
		return serve.Key{}, err
	}
	return serve.Key{Arch: arch, Variant: variant, Mode: mode}, nil
}
