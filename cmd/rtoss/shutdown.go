package main

// Graceful shutdown for the long-running serving commands: SIGTERM or
// SIGINT stops the listener from accepting new connections, lets
// in-flight requests finish within a drain window, then tears the
// serving stack down through each layer's Close path (stream hub,
// batch servers, registry OnEvict). A second signal during the drain
// kills the process the default way.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 30 * time.Second

// serveGracefully runs an HTTP server until SIGINT/SIGTERM, drains
// in-flight requests, then runs the drain hooks in order. It returns
// nil on a clean signal-driven exit.
func serveGracefully(addr string, h http.Handler, drain ...func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		// The listener died on its own (port in use, ...).
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Fprintln(os.Stderr, "shutting down: draining in-flight requests ...")

	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete after %v: %v\n", drainTimeout, err)
		hs.Close()
	}
	for _, fn := range drain {
		fn()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "shutdown complete")
	return nil
}
