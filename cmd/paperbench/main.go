// Command paperbench regenerates every table and figure of the paper's
// evaluation section plus the DESIGN.md ablations, writing the full
// report to stdout (and optionally a file via -o). This is the one-shot
// reproduction entry point:
//
//	go run ./cmd/paperbench > report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"rtoss"
)

func main() {
	out := flag.String("o", "", "also write the report to this file")
	cols := flag.Int("cols", 78, "ASCII canvas width for Fig 8")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	if err := run(w, *cols); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, cols int) error {
	fmt.Fprintln(w, "R-TOSS reproduction report")
	fmt.Fprintln(w, "==========================")
	fmt.Fprintln(w)

	for _, step := range []struct {
		name string
		fn   func() (string, error)
	}{
		{"Table 1", func() (string, error) { t, err := rtoss.Table1(); return render(t, err) }},
		{"Table 2", func() (string, error) { t, err := rtoss.Table2(); return render(t, err) }},
		{"Table 3", func() (string, error) { t, err := rtoss.Table3(); return render(t, err) }},
		{"Fig 4", rtoss.Fig4},
		{"Fig 5", rtoss.Fig5},
		{"Fig 6", rtoss.Fig6},
		{"Fig 7", rtoss.Fig7},
		{"Fig 8", func() (string, error) { return rtoss.Fig8(cols) }},
	} {
		s, err := step.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", step.name, err)
		}
		fmt.Fprintln(w, s)
	}

	fmt.Fprintln(w, "Ablations")
	fmt.Fprintln(w, "---------")
	for _, model := range []string{"YOLOv5s", "RetinaNet"} {
		dfs, err := rtoss.AblationDFS(model)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "A1 DFS grouping (%s): %d searches with grouping vs %d without (%.1f%% saved), sparsity %.4f vs %.4f\n",
			model, dfs.WithSearches, dfs.WithoutSearches,
			100*(1-float64(dfs.WithSearches)/float64(dfs.WithoutSearches)),
			dfs.SparsityWith, dfs.SparsityWithout)
	}
	conn, err := rtoss.AblationConnectivity("YOLOv5s")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "A2 connectivity pruning (YOLOv5s): mAP %.2f with kernel removal (PD) vs %.2f without (R-TOSS-3EP)\n",
		conn.MAPWithConnectivity, conn.MAPWithoutConnectivity)
	oneone, err := rtoss.Ablation1x1("YOLOv5s")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "A3 1x1 transform (YOLOv5s, 2EP): compression %.2fx with Algorithm 3 vs %.2fx without\n",
		oneone.CompressionWith, oneone.CompressionWithout)
	return nil
}

func render(t *rtoss.Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}
