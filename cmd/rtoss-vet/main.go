// Command rtoss-vet is the project's static-analysis gate: a
// multichecker over the analyzers that enforce the serving stack's
// hot-path invariants (zero-allocation regions, float32 fast-math
// purity, arena buffer containment, lock/atomic discipline).
//
// Standalone:
//
//	go build -o rtoss-vet ./cmd/rtoss-vet && ./rtoss-vet ./...
//
// Or as a cached vet tool (incremental across runs, like go vet):
//
//	go vet -vettool=$PWD/rtoss-vet ./...
//
// See internal/analysis for the annotation vocabulary
// (//rtoss:noalloc, //rtoss:f32, //rtoss:arena-owner, //rtoss:allow).
package main

import (
	"os"

	"rtoss/internal/analysis/arenaescape"
	"rtoss/internal/analysis/driver"
	"rtoss/internal/analysis/float32purity"
	"rtoss/internal/analysis/lockdiscipline"
	"rtoss/internal/analysis/noalloc"
)

func main() {
	os.Exit(driver.Main(
		noalloc.Analyzer,
		float32purity.Analyzer,
		arenaescape.Analyzer,
		lockdiscipline.Analyzer,
	))
}
