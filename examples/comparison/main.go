// Comparison: regenerate Figs 4-7 — R-TOSS vs the five prior pruning
// frameworks on both detectors and both platforms.
package main

import (
	"fmt"
	"log"

	"rtoss"
)

func main() {
	for _, fig := range []func() (string, error){
		rtoss.Fig4, rtoss.Fig5, rtoss.Fig6, rtoss.Fig7,
	} {
		s, err := fig()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(s)
	}

	// Headline claims, verified from the raw results.
	for _, model := range []string{"YOLOv5s", "RetinaNet"} {
		rs, err := rtoss.RunFrameworks(model)
		if err != nil {
			log.Fatal(err)
		}
		var rtoss2EP, bestPrior rtoss.FrameworkResult
		for _, r := range rs {
			switch r.Framework {
			case "R-TOSS (2EP)":
				rtoss2EP = r
			case "PatDNN (PD)":
				bestPrior = r
			}
		}
		fmt.Printf("%s: R-TOSS-2EP compresses %.2fx (PD %.2fx) and is %.1f%% faster than PD on the TX2\n",
			model, rtoss2EP.Compression, bestPrior.Compression,
			100*(1-rtoss2EP.TimeTX2/bestPrior.TimeTX2))
	}
}
