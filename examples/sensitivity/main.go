// Sensitivity: regenerate the paper's Table 3 — how the entry-pattern
// size (2EP/3EP/4EP/5EP) trades compression, accuracy, latency and
// energy on YOLOv5s and RetinaNet.
package main

import (
	"fmt"
	"log"

	"rtoss"
)

func main() {
	t, err := rtoss.Table3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t.Render())

	rows, err := rtoss.Sensitivity()
	if err != nil {
		log.Fatal(err)
	}
	// The paper's conclusions from this study, checked live:
	// 2EP compresses hardest; 3EP/2EP beat 4EP/5EP on latency.
	byVariant := map[string]map[string]rtoss.SensitivityRow{}
	for _, r := range rows {
		if byVariant[r.Model] == nil {
			byVariant[r.Model] = map[string]rtoss.SensitivityRow{}
		}
		byVariant[r.Model][r.Variant] = r
	}
	for _, model := range []string{"YOLOv5s", "RetinaNet"} {
		v := byVariant[model]
		fmt.Printf("\n%s: 2EP compresses %.2fx vs 5EP %.2fx; 2EP runs %.1f%% faster than 5EP\n",
			model,
			v["R-TOSS (2EP)"].Reduction, v["R-TOSS (5EP)"].Reduction,
			100*(1-v["R-TOSS (2EP)"].TimeMS/v["R-TOSS (5EP)"].TimeMS))
	}
}
