// Quickstart: prune YOLOv5s with R-TOSS-3EP and inspect the result —
// the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"rtoss"
)

func main() {
	// Build the detector (layer-faithful YOLOv5s, 7.02 M params with
	// KITTI's 8 classes, deterministic synthetic weights).
	model := rtoss.NewYOLOv5s()
	baseline := model.Clone()
	fmt.Printf("model: %s, %.2fM params, %.2f%% 1x1 conv layers\n",
		model.Name, float64(model.Params())/1e6, 0.6842*100)

	// Prune with the paper's 3-entry-pattern variant: DFS layer
	// grouping + 3x3 pattern pruning + the 1x1 kernel transform.
	pruner := rtoss.NewRTOSS(3)
	res, err := pruner.Prune(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s results:\n", pruner.Name())
	fmt.Printf("  layer groups (Algorithm 1): %d\n", res.Groups)
	fmt.Printf("  sparsity: %.1f%%  compression: %.2fx\n",
		100*res.Sparsity(), res.CompressionRatio())
	fmt.Printf("  distinct kernel patterns in use: %d\n", res.DistinctPatterns())

	// Accuracy surrogate: pattern pruning preserves the dominant
	// weights, so mAP holds up (and slightly exceeds the baseline, as
	// the paper reports).
	q := rtoss.Assess(baseline, model, res)
	fmt.Printf("  information retention: %.3f  surrogate mAP: %.2f\n", q.Retention, q.MAP)

	// Latency and energy on both evaluation platforms.
	for _, p := range []rtoss.Platform{rtoss.RTX2080Ti(), rtoss.JetsonTX2()} {
		base, err := rtoss.Estimate(baseline, p, rtoss.Dense)
		if err != nil {
			log.Fatal(err)
		}
		cost, err := rtoss.Estimate(model, p, res.Structure)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s %6.2f ms -> %6.2f ms (%.2fx), energy -%.1f%%\n",
			p.Name+":", base.Time*1e3, cost.Time*1e3,
			cost.Speedup(base), 100*cost.EnergyReduction(base))
	}

	// Compressed storage: pattern-grouped encoding (1 byte of pattern
	// index per kernel thanks to the shared 21-mask dictionary).
	enc := rtoss.Encode(model, res.Structure)
	fmt.Printf("  encoded size: %.1f MB -> %.1f MB (%.2fx)\n",
		float64(enc.DenseBytes)/1e6, float64(enc.Bytes)/1e6, enc.CompressionRatio())
}
