// KITTI demo: the end-to-end detection pipeline on a synthetic KITTI
// street scene, dense vs sparse. The same R-TOSS-pruned YOLOv5s runs
// once compiled with dense kernels and once with the pattern/CSR
// sparse kernels; both produce the same boxes, the sparse engine just
// gets them faster. Per-stage latency (ingest / preprocess / forward /
// decode+NMS) is reported for each engine, and the boxes are
// cross-checked against each other.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"rtoss"
)

const inputRes = 256

func main() {
	// The bundled sample scene (examples/data/kitti_sample.ppm is this
	// exact image; regenerate with rtoss.EncodePPM if needed). When the
	// file is present we keep its encoded bytes and run DetectBytes, so
	// the ingest (image decode) stage shows up in the timing table like
	// it would for a served request.
	img := rtoss.KITTISampleImage(496, 160)
	imgBytes, err := os.ReadFile("examples/data/kitti_sample.ppm")
	if err != nil {
		imgBytes = nil
	} else if _, derr := rtoss.DecodeImage(bytes.NewReader(imgBytes)); derr != nil {
		imgBytes = nil // unreadable file: fall back to the rendered scene
	}

	// One pruned model, two compilations: the weights are identical;
	// only the kernel dispatch differs.
	m := rtoss.NewYOLOv5s()
	res, err := rtoss.NewRTOSS(3).Prune(m)
	if err != nil {
		log.Fatal(err)
	}
	runDetect := func(det *rtoss.Detector) (*rtoss.DetectResult, error) {
		if imgBytes != nil {
			return det.DetectBytes(imgBytes)
		}
		return det.Detect(img)
	}
	fmt.Printf("YOLOv5s pruned with R-TOSS 3EP: %.1f%% sparsity, %.2fx compression\n\n",
		100*res.Sparsity(), res.CompressionRatio())

	type run struct {
		name   string
		mode   rtoss.EngineMode
		result *rtoss.DetectResult
	}
	runs := []run{
		{name: "dense", mode: rtoss.EngineDense},
		{name: "sparse", mode: rtoss.EngineSparse},
	}
	for i := range runs {
		prog, err := rtoss.CompileProgram(m, rtoss.EngineOptions{Mode: runs[i].mode})
		if err != nil {
			log.Fatal(err)
		}
		det, err := rtoss.NewDetector(prog, inputRes, rtoss.DetectConfig{})
		if err != nil {
			log.Fatal(err)
		}
		// Warm the activation arena and decode scratch, then measure.
		if _, err := runDetect(det); err != nil {
			log.Fatal(err)
		}
		runs[i].result, err = runDetect(det)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("Per-stage latency (%dx%d input, one image):\n", inputRes, inputRes)
	fmt.Printf("  %-8s %12s %12s %12s %12s %12s\n", "engine", "ingest", "preprocess", "forward", "decode+NMS", "total")
	for _, r := range runs {
		t := r.result.Timing
		fmt.Printf("  %-8s %10.2fms %10.2fms %10.2fms %10.2fms %10.2fms\n", r.name,
			ms(t.Ingest), ms(t.Preprocess), ms(t.Forward), ms(t.Decode), ms(t.Total()))
	}
	dense, sparse := runs[0].result, runs[1].result
	fmt.Printf("  forward speedup: %.2fx\n\n", float64(dense.Timing.Forward)/float64(sparse.Timing.Forward))

	// Same weights must mean same boxes, whatever the kernels.
	if len(dense.Detections) != len(sparse.Detections) {
		log.Fatalf("engines disagree: dense %d boxes, sparse %d", len(dense.Detections), len(sparse.Detections))
	}
	maxDiff := 0.0
	for i := range dense.Detections {
		a, b := dense.Detections[i].Box, sparse.Detections[i].Box
		for _, d := range []float64{a.X1 - b.X1, a.Y1 - b.Y1, a.X2 - b.X2, a.Y2 - b.Y2} {
			maxDiff = math.Max(maxDiff, math.Abs(d))
		}
	}
	fmt.Printf("dense vs sparse: %d detections each, max box coordinate diff %.2g\n\n",
		len(dense.Detections), maxDiff)

	labels := rtoss.KITTIClassNames()
	fmt.Println("Top detections (sparse engine):")
	for i, d := range sparse.Detections {
		if i == 8 {
			break
		}
		fmt.Printf("  %-16s %.2f  %v\n", labels[d.Class], d.Score, d.Box)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
