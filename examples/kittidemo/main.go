// KITTI demo: the end-to-end detection pipeline — regenerates Fig 8's
// qualitative comparison (which frameworks still see the tiny distant
// car) and cross-checks the accuracy surrogate against the real mAP
// evaluator on synthetic KITTI scenes.
package main

import (
	"fmt"
	"log"

	"rtoss"
)

func main() {
	// Fig 8: one fixed scene, RetinaNet pruned four ways.
	fig8, err := rtoss.Fig8(78)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig8)

	// Cross-check: run each framework's quality score through the scene
	// simulator and the *real* mAP evaluator (greedy IoU matching + PR
	// curve), and confirm the ordering matches the surrogate's.
	fmt.Println("Scene-level mAP cross-check (200 synthetic scenes, IoU 0.5):")
	scenes := rtoss.KITTIScenes(2023, 200)
	rs, err := rtoss.RunFrameworks("RetinaNet")
	if err != nil {
		log.Fatal(err)
	}
	var baseMAP float64
	for _, r := range rs {
		if r.Framework == "Base Model (BM)" {
			baseMAP = r.MAP
		}
	}
	for _, r := range rs {
		sceneMAP := rtoss.SceneMAP(scenes, r.MAP/baseMAP, 7)
		fmt.Printf("  %-22s surrogate %.2f%%  scene-eval %.2f%%\n",
			r.Framework, r.MAP, 100*sceneMAP)
	}
}
