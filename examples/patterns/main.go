// Patterns: explore the kernel-pattern machinery of §IV.B — the
// combinatoric candidate counts, the adjacency filter, the L2-usage
// selection, and the canonical dictionaries behind "21 pre-defined
// kernel patterns at inference".
package main

import (
	"fmt"

	"rtoss"
	"rtoss/internal/pattern"
	"rtoss/internal/rng"
)

func main() {
	fmt.Println("Pattern candidate counts (equation (1) + adjacency filter):")
	for k := 1; k <= 8; k++ {
		fmt.Printf("  k=%d: C(9,%d)=%3d masks, %3d survive the adjacency filter\n",
			k, k, pattern.Binomial(9, k), len(pattern.Candidates(k)))
	}

	fmt.Println("\nCanonical dictionaries (most-used masks by L2 best fit over")
	fmt.Println("200k random kernels in [-1,1]):")
	total := 0
	for _, entries := range []int{2, 3} {
		d := rtoss.CanonicalPatterns(entries)
		total += len(d.Masks)
		fmt.Printf("\n%dEP dictionary (%d masks, sparsity %.0f%%):\n",
			entries, len(d.Masks), 100*d.Sparsity())
		for i, m := range d.Masks {
			fmt.Printf("-- mask %d --\n%v\n", i+1, m)
		}
	}
	fmt.Printf("\ntotal R-TOSS inference patterns: %d (paper: 21)\n", total)

	// Usage concentration: the selected masks dominate random kernels.
	usage := pattern.UsageExperiment(3, 20000, rng.New(1))
	top := 0.0
	for i := 0; i < 12 && i < len(usage); i++ {
		top += usage[i].Frac
	}
	fmt.Printf("top-12 3EP masks cover %.1f%% of best-fit assignments\n", 100*top)
}
