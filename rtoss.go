// Package rtoss is the public API of the R-TOSS reproduction: a
// semi-structured (pattern-based) pruning framework for real-time
// object detectors, after Balasubramaniam, Sunny and Pasricha,
// "R-TOSS: A Framework for Real-Time Object Detection using
// Semi-Structured Pruning" (DAC 2023).
//
// The library bundles everything the paper's evaluation needs:
//
//   - a model zoo with layer-faithful YOLOv5s and RetinaNet descriptors
//     (NewYOLOv5s, NewRetinaNet) and the Table 1/2 comparison models;
//   - the R-TOSS pruner (NewRTOSS) implementing DFS layer grouping,
//     3×3 kernel pattern pruning and the 1×1 kernel transformation,
//     plus five baseline pruning frameworks (Baselines);
//   - analytic RTX 2080Ti / Jetson TX2 platform models (Estimate) for
//     latency and energy, compressed weight formats (Encode), an
//     information-retention accuracy surrogate (Assess), and a
//     synthetic-KITTI detection pipeline with a real mAP evaluator;
//   - a sparsity-aware concurrent execution engine (NewEngine) that
//     turns pattern sparsity into measured wall-clock speedups;
//   - an end-to-end detection pipeline (NewDetector): image decoding
//     (DecodeImage), letterbox preprocessing, head decoding and NMS,
//     with per-stage latency reporting;
//   - an accuracy-evaluation harness (Eval) scoring the full stack —
//     including the live HTTP serving path — with the real mAP
//     evaluator over a deterministic synthetic-KITTI scene set;
//   - the experiment harness regenerating every table and figure of
//     the paper (Table1..Table3, Fig4..Fig8).
//
// # Engine modes
//
// NewEngine compiles a model for real execution in one of three kernel
// dispatch modes:
//
//   - EngineDense runs every layer with the dense convolution kernels,
//     whatever the weights look like — the baseline the paper argues
//     against (zeros are multiplied like any other weight);
//   - EngineSparse lowers every pruned layer to a sparse kernel: 3×3
//     pattern-pruned layers use the pattern-grouped fast path (only the
//     ≤k surviving taps per kernel are iterated, via the shared mask
//     dictionary), everything else falls back to compressed sparse
//     rows;
//   - EngineAuto (the default, also used by Forward) picks dense or
//     sparse per layer from the layer's recorded prune structure and
//     measured weight density, so unpruned models pay no indirection.
//
// Layers execute wavefront-parallel over the model DAG's topological
// levels on a bounded worker pool, and Engine.Output recycles
// activation buffers through a per-run arena.
//
// # Compile once, run many
//
// The engine is split into an immutable Program (CompileProgram; Engine
// is its legacy alias) and cheap pooled per-request run state: one
// Program safely serves any number of concurrent goroutines, and
// Program.ForwardBatch runs a whole batch of images through one
// forward pass. The serving subsystem builds on that split:
// NewServeRegistry caches one Program per (architecture, variant, mode)
// key, and NewServer coalesces concurrent requests into micro-batches
// with bounded queueing and latency/throughput stats (see `rtoss serve`
// and `rtoss bench`).
//
// # Detection pipeline
//
// Detector closes the loop from image to boxes: letterbox resize onto
// the model canvas, forward pass to the detection heads
// (Program.Heads), YOLO/RetinaNet head decode, class-aware NMS, and
// un-letterboxing back to source pixels. Decoding runs a fast float32
// hot path — polynomial sigmoid (within FastSigmoidTolerance),
// raw-logit gating, pooled scratch, quickselect TopK, class-bucketed
// NMS — with exact float64 math available via DetectConfig.ExactMath.
// The serving stack exposes the same pipeline over HTTP as POST
// /detect (see `rtoss serve`): Server.Detect carries encoded image
// bytes through the micro-batch queue, so preprocess, the co-batched
// forward and the postprocess all amortize on the batch executors.
// `rtoss detect` runs the pipeline from the command line.
//
// Quick start:
//
//	m := rtoss.NewYOLOv5s()
//	res, _ := rtoss.NewRTOSS(3).Prune(m)
//	fmt.Printf("compression %.2fx\n", res.CompressionRatio())
//
//	prog, _ := rtoss.CompileProgram(m, rtoss.EngineOptions{Mode: rtoss.EngineSparse})
//	det, _ := rtoss.NewDetector(prog, 256, rtoss.DetectConfig{})
//	out, _ := det.Detect(rtoss.KITTISampleImage(496, 160))
//	for _, d := range out.Detections {
//		fmt.Println(rtoss.KITTIClassNames()[d.Class], d.Score, d.Box)
//	}
package rtoss

import (
	"fmt"
	"io"
	"time"

	"rtoss/internal/baselines"
	"rtoss/internal/core"
	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/eval"
	"rtoss/internal/experiments"
	"rtoss/internal/hw"
	"rtoss/internal/kitti"
	"rtoss/internal/metrics"
	"rtoss/internal/models"
	"rtoss/internal/nn"
	"rtoss/internal/pattern"
	"rtoss/internal/prune"
	"rtoss/internal/report"
	"rtoss/internal/serve"
	"rtoss/internal/sparse"
	"rtoss/internal/tensor"
)

// Core model/pruning types.
type (
	// Model is a network descriptor with real weight tensors.
	Model = nn.Model
	// Layer is one node of a model.
	Layer = nn.Layer
	// Pruner is a pruning framework (R-TOSS or a baseline).
	Pruner = prune.Pruner
	// Result is a pruning run's accounting.
	Result = prune.Result
	// Structure classifies induced sparsity.
	Structure = prune.Structure
	// Platform is an analytic execution target.
	Platform = hw.Platform
	// CostReport is an analytic latency/energy estimate.
	CostReport = hw.CostReport
	// Quality is the accuracy surrogate's assessment.
	Quality = metrics.Quality
	// Tensor is a dense float32 tensor.
	Tensor = tensor.Tensor
	// Mask is a 3×3 kernel pattern mask.
	Mask = pattern.Mask
	// Dictionary is a pattern dictionary.
	Dictionary = pattern.Dictionary
	// Scene is a synthetic KITTI frame.
	Scene = kitti.Scene
	// Detection is one detector output box.
	Detection = detect.Detection
	// Box is an axis-aligned box.
	Box = detect.Box
	// FrameworkResult is a full framework measurement.
	FrameworkResult = experiments.FrameworkResult
	// SensitivityRow is one Table 3 row.
	SensitivityRow = experiments.SensitivityRow
	// Table is a renderable result grid.
	Table = report.Table
	// ModelEncoding is a compressed-weight encoding summary.
	ModelEncoding = sparse.ModelEncoding
	// RTOSSConfig selects an R-TOSS variant and ablation switches.
	RTOSSConfig = core.Config
)

// Sparsity structures (re-exported).
const (
	Dense        = prune.Dense
	Unstructured = prune.Unstructured
	Pattern      = prune.Pattern
	Channel      = prune.Channel
	Filter       = prune.Filter
	Mixed        = prune.Mixed
)

// KITTIClasses is the KITTI class count used throughout the evaluation.
const KITTIClasses = models.KITTIClasses

// NewYOLOv5s returns the YOLOv5s descriptor (7.02 M params with KITTI
// classes) with deterministic synthetic weights.
func NewYOLOv5s() *Model { return models.YOLOv5s(models.KITTIClasses) }

// NewRetinaNet returns the RetinaNet-R50-FPN descriptor (36.49 M params
// with KITTI classes).
func NewRetinaNet() *Model { return models.RetinaNet(models.KITTIClasses) }

// Table2Models returns the six detectors of the paper's Table 2.
func Table2Models() []*Model { return models.Table2Models() }

// NewRTOSS returns the R-TOSS pruner with the given entry count
// (2 or 3 for the paper's variants; 4 and 5 for the sensitivity study).
// It panics on other counts; use NewRTOSSWithConfig for error handling.
func NewRTOSS(entries int) *core.Framework { return core.NewVariant(entries) }

// NewRTOSSWithConfig builds an R-TOSS pruner from an explicit config
// (ablation switches included).
func NewRTOSSWithConfig(cfg RTOSSConfig) (*core.Framework, error) { return core.New(cfg) }

// Baselines returns the five comparison frameworks: PatDNN, SparseML,
// Network Slimming, Pruning Filters, Neural Pruning.
func Baselines() []Pruner { return baselines.All() }

// RTX2080Ti returns the desktop GPU platform model.
func RTX2080Ti() Platform { return hw.RTX2080Ti() }

// JetsonTX2 returns the embedded platform model.
func JetsonTX2() Platform { return hw.JetsonTX2() }

// Estimate computes the analytic latency/energy of a (possibly pruned)
// model on a platform.
func Estimate(m *Model, p Platform, s Structure) (*CostReport, error) {
	return hw.Estimate(m, p, s)
}

// Assess scores a pruned model's accuracy with the information-
// retention surrogate (see DESIGN.md for the substitution rationale).
func Assess(orig, pruned *Model, res *Result) Quality {
	return metrics.AssessPruned(orig, pruned, res)
}

// Program is a model compiled once for execution: per-layer
// dense/sparse kernel dispatch, wavefront scheduling levels and the
// activation buffer plan. Immutable and safe for concurrent use; run
// state is pooled internally. Program.ForwardBatch runs many images in
// one pass.
type Program = engine.Program

// Engine is the legacy name of Program.
type Engine = engine.Engine

// EngineOptions configures CompileProgram / NewEngine.
type EngineOptions = engine.Options

// EngineMode selects the engine's kernel-dispatch policy.
type EngineMode = engine.Mode

// Engine dispatch modes (see the package comment).
const (
	EngineAuto   = engine.ModeAuto
	EngineDense  = engine.ModeDense
	EngineSparse = engine.ModeSparse
)

// CompileProgram compiles a model into an immutable, shareable Program.
// Recompile after pruning for the sparse dispatch to see the new zeros.
func CompileProgram(m *Model, opts EngineOptions) (*Program, error) {
	return engine.Compile(m, opts)
}

// NewEngine is the legacy name of CompileProgram.
func NewEngine(m *Model, opts EngineOptions) (*Engine, error) { return engine.New(m, opts) }

// ---------------------------------------------------------------------
// Serving subsystem (micro-batching inference over shared Programs).

type (
	// ServeKey identifies one servable model variant in a registry.
	ServeKey = serve.Key
	// ServeRegistry lazily prunes+compiles and caches one Program per key.
	ServeRegistry = serve.Registry
	// ServeConfig tunes a Server's micro-batching scheduler.
	ServeConfig = serve.Config
	// ServeStats is a server accounting snapshot.
	ServeStats = serve.Stats
	// Server coalesces concurrent requests into batched forwards.
	Server = serve.Server
	// BenchConfig parameterises RunServeBench.
	BenchConfig = serve.BenchConfig
	// BenchReport is a serving benchmark report (the BENCH JSON format).
	BenchReport = serve.BenchReport
	// DetectBenchConfig parameterises RunDetectBench.
	DetectBenchConfig = serve.DetectBenchConfig
	// DetectBenchReport is a detection benchmark report (the BENCH_PR8
	// JSON format).
	DetectBenchReport = serve.DetectBenchReport
)

// NewServeRegistry returns an empty Program registry.
func NewServeRegistry() *ServeRegistry { return serve.NewRegistry() }

// NewServer starts a micro-batching inference server over a shared
// Program; see ServeConfig for the knobs.
func NewServer(prog *Program, cfg ServeConfig) *Server { return serve.NewServer(prog, cfg) }

// RunServeBench measures single-stream vs batched vs served throughput
// with the same harness as `rtoss bench` and the CI artifact.
func RunServeBench(cfg BenchConfig) (*BenchReport, error) { return serve.RunBench(cfg) }

// RunDetectBench measures the detection pipeline: the pooled ingest
// stages (per-format decode and letterbox, with steady-state allocs
// per image), the allocation-free postprocess stage alone, end-to-end
// image -> boxes under dense vs sparse kernels, and concurrent
// encoded-image streams through the batched Server.Detect path — the
// same harness as `rtoss bench`'s detect stage and the BENCH_PR8.json
// CI artifact.
func RunDetectBench(cfg DetectBenchConfig) (*DetectBenchReport, error) {
	return serve.RunDetectBench(cfg)
}

// ParseEngineMode parses "auto", "dense" or "sparse".
func ParseEngineMode(s string) (EngineMode, error) { return engine.ParseMode(s) }

// ---------------------------------------------------------------------
// End-to-end detection pipeline (image in, boxes out).

type (
	// DetectConfig tunes the post-network pipeline (thresholds, caps).
	DetectConfig = detect.Config
	// DetectResult is one Detect call's boxes + per-stage timing.
	DetectResult = detect.Result
	// DetectTiming is the preprocess/forward/decode latency breakdown.
	DetectTiming = detect.Timing
	// HeadSpec is a model's head-decode metadata (strides, anchors).
	HeadSpec = detect.HeadSpec
	// LetterboxMeta maps model-canvas coordinates to source pixels.
	LetterboxMeta = tensor.LetterboxMeta
)

// FastSigmoidTolerance is the documented accuracy bound of the fast
// float32 sigmoid the default decode path uses; set
// DetectConfig.ExactMath for bitwise float64 reference math instead.
const FastSigmoidTolerance = detect.FastSigmoidTolerance

// Detector runs the full image -> boxes pipeline over a compiled
// Program: letterbox preprocess to the model resolution, forward pass
// to the detection heads, head decode + class-aware NMS (the fast
// float32 path with pooled scratch; DetectConfig.ExactMath pins the
// float64 reference decoders), and un-letterboxing back to
// source-image pixels. A Detector is immutable after NewDetector and
// safe for concurrent use (the Program and the postprocess scratch
// pool per-run state internally).
type Detector struct {
	prog     *Program
	cfg      DetectConfig
	inH, inW int
}

// NewDetector wraps a compiled Program into an end-to-end Detector.
// res is the square model resolution images are letterboxed to (0 uses
// the model's nominal resolution; must be a multiple of the coarsest
// head stride). When cfg.Spec is unset it is looked up from the
// program's model name (YOLOv5s or RetinaNet).
func NewDetector(prog *Program, res int, cfg DetectConfig) (*Detector, error) {
	m := prog.Model()
	if len(cfg.Spec.Levels) == 0 {
		spec, err := models.HeadByName(m.Name, m.NumClasses)
		if err != nil {
			return nil, err
		}
		cfg.Spec = spec
	}
	cfg = cfg.WithDefaults()
	if res == 0 {
		res = m.InputH
	}
	if s := cfg.Spec.MaxStride(); res <= 0 || res%s != 0 {
		return nil, fmt.Errorf("rtoss: detector resolution %d must be a positive multiple of the head stride %d", res, s)
	}
	return &Detector{prog: prog, cfg: cfg, inH: res, inW: res}, nil
}

// InputSize returns the model resolution images are letterboxed to.
func (d *Detector) InputSize() (h, w int) { return d.inH, d.inW }

// Config returns the detector's effective pipeline configuration.
func (d *Detector) Config() DetectConfig { return d.cfg }

// Preprocess letterboxes an image ([C, H, W] or [1, C, H, W], values
// in [0, 1]) onto the detector's model canvas, returning the
// [1, C, res, res] network input and the coordinate mapping.
func (d *Detector) Preprocess(img *Tensor) (*Tensor, LetterboxMeta) {
	canvas, meta := tensor.LetterboxImage(img, d.inH, d.inW, tensor.LetterboxFill)
	return canvas.Reshape(1, canvas.Dim(0), canvas.Dim(1), canvas.Dim(2)), meta
}

// Detect runs the full pipeline on one image and returns the boxes in
// source-image pixel coordinates (descending score) with the per-stage
// latency breakdown.
func (d *Detector) Detect(img *Tensor) (*DetectResult, error) {
	t0 := time.Now()
	in, meta := d.Preprocess(img)
	t1 := time.Now()
	heads, err := d.prog.Heads(in)
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	dets, err := detect.Postprocess(heads, meta, d.cfg)
	if err != nil {
		return nil, err
	}
	t3 := time.Now()
	return &DetectResult{
		Detections: dets,
		SrcW:       meta.SrcW,
		SrcH:       meta.SrcH,
		Timing: DetectTiming{
			Preprocess: t1.Sub(t0),
			Forward:    t2.Sub(t1),
			Decode:     t3.Sub(t2),
		},
	}, nil
}

// DetectBytes runs the full pipeline on an encoded image (PPM/PGM, PNG
// or baseline JPEG bytes — the same formats the /detect endpoint
// accepts), reporting the decode stage as Timing.Ingest. This is the
// in-process equivalent of one served /detect request.
func (d *Detector) DetectBytes(img []byte) (*DetectResult, error) {
	t0 := time.Now()
	decoded, err := tensor.DecodeImageInto(nil, img)
	if err != nil {
		return nil, err
	}
	ingest := time.Since(t0)
	res, err := d.Detect(decoded)
	if err != nil {
		return nil, err
	}
	res.Timing.Ingest = ingest
	return res, nil
}

// ---------------------------------------------------------------------
// Evaluation harness (mAP over the synthetic-KITTI set, any backend).

type (
	// EvalConfig parameterises one accuracy-evaluation run.
	EvalConfig = eval.Config
	// EvalReport is one evaluation run's scored outcome.
	EvalReport = eval.Report
	// EvalClassAP is one class's AP row in an EvalReport.
	EvalClassAP = eval.ClassAP
	// EvalLatency is an EvalReport's latency distribution summary.
	EvalLatency = eval.LatencySummary
)

// Evaluation backends (EvalConfig.Backend).
const (
	// EvalInProcess runs the pipeline directly on the compiled Program.
	EvalInProcess = eval.BackendInProcess
	// EvalServer drives a micro-batching Server in process.
	EvalServer = eval.BackendServer
	// EvalHTTP POSTs every image to a /detect endpoint (self-hosted on
	// a loopback port unless EvalConfig.URL names a running server).
	EvalHTTP = eval.BackendHTTP
	// EvalOracle scores ground-truth-encoded heads through the
	// post-network pipeline: the geometry-regression gate.
	EvalOracle = eval.BackendOracle
)

// Eval scores the detection stack against the paper's accuracy
// methodology: generate a deterministic synthetic-KITTI scene set,
// drive every image through the configured backend (in-process
// pipeline, micro-batching server, or real HTTP /detect round trips),
// and evaluate the detections with the real AP evaluator into a
// per-class AP + mAP + latency report. For a fixed config the accuracy
// section is deterministic and bitwise-identical across backends and
// engine modes (see `rtoss eval`).
func Eval(cfg EvalConfig) (*EvalReport, error) { return eval.Run(cfg) }

// EvalBackends lists the accepted EvalConfig.Backend values.
func EvalBackends() []string { return eval.Backends() }

type (
	// StreamEvalConfig parameterises one streaming-evaluation run.
	StreamEvalConfig = eval.StreamConfig
	// StreamEvalReport is one streaming run's scored outcome: mAP over
	// served frames plus deadline-hit-rate and drop-rate.
	StreamEvalReport = eval.StreamReport
	// StreamFrameOutcome records what happened to one pushed frame.
	StreamFrameOutcome = eval.FrameOutcome
)

// EvalStream scores the streaming serving stack: it replays
// deterministic moving-scene videos through per-stream sessions into
// the micro-batching server's deadline-aware scheduler, then reports
// timeliness (deadline-hit-rate, drop-rate) alongside accuracy (mAP
// over the frames that were actually served). In lockstep mode the run
// is drop-free and its detections are bitwise-identical to the
// single-shot backends on the same frames (see `rtoss stream`).
func EvalStream(cfg StreamEvalConfig) (*StreamEvalReport, error) { return eval.RunStream(cfg) }

// HeadSpecFor returns the decode metadata for a zoo model by display
// name ("YOLOv5s" or "RetinaNet").
func HeadSpecFor(arch string, classes int) (HeadSpec, error) {
	return models.HeadByName(arch, classes)
}

// DecodeImage decodes a PPM/PGM (P2/P3/P5/P6), PNG or baseline-JPEG
// stream into a [3, H, W] tensor in [0, 1] — the Detector's input
// format. The format is sniffed from the leading magic bytes.
func DecodeImage(r io.Reader) (*Tensor, error) { return tensor.DecodeImage(r) }

// EncodePPM writes a [3, H, W] tensor as a binary PPM image.
func EncodePPM(w io.Writer, t *Tensor) error { return tensor.EncodePPM(w, t) }

// KITTISampleImage renders the deterministic synthetic KITTI sample
// scene at w x h (the bundled `rtoss detect` test image).
func KITTISampleImage(w, h int) *Tensor { return kitti.SampleImage(w, h) }

// KITTIClassNames maps KITTI class IDs to labels.
func KITTIClassNames() []string { return kitti.ClassNames[:] }

// Forward runs a real forward pass (auto engine mode) and returns the
// final output tensor.
func Forward(m *Model, input *Tensor) (*Tensor, error) { return engine.Output(m, input) }

// NewTensor returns a zero-filled dense tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// Encode compresses a pruned model's weights in the format implied by
// its sparsity structure and reports exact byte sizes.
func Encode(m *Model, s Structure) *ModelEncoding {
	var dict []uint16
	if s == Pattern {
		for _, e := range []int{2, 3, 4, 5} {
			for _, mk := range pattern.NewDictionary(e).Masks {
				dict = append(dict, uint16(mk))
			}
		}
	}
	return sparse.EncodeModel(m, s, dict)
}

// CanonicalPatterns returns the R-TOSS pattern dictionary for an entry
// count (selected by the paper's combinatorics + adjacency + L2-usage
// procedure).
func CanonicalPatterns(entries int) Dictionary { return pattern.NewDictionary(entries) }

// KITTIScenes generates n deterministic synthetic KITTI scenes.
func KITTIScenes(seed uint64, n int) []Scene { return kitti.Dataset(seed, n, 640, 640) }

// SceneMAP evaluates a detector quality score over scenes with the real
// mAP evaluator (returns mAP in [0,1] at IoU 0.5).
func SceneMAP(scenes []Scene, score float64, seed uint64) float64 {
	return kitti.EvaluateScore(scenes, score, 0.5, seed)
}

// Experiment harness (one call per table/figure of the paper).
var (
	// Table1 regenerates the two-stage vs single-stage comparison.
	Table1 = experiments.Table1
	// Table2 regenerates model size vs TX2 execution time.
	Table2 = experiments.Table2
	// Table3 regenerates the entry-pattern sensitivity study.
	Table3 = experiments.Table3
	// Sensitivity returns Table 3 as structured rows.
	Sensitivity = experiments.Sensitivity
	// RunFrameworks measures every framework on one model.
	RunFrameworks = experiments.RunFrameworks
	// Fig4 regenerates the sparsity/compression comparison.
	Fig4 = experiments.Fig4
	// Fig5 regenerates the mAP comparison.
	Fig5 = experiments.Fig5
	// Fig6 regenerates the speedup comparison.
	Fig6 = experiments.Fig6
	// Fig7 regenerates the energy-reduction comparison.
	Fig7 = experiments.Fig7
	// Fig8 regenerates the qualitative KITTI scene comparison.
	Fig8 = experiments.Fig8
	// AblationDFS quantifies Algorithm 1's compute saving.
	AblationDFS = experiments.AblationDFS
	// AblationConnectivity contrasts kernel removal with R-TOSS.
	AblationConnectivity = experiments.AblationConnectivity
	// Ablation1x1 quantifies Algorithm 3's sparsity contribution.
	Ablation1x1 = experiments.Ablation1x1
	// RTOSSTradeoff sweeps the entry-pattern axis (5EP..2EP).
	RTOSSTradeoff = experiments.RTOSSTradeoff
	// NMSTradeoff sweeps SparseML's target sparsity.
	NMSTradeoff = experiments.NMSTradeoff
	// PDTradeoff sweeps PatDNN's connectivity fraction.
	PDTradeoff = experiments.PDTradeoff
)

// TradeoffCurve is a sparsity/accuracy/latency design-space sweep.
type TradeoffCurve = experiments.TradeoffCurve

// TradeoffPoint is one operating point of a TradeoffCurve.
type TradeoffPoint = experiments.TradeoffPoint
