package rtoss

import (
	"bytes"
	"math"
	"testing"
)

// detector_test.go covers the end-to-end detection pipeline through the
// public API: image in, boxes out, dense and sparse engines agreeing.

// detectorFor compiles the pruned model in the given mode and wraps it
// in a detector at a small (fast) resolution.
func detectorFor(t *testing.T, m *Model, mode EngineMode, res int) *Detector {
	t.Helper()
	prog, err := CompileProgram(m, EngineOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(prog, res, DetectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// TestDetectDenseVsSparseIdenticalBoxes is the pipeline's acceptance
// gate: the same R-TOSS-pruned YOLOv5s, compiled once with dense and
// once with sparse kernels, must produce identical detections (same
// count, classes, and boxes within 1e-4) on the bundled sample image.
func TestDetectDenseVsSparseIdenticalBoxes(t *testing.T) {
	m := NewYOLOv5s()
	if _, err := NewRTOSS(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	img := KITTISampleImage(496, 160)
	dense, err := detectorFor(t, m, EngineDense, 128).Detect(img)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := detectorFor(t, m, EngineSparse, 128).Detect(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.Detections) == 0 {
		t.Fatal("dense pipeline produced no detections (synthetic weights should fire above threshold)")
	}
	if len(dense.Detections) != len(sparse.Detections) {
		t.Fatalf("dense %d detections, sparse %d", len(dense.Detections), len(sparse.Detections))
	}
	for i := range dense.Detections {
		d, s := dense.Detections[i], sparse.Detections[i]
		if d.Class != s.Class {
			t.Errorf("det %d: class %d vs %d", i, d.Class, s.Class)
		}
		if diff := math.Abs(d.Score - s.Score); diff > 1e-4 {
			t.Errorf("det %d: score diff %g > 1e-4", i, diff)
		}
		for j, delta := range []float64{
			d.Box.X1 - s.Box.X1, d.Box.Y1 - s.Box.Y1,
			d.Box.X2 - s.Box.X2, d.Box.Y2 - s.Box.Y2,
		} {
			if math.Abs(delta) > 1e-4 {
				t.Errorf("det %d: box coord %d differs by %g > 1e-4", i, j, delta)
			}
		}
	}
	// The timing breakdown covers every stage.
	tm := sparse.Timing
	if tm.Forward <= 0 || tm.Preprocess <= 0 || tm.Decode <= 0 {
		t.Errorf("incomplete timing breakdown: %+v", tm)
	}
	if sparse.SrcW != 496 || sparse.SrcH != 160 {
		t.Errorf("source dims = %dx%d, want 496x160", sparse.SrcW, sparse.SrcH)
	}
}

// TestDetectRetinaNet smoke-tests the anchor-decode path end to end on
// the second layer-faithful zoo model.
func TestDetectRetinaNet(t *testing.T) {
	if testing.Short() {
		t.Skip("RetinaNet end-to-end is slow; covered by the full suite")
	}
	m := NewRetinaNet()
	if _, err := NewRTOSS(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	det := detectorFor(t, m, EngineSparse, 128)
	res, err := det.Detect(KITTISampleImage(320, 128))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Detections {
		if d.Class < 0 || d.Class >= KITTIClasses {
			t.Errorf("class %d out of range", d.Class)
		}
		if d.Box.X2 > 320 || d.Box.Y2 > 128 || d.Box.X1 < 0 || d.Box.Y1 < 0 {
			t.Errorf("box %v outside the 320x128 source", d.Box)
		}
	}
}

// TestDetectImageRoundTrip checks the public image codec path feeds the
// detector: encode the sample scene to PPM, decode it back, detect.
func TestDetectImageRoundTrip(t *testing.T) {
	img := KITTISampleImage(200, 96)
	var buf bytes.Buffer
	if err := EncodePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(img) {
		t.Fatalf("round-trip shape %v, want %v", back.Shape(), img.Shape())
	}
	if !back.Equal(img, 1.0/254) {
		t.Error("PPM round-trip exceeded 8-bit quantisation error")
	}
}

// TestNewDetectorValidation pins the error paths a user will hit first.
func TestNewDetectorValidation(t *testing.T) {
	m := NewYOLOv5s()
	prog, err := CompileProgram(m, EngineOptions{Mode: EngineDense})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDetector(prog, 100, DetectConfig{}); err == nil {
		t.Error("resolution 100 (not a multiple of 32) accepted")
	}
	det, err := NewDetector(prog, 0, DetectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if h, w := det.InputSize(); h != 640 || w != 640 {
		t.Errorf("default resolution = %dx%d, want the model's 640x640", h, w)
	}
	if det.Config().ScoreThreshold != 0.25 {
		t.Errorf("default score threshold = %v, want 0.25", det.Config().ScoreThreshold)
	}
}
