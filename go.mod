module rtoss

go 1.24
