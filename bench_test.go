package rtoss

import (
	"testing"

	"rtoss/internal/rng"
)

// One benchmark per table and figure of the paper's evaluation (§V),
// plus the DESIGN.md ablations: `go test -bench=. -benchmem` runs the
// full reproduction harness and reports the cost of regenerating each
// artefact. Each iteration rebuilds its models and re-runs the complete
// pipeline (prune → estimate → assess → render).

// skipHarnessBench exempts the paper-harness benchmarks from -short
// runs: CI's benchmark-compile gate executes every benchmark once
// (-short -run=NONE -bench=. -benchtime=1x) to keep them from rotting,
// and regenerating whole tables/figures there would dwarf the suite.
// The engine and detection hot-path benchmarks below stay live — they
// are the numbers the gate exists to protect.
func skipHarnessBench(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("paper-harness benchmark; skipped in -short")
	}
}

func BenchmarkTable1DetectorComparison(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ModelSizeVsTime(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Sensitivity(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Sparsity(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5MAP(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Speedup(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Energy(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Qualitative(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := Fig8(70); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDFSGrouping(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := AblationDFS("YOLOv5s"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConnectivity(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := AblationConnectivity("YOLOv5s"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation1x1(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := Ablation1x1("YOLOv5s"); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end pruning benchmarks: the cost of the R-TOSS pipeline itself
// (what the paper's Algorithm 1 optimisation is about).

func BenchmarkRTOSS3EPYOLOv5s(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := NewYOLOv5s()
		b.StartTimer()
		if _, err := NewRTOSS(3).Prune(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTOSS2EPRetinaNet(b *testing.B) {
	skipHarnessBench(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := NewRetinaNet()
		b.StartTimer()
		if _, err := NewRTOSS(2).Prune(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSceneMAPEvaluation(b *testing.B) {
	skipHarnessBench(b)
	scenes := KITTIScenes(1, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SceneMAP(scenes, 1.0, uint64(i))
	}
}

// Execution-engine benchmarks: dense vs sparsity-aware forward passes
// on a pattern-pruned YOLOv5s. The ratio of the dense and pattern-
// sparse numbers is the measured end-to-end speedup semi-structured
// pruning buys on this machine — the claim the whole paper rests on.

// benchForwardPrunedYOLOv5s times Engine.Output on an R-TOSS-3EP-pruned
// YOLOv5s at 64×64 under the given dispatch mode.
func benchForwardPrunedYOLOv5s(b *testing.B, mode EngineMode) {
	b.Helper()
	m := NewYOLOv5s()
	if _, err := NewRTOSS(3).Prune(m); err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(m, EngineOptions{Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(42)
	in := NewTensor(1, 3, 64, 64)
	for i := range in.Data {
		in.Data[i] = float32(r.Range(-1, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Output(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardDensePrunedYOLOv5s(b *testing.B) {
	benchForwardPrunedYOLOv5s(b, EngineDense)
}

func BenchmarkForwardPatternSparsePrunedYOLOv5s(b *testing.B) {
	benchForwardPrunedYOLOv5s(b, EngineSparse)
}

func BenchmarkForwardAutoPrunedYOLOv5s(b *testing.B) {
	benchForwardPrunedYOLOv5s(b, EngineAuto)
}
