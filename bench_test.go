package rtoss

import (
	"testing"
)

// One benchmark per table and figure of the paper's evaluation (§V),
// plus the DESIGN.md ablations: `go test -bench=. -benchmem` runs the
// full reproduction harness and reports the cost of regenerating each
// artefact. Each iteration rebuilds its models and re-runs the complete
// pipeline (prune → estimate → assess → render).

func BenchmarkTable1DetectorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ModelSizeVsTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Sparsity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5MAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Qualitative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig8(70); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDFSGrouping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := AblationDFS("YOLOv5s"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConnectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := AblationConnectivity("YOLOv5s"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation1x1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Ablation1x1("YOLOv5s"); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end pruning benchmarks: the cost of the R-TOSS pipeline itself
// (what the paper's Algorithm 1 optimisation is about).

func BenchmarkRTOSS3EPYOLOv5s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := NewYOLOv5s()
		b.StartTimer()
		if _, err := NewRTOSS(3).Prune(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTOSS2EPRetinaNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := NewRetinaNet()
		b.StartTimer()
		if _, err := NewRTOSS(2).Prune(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSceneMAPEvaluation(b *testing.B) {
	scenes := KITTIScenes(1, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SceneMAP(scenes, 1.0, uint64(i))
	}
}
