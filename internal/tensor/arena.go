package tensor

import (
	"fmt"
	"sync"
)

// Arena recycles tensor buffers within a bounded scope (one forward
// pass, or one execution program's run pool): instead of allocating a
// fresh tensor per layer and leaving the garbage collector to clean up,
// the execution engine returns each activation to the arena as soon as
// its last consumer has run and the next layer of the same size reuses
// the buffer.
//
// Retention is capped: at most MaxPerSize buffers are kept per element
// count and at most MaxBytes in total, so a long-lived arena (one that
// outlives a single run, e.g. pooled by a serving program) releases
// peak-batch buffers back to the garbage collector instead of holding
// them forever. Put calls beyond a cap silently drop the buffer.
//
// Arena is safe for concurrent use by multiple goroutines.
type Arena struct {
	mu   sync.Mutex
	free map[int][]*Tensor // released tensors keyed by element count

	maxPerSize int
	maxBytes   int64
	retained   int64 // bytes currently held across all free lists

	gets, reuses, drops int
}

// ArenaLimits bounds what an Arena retains. Zero or negative fields
// select the defaults.
type ArenaLimits struct {
	// MaxPerSize caps the retained buffers per distinct element count.
	MaxPerSize int
	// MaxBytes caps the total bytes retained across all free lists.
	MaxBytes int64
}

const (
	// DefaultArenaMaxPerSize is the default per-size retention cap. A
	// forward pass rarely has more same-sized activations alive at once
	// than its wavefront width, so a small cap loses nothing.
	DefaultArenaMaxPerSize = 8
	// DefaultArenaMaxBytes is the default total retention cap (bytes).
	DefaultArenaMaxBytes = 64 << 20
)

// NewArena returns an empty arena with the default retention limits.
func NewArena() *Arena {
	return NewArenaLimited(ArenaLimits{})
}

// NewArenaLimited returns an empty arena with explicit retention limits.
func NewArenaLimited(lim ArenaLimits) *Arena {
	if lim.MaxPerSize <= 0 {
		lim.MaxPerSize = DefaultArenaMaxPerSize
	}
	if lim.MaxBytes <= 0 {
		lim.MaxBytes = DefaultArenaMaxBytes
	}
	return &Arena{
		free:       map[int][]*Tensor{},
		maxPerSize: lim.MaxPerSize,
		maxBytes:   lim.MaxBytes,
	}
}

// Get returns a tensor of the given shape, reusing a previously
// released buffer of identical element count when one is available.
// Unlike New, the contents of the returned tensor are UNSPECIFIED
// (reused buffers keep their old data); callers must overwrite every
// element.
func (a *Arena) Get(shape ...int) *Tensor {
	// Formatting `shape` itself in the panic would mark the parameter
	// as escaping and heap-allocate the variadic slice at every Get
	// call site (the engine calls this once per layer) — so the message
	// names only the offending value.
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in arena Get", d))
		}
		n *= d
	}
	a.mu.Lock()
	a.gets++
	if list := a.free[n]; len(list) > 0 {
		t := list[len(list)-1]
		a.free[n] = list[:len(list)-1]
		a.reuses++
		a.retained -= tensorBytes(t)
		a.mu.Unlock()
		// The Put contract forbids the releasing caller from holding
		// any view of t, so the header and its shape/stride slices are
		// exclusively ours — reshape in place instead of allocating a
		// fresh header per Get (the engine calls this once per layer).
		t.reshapeInPlace(shape)
		return t
	}
	a.mu.Unlock()
	return New(shape...)
}

// Put releases a tensor's buffer back to the arena. The caller must not
// use t (or any view sharing its data) afterwards. Buffers beyond the
// arena's retention limits are dropped (left to the garbage collector).
func (a *Arena) Put(t *Tensor) {
	if t == nil || len(t.Data) == 0 {
		return
	}
	size := tensorBytes(t)
	a.mu.Lock()
	if len(a.free[len(t.Data)]) >= a.maxPerSize || a.retained+size > a.maxBytes {
		a.drops++
		a.mu.Unlock()
		return
	}
	a.free[len(t.Data)] = append(a.free[len(t.Data)], t)
	a.retained += size
	a.mu.Unlock()
}

// tensorBytes returns the buffer size of t in bytes.
func tensorBytes(t *Tensor) int64 { return int64(len(t.Data)) * 4 }

// Stats reports how many Get calls the arena served and how many of
// them reused a released buffer instead of allocating.
func (a *Arena) Stats() (gets, reuses int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.reuses
}

// Retained reports what the arena currently holds (buffer count and
// total bytes) and how many Put calls were dropped by the retention
// limits.
func (a *Arena) Retained() (buffers int, bytes int64, drops int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, list := range a.free {
		buffers += len(list)
	}
	return buffers, a.retained, a.drops
}
