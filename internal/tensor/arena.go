package tensor

import (
	"fmt"
	"sync"
)

// Arena recycles tensor buffers within a bounded scope (one forward
// pass, typically): instead of allocating a fresh tensor per layer and
// leaving the garbage collector to clean up, the execution engine
// returns each activation to the arena as soon as its last consumer has
// run and the next layer of the same size reuses the buffer.
//
// Arena is safe for concurrent use by multiple goroutines.
type Arena struct {
	mu   sync.Mutex
	free map[int][]*Tensor // released tensors keyed by element count

	gets, reuses int
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: map[int][]*Tensor{}}
}

// Get returns a tensor of the given shape, reusing a previously
// released buffer of identical element count when one is available.
// Unlike New, the contents of the returned tensor are UNSPECIFIED
// (reused buffers keep their old data); callers must overwrite every
// element.
func (a *Arena) Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	a.mu.Lock()
	a.gets++
	if list := a.free[n]; len(list) > 0 {
		t := list[len(list)-1]
		a.free[n] = list[:len(list)-1]
		a.reuses++
		a.mu.Unlock()
		return t.Reshape(shape...)
	}
	a.mu.Unlock()
	return New(shape...)
}

// Put releases a tensor's buffer back to the arena. The caller must not
// use t (or any view sharing its data) afterwards.
func (a *Arena) Put(t *Tensor) {
	if t == nil || len(t.Data) == 0 {
		return
	}
	a.mu.Lock()
	a.free[len(t.Data)] = append(a.free[len(t.Data)], t)
	a.mu.Unlock()
}

// Stats reports how many Get calls the arena served and how many of
// them reused a released buffer instead of allocating.
func (a *Arena) Stats() (gets, reuses int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.reuses
}
