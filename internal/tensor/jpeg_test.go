package tensor

import (
	"bytes"
	"image"
	"image/color"
	"image/jpeg"
	"math"
	"math/rand"
	"testing"
)

// jpeg_test.go validates the in-repo baseline JPEG decoder against the
// stdlib image/jpeg decoder. The two differ only in IDCT rounding and
// the final YCbCr→RGB precision, so agreement within a few 8-bit steps
// on arbitrary content is a strong correctness signal.

// jpegTestImage builds a deterministic image mixing smooth gradients
// (energy in low DCT frequencies) with noise (high frequencies).
func jpegTestImage(w, h int, seed int64) *image.NRGBA {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetNRGBA(x, y, color.NRGBA{
				R: uint8((x*255/(w+1) + rng.Intn(32)) & 0xff),
				G: uint8((y*255/(h+1) + rng.Intn(32)) & 0xff),
				B: uint8(((x + y) * 255 / (w + h + 1)) & 0xff),
				A: 255,
			})
		}
	}
	return img
}

// maxAbsDiff returns the largest per-sample difference between two
// equally-shaped image tensors, in 8-bit steps.
func maxAbsDiff(t *testing.T, a, b *Tensor) float64 {
	t.Helper()
	if !a.SameShape(b) {
		t.Fatalf("shape mismatch: %v vs %v", a.Shape(), b.Shape())
	}
	var worst float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i])-float64(b.Data[i])) * 255
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestDecodeJPEGMatchesStdlib(t *testing.T) {
	cases := []struct {
		name string
		w, h int
		q    int
	}{
		{"aligned-16", 32, 32, 90},
		{"partial-mcu", 17, 9, 90},
		{"tall", 24, 63, 75},
		{"low-quality", 40, 28, 30},
		{"single-pixel", 1, 1, 90},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := jpegTestImage(tc.w, tc.h, int64(tc.w*1000+tc.h))
			var buf bytes.Buffer
			if err := jpeg.Encode(&buf, src, &jpeg.Options{Quality: tc.q}); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeJPEG(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := jpeg.Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			want := FromImage(ref)
			if d := maxAbsDiff(t, got, want); d > 4 {
				t.Errorf("max sample difference vs stdlib = %.2f/255, want <= 4", d)
			}
		})
	}
}

func TestDecodeJPEGGrayscale(t *testing.T) {
	src := image.NewGray(image.Rect(0, 0, 21, 13))
	for i := range src.Pix {
		src.Pix[i] = uint8(i * 7)
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, src, &jpeg.Options{Quality: 85}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJPEG(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != 3 || got.Dim(1) != 13 || got.Dim(2) != 21 {
		t.Fatalf("shape = %v, want [3 13 21]", got.Shape())
	}
	// Channels must replicate exactly.
	plane := 13 * 21
	for i := 0; i < plane; i++ {
		if got.Data[i] != got.Data[plane+i] || got.Data[i] != got.Data[2*plane+i] {
			t.Fatalf("grayscale channels diverge at %d", i)
		}
	}
	ref, err := jpeg.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, got, FromImage(ref)); d > 2 {
		t.Errorf("max sample difference vs stdlib = %.2f/255, want <= 2", d)
	}
}

// TestDecodeImageSniffsJPEG pins the magic-byte dispatch.
func TestDecodeImageSniffsJPEG(t *testing.T) {
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, jpegTestImage(8, 8, 1), nil); err != nil {
		t.Fatal(err)
	}
	img, err := DecodeImage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if img.Dim(1) != 8 || img.Dim(2) != 8 {
		t.Fatalf("shape = %v, want [3 8 8]", img.Shape())
	}
}

func TestDecodeJPEGErrors(t *testing.T) {
	var valid bytes.Buffer
	if err := jpeg.Encode(&valid, jpegTestImage(16, 16, 2), nil); err != nil {
		t.Fatal(err)
	}
	vb := valid.Bytes()

	truncated := append([]byte(nil), vb[:len(vb)/2]...)

	// Corrupt the first DHT's symbol counts into an overfull table.
	badHuff := append([]byte(nil), vb...)
	if i := bytes.Index(badHuff, []byte{0xff, 0xc4}); i >= 0 {
		badHuff[i+5] = 255 // 255 one-bit codes: impossible
	} else {
		t.Fatal("no DHT marker in stdlib output")
	}

	// Patch SOF dimensions to a >2^26-pixel bomb (the guard must fire
	// before any allocation).
	bomb := append([]byte(nil), vb...)
	i := bytes.Index(bomb, []byte{0xff, 0xc0})
	if i < 0 {
		t.Fatal("no SOF0 marker in stdlib output")
	}
	bomb[i+5], bomb[i+6] = 0xff, 0xff // height = 65535
	bomb[i+7], bomb[i+8] = 0xff, 0xff // width = 65535

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not-jpeg", []byte{0xff, 0xd8, 0x00, 0x01}},
		{"truncated-scan", truncated},
		{"overfull-huffman", badHuff},
		{"dimension-bomb", bomb},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if img, err := DecodeJPEGInto(nil, tc.data); err == nil {
				t.Errorf("decode succeeded (shape %v), want error", img.Shape())
			}
		})
	}
}

// TestDecodeJPEGIntoReusesBuffer pins the Into contract: a dst with
// capacity is returned as the result, refilled in place.
func TestDecodeJPEGIntoReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, jpegTestImage(20, 12, 3), nil); err != nil {
		t.Fatal(err)
	}
	dst := New(3, 12, 20)
	got, err := DecodeJPEGInto(dst, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != dst {
		t.Error("DecodeJPEGInto allocated a fresh tensor despite sufficient dst capacity")
	}
}
