//go:build race

package tensor

// raceEnabled reports that this binary was built with -race, under
// which sync.Pool deliberately drops items and the runtime itself
// allocates — zero-alloc measurements are meaningless there.
const raceEnabled = true
