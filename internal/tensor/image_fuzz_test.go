package tensor

import (
	"bytes"
	"image"
	"image/jpeg"
	"image/png"
	"testing"
)

// fuzzSeeds is the in-code half of the FuzzDecodeImage seed corpus
// (the other half is checked in under testdata/fuzz/FuzzDecodeImage):
// one well-formed input per decode family plus the malformed shapes
// the decoder must reject without panicking.
func fuzzSeeds() [][]byte {
	seeds := [][]byte{
		[]byte("P6\n2 2\n255\nRRGGBBrrggbb"),       // valid binary PPM
		[]byte("P5\n2 2\n255\nabcd"),               // valid binary PGM
		[]byte("P3\n1 1\n255\n10 20 30\n"),         // valid ascii PPM
		[]byte("P2\n2 1\n15\n0 15\n"),              // valid ascii PGM, non-255 maxval
		[]byte("P6\n# comment\n2 1\n255\nRGBrgb"),  // header comment
		[]byte("P6\n2 2\n255\nRR"),                 // truncated payload
		[]byte("P3\n2 2\n255\n1 2 3"),              // truncated ascii samples
		[]byte("P6\n999999999 999999999\n255\n"),   // overflow-sized dims
		[]byte("P6\n1073741824 1073741824\n255\n"), // w*h overflows 32-bit
		[]byte("P6\n-2 2\n255\n"),                  // negative width
		[]byte("P6\n2 2\n70000\nRRGGBBrrggbb"),     // maxval out of range
		[]byte("P2\n1 1\n15\n99\n"),                // sample above maxval
		[]byte("P4\n2 2\n"),                        // unsupported PNM magic
		[]byte("P"),                                // bare magic byte
		[]byte("\x89PNG\r\n\x1a\n"),                // PNG magic, no chunks
		[]byte("not an image at all"),              // unrecognised format
		{},                                         // empty input
	}
	var buf bytes.Buffer
	img := image.NewNRGBA(image.Rect(0, 0, 2, 2))
	for i := range img.Pix {
		img.Pix[i] = byte(37 * i)
	}
	if err := png.Encode(&buf, img); err == nil {
		seeds = append(seeds, buf.Bytes()) // valid 2x2 PNG
	}
	seeds = append(seeds, jpegFuzzSeeds()...)
	return seeds
}

// jpegFuzzSeeds covers the JPEG decode family: a valid tiny baseline
// image plus the malformed shapes the hardening cares about — a
// truncated scan, an overfull Huffman table and a dimension bomb that
// must be rejected by the 1<<26-pixel cap before any plane allocation.
func jpegFuzzSeeds() [][]byte {
	var buf bytes.Buffer
	src := image.NewNRGBA(image.Rect(0, 0, 9, 6))
	for i := range src.Pix {
		src.Pix[i] = byte(41*i + 7)
	}
	if err := jpeg.Encode(&buf, src, &jpeg.Options{Quality: 80}); err != nil {
		return nil
	}
	valid := buf.Bytes()

	truncated := append([]byte(nil), valid[:2*len(valid)/3]...)

	badHuff := append([]byte(nil), valid...)
	if i := bytes.Index(badHuff, []byte{0xff, 0xc4}); i >= 0 {
		badHuff[i+5] = 255 // 255 one-bit codes: overfull table
	}

	bomb := append([]byte(nil), valid...)
	if i := bytes.Index(bomb, []byte{0xff, 0xc0}); i >= 0 {
		bomb[i+5], bomb[i+6] = 0xff, 0xff // height = 65535
		bomb[i+7], bomb[i+8] = 0xff, 0xff // width = 65535 → 4 Gpx
	}

	return [][]byte{
		valid,
		truncated,
		badHuff,
		bomb,
		{0xff, 0xd8},             // bare SOI
		{0xff, 0xd8, 0xff, 0xc2}, // progressive SOF: explicit unsupported error
	}
}

// FuzzDecodeImage hammers the image front door (the bytes a /detect
// request body delivers) with malformed headers, truncated payloads
// and oversized dimensions: the decoder must either error or return a
// well-formed [3, H, W] tensor in [0, 1] — never panic, never return
// out-of-range pixels, never allocate from a hostile header.
func FuzzDecodeImage(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodeImage(bytes.NewReader(data))
		if err != nil {
			if img != nil {
				t.Fatalf("error %v alongside a non-nil image", err)
			}
			return
		}
		if img.Rank() != 3 || img.Dim(0) != 3 {
			t.Fatalf("decoded shape %v, want [3, H, W]", img.Shape())
		}
		h, w := img.Dim(1), img.Dim(2)
		if h <= 0 || w <= 0 || h*w > maxImagePixels {
			t.Fatalf("decoded dimensions %dx%d out of bounds", w, h)
		}
		if len(img.Data) != 3*h*w {
			t.Fatalf("data length %d for shape %v", len(img.Data), img.Shape())
		}
		for i, v := range img.Data {
			if !(v >= 0 && v <= 1) { // also catches NaN
				t.Fatalf("pixel %d = %v outside [0, 1]", i, v)
			}
		}
	})
}

// TestFuzzSeedsExerciseBothOutcomes pins the seed corpus itself: the
// valid seeds must decode and the malformed ones must error (so the
// corpus keeps covering both halves of the fuzz invariant as the
// decoder evolves).
func TestFuzzSeedsExerciseBothOutcomes(t *testing.T) {
	ok, bad := 0, 0
	for _, s := range fuzzSeeds() {
		if _, err := DecodeImage(bytes.NewReader(s)); err != nil {
			bad++
		} else {
			ok++
		}
	}
	if ok < 5 {
		t.Errorf("only %d seeds decode successfully; corpus lost its valid inputs", ok)
	}
	if bad < 10 {
		t.Errorf("only %d seeds error; corpus lost its malformed inputs", bad)
	}
}
