package tensor

import (
	"bytes"
	"image"
	"image/color"
	"image/png"
	"math/rand"
	"testing"
)

// png_test.go pins the hand-rolled PNG fast path (chunk walk + pooled
// zlib + defilter) bitwise against the stdlib image/png fallback on
// every color type the fast path claims, including noisy content that
// makes the encoder exercise all five scanline filters.

func pngNoiseImage(w, h int, alpha bool, seed int64) *image.NRGBA {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a := uint8(255)
			if alpha {
				a = uint8(rng.Intn(256))
			}
			img.SetNRGBA(x, y, color.NRGBA{
				R: uint8(rng.Intn(256)), G: uint8(x * 3), B: uint8(y * 5), A: a,
			})
		}
	}
	return img
}

func TestDecodePNGFastMatchesStdlib(t *testing.T) {
	gray := image.NewGray(image.Rect(0, 0, 31, 17))
	for i := range gray.Pix {
		gray.Pix[i] = uint8(i * 13)
	}
	cases := []struct {
		name string
		img  image.Image
	}{
		{"rgb-opaque", pngNoiseImage(33, 21, false, 1)}, // encoder emits color type 2
		{"rgba", pngNoiseImage(19, 27, true, 2)},        // color type 6, premultiplied on decode
		{"gray", gray},                                  // color type 0
		{"tiny", pngNoiseImage(1, 1, false, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := png.Encode(&buf, tc.img); err != nil {
				t.Fatal(err)
			}
			fast, err := DecodePNGInto(nil, buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			slow, err := decodePNGStdlib(nil, buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if !fast.SameShape(slow) {
				t.Fatalf("shape %v vs stdlib %v", fast.Shape(), slow.Shape())
			}
			for i := range fast.Data {
				if fast.Data[i] != slow.Data[i] {
					t.Fatalf("sample %d: fast %v != stdlib %v", i, fast.Data[i], slow.Data[i])
				}
			}
		})
	}
}

// TestDecodePNGFallbackShapes pins that shapes outside the fast path
// (palette here) still decode through the stdlib fallback.
func TestDecodePNGFallbackShapes(t *testing.T) {
	pal := image.NewPaletted(image.Rect(0, 0, 9, 7), color.Palette{
		color.NRGBA{R: 255, A: 255}, color.NRGBA{G: 255, A: 255}, color.NRGBA{B: 255, A: 255},
	})
	for i := range pal.Pix {
		pal.Pix[i] = uint8(i % 3)
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, pal); err != nil {
		t.Fatal(err)
	}
	img, err := DecodePNG(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if img.Dim(0) != 3 || img.Dim(1) != 7 || img.Dim(2) != 9 {
		t.Fatalf("shape = %v, want [3 7 9]", img.Shape())
	}
	if img.At(0, 0, 0) != 1 || img.At(1, 0, 1) != 1 || img.At(2, 0, 2) != 1 {
		t.Error("palette colors did not round-trip")
	}
}

func TestDecodePNGErrors(t *testing.T) {
	var valid bytes.Buffer
	if err := png.Encode(&valid, pngNoiseImage(8, 8, false, 4)); err != nil {
		t.Fatal(err)
	}
	vb := valid.Bytes()

	truncated := append([]byte(nil), vb[:len(vb)-8]...) // drop IEND

	corruptZlib := append([]byte(nil), vb...)
	if i := bytes.Index(corruptZlib, []byte("IDAT")); i >= 0 {
		corruptZlib[i+6] ^= 0xa5
	}

	bomb := append([]byte(nil), vb...)
	bomb[16], bomb[17], bomb[18], bomb[19] = 0x7f, 0xff, 0xff, 0xff // width
	bomb[20], bomb[21], bomb[22], bomb[23] = 0x7f, 0xff, 0xff, 0xff // height

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad-signature", []byte("\x89PNGnope....................................")},
		{"truncated", truncated},
		{"corrupt-zlib", corruptZlib},
		{"dimension-bomb", bomb},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if img, err := DecodePNGInto(nil, tc.data); err == nil {
				t.Errorf("decode succeeded (shape %v), want error", img.Shape())
			}
		})
	}
}
