package tensor

import (
	"bytes"
	"image/jpeg"
	"image/png"
	"testing"
)

// image_alloc_test.go pins the zero-allocation contract of the ingest
// hot path — byte-slice decode into retained tensors, and the pooled
// letterbox/resize — with testing.AllocsPerRun, the runtime complement
// of the static //rtoss:noalloc gates.

// allocsSteadyState mirrors the detect package's helper: pooled
// scratch can be dropped by a GC mid-measurement (a refill is a real
// allocation but not a regression), so nonzero measurements are
// retried after re-warming before they are believed.
func allocsSteadyState(f func()) float64 {
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		f()
		allocs = testing.AllocsPerRun(100, f)
		if allocs == 0 {
			break
		}
	}
	return allocs
}

func TestDecodeImageIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("-race drops sync.Pool items and allocates internally; zero-alloc is only meaningful without it")
	}
	src := jpegTestImage(64, 48, 7)

	var ppm bytes.Buffer
	if err := EncodePPM(&ppm, FromImage(src)); err != nil {
		t.Fatal(err)
	}
	var pngBuf bytes.Buffer
	if err := png.Encode(&pngBuf, src); err != nil {
		t.Fatal(err)
	}
	var jpg bytes.Buffer
	if err := jpeg.Encode(&jpg, src, nil); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"ppm", ppm.Bytes()},
		{"png", pngBuf.Bytes()},
		{"jpeg", jpg.Bytes()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst, err := DecodeImageInto(nil, tc.data)
			if err != nil {
				t.Fatal(err)
			}
			got := allocsSteadyState(func() {
				if dst, err = DecodeImageInto(dst, tc.data); err != nil {
					t.Fatal(err)
				}
			})
			if got != 0 {
				t.Errorf("DecodeImageInto(%s): %v allocs/op in steady state, want 0", tc.name, got)
			}
		})
	}
}

func TestLetterboxIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("-race drops sync.Pool items and allocates internally; zero-alloc is only meaningful without it")
	}
	src := New(3, 375, 1242) // KITTI geometry exercises resize + pad
	for i := range src.Data {
		src.Data[i] = float32(i%256) / 255
	}
	dst, _ := LetterboxImageInto(nil, src, 640, 640, LetterboxFill)
	got := allocsSteadyState(func() {
		dst, _ = LetterboxImageInto(dst, src, 640, 640, LetterboxFill)
	})
	if got != 0 {
		t.Errorf("LetterboxImageInto: %v allocs/op in steady state, want 0", got)
	}

	rdst := ResizeBilinearInto(nil, src, 192, 636)
	got = allocsSteadyState(func() {
		rdst = ResizeBilinearInto(rdst, src, 192, 636)
	})
	if got != 0 {
		t.Errorf("ResizeBilinearInto: %v allocs/op in steady state, want 0", got)
	}
}

// TestLetterboxIntoMatchesAllocating pins that the pooled path and the
// public allocating path are bitwise identical — the eval mAP parity
// gates depend on preprocessing being exact.
func TestLetterboxIntoMatchesAllocating(t *testing.T) {
	src := New(3, 375, 1242)
	for i := range src.Data {
		src.Data[i] = float32((i*2654435761)%977) / 976
	}
	a, metaA := LetterboxImage(src, 640, 640, LetterboxFill)
	dst := New(3, 640, 640)
	b, metaB := LetterboxImageInto(dst, src, 640, 640, LetterboxFill)
	if metaA != metaB {
		t.Fatalf("meta mismatch: %+v vs %+v", metaA, metaB)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("sample %d: %v != %v", i, a.Data[i], b.Data[i])
		}
	}
}
