package tensor

import (
	"sync"
	"testing"
)

func TestArenaReusesBuffers(t *testing.T) {
	a := NewArena()
	t1 := a.Get(2, 3, 4)
	data := &t1.Data[0]
	a.Put(t1)
	t2 := a.Get(4, 3, 2) // same element count, different shape
	if &t2.Data[0] != data {
		t.Fatal("arena did not reuse the released buffer")
	}
	if t2.Dim(0) != 4 || t2.Dim(1) != 3 || t2.Dim(2) != 2 {
		t.Fatalf("reused tensor has shape %v", t2.Shape())
	}
	t3 := a.Get(2, 3, 4) // nothing free: fresh allocation
	if &t3.Data[0] == data {
		t.Fatal("arena handed out a live buffer twice")
	}
	gets, reuses := a.Stats()
	if gets != 3 || reuses != 1 {
		t.Fatalf("stats = %d gets / %d reuses, want 3/1", gets, reuses)
	}
}

func TestArenaDifferentSizesDoNotMix(t *testing.T) {
	a := NewArena()
	small := a.Get(2, 2)
	a.Put(small)
	big := a.Get(3, 3)
	if len(big.Data) != 9 {
		t.Fatalf("big tensor has %d elements", len(big.Data))
	}
	if _, reuses := a.Stats(); reuses != 0 {
		t.Fatal("arena reused a buffer of the wrong size")
	}
}

func TestArenaConcurrentUse(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tt := a.Get(4, 4)
				tt.Fill(1)
				a.Put(tt)
			}
		}()
	}
	wg.Wait()
	gets, _ := a.Stats()
	if gets != 800 {
		t.Fatalf("gets = %d, want 800", gets)
	}
}
