package tensor

import (
	"sync"
	"testing"
)

func TestArenaReusesBuffers(t *testing.T) {
	a := NewArena()
	t1 := a.Get(2, 3, 4)
	data := &t1.Data[0]
	a.Put(t1)
	t2 := a.Get(4, 3, 2) // same element count, different shape
	if &t2.Data[0] != data {
		t.Fatal("arena did not reuse the released buffer")
	}
	if t2.Dim(0) != 4 || t2.Dim(1) != 3 || t2.Dim(2) != 2 {
		t.Fatalf("reused tensor has shape %v", t2.Shape())
	}
	t3 := a.Get(2, 3, 4) // nothing free: fresh allocation
	if &t3.Data[0] == data {
		t.Fatal("arena handed out a live buffer twice")
	}
	gets, reuses := a.Stats()
	if gets != 3 || reuses != 1 {
		t.Fatalf("stats = %d gets / %d reuses, want 3/1", gets, reuses)
	}
}

func TestArenaDifferentSizesDoNotMix(t *testing.T) {
	a := NewArena()
	small := a.Get(2, 2)
	a.Put(small)
	big := a.Get(3, 3)
	if len(big.Data) != 9 {
		t.Fatalf("big tensor has %d elements", len(big.Data))
	}
	if _, reuses := a.Stats(); reuses != 0 {
		t.Fatal("arena reused a buffer of the wrong size")
	}
}

func TestArenaCapsPerSizeRetention(t *testing.T) {
	a := NewArenaLimited(ArenaLimits{MaxPerSize: 2, MaxBytes: 1 << 20})
	ts := make([]*Tensor, 5)
	for i := range ts {
		ts[i] = a.Get(8, 8)
	}
	for _, tt := range ts {
		a.Put(tt)
	}
	buffers, bytes, drops := a.Retained()
	if buffers != 2 || drops != 3 {
		t.Fatalf("retained %d buffers with %d drops, want 2 retained / 3 dropped", buffers, drops)
	}
	if bytes != 2*8*8*4 {
		t.Fatalf("retained %d bytes, want %d", bytes, 2*8*8*4)
	}
}

func TestArenaCapsTotalBytes(t *testing.T) {
	// 1 KiB budget: one 64-element float32 buffer (256 B) per size class
	// fits, but a fifth distinct size class would exceed the budget.
	a := NewArenaLimited(ArenaLimits{MaxPerSize: 8, MaxBytes: 1024})
	sizes := [][]int{{64}, {8, 8}, {2, 32}, {4, 16}, {16, 4}}
	held := make([]*Tensor, 0, len(sizes))
	for i, s := range sizes {
		// Distinct element counts per class so free lists don't merge.
		held = append(held, a.Get(append([]int{i + 1}, s...)...))
	}
	dropped := 0
	for _, tt := range held {
		before, _, _ := a.Retained()
		a.Put(tt)
		after, _, _ := a.Retained()
		if after == before {
			dropped++
		}
	}
	_, bytes, drops := a.Retained()
	if bytes > 1024 {
		t.Fatalf("retained %d bytes exceeds the 1024-byte cap", bytes)
	}
	if drops == 0 || dropped != drops {
		t.Fatalf("drops = %d (observed %d), want > 0 once the byte budget is spent", drops, dropped)
	}
}

func TestArenaByteBudgetFreesUpOnReuse(t *testing.T) {
	a := NewArenaLimited(ArenaLimits{MaxPerSize: 4, MaxBytes: 256})
	t1 := a.Get(64) // exactly the budget
	a.Put(t1)
	if _, bytes, _ := a.Retained(); bytes != 256 {
		t.Fatalf("retained %d bytes, want 256", bytes)
	}
	t2 := a.Get(64) // reuse frees the budget
	if _, bytes, _ := a.Retained(); bytes != 0 {
		t.Fatal("reuse did not release retained bytes")
	}
	a.Put(t2) // fits again
	if _, bytes, drops := a.Retained(); bytes != 256 || drops != 0 {
		t.Fatalf("re-put retained %d bytes with %d drops, want 256/0", bytes, drops)
	}
}

func TestArenaConcurrentUse(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tt := a.Get(4, 4)
				tt.Fill(1)
				a.Put(tt)
			}
		}()
	}
	wg.Wait()
	gets, _ := a.Stats()
	if gets != 800 {
		t.Fatalf("gets = %d, want 800", gets)
	}
}
