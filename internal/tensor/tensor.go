// Package tensor implements dense float32 tensors and the numeric
// kernels (convolution, pooling, matrix multiply, norms) that the rest
// of the repository builds on.
//
// Convention: 4-D tensors are laid out NCHW (batch, channel, height,
// width); convolution weights are laid out KCRS (output channel, input
// channel, kernel rows, kernel cols). Data is stored row-major in a
// single contiguous slice.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor of arbitrary rank.
type Tensor struct {
	shape   []int
	strides []int
	Data    []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics on negative dimensions.
func New(shape ...int) *Tensor {
	// The panic formats only the offending value, not `shape` itself:
	// referencing the slice would mark the parameter as escaping and
	// heap-allocate the variadic argument at every New call site (and,
	// transitively, every Arena.Get call site on the alloc path).
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in New", d))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		Data:  make([]float32, n),
	}
	t.computeStrides()
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	t := &Tensor{shape: append([]int(nil), shape...), Data: data}
	t.computeStrides()
	return t
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

func (t *Tensor) computeStrides() {
	t.strides = make([]int, len(t.shape))
	s := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		t.strides[i] = s
		s *= t.shape[i]
	}
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// offset converts a multi-index into a flat offset, with bounds checks.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off += v * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx...)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx...)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape covering the same data.
// The element count must be unchanged. The returned tensor shares Data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	r := &Tensor{shape: append([]int(nil), shape...), Data: t.Data}
	r.computeStrides()
	return r
}

// reshapeInPlace re-points t's own metadata at shape, reusing the
// header and the shape/stride slice capacity. Unlike Reshape it does
// NOT return a fresh view, so it is only safe when the caller owns t
// exclusively — the arena's buffer-recycling path (see Arena.Get).
//
//rtoss:noalloc
func (t *Tensor) reshapeInPlace(shape []int) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		// shape deliberately not formatted: see Arena.Get.
		panic(fmt.Sprintf("tensor: cannot reshape %d elems to %d elems in place", len(t.Data), n)) //rtoss:allow noalloc (panic path; never fires on the arena reuse path)
	}
	if cap(t.shape) < len(shape) || cap(t.strides) < len(shape) {
		t.shape = make([]int, len(shape))   //rtoss:allow noalloc (amortized rank grow)
		t.strides = make([]int, len(shape)) //rtoss:allow noalloc (amortized rank grow)
	}
	t.shape = t.shape[:len(shape)]
	copy(t.shape, shape)
	t.strides = t.strides[:len(shape)]
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		t.strides[i] = s
		s *= shape[i]
	}
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer with a compact shape/stat summary.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v nnz=%d/%d L2=%.4f", t.shape, t.NNZ(), t.Len(), t.L2())
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// NNZ returns the number of non-zero elements.
func (t *Tensor) NNZ() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero elements in [0, 1].
// An empty tensor has sparsity 0.
func (t *Tensor) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return 1 - float64(t.NNZ())/float64(len(t.Data))
}

// L1 returns the sum of absolute values.
func (t *Tensor) L1() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// L2 returns the Euclidean norm.
func (t *Tensor) L2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// AbsMax returns the maximum absolute element value, or 0 for empty tensors.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Add accumulates o into t elementwise. Shapes must match.
func (t *Tensor) Add(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// Mul multiplies t by o elementwise (Hadamard product). Shapes must match.
func (t *Tensor) Mul(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.Data {
		t.Data[i] *= o.Data[i]
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Equal reports elementwise equality within tolerance eps.
func (t *Tensor) Equal(o *Tensor, eps float32) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.Data {
		d := t.Data[i] - o.Data[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}
