package tensor

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// jpeg.go is a dependency-free baseline JPEG (ITU-T T.81) decoder:
// SOF0/SOF1 frames, 8-bit samples, 1 or 3 components, 4:4:4 / 4:2:2 /
// 4:2:0 / 4:4:0 chroma subsampling, restart markers. Progressive
// (SOF2), arithmetic coding, 12-bit precision and hierarchical modes
// are rejected with explicit errors — the serving path needs the
// payloads cameras and phones actually emit, not the full standard.
//
// The decoder state (Huffman tables, quantisation tables, component
// planes, the bit reader) lives in a pooled struct, so steady-state
// decoding of same-sized images allocates nothing. The IDCT is a
// float32 two-pass product with a precomputed cosine matrix; the
// YCbCr→RGB step uses the stdlib's exact fixed-point arithmetic so
// output differs from image/jpeg only by IDCT rounding (≤ a few /255).

// jpegComponent is one frame component (Y, Cb or Cr) with its
// MCU-aligned sample plane.
type jpegComponent struct {
	id     int
	h, v   int // sampling factors (1 or 2)
	tq     int // quantisation table selector
	td, ta int // DC/AC Huffman selectors (from SOS)
	pred   int32
	plane  []byte // pw × ph MCU-aligned reconstructed samples (pooled)
	pw, ph int
}

// jpegHuff is a derived Huffman decoding table: the ITU T.81 F.16
// mincode/maxcode/valptr arrays plus an 8-bit prefix LUT that resolves
// the overwhelming majority of codes in one probe.
type jpegHuff struct {
	lut     [256]uint16 // sym<<8 | codeLen for codes ≤ 8 bits; 0 = miss
	mincode [17]int32
	maxcode [17]int32 // -1 where no codes of that length exist
	valptr  [17]int32
	vals    [256]byte
	ok      bool
}

// jpegDecoder carries all decode state; it is pooled and fully reset
// per image.
type jpegDecoder struct {
	data []byte
	pos  int

	w, h  int
	ncomp int
	comp  [3]jpegComponent
	quant [4][64]int32 // zigzag order, as stored in DQT
	qdef  [4]bool
	dc    [4]jpegHuff
	ac    [4]jpegHuff
	ri    int // restart interval in MCUs (0 = none)

	// Entropy-coded-segment bit reader (MSB first, 0xFF00 unstuffed).
	acc    uint32
	nbits  int
	marker byte // pending marker hit while filling (0 = none)
}

var jpegPool = sync.Pool{New: func() any { return new(jpegDecoder) }}

// jpegUnzig maps zigzag coefficient order to natural (row-major) order.
var jpegUnzig = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// jpegCos[x][u] = a(u)·cos((2x+1)uπ/16)/2 — one matrix serves both
// passes of the separable 2-D IDCT.
var jpegCos [8][8]float32

func init() {
	for x := 0; x < 8; x++ {
		for u := 0; u < 8; u++ {
			a := 1.0
			if u == 0 {
				a = 1 / math.Sqrt2
			}
			jpegCos[x][u] = float32(a * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) / 2)
		}
	}
}

// DecodeJPEG decodes a baseline JPEG stream into a [3, H, W] tensor in
// [0, 1]. Grayscale JPEGs replicate luma across the three channels.
func DecodeJPEG(r io.Reader) (*Tensor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tensor: reading JPEG: %w", err)
	}
	return DecodeJPEGInto(nil, data)
}

// DecodeJPEGInto is DecodeJPEG over in-memory bytes with dst-buffer
// reuse (see DecodeImageInto for the contract). Steady-state redecodes
// of same-sized images are allocation-free.
func DecodeJPEGInto(dst *Tensor, data []byte) (*Tensor, error) {
	d := jpegPool.Get().(*jpegDecoder)
	err := d.decode(data)
	d.data = nil // do not pin the caller's buffer in the pool
	if err != nil {
		jpegPool.Put(d)
		return nil, err
	}
	out := sizedInto(dst, 3, d.h, d.w)
	d.fill(out)
	jpegPool.Put(d)
	return out, nil
}

// decode parses headers and the entropy-coded scan, leaving
// reconstructed component planes in d.comp.
func (d *jpegDecoder) decode(data []byte) error {
	if len(data) < 2 || data[0] != 0xff || data[1] != 0xd8 {
		return fmt.Errorf("tensor: not a JPEG stream (no SOI)")
	}
	d.data, d.pos = data, 2
	d.w, d.h, d.ncomp, d.ri = 0, 0, 0, 0
	d.qdef = [4]bool{}
	for i := range d.dc {
		d.dc[i].ok, d.ac[i].ok = false, false
	}
	for {
		if d.pos >= len(d.data) {
			return fmt.Errorf("tensor: JPEG truncated before SOS: %w", io.ErrUnexpectedEOF)
		}
		if d.data[d.pos] != 0xff {
			return fmt.Errorf("tensor: JPEG expected marker at offset %d, got %#02x", d.pos, d.data[d.pos])
		}
		for d.pos < len(d.data) && d.data[d.pos] == 0xff {
			d.pos++ // 0xFF fill bytes may pad any marker
		}
		if d.pos >= len(d.data) {
			return fmt.Errorf("tensor: JPEG truncated in marker: %w", io.ErrUnexpectedEOF)
		}
		m := d.data[d.pos]
		d.pos++
		switch {
		case m == 0x00:
			return fmt.Errorf("tensor: JPEG stuffed byte outside entropy data")
		case m == 0x01 || (m >= 0xd0 && m <= 0xd7): // TEM / bare RST: no payload
			continue
		case m == 0xd8:
			return fmt.Errorf("tensor: JPEG unexpected second SOI")
		case m == 0xd9:
			return fmt.Errorf("tensor: JPEG EOI before any scan")
		}
		seg, err := d.segment()
		if err != nil {
			return err
		}
		switch m {
		case 0xdb: // DQT
			if err := d.parseDQT(seg); err != nil {
				return err
			}
		case 0xc4: // DHT
			if err := d.parseDHT(seg); err != nil {
				return err
			}
		case 0xc0, 0xc1: // SOF0 baseline / SOF1 extended sequential
			if err := d.parseSOF(seg); err != nil {
				return err
			}
		case 0xc2:
			return fmt.Errorf("tensor: progressive JPEG (SOF2) unsupported; re-encode as baseline")
		case 0xc3, 0xc5, 0xc6, 0xc7, 0xc9, 0xca, 0xcb, 0xcd, 0xce, 0xcf:
			return fmt.Errorf("tensor: JPEG frame type %#02x unsupported (baseline SOF0/SOF1 only)", m)
		case 0xdd: // DRI
			if len(seg) < 2 {
				return fmt.Errorf("tensor: JPEG DRI segment truncated")
			}
			d.ri = int(seg[0])<<8 | int(seg[1])
		case 0xda: // SOS — headers end, entropy data follows
			if err := d.parseSOS(seg); err != nil {
				return err
			}
			return d.decodeScan()
		default:
			// APP0..APP15, COM, DNL and friends: metadata, skipped.
		}
	}
}

// segment consumes a marker segment's 2-byte big-endian length and
// returns its payload.
func (d *jpegDecoder) segment() ([]byte, error) {
	if len(d.data)-d.pos < 2 {
		return nil, fmt.Errorf("tensor: JPEG segment length truncated: %w", io.ErrUnexpectedEOF)
	}
	n := int(d.data[d.pos])<<8 | int(d.data[d.pos+1])
	if n < 2 || len(d.data)-d.pos < n {
		return nil, fmt.Errorf("tensor: JPEG segment length %d exceeds stream: %w", n, io.ErrUnexpectedEOF)
	}
	seg := d.data[d.pos+2 : d.pos+n]
	d.pos += n
	return seg, nil
}

func (d *jpegDecoder) parseDQT(seg []byte) error {
	for len(seg) > 0 {
		pq, tq := int(seg[0]>>4), int(seg[0]&15)
		if pq != 0 {
			return fmt.Errorf("tensor: JPEG 16-bit quantisation tables unsupported")
		}
		if tq > 3 || len(seg) < 65 {
			return fmt.Errorf("tensor: JPEG bad DQT segment (tq=%d, %d bytes left)", tq, len(seg))
		}
		for i := 0; i < 64; i++ {
			d.quant[tq][i] = int32(seg[1+i])
		}
		d.qdef[tq] = true
		seg = seg[65:]
	}
	return nil
}

func (d *jpegDecoder) parseDHT(seg []byte) error {
	for len(seg) > 0 {
		if len(seg) < 17 {
			return fmt.Errorf("tensor: JPEG DHT segment truncated")
		}
		tc, th := int(seg[0]>>4), int(seg[0]&15)
		if tc > 1 || th > 3 {
			return fmt.Errorf("tensor: JPEG bad DHT class/slot %d/%d", tc, th)
		}
		total := 0
		for _, c := range seg[1:17] {
			total += int(c)
		}
		if total == 0 || total > 256 || len(seg) < 17+total {
			return fmt.Errorf("tensor: JPEG bad DHT value count %d", total)
		}
		h := &d.dc[th]
		if tc == 1 {
			h = &d.ac[th]
		}
		if err := buildJPEGHuff(h, seg[1:17], seg[17:17+total]); err != nil {
			return err
		}
		seg = seg[17+total:]
	}
	return nil
}

// buildJPEGHuff derives the F.16 decode arrays and the 8-bit prefix
// LUT from a DHT's (counts-per-length, values) description.
func buildJPEGHuff(h *jpegHuff, counts, vals []byte) error {
	copy(h.vals[:], vals)
	h.lut = [256]uint16{}
	code, k := int32(0), int32(0)
	for l := 1; l <= 16; l++ {
		n := int32(counts[l-1])
		if code+n > 1<<l {
			return fmt.Errorf("tensor: JPEG overfull Huffman table at code length %d", l)
		}
		h.valptr[l] = k
		h.mincode[l] = code
		if n == 0 {
			h.maxcode[l] = -1
		} else {
			h.maxcode[l] = code + n - 1
			if l <= 8 {
				shift := uint(8 - l)
				for i := int32(0); i < n; i++ {
					entry := uint16(h.vals[k+i])<<8 | uint16(l)
					base := (code + i) << shift
					for j := int32(0); j < 1<<shift; j++ {
						h.lut[base+j] = entry
					}
				}
			}
		}
		k += n
		code = (code + n) << 1
	}
	h.ok = true
	return nil
}

func (d *jpegDecoder) parseSOF(seg []byte) error {
	if d.ncomp != 0 {
		return fmt.Errorf("tensor: JPEG has multiple SOF markers")
	}
	if len(seg) < 6 {
		return fmt.Errorf("tensor: JPEG SOF segment truncated")
	}
	if seg[0] != 8 {
		return fmt.Errorf("tensor: JPEG sample precision %d unsupported (8-bit only)", seg[0])
	}
	h := int(seg[1])<<8 | int(seg[2])
	w := int(seg[3])<<8 | int(seg[4])
	nc := int(seg[5])
	// Pre-allocation guard, same policy as PNM/PNG: hostile headers are
	// rejected before any plane is sized from them.
	if w <= 0 || h <= 0 || w > maxImagePixels/h {
		return fmt.Errorf("tensor: unreasonable JPEG dimensions %dx%d", w, h)
	}
	if nc != 1 && nc != 3 {
		return fmt.Errorf("tensor: JPEG with %d components unsupported (grayscale or YCbCr only)", nc)
	}
	if len(seg) < 6+3*nc {
		return fmt.Errorf("tensor: JPEG SOF component list truncated")
	}
	for i := 0; i < nc; i++ {
		c := &d.comp[i]
		c.id = int(seg[6+3*i])
		c.h, c.v = int(seg[7+3*i]>>4), int(seg[7+3*i]&15)
		c.tq = int(seg[8+3*i])
		if c.tq > 3 {
			return fmt.Errorf("tensor: JPEG component %d selects quant table %d", i, c.tq)
		}
		if nc == 1 {
			// A single-component scan is never interleaved; sampling
			// factors are irrelevant, so normalise them.
			c.h, c.v = 1, 1
			continue
		}
		if c.h < 1 || c.h > 2 || c.v < 1 || c.v > 2 {
			return fmt.Errorf("tensor: JPEG sampling factor %dx%d unsupported (1 or 2)", c.h, c.v)
		}
		if i > 0 && (c.h != 1 || c.v != 1) {
			return fmt.Errorf("tensor: JPEG subsampled luma with sampled chroma unsupported")
		}
	}
	d.w, d.h, d.ncomp = w, h, nc
	return nil
}

func (d *jpegDecoder) parseSOS(seg []byte) error {
	if d.ncomp == 0 {
		return fmt.Errorf("tensor: JPEG SOS before SOF")
	}
	if len(seg) < 1 {
		return fmt.Errorf("tensor: JPEG SOS segment truncated")
	}
	ns := int(seg[0])
	if ns != d.ncomp {
		return fmt.Errorf("tensor: JPEG non-interleaved scans unsupported (scan has %d of %d components)", ns, d.ncomp)
	}
	if len(seg) < 1+2*ns+3 {
		return fmt.Errorf("tensor: JPEG SOS segment truncated")
	}
	for i := 0; i < ns; i++ {
		cs := int(seg[1+2*i])
		sel := seg[2+2*i]
		found := false
		for j := 0; j < d.ncomp; j++ {
			if d.comp[j].id == cs {
				d.comp[j].td, d.comp[j].ta = int(sel>>4), int(sel&15)
				if d.comp[j].td > 3 || d.comp[j].ta > 3 {
					return fmt.Errorf("tensor: JPEG bad Huffman selector %#02x", sel)
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("tensor: JPEG scan references unknown component %d", cs)
		}
	}
	if ss, se := seg[1+2*ns], seg[2+2*ns]; ss != 0 || se != 63 {
		return fmt.Errorf("tensor: JPEG spectral selection %d..%d unsupported (baseline wants 0..63)", ss, se)
	}
	return nil
}

// decodeScan runs the interleaved entropy-coded segment: per MCU, per
// component, per block — Huffman decode, dequantise, IDCT, store.
func (d *jpegDecoder) decodeScan() error {
	hmax, vmax := 1, 1
	for i := 0; i < d.ncomp; i++ {
		if d.comp[i].h > hmax {
			hmax = d.comp[i].h
		}
		if d.comp[i].v > vmax {
			vmax = d.comp[i].v
		}
	}
	mcusX := (d.w + 8*hmax - 1) / (8 * hmax)
	mcusY := (d.h + 8*vmax - 1) / (8 * vmax)
	for i := 0; i < d.ncomp; i++ {
		c := &d.comp[i]
		c.pw, c.ph = mcusX*8*c.h, mcusY*8*c.v
		if need := c.pw * c.ph; cap(c.plane) < need {
			c.plane = make([]byte, need)
		} else {
			c.plane = c.plane[:need]
		}
		c.pred = 0
		if !d.qdef[c.tq] {
			return fmt.Errorf("tensor: JPEG scan uses undefined quant table %d", c.tq)
		}
		if !d.dc[c.td].ok || !d.ac[c.ta].ok {
			return fmt.Errorf("tensor: JPEG scan uses undefined Huffman table")
		}
	}
	d.acc, d.nbits, d.marker = 0, 0, 0
	var blk [64]int32
	var px [64]float32
	rst, sinceRestart := 0, 0
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if d.ri > 0 && sinceRestart == d.ri {
				if err := d.restart(rst); err != nil {
					return err
				}
				rst = (rst + 1) & 7
				sinceRestart = 0
				for i := 0; i < d.ncomp; i++ {
					d.comp[i].pred = 0
				}
			}
			for ci := 0; ci < d.ncomp; ci++ {
				c := &d.comp[ci]
				for by := 0; by < c.v; by++ {
					for bx := 0; bx < c.h; bx++ {
						if err := d.decodeBlock(c, &blk); err != nil {
							return err
						}
						jpegIDCT(&blk, &px)
						jpegStoreBlock(&px, c.plane, c.pw, (mx*c.h+bx)*8, (my*c.v+by)*8)
					}
				}
			}
			sinceRestart++
		}
	}
	return nil
}

// decodeBlock entropy-decodes and dequantises one 8×8 block into blk
// in natural order.
func (d *jpegDecoder) decodeBlock(c *jpegComponent, blk *[64]int32) error {
	for i := range blk {
		blk[i] = 0
	}
	q := &d.quant[c.tq]
	t, err := d.decodeHuff(&d.dc[c.td])
	if err != nil {
		return err
	}
	if t > 15 {
		return fmt.Errorf("tensor: JPEG DC category %d out of range", t)
	}
	diff, err := d.receiveExtend(int(t))
	if err != nil {
		return err
	}
	c.pred += diff
	blk[0] = c.pred * q[0]
	for k := 1; k < 64; {
		rs, err := d.decodeHuff(&d.ac[c.ta])
		if err != nil {
			return err
		}
		r, s := int(rs>>4), int(rs&15)
		if s == 0 {
			if r != 15 {
				break // EOB
			}
			k += 16 // ZRL: sixteen zeros
			continue
		}
		k += r
		if k > 63 {
			return fmt.Errorf("tensor: JPEG AC run-length overruns block")
		}
		v, err := d.receiveExtend(s)
		if err != nil {
			return err
		}
		blk[jpegUnzig[k]] = v * q[k]
		k++
	}
	return nil
}

// fillBits tops the accumulator up to ≥25 bits, unstuffing 0xFF00 and
// parking at any real marker (recorded in d.marker, consumed from the
// stream).
func (d *jpegDecoder) fillBits() {
	for d.nbits <= 24 {
		if d.marker != 0 || d.pos >= len(d.data) {
			return
		}
		b := d.data[d.pos]
		if b == 0xff {
			if d.pos+1 >= len(d.data) {
				d.pos++
				return
			}
			switch next := d.data[d.pos+1]; {
			case next == 0x00:
				d.pos += 2 // stuffed 0xFF data byte
			case next == 0xff:
				d.pos++ // fill byte before a marker
				continue
			default:
				d.marker = next
				d.pos += 2
				return
			}
		} else {
			d.pos++
		}
		d.acc = d.acc<<8 | uint32(b)
		d.nbits += 8
	}
}

//rtoss:noalloc
func (d *jpegDecoder) receiveBits(n int) (int32, error) {
	if d.nbits < n {
		d.fillBits()
		if d.nbits < n {
			return 0, io.ErrUnexpectedEOF
		}
	}
	v := int32(d.acc>>uint(d.nbits-n)) & (1<<uint(n) - 1)
	d.nbits -= n
	return v, nil
}

// receiveExtend reads a t-bit magnitude and sign-extends it per the
// T.81 EXTEND procedure.
func (d *jpegDecoder) receiveExtend(t int) (int32, error) {
	if t == 0 {
		return 0, nil
	}
	v, err := d.receiveBits(t)
	if err != nil {
		return 0, err
	}
	if v < 1<<uint(t-1) {
		v += -1<<uint(t) + 1
	}
	return v, nil
}

// decodeHuff resolves one Huffman symbol: an 8-bit LUT probe first,
// then the bit-serial F.16 walk for longer codes.
func (d *jpegDecoder) decodeHuff(h *jpegHuff) (byte, error) {
	if d.nbits < 16 {
		d.fillBits()
	}
	if d.nbits >= 8 {
		if e := h.lut[byte(d.acc>>uint(d.nbits-8))]; e != 0 {
			d.nbits -= int(e & 0xff)
			return byte(e >> 8), nil
		}
	}
	var code int32
	for l := 1; l <= 16; l++ {
		b, err := d.receiveBits(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if code >= h.mincode[l] && code <= h.maxcode[l] {
			return h.vals[h.valptr[l]+code-h.mincode[l]], nil
		}
	}
	return 0, fmt.Errorf("tensor: JPEG invalid Huffman code")
}

// restart discards partial-byte bits and consumes the expected RSTn
// marker at a restart-interval boundary.
func (d *jpegDecoder) restart(idx int) error {
	d.acc, d.nbits = 0, 0
	if d.marker == 0 {
		for d.pos+1 < len(d.data) && d.data[d.pos] == 0xff && d.data[d.pos+1] == 0xff {
			d.pos++
		}
		if d.pos+1 < len(d.data) && d.data[d.pos] == 0xff {
			d.marker = d.data[d.pos+1]
			d.pos += 2
		}
	}
	if d.marker != 0xd0+byte(idx) {
		return fmt.Errorf("tensor: JPEG expected restart marker RST%d, got %#02x", idx, d.marker)
	}
	d.marker = 0
	return nil
}

// jpegIDCT computes the 2-D inverse DCT of a dequantised block as two
// passes against the precomputed cosine matrix.
//
//rtoss:noalloc
func jpegIDCT(blk *[64]int32, out *[64]float32) {
	var tmp [64]float32
	for v := 0; v < 8; v++ {
		row := blk[v*8 : v*8+8]
		for x := 0; x < 8; x++ {
			var s float32
			for u := 0; u < 8; u++ {
				s += float32(row[u]) * jpegCos[x][u]
			}
			tmp[v*8+x] = s
		}
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			var s float32
			for v := 0; v < 8; v++ {
				s += tmp[v*8+x] * jpegCos[y][v]
			}
			out[y*8+x] = s
		}
	}
}

// jpegStoreBlock level-shifts (+128), rounds and clamps one spatial
// block into a component plane.
//
//rtoss:noalloc
func jpegStoreBlock(px *[64]float32, plane []byte, pw, x0, y0 int) {
	for y := 0; y < 8; y++ {
		row := plane[(y0+y)*pw+x0 : (y0+y)*pw+x0+8]
		for x := 0; x < 8; x++ {
			v := px[y*8+x] + 128.5
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			row[x] = byte(int32(v))
		}
	}
}

// fill converts the reconstructed planes into the [3, H, W] output,
// using the stdlib's exact fixed-point YCbCr→RGB arithmetic and
// nearest (box) chroma upsampling.
func (d *jpegDecoder) fill(out *Tensor) {
	w, h := d.w, d.h
	plane := w * h
	r0, g0, b0 := out.Data[:plane], out.Data[plane:2*plane], out.Data[2*plane:]
	if d.ncomp == 1 {
		c := &d.comp[0]
		for y := 0; y < h; y++ {
			row := c.plane[y*c.pw : y*c.pw+w]
			for x := 0; x < w; x++ {
				v := float32(row[x]) / 255
				r0[y*w+x], g0[y*w+x], b0[y*w+x] = v, v, v
			}
		}
		return
	}
	cy, ccb, ccr := &d.comp[0], &d.comp[1], &d.comp[2]
	hmax, vmax := cy.h, cy.v // chroma is 1×1 (validated in parseSOF)
	for y := 0; y < h; y++ {
		yrow := cy.plane[y*cy.pw:]
		brow := ccb.plane[(y/vmax)*ccb.pw:]
		rrow := ccr.plane[(y/vmax)*ccr.pw:]
		for x := 0; x < w; x++ {
			yy := int32(yrow[x]) * 0x10101
			cb := int32(brow[x/hmax]) - 128
			cr := int32(rrow[x/hmax]) - 128
			r0[y*w+x] = float32(jpegClamp8(yy+91881*cr)) / 255
			g0[y*w+x] = float32(jpegClamp8(yy-22554*cb-46802*cr)) / 255
			b0[y*w+x] = float32(jpegClamp8(yy+116130*cb)) / 255
		}
	}
}

// jpegClamp8 saturates a 16.16 fixed-point sample to 8 bits, matching
// color.YCbCrToRGB's clamp.
//
//rtoss:noalloc
func jpegClamp8(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 0xffffff {
		return 255
	}
	return v >> 16
}
