package tensor

import "fmt"

// letterbox.go implements the detector input transform: aspect-ratio
// preserving resize onto a fixed model resolution with symmetric gray
// padding ("letterboxing"), plus the metadata needed to map detections
// back into source-image pixel coordinates.

// LetterboxFill is the canonical pad value (YOLOv5's 114/255 gray).
const LetterboxFill = float32(114.0 / 255.0)

// LetterboxMeta records how a source image was placed on the model
// canvas, so model-space coordinates can be mapped back to source
// pixels (and vice versa) exactly.
type LetterboxMeta struct {
	// SrcW, SrcH are the source image dimensions in pixels.
	SrcW, SrcH int
	// DstW, DstH are the model canvas dimensions.
	DstW, DstH int
	// ScaleX, ScaleY are the per-axis effective scales (resized/src).
	// They differ slightly from each other only through rounding of the
	// resized extent; aspect ratio is preserved up to one pixel.
	ScaleX, ScaleY float64
	// PadX, PadY are the left/top padding in model pixels.
	PadX, PadY int
}

// ToSource maps a model-canvas coordinate back to source pixels. It
// runs per detection in the postprocess emit loop, hence the noalloc
// gate.
//
//rtoss:noalloc
func (m LetterboxMeta) ToSource(x, y float64) (float64, float64) {
	return (x - float64(m.PadX)) / m.ScaleX, (y - float64(m.PadY)) / m.ScaleY
}

// ToModel maps a source-pixel coordinate onto the model canvas.
//
//rtoss:noalloc
func (m LetterboxMeta) ToModel(x, y float64) (float64, float64) {
	return x*m.ScaleX + float64(m.PadX), y*m.ScaleY + float64(m.PadY)
}

// LetterboxImage scales a [C, H, W] (or [1, C, H, W]) image to fit a
// dstH x dstW canvas preserving aspect ratio (bilinear), centres it,
// and fills the border with fill (use LetterboxFill for the canonical
// gray). It returns the [C, dstH, dstW] canvas and the mapping
// metadata.
func LetterboxImage(src *Tensor, dstH, dstW int, fill float32) (*Tensor, LetterboxMeta) {
	img := src
	if img.Rank() == 4 && img.Dim(0) == 1 {
		img = img.Reshape(img.Dim(1), img.Dim(2), img.Dim(3))
	}
	if img.Rank() != 3 {
		panic(fmt.Sprintf("tensor: LetterboxImage wants a [C, H, W] image, got %v", src.Shape()))
	}
	if dstH <= 0 || dstW <= 0 {
		panic(fmt.Sprintf("tensor: LetterboxImage target %dx%d must be positive", dstH, dstW))
	}
	c, srcH, srcW := img.Dim(0), img.Dim(1), img.Dim(2)
	scale := float64(dstW) / float64(srcW)
	if s := float64(dstH) / float64(srcH); s < scale {
		scale = s
	}
	newW := int(float64(srcW)*scale + 0.5)
	newH := int(float64(srcH)*scale + 0.5)
	if newW < 1 {
		newW = 1
	}
	if newH < 1 {
		newH = 1
	}
	if newW > dstW {
		newW = dstW
	}
	if newH > dstH {
		newH = dstH
	}
	resized := img
	if newW != srcW || newH != srcH {
		resized = ResizeBilinear(img, newH, newW)
	}
	meta := LetterboxMeta{
		SrcW: srcW, SrcH: srcH,
		DstW: dstW, DstH: dstH,
		ScaleX: float64(newW) / float64(srcW),
		ScaleY: float64(newH) / float64(srcH),
		PadX:   (dstW - newW) / 2,
		PadY:   (dstH - newH) / 2,
	}
	out := Full(fill, c, dstH, dstW)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < newH; y++ {
			srcRow := resized.Data[(ch*newH+y)*newW : (ch*newH+y+1)*newW]
			dstRow := out.Data[(ch*dstH+y+meta.PadY)*dstW+meta.PadX:]
			copy(dstRow[:newW], srcRow)
		}
	}
	return out, meta
}

// ResizeBilinear resamples a [C, H, W] image to [C, outH, outW] with
// bilinear interpolation over half-pixel-centred sample points (the
// OpenCV/torch "align_corners=false" convention).
func ResizeBilinear(src *Tensor, outH, outW int) *Tensor {
	if src.Rank() != 3 {
		panic(fmt.Sprintf("tensor: ResizeBilinear wants a [C, H, W] image, got %v", src.Shape()))
	}
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: ResizeBilinear target %dx%d must be positive", outH, outW))
	}
	c, h, w := src.Dim(0), src.Dim(1), src.Dim(2)
	out := New(c, outH, outW)
	scaleY := float64(h) / float64(outH)
	scaleX := float64(w) / float64(outW)
	// Per-output-column sample positions are shared by every row/channel.
	x0s := make([]int, outW)
	x1s := make([]int, outW)
	fxs := make([]float32, outW)
	for x := 0; x < outW; x++ {
		sx := (float64(x)+0.5)*scaleX - 0.5
		if sx < 0 {
			sx = 0
		}
		x0 := int(sx)
		x1 := x0 + 1
		if x1 > w-1 {
			x1 = w - 1
			if x0 > x1 {
				x0 = x1
			}
		}
		x0s[x], x1s[x], fxs[x] = x0, x1, float32(sx-float64(x0))
	}
	for ch := 0; ch < c; ch++ {
		plane := src.Data[ch*h*w : (ch+1)*h*w]
		for y := 0; y < outH; y++ {
			sy := (float64(y)+0.5)*scaleY - 0.5
			if sy < 0 {
				sy = 0
			}
			y0 := int(sy)
			y1 := y0 + 1
			if y1 > h-1 {
				y1 = h - 1
				if y0 > y1 {
					y0 = y1
				}
			}
			fy := float32(sy - float64(y0))
			row0 := plane[y0*w : (y0+1)*w]
			row1 := plane[y1*w : (y1+1)*w]
			dst := out.Data[(ch*outH+y)*outW : (ch*outH+y+1)*outW]
			for x := 0; x < outW; x++ {
				fx := fxs[x]
				top := row0[x0s[x]] + (row0[x1s[x]]-row0[x0s[x]])*fx
				bot := row1[x0s[x]] + (row1[x1s[x]]-row1[x0s[x]])*fx
				dst[x] = top + (bot-top)*fy
			}
		}
	}
	return out
}
