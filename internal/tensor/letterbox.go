package tensor

import (
	"fmt"
	"sync"
)

// letterbox.go implements the detector input transform: aspect-ratio
// preserving resize onto a fixed model resolution with symmetric gray
// padding ("letterboxing"), plus the metadata needed to map detections
// back into source-image pixel coordinates.
//
// The bilinear sample positions depend only on (src, dst) geometry, so
// the index/weight tables are computed once per geometry pair and
// cached (serving uses one model resolution and a near-constant source
// size, so the steady state is a read-locked map hit and zero
// allocations — pinned by the AllocsPerRun gates).

// LetterboxFill is the canonical pad value (YOLOv5's 114/255 gray).
const LetterboxFill = float32(114.0 / 255.0)

// LetterboxMeta records how a source image was placed on the model
// canvas, so model-space coordinates can be mapped back to source
// pixels (and vice versa) exactly.
type LetterboxMeta struct {
	// SrcW, SrcH are the source image dimensions in pixels.
	SrcW, SrcH int
	// DstW, DstH are the model canvas dimensions.
	DstW, DstH int
	// ScaleX, ScaleY are the per-axis effective scales (resized/src).
	// They differ slightly from each other only through rounding of the
	// resized extent; aspect ratio is preserved up to one pixel.
	ScaleX, ScaleY float64
	// PadX, PadY are the left/top padding in model pixels.
	PadX, PadY int
}

// ToSource maps a model-canvas coordinate back to source pixels. It
// runs per detection in the postprocess emit loop, hence the noalloc
// gate.
//
//rtoss:noalloc
func (m LetterboxMeta) ToSource(x, y float64) (float64, float64) {
	return (x - float64(m.PadX)) / m.ScaleX, (y - float64(m.PadY)) / m.ScaleY
}

// ToModel maps a source-pixel coordinate onto the model canvas.
//
//rtoss:noalloc
func (m LetterboxMeta) ToModel(x, y float64) (float64, float64) {
	return x*m.ScaleX + float64(m.PadX), y*m.ScaleY + float64(m.PadY)
}

// resizePlan holds the per-axis bilinear sample indices and weights
// for one (src → dst) geometry. Per-output-column positions are shared
// by every row and channel; per-output-row likewise.
type resizePlan struct {
	x0s, x1s []int
	fxs      []float32
	y0s, y1s []int
	fys      []float32
}

type resizePlanKey struct {
	srcH, srcW, dstH, dstW int
}

// maxResizePlans bounds the plan cache. A serving process sees one
// model resolution and a handful of source sizes; a client sending
// pathologically many distinct sizes stops populating the cache at the
// cap (later geometries build a throwaway plan, costing allocations
// but never memory growth).
const maxResizePlans = 256

var resizePlans struct {
	mu sync.RWMutex
	m  map[resizePlanKey]*resizePlan
}

func getResizePlan(srcH, srcW, dstH, dstW int) *resizePlan {
	key := resizePlanKey{srcH, srcW, dstH, dstW}
	resizePlans.mu.RLock()
	p := resizePlans.m[key]
	resizePlans.mu.RUnlock()
	if p != nil {
		return p
	}
	p = buildResizePlan(srcH, srcW, dstH, dstW)
	resizePlans.mu.Lock()
	if resizePlans.m == nil {
		resizePlans.m = make(map[resizePlanKey]*resizePlan, 16)
	}
	if prev := resizePlans.m[key]; prev != nil {
		p = prev // lost a race; keep the canonical plan
	} else if len(resizePlans.m) < maxResizePlans {
		resizePlans.m[key] = p
	}
	resizePlans.mu.Unlock()
	return p
}

// buildResizePlan computes half-pixel-centred bilinear sample points
// (the OpenCV/torch "align_corners=false" convention) for both axes.
func buildResizePlan(srcH, srcW, dstH, dstW int) *resizePlan {
	p := &resizePlan{
		x0s: make([]int, dstW), x1s: make([]int, dstW), fxs: make([]float32, dstW),
		y0s: make([]int, dstH), y1s: make([]int, dstH), fys: make([]float32, dstH),
	}
	scaleX := float64(srcW) / float64(dstW)
	for x := 0; x < dstW; x++ {
		sx := (float64(x)+0.5)*scaleX - 0.5
		if sx < 0 {
			sx = 0
		}
		x0 := int(sx)
		x1 := x0 + 1
		if x1 > srcW-1 {
			x1 = srcW - 1
			if x0 > x1 {
				x0 = x1
			}
		}
		p.x0s[x], p.x1s[x], p.fxs[x] = x0, x1, float32(sx-float64(x0))
	}
	scaleY := float64(srcH) / float64(dstH)
	for y := 0; y < dstH; y++ {
		sy := (float64(y)+0.5)*scaleY - 0.5
		if sy < 0 {
			sy = 0
		}
		y0 := int(sy)
		y1 := y0 + 1
		if y1 > srcH-1 {
			y1 = srcH - 1
			if y0 > y1 {
				y0 = y1
			}
		}
		p.y0s[y], p.y1s[y], p.fys[y] = y0, y1, float32(sy-float64(y0))
	}
	return p
}

// resizeWithPlan resamples src ([c, h, w] planes in srcData) into dst,
// where output row y of channel ch starts at ch*chanStride +
// y*rowStride + offset. Passing canvas strides lets LetterboxImageInto
// write resampled rows straight into the padded canvas window with no
// intermediate tensor.
//
//rtoss:noalloc
func resizeWithPlan(p *resizePlan, srcData []float32, c, h, w int, dst []float32, outH, outW, chanStride, rowStride, offset int) {
	for ch := 0; ch < c; ch++ {
		plane := srcData[ch*h*w : (ch+1)*h*w]
		for y := 0; y < outH; y++ {
			y0, y1, fy := p.y0s[y], p.y1s[y], p.fys[y]
			row0 := plane[y0*w : (y0+1)*w]
			row1 := plane[y1*w : (y1+1)*w]
			out := dst[ch*chanStride+y*rowStride+offset : ch*chanStride+y*rowStride+offset+outW]
			for x := 0; x < outW; x++ {
				x0, x1, fx := p.x0s[x], p.x1s[x], p.fxs[x]
				top := row0[x0] + (row0[x1]-row0[x0])*fx
				bot := row1[x0] + (row1[x1]-row1[x0])*fx
				out[x] = top + (bot-top)*fy
			}
		}
	}
}

// LetterboxImage scales a [C, H, W] (or [1, C, H, W]) image to fit a
// dstH x dstW canvas preserving aspect ratio (bilinear), centres it,
// and fills the border with fill (use LetterboxFill for the canonical
// gray). It returns the [C, dstH, dstW] canvas and the mapping
// metadata.
func LetterboxImage(src *Tensor, dstH, dstW int, fill float32) (*Tensor, LetterboxMeta) {
	return LetterboxImageInto(nil, src, dstH, dstW, fill)
}

// LetterboxImageInto is LetterboxImage filling dst's buffer when it
// has the capacity (dst may be nil, and must not alias src). With a
// retained dst and a cached resize plan the steady state allocates
// nothing. The returned tensor is dst when it was reused — callers
// keep the result, exactly like append.
func LetterboxImageInto(dst, src *Tensor, dstH, dstW int, fill float32) (*Tensor, LetterboxMeta) {
	img := src
	if img.Rank() == 4 && img.Dim(0) == 1 {
		img = img.Reshape(img.Dim(1), img.Dim(2), img.Dim(3))
	}
	if img.Rank() != 3 {
		panic(fmt.Sprintf("tensor: LetterboxImage wants a [C, H, W] image, got %v", src.Shape()))
	}
	if dstH <= 0 || dstW <= 0 {
		panic(fmt.Sprintf("tensor: LetterboxImage target %dx%d must be positive", dstH, dstW))
	}
	c, srcH, srcW := img.Dim(0), img.Dim(1), img.Dim(2)
	scale := float64(dstW) / float64(srcW)
	if s := float64(dstH) / float64(srcH); s < scale {
		scale = s
	}
	newW := int(float64(srcW)*scale + 0.5)
	newH := int(float64(srcH)*scale + 0.5)
	if newW < 1 {
		newW = 1
	}
	if newH < 1 {
		newH = 1
	}
	if newW > dstW {
		newW = dstW
	}
	if newH > dstH {
		newH = dstH
	}
	meta := LetterboxMeta{
		SrcW: srcW, SrcH: srcH,
		DstW: dstW, DstH: dstH,
		ScaleX: float64(newW) / float64(srcW),
		ScaleY: float64(newH) / float64(srcH),
		PadX:   (dstW - newW) / 2,
		PadY:   (dstH - newH) / 2,
	}
	out := sizedInto(dst, c, dstH, dstW)
	for i := range out.Data {
		out.Data[i] = fill
	}
	offset := meta.PadY*dstW + meta.PadX
	if newW == srcW && newH == srcH {
		for ch := 0; ch < c; ch++ {
			for y := 0; y < newH; y++ {
				srcRow := img.Data[(ch*srcH+y)*srcW : (ch*srcH+y+1)*srcW]
				copy(out.Data[ch*dstH*dstW+y*dstW+offset:], srcRow)
			}
		}
	} else {
		p := getResizePlan(srcH, srcW, newH, newW)
		resizeWithPlan(p, img.Data, c, srcH, srcW, out.Data, newH, newW, dstH*dstW, dstW, offset)
	}
	return out, meta
}

// ResizeBilinear resamples a [C, H, W] image to [C, outH, outW] with
// bilinear interpolation over half-pixel-centred sample points (the
// OpenCV/torch "align_corners=false" convention).
func ResizeBilinear(src *Tensor, outH, outW int) *Tensor {
	return ResizeBilinearInto(nil, src, outH, outW)
}

// ResizeBilinearInto is ResizeBilinear with dst-buffer reuse (dst may
// be nil, and must not alias src). Sample tables come from the shared
// plan cache, so repeated same-geometry resizes are allocation-free.
func ResizeBilinearInto(dst, src *Tensor, outH, outW int) *Tensor {
	if src.Rank() != 3 {
		panic(fmt.Sprintf("tensor: ResizeBilinear wants a [C, H, W] image, got %v", src.Shape()))
	}
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: ResizeBilinear target %dx%d must be positive", outH, outW))
	}
	c, h, w := src.Dim(0), src.Dim(1), src.Dim(2)
	out := sizedInto(dst, c, outH, outW)
	p := getResizePlan(h, w, outH, outW)
	resizeWithPlan(p, src.Data, c, h, w, out.Data, outH, outW, outH*outW, outW, 0)
	return out
}
