package tensor

import "fmt"

// batch.go holds the NCHW batching helpers the batched forward path is
// built on: stacking independent images into one batch tensor, viewing
// a single image of a batch without copying, and splitting a batch
// back into per-image tensors.

// Stack concatenates images along the batch dimension. Every input must
// be a single image — rank 3 ([C, H, W]) or rank 4 with batch size 1
// ([1, C, H, W]) — and all images must share C, H and W. The result is
// a fresh [N, C, H, W] tensor.
func Stack(inputs []*Tensor) *Tensor {
	if len(inputs) == 0 {
		panic("tensor: Stack of nothing")
	}
	c, h, w := imageDims(inputs[0])
	out := New(len(inputs), c, h, w)
	per := c * h * w
	for i, t := range inputs {
		tc, th, tw := imageDims(t)
		if tc != c || th != h || tw != w {
			panic(fmt.Sprintf("tensor: Stack image %d has shape %v, want [%d %d %d]", i, t.Shape(), c, h, w))
		}
		copy(out.Data[i*per:(i+1)*per], t.Data)
	}
	return out
}

// imageDims returns the C, H, W of a single-image tensor.
func imageDims(t *Tensor) (c, h, w int) {
	switch {
	case t.Rank() == 3:
		return t.Dim(0), t.Dim(1), t.Dim(2)
	case t.Rank() == 4 && t.Dim(0) == 1:
		return t.Dim(1), t.Dim(2), t.Dim(3)
	}
	panic(fmt.Sprintf("tensor: %v is not a single image ([C H W] or [1 C H W])", t.Shape()))
}

// BatchView returns image b of a 4-D batch tensor as a [1, C, H, W]
// view sharing the underlying data (NCHW batches are batch-major, so
// each image is contiguous). Writes through the view are visible in t.
func (t *Tensor) BatchView(b int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: BatchView requires a 4-D tensor, got %v", t.Shape()))
	}
	if b < 0 || b >= t.Dim(0) {
		panic(fmt.Sprintf("tensor: BatchView index %d out of range for batch %d", b, t.Dim(0)))
	}
	per := t.Dim(1) * t.Dim(2) * t.Dim(3)
	return FromSlice(t.Data[b*per:(b+1)*per], 1, t.Dim(1), t.Dim(2), t.Dim(3))
}

// SplitBatch copies each image of a 4-D batch tensor into its own
// [1, C, H, W] tensor. Unlike BatchView the results own their data, so
// the batch buffer may be recycled while callers keep using them.
func SplitBatch(t *Tensor) []*Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: SplitBatch requires a 4-D tensor, got %v", t.Shape()))
	}
	out := make([]*Tensor, t.Dim(0))
	for b := range out {
		out[b] = t.BatchView(b).Clone()
	}
	return out
}

// SplitBatchArena is SplitBatch drawing each per-image tensor from an
// arena instead of the heap (nil arena falls back to SplitBatch).
// Callers that return the tensors via arena.Put once done make the
// batched heads path reuse warm buffers in steady state.
func SplitBatchArena(t *Tensor, arena *Arena) []*Tensor {
	if arena == nil {
		return SplitBatch(t)
	}
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: SplitBatchArena requires a 4-D tensor, got %v", t.Shape()))
	}
	per := t.Dim(1) * t.Dim(2) * t.Dim(3)
	out := make([]*Tensor, t.Dim(0))
	for b := range out {
		img := arena.Get(1, t.Dim(1), t.Dim(2), t.Dim(3))
		copy(img.Data, t.Data[b*per:(b+1)*per])
		out[b] = img
	}
	return out
}
