package tensor

import (
	"bytes"
	"image"
	"image/color"
	"image/png"
	"math"
	"strings"
	"testing"
)

func TestDecodePNMAsciiPPM(t *testing.T) {
	// 2x2 P3 with a comment: red, green / blue, white.
	src := "P3\n# test image\n2 2\n255\n255 0 0  0 255 0\n0 0 255  255 255 255\n"
	img, err := DecodePNM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := img.Shape(); got[0] != 3 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("shape = %v, want [3 2 2]", got)
	}
	checks := []struct {
		c, y, x int
		want    float32
	}{
		{0, 0, 0, 1}, {1, 0, 0, 0}, {2, 0, 0, 0}, // red
		{0, 0, 1, 0}, {1, 0, 1, 1}, {2, 0, 1, 0}, // green
		{0, 1, 0, 0}, {1, 1, 0, 0}, {2, 1, 0, 1}, // blue
		{0, 1, 1, 1}, {1, 1, 1, 1}, {2, 1, 1, 1}, // white
	}
	for _, c := range checks {
		if got := img.At(c.c, c.y, c.x); got != c.want {
			t.Errorf("img[%d,%d,%d] = %v, want %v", c.c, c.y, c.x, got, c.want)
		}
	}
}

func TestDecodePNMGrayReplicates(t *testing.T) {
	// P2 2x1: 0 and 200 (maxval 200 scales the latter to 1.0).
	img, err := DecodePNM(strings.NewReader("P2\n2 1\n200\n0 200\n"))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if got := img.At(c, 0, 0); got != 0 {
			t.Errorf("channel %d pixel 0 = %v, want 0", c, got)
		}
		if got := img.At(c, 0, 1); got != 1 {
			t.Errorf("channel %d pixel 1 = %v, want 1", c, got)
		}
	}
}

func TestDecodePNMErrors(t *testing.T) {
	cases := []string{
		"P7\n1 1\n255\n0",       // unsupported magic
		"P3\n2 2\n255\n1 2 3",   // truncated samples
		"P3\n1 1\n70000\n0 0 0", // maxval out of range
		"P3\n-1 1\n255\n",       // bad integer
	}
	for _, src := range cases {
		if _, err := DecodePNM(strings.NewReader(src)); err == nil {
			t.Errorf("DecodePNM(%q) succeeded, want error", src)
		}
	}
}

func TestPPMRoundTrip(t *testing.T) {
	img := New(3, 5, 7)
	for i := range img.Data {
		img.Data[i] = float32(i%255) / 255
	}
	var buf bytes.Buffer
	if err := EncodePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(img) {
		t.Fatalf("round-trip shape %v, want %v", back.Shape(), img.Shape())
	}
	// 8-bit quantisation bounds the round-trip error by 1/255.
	if !back.Equal(img, 1.0/254) {
		t.Fatal("PPM round-trip exceeded 8-bit quantisation error")
	}
}

func TestDecodeImagePNG(t *testing.T) {
	src := image.NewRGBA(image.Rect(0, 0, 2, 1))
	src.Set(0, 0, color.RGBA{R: 255, A: 255})
	src.Set(1, 0, color.RGBA{G: 255, B: 255, A: 255})
	var buf bytes.Buffer
	if err := png.Encode(&buf, src); err != nil {
		t.Fatal(err)
	}
	img, err := DecodeImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.Shape(); got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("shape = %v, want [3 1 2]", got)
	}
	if img.At(0, 0, 0) < 0.99 || img.At(1, 0, 0) > 0.01 {
		t.Errorf("pixel 0 = (%v,%v,%v), want red", img.At(0, 0, 0), img.At(1, 0, 0), img.At(2, 0, 0))
	}
	if img.At(1, 0, 1) < 0.99 || img.At(2, 0, 1) < 0.99 || img.At(0, 0, 1) > 0.01 {
		t.Errorf("pixel 1 = (%v,%v,%v), want cyan", img.At(0, 0, 1), img.At(1, 0, 1), img.At(2, 0, 1))
	}
}

func TestResizeBilinearIdentityAndAverage(t *testing.T) {
	src := FromSlice([]float32{0, 1, 2, 3}, 1, 2, 2)
	same := ResizeBilinear(src, 2, 2)
	if !same.Equal(src, 1e-6) {
		t.Fatalf("identity resize changed data: %v", same.Data)
	}
	down := ResizeBilinear(src, 1, 1)
	if math.Abs(float64(down.Data[0])-1.5) > 1e-6 {
		t.Fatalf("1x1 downsample = %v, want 1.5 (average)", down.Data[0])
	}
}

func TestLetterboxGeometry(t *testing.T) {
	// A 100x50 (WxH) image onto a 64x64 canvas: scale 0.64, resized to
	// 64x32, padded 16 rows top and bottom.
	src := Full(1, 3, 50, 100)
	out, meta := LetterboxImage(src, 64, 64, 0)
	if got := out.Shape(); got[0] != 3 || got[1] != 64 || got[2] != 64 {
		t.Fatalf("canvas shape %v, want [3 64 64]", got)
	}
	if meta.PadX != 0 || meta.PadY != 16 {
		t.Fatalf("pad = (%d,%d), want (0,16)", meta.PadX, meta.PadY)
	}
	if meta.ScaleX != 0.64 || meta.ScaleY != 0.64 {
		t.Fatalf("scale = (%v,%v), want (0.64,0.64)", meta.ScaleX, meta.ScaleY)
	}
	// Content rows are 1, pad rows are 0.
	if out.At(0, 15, 32) != 0 || out.At(0, 48, 32) != 0 {
		t.Error("expected pad value 0 outside the placed image")
	}
	if out.At(0, 16, 0) != 1 || out.At(0, 47, 63) != 1 {
		t.Error("expected image value 1 inside the placed region")
	}
}

func TestLetterboxRoundTrip(t *testing.T) {
	_, meta := LetterboxImage(Full(0.5, 3, 375, 1242), 128, 128, LetterboxFill)
	pts := [][2]float64{{0, 0}, {1242, 375}, {621, 187.5}, {100.25, 300.75}}
	for _, p := range pts {
		mx, my := meta.ToModel(p[0], p[1])
		bx, by := meta.ToSource(mx, my)
		if math.Abs(bx-p[0]) > 1e-9 || math.Abs(by-p[1]) > 1e-9 {
			t.Errorf("round trip (%v,%v) -> (%v,%v) -> (%v,%v)", p[0], p[1], mx, my, bx, by)
		}
	}
	// Model coordinates of the image corners stay on the canvas.
	x0, y0 := meta.ToModel(0, 0)
	x1, y1 := meta.ToModel(1242, 375)
	if x0 < 0 || y0 < 0 || x1 > 128 || y1 > 128 {
		t.Errorf("image corners map off-canvas: (%v,%v)-(%v,%v)", x0, y0, x1, y1)
	}
}
