package tensor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"image/png"
	"io"
	"sync"
)

// png.go decodes PNG images. The common serving shapes — 8-bit
// grayscale, gray+alpha, RGB and RGBA without interlacing — take a
// pooled fast path: a hand-rolled chunk walk, the in-repo inflater
// (inflate.go) decompressing into pooled scanline scratch, defiltering
// in place and filling the float planes directly, with zero
// steady-state allocations. Everything else (palette, 16-bit,
// interlaced) falls back to the stdlib image/png decoder, which
// allocates but stays bit-for-bit compatible with the fast path's
// premultiplied-alpha float conversion.
//
// The fast path skips CRC and Adler-32 verification: serving treats
// the image body as untrusted anyway (every length and dimension is
// bounds-checked), and a flipped pixel bit is not a safety issue for a
// detector input.

const pngSig = "\x89PNG\r\n\x1a\n"

// pngScratch is the pooled per-decode state: the concatenated IDAT
// stream, the raw (filtered) scanline buffer, and the inflater with
// its Huffman tables. All of it is sized once for a given image
// geometry and then reused allocation-free.
type pngScratch struct {
	comp []byte // concatenated IDAT payloads
	raw  []byte // (1 + w*bpp) * h filtered scanlines
	inf  inflater
}

var pngPool = sync.Pool{New: func() any { return new(pngScratch) }}

// DecodePNG decodes a PNG stream into a [3, H, W] tensor in [0, 1].
// Alpha, when present, is premultiplied and then dropped (the 16-bit
// color.RGBA() convention); grayscale replicates to all channels.
func DecodePNG(r io.Reader) (*Tensor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tensor: reading PNG: %w", err)
	}
	return DecodePNGInto(nil, data)
}

// DecodePNGInto is DecodePNG over in-memory bytes with dst-buffer
// reuse (see DecodeImageInto for the contract). 8-bit non-interlaced
// gray/gray+alpha/RGB/RGBA images decode with zero steady-state
// allocations; palette, 16-bit and interlaced images fall back to the
// stdlib decoder.
func DecodePNGInto(dst *Tensor, data []byte) (*Tensor, error) {
	if len(data) < len(pngSig)+25 || string(data[:len(pngSig)]) != pngSig {
		return nil, fmt.Errorf("tensor: not a PNG stream: %w", io.ErrUnexpectedEOF)
	}
	// IHDR must be the first chunk.
	if binary.BigEndian.Uint32(data[8:12]) != 13 || string(data[12:16]) != "IHDR" {
		return nil, fmt.Errorf("tensor: PNG missing IHDR")
	}
	ihdr := data[16 : 16+13]
	w := int(int32(binary.BigEndian.Uint32(ihdr[0:4])))
	h := int(int32(binary.BigEndian.Uint32(ihdr[4:8])))
	bitDepth, colorType := int(ihdr[8]), int(ihdr[9])
	compression, filter, interlace := int(ihdr[10]), int(ihdr[11]), int(ihdr[12])
	// Same pre-allocation guard as PNM/JPEG: reject hostile headers
	// before sizing any buffer from them.
	if w <= 0 || h <= 0 || w > maxImagePixels/h {
		return nil, fmt.Errorf("tensor: unreasonable PNG dimensions %dx%d", w, h)
	}
	if compression != 0 || filter != 0 {
		return nil, fmt.Errorf("tensor: PNG compression/filter method %d/%d unsupported", compression, filter)
	}
	var bpp int // bytes per pixel on the fast path
	switch colorType {
	case 0:
		bpp = 1
	case 4:
		bpp = 2
	case 2:
		bpp = 3
	case 6:
		bpp = 4
	}
	if bitDepth != 8 || bpp == 0 || interlace != 0 {
		return decodePNGStdlib(dst, data)
	}

	sc := pngPool.Get().(*pngScratch)
	defer pngPool.Put(sc)
	comp := sc.comp[:0]
	pos := 16 + 13 + 4 // past IHDR payload and its CRC
	for {
		if len(data)-pos < 8 {
			return nil, fmt.Errorf("tensor: PNG chunk stream truncated: %w", io.ErrUnexpectedEOF)
		}
		n := int(int32(binary.BigEndian.Uint32(data[pos : pos+4])))
		t0, t1, t2, t3 := data[pos+4], data[pos+5], data[pos+6], data[pos+7]
		if n < 0 || len(data)-(pos+8) < n+4 {
			return nil, fmt.Errorf("tensor: PNG chunk %c%c%c%c truncated: %w", t0, t1, t2, t3, io.ErrUnexpectedEOF)
		}
		body := data[pos+8 : pos+8+n]
		pos += 8 + n + 4 // skip CRC
		if t0 == 'I' && t1 == 'D' && t2 == 'A' && t3 == 'T' {
			comp = append(comp, body...)
			continue
		}
		if t0 == 'I' && t1 == 'E' && t2 == 'N' && t3 == 'D' {
			break
		}
		// tRNS would add transparency to an image whose alpha we drop
		// anyway; every other ancillary chunk is metadata. Skip them all.
	}
	sc.comp = comp // keep the grown buffer for reuse
	if len(comp) == 0 {
		return nil, fmt.Errorf("tensor: PNG has no IDAT chunks")
	}

	stride := 1 + w*bpp
	need := stride * h
	if cap(sc.raw) < need {
		sc.raw = make([]byte, need)
	}
	raw := sc.raw[:need]
	if err := sc.inf.zlibInflate(raw, comp); err != nil {
		return nil, fmt.Errorf("tensor: PNG pixel data: %w", err)
	}
	if err := pngDefilter(raw, h, stride, bpp); err != nil {
		return nil, err
	}

	out := sizedInto(dst, 3, h, w)
	plane := h * w
	r0, g0, b0 := out.Data[:plane], out.Data[plane:2*plane], out.Data[2*plane:]
	for y := 0; y < h; y++ {
		row := raw[y*stride+1 : (y+1)*stride]
		switch colorType {
		case 2: // RGB
			for x := 0; x < w; x++ {
				r0[y*w+x] = float32(row[3*x]) / 255
				g0[y*w+x] = float32(row[3*x+1]) / 255
				b0[y*w+x] = float32(row[3*x+2]) / 255
			}
		case 6: // RGBA: premultiply exactly like color.NRGBA.RGBA()
			for x := 0; x < w; x++ {
				a := uint32(row[4*x+3])
				r0[y*w+x] = pngPremul(row[4*x], a)
				g0[y*w+x] = pngPremul(row[4*x+1], a)
				b0[y*w+x] = pngPremul(row[4*x+2], a)
			}
		case 0: // grayscale
			for x := 0; x < w; x++ {
				v := float32(row[x]) / 255
				r0[y*w+x], g0[y*w+x], b0[y*w+x] = v, v, v
			}
		case 4: // gray + alpha
			for x := 0; x < w; x++ {
				v := pngPremul(row[2*x], uint32(row[2*x+1]))
				r0[y*w+x], g0[y*w+x], b0[y*w+x] = v, v, v
			}
		}
	}
	return out, nil
}

// pngPremul converts an 8-bit non-premultiplied sample to the [0, 1]
// float the stdlib path would produce: NRGBA.RGBA() widens to 16 bits
// premultiplying by alpha, FromImage divides by 65535. Keeping the
// integer intermediate makes fast and fallback paths bitwise equal.
//
//rtoss:noalloc
func pngPremul(v byte, a uint32) float32 {
	v16 := uint32(v)
	v16 |= v16 << 8
	v16 = v16 * a / 0xff
	return float32(v16) / 65535
}

// pngDefilter reverses the per-scanline PNG filters in place. Each row
// is [filterType, bytes...]; filters reference the previous row, which
// is already reconstructed when its successor is processed.
func pngDefilter(raw []byte, h, stride, bpp int) error {
	for y := 0; y < h; y++ {
		ft := raw[y*stride]
		row := raw[y*stride+1 : (y+1)*stride]
		var prev []byte
		if y > 0 {
			prev = raw[(y-1)*stride+1 : y*stride]
		}
		switch ft {
		case 0: // None
		case 1: // Sub
			for i := bpp; i < len(row); i++ {
				row[i] += row[i-bpp]
			}
		case 2: // Up
			if prev != nil {
				for i := range row {
					row[i] += prev[i]
				}
			}
		case 3: // Average
			if prev == nil {
				for i := bpp; i < len(row); i++ {
					row[i] += row[i-bpp] / 2
				}
			} else {
				for i := 0; i < bpp; i++ {
					row[i] += prev[i] / 2
				}
				for i := bpp; i < len(row); i++ {
					row[i] += byte((int(row[i-bpp]) + int(prev[i])) / 2)
				}
			}
		case 4: // Paeth
			if prev == nil {
				for i := bpp; i < len(row); i++ {
					row[i] += row[i-bpp] // paeth(left,0,0) = left
				}
			} else {
				for i := 0; i < bpp; i++ {
					row[i] += prev[i] // paeth(0,up,0) = up
				}
				for i := bpp; i < len(row); i++ {
					row[i] += paethPredict(row[i-bpp], prev[i], prev[i-bpp])
				}
			}
		default:
			return fmt.Errorf("tensor: PNG scanline %d has invalid filter type %d", y, ft)
		}
	}
	return nil
}

//rtoss:noalloc
func paethPredict(a, b, c byte) byte {
	p := int(a) + int(b) - int(c)
	pa, pb, pc := p-int(a), p-int(b), p-int(c)
	if pa < 0 {
		pa = -pa
	}
	if pb < 0 {
		pb = -pb
	}
	if pc < 0 {
		pc = -pc
	}
	if pa <= pb && pa <= pc {
		return a
	}
	if pb <= pc {
		return b
	}
	return c
}

// decodePNGStdlib handles the shapes the fast path does not (palette,
// 16-bit, interlaced) via image/png. It re-validates the header with
// DecodeConfig first so dimension bombs are rejected before the
// decoder allocates pixel storage.
func decodePNGStdlib(dst *Tensor, data []byte) (*Tensor, error) {
	cfg, err := png.DecodeConfig(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("tensor: reading PNG header: %w", err)
	}
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Width > maxImagePixels/cfg.Height {
		return nil, fmt.Errorf("tensor: unreasonable PNG dimensions %dx%d", cfg.Width, cfg.Height)
	}
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("tensor: decoding PNG: %w", err)
	}
	return fromImageInto(dst, img), nil
}
