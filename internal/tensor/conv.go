package tensor

import "fmt"

// ConvOut returns the output spatial size of a convolution along one
// dimension: floor((in + 2*pad - kernel)/stride) + 1.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// convCheck validates common convolution arguments and returns the
// output spatial size.
func convCheck(input *Tensor, k, cg, r, s int, bias []float32, stride, pad, groups int) (oh, ow int) {
	if input.Rank() != 4 {
		panic("tensor: convolution requires a 4-D input")
	}
	c, h, w := input.Dim(1), input.Dim(2), input.Dim(3)
	if groups < 1 {
		panic("tensor: convolution groups must be >= 1")
	}
	if c%groups != 0 || k%groups != 0 {
		panic(fmt.Sprintf("tensor: convolution channels %d / filters %d not divisible by groups %d", c, k, groups))
	}
	if cg != c/groups {
		panic(fmt.Sprintf("tensor: convolution weight expects %d input channels per group, input has %d", cg, c/groups))
	}
	if bias != nil && len(bias) != k {
		panic("tensor: convolution bias length must equal output channels")
	}
	oh = ConvOut(h, r, stride, pad)
	ow = ConvOut(w, s, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: convolution produces empty output for input %dx%d kernel %dx%d stride %d pad %d", h, w, r, s, stride, pad))
	}
	return oh, ow
}

// checkConvDst validates that dst has shape [n, k, oh, ow].
func checkConvDst(dst *Tensor, n, k, oh, ow int) {
	if dst.Rank() != 4 || dst.Dim(0) != n || dst.Dim(1) != k || dst.Dim(2) != oh || dst.Dim(3) != ow {
		panic(fmt.Sprintf("tensor: convolution dst shape %v, want [%d %d %d %d]", dst.Shape(), n, k, oh, ow))
	}
}

// Conv2D computes a 2-D cross-correlation (the deep-learning "convolution")
// of input [N, C, H, W] with weight [K, C/groups, R, S], optional bias [K],
// stride and symmetric zero padding. It uses the direct algorithm; see
// Conv2DIm2col for the GEMM-based path used to cross-check it.
func Conv2D(input, weight *Tensor, bias []float32, stride, pad, groups int) *Tensor {
	if weight.Rank() != 4 {
		panic("tensor: Conv2D requires a 4-D weight")
	}
	oh, ow := convCheck(input, weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3), bias, stride, pad, groups)
	out := New(input.Dim(0), weight.Dim(0), oh, ow)
	Conv2DInto(out, input, weight, bias, stride, pad, groups)
	return out
}

// Conv2DInto is Conv2D writing into a caller-provided dst tensor of
// shape [N, K, OH, OW] (every element is overwritten, so dst need not
// be zeroed). It lets callers reuse activation buffers across layers.
func Conv2DInto(dst, input, weight *Tensor, bias []float32, stride, pad, groups int) {
	if weight.Rank() != 4 {
		panic("tensor: Conv2DInto requires a 4-D weight")
	}
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	k, cg, r, s := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	oh, ow := convCheck(input, k, cg, r, s, bias, stride, pad, groups)
	checkConvDst(dst, n, k, oh, ow)
	kPerG := k / groups
	cPerG := c / groups
	in, wd, od := input.Data, weight.Data, dst.Data
	for b := 0; b < n; b++ {
		for ok := 0; ok < k; ok++ {
			g := ok / kPerG
			var bv float32
			if bias != nil {
				bv = bias[ok]
			}
			wBase0 := ok * cPerG * r * s
			outPlane := od[((b*k+ok)*oh)*ow : ((b*k+ok)*oh+oh)*ow]
			for oy := 0; oy < oh; oy++ {
				outRow := outPlane[oy*ow : (oy+1)*ow]
				for ox := 0; ox < ow; ox++ {
					acc := bv
					for ic := 0; ic < cPerG; ic++ {
						inPlane := in[((b*c+g*cPerG+ic)*h)*w:]
						wBase := wBase0 + ic*r*s
						for ky := 0; ky < r; ky++ {
							iy := oy*stride - pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							inRow := inPlane[iy*w : iy*w+w]
							wRow := wd[wBase+ky*s : wBase+ky*s+s]
							for kx := 0; kx < s; kx++ {
								ix := ox*stride - pad + kx
								if ix < 0 || ix >= w {
									continue
								}
								acc += inRow[ix] * wRow[kx]
							}
						}
					}
					outRow[ox] = acc
				}
			}
		}
	}
}

// Im2col unfolds input [N, C, H, W] into a matrix of shape
// [C*R*S, N*OH*OW] so that convolution becomes a matrix multiply
// weight[K, C*R*S] x cols. Only groups == 1 is supported here; grouped
// convolutions use the direct path.
func Im2col(input *Tensor, r, s, stride, pad int) *Tensor {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh := ConvOut(h, r, stride, pad)
	ow := ConvOut(w, s, stride, pad)
	rows := c * r * s
	cols := n * oh * ow
	out := New(rows, cols)
	col := 0
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := 0
				for ic := 0; ic < c; ic++ {
					for ky := 0; ky < r; ky++ {
						iy := oy*stride - pad + ky
						for kx := 0; kx < s; kx++ {
							ix := ox*stride - pad + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								out.Data[row*cols+col] = input.At(b, ic, iy, ix)
							}
							row++
						}
					}
				}
				col++
			}
		}
	}
	return out
}

// MatMul returns a [M, N] = a [M, K] x b [K, N] product.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, ka := a.Dim(0), a.Dim(1)
	kb, n := b.Dim(0), b.Dim(1)
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", ka, kb))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*ka : (i+1)*ka]
		orow := out.Data[i*n : (i+1)*n]
		for k := 0; k < ka; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Conv2DIm2col computes the same result as Conv2D (groups == 1) via
// im2col + GEMM. It exists primarily to cross-validate the direct path
// and to model the GEMM-lowered execution used on GPUs.
func Conv2DIm2col(input, weight *Tensor, bias []float32, stride, pad int) *Tensor {
	n := input.Dim(0)
	k, c, r, s := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	if input.Dim(1) != c {
		panic("tensor: Conv2DIm2col channel mismatch")
	}
	oh := ConvOut(input.Dim(2), r, stride, pad)
	ow := ConvOut(input.Dim(3), s, stride, pad)
	cols := Im2col(input, r, s, stride, pad)
	wm := weight.Reshape(k, c*r*s)
	prod := MatMul(wm, cols) // [K, N*OH*OW]
	out := New(n, k, oh, ow)
	for ok := 0; ok < k; ok++ {
		var bv float32
		if bias != nil {
			bv = bias[ok]
		}
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					col := b*oh*ow + oy*ow + ox
					out.Set(prod.At(ok, col)+bv, b, ok, oy, ox)
				}
			}
		}
	}
	return out
}

// MaxPool2D applies max pooling with the given kernel, stride and padding.
// Padded positions are treated as -inf (ignored).
func MaxPool2D(input *Tensor, kernel, stride, pad int) *Tensor {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh := ConvOut(h, kernel, stride, pad)
	ow := ConvOut(w, kernel, stride, pad)
	out := New(n, c, oh, ow)
	MaxPool2DInto(out, input, kernel, stride, pad)
	return out
}

// MaxPool2DInto is MaxPool2D writing into a caller-provided dst of
// shape [N, C, OH, OW]; every element is overwritten.
func MaxPool2DInto(out, input *Tensor, kernel, stride, pad int) {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh := ConvOut(h, kernel, stride, pad)
	ow := ConvOut(w, kernel, stride, pad)
	checkConvDst(out, n, c, oh, ow)
	for b := 0; b < n; b++ {
		for ic := 0; ic < c; ic++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					first := true
					var m float32
					for ky := 0; ky < kernel; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kernel; kx++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := input.At(b, ic, iy, ix)
							if first || v > m {
								m = v
								first = false
							}
						}
					}
					out.Set(m, b, ic, oy, ox)
				}
			}
		}
	}
}

// UpsampleNearest scales spatial dimensions by an exact integer factor
// using nearest-neighbour copy: out[y][x] = in[y/scale][x/scale]. It
// panics when scale < 1.
func UpsampleNearest(input *Tensor, scale int) *Tensor {
	if scale < 1 {
		panic(fmt.Sprintf("tensor: UpsampleNearest scale %d must be >= 1", scale))
	}
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	out := New(n, c, scale*h, scale*w)
	UpsampleNearestInto(out, input, scale)
	return out
}

// UpsampleNearestInto is UpsampleNearest writing into a caller-provided
// dst of shape [N, C, scale*H, scale*W]; every element is overwritten.
func UpsampleNearestInto(out, input *Tensor, scale int) {
	if scale < 1 {
		panic(fmt.Sprintf("tensor: UpsampleNearest scale %d must be >= 1", scale))
	}
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh, ow := scale*h, scale*w
	checkConvDst(out, n, c, oh, ow)
	for p := 0; p < n*c; p++ {
		inPlane := input.Data[p*h*w : (p+1)*h*w]
		outPlane := out.Data[p*oh*ow : (p+1)*oh*ow]
		for y := 0; y < oh; y++ {
			inRow := inPlane[(y/scale)*w : (y/scale+1)*w]
			outRow := outPlane[y*ow : (y+1)*ow]
			if scale == 1 {
				copy(outRow, inRow)
				continue
			}
			for x := 0; x < ow; x++ {
				outRow[x] = inRow[x/scale]
			}
		}
	}
}

// UpsampleNearest2x doubles spatial dimensions by nearest-neighbour copy.
func UpsampleNearest2x(input *Tensor) *Tensor {
	return UpsampleNearest(input, 2)
}

// ConcatChannels concatenates 4-D tensors along the channel dimension.
// Batch and spatial dimensions must match.
func ConcatChannels(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatChannels of nothing")
	}
	n, h, w := ts[0].Dim(0), ts[0].Dim(2), ts[0].Dim(3)
	total := 0
	for _, t := range ts {
		if t.Dim(0) != n || t.Dim(2) != h || t.Dim(3) != w {
			panic("tensor: ConcatChannels shape mismatch")
		}
		total += t.Dim(1)
	}
	out := New(n, total, h, w)
	ConcatChannelsInto(out, ts...)
	return out
}

// ConcatChannelsInto is ConcatChannels writing into a caller-provided
// dst of shape [N, sum(C_i), H, W]; every element is overwritten.
func ConcatChannelsInto(out *Tensor, ts ...*Tensor) {
	if len(ts) == 0 {
		panic("tensor: ConcatChannels of nothing")
	}
	n, h, w := ts[0].Dim(0), ts[0].Dim(2), ts[0].Dim(3)
	total := 0
	for _, t := range ts {
		if t.Dim(0) != n || t.Dim(2) != h || t.Dim(3) != w {
			panic("tensor: ConcatChannels shape mismatch")
		}
		total += t.Dim(1)
	}
	checkConvDst(out, n, total, h, w)
	at := 0
	for _, t := range ts {
		c := t.Dim(1)
		for b := 0; b < n; b++ {
			src := t.Data[b*c*h*w : (b+1)*c*h*w]
			dst := out.Data[(b*total+at)*h*w : (b*total+at+c)*h*w]
			copy(dst, src)
		}
		at += c
	}
}
