package tensor

import "fmt"

// ConvOut returns the output spatial size of a convolution along one
// dimension: floor((in + 2*pad - kernel)/stride) + 1.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Conv2D computes a 2-D cross-correlation (the deep-learning "convolution")
// of input [N, C, H, W] with weight [K, C/groups, R, S], optional bias [K],
// stride and symmetric zero padding. It uses the direct algorithm; see
// Conv2DIm2col for the GEMM-based path used to cross-check it.
func Conv2D(input, weight *Tensor, bias []float32, stride, pad, groups int) *Tensor {
	if input.Rank() != 4 || weight.Rank() != 4 {
		panic("tensor: Conv2D requires 4-D input and weight")
	}
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	k, cg, r, s := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	if groups < 1 {
		panic("tensor: Conv2D groups must be >= 1")
	}
	if c%groups != 0 || k%groups != 0 {
		panic(fmt.Sprintf("tensor: Conv2D channels %d / filters %d not divisible by groups %d", c, k, groups))
	}
	if cg != c/groups {
		panic(fmt.Sprintf("tensor: Conv2D weight expects %d input channels per group, input has %d", cg, c/groups))
	}
	if bias != nil && len(bias) != k {
		panic("tensor: Conv2D bias length must equal output channels")
	}
	oh := ConvOut(h, r, stride, pad)
	ow := ConvOut(w, s, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D produces empty output for input %dx%d kernel %dx%d stride %d pad %d", h, w, r, s, stride, pad))
	}
	out := New(n, k, oh, ow)
	kPerG := k / groups
	cPerG := c / groups
	for b := 0; b < n; b++ {
		for ok := 0; ok < k; ok++ {
			g := ok / kPerG
			var bv float32
			if bias != nil {
				bv = bias[ok]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := bv
					for ic := 0; ic < cPerG; ic++ {
						inC := g*cPerG + ic
						for ky := 0; ky < r; ky++ {
							iy := oy*stride - pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < s; kx++ {
								ix := ox*stride - pad + kx
								if ix < 0 || ix >= w {
									continue
								}
								acc += input.At(b, inC, iy, ix) * weight.At(ok, ic, ky, kx)
							}
						}
					}
					out.Set(acc, b, ok, oy, ox)
				}
			}
		}
	}
	return out
}

// Im2col unfolds input [N, C, H, W] into a matrix of shape
// [C*R*S, N*OH*OW] so that convolution becomes a matrix multiply
// weight[K, C*R*S] x cols. Only groups == 1 is supported here; grouped
// convolutions use the direct path.
func Im2col(input *Tensor, r, s, stride, pad int) *Tensor {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh := ConvOut(h, r, stride, pad)
	ow := ConvOut(w, s, stride, pad)
	rows := c * r * s
	cols := n * oh * ow
	out := New(rows, cols)
	col := 0
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := 0
				for ic := 0; ic < c; ic++ {
					for ky := 0; ky < r; ky++ {
						iy := oy*stride - pad + ky
						for kx := 0; kx < s; kx++ {
							ix := ox*stride - pad + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								out.Data[row*cols+col] = input.At(b, ic, iy, ix)
							}
							row++
						}
					}
				}
				col++
			}
		}
	}
	return out
}

// MatMul returns a [M, N] = a [M, K] x b [K, N] product.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, ka := a.Dim(0), a.Dim(1)
	kb, n := b.Dim(0), b.Dim(1)
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", ka, kb))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*ka : (i+1)*ka]
		orow := out.Data[i*n : (i+1)*n]
		for k := 0; k < ka; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Conv2DIm2col computes the same result as Conv2D (groups == 1) via
// im2col + GEMM. It exists primarily to cross-validate the direct path
// and to model the GEMM-lowered execution used on GPUs.
func Conv2DIm2col(input, weight *Tensor, bias []float32, stride, pad int) *Tensor {
	n := input.Dim(0)
	k, c, r, s := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	if input.Dim(1) != c {
		panic("tensor: Conv2DIm2col channel mismatch")
	}
	oh := ConvOut(input.Dim(2), r, stride, pad)
	ow := ConvOut(input.Dim(3), s, stride, pad)
	cols := Im2col(input, r, s, stride, pad)
	wm := weight.Reshape(k, c*r*s)
	prod := MatMul(wm, cols) // [K, N*OH*OW]
	out := New(n, k, oh, ow)
	for ok := 0; ok < k; ok++ {
		var bv float32
		if bias != nil {
			bv = bias[ok]
		}
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					col := b*oh*ow + oy*ow + ox
					out.Set(prod.At(ok, col)+bv, b, ok, oy, ox)
				}
			}
		}
	}
	return out
}

// MaxPool2D applies max pooling with the given kernel, stride and padding.
// Padded positions are treated as -inf (ignored).
func MaxPool2D(input *Tensor, kernel, stride, pad int) *Tensor {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh := ConvOut(h, kernel, stride, pad)
	ow := ConvOut(w, kernel, stride, pad)
	out := New(n, c, oh, ow)
	for b := 0; b < n; b++ {
		for ic := 0; ic < c; ic++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					first := true
					var m float32
					for ky := 0; ky < kernel; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kernel; kx++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := input.At(b, ic, iy, ix)
							if first || v > m {
								m = v
								first = false
							}
						}
					}
					out.Set(m, b, ic, oy, ox)
				}
			}
		}
	}
	return out
}

// UpsampleNearest2x doubles spatial dimensions by nearest-neighbour copy.
func UpsampleNearest2x(input *Tensor) *Tensor {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	out := New(n, c, 2*h, 2*w)
	for b := 0; b < n; b++ {
		for ic := 0; ic < c; ic++ {
			for y := 0; y < 2*h; y++ {
				for x := 0; x < 2*w; x++ {
					out.Set(input.At(b, ic, y/2, x/2), b, ic, y, x)
				}
			}
		}
	}
	return out
}

// ConcatChannels concatenates 4-D tensors along the channel dimension.
// Batch and spatial dimensions must match.
func ConcatChannels(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatChannels of nothing")
	}
	n, h, w := ts[0].Dim(0), ts[0].Dim(2), ts[0].Dim(3)
	total := 0
	for _, t := range ts {
		if t.Dim(0) != n || t.Dim(2) != h || t.Dim(3) != w {
			panic("tensor: ConcatChannels shape mismatch")
		}
		total += t.Dim(1)
	}
	out := New(n, total, h, w)
	at := 0
	for _, t := range ts {
		c := t.Dim(1)
		for b := 0; b < n; b++ {
			for ic := 0; ic < c; ic++ {
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						out.Set(t.At(b, ic, y, x), b, at+ic, y, x)
					}
				}
			}
		}
		at += c
	}
	return out
}
