package tensor

import (
	"bufio"
	"bytes"
	"fmt"
	"image"
	"image/png"
	"io"
)

// image.go is the detection pipeline's image front door: decoding
// PPM/PGM (the dependency-free interchange formats) and PNG (via the
// standard library) into [3, H, W] float32 tensors in [0, 1], and
// encoding tensors back to PPM so pipelines can be round-tripped
// without any external tooling.

// DecodeImage sniffs the stream's magic bytes and decodes a PPM/PGM
// (P2, P3, P5, P6) or PNG image into a [3, H, W] tensor with values in
// [0, 1]. Grayscale sources are replicated across the three channels so
// the result always matches the detectors' RGB input plane.
func DecodeImage(r io.Reader) (*Tensor, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("tensor: reading image magic: %w", err)
	}
	switch {
	case magic[0] == 'P' && magic[1] >= '2' && magic[1] <= '6':
		return DecodePNM(br)
	case magic[0] == 0x89 && magic[1] == 'P':
		return DecodePNG(br)
	}
	return nil, fmt.Errorf("tensor: unrecognised image format (magic %q); want PPM/PGM (P2/P3/P5/P6) or PNG", magic)
}

// DecodePNM decodes a netpbm image — PGM (P2 ascii, P5 binary) or PPM
// (P3 ascii, P6 binary) with maxval <= 255 — into a [3, H, W] tensor in
// [0, 1]. PGM gray values are replicated to all three channels.
func DecodePNM(r io.Reader) (*Tensor, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, fmt.Errorf("tensor: reading PNM header: %w", err)
	}
	var channels int
	switch magic {
	case "P2", "P5":
		channels = 1
	case "P3", "P6":
		channels = 3
	default:
		return nil, fmt.Errorf("tensor: unsupported PNM magic %q (P2|P3|P5|P6)", magic)
	}
	w, err := pnmInt(br)
	if err != nil {
		return nil, fmt.Errorf("tensor: PNM width: %w", err)
	}
	h, err := pnmInt(br)
	if err != nil {
		return nil, fmt.Errorf("tensor: PNM height: %w", err)
	}
	maxval, err := pnmInt(br)
	if err != nil {
		return nil, fmt.Errorf("tensor: PNM maxval: %w", err)
	}
	// The guard runs before any pixel-sized allocation, so a malicious
	// header cannot make the decoder balloon memory (division avoids
	// the w*h overflow a 32-bit int would allow).
	if w <= 0 || h <= 0 || w > maxImagePixels/h {
		return nil, fmt.Errorf("tensor: unreasonable PNM dimensions %dx%d", w, h)
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("tensor: PNM maxval %d unsupported (want 1..255)", maxval)
	}
	out := New(3, h, w)
	scale := 1 / float32(maxval)
	plane := h * w
	set := func(x, y, c, v int) error {
		if v > maxval {
			return fmt.Errorf("tensor: PNM sample %d at (%d,%d) exceeds maxval %d", v, x, y, maxval)
		}
		fv := float32(v) * scale
		if channels == 1 {
			out.Data[0*plane+y*w+x] = fv
			out.Data[1*plane+y*w+x] = fv
			out.Data[2*plane+y*w+x] = fv
		} else {
			out.Data[c*plane+y*w+x] = fv
		}
		return nil
	}
	switch magic {
	case "P2", "P3": // ascii samples
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for c := 0; c < channels; c++ {
					v, err := pnmInt(br)
					if err != nil {
						return nil, fmt.Errorf("tensor: PNM sample at (%d,%d): %w", x, y, err)
					}
					if err := set(x, y, c, v); err != nil {
						return nil, err
					}
				}
			}
		}
	case "P5", "P6": // binary samples follow the single header whitespace
		row := make([]byte, w*channels)
		for y := 0; y < h; y++ {
			if _, err := io.ReadFull(br, row); err != nil {
				return nil, fmt.Errorf("tensor: PNM pixel data row %d: %w", y, err)
			}
			for x := 0; x < w; x++ {
				for c := 0; c < channels; c++ {
					if err := set(x, y, c, int(row[x*channels+c])); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return out, nil
}

// maxImagePixels caps header-declared image sizes across every decode
// family (64 Mpx covers modern camera output with headroom; anything
// larger is a hostile or corrupt header, rejected before allocation).
const maxImagePixels = 1 << 26

// pnmToken reads the next whitespace-delimited header token, skipping
// '#' comments (which run to end of line).
func pnmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

// pnmInt reads the next header token as a decimal integer.
func pnmInt(br *bufio.Reader) (int, error) {
	tok, err := pnmToken(br)
	if err != nil {
		return 0, err
	}
	v := 0
	for _, c := range []byte(tok) {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad integer %q", tok)
		}
		v = v*10 + int(c-'0')
		if v > 1<<30 {
			return 0, fmt.Errorf("integer %q too large", tok)
		}
	}
	return v, nil
}

// pngHeaderLen covers the PNG signature (8 bytes) plus the IHDR chunk
// (4 length + 4 type + 13 data + 4 CRC) — everything DecodeConfig
// needs to report the image dimensions.
const pngHeaderLen = 33

// DecodePNG decodes a PNG stream into a [3, H, W] tensor in [0, 1]
// using the standard library decoder (alpha is dropped). The header
// dimensions are validated from a peek at the IHDR chunk before any
// pixel data is read or buffered, so a hostile header cannot force a
// huge allocation.
func DecodePNG(r io.Reader) (*Tensor, error) {
	br := bufio.NewReaderSize(r, pngHeaderLen)
	head, err := br.Peek(pngHeaderLen)
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("tensor: reading PNG header: %w", err)
	}
	cfg, err := png.DecodeConfig(bytes.NewReader(head))
	if err != nil {
		return nil, fmt.Errorf("tensor: decoding PNG header: %w", err)
	}
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Width > maxImagePixels/cfg.Height {
		return nil, fmt.Errorf("tensor: unreasonable PNG dimensions %dx%d", cfg.Width, cfg.Height)
	}
	img, err := png.Decode(br)
	if err != nil {
		return nil, fmt.Errorf("tensor: decoding PNG: %w", err)
	}
	return FromImage(img), nil
}

// FromImage converts any image.Image into a [3, H, W] tensor in [0, 1].
func FromImage(img image.Image) *Tensor {
	b := img.Bounds()
	h, w := b.Dy(), b.Dx()
	out := New(3, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA() // 16-bit
			out.Data[0*h*w+y*w+x] = float32(r) / 65535
			out.Data[1*h*w+y*w+x] = float32(g) / 65535
			out.Data[2*h*w+y*w+x] = float32(bl) / 65535
		}
	}
	return out
}

// EncodePPM writes a [3, H, W] (or [1, 3, H, W]) tensor as a binary
// P6 PPM, clamping values to [0, 1].
func EncodePPM(w io.Writer, t *Tensor) error {
	img := t
	if img.Rank() == 4 && img.Dim(0) == 1 {
		img = img.Reshape(img.Dim(1), img.Dim(2), img.Dim(3))
	}
	if img.Rank() != 3 || img.Dim(0) != 3 {
		return fmt.Errorf("tensor: EncodePPM wants a [3, H, W] image, got %v", t.Shape())
	}
	h, iw := img.Dim(1), img.Dim(2)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", iw, h)
	plane := h * iw
	for y := 0; y < h; y++ {
		for x := 0; x < iw; x++ {
			for c := 0; c < 3; c++ {
				v := img.Data[c*plane+y*iw+x]
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				bw.WriteByte(byte(v*255 + 0.5))
			}
		}
	}
	return bw.Flush()
}
