package tensor

import (
	"bufio"
	"fmt"
	"image"
	"io"
)

// image.go is the detection pipeline's image front door: decoding
// PPM/PGM (the dependency-free interchange formats), PNG and baseline
// JPEG into [3, H, W] float32 tensors in [0, 1], and encoding tensors
// back to PPM so pipelines can be round-tripped without any external
// tooling.
//
// Every format has two entry points: a streaming io.Reader decoder
// (DecodeImage/DecodePNM/DecodePNG/DecodeJPEG) for files and tests,
// and a byte-slice Into variant (DecodeImageInto and friends) that
// fills a caller-provided tensor from pooled scratch — the serving hot
// path, which in steady state touches the allocator zero times per
// request (the AllocsPerRun gates in image_alloc_test.go pin this).

// maxImagePixels caps header-declared image sizes across every decode
// family (64 Mpx covers modern camera output with headroom; anything
// larger is a hostile or corrupt header, rejected before allocation).
const maxImagePixels = 1 << 26

// DecodeImage sniffs the stream's magic bytes and decodes a PPM/PGM
// (P2, P3, P5, P6), PNG or baseline JPEG image into a [3, H, W] tensor
// with values in [0, 1]. Grayscale sources are replicated across the
// three channels so the result always matches the detectors' RGB input
// plane. The stream is buffered in full before decoding; callers on
// the serving path hand bounded bodies to DecodeImageInto instead.
func DecodeImage(r io.Reader) (*Tensor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tensor: reading image: %w", err)
	}
	return DecodeImageInto(nil, data)
}

// DecodeImageInto is DecodeImage over in-memory bytes, filling dst's
// buffer when it has the capacity (dst may be nil). The returned
// tensor is dst when it was reused, or a fresh tensor otherwise —
// callers keep the result, exactly like append. Repeated decodes of
// same-sized images through a retained dst are allocation-free.
func DecodeImageInto(dst *Tensor, data []byte) (*Tensor, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("tensor: reading image magic: %w", io.ErrUnexpectedEOF)
	}
	switch {
	case data[0] == 'P' && data[1] >= '2' && data[1] <= '6':
		return DecodePNMInto(dst, data)
	case data[0] == 0x89 && data[1] == 'P':
		return DecodePNGInto(dst, data)
	case data[0] == 0xff && data[1] == 0xd8:
		return DecodeJPEGInto(dst, data)
	}
	return nil, fmt.Errorf("tensor: unrecognised image format (magic %q); want PPM/PGM (P2/P3/P5/P6), PNG or JPEG", data[:2])
}

// sizedInto returns a [d0, d1, d2] tensor backed by dst's buffer when
// dst has the capacity, allocating only when dst is nil or too small.
// The returned tensor's contents are UNSPECIFIED; callers must
// overwrite every element. This is the ingest hot path's reuse
// primitive: pooled scratch keeps one warm buffer per slot, and
// steady-state traffic (same image resolution per request) never
// touches the allocator. Fixed arity on purpose — a variadic shape
// would heap-allocate its argument slice at every call site.
//
//rtoss:noalloc
func sizedInto(dst *Tensor, d0, d1, d2 int) *Tensor {
	n := d0 * d1 * d2
	if dst == nil || cap(dst.Data) < n || cap(dst.shape) < 3 || cap(dst.strides) < 3 {
		return New(d0, d1, d2)
	}
	dst.Data = dst.Data[:n]
	dst.shape = dst.shape[:3]
	dst.shape[0], dst.shape[1], dst.shape[2] = d0, d1, d2
	dst.strides = dst.strides[:3]
	dst.strides[0], dst.strides[1], dst.strides[2] = d1*d2, d2, 1
	return dst
}

// DecodePNM decodes a netpbm image — PGM (P2 ascii, P5 binary) or PPM
// (P3 ascii, P6 binary) with maxval <= 255 — into a [3, H, W] tensor in
// [0, 1]. PGM gray values are replicated to all three channels.
func DecodePNM(r io.Reader) (*Tensor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tensor: reading PNM: %w", err)
	}
	return DecodePNMInto(nil, data)
}

// DecodePNMInto is DecodePNM over in-memory bytes with dst-buffer
// reuse (see DecodeImageInto for the contract). The success path of a
// same-sized redecode performs zero allocations.
func DecodePNMInto(dst *Tensor, data []byte) (*Tensor, error) {
	pos := pnmSkipSpace(data, 0)
	if len(data)-pos < 2 || data[pos] != 'P' {
		return nil, fmt.Errorf("tensor: reading PNM header: %w", io.ErrUnexpectedEOF)
	}
	magic := data[pos+1]
	pos += 2
	var channels int
	switch magic {
	case '2', '5':
		channels = 1
	case '3', '6':
		channels = 3
	default:
		return nil, fmt.Errorf("tensor: unsupported PNM magic \"P%c\" (P2|P3|P5|P6)", magic)
	}
	w, pos, err := pnmInt(data, pos)
	if err != nil {
		return nil, fmt.Errorf("tensor: PNM width: %w", err)
	}
	h, pos, err := pnmInt(data, pos)
	if err != nil {
		return nil, fmt.Errorf("tensor: PNM height: %w", err)
	}
	maxval, pos, err := pnmInt(data, pos)
	if err != nil {
		return nil, fmt.Errorf("tensor: PNM maxval: %w", err)
	}
	// The guard runs before any pixel-sized allocation, so a malicious
	// header cannot make the decoder balloon memory (division avoids
	// the w*h overflow a 32-bit int would allow).
	if w <= 0 || h <= 0 || w > maxImagePixels/h {
		return nil, fmt.Errorf("tensor: unreasonable PNM dimensions %dx%d", w, h)
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("tensor: PNM maxval %d unsupported (want 1..255)", maxval)
	}
	out := sizedInto(dst, 3, h, w)
	scale := 1 / float32(maxval)
	plane := h * w
	r0, g0, b0 := out.Data[:plane], out.Data[plane:2*plane], out.Data[2*plane:]
	switch magic {
	case '2', '3': // ascii samples
		for i := 0; i < plane; i++ {
			for c := 0; c < channels; c++ {
				v, p, err := pnmInt(data, pos)
				if err != nil {
					return nil, fmt.Errorf("tensor: PNM sample at (%d,%d): %w", i%w, i/w, err)
				}
				pos = p
				if v > maxval {
					return nil, fmt.Errorf("tensor: PNM sample %d at (%d,%d) exceeds maxval %d", v, i%w, i/w, maxval)
				}
				fv := float32(v) * scale
				if channels == 1 {
					r0[i], g0[i], b0[i] = fv, fv, fv
				} else {
					switch c {
					case 0:
						r0[i] = fv
					case 1:
						g0[i] = fv
					default:
						b0[i] = fv
					}
				}
			}
		}
	case '5', '6': // binary samples follow a single header whitespace
		if pos >= len(data) || !pnmIsSpace(data[pos]) {
			return nil, fmt.Errorf("tensor: PNM header not terminated by whitespace")
		}
		pos++
		px := data[pos:]
		if len(px) < plane*channels {
			return nil, fmt.Errorf("tensor: PNM pixel data truncated: %w", io.ErrUnexpectedEOF)
		}
		if channels == 1 {
			for i := 0; i < plane; i++ {
				v := px[i]
				if int(v) > maxval {
					return nil, fmt.Errorf("tensor: PNM sample %d at (%d,%d) exceeds maxval %d", v, i%w, i/w, maxval)
				}
				fv := float32(v) * scale
				r0[i], g0[i], b0[i] = fv, fv, fv
			}
		} else {
			for i := 0; i < plane; i++ {
				r, g, b := px[3*i], px[3*i+1], px[3*i+2]
				if int(r) > maxval || int(g) > maxval || int(b) > maxval {
					return nil, fmt.Errorf("tensor: PNM sample at (%d,%d) exceeds maxval %d", i%w, i/w, maxval)
				}
				r0[i] = float32(r) * scale
				g0[i] = float32(g) * scale
				b0[i] = float32(b) * scale
			}
		}
	}
	return out, nil
}

func pnmIsSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\v' || b == '\f'
}

// pnmSkipSpace advances past whitespace and '#' comments (which run to
// end of line).
func pnmSkipSpace(data []byte, pos int) int {
	for pos < len(data) {
		switch {
		case pnmIsSpace(data[pos]):
			pos++
		case data[pos] == '#':
			for pos < len(data) && data[pos] != '\n' {
				pos++
			}
		default:
			return pos
		}
	}
	return pos
}

// pnmInt parses the next whitespace-delimited decimal header token.
func pnmInt(data []byte, pos int) (int, int, error) {
	pos = pnmSkipSpace(data, pos)
	if pos >= len(data) {
		return 0, pos, io.ErrUnexpectedEOF
	}
	v, digits := 0, 0
	for pos < len(data) && !pnmIsSpace(data[pos]) && data[pos] != '#' {
		c := data[pos]
		if c < '0' || c > '9' {
			return 0, pos, fmt.Errorf("bad integer byte %q", c)
		}
		v = v*10 + int(c-'0')
		if v > 1<<30 {
			return 0, pos, fmt.Errorf("integer too large")
		}
		digits++
		pos++
	}
	if digits == 0 {
		return 0, pos, io.ErrUnexpectedEOF
	}
	return v, pos, nil
}

// FromImage converts any image.Image into a [3, H, W] tensor in [0, 1].
func FromImage(img image.Image) *Tensor {
	return fromImageInto(nil, img)
}

// fromImageInto is FromImage with dst-buffer reuse (the PNG fallback
// path's fill). Alpha is dropped after premultiplication, matching the
// 16-bit color.RGBA() convention.
func fromImageInto(dst *Tensor, img image.Image) *Tensor {
	b := img.Bounds()
	h, w := b.Dy(), b.Dx()
	out := sizedInto(dst, 3, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA() // 16-bit
			out.Data[0*h*w+y*w+x] = float32(r) / 65535
			out.Data[1*h*w+y*w+x] = float32(g) / 65535
			out.Data[2*h*w+y*w+x] = float32(bl) / 65535
		}
	}
	return out
}

// EncodePPM writes a [3, H, W] (or [1, 3, H, W]) tensor as a binary
// P6 PPM, clamping values to [0, 1]. Writers that implement
// io.ByteWriter (bytes.Buffer, bufio.Writer) are used directly;
// anything else is wrapped in one buffered writer — no double
// buffering either way.
func EncodePPM(w io.Writer, t *Tensor) error {
	img := t
	if img.Rank() == 4 && img.Dim(0) == 1 {
		img = img.Reshape(img.Dim(1), img.Dim(2), img.Dim(3))
	}
	if img.Rank() != 3 || img.Dim(0) != 3 {
		return fmt.Errorf("tensor: EncodePPM wants a [3, H, W] image, got %v", t.Shape())
	}
	h, iw := img.Dim(1), img.Dim(2)
	type byteWriter interface {
		io.Writer
		io.ByteWriter
	}
	bw, ok := w.(byteWriter)
	flush := func() error { return nil }
	if !ok {
		b := bufio.NewWriter(w)
		bw, flush = b, b.Flush
	}
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", iw, h); err != nil {
		return err
	}
	plane := h * iw
	for y := 0; y < h; y++ {
		for x := 0; x < iw; x++ {
			for c := 0; c < 3; c++ {
				v := img.Data[c*plane+y*iw+x]
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				bw.WriteByte(byte(v*255 + 0.5))
			}
		}
	}
	return flush()
}
