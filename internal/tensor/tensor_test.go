package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"rtoss/internal/rng"
)

func TestNewShapeAndLen(t *testing.T) {
	a := New(2, 3, 4)
	if a.Rank() != 3 || a.Len() != 24 {
		t.Fatalf("rank=%d len=%d", a.Rank(), a.Len())
	}
	s := a.Shape()
	if s[0] != 2 || s[1] != 3 || s[2] != 4 {
		t.Fatalf("shape %v", s)
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, -1)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(2, 3, 4, 5)
	a.Set(7.5, 1, 2, 3, 4)
	if a.At(1, 2, 3, 4) != 7.5 {
		t.Fatal("At/Set round trip failed")
	}
	// Row-major layout: last index is fastest.
	if a.Data[1*3*4*5+2*4*5+3*5+4] != 7.5 {
		t.Fatal("unexpected memory layout")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.At(2, 0)
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Fatal("reshape should share underlying data")
	}
	if b.At(2, 1) != 6 {
		t.Fatalf("reshape element order changed: %v", b.At(2, 1))
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("clone is shallow")
	}
}

func TestNormsAndSparsity(t *testing.T) {
	a := FromSlice([]float32{3, -4, 0, 0}, 4)
	if a.L1() != 7 {
		t.Fatalf("L1=%v", a.L1())
	}
	if a.L2() != 5 {
		t.Fatalf("L2=%v", a.L2())
	}
	if a.NNZ() != 2 {
		t.Fatalf("NNZ=%d", a.NNZ())
	}
	if a.Sparsity() != 0.5 {
		t.Fatalf("Sparsity=%v", a.Sparsity())
	}
	if a.Sum() != -1 {
		t.Fatalf("Sum=%v", a.Sum())
	}
}

func TestAddMulScale(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	a.Add(b)
	want := []float32{11, 22, 33, 44}
	for i, v := range want {
		if a.Data[i] != v {
			t.Fatalf("Add: %v", a.Data)
		}
	}
	a.Mul(b)
	if a.Data[3] != 44*40 {
		t.Fatalf("Mul: %v", a.Data)
	}
	a.Scale(0.5)
	if a.Data[0] != 55 {
		t.Fatalf("Scale: %v", a.Data)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Add(New(4))
}

func TestMaxAbsMax(t *testing.T) {
	a := FromSlice([]float32{-7, 3, 2}, 3)
	if a.Max() != 3 {
		t.Fatalf("Max=%v", a.Max())
	}
	if a.AbsMax() != 7 {
		t.Fatalf("AbsMax=%v", a.AbsMax())
	}
}

func TestConvOut(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{640, 3, 1, 1, 640},
		{640, 3, 2, 1, 320},
		{640, 6, 2, 2, 320},
		{7, 3, 1, 0, 5},
		{7, 1, 1, 0, 7},
		{224, 7, 2, 3, 112},
	}
	for _, c := range cases {
		if got := ConvOut(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOut(%d,%d,%d,%d)=%d want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 kernel of value 1 must reproduce the input channel.
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w := FromSlice([]float32{1}, 1, 1, 1, 1)
	out := Conv2D(in, w, nil, 1, 0, 1)
	if !out.Equal(in, 0) {
		t.Fatalf("identity conv failed: %v", out.Data)
	}
}

func TestConv2DHandComputed(t *testing.T) {
	// 3x3 input, 2x2 kernel, stride 1, no pad.
	in := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	w := FromSlice([]float32{
		1, 0,
		0, 1,
	}, 1, 1, 2, 2)
	out := Conv2D(in, w, nil, 1, 0, 1)
	// Each output = x[i,j] + x[i+1,j+1].
	want := []float32{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("got %v want %v", out.Data, want)
		}
	}
}

func TestConv2DBias(t *testing.T) {
	in := FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	w := FromSlice([]float32{1}, 1, 1, 1, 1)
	out := Conv2D(in, w, []float32{10}, 1, 0, 1)
	for _, v := range out.Data {
		if v != 11 {
			t.Fatalf("bias not applied: %v", out.Data)
		}
	}
}

func TestConv2DPadding(t *testing.T) {
	// Single pixel, 3x3 kernel of ones, pad 1: every output position sums
	// the (single) overlapping input value.
	in := FromSlice([]float32{5}, 1, 1, 1, 1)
	w := Full(1, 1, 1, 3, 3)
	out := Conv2D(in, w, nil, 1, 1, 1)
	if out.Dim(2) != 1 || out.Dim(3) != 1 {
		t.Fatalf("bad output shape %v", out.Shape())
	}
	if out.Data[0] != 5 {
		t.Fatalf("pad conv got %v", out.Data[0])
	}
}

func TestConv2DGroups(t *testing.T) {
	// Two channels, two groups: each output channel sees only its own input.
	in := FromSlice([]float32{
		1, 1, 1, 1, // channel 0
		2, 2, 2, 2, // channel 1
	}, 1, 2, 2, 2)
	w := FromSlice([]float32{1, 1}, 2, 1, 1, 1)
	out := Conv2D(in, w, nil, 1, 0, 2)
	if out.At(0, 0, 0, 0) != 1 || out.At(0, 1, 0, 0) != 2 {
		t.Fatalf("grouped conv mixed channels: %v", out.Data)
	}
}

func TestConv2DGroupsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible groups")
		}
	}()
	in := New(1, 3, 2, 2)
	w := New(2, 1, 1, 1)
	Conv2D(in, w, nil, 1, 0, 2)
}

func randTensor(r *rng.RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.Range(-1, 1))
	}
	return t
}

func TestConv2DMatchesIm2col(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(2)
		c := 1 + r.Intn(4)
		k := 1 + r.Intn(4)
		ks := []int{1, 3, 5}[r.Intn(3)]
		h := ks + r.Intn(6)
		w := ks + r.Intn(6)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		in := randTensor(r, n, c, h, w)
		wt := randTensor(r, k, c, ks, ks)
		bias := make([]float32, k)
		for i := range bias {
			bias[i] = float32(r.Range(-1, 1))
		}
		direct := Conv2D(in, wt, bias, stride, pad, 1)
		gemm := Conv2DIm2col(in, wt, bias, stride, pad)
		if !direct.Equal(gemm, 1e-4) {
			t.Fatalf("trial %d: direct and im2col paths disagree (shape in=%v w=%v s=%d p=%d)", trial, in.Shape(), wt.Shape(), stride, pad)
		}
	}
}

func TestMatMulHandComputed(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul got %v want %v", c.Data, want)
		}
	}
}

func TestMatMulDimCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMaxPool2D(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := MaxPool2D(in, 2, 2, 0)
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("MaxPool got %v want %v", out.Data, want)
		}
	}
}

func TestMaxPool2DPadIgnoresBorder(t *testing.T) {
	in := FromSlice([]float32{-5}, 1, 1, 1, 1)
	out := MaxPool2D(in, 3, 1, 1)
	if out.Data[0] != -5 {
		t.Fatalf("padded maxpool should ignore padding, got %v", out.Data[0])
	}
}

func TestUpsampleNearest2x(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := UpsampleNearest2x(in)
	if out.Dim(2) != 4 || out.Dim(3) != 4 {
		t.Fatalf("shape %v", out.Shape())
	}
	if out.At(0, 0, 0, 0) != 1 || out.At(0, 0, 0, 1) != 1 || out.At(0, 0, 3, 3) != 4 {
		t.Fatalf("upsample wrong: %v", out.Data)
	}
}

func TestConcatChannels(t *testing.T) {
	a := Full(1, 1, 2, 2, 2)
	b := Full(2, 1, 3, 2, 2)
	out := ConcatChannels(a, b)
	if out.Dim(1) != 5 {
		t.Fatalf("channels %d", out.Dim(1))
	}
	if out.At(0, 0, 0, 0) != 1 || out.At(0, 4, 1, 1) != 2 {
		t.Fatal("concat misplaced data")
	}
}

func TestQuickL2NonNegativeAndScale(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		// Clamp pathological values; synthetic weights are bounded.
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				vals[i] = 0
			}
			if v > 1e6 {
				vals[i] = 1e6
			}
			if v < -1e6 {
				vals[i] = -1e6
			}
		}
		a := FromSlice(vals, len(vals))
		l2 := a.L2()
		if l2 < 0 {
			return false
		}
		b := a.Clone()
		b.Scale(2)
		// ||2x|| == 2||x|| within float tolerance.
		return math.Abs(b.L2()-2*l2) <= 1e-3*(1+2*l2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSparsityBounds(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		a := FromSlice(vals, len(vals))
		s := a.Sparsity()
		return s >= 0 && s <= 1 && a.NNZ()+int(s*float64(len(vals))+0.5) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(64)
		a := randTensor(r, n)
		b := randTensor(r, n)
		sum := a.Clone()
		sum.Add(b)
		if sum.L2() > a.L2()+b.L2()+1e-6 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", sum.L2(), a.L2(), b.L2())
		}
	}
}

func BenchmarkConv2DDirect3x3(b *testing.B) {
	r := rng.New(5)
	in := randTensor(r, 1, 32, 40, 40)
	w := randTensor(r, 32, 32, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Conv2D(in, w, nil, 1, 1, 1)
	}
}

func BenchmarkConv2DIm2col3x3(b *testing.B) {
	r := rng.New(5)
	in := randTensor(r, 1, 32, 40, 40)
	w := randTensor(r, 32, 32, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Conv2DIm2col(in, w, nil, 1, 1)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := rng.New(5)
	x := randTensor(r, 256, 256)
	y := randTensor(r, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(x, y)
	}
}
