package tensor

import "testing"

func TestStackAndSplitRoundTrip(t *testing.T) {
	a := New(1, 2, 3, 3)
	b := New(2, 3, 3) // rank-3 image mixes with rank-4 single images
	for i := range a.Data {
		a.Data[i] = float32(i)
		b.Data[i] = float32(-i)
	}
	batch := Stack([]*Tensor{a, b})
	if batch.Dim(0) != 2 || batch.Dim(1) != 2 || batch.Dim(2) != 3 || batch.Dim(3) != 3 {
		t.Fatalf("stacked shape %v", batch.Shape())
	}
	parts := SplitBatch(batch)
	if len(parts) != 2 {
		t.Fatalf("split into %d parts", len(parts))
	}
	for i := range a.Data {
		if parts[0].Data[i] != a.Data[i] || parts[1].Data[i] != b.Data[i] {
			t.Fatalf("round trip corrupted element %d", i)
		}
	}
	// Split results own their data.
	parts[0].Data[0] = 99
	if batch.Data[0] == 99 {
		t.Fatal("SplitBatch returned a view, want a copy")
	}
}

func TestBatchViewSharesData(t *testing.T) {
	batch := New(3, 2, 2, 2)
	for i := range batch.Data {
		batch.Data[i] = float32(i)
	}
	v := batch.BatchView(1)
	if v.Dim(0) != 1 || v.Dim(1) != 2 || v.Dim(2) != 2 || v.Dim(3) != 2 {
		t.Fatalf("view shape %v", v.Shape())
	}
	if v.Data[0] != 8 {
		t.Fatalf("view starts at %g, want 8", v.Data[0])
	}
	v.Data[0] = -1
	if batch.Data[8] != -1 {
		t.Fatal("view write not visible in the batch")
	}
}

func TestStackRejectsMismatches(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty stack", func() { Stack(nil) })
	mustPanic("shape mismatch", func() { Stack([]*Tensor{New(1, 2, 3, 3), New(1, 2, 4, 4)}) })
	mustPanic("multi-image input", func() { Stack([]*Tensor{New(2, 2, 3, 3)}) })
	mustPanic("rank-2 input", func() { Stack([]*Tensor{New(3, 3)}) })
	mustPanic("view out of range", func() { New(2, 1, 1, 1).BatchView(2) })
	mustPanic("split non-batch", func() { SplitBatch(New(3, 3)) })
}
