package tensor

import (
	"fmt"
	"io"
	"sync"
)

// inflate.go is a minimal DEFLATE (RFC 1951) + zlib-wrapper (RFC 1950)
// decoder specialised for the PNG fast path: the caller knows the
// decompressed size exactly, so the output buffer doubles as the LZ77
// window and decoding is a single pass with zero allocations — the
// stdlib flate reader allocates a handful of objects per Reset, which
// is what this exists to avoid. Huffman decoding is the canonical
// first/count/offset walk (the same scheme the JPEG decoder uses, with
// DEFLATE's LSB-first bit packing).

// inflateHuff is a canonical Huffman decode table: codes of length l
// occupy [first[l], first[l]+count[l]), and syms lists symbols in
// (length, symbol) order.
type inflateHuff struct {
	first  [16]int32
	count  [16]int32
	offset [16]int32
	syms   [288]uint16
}

// build derives the decode arrays from per-symbol code lengths.
// Over-subscribed length sets are rejected; incomplete sets build but
// unassigned codes fail at decode time.
func (h *inflateHuff) build(lengths []byte) error {
	var cnt [16]int32
	for _, l := range lengths {
		if l > 15 {
			return fmt.Errorf("tensor: inflate code length %d out of range", l)
		}
		cnt[l]++
	}
	cnt[0] = 0
	code, k := int32(0), int32(0)
	for l := 1; l < 16; l++ {
		code <<= 1
		h.first[l] = code
		h.count[l] = cnt[l]
		h.offset[l] = k
		code += cnt[l]
		if code > 1<<l {
			return fmt.Errorf("tensor: inflate over-subscribed Huffman lengths")
		}
		k += cnt[l]
	}
	var next [16]int32
	next = h.offset
	for sym, l := range lengths {
		if l != 0 {
			h.syms[next[l]] = uint16(sym)
			next[l]++
		}
	}
	return nil
}

// inflater holds all per-stream state; it lives inside pooled scratch
// so steady-state decodes allocate nothing.
type inflater struct {
	data []byte // compressed bytes (past the zlib header)
	pos  int
	acc  uint64
	n    int

	lit, dist inflateHuff
	cl        inflateHuff
}

// DEFLATE length/distance code tables (RFC 1951 §3.2.5).
var inflateLenBase = [29]int32{3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258}
var inflateLenExtra = [29]int32{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0}
var inflateDistBase = [30]int32{1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577}
var inflateDistExtra = [30]int32{0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13}

// inflateCLOrder is the code-length-code transmission order (§3.2.7).
var inflateCLOrder = [19]int{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}

// Fixed-Huffman tables (§3.2.6), built once.
var inflateFixedOnce sync.Once
var inflateFixedLit, inflateFixedDist inflateHuff

func inflateFixedInit() {
	var lens [288]byte
	for i := 0; i < 144; i++ {
		lens[i] = 8
	}
	for i := 144; i < 256; i++ {
		lens[i] = 9
	}
	for i := 256; i < 280; i++ {
		lens[i] = 7
	}
	for i := 280; i < 288; i++ {
		lens[i] = 8
	}
	if err := inflateFixedLit.build(lens[:]); err != nil {
		panic(err)
	}
	var dlens [30]byte
	for i := range dlens {
		dlens[i] = 5
	}
	if err := inflateFixedDist.build(dlens[:]); err != nil {
		panic(err)
	}
}

//rtoss:noalloc
func (f *inflater) bits(n int) (int32, error) {
	for f.n < n {
		if f.pos >= len(f.data) {
			return 0, io.ErrUnexpectedEOF
		}
		f.acc |= uint64(f.data[f.pos]) << uint(f.n)
		f.pos++
		f.n += 8
	}
	v := int32(f.acc & (1<<uint(n) - 1))
	f.acc >>= uint(n)
	f.n -= n
	return v, nil
}

// decodeSym walks one canonical Huffman code bit by bit. DEFLATE packs
// code bits most-significant first, so sequential single-bit reads
// extend the code from the top exactly like the JPEG walk.
//
//rtoss:noalloc
func (f *inflater) decodeSym(h *inflateHuff) (int, error) {
	var code int32
	for l := 1; l < 16; l++ {
		b, err := f.bits(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if d := code - h.first[l]; d >= 0 && d < h.count[l] {
			return int(h.syms[h.offset[l]+d]), nil
		}
	}
	return 0, fmt.Errorf("tensor: inflate invalid Huffman code") //rtoss:allow noalloc (corrupt-input cold path)
}

// zlibInflate decompresses a zlib stream into out, which must be sized
// to the exact decompressed length (PNG computes it from the header).
// The Adler-32 trailer is not verified — the pixel data is treated as
// untrusted regardless, and every reference is bounds-checked.
func (f *inflater) zlibInflate(out, data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("tensor: zlib header truncated: %w", io.ErrUnexpectedEOF)
	}
	cmf, flg := data[0], data[1]
	if cmf&0x0f != 8 {
		return fmt.Errorf("tensor: zlib compression method %d unsupported", cmf&0x0f)
	}
	if (uint16(cmf)<<8|uint16(flg))%31 != 0 {
		return fmt.Errorf("tensor: zlib header checksum failed")
	}
	if flg&0x20 != 0 {
		return fmt.Errorf("tensor: zlib preset dictionary unsupported")
	}
	f.data, f.pos, f.acc, f.n = data[2:], 0, 0, 0
	inflateFixedOnce.Do(inflateFixedInit)
	w := 0
	for {
		bfinal, err := f.bits(1)
		if err != nil {
			return err
		}
		btype, err := f.bits(2)
		if err != nil {
			return err
		}
		switch btype {
		case 0: // stored
			f.acc, f.n = 0, 0 // discard to byte boundary
			if len(f.data)-f.pos < 4 {
				return fmt.Errorf("tensor: inflate stored block header truncated: %w", io.ErrUnexpectedEOF)
			}
			n := int(f.data[f.pos]) | int(f.data[f.pos+1])<<8
			nlen := int(f.data[f.pos+2]) | int(f.data[f.pos+3])<<8
			f.pos += 4
			if n != ^nlen&0xffff {
				return fmt.Errorf("tensor: inflate stored block length check failed")
			}
			if len(f.data)-f.pos < n || len(out)-w < n {
				return fmt.Errorf("tensor: inflate stored block overruns: %w", io.ErrUnexpectedEOF)
			}
			copy(out[w:w+n], f.data[f.pos:f.pos+n])
			f.pos += n
			w += n
		case 1:
			if w, err = f.block(out, w, &inflateFixedLit, &inflateFixedDist); err != nil {
				return err
			}
		case 2:
			if err := f.dynamicTables(); err != nil {
				return err
			}
			if w, err = f.block(out, w, &f.lit, &f.dist); err != nil {
				return err
			}
		default:
			return fmt.Errorf("tensor: inflate reserved block type")
		}
		if bfinal == 1 {
			break
		}
	}
	if w != len(out) {
		return fmt.Errorf("tensor: inflate produced %d bytes, want %d: %w", w, len(out), io.ErrUnexpectedEOF)
	}
	return nil
}

// dynamicTables reads a dynamic-block header (§3.2.7) into f.lit and
// f.dist.
func (f *inflater) dynamicTables() error {
	hlit, err := f.bits(5)
	if err != nil {
		return err
	}
	hdist, err := f.bits(5)
	if err != nil {
		return err
	}
	hclen, err := f.bits(4)
	if err != nil {
		return err
	}
	nlit, ndist, ncl := int(hlit)+257, int(hdist)+1, int(hclen)+4
	if nlit > 286 || ndist > 30 {
		return fmt.Errorf("tensor: inflate dynamic header counts out of range")
	}
	var clLens [19]byte
	for i := 0; i < ncl; i++ {
		v, err := f.bits(3)
		if err != nil {
			return err
		}
		clLens[inflateCLOrder[i]] = byte(v)
	}
	if err := f.cl.build(clLens[:]); err != nil {
		return err
	}
	var lens [286 + 30]byte
	for i := 0; i < nlit+ndist; {
		sym, err := f.decodeSym(&f.cl)
		if err != nil {
			return err
		}
		switch {
		case sym < 16:
			lens[i] = byte(sym)
			i++
		case sym == 16:
			if i == 0 {
				return fmt.Errorf("tensor: inflate repeat with no previous length")
			}
			n, err := f.bits(2)
			if err != nil {
				return err
			}
			prev := lens[i-1]
			for j := int32(0); j < n+3; j++ {
				if i >= nlit+ndist {
					return fmt.Errorf("tensor: inflate length repeat overruns")
				}
				lens[i] = prev
				i++
			}
		case sym == 17 || sym == 18:
			bitsN, base := 3, int32(3)
			if sym == 18 {
				bitsN, base = 7, 11
			}
			n, err := f.bits(bitsN)
			if err != nil {
				return err
			}
			for j := int32(0); j < n+base; j++ {
				if i >= nlit+ndist {
					return fmt.Errorf("tensor: inflate length repeat overruns")
				}
				lens[i] = 0
				i++
			}
		default:
			return fmt.Errorf("tensor: inflate bad code-length symbol %d", sym)
		}
	}
	if err := f.lit.build(lens[:nlit]); err != nil {
		return err
	}
	return f.dist.build(lens[nlit : nlit+ndist])
}

// block decodes one Huffman-coded block into out starting at w,
// returning the new write position. out is the full expected output,
// so back-references resolve against it directly — no separate window.
//
//rtoss:noalloc
func (f *inflater) block(out []byte, w int, lit, dist *inflateHuff) (int, error) {
	for {
		sym, err := f.decodeSym(lit)
		if err != nil {
			return w, err
		}
		if sym < 256 {
			if w >= len(out) {
				return w, fmt.Errorf("tensor: inflate output overruns expected size") //rtoss:allow noalloc (corrupt-input cold path)
			}
			out[w] = byte(sym)
			w++
			continue
		}
		if sym == 256 {
			return w, nil
		}
		sym -= 257
		if sym >= 29 {
			return w, fmt.Errorf("tensor: inflate bad length symbol") //rtoss:allow noalloc (corrupt-input cold path)
		}
		extra, err := f.bits(int(inflateLenExtra[sym]))
		if err != nil {
			return w, err
		}
		length := int(inflateLenBase[sym] + extra)
		dsym, err := f.decodeSym(dist)
		if err != nil {
			return w, err
		}
		if dsym >= 30 {
			return w, fmt.Errorf("tensor: inflate bad distance symbol") //rtoss:allow noalloc (corrupt-input cold path)
		}
		extra, err = f.bits(int(inflateDistExtra[dsym]))
		if err != nil {
			return w, err
		}
		d := int(inflateDistBase[dsym] + extra)
		if d > w {
			return w, fmt.Errorf("tensor: inflate back-reference before output start") //rtoss:allow noalloc (corrupt-input cold path)
		}
		if w+length > len(out) {
			return w, fmt.Errorf("tensor: inflate output overruns expected size") //rtoss:allow noalloc (corrupt-input cold path)
		}
		for i := 0; i < length; i++ {
			out[w] = out[w-d]
			w++
		}
	}
}
