package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// gob.go makes Tensor self-describing on the wire so model snapshots
// (the fleet's warm Program handoff) can gob-encode whole nn.Models.
// The format is deliberately minimal and versioned by its magic byte:
//
//	[1]   magic 0x74 ('t')
//	[4]   rank, uint32 LE
//	[8*r] dims, int64 LE each
//	[4*n] data, float32 LE raw bits
//
// Strides are derived, not transmitted: Tensors are stored row-major
// contiguous, and any view with exotic strides has no business on the
// wire.

const gobMagic = 0x74

// GobEncode implements gob.GobEncoder.
func (t *Tensor) GobEncode() ([]byte, error) {
	rank := len(t.shape)
	out := make([]byte, 0, 1+4+8*rank+4*len(t.Data))
	out = append(out, gobMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(rank))
	n := 1
	for _, d := range t.shape {
		out = binary.LittleEndian.AppendUint64(out, uint64(d))
		n *= d
	}
	if n != len(t.Data) {
		return nil, fmt.Errorf("tensor: gob-encoding a non-contiguous view (shape %v over %d elements)", t.shape, len(t.Data))
	}
	for _, v := range t.Data {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out, nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tensor) GobDecode(b []byte) error {
	if len(b) < 5 || b[0] != gobMagic {
		return fmt.Errorf("tensor: bad gob header")
	}
	rank := int(binary.LittleEndian.Uint32(b[1:]))
	// A rank this high is never legitimate; reject before the dim loop
	// so a corrupt length cannot drive a huge allocation.
	if rank < 0 || rank > 8 {
		return fmt.Errorf("tensor: gob rank %d out of range", rank)
	}
	b = b[5:]
	if len(b) < 8*rank {
		return fmt.Errorf("tensor: gob shape truncated")
	}
	shape := make([]int, rank)
	n := 1
	for i := range shape {
		d := int64(binary.LittleEndian.Uint64(b[8*i:]))
		if d < 0 || d > 1<<31 {
			return fmt.Errorf("tensor: gob dimension %d out of range", d)
		}
		shape[i] = int(d)
		n *= int(d)
	}
	b = b[8*rank:]
	if len(b) != 4*n {
		return fmt.Errorf("tensor: gob data is %d bytes, shape %v needs %d", len(b), shape, 4*n)
	}
	data := make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	t.shape = shape
	t.Data = data
	t.strides = nil
	t.computeStrides()
	return nil
}
