package tensor

import "fmt"

// sparseconv.go implements the sparse convolution kernels that turn
// pruning-induced zeros into real execution speedups. Two compiled
// weight formats exist, mirroring the storage formats in
// internal/sparse:
//
//   - PatternConv: the pattern-grouped fast path. Every spatial kernel
//     references one mask from a small shared dictionary, so the inner
//     loop iterates only the <=k surviving taps per kernel and the
//     per-kernel metadata is a single dictionary index — the execution
//     counterpart of R-TOSS's "21 pre-defined patterns" argument.
//   - CSRConv: compressed sparse rows over [OutC, InC/groups*KH*KW],
//     the fallback for unstructured, filter and channel baselines whose
//     zeros follow no shared pattern.
//
// Both kernels are tap-major: for each (batch, output-channel) plane
// the output is initialised to the bias and each surviving weight then
// accumulates a shifted copy of its input row, which keeps the inner
// loops contiguous and free of per-element bounds arithmetic.

// PatternConv is a convolution weight compiled to the pattern-grouped
// sparse execution format.
type PatternConv struct {
	OutC, InCPerG, KH, KW int
	// DictTaps[d] holds the kept tap offsets (ky*KW + kx, ascending) of
	// dictionary mask d.
	DictTaps [][]int32
	// Index[k] is the dictionary entry of spatial kernel k, where
	// k = oc*InCPerG + ic in row-major weight order.
	Index []uint8
	// ValPtr[k] indexes the first surviving value of kernel k in
	// Values; kernel k holds len(DictTaps[Index[k]]) values, stored in
	// ascending tap order.
	ValPtr []int32
	Values []float32
}

// NNZ returns the number of surviving weights.
func (p *PatternConv) NNZ() int { return len(p.Values) }

// CSRConv is a convolution weight compiled to compressed sparse rows:
// one row per output channel over the flattened [InCPerG*KH*KW]
// reduction axis, columns ascending within each row.
type CSRConv struct {
	OutC, InCPerG, KH, KW int
	RowPtr                []int32
	ColIdx                []int32
	Values                []float32
}

// NNZ returns the number of surviving weights.
func (c *CSRConv) NNZ() int { return len(c.Values) }

// accumTap accumulates v times the (ky, kx)-shifted input plane into
// the output plane, touching only the output positions whose input tap
// is in bounds.
func accumTap(outPlane, inPlane []float32, oh, ow, h, w, stride, pad, ky, kx int, v float32) {
	// Go's integer division truncates toward zero, so negative
	// numerators (tap entirely below/right of the padded input) must
	// bail out before the division rounds them up to row 0.
	oyTop, oxTop := h-1+pad-ky, w-1+pad-kx
	if oyTop < 0 || oxTop < 0 {
		return
	}
	oyMin := 0
	if pad > ky {
		oyMin = (pad - ky + stride - 1) / stride
	}
	oyMax := oyTop / stride
	if oyMax > oh-1 {
		oyMax = oh - 1
	}
	oxMin := 0
	if pad > kx {
		oxMin = (pad - kx + stride - 1) / stride
	}
	oxMax := oxTop / stride
	if oxMax > ow-1 {
		oxMax = ow - 1
	}
	if oxMax < oxMin {
		return
	}
	for oy := oyMin; oy <= oyMax; oy++ {
		iy := oy*stride - pad + ky
		inRow := inPlane[iy*w : iy*w+w]
		outRow := outPlane[oy*ow : oy*ow+ow]
		if stride == 1 {
			ix := oxMin - pad + kx
			src := inRow[ix : ix+oxMax-oxMin+1]
			dst := outRow[oxMin : oxMax+1]
			for i, sv := range src {
				dst[i] += v * sv
			}
			continue
		}
		ix := oxMin*stride - pad + kx
		for ox := oxMin; ox <= oxMax; ox++ {
			outRow[ox] += v * inRow[ix]
			ix += stride
		}
	}
}

// Conv2DPattern computes the convolution of input [N, C, H, W] with a
// pattern-grouped sparse weight, matching Conv2D on the decoded dense
// weight up to floating-point summation order.
func Conv2DPattern(input *Tensor, pc *PatternConv, bias []float32, stride, pad, groups int) *Tensor {
	oh, ow := convCheck(input, pc.OutC, pc.InCPerG, pc.KH, pc.KW, bias, stride, pad, groups)
	out := New(input.Dim(0), pc.OutC, oh, ow)
	Conv2DPatternInto(out, input, pc, bias, stride, pad, groups)
	return out
}

// Conv2DPatternInto is Conv2DPattern writing into a caller-provided dst
// of shape [N, OutC, OH, OW]; every element is overwritten.
func Conv2DPatternInto(dst, input *Tensor, pc *PatternConv, bias []float32, stride, pad, groups int) {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh, ow := convCheck(input, pc.OutC, pc.InCPerG, pc.KH, pc.KW, bias, stride, pad, groups)
	checkConvDst(dst, n, pc.OutC, oh, ow)
	if len(pc.Index) != pc.OutC*pc.InCPerG {
		panic(fmt.Sprintf("tensor: PatternConv has %d kernel indices, want %d", len(pc.Index), pc.OutC*pc.InCPerG))
	}
	kPerG := pc.OutC / groups
	for b := 0; b < n; b++ {
		for ok := 0; ok < pc.OutC; ok++ {
			var bv float32
			if bias != nil {
				bv = bias[ok]
			}
			outPlane := dst.Data[((b*pc.OutC+ok)*oh)*ow : ((b*pc.OutC+ok)*oh+oh)*ow]
			for i := range outPlane {
				outPlane[i] = bv
			}
			g := ok / kPerG
			for ic := 0; ic < pc.InCPerG; ic++ {
				kk := ok*pc.InCPerG + ic
				taps := pc.DictTaps[pc.Index[kk]]
				if len(taps) == 0 {
					continue
				}
				vals := pc.Values[pc.ValPtr[kk] : int(pc.ValPtr[kk])+len(taps)]
				inC := g*pc.InCPerG + ic
				inPlane := input.Data[((b*c+inC)*h)*w : ((b*c+inC)*h+h)*w]
				for t, off := range taps {
					accumTap(outPlane, inPlane, oh, ow, h, w, stride, pad, int(off)/pc.KW, int(off)%pc.KW, vals[t])
				}
			}
		}
	}
}

// Conv2DCSR computes the convolution of input [N, C, H, W] with a CSR
// sparse weight, matching Conv2D on the decoded dense weight up to
// floating-point summation order.
func Conv2DCSR(input *Tensor, cc *CSRConv, bias []float32, stride, pad, groups int) *Tensor {
	oh, ow := convCheck(input, cc.OutC, cc.InCPerG, cc.KH, cc.KW, bias, stride, pad, groups)
	out := New(input.Dim(0), cc.OutC, oh, ow)
	Conv2DCSRInto(out, input, cc, bias, stride, pad, groups)
	return out
}

// Conv2DCSRInto is Conv2DCSR writing into a caller-provided dst of
// shape [N, OutC, OH, OW]; every element is overwritten.
func Conv2DCSRInto(dst, input *Tensor, cc *CSRConv, bias []float32, stride, pad, groups int) {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh, ow := convCheck(input, cc.OutC, cc.InCPerG, cc.KH, cc.KW, bias, stride, pad, groups)
	checkConvDst(dst, n, cc.OutC, oh, ow)
	if len(cc.RowPtr) != cc.OutC+1 {
		panic(fmt.Sprintf("tensor: CSRConv has %d row pointers, want %d", len(cc.RowPtr), cc.OutC+1))
	}
	kPerG := cc.OutC / groups
	ks := cc.KH * cc.KW
	for b := 0; b < n; b++ {
		for ok := 0; ok < cc.OutC; ok++ {
			var bv float32
			if bias != nil {
				bv = bias[ok]
			}
			outPlane := dst.Data[((b*cc.OutC+ok)*oh)*ow : ((b*cc.OutC+ok)*oh+oh)*ow]
			for i := range outPlane {
				outPlane[i] = bv
			}
			g := ok / kPerG
			for e := cc.RowPtr[ok]; e < cc.RowPtr[ok+1]; e++ {
				col := int(cc.ColIdx[e])
				ic := col / ks
				off := col % ks
				inC := g*cc.InCPerG + ic
				inPlane := input.Data[((b*c+inC)*h)*w : ((b*c+inC)*h+h)*w]
				accumTap(outPlane, inPlane, oh, ow, h, w, stride, pad, off/cc.KW, off%cc.KW, cc.Values[e])
			}
		}
	}
}
