package sparse

import (
	"testing"

	"rtoss/internal/nn"
	"rtoss/internal/pattern"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// lowerLayer builds a 3x3 conv layer with deterministic random weights.
func lowerLayer(seed uint64) *nn.Layer {
	r := rng.New(seed)
	l := &nn.Layer{
		ID: 1, Name: "conv", Kind: nn.Conv,
		InC: 4, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1, Group: 1,
		Weight: tensor.New(4, 4, 3, 3),
	}
	for i := range l.Weight.Data {
		l.Weight.Data[i] = float32(r.Range(-1, 1))
	}
	return l
}

// TestCompileConvPolicy checks the dense-vs-sparse lowering decision
// and the pattern-vs-CSR format choice the engine relies on.
func TestCompileConvPolicy(t *testing.T) {
	// An unpruned dense layer stays dense at any cutoff.
	if cc := CompileConv(lowerLayer(1), nil, 1); cc != nil {
		t.Fatal("dense layer was lowered to a sparse kernel")
	}

	// Dictionary-masked kernels take the pattern path.
	pat := lowerLayer(2)
	masks := pattern.NewDictionary(3).Masks
	for k := 0; k < pat.KernelCount(); k++ {
		masks[k%len(masks)].Apply(pat.Weight.Data[k*9 : (k+1)*9])
	}
	pat.Structure = nn.SparsityPattern
	cc := CompileConv(pat, nil, 1)
	if cc == nil || cc.Pattern == nil || cc.CSR != nil {
		t.Fatalf("pattern-pruned layer lowered to %+v, want pattern format", cc)
	}

	// Off-dictionary sparsity falls back to CSR.
	csr := lowerLayer(3)
	for k := 0; k < csr.KernelCount(); k++ {
		kernel := csr.Weight.Data[k*9 : (k+1)*9]
		for i := 6; i < 9; i++ { // 6-entry masks are in no canonical dict
			kernel[i] = 0
		}
	}
	csr.Structure = nn.SparsityUnstructured
	cc = CompileConv(csr, nil, 1)
	if cc == nil || cc.CSR == nil || cc.Pattern != nil {
		t.Fatalf("off-dictionary layer lowered to %+v, want CSR format", cc)
	}

	// The density cutoff keeps nearly-dense pruned layers on the dense
	// path: the 6/9 layer is 0.667 dense, so a 0.5 cutoff rejects it.
	if cc := CompileConv(csr, nil, 0.5); cc != nil {
		t.Fatal("cutoff 0.5 lowered a 0.667-density layer")
	}
	if cc := CompileConv(csr, nil, 0.75); cc == nil {
		t.Fatal("cutoff 0.75 kept a 0.667-density layer dense")
	}

	// Non-conv and weightless layers never lower.
	if cc := CompileConv(&nn.Layer{Kind: nn.Act}, nil, 1); cc != nil {
		t.Fatal("activation layer lowered")
	}
	if cc := CompileConv(&nn.Layer{Kind: nn.Conv}, nil, 1); cc != nil {
		t.Fatal("weightless conv lowered")
	}
}

// TestDefaultPatternDict checks the canonical union dictionary covers
// every entry-count variant plus the empty mask.
func TestDefaultPatternDict(t *testing.T) {
	dict := DefaultPatternDict()
	seen := map[uint16]bool{}
	for _, m := range dict {
		seen[m] = true
	}
	if !seen[0] {
		t.Fatal("default dictionary misses the empty (connectivity-pruned) mask")
	}
	for _, entries := range []int{2, 3, 4, 5} {
		for _, m := range pattern.NewDictionary(entries).Masks {
			if !seen[uint16(m)] {
				t.Fatalf("default dictionary misses %dEP mask %v", entries, m)
			}
		}
	}
}
