package sparse

import (
	"fmt"
	"testing"

	"rtoss/internal/nn"
	"rtoss/internal/pattern"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// compile_test.go property-tests the encode→compile→execute pipeline:
// for randomized pruned conv layers, every sparse execution format
// (pattern-grouped, CSR, bitmap) must reproduce tensor.Conv2D on the
// decoded dense weight within 1e-5.

// convCase is one randomized convolution configuration.
type convCase struct {
	n, c, h, w          int
	k, kh, kw           int
	stride, pad, groups int
}

// convCases exercises strides, padding, groups, tiny spatial sizes (the
// stride-2 truncation edge) and 1×1 kernels.
var convCases = []convCase{
	{1, 4, 8, 8, 6, 3, 3, 1, 1, 1},
	{2, 4, 7, 9, 4, 3, 3, 2, 1, 1},
	{1, 6, 8, 8, 6, 3, 3, 1, 0, 2},
	{1, 4, 2, 2, 4, 3, 3, 2, 1, 1}, // tiny input: taps fall off the edge
	{1, 8, 6, 6, 5, 1, 1, 1, 0, 1}, // pointwise
	{1, 4, 5, 5, 4, 1, 1, 2, 0, 2}, // strided pointwise, grouped
	{1, 3, 9, 9, 2, 5, 5, 1, 2, 1}, // 5×5 kernel, still <= 16 taps? (25 > 16: CSR only)
}

func randInput(r *rng.RNG, cs convCase) *tensor.Tensor {
	in := tensor.New(cs.n, cs.c, cs.h, cs.w)
	for i := range in.Data {
		in.Data[i] = float32(r.Range(-1, 1))
	}
	return in
}

func randWeight(r *rng.RNG, cs convCase) *tensor.Tensor {
	w := tensor.New(cs.k, cs.c/cs.groups, cs.kh, cs.kw)
	for i := range w.Data {
		w.Data[i] = float32(r.Range(-1, 1))
	}
	return w
}

func randBias(r *rng.RNG, k int) []float32 {
	b := make([]float32, k)
	for i := range b {
		b[i] = float32(r.Range(-0.5, 0.5))
	}
	return b
}

// sparsify zeroes each weight with probability p.
func sparsify(r *rng.RNG, w *tensor.Tensor, p float64) {
	for i := range w.Data {
		if r.Float64() < p {
			w.Data[i] = 0
		}
	}
}

func assertClose(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape(), want.Shape())
	}
	for i := range got.Data {
		d := got.Data[i] - want.Data[i]
		if d < -1e-5 || d > 1e-5 {
			t.Fatalf("%s: element %d is %g, want %g (diff %g)", label, i, got.Data[i], want.Data[i], d)
		}
	}
}

func TestCSRConvMatchesDense(t *testing.T) {
	r := rng.New(101)
	for ci, cs := range convCases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			in := randInput(r, cs)
			w := randWeight(r, cs)
			sparsify(r, w, 0.7)
			bias := randBias(r, cs.k)
			want := tensor.Conv2D(in, w, bias, cs.stride, cs.pad, cs.groups)

			csr := EncodeCSR(w.Data, cs.k, w.Len()/cs.k)
			cc, err := csr.Conv(cs.kh, cs.kw)
			if err != nil {
				t.Fatal(err)
			}
			got := tensor.Conv2DCSR(in, cc, bias, cs.stride, cs.pad, cs.groups)
			assertClose(t, "csr", got, want)
		})
	}
}

func TestBitmapConvMatchesDense(t *testing.T) {
	r := rng.New(202)
	for ci, cs := range convCases {
		if cs.kh*cs.kw > 16 {
			continue // bitmap masks are 16-bit
		}
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			in := randInput(r, cs)
			w := randWeight(r, cs)
			sparsify(r, w, 0.6)
			bias := randBias(r, cs.k)
			want := tensor.Conv2D(in, w, bias, cs.stride, cs.pad, cs.groups)

			bm := EncodeBitmap(w.Data, cs.kh*cs.kw)
			cc, err := bm.Conv(cs.k, cs.c/cs.groups, cs.kh, cs.kw)
			if err != nil {
				t.Fatal(err)
			}
			got := tensor.Conv2DCSR(in, cc, bias, cs.stride, cs.pad, cs.groups)
			assertClose(t, "bitmap", got, want)
		})
	}
}

func TestPatternConvMatchesDense(t *testing.T) {
	r := rng.New(303)
	dictMasks := pattern.NewDictionary(3).Masks
	dict := make([]uint16, len(dictMasks))
	for i, m := range dictMasks {
		dict[i] = uint16(m)
	}
	for ci, cs := range convCases {
		if cs.kh != 3 || cs.kw != 3 {
			continue // pattern masks apply to 3×3 kernels
		}
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			in := randInput(r, cs)
			w := randWeight(r, cs)
			// Pattern-prune every kernel with a random dictionary mask,
			// the way a pattern pruner would.
			ks := cs.kh * cs.kw
			for k := 0; k < w.Len()/ks; k++ {
				mask := dictMasks[int(r.Uint64()%uint64(len(dictMasks)))]
				mask.Apply(w.Data[k*ks : (k+1)*ks])
			}
			bias := randBias(r, cs.k)
			want := tensor.Conv2D(in, w, bias, cs.stride, cs.pad, cs.groups)

			pg, err := EncodePatternGrouped(w.Data, ks, dict)
			if err != nil {
				t.Fatal(err)
			}
			pc, err := pg.Conv(cs.k, cs.c/cs.groups, cs.kh, cs.kw)
			if err != nil {
				t.Fatal(err)
			}
			got := tensor.Conv2DPattern(in, pc, bias, cs.stride, cs.pad, cs.groups)
			assertClose(t, "pattern", got, want)
		})
	}
}

// TestCompileLayerHelpers checks the nn.Layer-level compile entry
// points the engine uses.
func TestCompileLayerHelpers(t *testing.T) {
	r := rng.New(404)
	l := &nn.Layer{
		ID: 1, Name: "conv", Kind: nn.Conv,
		InC: 4, OutC: 6, KH: 3, KW: 3, Stride: 1, Pad: 1, Group: 1,
		Weight: tensor.New(6, 4, 3, 3),
	}
	dictMasks := pattern.NewDictionary(2).Masks
	dict := make([]uint16, len(dictMasks))
	for i, m := range dictMasks {
		dict[i] = uint16(m)
	}
	for i := range l.Weight.Data {
		l.Weight.Data[i] = float32(r.Range(-1, 1))
	}
	for k := 0; k < l.KernelCount(); k++ {
		mask := dictMasks[int(r.Uint64()%uint64(len(dictMasks)))]
		mask.Apply(l.Weight.Data[k*9 : (k+1)*9])
	}
	in := tensor.New(1, 4, 6, 6)
	for i := range in.Data {
		in.Data[i] = float32(r.Range(-1, 1))
	}
	want := tensor.Conv2D(in, l.Weight, nil, l.Stride, l.Pad, l.Group)

	pc, err := CompilePatternConv(l, dict)
	if err != nil {
		t.Fatal(err)
	}
	if pc.NNZ() != int(l.NNZ()) {
		t.Fatalf("pattern NNZ %d, layer has %d", pc.NNZ(), l.NNZ())
	}
	assertClose(t, "pattern", tensor.Conv2DPattern(in, pc, nil, l.Stride, l.Pad, l.Group), want)

	cc, err := CompileCSRConv(l)
	if err != nil {
		t.Fatal(err)
	}
	if cc.NNZ() != int(l.NNZ()) {
		t.Fatalf("csr NNZ %d, layer has %d", cc.NNZ(), l.NNZ())
	}
	assertClose(t, "csr", tensor.Conv2DCSR(in, cc, nil, l.Stride, l.Pad, l.Group), want)

	// A kernel mask outside the dictionary must refuse to compile.
	dense := &nn.Layer{
		ID: 2, Name: "dense", Kind: nn.Conv,
		InC: 1, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1, Group: 1,
		Weight: tensor.Full(1, 1, 1, 3, 3),
	}
	if _, err := CompilePatternConv(dense, dict); err == nil {
		t.Fatal("expected off-dictionary mask to fail pattern compilation")
	}
}
