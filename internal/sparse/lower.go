package sparse

import (
	"rtoss/internal/nn"
	"rtoss/internal/pattern"
	"rtoss/internal/tensor"
)

// lower.go holds the kernel-lowering policy: deciding whether a conv
// layer is worth executing sparsely and, if so, which compiled format
// it gets. The execution engine used to own this decision; it lives
// here so that every consumer of compiled kernels (engine programs,
// the serving registry, tests) lowers layers identically.

// CompiledConv is a conv layer lowered to a sparse execution format;
// exactly one field is set.
type CompiledConv struct {
	Pattern *tensor.PatternConv
	CSR     *tensor.CSRConv
}

// DefaultPatternDict returns the union of the canonical R-TOSS mask
// dictionaries (2EP..5EP) plus the empty mask, so connectivity-pruned
// (all-zero) kernels still encode.
func DefaultPatternDict() []uint16 {
	dict := []uint16{0}
	for _, entries := range []int{2, 3, 4, 5} {
		for _, m := range pattern.NewDictionary(entries).Masks {
			dict = append(dict, uint16(m))
		}
	}
	return dict
}

// CompileConv lowers one conv layer to a sparse execution format, or
// returns nil to keep it dense. A layer is lowered when it has been
// pruned (recorded structure, or measured density below 0.999) and its
// weight density does not exceed densityCutoff — pass 1 to lower every
// pruned layer regardless of density (forced-sparse dispatch), or the
// break-even cutoff of the target kernels for automatic dispatch.
//
// Spatial kernels whose occupancy masks all come from dict take the
// pattern-grouped fast path; 1x1 and off-dictionary layers fall back to
// CSR. A nil dict means DefaultPatternDict.
func CompileConv(l *nn.Layer, dict []uint16, densityCutoff float64) *CompiledConv {
	if l.Kind != nn.Conv || l.Weight == nil {
		return nil
	}
	wc := l.WeightCount()
	if wc == 0 {
		return nil
	}
	density := float64(l.NNZ()) / float64(wc)
	pruned := l.Structure != nn.SparsityDense || density < 0.999
	if !pruned || density > densityCutoff {
		return nil
	}
	if dict == nil {
		dict = DefaultPatternDict()
	}
	if ks := l.KH * l.KW; ks > 1 && ks <= 16 {
		if pc, err := CompilePatternConv(l, dict); err == nil {
			return &CompiledConv{Pattern: pc}
		}
	}
	cc, err := CompileCSRConv(l)
	if err != nil {
		return nil
	}
	return &CompiledConv{CSR: cc}
}
