// Package sparse implements the compressed weight-storage formats that
// turn pruning-induced zeros into model-size reductions:
//
//   - CSR: classic compressed sparse rows for unstructured sparsity;
//   - BitmapKernel: per-kernel 9/16-bit occupancy masks plus packed
//     non-zeros, suited to arbitrary kernel sparsity;
//   - PatternGrouped: the FKW-style format pattern pruning enables — a
//     shared dictionary of at most 256 masks, one byte of dictionary
//     index per kernel, plus exactly k packed values per kernel. This
//     is why R-TOSS's "21 pre-defined patterns" matter: the per-kernel
//     metadata collapses to a single byte.
//
// Each encoder reports exact byte sizes so compression ratios are
// measured, not asserted, and decodes back to dense for verification.
package sparse

import (
	"fmt"

	"rtoss/internal/nn"
	"rtoss/internal/prune"
	"rtoss/internal/tensor"
)

// Format identifies a storage format.
type Format int

// Available formats.
const (
	FormatDense Format = iota
	FormatCSR
	FormatBitmapKernel
	FormatPatternGrouped
)

var formatNames = map[Format]string{
	FormatDense: "dense", FormatCSR: "csr",
	FormatBitmapKernel: "bitmap", FormatPatternGrouped: "pattern-grouped",
}

func (f Format) String() string {
	if s, ok := formatNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ForStructure returns the natural storage format for a sparsity
// structure.
func ForStructure(s prune.Structure) Format {
	switch s {
	case prune.Pattern:
		return FormatPatternGrouped
	case prune.Unstructured, prune.Mixed:
		return FormatCSR
	case prune.Channel, prune.Filter:
		// Structured removals shrink the dense tensor; CSR degenerates
		// gracefully to row-skips.
		return FormatCSR
	default:
		return FormatDense
	}
}

// CSR is a compressed-sparse-rows encoding of a 2-D view [rows, cols].
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Values     []float32
}

// EncodeCSR encodes a flat weight slice viewed as [rows, cols].
func EncodeCSR(data []float32, rows, cols int) *CSR {
	if rows*cols != len(data) {
		panic(fmt.Sprintf("sparse: CSR view %dx%d does not cover %d weights", rows, cols, len(data)))
	}
	c := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			v := data[r*cols+j]
			if v != 0 {
				c.ColIdx = append(c.ColIdx, int32(j))
				c.Values = append(c.Values, v)
			}
		}
		c.RowPtr[r+1] = int32(len(c.Values))
	}
	return c
}

// Decode reconstructs the dense weights.
func (c *CSR) Decode() []float32 {
	out := make([]float32, c.Rows*c.Cols)
	for r := 0; r < c.Rows; r++ {
		for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
			out[r*c.Cols+int(c.ColIdx[i])] = c.Values[i]
		}
	}
	return out
}

// Bytes returns the encoded size: 4-byte row pointers, 4-byte column
// indices, 4-byte values.
func (c *CSR) Bytes() int64 {
	return int64(4*len(c.RowPtr) + 4*len(c.ColIdx) + 4*len(c.Values))
}

// BitmapKernels stores each spatial kernel as a 16-bit occupancy mask
// plus its packed non-zero values.
type BitmapKernels struct {
	KernelSize int // weights per kernel (e.g. 9)
	Masks      []uint16
	Values     []float32
}

// EncodeBitmap encodes a flat weight slice as consecutive kernels of
// kernelSize weights. len(data) must be a multiple of kernelSize and
// kernelSize must be <= 16.
func EncodeBitmap(data []float32, kernelSize int) *BitmapKernels {
	if kernelSize <= 0 || kernelSize > 16 {
		panic("sparse: bitmap kernel size must be in [1,16]")
	}
	if len(data)%kernelSize != 0 {
		panic("sparse: data not a multiple of kernel size")
	}
	b := &BitmapKernels{KernelSize: kernelSize}
	for k := 0; k < len(data); k += kernelSize {
		var mask uint16
		for i := 0; i < kernelSize; i++ {
			if data[k+i] != 0 {
				mask |= 1 << i
				b.Values = append(b.Values, data[k+i])
			}
		}
		b.Masks = append(b.Masks, mask)
	}
	return b
}

// Decode reconstructs the dense weights.
func (b *BitmapKernels) Decode() []float32 {
	out := make([]float32, len(b.Masks)*b.KernelSize)
	vi := 0
	for k, mask := range b.Masks {
		for i := 0; i < b.KernelSize; i++ {
			if mask&(1<<i) != 0 {
				out[k*b.KernelSize+i] = b.Values[vi]
				vi++
			}
		}
	}
	return out
}

// Bytes returns 2 bytes per kernel mask plus 4 per value.
func (b *BitmapKernels) Bytes() int64 {
	return int64(2*len(b.Masks) + 4*len(b.Values))
}

// PatternGrouped stores kernels that all use masks from a small shared
// dictionary: one byte of dictionary index per kernel plus the packed
// surviving values. Kernels whose mask is not in the dictionary (e.g.
// dense detect heads) cannot use this format.
type PatternGrouped struct {
	KernelSize int
	Dict       []uint16 // mask dictionary (<= 256 entries)
	Index      []uint8  // per-kernel dictionary index
	Values     []float32
}

// ErrNotPatterned reports a kernel whose occupancy mask is absent from
// the dictionary.
type ErrNotPatterned struct {
	Kernel int
	Mask   uint16
}

func (e *ErrNotPatterned) Error() string {
	return fmt.Sprintf("sparse: kernel %d mask %03x not in pattern dictionary", e.Kernel, e.Mask)
}

// EncodePatternGrouped encodes consecutive kernels of kernelSize
// weights given the shared mask dictionary.
func EncodePatternGrouped(data []float32, kernelSize int, dict []uint16) (*PatternGrouped, error) {
	if len(dict) == 0 || len(dict) > 256 {
		return nil, fmt.Errorf("sparse: dictionary size %d out of (0,256]", len(dict))
	}
	if len(data)%kernelSize != 0 {
		return nil, fmt.Errorf("sparse: data not a multiple of kernel size")
	}
	lookup := map[uint16]uint8{}
	for i, m := range dict {
		lookup[m] = uint8(i)
	}
	p := &PatternGrouped{KernelSize: kernelSize, Dict: append([]uint16(nil), dict...)}
	for k := 0; k < len(data); k += kernelSize {
		var mask uint16
		for i := 0; i < kernelSize; i++ {
			if data[k+i] != 0 {
				mask |= 1 << i
			}
		}
		idx, ok := lookup[mask]
		if !ok {
			return nil, &ErrNotPatterned{Kernel: k / kernelSize, Mask: mask}
		}
		p.Index = append(p.Index, idx)
		for i := 0; i < kernelSize; i++ {
			if data[k+i] != 0 {
				p.Values = append(p.Values, data[k+i])
			}
		}
	}
	return p, nil
}

// Decode reconstructs the dense weights.
func (p *PatternGrouped) Decode() []float32 {
	out := make([]float32, len(p.Index)*p.KernelSize)
	vi := 0
	for k, idx := range p.Index {
		mask := p.Dict[idx]
		for i := 0; i < p.KernelSize; i++ {
			if mask&(1<<i) != 0 {
				out[k*p.KernelSize+i] = p.Values[vi]
				vi++
			}
		}
	}
	return out
}

// Bytes returns 2 bytes per dictionary entry, 1 byte per kernel index,
// 4 per value.
func (p *PatternGrouped) Bytes() int64 {
	return int64(2*len(p.Dict) + len(p.Index) + 4*len(p.Values))
}

// LayerEncoding is the chosen encoding of one conv layer.
type LayerEncoding struct {
	LayerID    int
	Name       string
	Format     Format
	DenseBytes int64
	Bytes      int64
}

// ModelEncoding aggregates a whole model's compressed size.
type ModelEncoding struct {
	Model      string
	Layers     []LayerEncoding
	DenseBytes int64
	Bytes      int64
}

// CompressionRatio returns DenseBytes / Bytes.
func (e *ModelEncoding) CompressionRatio() float64 {
	if e.Bytes == 0 {
		return 1
	}
	return float64(e.DenseBytes) / float64(e.Bytes)
}

// EncodeModel encodes every conv layer of a pruned model in the format
// implied by its sparsity structure, with per-layer fallbacks: a
// pattern-grouped layer whose masks exceed the dictionary falls back to
// bitmap, and any encoding larger than dense falls back to dense.
// patternDict supplies the shared dictionary for pattern layers (the
// R-TOSS canonical masks); it may be nil for other structures.
func EncodeModel(m *nn.Model, structure prune.Structure, patternDict []uint16) *ModelEncoding {
	enc := &ModelEncoding{Model: m.Name}
	for _, l := range m.Layers {
		if l.Kind != nn.Conv || l.Weight == nil {
			continue
		}
		dense := int64(4 * l.Weight.Len())
		le := LayerEncoding{LayerID: l.ID, Name: l.Name, Format: FormatDense, DenseBytes: dense, Bytes: dense}
		ks := l.KH * l.KW
		// R-TOSS prunes 1×1 layers in flattened groups of 9 (Algorithm
		// 3), so their natural encoding unit is the 9-weight chunk; the
		// sub-chunk tail is guaranteed zero by the pruner and encoded as
		// a raw remainder.
		chunk := ks
		data := l.Weight.Data
		var tailBytes int64
		if ks == 1 {
			chunk = 9
			full := (len(data) / chunk) * chunk
			for _, v := range data[full:] {
				if v != 0 {
					tailBytes += 4
				}
			}
			data = data[:full]
		}
		switch ForStructure(structure) {
		case FormatPatternGrouped:
			if chunk <= 16 && patternDict != nil {
				if pg, err := EncodePatternGrouped(data, chunk, patternDict); err == nil && pg.Bytes()+tailBytes < le.Bytes {
					le.Format, le.Bytes = FormatPatternGrouped, pg.Bytes()+tailBytes
					break
				}
			}
			if chunk <= 16 {
				if bm := EncodeBitmap(data, chunk); bm.Bytes()+tailBytes < le.Bytes {
					le.Format, le.Bytes = FormatBitmapKernel, bm.Bytes()+tailBytes
				}
			}
		case FormatCSR:
			rows := l.OutC
			cols := l.Weight.Len() / rows
			if csr := EncodeCSR(l.Weight.Data, rows, cols); csr.Bytes() < le.Bytes {
				le.Format, le.Bytes = FormatCSR, csr.Bytes()
			}
		}
		enc.DenseBytes += le.DenseBytes
		enc.Bytes += le.Bytes
		enc.Layers = append(enc.Layers, le)
	}
	return enc
}

// DenseTensorBytes returns the dense byte size of a tensor.
func DenseTensorBytes(t *tensor.Tensor) int64 { return int64(4 * t.Len()) }
