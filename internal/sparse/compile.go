package sparse

import (
	"fmt"
	"math/bits"

	"rtoss/internal/nn"
	"rtoss/internal/tensor"
)

// compile.go lowers the storage encodings of this package into the
// executable sparse-convolution formats of internal/tensor. Storage
// formats optimise bytes on the wire; the compiled formats optimise the
// inner loop of a forward pass (precomputed tap offsets, prefix value
// pointers). The split keeps internal/tensor free of model/pruning
// imports.

// maskTaps returns the set bit positions of mask in ascending order.
func maskTaps(mask uint16) []int32 {
	taps := make([]int32, 0, bits.OnesCount16(mask))
	for i := 0; i < 16; i++ {
		if mask&(1<<i) != 0 {
			taps = append(taps, int32(i))
		}
	}
	return taps
}

// Conv compiles a pattern-grouped encoding of a conv weight
// [outC, inCPerG, kh, kw] into the executable pattern format. The
// encoding's kernel size must equal kh*kw and cover outC*inCPerG
// kernels.
func (p *PatternGrouped) Conv(outC, inCPerG, kh, kw int) (*tensor.PatternConv, error) {
	if p.KernelSize != kh*kw {
		return nil, fmt.Errorf("sparse: pattern kernel size %d does not match %dx%d", p.KernelSize, kh, kw)
	}
	if len(p.Index) != outC*inCPerG {
		return nil, fmt.Errorf("sparse: pattern encoding has %d kernels, conv needs %d", len(p.Index), outC*inCPerG)
	}
	pc := &tensor.PatternConv{
		OutC: outC, InCPerG: inCPerG, KH: kh, KW: kw,
		DictTaps: make([][]int32, len(p.Dict)),
		Index:    p.Index,
		ValPtr:   make([]int32, len(p.Index)),
		Values:   p.Values,
	}
	for d, mask := range p.Dict {
		pc.DictTaps[d] = maskTaps(mask)
	}
	at := int32(0)
	for k, idx := range p.Index {
		pc.ValPtr[k] = at
		at += int32(len(pc.DictTaps[idx]))
	}
	if int(at) != len(p.Values) {
		return nil, fmt.Errorf("sparse: pattern encoding has %d values, tap counts sum to %d", len(p.Values), at)
	}
	return pc, nil
}

// Conv compiles a CSR encoding of a conv weight viewed as
// [outC, inCPerG*kh*kw] into the executable CSR format.
func (c *CSR) Conv(kh, kw int) (*tensor.CSRConv, error) {
	if kh*kw <= 0 || c.Cols%(kh*kw) != 0 {
		return nil, fmt.Errorf("sparse: CSR cols %d not divisible by kernel size %dx%d", c.Cols, kh, kw)
	}
	return &tensor.CSRConv{
		OutC: c.Rows, InCPerG: c.Cols / (kh * kw), KH: kh, KW: kw,
		RowPtr: c.RowPtr, ColIdx: c.ColIdx, Values: c.Values,
	}, nil
}

// Conv compiles a bitmap-kernel encoding of a conv weight
// [outC, inCPerG, kh, kw] into the executable CSR format (a bitmap is a
// per-kernel mask without the shared dictionary, so CSR is its natural
// execution lowering).
func (b *BitmapKernels) Conv(outC, inCPerG, kh, kw int) (*tensor.CSRConv, error) {
	ks := kh * kw
	if b.KernelSize != ks {
		return nil, fmt.Errorf("sparse: bitmap kernel size %d does not match %dx%d", b.KernelSize, kh, kw)
	}
	if len(b.Masks) != outC*inCPerG {
		return nil, fmt.Errorf("sparse: bitmap encoding has %d kernels, conv needs %d", len(b.Masks), outC*inCPerG)
	}
	cc := &tensor.CSRConv{
		OutC: outC, InCPerG: inCPerG, KH: kh, KW: kw,
		RowPtr: make([]int32, outC+1),
		ColIdx: make([]int32, 0, len(b.Values)),
		Values: b.Values,
	}
	for oc := 0; oc < outC; oc++ {
		for ic := 0; ic < inCPerG; ic++ {
			mask := b.Masks[oc*inCPerG+ic]
			for _, t := range maskTaps(mask) {
				cc.ColIdx = append(cc.ColIdx, int32(ic*ks)+t)
			}
		}
		cc.RowPtr[oc+1] = int32(len(cc.ColIdx))
	}
	if len(cc.ColIdx) != len(cc.Values) {
		return nil, fmt.Errorf("sparse: bitmap encoding has %d values for %d set bits", len(cc.Values), len(cc.ColIdx))
	}
	return cc, nil
}

// CompilePatternConv encodes a conv layer's weights in the
// pattern-grouped format against the given mask dictionary and compiles
// the result for execution. It fails (like EncodePatternGrouped) when
// any kernel's occupancy mask is absent from the dictionary.
func CompilePatternConv(l *nn.Layer, dict []uint16) (*tensor.PatternConv, error) {
	if l.Kind != nn.Conv || l.Weight == nil {
		return nil, fmt.Errorf("sparse: layer %q is not a weighted conv", l.Name)
	}
	ks := l.KH * l.KW
	if ks > 16 {
		return nil, fmt.Errorf("sparse: %dx%d kernels exceed the 16-bit mask", l.KH, l.KW)
	}
	pg, err := EncodePatternGrouped(l.Weight.Data, ks, dict)
	if err != nil {
		return nil, err
	}
	return pg.Conv(l.OutC, l.InC/l.Group, l.KH, l.KW)
}

// CompileCSRConv encodes a conv layer's weights as CSR and compiles the
// result for execution.
func CompileCSRConv(l *nn.Layer) (*tensor.CSRConv, error) {
	if l.Kind != nn.Conv || l.Weight == nil {
		return nil, fmt.Errorf("sparse: layer %q is not a weighted conv", l.Name)
	}
	inCPerG := l.InC / l.Group
	csr := EncodeCSR(l.Weight.Data, l.OutC, inCPerG*l.KH*l.KW)
	return csr.Conv(l.KH, l.KW)
}
