package sparse

import (
	"testing"
	"testing/quick"

	"rtoss/internal/core"
	"rtoss/internal/models"
	"rtoss/internal/pattern"
	"rtoss/internal/prune"
	"rtoss/internal/rng"
)

func TestCSRRoundTrip(t *testing.T) {
	data := []float32{1, 0, 0, 2, 0, 3, 0, 0, 0, 0, 4, 0}
	c := EncodeCSR(data, 3, 4)
	got := c.Decode()
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("round trip failed at %d: %v", i, got)
		}
	}
	if len(c.Values) != 4 {
		t.Fatalf("values %d want 4", len(c.Values))
	}
}

func TestCSRBytesShrinkWithSparsity(t *testing.T) {
	dense := make([]float32, 1000)
	for i := range dense {
		dense[i] = 1
	}
	sparse := make([]float32, 1000)
	for i := 0; i < 100; i++ {
		sparse[i*10] = 1
	}
	cd := EncodeCSR(dense, 10, 100)
	cs := EncodeCSR(sparse, 10, 100)
	if cs.Bytes() >= cd.Bytes() {
		t.Fatalf("sparse CSR %d >= dense CSR %d bytes", cs.Bytes(), cd.Bytes())
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	data := []float32{1, 0, 2, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 0, 4, 0, 5}
	b := EncodeBitmap(data, 9)
	got := b.Decode()
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("bitmap round trip failed at %d", i)
		}
	}
	if len(b.Masks) != 2 {
		t.Fatalf("masks %d", len(b.Masks))
	}
}

func TestBitmapSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversize kernel")
		}
	}()
	EncodeBitmap(make([]float32, 34), 17)
}

func TestPatternGroupedRoundTrip(t *testing.T) {
	d2 := pattern.NewDictionary(2)
	dict := make([]uint16, len(d2.Masks))
	for i, m := range d2.Masks {
		dict[i] = uint16(m)
	}
	// Build kernels that use dictionary masks.
	var data []float32
	for k := 0; k < 5; k++ {
		kernel := make([]float32, 9)
		mask := d2.Masks[k%len(d2.Masks)]
		for i := 0; i < 9; i++ {
			if mask&(1<<i) != 0 {
				kernel[i] = float32(k + i + 1)
			}
		}
		data = append(data, kernel...)
	}
	p, err := EncodePatternGrouped(data, 9, dict)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Decode()
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("pattern-grouped round trip failed at %d", i)
		}
	}
}

func TestPatternGroupedRejectsUnknownMask(t *testing.T) {
	dict := []uint16{0x003}
	data := make([]float32, 9)
	data[8] = 1 // mask 0x100 not in dictionary
	if _, err := EncodePatternGrouped(data, 9, dict); err == nil {
		t.Fatal("expected ErrNotPatterned")
	}
}

func TestPatternGroupedSmallerThanBitmap(t *testing.T) {
	// With 2 values per 9-weight kernel, pattern-grouped (1B index + 8B
	// values) beats bitmap (2B mask + 8B values) per kernel.
	d2 := pattern.NewDictionary(2)
	dict := make([]uint16, len(d2.Masks))
	for i, m := range d2.Masks {
		dict[i] = uint16(m)
	}
	var data []float32
	for k := 0; k < 100; k++ {
		kernel := make([]float32, 9)
		mask := d2.Masks[k%len(d2.Masks)]
		for i := 0; i < 9; i++ {
			if mask&(1<<i) != 0 {
				kernel[i] = 1
			}
		}
		data = append(data, kernel...)
	}
	pg, err := EncodePatternGrouped(data, 9, dict)
	if err != nil {
		t.Fatal(err)
	}
	bm := EncodeBitmap(data, 9)
	if pg.Bytes() >= bm.Bytes() {
		t.Fatalf("pattern-grouped %d >= bitmap %d", pg.Bytes(), bm.Bytes())
	}
}

func TestForStructure(t *testing.T) {
	if ForStructure(prune.Pattern) != FormatPatternGrouped {
		t.Fatal("pattern structure should use pattern-grouped format")
	}
	if ForStructure(prune.Unstructured) != FormatCSR {
		t.Fatal("unstructured should use CSR")
	}
	if ForStructure(prune.Dense) != FormatDense {
		t.Fatal("dense stays dense")
	}
}

func rtossDict() []uint16 {
	var dict []uint16
	for _, e := range []int{2, 3} {
		for _, m := range pattern.NewDictionary(e).Masks {
			dict = append(dict, uint16(m))
		}
	}
	// Bitmap of fully dense kernels appears in never-pruned layers.
	return dict
}

func TestEncodeModelRTOSSCompression(t *testing.T) {
	// Encoding an R-TOSS-2EP pruned YOLOv5s must compress by roughly the
	// paper's 4.4× (weight-storage view; metadata costs a little).
	m := models.YOLOv5s(models.KITTIClasses)
	res, err := core.NewVariant(2).Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeModel(m, res.Structure, rtossDict())
	ratio := enc.CompressionRatio()
	if ratio < 3.0 || ratio > 5.0 {
		t.Errorf("encoded compression %.2fx, want near the paper's 4.4x", ratio)
	}
	if enc.Bytes >= enc.DenseBytes {
		t.Error("encoding failed to shrink the model")
	}
}

func TestEncodeModelNeverGrows(t *testing.T) {
	// Per-layer fallback guarantees Bytes <= DenseBytes even for the
	// unpruned baseline.
	m := models.YOLOv5s(models.KITTIClasses)
	enc := EncodeModel(m, prune.Dense, nil)
	if enc.Bytes > enc.DenseBytes {
		t.Fatalf("dense model grew: %d > %d", enc.Bytes, enc.DenseBytes)
	}
	for _, le := range enc.Layers {
		if le.Bytes > le.DenseBytes {
			t.Fatalf("layer %s grew", le.Name)
		}
	}
}

func TestQuickCSRRoundTrip(t *testing.T) {
	f := func(seed uint64, rowsRaw, colsRaw uint8) bool {
		rows := int(rowsRaw%16) + 1
		cols := int(colsRaw%16) + 1
		r := rng.New(seed)
		data := make([]float32, rows*cols)
		for i := range data {
			if r.Float64() < 0.3 {
				data[i] = float32(r.Range(-1, 1))
			}
		}
		c := EncodeCSR(data, rows, cols)
		got := c.Decode()
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBitmapRoundTrip(t *testing.T) {
	f := func(seed uint64, kernelsRaw uint8) bool {
		kernels := int(kernelsRaw%20) + 1
		r := rng.New(seed)
		data := make([]float32, kernels*9)
		for i := range data {
			if r.Float64() < 0.25 {
				data[i] = float32(r.Range(-1, 1))
			}
		}
		b := EncodeBitmap(data, 9)
		got := b.Decode()
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeModelRTOSS(b *testing.B) {
	m := models.YOLOv5s(models.KITTIClasses)
	res, _ := core.NewVariant(2).Prune(m)
	dict := rtossDict()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodeModel(m, res.Structure, dict)
	}
}
