// Package hw models the two evaluation platforms of the paper — the
// NVIDIA RTX 2080Ti desktop GPU and the Jetson TX2 embedded module —
// with an analytic latency/energy model that reproduces the mechanisms
// pruning exploits:
//
//   - compute time scales with executed (non-zero) MACs, at a
//     structure-dependent efficiency: dense and channel/filter-pruned
//     layers run at the platform's dense throughput; pattern-pruned
//     layers run faster per non-zero MAC (kernels sharing one of 21
//     pre-defined masks are grouped, giving register-level reuse, the
//     PatDNN/YOLObile effect the paper leans on); unstructured sparsity
//     can only be partially skipped and pays an irregularity tax;
//   - each layer pays a fixed launch/framework overhead, which is why
//     measured speedups saturate well below the ideal 9/k;
//   - weight traffic moves compressed (non-zeros only) over the memory
//     bus;
//   - energy integrates static power over runtime plus a per-executed-
//     MAC dynamic cost.
//
// Calibration policy: the dense throughput and per-layer overhead of
// each platform are fitted to the paper's *unpruned baseline* rows
// (Table 2 and the BM-derived latencies of Table 3 / Fig 6), and the
// single pattern-gain constant is anchored on one pruned row
// (R-TOSS-3EP YOLOv5s on the RTX 2080Ti). Every other speedup, energy
// reduction, crossover and framework ordering is emergent. See
// EXPERIMENTS.md for the paper-vs-model table.
package hw

import (
	"fmt"

	"rtoss/internal/nn"
	"rtoss/internal/prune"
)

// Platform describes one execution target of the analytic model.
type Platform struct {
	Name string
	// DenseThroughput is the effective dense MAC rate (MAC/s) of the
	// deployed (PyTorch-style, uncompiled) stack — far below peak.
	DenseThroughput float64
	// PatternGain is the per-non-zero-MAC speedup of pattern-grouped
	// sparse execution relative to dense execution (>1: grouped kernels
	// amortise decode and reuse registers).
	PatternGain float64
	// UnstructuredSkip is the fraction of zero-MACs an unstructured-
	// sparse kernel actually avoids (software zero-skipping is
	// imperfect); UnstructuredUtil further derates throughput for the
	// irregular access pattern.
	UnstructuredSkip float64
	UnstructuredUtil float64
	// MixedSkip/MixedUtil are the same knobs for filter+unstructured
	// mixes (Neural Pruning).
	MixedSkip float64
	MixedUtil float64
	// LayerOverhead is the fixed per-layer launch/runtime cost (s).
	LayerOverhead float64
	// MemBandwidth is the effective memory bandwidth (bytes/s).
	MemBandwidth float64
	// LinearDerate divides throughput for Linear (transformer) layers:
	// attention's reshapes, softmaxes and small GEMMs run far below
	// conv GEMM efficiency, especially on embedded stacks.
	LinearDerate float64
	// StaticPower (W) integrates over the whole inference; EnergyPerMAC
	// (J) is the dynamic cost of one executed MAC on this stack
	// (system-level, including DRAM).
	StaticPower  float64
	EnergyPerMAC float64
}

// RTX2080Ti returns the desktop GPU model. Fit: YOLOv5s BM 12.83 ms and
// R-TOSS-3EP 6.9 ms (Table 3); energy fit from BM 0.923 J / 3EP 0.478 J.
func RTX2080Ti() Platform {
	return Platform{
		Name:             "RTX 2080Ti",
		DenseThroughput:  1.2e12,
		PatternGain:      1.92,
		UnstructuredSkip: 0.55,
		UnstructuredUtil: 0.70,
		MixedSkip:        0.80,
		MixedUtil:        0.85,
		LayerOverhead:    29e-6,
		MemBandwidth:     616e9,
		LinearDerate:     4,
		StaticPower:      64.8,
		EnergyPerMAC:     15.1e-12,
	}
}

// JetsonTX2 returns the embedded module model. Fit: Table 2 execution
// times (YOLOv5s 0.7415 s dense) and the Fig 6/7 TX2 baselines.
func JetsonTX2() Platform {
	return Platform{
		Name:             "Jetson TX2",
		DenseThroughput:  16.68e9,
		PatternGain:      1.92,
		UnstructuredSkip: 0.45,
		UnstructuredUtil: 0.65,
		MixedSkip:        0.75,
		MixedUtil:        0.80,
		LayerOverhead:    1.3e-3,
		MemBandwidth:     59.7e9,
		LinearDerate:     14,
		StaticPower:      7.0,
		EnergyPerMAC:     285e-12,
	}
}

// Platforms returns both evaluation platforms in paper order.
func Platforms() []Platform {
	return []Platform{RTX2080Ti(), JetsonTX2()}
}

// LayerCost is the analytic cost of one layer.
type LayerCost struct {
	LayerID int
	Name    string
	// DenseMACs is the layer's full MAC count; ExecMACs the non-zero
	// MACs actually executed after sparsity.
	DenseMACs int64
	ExecMACs  int64
	// WeightBytes is the compressed weight traffic.
	WeightBytes int64
	// ComputeTime/TotalTime in seconds; Energy in joules.
	ComputeTime float64
	TotalTime   float64
	Energy      float64
}

// CostReport is the full analytic execution estimate of a model on a
// platform.
type CostReport struct {
	Model     string
	Platform  string
	Structure prune.Structure
	Layers    []LayerCost
	// Time is end-to-end latency (s); Energy in joules.
	Time   float64
	Energy float64
	// DenseMACs/ExecMACs aggregate the per-layer numbers.
	DenseMACs int64
	ExecMACs  int64
}

// FPS returns inference rate implied by Time.
func (c *CostReport) FPS() float64 {
	if c.Time == 0 {
		return 0
	}
	return 1 / c.Time
}

// Speedup returns base.Time / c.Time.
func (c *CostReport) Speedup(base *CostReport) float64 {
	if c.Time == 0 {
		return 0
	}
	return base.Time / c.Time
}

// EnergyReduction returns the fractional energy saving versus base.
func (c *CostReport) EnergyReduction(base *CostReport) float64 {
	if base.Energy == 0 {
		return 0
	}
	return 1 - c.Energy/base.Energy
}

// costFactor returns the multiplier applied to a layer's dense compute
// time given its density and the sparsity structure.
func (p Platform) costFactor(structure prune.Structure, density float64) float64 {
	if density >= 1 {
		return 1
	}
	switch structure {
	case prune.Dense:
		return 1
	case prune.Pattern:
		// Non-zero MACs execute with the pattern-grouping gain.
		return density / p.PatternGain
	case prune.Unstructured:
		// Only a fraction of the zeros is skipped, and what remains
		// runs at degraded utilisation.
		executed := density + (1-p.UnstructuredSkip)*(1-density)
		return executed / p.UnstructuredUtil
	case prune.Channel, prune.Filter:
		// Structured removals shrink the GEMM; full dense efficiency.
		return density
	case prune.Mixed:
		executed := density + (1-p.MixedSkip)*(1-density)
		return executed / p.MixedUtil
	default:
		return 1
	}
}

// executedMACs returns the MACs that actually run (for the dynamic
// energy term): zeros that are skipped do not toggle the datapath.
func (p Platform) executedMACs(structure prune.Structure, macs int64, density float64) int64 {
	if density >= 1 {
		return macs
	}
	switch structure {
	case prune.Unstructured:
		return int64(float64(macs) * (density + (1-p.UnstructuredSkip)*(1-density)))
	case prune.Mixed:
		return int64(float64(macs) * (density + (1-p.MixedSkip)*(1-density)))
	default:
		return int64(float64(macs) * density)
	}
}

// Estimate computes the analytic execution cost of a model on the
// platform. The structure tag describes how the model was pruned
// (prune.Dense for the base model); per-layer density is read from the
// weight tensors, so the same function serves every framework.
func Estimate(m *nn.Model, p Platform, structure prune.Structure) (*CostReport, error) {
	shapes, err := m.InferShapes()
	if err != nil {
		return nil, fmt.Errorf("hw: %s: %w", m.Name, err)
	}
	rep := &CostReport{Model: m.Name, Platform: p.Name, Structure: structure}
	for _, l := range m.Layers {
		macs := l.MACs(shapes[l.ID].H, shapes[l.ID].W)
		if macs == 0 && l.Kind != nn.Conv && l.Kind != nn.Linear {
			// Topology nodes still pay launch overhead below via count.
		}
		density := 1.0
		if w := l.WeightCount(); w > 0 {
			density = float64(l.NNZ()) / float64(w)
		}
		st := structure
		if density >= 1 {
			st = prune.Dense
		}
		factor := p.costFactor(st, density)
		throughput := p.DenseThroughput
		if l.Kind == nn.Linear && p.LinearDerate > 1 {
			throughput /= p.LinearDerate
		}
		compute := float64(macs) * factor / throughput
		bytes := l.NNZ() * 4
		mem := float64(bytes) / p.MemBandwidth
		total := compute + mem + p.LayerOverhead
		exec := p.executedMACs(st, macs, density)
		cost := LayerCost{
			LayerID:     l.ID,
			Name:        l.Name,
			DenseMACs:   macs,
			ExecMACs:    exec,
			WeightBytes: bytes,
			ComputeTime: compute,
			TotalTime:   total,
		}
		rep.DenseMACs += macs
		rep.ExecMACs += exec
		rep.Time += total
		rep.Layers = append(rep.Layers, cost)
	}
	rep.Energy = p.StaticPower*rep.Time + p.EnergyPerMAC*float64(rep.ExecMACs)
	// Distribute energy per layer proportionally for reporting.
	for i := range rep.Layers {
		l := &rep.Layers[i]
		l.Energy = p.StaticPower*l.TotalTime + p.EnergyPerMAC*float64(l.ExecMACs)
	}
	return rep, nil
}

// EstimateTwoStage runs Estimate over a two-stage detector: the main
// network plus regions× the per-region classifier (Table 1 support).
// per may be nil for single-stage detectors.
func EstimateTwoStage(main, per *nn.Model, regions int, p Platform) (*CostReport, error) {
	rep, err := Estimate(main, p, prune.Dense)
	if err != nil {
		return nil, err
	}
	if per != nil && regions > 0 {
		perRep, err := Estimate(per, p, prune.Dense)
		if err != nil {
			return nil, err
		}
		rep.Time += float64(regions) * perRep.Time
		rep.Energy += float64(regions) * perRep.Energy
		rep.DenseMACs += int64(regions) * perRep.DenseMACs
		rep.ExecMACs += int64(regions) * perRep.ExecMACs
	}
	return rep, nil
}
