package hw

import (
	"math"
	"testing"

	"rtoss/internal/core"
	"rtoss/internal/models"
	"rtoss/internal/nn"
	"rtoss/internal/prune"
)

func denseCost(t testing.TB, m *nn.Model, p Platform) *CostReport {
	t.Helper()
	c, err := Estimate(m, p, prune.Dense)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlatformsDistinct(t *testing.T) {
	ps := Platforms()
	if len(ps) != 2 || ps[0].Name == ps[1].Name {
		t.Fatalf("platforms %v", ps)
	}
	if ps[0].DenseThroughput <= ps[1].DenseThroughput {
		t.Fatal("desktop GPU should out-throughput the TX2")
	}
}

func TestCostFactorDense(t *testing.T) {
	p := RTX2080Ti()
	if f := p.costFactor(prune.Dense, 1.0); f != 1 {
		t.Fatalf("dense factor %v", f)
	}
	// Density 1 short-circuits regardless of structure.
	if f := p.costFactor(prune.Pattern, 1.0); f != 1 {
		t.Fatalf("full-density pattern factor %v", f)
	}
}

func TestCostFactorOrdering(t *testing.T) {
	// At equal density, pattern must be cheapest, channel/filter exact,
	// unstructured worst (the paper's core hardware argument).
	p := RTX2080Ti()
	d := 0.4
	pat := p.costFactor(prune.Pattern, d)
	ch := p.costFactor(prune.Channel, d)
	un := p.costFactor(prune.Unstructured, d)
	mx := p.costFactor(prune.Mixed, d)
	if !(pat < ch && ch < mx && mx < un) {
		t.Fatalf("factor ordering broken: pat=%v ch=%v mixed=%v unstr=%v", pat, ch, mx, un)
	}
	if ch != d {
		t.Fatalf("channel factor should equal density: %v", ch)
	}
}

func TestUnstructuredBarelyFaster(t *testing.T) {
	// Unstructured sparsity on GPUs yields little-to-no speedup; at 70%
	// sparsity the cost factor should be near 1.
	p := RTX2080Ti()
	f := p.costFactor(prune.Unstructured, 0.30)
	if f < 0.75 || f > 1.15 {
		t.Fatalf("unstructured factor %v, want near 1", f)
	}
}

func TestEstimateYOLOv5sBaselineMatchesPaper(t *testing.T) {
	// Calibration anchors: Table 2 TX2 row (0.7415 s) and the Table 3 /
	// Fig 6-derived 2080Ti baseline (~12.8 ms).
	y := models.YOLOv5s(models.KITTIClasses)
	tx2 := denseCost(t, y, JetsonTX2())
	if math.Abs(tx2.Time-0.7415) > 0.05*0.7415 {
		t.Errorf("TX2 YOLOv5s dense %.4fs, paper 0.7415s", tx2.Time)
	}
	gpu := denseCost(t, y, RTX2080Ti())
	if math.Abs(gpu.Time-0.01283) > 0.08*0.01283 {
		t.Errorf("2080Ti YOLOv5s dense %.5fs, paper-derived 0.01283s", gpu.Time)
	}
}

func TestSpeedupsMatchTable3Shape(t *testing.T) {
	// R-TOSS speedups on YOLOv5s/RTX 2080Ti: paper 1.86× (3EP), 1.97×
	// (2EP). Shape requirements: both >1.4, 2EP > 3EP, within ~20%.
	y := models.YOLOv5s(models.KITTIClasses)
	base := denseCost(t, y, RTX2080Ti())
	speedups := map[int]float64{}
	for _, e := range []int{2, 3} {
		m := models.YOLOv5s(models.KITTIClasses)
		res, err := core.NewVariant(e).Prune(m)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Estimate(m, RTX2080Ti(), res.Structure)
		if err != nil {
			t.Fatal(err)
		}
		speedups[e] = c.Speedup(base)
	}
	if speedups[2] <= speedups[3] {
		t.Errorf("2EP should beat 3EP: %v", speedups)
	}
	if math.Abs(speedups[3]-1.86) > 0.2*1.86 {
		t.Errorf("3EP speedup %.2f, paper 1.86", speedups[3])
	}
	if math.Abs(speedups[2]-1.97) > 0.2*1.97 {
		t.Errorf("2EP speedup %.2f, paper 1.97", speedups[2])
	}
}

func TestTX2SpeedupsMatchFig6(t *testing.T) {
	// Paper Fig 6 TX2 YOLOv5s: 2.12× (3EP), 2.15× (2EP).
	y := models.YOLOv5s(models.KITTIClasses)
	base := denseCost(t, y, JetsonTX2())
	for _, c := range []struct {
		entries int
		want    float64
	}{{3, 2.12}, {2, 2.15}} {
		m := models.YOLOv5s(models.KITTIClasses)
		res, _ := core.NewVariant(c.entries).Prune(m)
		rep, err := Estimate(m, JetsonTX2(), res.Structure)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Speedup(base); math.Abs(got-c.want) > 0.15*c.want {
			t.Errorf("TX2 %dEP speedup %.2f, paper %.2f", c.entries, got, c.want)
		}
	}
}

func TestEnergyReductionMatchesFig7Shape(t *testing.T) {
	// Paper: TX2 YOLOv5s energy reductions 57.01% (3EP) and 54.90% (2EP);
	// 2080Ti 48.23% (3EP) / 45.5% (2EP). We require the 40-65% band and
	// that energy strictly decreases vs baseline.
	for _, p := range Platforms() {
		y := models.YOLOv5s(models.KITTIClasses)
		base := denseCost(t, y, p)
		for _, e := range []int{2, 3} {
			m := models.YOLOv5s(models.KITTIClasses)
			res, _ := core.NewVariant(e).Prune(m)
			c, err := Estimate(m, p, res.Structure)
			if err != nil {
				t.Fatal(err)
			}
			red := c.EnergyReduction(base)
			if red < 0.40 || red > 0.65 {
				t.Errorf("%s %dEP energy reduction %.1f%%, want 40-65%%", p.Name, e, 100*red)
			}
		}
	}
}

func TestRetinaNetSpeedupLowerThanYOLOv5s(t *testing.T) {
	// RetinaNet's NoPrune shared heads cap its achievable speedup below
	// YOLOv5s's on the TX2 (paper: 1.56-1.87× vs 2.12-2.15×).
	tx2 := JetsonTX2()
	ySpeed := map[string]float64{}
	for _, mk := range []struct {
		name  string
		build func() *nn.Model
	}{
		{"yolo", func() *nn.Model { return models.YOLOv5s(models.KITTIClasses) }},
		{"retina", func() *nn.Model { return models.RetinaNet(models.KITTIClasses) }},
	} {
		base := denseCost(t, mk.build(), tx2)
		m := mk.build()
		res, _ := core.NewVariant(2).Prune(m)
		c, err := Estimate(m, tx2, res.Structure)
		if err != nil {
			t.Fatal(err)
		}
		ySpeed[mk.name] = c.Speedup(base)
	}
	if ySpeed["retina"] >= ySpeed["yolo"] {
		t.Errorf("RetinaNet speedup %.2f should trail YOLOv5s %.2f", ySpeed["retina"], ySpeed["yolo"])
	}
}

func TestRTOSSBeatsAllBaselinesOnLatency(t *testing.T) {
	// Fig 6's headline: R-TOSS outperforms PD (the best prior) and all
	// other frameworks on both models and platforms.
	for _, p := range Platforms() {
		m := models.YOLOv5s(models.KITTIClasses)
		res, _ := core.NewVariant(3).Prune(m)
		rtoss, err := Estimate(m, p, res.Structure)
		if err != nil {
			t.Fatal(err)
		}
		// PatDNN as representative best-prior baseline (its density and
		// structure dominate the others in the cost model).
		import1 := models.YOLOv5s(models.KITTIClasses)
		pdRes := pruneWithPD(t, import1)
		pd, err := Estimate(import1, p, pdRes)
		if err != nil {
			t.Fatal(err)
		}
		if rtoss.Time >= pd.Time {
			t.Errorf("%s: R-TOSS-3EP %.2fms should beat PD %.2fms", p.Name, rtoss.Time*1e3, pd.Time*1e3)
		}
	}
}

// pruneWithPD applies a PatDNN-like prune without importing baselines
// (avoids an import cycle in tests): 4EP pattern masks exist already in
// the model after core pruning, so emulate PD's coarser result by
// reusing the 4EP variant plus kernel removal.
func pruneWithPD(t *testing.T, m *nn.Model) prune.Structure {
	t.Helper()
	res, err := core.NewVariant(4).Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	// PD leaves 1x1 dense; restore density on 1x1 layers by refusing to
	// count them — emulated simply by reporting the structure.
	return res.Structure
}

func TestTable2OrderingMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping two-stage zoo estimation in -short mode")
	}
	// Table 2 row order (by execution time on TX2): YOLOv5s < YOLOX <
	// YOLOv7 < RetinaNet < YOLOR < DETR must be monotone except the
	// paper's own YOLOv7/RetinaNet inversion, which we preserve the
	// direction of (YOLOv7 faster than RetinaNet).
	tx2 := JetsonTX2()
	var times []float64
	for _, m := range models.Table2Models() {
		c := denseCost(t, m, tx2)
		times = append(times, c.Time)
	}
	// Expected order indexes: YOLOv5s(0) < YOLOXs(1) < YOLOv7(3) <
	// RetinaNet(2) < YOLOR(4) < DETR(5).
	order := []int{0, 1, 3, 2, 4, 5}
	for i := 1; i < len(order); i++ {
		if times[order[i-1]] >= times[order[i]] {
			t.Errorf("Table 2 ordering broken at %d: %v", i, times)
		}
	}
}

func TestEstimateTwoStage(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping two-stage zoo estimation in -short mode")
	}
	zoo := models.Zoo()
	rcnn := zoo[0]
	p := RTX2080Ti()
	single, err := Estimate(rcnn.Model, p, prune.Dense)
	if err != nil {
		t.Fatal(err)
	}
	full, err := EstimateTwoStage(rcnn.Model, rcnn.PerRegion, rcnn.Regions, p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Time < 100*single.Time {
		t.Errorf("R-CNN with 2000 regions should be >100x single pass: %v vs %v", full.Time, single.Time)
	}
}

func TestTable1FPSOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping two-stage zoo estimation in -short mode")
	}
	// Table 1's shape: fps(R-CNN) << fps(Fast) << fps(Faster) <<
	// fps(single-stage detectors).
	p := RTX2080Ti()
	zoo := models.Zoo()
	var fps []float64
	for _, d := range zoo {
		c, err := EstimateTwoStage(d.Model, d.PerRegion, d.Regions, p)
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, c.FPS())
	}
	if !(fps[0] < fps[1] && fps[1] < fps[2] && fps[2] < fps[3] && fps[2] < fps[5]) {
		t.Errorf("Table 1 fps ordering broken: %v", fps)
	}
}

func TestEnergyPositiveAndMonotone(t *testing.T) {
	// More executed MACs must never cost less energy (same platform).
	p := JetsonTX2()
	small := models.YOLOv5s(models.KITTIClasses)
	big := models.RetinaNet(models.KITTIClasses)
	cs, cb := denseCost(t, small, p), denseCost(t, big, p)
	if cs.Energy <= 0 || cb.Energy <= cs.Energy {
		t.Errorf("energy not monotone: %v vs %v", cs.Energy, cb.Energy)
	}
}

func TestLinearDerateApplies(t *testing.T) {
	b := nn.NewBuilder("lin", 4, 1, 1, 1)
	x := b.Input()
	x = b.Linear("fc", x, 4, 1024, true)
	b.Detect("d", x)
	m := b.MustBuild()
	m.InitWeights(3)
	p := RTX2080Ti()
	withDerate, _ := Estimate(m, p, prune.Dense)
	p.LinearDerate = 1
	without, _ := Estimate(m, p, prune.Dense)
	if withDerate.Layers[1].ComputeTime <= without.Layers[1].ComputeTime {
		t.Error("LinearDerate should slow Linear layers")
	}
}

func BenchmarkEstimateYOLOv5s(b *testing.B) {
	m := models.YOLOv5s(models.KITTIClasses)
	p := RTX2080Ti()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(m, p, prune.Dense); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateRetinaNet(b *testing.B) {
	m := models.RetinaNet(models.KITTIClasses)
	p := JetsonTX2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(m, p, prune.Dense); err != nil {
			b.Fatal(err)
		}
	}
}
