// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the repository so that synthetic weights,
// scenes, and workloads are reproducible across runs and platforms.
//
// The generator is SplitMix64 (Steele, Lea, Flood; "Fast splittable
// pseudorandom number generators", OOPSLA 2014). It is not
// cryptographically secure; it is chosen for speed, statistical quality
// adequate for synthetic-data generation, and a trivially portable
// implementation with no global state.
package rng

import "math"

// RNG is a deterministic SplitMix64 generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
	// Box-Muller produces normals in pairs; the unused one is kept here.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform. The transform yields
// standard normals in pairs; the second is cached for the next call.
func (r *RNG) Norm(mean, std float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + std*r.spare
	}
	// Avoid log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u1))
	sin, cos := math.Sincos(2 * math.Pi * u2)
	r.spare = rad * sin
	r.hasSpare = true
	return mean + std*rad*cos
}

// Split returns a new generator whose stream is statistically independent
// of the receiver's. It is used to give each layer / scene its own stream
// so that adding layers does not perturb the weights of others.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}
