package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values of 100", same)
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat32Bounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}

func TestRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Range(-1, 1)
		if v < -1 || v >= 1 {
			t.Fatalf("Range out of [-1,1): %v", v)
		}
	}
}

func TestRangeMean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Range(-1, 1)
	}
	mean := sum / n
	if math.Abs(mean) > 0.02 {
		t.Fatalf("uniform [-1,1) mean too far from 0: %v", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 5, 32, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("Norm mean %v, want ~2", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Norm std %v, want ~3", math.Sqrt(variance))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(21)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collide %d/100 times", same)
	}
}

func TestQuickFloat64AlwaysInUnit(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := New(seed)
		for i := 0; i < int(n); i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterministicStreams(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm(0, 1)
	}
}
