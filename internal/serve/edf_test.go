package serve

import (
	"testing"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/rng"
)

// edf_test.go drives the deadline-aware admission queue under a
// virtual clock: every test below advances simulated time explicitly
// and never sleeps, so the EDF invariants are tier-1 properties, not
// timing-dependent flakes. The simulator at the bottom replays whole
// multi-stream frame workloads (paced arrivals, batched service with
// virtual service times) through the same push/pop protocol the
// workers use, and checks the scheduling properties on every batch.

// simClock is the virtual time source: an absolute instant advanced by
// hand.
type simClock struct{ now time.Time }

func newSimClock() *simClock {
	return &simClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *simClock) Now() time.Time                  { return c.now }
func (c *simClock) Advance(d time.Duration)         { c.now = c.now.Add(d) }
func (c *simClock) After(d time.Duration) time.Time { return c.now.Add(d) }

// edfReq builds a queue request without a server: only the scheduler
// fields matter here.
func edfReq(seq uint64, deadline time.Time, stream, frameSeq uint64) *request {
	return &request{seq: seq, deadline: deadline, stream: stream, frameSeq: frameSeq}
}

// drain pops everything, returning the requests in admission order and
// the stale set.
func drain(q *edfQueue) (order []*request, stale map[*request]bool) {
	stale = map[*request]bool{}
	for q.len() > 0 {
		r, s := q.pop()
		order = append(order, r)
		stale[r] = s
	}
	return order, stale
}

// TestEDFOrdersBySlack: requests pop in deadline order regardless of
// arrival order, with deadline-less requests last.
func TestEDFOrdersBySlack(t *testing.T) {
	clk := newSimClock()
	q := newEDFQueue()
	late := edfReq(1, clk.After(300*time.Millisecond), 0, 0)
	none := edfReq(2, time.Time{}, 0, 0)
	urgent := edfReq(3, clk.After(10*time.Millisecond), 0, 0)
	mid := edfReq(4, clk.After(100*time.Millisecond), 0, 0)
	for _, r := range []*request{late, none, urgent, mid} {
		q.push(r)
	}
	order, _ := drain(q)
	want := []*request{urgent, mid, late, none}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop %d: got seq %d, want seq %d", i, order[i].seq, want[i].seq)
		}
	}
}

// TestEDFRecoversFIFO: when every deadline is identical (including the
// all-zero case), admission order is exactly arrival order.
func TestEDFRecoversFIFO(t *testing.T) {
	clk := newSimClock()
	for _, deadline := range []time.Time{{}, clk.After(50 * time.Millisecond)} {
		q := newEDFQueue()
		var pushed []*request
		r := rng.New(7)
		for i := 0; i < 100; i++ {
			req := edfReq(uint64(i+1), deadline, 0, 0)
			pushed = append(pushed, req)
			q.push(req)
			// Interleave pops to exercise partially-drained heaps too.
			if r.Float64() < 0.3 && q.len() > 1 {
				continue
			}
		}
		order, _ := drain(q)
		if len(order) != len(pushed) {
			t.Fatalf("popped %d of %d pushed", len(order), len(pushed))
		}
		for i := range order {
			if order[i] != pushed[i] {
				t.Fatalf("deadline %v: pop %d out of FIFO order (got seq %d, want %d)",
					deadline, i, order[i].seq, pushed[i].seq)
			}
		}
	}
}

// TestEDFSupersession: pushing a fresher frame of the same stream
// marks every older queued frame stale, streams do not interfere, and
// the freshest frame is never stale.
func TestEDFSupersession(t *testing.T) {
	clk := newSimClock()
	q := newEDFQueue()
	d := clk.After(100 * time.Millisecond)
	s1f1 := edfReq(1, d, 1, 1)
	s1f2 := edfReq(2, d, 1, 2)
	s2f1 := edfReq(3, d, 2, 1)
	s1f3 := edfReq(4, d, 1, 3)
	for _, r := range []*request{s1f1, s1f2, s2f1, s1f3} {
		q.push(r)
	}
	_, stale := drain(q)
	for req, want := range map[*request]bool{s1f1: true, s1f2: true, s2f1: false, s1f3: false} {
		if stale[req] != want {
			t.Errorf("stream %d frame %d: stale=%v, want %v", req.stream, req.frameSeq, stale[req], want)
		}
	}
	// The freshness table must drain with the queue.
	if len(q.pending) != 0 {
		t.Errorf("pending table has %d entries after drain, want 0", len(q.pending))
	}
}

// TestEDFExpiry: expired() is a pure function of (deadline, now) — a
// request sheds exactly when virtual time passes its deadline.
func TestEDFExpiry(t *testing.T) {
	clk := newSimClock()
	deadline := clk.After(20 * time.Millisecond)
	req := edfReq(1, deadline, 0, 0)
	if expired(req, clk.Now()) {
		t.Fatal("fresh request reported expired")
	}
	clk.Advance(20 * time.Millisecond)
	if expired(req, clk.Now()) {
		t.Fatal("request expired exactly at its deadline; deadline instant itself must still be admissible")
	}
	clk.Advance(time.Nanosecond)
	if !expired(req, clk.Now()) {
		t.Fatal("request not expired after its deadline passed")
	}
	if expired(edfReq(2, time.Time{}, 0, 0), clk.Now().Add(time.Hour)) {
		t.Fatal("deadline-less request must never expire")
	}
}

// simFrame is one simulated stream frame's lifecycle record.
type simFrame struct {
	req        *request
	pushedAt   time.Time
	admittedAt time.Time // instant the scheduler admitted it (zero = shed)
	servedAt   time.Time // zero = dropped
	stale      bool
	expired    bool
}

// simResult aggregates one simulator run.
type simResult struct {
	frames  []*simFrame
	batches [][]*simFrame // admitted batches in execution order
}

// runEDFSim replays a multi-stream frame workload through the same
// push/pop protocol Server.admit uses, entirely under the virtual
// clock: `streams` streams each emit `frames` frames at `interval`,
// with a per-frame deadline of `budget`; a single executor admits up
// to `maxBatch` frames per cycle and takes `service` per admitted
// frame. No wall-clock time is read and nothing sleeps.
func runEDFSim(t *testing.T, streams, frames, maxBatch int, interval, budget, service time.Duration) *simResult {
	t.Helper()
	clk := newSimClock()
	q := newEDFQueue()
	res := &simResult{}
	var seq uint64
	queued := map[*request]*simFrame{}

	next := make([]time.Time, streams) // next emission instant per stream
	emitted := make([]int, streams)
	for i := range next {
		next[i] = clk.Now()
	}
	pending := 0
	for {
		// Emit every frame due at or before the current instant.
		for s := 0; s < streams; s++ {
			for emitted[s] < frames && !next[s].After(clk.Now()) {
				seq++
				req := edfReq(seq, next[s].Add(budget), uint64(s+1), uint64(emitted[s]+1))
				f := &simFrame{req: req, pushedAt: next[s]}
				res.frames = append(res.frames, f)
				queued[req] = f
				q.push(req)
				pending++
				emitted[s]++
				next[s] = next[s].Add(interval)
			}
		}
		if pending == 0 {
			done := true
			for s := 0; s < streams; s++ {
				if emitted[s] < frames {
					done = false
					// Jump the clock to the next emission instant.
					if next[s].After(clk.Now()) {
						clk.now = next[s]
					}
				}
			}
			if done {
				return res
			}
			continue
		}
		// Admit one batch: pop up to maxBatch entries, shedding stale
		// and expired ones exactly like Server.admit.
		var batch []*simFrame
		for len(batch) < maxBatch && q.len() > 0 {
			req, stale := q.pop()
			f := queued[req]
			delete(queued, req)
			pending--
			switch {
			case stale:
				f.stale = true
			case expired(req, clk.Now()):
				f.expired = true
			default:
				f.admittedAt = clk.Now()
				batch = append(batch, f)
			}
		}
		if len(batch) > 0 {
			clk.Advance(time.Duration(len(batch)) * service)
			for _, f := range batch {
				f.servedAt = clk.Now()
			}
			res.batches = append(res.batches, batch)
		}
	}
}

// checkEDFInvariants asserts the scheduler properties on a simulator
// run: (1) the admitted set is slack-feasible — no admitted frame's
// deadline had passed at admission; (2) no frame is served after a
// fresher frame of the same stream; (3) every frame is accounted for
// exactly once (served, stale, or expired).
func checkEDFInvariants(t *testing.T, res *simResult) {
	t.Helper()
	lastServed := map[uint64]uint64{}
	for _, batch := range res.batches {
		for _, f := range batch {
			// (1) Slack feasibility: servedAt - service time <= deadline
			// is implied by the admission check; assert the direct form —
			// the frame was not expired when admitted.
			if f.expired || f.stale {
				t.Fatalf("shed frame (stream %d seq %d) found in an admitted batch", f.req.stream, f.req.frameSeq)
			}
			if prev, ok := lastServed[f.req.stream]; ok && f.req.frameSeq < prev {
				t.Fatalf("stream %d: frame %d served after fresher frame %d", f.req.stream, f.req.frameSeq, prev)
			}
			lastServed[f.req.stream] = f.req.frameSeq
		}
	}
	for _, f := range res.frames {
		states := 0
		if !f.servedAt.IsZero() {
			states++
		}
		if f.stale {
			states++
		}
		if f.expired {
			states++
		}
		if states != 1 {
			t.Fatalf("stream %d frame %d in %d states (served=%v stale=%v expired=%v), want exactly 1",
				f.req.stream, f.req.frameSeq, states, !f.servedAt.IsZero(), f.stale, f.expired)
		}
	}
}

// TestEDFSimUnderCapacity: with service fast enough for the offered
// load, nothing is dropped and every frame meets its deadline.
func TestEDFSimUnderCapacity(t *testing.T) {
	res := runEDFSim(t, 4, 60, 8,
		33*time.Millisecond, // 30 fps
		33*time.Millisecond, // one-interval budget
		2*time.Millisecond)  // 4 streams * 2ms << 33ms
	checkEDFInvariants(t, res)
	for _, f := range res.frames {
		if f.servedAt.IsZero() {
			t.Fatalf("under capacity, stream %d frame %d was dropped (stale=%v expired=%v)",
				f.req.stream, f.req.frameSeq, f.stale, f.expired)
		}
		if f.servedAt.After(f.req.deadline) {
			t.Fatalf("under capacity, stream %d frame %d finished %v after its deadline",
				f.req.stream, f.req.frameSeq, f.servedAt.Sub(f.req.deadline))
		}
	}
}

// TestEDFSimOverload: with service too slow for the offered load, the
// streams must degrade by dropping frames — never by serving a stale
// backlog. The invariants still hold, some frames are shed, and the
// frames that ARE served are always served within a bounded age of
// their capture (they were admitted before expiry, so age at admission
// is at most the budget).
func TestEDFSimOverload(t *testing.T) {
	budget := 33 * time.Millisecond
	service := 30 * time.Millisecond // 4 streams * 30ms >> 33ms: 4x overload
	res := runEDFSim(t, 4, 60, 8, 33*time.Millisecond, budget, service)
	checkEDFInvariants(t, res)
	var served, dropped int
	for _, f := range res.frames {
		if f.servedAt.IsZero() {
			dropped++
			continue
		}
		served++
		// The frame was not expired at admission, so its queueing age
		// when the scheduler committed to it was <= budget.
		if age := f.admittedAt.Sub(f.pushedAt); age > budget {
			t.Fatalf("stream %d frame %d admitted %v after capture, budget %v — overload served a stale frame",
				f.req.stream, f.req.frameSeq, age, budget)
		}
	}
	if dropped == 0 {
		t.Fatal("4x overload dropped nothing; the shed policy is not engaging")
	}
	if served == 0 {
		t.Fatal("4x overload served nothing; the queue collapsed instead of degrading")
	}
	t.Logf("overload: %d served, %d dropped of %d", served, dropped, len(res.frames))
}

// TestEDFSimRandomized: randomized workloads (jittered loads, batch
// sizes, budgets) all preserve the invariants. Seeded, so failures
// reproduce.
func TestEDFSimRandomized(t *testing.T) {
	r := rng.New(0xEDF)
	for i := 0; i < 25; i++ {
		streams := 1 + r.Intn(6)
		frames := 10 + r.Intn(40)
		maxBatch := 1 + r.Intn(8)
		interval := time.Duration(5+r.Intn(40)) * time.Millisecond
		budget := time.Duration(5+r.Intn(80)) * time.Millisecond
		service := time.Duration(1+r.Intn(40)) * time.Millisecond
		res := runEDFSim(t, streams, frames, maxBatch, interval, budget, service)
		checkEDFInvariants(t, res)
	}
}

// TestServerShedsExpiredUnderVirtualClock pins the Server integration
// without a single sleep: a virtual clock pinned *past* the deadline
// makes the worker shed the frame at admission with ErrDeadline, and
// the shed shows up in the stats counters.
func TestServerShedsExpiredUnderVirtualClock(t *testing.T) {
	clk := newSimClock()
	p := tinyProgram(t)
	s := NewServer(p, Config{clock: clk.Now})
	defer s.Close()
	pipe := detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05}

	// Deadline in the virtual past: admission must shed, not serve.
	_, err := s.DetectFrame(samplePPM(t), pipe, 32, 32, FrameOptions{
		Deadline: clk.Now().Add(-time.Millisecond), Block: true,
	})
	if err != ErrDeadline {
		t.Fatalf("expired frame returned %v, want ErrDeadline", err)
	}
	// Deadline in the virtual future: serves normally and counts a hit
	// (the clock never advances, so the deadline cannot pass).
	res, err := s.DetectFrame(samplePPM(t), pipe, 32, 32, FrameOptions{
		Deadline: clk.Now().Add(time.Hour), Block: true,
	})
	if err != nil || res == nil {
		t.Fatalf("in-budget frame: res=%v err=%v", res, err)
	}
	st := s.Stats()
	if st.DeadlineShed != 1 || st.DeadlineHits != 1 || st.DeadlineMisses != 0 {
		t.Fatalf("stats shed/hits/misses = %d/%d/%d, want 1/1/0", st.DeadlineShed, st.DeadlineHits, st.DeadlineMisses)
	}
}
