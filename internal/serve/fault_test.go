package serve

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/faultinject"
)

// fault_test.go covers the hardened failure paths: worker panic
// isolation, the stuck-batch watchdog, and the registry's injected
// build failures, eviction storms and graceful close.

// TestWorkerPanicIsolation is the robustness acceptance test: inject a
// panic into a batch-executor worker under concurrent HTTP load and
// assert the process survives, exactly the poisoned request fails with
// 500, every co-batched request still gets an explicit answer (success
// or 503 — never a hang), and /stats reports the panic.
func TestWorkerPanicIsolation(t *testing.T) {
	p := tinyProgram(t)
	inj := faultinject.New(1, faultinject.Plan{
		faultinject.PointExecPanic: {P: 1, Max: 1},
	})
	s := NewServer(p, Config{MaxBatch: 4, Workers: 2, QueueCap: 64, FaultInjector: inj})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{
		InputC: 3, InputH: 32, InputW: 32,
		Detect: &detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05},
	}))
	defer ts.Close()
	ppm := samplePPM(t)

	const n = 32
	var wg sync.WaitGroup
	var ok, failed500, shed503, other atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/detect", "application/octet-stream", bytes.NewReader(ppm))
			if err != nil {
				t.Errorf("transport error (a panic must never tear the connection): %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusInternalServerError:
				failed500.Add(1)
			case http.StatusServiceUnavailable:
				shed503.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	// Every request must come back: a missing answer would deadlock
	// wg.Wait, caught by the test timeout.
	wg.Wait()

	if other.Load() != 0 {
		t.Errorf("unexpected status class: %d requests outside {200, 500, 503}", other.Load())
	}
	if failed500.Load() != 1 {
		t.Errorf("injected exactly 1 panic, got %d 500s (only the poisoned request may fail with 500)", failed500.Load())
	}
	if got := ok.Load() + failed500.Load() + shed503.Load() + other.Load(); got != n {
		t.Fatalf("answered %d of %d requests", got, n)
	}
	st := s.Stats()
	if st.Panics != 1 {
		t.Errorf("stats.Panics = %d, want 1", st.Panics)
	}

	// The process survived: the respawned worker serves a clean request.
	resp, err := http.Post(ts.URL+"/detect", "application/octet-stream", bytes.NewReader(ppm))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request answered %d, want 200 (worker pool must respawn)", resp.StatusCode)
	}
}

// TestStuckBatchWatchdog pins the watchdog contract: a batch stalled
// past its allowance gets answered with 503 (ErrStuckBatch) instead of
// hanging its clients, the stat increments, and the worker serves
// again once the stall clears.
func TestStuckBatchWatchdog(t *testing.T) {
	p := tinyProgram(t)
	inj := faultinject.New(1, faultinject.Plan{
		faultinject.PointExecStall: {P: 1, Max: 1, Delay: 400 * time.Millisecond},
	})
	s := NewServer(p, Config{MaxBatch: 2, Workers: 1, QueueCap: 16, Watchdog: 40 * time.Millisecond, FaultInjector: inj})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{
		InputC: 3, InputH: 32, InputW: 32,
		Detect: &detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05},
	}))
	defer ts.Close()
	ppm := samplePPM(t)

	start := time.Now()
	resp, err := http.Post(ts.URL+"/detect", "application/octet-stream", bytes.NewReader(ppm))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled batch answered %d, want 503 from the watchdog", resp.StatusCode)
	}
	if waited := time.Since(start); waited >= 400*time.Millisecond {
		t.Errorf("client waited out the whole %v stall (%v); the watchdog should have answered early", 400*time.Millisecond, waited)
	}
	if st := s.Stats(); st.StuckBatches != 1 {
		t.Errorf("stats.StuckBatches = %d, want 1", st.StuckBatches)
	}

	// Once the stall clears the same worker keeps serving.
	time.Sleep(450 * time.Millisecond)
	resp, err = http.Post(ts.URL+"/detect", "application/octet-stream", bytes.NewReader(ppm))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-stall request answered %d, want 200", resp.StatusCode)
	}
}

// TestRegistryInjectedBuildFailureNotCached: an injected build failure
// must degrade one request, not poison the key — the next request for
// the same key re-runs the build. (A real build error stays cached, as
// the second call's distinct error proves.)
func TestRegistryInjectedBuildFailureNotCached(t *testing.T) {
	r := NewRegistry()
	inj := faultinject.New(1, faultinject.Plan{
		faultinject.PointRegistryBuild: {P: 1, Max: 1},
	})
	r.SetFaultInjector(inj)
	k := Key{Arch: "NoSuchArch", Variant: "dense", Mode: engine.ModeSparse}

	_, err1 := r.Program(k)
	if !errors.Is(err1, faultinject.ErrInjected) {
		t.Fatalf("first build error = %v, want the injected failure", err1)
	}
	// The injector is exhausted (Max: 1), so a second call re-running
	// the build hits the real error for the unknown architecture. If
	// the injected error had been cached we'd see it again instead.
	_, err2 := r.Program(k)
	if err2 == nil {
		t.Fatal("second build unexpectedly succeeded for an unknown architecture")
	}
	if errors.Is(err2, faultinject.ErrInjected) {
		t.Fatalf("second build error = %v; the injected failure was cached", err2)
	}
	// The real error is cached as documented.
	_, err3 := r.Program(k)
	if err3 == nil || err3.Error() != err2.Error() {
		t.Fatalf("real build error not cached: third call returned %v, second %v", err3, err2)
	}
}

// TestRegistryCloseEvictsThroughOnEvict: Close drains every cached
// Program through the OnEvict hook (the graceful-shutdown path), fails
// later calls with ErrRegistryClosed, and is idempotent.
func TestRegistryCloseEvictsThroughOnEvict(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	evicted := map[Key]bool{}
	r.OnEvict(func(k Key, _ *engine.Program) {
		mu.Lock()
		evicted[k] = true
		mu.Unlock()
	})
	p := tinyProgram(t)
	keys := []Key{
		{Arch: "A", Variant: "dense", Mode: engine.ModeSparse},
		{Arch: "B", Variant: "dense", Mode: engine.ModeSparse},
	}
	for _, k := range keys {
		if _, err := r.Install(k, p); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	r.Close() // idempotent
	mu.Lock()
	for _, k := range keys {
		if !evicted[k] {
			t.Errorf("key %v was not evicted through OnEvict on Close", k)
		}
	}
	mu.Unlock()
	if _, err := r.Program(keys[0]); !errors.Is(err, ErrRegistryClosed) {
		t.Errorf("Program after Close = %v, want ErrRegistryClosed", err)
	}
	if _, err := r.Install(keys[0], p); !errors.Is(err, ErrRegistryClosed) {
		t.Errorf("Install after Close = %v, want ErrRegistryClosed", err)
	}
}

// TestRegistryEvictionRacesActiveServe hammers one key with concurrent
// Install/Program calls while eviction pressure (a tiny budget plus an
// injected eviction storm) churns the cache. The key being served must
// always come back usable — the spare rule protects the active
// Program — and the counters must stay consistent. Run under -race.
func TestRegistryEvictionRacesActiveServe(t *testing.T) {
	r := NewRegistry()
	inj := faultinject.New(3, faultinject.Plan{
		faultinject.PointRegistryEvict: {P: 0.5},
	})
	r.SetFaultInjector(inj)
	p := tinyProgram(t)
	// Budget fits roughly one tiny program: every install of a second
	// key forces the other out.
	r.SetBudget(p.MemoryBytes() + 1)
	var closes atomic.Int64
	r.OnEvict(func(Key, *engine.Program) { closes.Add(1) })

	hot := Key{Arch: "HOT", Variant: "dense", Mode: engine.ModeSparse}
	const workers = 4
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			churn := Key{Arch: fmt.Sprintf("CHURN%d", w), Variant: "dense", Mode: engine.ModeSparse}
			for i := 0; i < rounds; i++ {
				got, err := r.Install(hot, p)
				if err != nil {
					t.Errorf("worker %d: Install(hot) failed: %v", w, err)
					return
				}
				if got == nil {
					t.Errorf("worker %d: Install(hot) returned nil program", w)
					return
				}
				if _, err := r.Install(churn, p); err != nil {
					t.Errorf("worker %d: Install(churn) failed: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// The hot key must still be servable (or rebuild cleanly) after the
	// churn — it was the most recently used in every worker's loop.
	if _, err := r.Install(hot, p); err != nil {
		t.Fatalf("hot key unusable after eviction churn: %v", err)
	}
	_, evictions := r.Footprint()
	if evictions == 0 {
		t.Error("no evictions happened; the race this test exists for was not exercised")
	}
}
