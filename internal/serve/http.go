package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/tensor"
)

// HTTP front end for a Server. Two wire formats:
//
//	POST /infer    body = C*H*W float32s (LE, raw NCHW), or empty for a
//	               zero image → JSON {shape, l2, latency_ms}
//	               (+ data with ?data=1)
//	POST /detect   body = an encoded image (PPM/PGM P2/P3/P5/P6, PNG or
//	               baseline JPEG)
//	               → JSON {detections, count, image, timing_ms}
//	               (?score= and ?iou= override the thresholds)
//	GET  /stats    → JSON Stats snapshot
//	GET  /healthz  → 200 "ok"
//
// /infer speaks raw tensors so a load generator needs no codec beyond
// a byte order; /detect speaks images so a camera, a curl command or a
// browser can drive the full detection pipeline.

// maxImageBody bounds /detect request bodies (32 MiB decodes any sane
// benchmark image).
const maxImageBody = 32 << 20

// bufPool recycles request-body and response-encoding byte buffers
// across requests. Together with the pooled ingest scratch behind
// Server.Detect this keeps a /detect request's steady-state heap
// traffic near zero.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// Body-read failure classes. errBodyTooLarge maps to 413 (the client
// must shrink the payload, retrying elsewhere won't help) and
// errBodyMismatch to 400 (the declared Content-Length lied about the
// bytes actually sent — truncating or over-reading silently would feed
// the decoder a frankenstein image).
var (
	errBodyTooLarge = errors.New("serve: request body exceeds the size limit")
	errBodyMismatch = errors.New("serve: request body does not match its Content-Length")
)

// bodyErrCode maps a readBody failure to its HTTP status.
func bodyErrCode(err error) int {
	if errors.Is(err, errBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// readBody reads a request body into a pooled buffer. When the client
// sent a Content-Length (the common case) the buffer is sized to it up
// front and filled with one ReadFull — no io.ReadAll growth copies;
// chunked bodies fall back to append-style growth into the same pooled
// buffer. The declared length is verified, never trusted: a
// Content-Length above the limit is rejected with errBodyTooLarge
// before any allocation (so a lying header cannot over-allocate), a
// body shorter or longer than its declaration is rejected with
// errBodyMismatch instead of being silently truncated or padded, and a
// chunked body that outgrows the limit is rejected with
// errBodyTooLarge. Negative lengths other than -1 never reach here (Go
// normalises unknown lengths to -1), and the chunked path bounds reads
// at limit+1 bytes regardless. The caller must hand the buffer back to
// bufPool once it is done with the bytes.
func readBody(r *http.Request, limit int64) (*[]byte, error) {
	if r.ContentLength > limit {
		return nil, fmt.Errorf("%w: declared %d bytes, limit %d", errBodyTooLarge, r.ContentLength, limit)
	}
	bp := bufPool.Get().(*[]byte)
	if n := r.ContentLength; n >= 0 {
		if cap(*bp) < int(n) {
			*bp = make([]byte, n)
		}
		*bp = (*bp)[:n]
		if _, err := io.ReadFull(r.Body, *bp); err != nil {
			bufPool.Put(bp)
			return nil, fmt.Errorf("%w: declared %d bytes, body ended early (%v)", errBodyMismatch, n, err)
		}
		// Probe one byte past the declaration: the Go server caps
		// Content-Length bodies for us, but handlers behind other
		// plumbing (tests, proxies) may see the raw stream — a body
		// running past its declaration must fail loudly, not feed a
		// silently truncated image to the decoder.
		var probe [1]byte
		if k, _ := r.Body.Read(probe[:]); k > 0 {
			bufPool.Put(bp)
			return nil, fmt.Errorf("%w: body continues past the declared %d bytes", errBodyMismatch, n)
		}
		return bp, nil
	}
	// Unknown length (chunked transfer): grow in place; the retained
	// capacity makes repeat traffic allocation-free here too.
	b := (*bp)[:0]
	lr := io.LimitedReader{R: r.Body, N: limit + 1}
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := lr.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			*bp = b
			bufPool.Put(bp)
			return nil, fmt.Errorf("serve: reading request body: %w", err)
		}
	}
	*bp = b
	if int64(len(b)) > limit {
		bufPool.Put(bp)
		return nil, fmt.Errorf("%w: chunked body ran past the %d-byte limit", errBodyTooLarge, limit)
	}
	return bp, nil
}

// HandlerConfig wires a Server to the HTTP front end.
type HandlerConfig struct {
	// InputC/InputH/InputW fix the raw-tensor shape /infer accepts.
	InputC, InputH, InputW int
	// Detect enables POST /detect with the given pipeline config
	// (head spec + thresholds). Nil disables the endpoint (404).
	Detect *detect.Config
	// Labels maps class IDs to display names in /detect responses
	// (optional; class indices are always included).
	Labels []string
	// ShedLoad makes /infer and /detect reject with 503 when the
	// server's queue is full instead of blocking the connection —
	// the right choice when a load balancer can retry elsewhere.
	ShedLoad bool
	// ExtraStats, when set, contributes extra top-level sections to
	// the GET /stats document — the hook internal/stream uses to merge
	// its per-stream drop/deadline counters into the same snapshot.
	// Keys must not collide with the server's own stats keys.
	ExtraStats func() map[string]any
	// SnapshotKey, when set, mounts GET /program serving the Program's
	// gob snapshot under this key — the warm-handoff donor side. Nil
	// disables the endpoint (404).
	SnapshotKey *Key
}

// DetectionJSON is one detection on the /detect wire (and in `rtoss
// detect` output): box corners in source-image pixels, class index,
// optional label, confidence.
type DetectionJSON struct {
	Box   [4]float64 `json:"box"`
	Class int        `json:"class"`
	Label string     `json:"label,omitempty"`
	Score float64    `json:"score"`
}

// ImageSizeJSON is the decoded source-image dimensions on the wire.
type ImageSizeJSON struct {
	Width  int `json:"width"`
	Height int `json:"height"`
}

// TimingJSON is the /detect per-stage latency breakdown, milliseconds.
type TimingJSON struct {
	Ingest     float64 `json:"ingest"`
	Preprocess float64 `json:"preprocess"`
	Forward    float64 `json:"forward"`
	Decode     float64 `json:"decode"`
	Total      float64 `json:"total"`
}

// DetectResponse is the POST /detect response body. The same struct is
// produced by the handler and consumed by Client, so the two cannot
// drift apart.
type DetectResponse struct {
	Detections []DetectionJSON `json:"detections"`
	Count      int             `json:"count"`
	Image      ImageSizeJSON   `json:"image"`
	TimingMS   TimingJSON      `json:"timing_ms"`
}

// Boxes converts the wire detections back into pipeline detections, in
// response order. The conversion is exact: box corners and scores are
// float64 on both sides and Go's JSON encoding round-trips float64
// bitwise, so evaluation over HTTP scores the very numbers the server
// computed.
func (r *DetectResponse) Boxes() []detect.Detection {
	out := make([]detect.Detection, len(r.Detections))
	for i, d := range r.Detections {
		out[i] = detect.Detection{
			Box:   detect.Box{X1: d.Box[0], Y1: d.Box[1], X2: d.Box[2], Y2: d.Box[3]},
			Class: d.Class,
			Score: d.Score,
		}
	}
	return out
}

// NewHandler serves one model Server over HTTP.
func NewHandler(s *Server, cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		doc := statsJSON(s.Stats())
		if cfg.ExtraStats != nil {
			for k, v := range cfg.ExtraStats() {
				doc[k] = v
			}
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("POST /infer", func(w http.ResponseWriter, r *http.Request) {
		in, err := readImage(r, cfg.InputC, cfg.InputH, cfg.InputW)
		if err != nil {
			http.Error(w, err.Error(), bodyErrCode(err))
			return
		}
		start := time.Now()
		infer := s.Infer
		if cfg.ShedLoad {
			infer = s.TryInfer
		}
		out, err := infer(in)
		if err != nil {
			http.Error(w, err.Error(), serveErrCode(err))
			return
		}
		resp := map[string]any{
			"shape":      out.Shape(),
			"l2":         out.L2(),
			"latency_ms": float64(time.Since(start)) / float64(time.Millisecond),
		}
		if r.URL.Query().Get("data") == "1" {
			resp["data"] = out.Data
		}
		writeJSON(w, resp)
	})
	if cfg.Detect != nil {
		mux.HandleFunc("POST /detect", func(w http.ResponseWriter, r *http.Request) {
			handleDetect(w, r, s, cfg)
		})
	}
	if cfg.SnapshotKey != nil {
		k := *cfg.SnapshotKey
		mux.HandleFunc("GET /program", func(w http.ResponseWriter, r *http.Request) {
			handleSnapshot(w, r, k, s.Program())
		})
	}
	return mux
}

// handleDetect is a thin shim over Server.Detect: parse the threshold
// overrides, read the body, enqueue. Preprocess (image decode +
// letterbox), the co-batched forward and the pooled decode+NMS all run
// on the server's batch executors, so detection throughput scales with
// the worker pool instead of with handler goroutines.
func handleDetect(w http.ResponseWriter, r *http.Request, s *Server, cfg HandlerConfig) {
	pipe := *cfg.Detect
	var err error
	if pipe.ScoreThreshold, err = queryFloat(r, "score", pipe.ScoreThreshold); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if pipe.IoUThreshold, err = queryFloat(r, "iou", pipe.IoUThreshold); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	budget, err := queryBudget(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := readBody(r, maxImageBody)
	if err != nil {
		http.Error(w, err.Error(), bodyErrCode(err))
		return
	}
	// A ?budget_ms= deadline rides the EDF scheduler via DetectFrame;
	// without one the request keeps the plain FIFO Detect path.
	var res *detect.Result
	if budget > 0 {
		res, err = s.DetectFrame(*body, pipe, cfg.InputH, cfg.InputW, FrameOptions{
			Deadline: time.Now().Add(budget),
			Block:    !cfg.ShedLoad,
		})
	} else if cfg.ShedLoad {
		res, err = s.TryDetect(*body, pipe, cfg.InputH, cfg.InputW)
	} else {
		res, err = s.Detect(*body, pipe, cfg.InputH, cfg.InputW)
	}
	// Detect never retains the image bytes past its return (preprocess
	// copies them into pooled tensors before the response is sent), so
	// the body buffer can serve the next request immediately.
	bufPool.Put(body)
	if err != nil {
		http.Error(w, err.Error(), serveErrCode(err))
		return
	}
	writeDetectResponse(w, res, cfg.Labels)
}

// detectEnc is the pooled per-request response-encoding scratch: the
// DetectionJSON slice and the JSON output buffer both retain capacity
// across requests.
type detectEnc struct {
	dets []DetectionJSON
	buf  []byte
}

var detectEncPool = sync.Pool{New: func() any { return new(detectEnc) }}

// writeDetectResponse encodes a detect result with the append-style
// encoder below instead of json.NewEncoder — the whole response path
// (DetectionJSON slice + output bytes) lives in pooled scratch, so a
// steady /detect stream allocates nothing here.
func writeDetectResponse(w http.ResponseWriter, res *detect.Result, labels []string) {
	e := detectEncPool.Get().(*detectEnc)
	e.dets = appendDetectionsJSON(e.dets[:0], res.Detections, labels)
	resp := DetectResponse{
		Detections: e.dets,
		Count:      len(res.Detections),
		Image:      ImageSizeJSON{Width: res.SrcW, Height: res.SrcH},
		TimingMS: TimingJSON{
			Ingest:     ms(res.Timing.Ingest),
			Preprocess: ms(res.Timing.Preprocess),
			Forward:    ms(res.Timing.Forward),
			Decode:     ms(res.Timing.Decode),
			Total:      ms(res.Timing.Total()),
		},
	}
	e.buf = appendDetectResponse(e.buf[:0], &resp)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(e.buf)))
	w.Write(e.buf)
	detectEncPool.Put(e)
}

// appendDetectResponse hand-encodes a DetectResponse. It must stay
// field-for-field in sync with the struct's json tags (the decode side
// is the stdlib, so a drift shows up as a failing round-trip test, not
// silent corruption). Floats use strconv's shortest 'g' form, which
// ParseFloat round-trips bitwise — the exactness contract Boxes()
// documents survives the hand encoder.
//
//rtoss:noalloc
func appendDetectResponse(b []byte, r *DetectResponse) []byte {
	b = append(b, `{"detections":[`...)
	for i := range r.Detections {
		if i > 0 {
			b = append(b, ',')
		}
		d := &r.Detections[i]
		b = append(b, `{"box":[`...)
		for j, v := range d.Box {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		}
		b = append(b, `],"class":`...)
		b = strconv.AppendInt(b, int64(d.Class), 10)
		if d.Label != "" { // mirrors the json:",omitempty" tag
			b = append(b, `,"label":`...)
			b = appendJSONString(b, d.Label)
		}
		b = append(b, `,"score":`...)
		b = strconv.AppendFloat(b, d.Score, 'g', -1, 64)
		b = append(b, '}')
	}
	b = append(b, `],"count":`...)
	b = strconv.AppendInt(b, int64(r.Count), 10)
	b = append(b, `,"image":{"width":`...)
	b = strconv.AppendInt(b, int64(r.Image.Width), 10)
	b = append(b, `,"height":`...)
	b = strconv.AppendInt(b, int64(r.Image.Height), 10)
	b = append(b, `},"timing_ms":{"ingest":`...)
	b = strconv.AppendFloat(b, r.TimingMS.Ingest, 'g', -1, 64)
	b = append(b, `,"preprocess":`...)
	b = strconv.AppendFloat(b, r.TimingMS.Preprocess, 'g', -1, 64)
	b = append(b, `,"forward":`...)
	b = strconv.AppendFloat(b, r.TimingMS.Forward, 'g', -1, 64)
	b = append(b, `,"decode":`...)
	b = strconv.AppendFloat(b, r.TimingMS.Decode, 'g', -1, 64)
	b = append(b, `,"total":`...)
	b = strconv.AppendFloat(b, r.TimingMS.Total, 'g', -1, 64)
	b = append(b, `}}`...)
	return append(b, '\n')
}

// appendJSONString writes a JSON string literal: quotes and backslashes
// escaped, control characters as \u00XX, everything else (including
// multi-byte UTF-8) verbatim.
//
//rtoss:noalloc
func appendJSONString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		default:
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// serveErrCode maps server errors to HTTP statuses: 503 when closed,
// shedding load, aborted by a co-batched panic, or failed by the
// stuck-batch watchdog (all retryable elsewhere — the fleet router
// fails them over), 400 when the request body was not a decodable
// image, 504 when the request's deadline budget expired before
// execution (the scheduler shed it), 409 when a fresher frame
// superseded it, 500 for an executor panic on this request and
// anything else.
func serveErrCode(err error) int {
	switch {
	case errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull) ||
		errors.Is(err, ErrCoBatched) || errors.Is(err, ErrStuckBatch):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadImage):
		return http.StatusBadRequest
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrSuperseded):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// queryBudget parses the optional ?budget_ms= deadline budget of a
// /detect request: the frame must complete within this many
// milliseconds of arrival or the scheduler sheds it with 504.
func queryBudget(r *http.Request) (time.Duration, error) {
	s := r.URL.Query().Get("budget_ms")
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 || v > 3600_000 {
		return 0, fmt.Errorf("serve: query budget_ms=%q must be a positive millisecond count", s)
	}
	return time.Duration(v * float64(time.Millisecond)), nil
}

// queryFloat parses a threshold override. Zero is rejected rather than
// accepted: detect.Config treats non-positive thresholds as "unset"
// (replaced by the defaults), so silently passing 0 through would run
// the request with the default threshold instead of the requested one.
func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 || v > 1 {
		return 0, fmt.Errorf("serve: query %s=%q must be a number in (0, 1]", key, s)
	}
	return v, nil
}

// appendDetectionsJSON converts pipeline detections to their wire form,
// appending into dst so the handler's pooled slice is reused across
// requests.
//
//rtoss:noalloc
func appendDetectionsJSON(dst []DetectionJSON, dets []detect.Detection, labels []string) []DetectionJSON {
	for _, d := range dets {
		j := DetectionJSON{
			Box:   [4]float64{d.Box.X1, d.Box.Y1, d.Box.X2, d.Box.Y2},
			Class: d.Class,
			Score: d.Score,
		}
		if d.Class >= 0 && d.Class < len(labels) {
			j.Label = labels[d.Class]
		}
		dst = append(dst, j)
	}
	return dst
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// readImage decodes a request body into a [1, C, H, W] tensor. An empty
// body means a zero image (useful for smoke tests and load generators).
// The raw bytes pass through a pooled buffer sized from Content-Length;
// only the float tensor handed to the queue is a fresh allocation.
func readImage(r *http.Request, c, h, w int) (*tensor.Tensor, error) {
	raw, err := readBody(r, int64(c*h*w*4)+1)
	if err != nil {
		return nil, fmt.Errorf("serve: reading image: %w", err)
	}
	defer bufPool.Put(raw)
	in := tensor.New(1, c, h, w)
	if len(*raw) == 0 {
		return in, nil
	}
	if len(*raw) != c*h*w*4 {
		return nil, fmt.Errorf("serve: image body must be %d bytes (%dx%dx%d float32 LE), got %d",
			c*h*w*4, c, h, w, len(*raw))
	}
	for i := range in.Data {
		in.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32((*raw)[i*4:]))
	}
	return in, nil
}

// StatsJSON renders a Stats snapshot as the GET /stats JSON document —
// exported so the fleet shard can publish one section per resident
// model under the same key names a single-model server uses.
func StatsJSON(st Stats) map[string]any { return statsJSON(st) }

func statsJSON(st Stats) map[string]any {
	return map[string]any{
		"requests":       st.Requests,
		"rejected":       st.Rejected,
		"errors":         st.Errors,
		"completed":      st.Completed,
		"batches":        st.Batches,
		"avg_batch":      st.AvgBatch,
		"max_batch":      st.MaxBatch,
		"avg_latency_ms": ms(st.AvgLatency),
		"max_latency_ms": ms(st.MaxLatency),
		"queue_depth":    st.QueueDepth,
		// Batched detection-path counters (Detect/TryDetect requests).
		"detects":           st.Detects,
		"candidates":        st.Candidates,
		"boxes":             st.Boxes,
		"avg_ingest_ms":     ms(st.AvgIngest),
		"avg_preprocess_ms": ms(st.AvgPreprocess),
		"avg_decode_ms":     ms(st.AvgDecode),
		"avg_nms_ms":        ms(st.AvgNMS),
		// Deadline-scheduler counters (DetectFrame / ?budget_ms
		// requests). Snapshotted atomically alongside everything else:
		// each field is one atomic load, so no torn reads under -race.
		"deadline_shed":     st.DeadlineShed,
		"superseded":        st.Superseded,
		"deadline_hits":     st.DeadlineHits,
		"deadline_misses":   st.DeadlineMisses,
		"deadline_hit_rate": deadlineHitRate(st),
		// Robustness counters: executor panics survived, co-batched
		// requests transparently re-queued after one, and batches the
		// stuck-batch watchdog failed.
		"panics":        st.Panics,
		"requeues":      st.Requeues,
		"stuck_batches": st.StuckBatches,
	}
}

// deadlineHitRate is the fraction of deadline-carrying frames that
// were served within budget, over everything that was shed or served
// late instead; 1 when no deadline traffic has been seen.
func deadlineHitRate(st Stats) float64 {
	total := st.DeadlineHits + st.DeadlineMisses + st.DeadlineShed + st.Superseded
	if total == 0 {
		return 1
	}
	return float64(st.DeadlineHits) / float64(total)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
