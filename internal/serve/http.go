package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"rtoss/internal/tensor"
)

// HTTP front end for a Server. The wire format is deliberately minimal:
// an image is raw little-endian float32 NCHW bytes, so a client needs
// no codec beyond a byte order.
//
//	POST /infer    body = C*H*W float32s (LE), or empty for a zero image
//	               → JSON {shape, l2, latency_ms} (+ data with ?data=1)
//	GET  /stats    → JSON Stats snapshot
//	GET  /healthz  → 200 "ok"

// NewHandler serves one model Server over HTTP. inputC, inputH and
// inputW fix the accepted image shape (request bodies must match it
// exactly).
func NewHandler(s *Server, inputC, inputH, inputW int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, statsJSON(s.Stats()))
	})
	mux.HandleFunc("POST /infer", func(w http.ResponseWriter, r *http.Request) {
		in, err := readImage(r.Body, inputC, inputH, inputW)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		out, err := s.Infer(in)
		if err != nil {
			code := http.StatusInternalServerError
			if err == ErrClosed {
				code = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), code)
			return
		}
		resp := map[string]any{
			"shape":      out.Shape(),
			"l2":         out.L2(),
			"latency_ms": float64(time.Since(start)) / float64(time.Millisecond),
		}
		if r.URL.Query().Get("data") == "1" {
			resp["data"] = out.Data
		}
		writeJSON(w, resp)
	})
	return mux
}

// readImage decodes a request body into a [1, C, H, W] tensor. An empty
// body means a zero image (useful for smoke tests and load generators).
func readImage(body io.Reader, c, h, w int) (*tensor.Tensor, error) {
	raw, err := io.ReadAll(io.LimitReader(body, int64(c*h*w*4)+1))
	if err != nil {
		return nil, fmt.Errorf("serve: reading image: %w", err)
	}
	in := tensor.New(1, c, h, w)
	if len(raw) == 0 {
		return in, nil
	}
	if len(raw) != c*h*w*4 {
		return nil, fmt.Errorf("serve: image body must be %d bytes (%dx%dx%d float32 LE), got %d",
			c*h*w*4, c, h, w, len(raw))
	}
	for i := range in.Data {
		in.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return in, nil
}

func statsJSON(st Stats) map[string]any {
	return map[string]any{
		"requests":       st.Requests,
		"rejected":       st.Rejected,
		"errors":         st.Errors,
		"completed":      st.Completed,
		"batches":        st.Batches,
		"avg_batch":      st.AvgBatch,
		"max_batch":      st.MaxBatch,
		"avg_latency_ms": float64(st.AvgLatency) / float64(time.Millisecond),
		"max_latency_ms": float64(st.MaxLatency) / float64(time.Millisecond),
		"queue_depth":    st.QueueDepth,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
