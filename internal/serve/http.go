package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/tensor"
)

// HTTP front end for a Server. Two wire formats:
//
//	POST /infer    body = C*H*W float32s (LE, raw NCHW), or empty for a
//	               zero image → JSON {shape, l2, latency_ms}
//	               (+ data with ?data=1)
//	POST /detect   body = an encoded image (PPM/PGM P2/P3/P5/P6 or PNG)
//	               → JSON {detections, count, image, timing_ms}
//	               (?score= and ?iou= override the thresholds)
//	GET  /stats    → JSON Stats snapshot
//	GET  /healthz  → 200 "ok"
//
// /infer speaks raw tensors so a load generator needs no codec beyond
// a byte order; /detect speaks images so a camera, a curl command or a
// browser can drive the full detection pipeline.

// maxImageBody bounds /detect request bodies (32 MiB decodes any sane
// benchmark image).
const maxImageBody = 32 << 20

// HandlerConfig wires a Server to the HTTP front end.
type HandlerConfig struct {
	// InputC/InputH/InputW fix the raw-tensor shape /infer accepts.
	InputC, InputH, InputW int
	// Detect enables POST /detect with the given pipeline config
	// (head spec + thresholds). Nil disables the endpoint (404).
	Detect *detect.Config
	// Labels maps class IDs to display names in /detect responses
	// (optional; class indices are always included).
	Labels []string
	// ShedLoad makes /infer and /detect reject with 503 when the
	// server's queue is full instead of blocking the connection —
	// the right choice when a load balancer can retry elsewhere.
	ShedLoad bool
}

// DetectionJSON is one detection on the /detect wire (and in `rtoss
// detect` output): box corners in source-image pixels, class index,
// optional label, confidence.
type DetectionJSON struct {
	Box   [4]float64 `json:"box"`
	Class int        `json:"class"`
	Label string     `json:"label,omitempty"`
	Score float64    `json:"score"`
}

// ImageSizeJSON is the decoded source-image dimensions on the wire.
type ImageSizeJSON struct {
	Width  int `json:"width"`
	Height int `json:"height"`
}

// TimingJSON is the /detect per-stage latency breakdown, milliseconds.
type TimingJSON struct {
	Preprocess float64 `json:"preprocess"`
	Forward    float64 `json:"forward"`
	Decode     float64 `json:"decode"`
	Total      float64 `json:"total"`
}

// DetectResponse is the POST /detect response body. The same struct is
// produced by the handler and consumed by Client, so the two cannot
// drift apart.
type DetectResponse struct {
	Detections []DetectionJSON `json:"detections"`
	Count      int             `json:"count"`
	Image      ImageSizeJSON   `json:"image"`
	TimingMS   TimingJSON      `json:"timing_ms"`
}

// Boxes converts the wire detections back into pipeline detections, in
// response order. The conversion is exact: box corners and scores are
// float64 on both sides and Go's JSON encoding round-trips float64
// bitwise, so evaluation over HTTP scores the very numbers the server
// computed.
func (r *DetectResponse) Boxes() []detect.Detection {
	out := make([]detect.Detection, len(r.Detections))
	for i, d := range r.Detections {
		out[i] = detect.Detection{
			Box:   detect.Box{X1: d.Box[0], Y1: d.Box[1], X2: d.Box[2], Y2: d.Box[3]},
			Class: d.Class,
			Score: d.Score,
		}
	}
	return out
}

// NewHandler serves one model Server over HTTP.
func NewHandler(s *Server, cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, statsJSON(s.Stats()))
	})
	mux.HandleFunc("POST /infer", func(w http.ResponseWriter, r *http.Request) {
		in, err := readImage(r.Body, cfg.InputC, cfg.InputH, cfg.InputW)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		infer := s.Infer
		if cfg.ShedLoad {
			infer = s.TryInfer
		}
		out, err := infer(in)
		if err != nil {
			http.Error(w, err.Error(), serveErrCode(err))
			return
		}
		resp := map[string]any{
			"shape":      out.Shape(),
			"l2":         out.L2(),
			"latency_ms": float64(time.Since(start)) / float64(time.Millisecond),
		}
		if r.URL.Query().Get("data") == "1" {
			resp["data"] = out.Data
		}
		writeJSON(w, resp)
	})
	if cfg.Detect != nil {
		mux.HandleFunc("POST /detect", func(w http.ResponseWriter, r *http.Request) {
			handleDetect(w, r, s, cfg)
		})
	}
	return mux
}

// handleDetect is a thin shim over Server.Detect: parse the threshold
// overrides, read the body, enqueue. Preprocess (image decode +
// letterbox), the co-batched forward and the pooled decode+NMS all run
// on the server's batch executors, so detection throughput scales with
// the worker pool instead of with handler goroutines.
func handleDetect(w http.ResponseWriter, r *http.Request, s *Server, cfg HandlerConfig) {
	pipe := *cfg.Detect
	var err error
	if pipe.ScoreThreshold, err = queryFloat(r, "score", pipe.ScoreThreshold); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if pipe.IoUThreshold, err = queryFloat(r, "iou", pipe.IoUThreshold); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxImageBody))
	if err != nil {
		http.Error(w, fmt.Sprintf("serve: reading image body: %v", err), http.StatusBadRequest)
		return
	}
	doDetect := s.Detect
	if cfg.ShedLoad {
		doDetect = s.TryDetect
	}
	res, err := doDetect(body, pipe, cfg.InputH, cfg.InputW)
	if err != nil {
		http.Error(w, err.Error(), serveErrCode(err))
		return
	}
	writeJSON(w, DetectResponse{
		Detections: detectionsJSON(res.Detections, cfg.Labels),
		Count:      len(res.Detections),
		Image:      ImageSizeJSON{Width: res.SrcW, Height: res.SrcH},
		TimingMS: TimingJSON{
			Preprocess: ms(res.Timing.Preprocess),
			Forward:    ms(res.Timing.Forward),
			Decode:     ms(res.Timing.Decode),
			Total:      ms(res.Timing.Total()),
		},
	})
}

// serveErrCode maps server errors to HTTP statuses: 503 when closed or
// shedding load, 400 when the request body was not a decodable image,
// 500 otherwise.
func serveErrCode(err error) int {
	switch {
	case errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadImage):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// queryFloat parses a threshold override. Zero is rejected rather than
// accepted: detect.Config treats non-positive thresholds as "unset"
// (replaced by the defaults), so silently passing 0 through would run
// the request with the default threshold instead of the requested one.
func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 || v > 1 {
		return 0, fmt.Errorf("serve: query %s=%q must be a number in (0, 1]", key, s)
	}
	return v, nil
}

func detectionsJSON(dets []detect.Detection, labels []string) []DetectionJSON {
	out := make([]DetectionJSON, len(dets))
	for i, d := range dets {
		out[i] = DetectionJSON{
			Box:   [4]float64{d.Box.X1, d.Box.Y1, d.Box.X2, d.Box.Y2},
			Class: d.Class,
			Score: d.Score,
		}
		if d.Class >= 0 && d.Class < len(labels) {
			out[i].Label = labels[d.Class]
		}
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// readImage decodes a request body into a [1, C, H, W] tensor. An empty
// body means a zero image (useful for smoke tests and load generators).
func readImage(body io.Reader, c, h, w int) (*tensor.Tensor, error) {
	raw, err := io.ReadAll(io.LimitReader(body, int64(c*h*w*4)+1))
	if err != nil {
		return nil, fmt.Errorf("serve: reading image: %w", err)
	}
	in := tensor.New(1, c, h, w)
	if len(raw) == 0 {
		return in, nil
	}
	if len(raw) != c*h*w*4 {
		return nil, fmt.Errorf("serve: image body must be %d bytes (%dx%dx%d float32 LE), got %d",
			c*h*w*4, c, h, w, len(raw))
	}
	for i := range in.Data {
		in.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return in, nil
}

func statsJSON(st Stats) map[string]any {
	return map[string]any{
		"requests":       st.Requests,
		"rejected":       st.Rejected,
		"errors":         st.Errors,
		"completed":      st.Completed,
		"batches":        st.Batches,
		"avg_batch":      st.AvgBatch,
		"max_batch":      st.MaxBatch,
		"avg_latency_ms": ms(st.AvgLatency),
		"max_latency_ms": ms(st.MaxLatency),
		"queue_depth":    st.QueueDepth,
		// Batched detection-path counters (Detect/TryDetect requests).
		"detects":           st.Detects,
		"candidates":        st.Candidates,
		"boxes":             st.Boxes,
		"avg_preprocess_ms": ms(st.AvgPreprocess),
		"avg_decode_ms":     ms(st.AvgDecode),
		"avg_nms_ms":        ms(st.AvgNMS),
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
