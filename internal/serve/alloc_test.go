package serve

import (
	"bytes"
	"testing"

	"rtoss/internal/detect"
	"rtoss/internal/tensor"
)

// TestServerDetectAllocBudget pins the steady-state allocation budget
// of the served detection path. Unlike the strict zero-alloc tests on
// the ingest primitives (internal/tensor) and PostprocessInto
// (internal/detect), a Detect round trip legitimately allocates a
// handful of objects per request — the request/response pair, the
// channel, the [1,C,H,W] reshape header and the result — so this test
// bounds the count rather than forcing it to zero. The image decode,
// letterbox canvas and head tensors all come from pools/arenas now, so
// the bound is tight (~25 allocs/op measured on a 48x24 PPM at 32x32
// resolution); a pooled buffer escaping its pool or a per-candidate
// allocation sneaking back into the executor blows straight through it.
func TestServerDetectAllocBudget(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	defer s.Close()
	pipe := detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05}

	img := tensor.New(3, 24, 48)
	for i := range img.Data {
		img.Data[i] = float32(i%13) / 13
	}
	var ppm bytes.Buffer
	if err := tensor.EncodePPM(&ppm, img); err != nil {
		t.Fatal(err)
	}
	body := ppm.Bytes()

	detectOnce := func() {
		res, err := s.Detect(body, pipe, 32, 32)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			t.Fatal("nil result")
		}
	}
	detectOnce() // warm the batch executor's pooled scratch

	const budget = 50
	allocs := testing.AllocsPerRun(50, detectOnce)
	t.Logf("Server.Detect steady state: %.1f allocs/op (budget %d)", allocs, budget)
	if allocs > budget {
		t.Errorf("Server.Detect allocates %.1f allocs/op in steady state, budget is %d", allocs, budget)
	}
}
