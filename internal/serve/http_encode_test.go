package serve

import (
	"encoding/json"
	"math"
	"testing"
)

// TestAppendDetectResponseRoundTrip pins the hand-rolled /detect JSON
// encoder against the stdlib decoder: every field — including floats
// chosen to stress shortest-form encoding and labels that need
// escaping — must survive an encode/decode round trip exactly. This is
// the contract DetectResponse.Boxes() documents (evaluation over HTTP
// scores the very numbers the server computed), now enforced against
// the pooled fast-path encoder instead of encoding/json.
func TestAppendDetectResponseRoundTrip(t *testing.T) {
	in := DetectResponse{
		Detections: []DetectionJSON{
			{Box: [4]float64{0, 1.5, 103.25, 47.125}, Class: 2, Label: "car", Score: 0.87},
			{Box: [4]float64{1e-17, 1e21, -3.75, math.Pi}, Class: 0, Label: `quo"te\back`, Score: 0.250000000000001},
			{Box: [4]float64{0.1, 0.2, 0.3, 0.7}, Class: -1, Score: math.SmallestNonzeroFloat64},
			{Box: [4]float64{5, 6, 7, 8}, Class: 11, Label: "tab\tnewline\nünïcode", Score: 1},
		},
		Count: 4,
		Image: ImageSizeJSON{Width: 1242, Height: 375},
		TimingMS: TimingJSON{
			Ingest:     0.0625,
			Preprocess: 1.75,
			Forward:    123.456789,
			Decode:     0.001953125,
			Total:      125.271,
		},
	}
	raw := appendDetectResponse(nil, &in)
	if !json.Valid(raw) {
		t.Fatalf("hand encoder produced invalid JSON: %s", raw)
	}
	var out DetectResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding hand-encoded response: %v", err)
	}
	if len(out.Detections) != len(in.Detections) {
		t.Fatalf("round trip lost detections: got %d, want %d", len(out.Detections), len(in.Detections))
	}
	for i := range in.Detections {
		a, b := in.Detections[i], out.Detections[i]
		if a != b {
			t.Errorf("detection %d round trip: got %+v, want %+v", i, b, a)
		}
	}
	if out.Count != in.Count || out.Image != in.Image || out.TimingMS != in.TimingMS {
		t.Errorf("envelope round trip: got count=%d image=%+v timing=%+v", out.Count, out.Image, out.TimingMS)
	}

	// The omitempty semantics must match the struct tag: an empty label
	// is absent from the wire, a non-empty one present.
	var asMap struct {
		Detections []map[string]json.RawMessage `json:"detections"`
	}
	if err := json.Unmarshal(raw, &asMap); err != nil {
		t.Fatal(err)
	}
	if _, ok := asMap.Detections[2]["label"]; ok {
		t.Error("empty label was encoded; want omitted (json:\",omitempty\" parity)")
	}
	if _, ok := asMap.Detections[1]["label"]; !ok {
		t.Error("non-empty label missing from the wire")
	}

	// The stdlib encoder must agree with the hand encoder after one
	// decode cycle — same struct in, same struct out either way.
	std, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var viaStd DetectResponse
	if err := json.Unmarshal(std, &viaStd); err != nil {
		t.Fatal(err)
	}
	for i := range viaStd.Detections {
		if viaStd.Detections[i] != out.Detections[i] {
			t.Errorf("detection %d: hand encoder and encoding/json disagree after round trip", i)
		}
	}
}
