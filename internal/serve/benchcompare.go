package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchcompare.go is the perf-regression gate over committed
// DetectBenchReport artifacts: CI emits a fresh report, then compares
// it against the BENCH_PR8.json checked into the repository root and
// fails the build when the serving path got meaningfully slower or the
// zero-alloc ingest path started allocating again.

// DefaultDetectBenchTolerance is the relative normalized-throughput
// loss CompareDetectBench accepts before calling a scenario regressed.
const DefaultDetectBenchTolerance = 0.10

// detectBenchYardstick names the scenario every throughput number is
// normalized against — the dense end-to-end pipeline of the same run.
const detectBenchYardstick = "e2e-inprocess/dense"

// ReadDetectBenchJSON loads a report previously written by
// DetectBenchReport.WriteJSON.
func ReadDetectBenchJSON(path string) (*DetectBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep DetectBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("serve: parsing bench report %s: %w", path, err)
	}
	return &rep, nil
}

// CompareDetectBench checks current against baseline and returns one
// human-readable line per regression, sorted; an empty slice means the
// gate passes.
//
// Raw img/s is machine-bound, so throughput is compared as each
// scenario's ratio to the same report's e2e-inprocess/dense throughput
// — the yardstick both runs carry — and only when the two reports ran
// at the same GOMAXPROCS (a laptop baseline cannot veto a CI runner's
// parallel speedup, or vice versa). A scenario regresses when its
// normalized throughput falls more than tol below the baseline's.
//
// The throughput gate covers the macro scenarios only (postprocess,
// e2e, served-detect; seconds-scale, measured stable within a few
// percent run to run). The mode "ingest" micro-scenarios are exempt:
// their inner loops are memory-bound enough that per-process
// allocation alignment swings identical code ±30% between runs, so
// their img/s is recorded as trajectory data, and what gates them is
// their deterministic invariant — allocation counts, which are
// machine-independent and compared hard. An ingest scenario that
// allocates more per image than the baseline fails regardless of
// GOMAXPROCS or tolerance (beyond ±0.5 rounding). A scenario present
// in the baseline but missing from the current report also fails — a
// gate that silently narrows is no gate.
//
// Mode "stream" scenarios (the paced streaming bench that
// internal/stream appends) are likewise exempt from the throughput
// yardstick — their img/s is pinned by the pacing clock, not the code
// — and gate on two invariants of their own. Allocs/frame is compared
// hard like ingest, but against the lockstep serving path's count
// (tens of allocations, request/response plumbing) rather than zero,
// with 25%+8 slack for pool churn across GCs. The deadline hit rate
// is compared only at matching GOMAXPROCS (it is a capacity ratio,
// so a different core count legitimately moves it): the current rate
// must stay above baseline*(1-tol) - 0.02, a relative floor that
// scales from near-1.0 underload baselines down to heavily-overloaded
// fractional ones.
func CompareDetectBench(baseline, current *DetectBenchReport, tol float64) []string {
	if tol <= 0 {
		tol = DefaultDetectBenchTolerance
	}
	index := func(r *DetectBenchReport) map[string]DetectBenchResult {
		m := make(map[string]DetectBenchResult, len(r.Results))
		for _, res := range r.Results {
			m[res.Name+"/"+res.Mode] = res
		}
		return m
	}
	base, cur := index(baseline), index(current)
	bYard, bOK := base[detectBenchYardstick]
	cYard, cOK := cur[detectBenchYardstick]
	throughput := baseline.GOMAXPROCS == current.GOMAXPROCS &&
		bOK && cOK && bYard.ImagesPerSec > 0 && cYard.ImagesPerSec > 0

	var regs []string
	for key, b := range base {
		c, ok := cur[key]
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: scenario missing from current report", key))
			continue
		}
		if throughput && key != detectBenchYardstick && b.Mode != "ingest" && b.Mode != "stream" &&
			b.ImagesPerSec > 0 && c.ImagesPerSec > 0 {
			br := b.ImagesPerSec / bYard.ImagesPerSec
			cr := c.ImagesPerSec / cYard.ImagesPerSec
			if cr < br*(1-tol) {
				regs = append(regs, fmt.Sprintf(
					"%s: normalized throughput %.3f vs baseline %.3f (-%.1f%%, tolerance %.0f%%)",
					key, cr, br, 100*(1-cr/br), 100*tol))
			}
		}
		if b.Mode == "ingest" && c.AllocsPerImage > b.AllocsPerImage+0.5 {
			regs = append(regs, fmt.Sprintf(
				"%s: %.1f allocs/image vs baseline %.1f — the pooled ingest path regressed",
				key, c.AllocsPerImage, b.AllocsPerImage))
		}
		if b.Mode == "stream" {
			if c.AllocsPerImage > b.AllocsPerImage*1.25+8 {
				regs = append(regs, fmt.Sprintf(
					"%s: %.1f allocs/frame vs baseline %.1f — the streaming serving path regressed",
					key, c.AllocsPerImage, b.AllocsPerImage))
			}
			if floor := b.DeadlineHitRate*(1-tol) - 0.02; baseline.GOMAXPROCS == current.GOMAXPROCS &&
				c.DeadlineHitRate < floor {
				regs = append(regs, fmt.Sprintf(
					"%s: deadline hit rate %.3f below the %.3f floor (baseline %.3f at GOMAXPROCS %d)",
					key, c.DeadlineHitRate, floor, b.DeadlineHitRate, baseline.GOMAXPROCS))
			}
		}
	}
	sort.Strings(regs)
	return regs
}
