package serve

// registry_test.go covers the per-shard memory budgeting / LRU
// eviction added for the serving fleet, and the gob Program snapshot
// used for warm handoff between shards.

import (
	"sync"
	"testing"

	"rtoss/internal/engine"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// testKey builds distinct keys for registry tests; the arch names are
// fake because the programs are installed, never built from the zoo.
func testKey(arch string) Key { return Key{Arch: arch, Variant: "dense", Mode: engine.ModeSparse} }

func TestRegistryLRUEviction(t *testing.T) {
	r := NewRegistry()
	var evicted []Key
	var mu sync.Mutex
	r.OnEvict(func(k Key, _ *engine.Program) {
		mu.Lock()
		evicted = append(evicted, k)
		mu.Unlock()
	})

	progs := map[string]*engine.Program{}
	for _, arch := range []string{"A", "B", "C"} {
		progs[arch] = tinyProgram(t)
	}
	one := progs["A"].MemoryBytes()
	if one <= 0 {
		t.Fatalf("MemoryBytes = %d, want > 0", one)
	}
	// Budget for two programs: installing a third must evict the LRU.
	r.SetBudget(2*one + one/2)

	for _, arch := range []string{"A", "B"} {
		if _, err := r.Install(testKey(arch), progs[arch]); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A so B becomes the least recently used.
	if _, err := r.Install(testKey("A"), progs["A"]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Install(testKey("C"), progs["C"]); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 1 || evicted[0] != testKey("B") {
		t.Fatalf("evicted %v, want exactly [B]", evicted)
	}
	bytes, evictions := r.Footprint()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if bytes != 2*one {
		t.Fatalf("footprint = %d, want %d (two programs)", bytes, 2*one)
	}
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != testKey("A") || keys[1] != testKey("C") {
		t.Fatalf("surviving keys %v, want [A C]", keys)
	}
}

func TestRegistryNeverEvictsTheKeyBeingServed(t *testing.T) {
	r := NewRegistry()
	prog := tinyProgram(t)
	// A budget below one program: the sole entry must still serve.
	r.SetBudget(1)
	got, err := r.Install(testKey("A"), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got != prog {
		t.Fatal("Install returned a different program")
	}
	if keys := r.Keys(); len(keys) != 1 {
		t.Fatalf("keys %v, want the in-flight key to survive", keys)
	}
}

func TestRegistryShrinkingBudgetEvicts(t *testing.T) {
	r := NewRegistry()
	a, b := tinyProgram(t), tinyProgram(t)
	if _, err := r.Install(testKey("A"), a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Install(testKey("B"), b); err != nil {
		t.Fatal(err)
	}
	r.SetBudget(a.MemoryBytes() + 1)
	if keys := r.Keys(); len(keys) != 1 || keys[0] != testKey("B") {
		t.Fatalf("keys after shrink %v, want [B] (A was LRU)", keys)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	for _, k := range []Key{
		{Arch: "YOLOv5s", Variant: "rtoss-3ep", Mode: engine.ModeSparse},
		{Arch: "RetinaNet", Variant: "dense", Mode: engine.ModeAuto},
	} {
		got, err := ParseKey(k.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("ParseKey(%q) = %v", k.String(), got)
		}
	}
	for _, bad := range []string{"", "a/b", "YOLOv5s/nope/sparse", "YOLOv5s/dense/warp"} {
		if _, err := ParseKey(bad); err == nil {
			t.Fatalf("ParseKey(%q) succeeded, want error", bad)
		}
	}
}

// TestSnapshotRoundTripBitwise proves the warm handoff preserves
// behaviour exactly: a Program decoded from a peer's snapshot computes
// bitwise-identical outputs to the donor.
func TestSnapshotRoundTripBitwise(t *testing.T) {
	donor := tinyProgram(t)
	k := testKey("tiny")
	data, err := EncodeSnapshot(k, donor)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := DecodeSnapshot(k, data)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Mode() != donor.Mode() {
		t.Fatalf("mode %v, want %v", joined.Mode(), donor.Mode())
	}

	in := testImage(17)
	want, err := donor.Output(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := joined.Output(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != len(want.Data) {
		t.Fatalf("output sizes differ: %d vs %d", len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("output[%d] = %v, donor computed %v (snapshot not bitwise)", i, got.Data[i], want.Data[i])
		}
	}

	// Key mismatch must fail loudly, not compile the wrong model.
	if _, err := DecodeSnapshot(testKey("other"), data); err == nil {
		t.Fatal("DecodeSnapshot accepted a mismatched key")
	}
	// Corrupt payloads must fail, not panic.
	if _, err := DecodeSnapshot(k, data[:len(data)/2]); err == nil {
		t.Fatal("DecodeSnapshot accepted a truncated snapshot")
	}
}

// TestTensorGobRoundTrip pins the tensor wire format underneath the
// snapshot: shape, strides (derived) and bits all survive.
func TestTensorGobRoundTrip(t *testing.T) {
	r := rng.New(5)
	src := tensor.New(2, 3, 4, 5)
	for i := range src.Data {
		src.Data[i] = float32(r.Range(-10, 10))
	}
	raw, err := src.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var dst tensor.Tensor
	if err := dst.GobDecode(raw); err != nil {
		t.Fatal(err)
	}
	if dst.Rank() != 4 || dst.Dim(0) != 2 || dst.Dim(1) != 3 || dst.Dim(2) != 4 || dst.Dim(3) != 5 {
		t.Fatalf("decoded shape %v", dst.Shape())
	}
	for i := range src.Data {
		if dst.Data[i] != src.Data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, dst.Data[i], src.Data[i])
		}
	}
	var bad tensor.Tensor
	if err := bad.GobDecode(raw[:3]); err == nil {
		t.Fatal("GobDecode accepted a truncated header")
	}
}
