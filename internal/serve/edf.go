package serve

import (
	"math"
	"time"
)

// edf.go is the deadline-aware admission scheduler behind the batch
// executors. Requests may carry a deadline (the caller's latency
// budget) and, for streaming video, a (stream, seq) frame identity.
// Every gathered batch passes through one shared earliest-deadline-
// first queue before execution:
//
//   - admission is ordered by slack, not arrival: the request whose
//     deadline expires soonest runs first, deadline-less requests keep
//     FIFO order behind all deadline traffic (their slack is infinite);
//   - a frame whose slack is already negative at admission time is
//     shed with ErrDeadline instead of wasting a forward pass on a
//     result nobody can use any more;
//   - a frame that has been superseded by a fresher frame from the
//     same stream is shed with ErrSuperseded — the newest-frame-wins
//     half of the drop policy, so a 30 fps stream under load degrades
//     by skipping stale frames rather than serving an ever-older
//     backlog.
//
// The queue is a plain binary heap keyed by (deadline, admission seq)
// with a per-stream freshness table for lazy supersession, and it is
// deliberately free of goroutines, timers, and wall-clock reads: every
// decision takes `now` as an argument, so the tier-1 property tests in
// edf_test.go drive it under a virtual clock with zero sleeps. The
// workers feed it under edfQueue.mu in Server.admit.
//
// Two conservation properties make the concurrent use safe: each
// worker pops exactly as many entries as it pushed while holding the
// lock once, so the heap returns to its prior size after every admit
// call and no request is ever stranded; and every pushed request is
// popped exactly once — as admitted, deadline-shed, or superseded —
// so every caller always gets a reply.

// noDeadline is the heap key of a request without a deadline: it sorts
// after every real deadline, recovering FIFO (by admission seq) for
// plain Infer/Detect traffic.
const noDeadline = math.MaxInt64

// edfEntry is one queued request inside the EDF heap.
type edfEntry struct {
	req *request
	// key is the request deadline in UnixNanos (noDeadline when none):
	// the primary heap order.
	key int64
	// seq is the request's admission sequence number: the FIFO
	// tiebreak, and the total order when no deadlines are in play.
	seq uint64
}

// streamPending tracks the pending frames of one stream inside the
// queue: how many are queued and the freshest frame seq pushed. An
// entry older than maxSeq at pop time has been superseded.
type streamPending struct {
	n      int
	maxSeq uint64
}

// edfQueue is the slack-ordered admission queue. All methods assume
// the caller holds the owning Server's scheduler lock (or, in the
// virtual-clock tests, that access is single-threaded). The heap slice
// and the pending map retain capacity across batches, so steady-state
// admission allocates nothing.
type edfQueue struct {
	heap []edfEntry
	// pending maps a stream ID to its in-queue freshness state; empty
	// streams are deleted eagerly so the map stays bounded by the
	// number of streams with frames actually waiting.
	pending map[uint64]streamPending
}

func newEDFQueue() *edfQueue {
	return &edfQueue{pending: make(map[uint64]streamPending)}
}

// len reports how many entries (live or superseded) are queued.
func (q *edfQueue) len() int { return len(q.heap) }

// push inserts one request, keyed by its deadline. For stream frames
// (req.stream != 0) it also advances the stream's freshness watermark,
// lazily superseding any older frame of the same stream still queued.
func (q *edfQueue) push(req *request) {
	key := int64(noDeadline)
	if !req.deadline.IsZero() {
		key = req.deadline.UnixNano()
	}
	q.heap = append(q.heap, edfEntry{req: req, key: key, seq: req.seq})
	q.siftUp(len(q.heap) - 1)
	if req.stream != 0 {
		p := q.pending[req.stream]
		p.n++
		if req.frameSeq > p.maxSeq || p.n == 1 {
			p.maxSeq = req.frameSeq
		}
		q.pending[req.stream] = p
	}
}

// pop removes and returns the earliest-deadline entry, reporting
// whether a fresher frame from the same stream was pushed after it
// (stale == newest-frame-wins says drop it). Returns nil when empty.
func (q *edfQueue) pop() (req *request, stale bool) {
	n := len(q.heap)
	if n == 0 {
		return nil, false
	}
	e := q.heap[0]
	q.heap[0] = q.heap[n-1]
	q.heap[n-1] = edfEntry{} // drop the request pointer
	q.heap = q.heap[:n-1]
	if len(q.heap) > 0 {
		q.siftDown(0)
	}
	if e.req.stream != 0 {
		p := q.pending[e.req.stream]
		stale = e.req.frameSeq < p.maxSeq
		p.n--
		if p.n <= 0 {
			delete(q.pending, e.req.stream)
		} else {
			q.pending[e.req.stream] = p
		}
	}
	return e.req, stale
}

// expired reports whether req's slack was already negative at `now`:
// its deadline passed before a worker could admit it.
//
//rtoss:noalloc
func expired(req *request, now time.Time) bool {
	return !req.deadline.IsZero() && now.After(req.deadline)
}

//rtoss:noalloc
func (q *edfQueue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

//rtoss:noalloc
func (q *edfQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

//rtoss:noalloc
func (q *edfQueue) siftDown(i int) {
	n := len(q.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && q.less(l, least) {
			least = l
		}
		if r := 2*i + 2; r < n && q.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		q.heap[i], q.heap[least] = q.heap[least], q.heap[i]
		i = least
	}
}
