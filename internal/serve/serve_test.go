package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"rtoss/internal/core"
	"rtoss/internal/engine"
	"rtoss/internal/nn"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// tinyProgram compiles a small pruned detector so server tests don't
// pay for zoo-scale models.
func tinyProgram(t testing.TB) *engine.Program {
	t.Helper()
	b := nn.NewBuilder("tinydet", 3, 32, 32, 2)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 8, 3, 2, 1, nn.SiLU)
	c3 := b.C3("c3", x, 8, 8, 1, true, nn.SiLU)
	x = b.ConvBNAct("down", c3, 8, 16, 3, 2, 1, nn.SiLU)
	head := b.Conv("head", x, 16, 14, 1, 1, 0, true)
	b.Detect("detect", head)
	m := b.MustBuild()
	m.InitWeights(3)
	if _, err := core.NewVariant(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	p, err := engine.Compile(m, engine.Options{Mode: engine.ModeSparse})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testImage(seed uint64) *tensor.Tensor {
	r := rng.New(seed)
	in := tensor.New(1, 3, 32, 32)
	for i := range in.Data {
		in.Data[i] = float32(r.Range(-1, 1))
	}
	return in
}

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	var m float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// TestServerMatchesDirectOutput checks served inference returns exactly
// what a direct Program call computes, per image, under concurrency.
func TestServerMatchesDirectOutput(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{MaxBatch: 4, MaxDelay: 5 * time.Millisecond})
	defer s.Close()

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	outs := make([]*tensor.Tensor, n)
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = testImage(uint64(100 + i))
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = s.Infer(ins[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want, err := p.Output(ins[i])
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(outs[i], want); d > 1e-5 {
			t.Errorf("request %d: served output diverges from direct forward by %g", i, d)
		}
	}
	st := s.Stats()
	if st.Requests != n || st.Completed != n || st.Errors != 0 {
		t.Errorf("stats requests=%d completed=%d errors=%d, want %d/%d/0", st.Requests, st.Completed, st.Errors, n, n)
	}
	if st.Batches == 0 || st.Batches > n {
		t.Errorf("stats batches=%d out of range", st.Batches)
	}
	if st.AvgLatency <= 0 || st.MaxLatency < st.AvgLatency {
		t.Errorf("stats latency avg=%v max=%v inconsistent", st.AvgLatency, st.MaxLatency)
	}
}

// TestServerMicroBatches checks the scheduler actually coalesces
// concurrent requests instead of running them one by one.
func TestServerMicroBatches(t *testing.T) {
	p := tinyProgram(t)
	// One worker and a generous delay: concurrent requests must pile up
	// into shared batches.
	s := NewServer(p, Config{MaxBatch: 8, MaxDelay: 50 * time.Millisecond, Workers: 1})
	defer s.Close()
	in := testImage(7)
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Infer(in); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.AvgBatch <= 1.5 {
		t.Errorf("avg batch %.2f: micro-batching coalesced almost nothing", st.AvgBatch)
	}
	if st.MaxBatch > 8 {
		t.Errorf("max batch %d exceeds configured cap 8", st.MaxBatch)
	}
}

// TestServerMixedShapesPartition checks requests of different (legal)
// resolutions co-exist in one queue: batches are partitioned by shape,
// and a malformed request fails alone instead of poisoning the valid
// requests it was coalesced with.
func TestServerMixedShapesPartition(t *testing.T) {
	p := tinyProgram(t)
	// One slow worker and a generous delay force mixed-shape coalescing.
	s := NewServer(p, Config{MaxBatch: 16, MaxDelay: 50 * time.Millisecond, Workers: 1})
	defer s.Close()

	small := testImage(31) // 32x32, the nominal resolution
	big := tensor.New(1, 3, 64, 64)
	r := rng.New(32)
	for i := range big.Data {
		big.Data[i] = float32(r.Range(-1, 1))
	}
	bad := tensor.New(2, 3, 32, 32) // multi-image tensors are not images

	wantSmall, err := p.Output(small)
	if err != nil {
		t.Fatal(err)
	}
	wantBig, err := p.Output(big)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		out *tensor.Tensor
		err error
	}
	ins := []*tensor.Tensor{small, big, bad, small, big}
	results := make([]result, len(ins))
	var wg sync.WaitGroup
	for i, in := range ins {
		wg.Add(1)
		go func(i int, in *tensor.Tensor) {
			defer wg.Done()
			out, err := s.Infer(in)
			results[i] = result{out, err}
		}(i, in)
	}
	wg.Wait()

	for _, i := range []int{0, 3} {
		if results[i].err != nil {
			t.Fatalf("small request %d failed: %v", i, results[i].err)
		}
		if d := maxAbsDiff(results[i].out, wantSmall); d > 1e-5 {
			t.Errorf("small request %d diverges by %g", i, d)
		}
	}
	for _, i := range []int{1, 4} {
		if results[i].err != nil {
			t.Fatalf("big request %d failed: %v", i, results[i].err)
		}
		if d := maxAbsDiff(results[i].out, wantBig); d > 1e-5 {
			t.Errorf("big request %d diverges by %g", i, d)
		}
	}
	if results[2].err == nil {
		t.Error("malformed request should fail")
	}
}

// TestServerCloseSemantics: Close is idempotent, pending work drains,
// and post-close submissions are rejected.
func TestServerCloseSemantics(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	in := testImage(9)
	if _, err := s.Infer(in); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Infer(in); err != ErrClosed {
		t.Fatalf("Infer after Close = %v, want ErrClosed", err)
	}
	if _, err := s.TryInfer(in); err != ErrClosed {
		t.Fatalf("TryInfer after Close = %v, want ErrClosed", err)
	}
}

// TestTryInferShedsLoad fills the queue of a server whose workers never
// started (internal construction) and checks TryInfer rejects instead
// of blocking.
func TestTryInferShedsLoad(t *testing.T) {
	p := tinyProgram(t)
	s := &Server{prog: p, cfg: Config{QueueCap: 1}.withDefaults(), queue: make(chan *request, 1)}
	s.queue <- &request{} // saturate
	if _, err := s.TryInfer(testImage(11)); err != ErrQueueFull {
		t.Fatalf("TryInfer on a full queue = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}

func TestParseVariant(t *testing.T) {
	cases := []struct {
		in      string
		entries int
		ok      bool
	}{
		{"dense", 0, true}, {"rtoss-2ep", 2, true}, {"rtoss-5ep", 5, true},
		{"rtoss-6ep", 0, false}, {"rtoss-1ep", 0, false}, {"rtoss", 0, false},
		{"", 0, false}, {"RTOSS-3EP", 0, false},
	}
	for _, c := range cases {
		n, err := ParseVariant(c.in)
		if (err == nil) != c.ok || n != c.entries {
			t.Errorf("ParseVariant(%q) = (%d, %v), want (%d, ok=%v)", c.in, n, err, c.entries, c.ok)
		}
	}
}

// TestRegistrySingleBuild checks concurrent requests for one key share
// a single build and get the identical Program.
func TestRegistrySingleBuild(t *testing.T) {
	reg := NewRegistry()
	key := Key{Arch: "YOLOv5s", Variant: "dense", Mode: engine.ModeDense}
	const n = 4
	progs := make([]*engine.Program, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			progs[i], errs[i] = reg.Program(key)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if progs[i] != progs[0] {
			t.Fatal("concurrent requests built distinct Programs for one key")
		}
	}
	if ks := reg.Keys(); len(ks) != 1 || ks[0] != key {
		t.Fatalf("Keys() = %v, want [%v]", ks, key)
	}
	if _, err := reg.Program(Key{Arch: "nope", Variant: "dense"}); err == nil {
		t.Fatal("unknown architecture should error")
	}
	if _, err := reg.Program(Key{Arch: "YOLOv5s", Variant: "magic"}); err == nil {
		t.Fatal("unknown variant should error")
	}
}

// TestHTTPHandler exercises the wire protocol end to end.
func TestHTTPHandler(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{InputC: 3, InputH: 32, InputW: 32}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Empty body = zero image.
	resp, err = http.Post(ts.URL+"/infer", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Shape     []int   `json:"shape"`
		L2        float64 `json:"l2"`
		LatencyMS float64 `json:"latency_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(got.Shape) != 4 || got.Shape[0] != 1 {
		t.Fatalf("infer shape = %v", got.Shape)
	}

	// Real image bytes must match a direct forward.
	in := testImage(21)
	var buf bytes.Buffer
	for _, v := range in.Data {
		var word [4]byte
		binary.LittleEndian.PutUint32(word[:], math.Float32bits(v))
		buf.Write(word[:])
	}
	resp, err = http.Post(ts.URL+"/infer", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want, err := p.Output(in)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.L2 - want.L2(); d > 1e-4 || d < -1e-4 {
		t.Errorf("served L2 %.6f vs direct %.6f", got.L2, want.L2())
	}

	// Wrong-sized body is a 400.
	resp, err = http.Post(ts.URL+"/infer", "application/octet-stream", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated image: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["requests"].(float64) < 2 {
		t.Errorf("stats requests = %v, want >= 2", stats["requests"])
	}
}

// TestRunBench smoke-tests the benchmark harness on the smallest
// possible workload (it powers both `rtoss bench` and the CI artifact).
func TestRunBench(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness runs zoo-scale models; skipped in -short")
	}
	rep, err := RunBench(BenchConfig{Images: 4, Streams: 2, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("expected 5 scenarios, got %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.ImagesPerSec <= 0 {
			t.Errorf("%s/%s throughput %.2f", r.Name, r.Mode, r.ImagesPerSec)
		}
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}

// TestEmitBenchJSON writes the CI benchmark artifact when
// RTOSS_BENCH_JSON names the output path. CI invokes exactly this test
// (go test -run TestEmitBenchJSON ./internal/serve/) so the artifact is
// produced with the library's own methodology.
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("RTOSS_BENCH_JSON")
	if path == "" {
		t.Skip("set RTOSS_BENCH_JSON=<path> to emit the benchmark artifact")
	}
	rep, err := RunBench(BenchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Render())
}
