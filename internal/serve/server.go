package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/faultinject"
	"rtoss/internal/tensor"
)

// Config tunes a Server's micro-batching scheduler. Zero values select
// the defaults.
type Config struct {
	// MaxBatch is the most images one forward pass coalesces (default 8).
	MaxBatch int
	// MaxDelay is how long a worker holding a partial batch waits for
	// more requests before running it (default 2ms). Lower favours
	// latency, higher favours throughput.
	MaxDelay time.Duration
	// Workers is how many batch executors run concurrently (default 2).
	// Each executes full forward passes on the shared Program.
	Workers int
	// QueueCap bounds the pending-request queue (default 64). Infer
	// blocks when the queue is full; TryInfer sheds load instead.
	QueueCap int

	// Watchdog arms the stuck-batch watchdog: a batch still executing
	// after this allowance (or, when the batch carries deadline
	// traffic, after a small multiple of its deadline budget —
	// whichever is tighter) has its unanswered requests failed with
	// ErrStuckBatch so no caller ever hangs on a wedged executor.
	// Zero disables the watchdog and all of its bookkeeping.
	Watchdog time.Duration

	// FaultInjector arms this server's chaos injection points (ingest
	// corruption, executor panic/stall). Nil — the production
	// configuration — compiles every point down to a nil check.
	FaultInjector *faultinject.Injector

	// clock overrides the scheduler's time source (nil = time.Now).
	// Unexported: only in-package tests drive the deadline scheduler
	// under a virtual clock; production servers always run wall time.
	clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.clock == nil {
		c.clock = time.Now
	}
	return c
}

// Server turns one shared Program into a concurrent inference service:
// requests enter a bounded queue, workers coalesce them into batches of
// up to MaxBatch images (waiting at most MaxDelay for stragglers), run
// one batched forward per batch, and fan the outputs back out to the
// callers. Detection requests (Detect/TryDetect) carry encoded image
// bytes through the same queue: the batch executor decodes and
// letterboxes them, co-batches the forwards with Infer traffic, and
// runs the pooled decode+NMS postprocess before replying — so
// detection-heavy traffic amortises its whole pipeline on the
// executors instead of burning a handler goroutine per request. All
// methods are safe for concurrent use.
type Server struct {
	prog  *engine.Program
	cfg   Config
	queue chan *request
	wg    sync.WaitGroup

	// headArena recycles the per-image head copies HeadsBatchArena
	// splits off a batched forward: the executor returns a detect
	// request's heads right after postprocess, so the next batch reuses
	// the buffers instead of allocating fresh ones. Heads handed to
	// InferHeads/Infer callers are never recycled — the arena only sees
	// tensors the server provably owns.
	headArena *tensor.Arena
	// scratchPool recycles ingestScratch (decoded image + letterbox
	// canvas tensors) across detect requests, making the executor's
	// decode+letterbox stage allocation-free in steady state.
	scratchPool sync.Pool

	// sched is the shared deadline-aware admission queue (see edf.go):
	// every gathered batch is pushed through it so urgent frames jump
	// ahead of slack-rich ones across all workers, and stale or
	// already-expired frames are shed before they cost a forward pass.
	schedMu sync.Mutex
	sched   *edfQueue
	// seq numbers admissions for the EDF queue's FIFO tiebreak.
	seq atomic.Uint64

	closeMu sync.RWMutex
	closed  bool

	// wd is the stuck-batch watchdog (nil unless Config.Watchdog > 0):
	// one slot per worker records the batch being executed, and the
	// watchdog loop fails the requests of any batch that overstays its
	// allowance. See watchdog.go.
	wd *watchdog

	stats serverStats
}

// ingestScratch is one detect request's pooled preprocess state: the
// decoded image tensor and the letterbox canvas the forward consumes.
// Both retain capacity across requests, so a steady stream of
// same-sized images decodes and letterboxes with zero allocations.
type ingestScratch struct {
	img    *tensor.Tensor
	canvas *tensor.Tensor
}

var (
	// ErrClosed is returned by Infer/TryInfer after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrQueueFull is returned by TryInfer when the queue is saturated.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrBadImage wraps image-decode failures of Detect requests: the
	// request was accepted but its body is not a decodable image. The
	// HTTP front end maps it to 400.
	ErrBadImage = errors.New("serve: undecodable image")
	// ErrDeadline is returned for a request whose deadline had already
	// expired when the scheduler admitted it: the frame was shed
	// without a forward pass (its slack was negative, so the result
	// could not have been useful). The HTTP front end maps it to 504.
	ErrDeadline = errors.New("serve: deadline expired before execution")
	// ErrSuperseded is returned for a stream frame that a fresher
	// frame of the same stream overtook in the queue: newest-frame-
	// wins shed it unserved.
	ErrSuperseded = errors.New("serve: frame superseded by a fresher frame")
	// ErrWorkerPanic is returned for the request a batch executor was
	// handling when it panicked — the one request a panic is allowed
	// to fail. The HTTP front end maps it to 500; the process itself
	// always survives (the worker recovers and keeps serving).
	ErrWorkerPanic = errors.New("serve: batch executor panicked on this request")
	// ErrCoBatched is returned for an innocent request that shared a
	// batch with a panicking one and could not be re-queued (queue
	// full or server closing). Co-batched neighbors are re-queued once
	// and retried transparently; this error is the explicit fallback —
	// never a hang. The HTTP front end maps it to 503.
	ErrCoBatched = errors.New("serve: request aborted by a co-batched panic")
	// ErrStuckBatch is returned by the watchdog for requests of a
	// batch that exceeded its execution allowance — the caller gets an
	// explicit 503 instead of waiting on a wedged executor.
	ErrStuckBatch = errors.New("serve: batch exceeded its execution allowance")
)

// reqKind selects what a queued request wants back.
type reqKind uint8

const (
	// kindInfer wants the model's final output tensor.
	kindInfer reqKind = iota
	// kindHeads wants every detection-head tensor.
	kindHeads
	// kindDetect carries encoded image bytes and wants decoded boxes:
	// the executor preprocesses, forwards and postprocesses.
	kindDetect
)

type request struct {
	kind reqKind
	// in is the network input: caller-provided for infer/heads
	// requests, filled by the executor's preprocess for detect.
	in *tensor.Tensor
	// img/pipe/resH/resW describe a detect request: encoded image
	// bytes, the resolved postprocess config, and the letterbox canvas.
	img        []byte
	pipe       detect.Config
	resH, resW int
	// meta, ingest, pp and sc are filled by the executor's preprocess
	// stage; sc is returned to the server's scratch pool after the
	// response is sent.
	meta   tensor.LetterboxMeta
	ingest time.Duration
	pp     time.Duration
	sc     *ingestScratch

	// deadline, stream, frameSeq and seq drive the EDF admission
	// scheduler: deadline is the caller's latency budget (zero = none,
	// schedule FIFO behind deadline traffic), stream/frameSeq identify
	// a video frame for newest-frame-wins supersession, and seq is the
	// server-wide admission number used as the FIFO tiebreak.
	deadline time.Time
	stream   uint64
	frameSeq uint64
	seq      uint64

	resp chan response
	enq  time.Time

	// done flips exactly once, when the request's response is sent:
	// the executor, the panic-recovery path and the watchdog all race
	// to answer through reply()'s CAS, so the buffered resp channel
	// can never see a second send.
	done atomic.Bool
	// requeued marks a request already re-queued once after a
	// co-batched panic: a second incident fails it explicitly instead
	// of cycling it forever.
	requeued bool
}

type response struct {
	out   *tensor.Tensor
	heads []*tensor.Tensor
	det   *detect.Result
	err   error
}

// NewServer starts cfg.Workers batch executors over the shared Program
// and returns the running server. Callers own the Program; one Program
// may back several servers.
func NewServer(prog *engine.Program, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		prog:      prog,
		cfg:       cfg,
		queue:     make(chan *request, cfg.QueueCap),
		headArena: tensor.NewArena(),
		sched:     newEDFQueue(),
	}
	s.scratchPool.New = func() any { return new(ingestScratch) }
	if cfg.Watchdog > 0 {
		s.wd = newWatchdog(s, cfg.Watchdog, cfg.Workers)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(s.wd.slot(i))
	}
	return s
}

// reply delivers a request's response exactly once: the first of the
// executor, the panic-recovery path and the watchdog to get here wins
// the CAS and sends; later callers see false and do nothing. The resp
// channel is buffered (size 1), so the winning send never blocks.
//
//rtoss:noalloc
func (s *Server) reply(req *request, r response) bool {
	if !req.done.CompareAndSwap(false, true) {
		return false
	}
	req.resp <- r
	return true
}

// Infer runs one image ([C, H, W] or [1, C, H, W]) through the service
// and blocks until its output is ready (or the server closes). When the
// queue is full, Infer waits for a slot — use TryInfer to shed load.
func (s *Server) Infer(in *tensor.Tensor) (*tensor.Tensor, error) {
	r, err := s.submit(&request{kind: kindInfer, in: in}, true)
	if err != nil {
		return nil, err
	}
	return r.out, nil
}

// TryInfer is Infer, except it returns ErrQueueFull instead of blocking
// when the queue is saturated.
func (s *Server) TryInfer(in *tensor.Tensor) (*tensor.Tensor, error) {
	r, err := s.submit(&request{kind: kindInfer, in: in}, false)
	if err != nil {
		return nil, err
	}
	return r.out, nil
}

// InferHeads runs one image through the service and returns every
// detection-head tensor (in the model Detect sink's input order). Heads
// requests ride the same micro-batching queue as Infer and co-batch
// with it.
func (s *Server) InferHeads(in *tensor.Tensor) ([]*tensor.Tensor, error) {
	r, err := s.submit(&request{kind: kindHeads, in: in}, true)
	if err != nil {
		return nil, err
	}
	return r.heads, nil
}

// TryInferHeads is InferHeads, except it returns ErrQueueFull instead
// of blocking when the queue is saturated.
func (s *Server) TryInferHeads(in *tensor.Tensor) ([]*tensor.Tensor, error) {
	r, err := s.submit(&request{kind: kindHeads, in: in}, false)
	if err != nil {
		return nil, err
	}
	return r.heads, nil
}

// Detect runs the full image -> boxes pipeline on the batch executors:
// img is an encoded image (PPM/PGM/PNG/JPEG), pipe the postprocess config
// (Spec required), resH x resW the letterbox canvas resolution.
// Preprocess, the co-batched forward, and the pooled decode+NMS all
// execute on the worker that picked the request up, so a
// detection-heavy load scales with Workers rather than with handler
// goroutines. The returned Result carries boxes in source-image pixels
// (descending score) and the per-stage timing (Forward is the whole
// co-batched forward pass).
func (s *Server) Detect(img []byte, pipe detect.Config, resH, resW int) (*detect.Result, error) {
	return s.detect(img, pipe, resH, resW, FrameOptions{Block: true})
}

// TryDetect is Detect, except it returns ErrQueueFull instead of
// blocking when the queue is saturated — the load-shedding entry point
// the HTTP front end uses for /detect when ShedLoad is on.
func (s *Server) TryDetect(img []byte, pipe detect.Config, resH, resW int) (*detect.Result, error) {
	return s.detect(img, pipe, resH, resW, FrameOptions{})
}

// FrameOptions parameterises a deadline-aware detection submission
// (DetectFrame). The zero value reproduces TryDetect.
type FrameOptions struct {
	// Deadline is the caller's absolute latency budget: the EDF
	// scheduler admits earlier deadlines first and sheds the request
	// with ErrDeadline if the deadline has already expired when a
	// worker picks it up. Zero means no deadline (FIFO, never shed).
	Deadline time.Time
	// Stream and Seq identify a video frame: a frame is superseded
	// (shed with ErrSuperseded) when a frame of the same Stream with a
	// higher Seq enters the queue behind it — newest-frame-wins.
	// Stream 0 disables supersession.
	Stream uint64
	// Seq is the frame number within Stream; it must increase
	// monotonically for supersession to mean "fresher".
	Seq uint64
	// Block makes the submission wait for queue space like Detect;
	// false sheds with ErrQueueFull like TryDetect.
	Block bool
}

// DetectFrame is Detect with a deadline budget and an optional stream
// identity: the request rides the same micro-batching queue, but the
// EDF scheduler orders its admission by slack, sheds it with
// ErrDeadline once the deadline passes unserved, and sheds it with
// ErrSuperseded when a fresher frame of the same stream overtakes it.
// This is the entry point internal/stream's sessions drive.
func (s *Server) DetectFrame(img []byte, pipe detect.Config, resH, resW int, opt FrameOptions) (*detect.Result, error) {
	return s.detect(img, pipe, resH, resW, opt)
}

func (s *Server) detect(img []byte, pipe detect.Config, resH, resW int, opt FrameOptions) (*detect.Result, error) {
	if len(pipe.Spec.Levels) == 0 {
		return nil, fmt.Errorf("serve: Detect needs a head spec in pipe.Spec")
	}
	pipe = pipe.WithDefaults()
	if st := pipe.Spec.MaxStride(); resH <= 0 || resH%st != 0 || resW <= 0 || resW%st != 0 {
		return nil, fmt.Errorf("serve: detect resolution %dx%d must be positive multiples of the head stride %d", resH, resW, st)
	}
	r, err := s.submit(&request{
		kind: kindDetect, img: img, pipe: pipe, resH: resH, resW: resW,
		deadline: opt.Deadline, stream: opt.Stream, frameSeq: opt.Seq,
	}, opt.Block)
	if err != nil {
		return nil, err
	}
	return r.det, nil
}

func (s *Server) submit(req *request, wait bool) (response, error) {
	req.resp = make(chan response, 1)
	req.enq = time.Now()
	req.seq = s.seq.Add(1)
	// The read lock holds Close's channel close off until the send has
	// completed, so submit never sends on a closed channel.
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return response{}, ErrClosed
	}
	if wait {
		// Sending under the close read-lock is the point: Close takes the
		// write lock before closing s.queue, so holding the read lock
		// across the send makes send-on-closed-channel impossible, and
		// the queue is drained by the batch loop, never by a lock holder.
		//rtoss:allow lockdiscipline (send fenced by the close lock by design)
		s.queue <- req
	} else {
		select {
		case s.queue <- req:
		default:
			s.closeMu.RUnlock()
			atomic.AddUint64(&s.stats.rejected, 1)
			return response{}, ErrQueueFull
		}
	}
	atomic.AddUint64(&s.stats.requests, 1)
	s.closeMu.RUnlock()
	r := <-req.resp
	return r, r.err
}

// Close stops accepting requests, drains the queue, and waits for
// in-flight batches to finish. It is idempotent.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.closeMu.Unlock()
	s.wg.Wait()
	s.wd.stopLoop()
}

// workerScratch is one executor's reusable state: the gather timer and
// the batch/group/input/admission slices, all retained across batches
// so the steady-state executor loop allocates nothing of its own.
type workerScratch struct {
	timer    *time.Timer
	batch    []*request
	ins      []*tensor.Tensor
	admitted []*request
	shed     []shedRequest

	// pending is the panic-recovery ledger: a stable copy of the batch
	// taken before execute starts compacting its slice in place. When
	// a batch panics, recoverBatch walks pending — each request exactly
	// once — answering or re-queueing whatever is still unanswered.
	pending []*request
	// cur is the request the executor is touching in a per-request
	// stage (preprocess, postprocess): the one a panic there poisons.
	// Nil during batched stages (forward), where no single request can
	// be blamed.
	cur *request
}

// shedRequest pairs a request the scheduler dropped with the reason it
// reports to the caller.
type shedRequest struct {
	req *request
	err error
}

// worker pulls a request, tops the batch up to MaxBatch (waiting at
// most MaxDelay), reorders the batch through the shared EDF queue
// (shedding expired and superseded frames), runs one batched forward,
// and replies to every caller. sl is the worker's watchdog slot (nil
// when the watchdog is disabled).
//
// A panic inside execute is contained there (recoverBatch answers the
// batch); the deferred recover here is the last-resort backstop for
// panics outside that window — it respawns the worker so the executor
// pool never shrinks and the process never dies.
func (s *Server) worker(sl *wdSlot) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddUint64(&s.stats.panics, 1)
			go s.worker(sl)
			return
		}
		s.wg.Done()
	}()
	ws := &workerScratch{timer: time.NewTimer(time.Hour)}
	ws.timer.Stop()
	for first := range s.queue {
		if batch := s.admit(ws, s.gather(ws, first)); len(batch) > 0 {
			s.execute(ws, sl, batch)
		}
	}
}

// admit routes one gathered batch through the shared EDF queue: every
// request is pushed, then exactly as many entries are popped in
// earliest-deadline-first order while the scheduler lock is held once.
// Because pushes and pops are balanced under a single lock hold, the
// queue returns to its prior size after every call no matter how many
// workers interleave — no request is ever stranded — while urgent
// frames gathered by one worker may run in the batch of another that
// pops first. Entries whose deadline already expired are shed with
// ErrDeadline, entries superseded by a fresher frame of their stream
// with ErrSuperseded; the survivors, in EDF order, become the batch.
func (s *Server) admit(ws *workerScratch, batch []*request) []*request {
	now := s.cfg.clock()
	admitted, shed := ws.admitted[:0], ws.shed[:0]
	s.schedMu.Lock()
	for _, req := range batch {
		s.sched.push(req)
	}
	for range batch {
		req, stale := s.sched.pop()
		if req == nil {
			break // counts are balanced; only a bug leaves the queue short
		}
		switch {
		case stale:
			shed = append(shed, shedRequest{req, ErrSuperseded})
		case expired(req, now):
			shed = append(shed, shedRequest{req, ErrDeadline})
		default:
			admitted = append(admitted, req)
		}
	}
	s.schedMu.Unlock()
	ws.admitted, ws.shed = admitted, shed
	// Reply to the shed requests outside the scheduler lock: the
	// response channels are buffered, but lock discipline keeps sends
	// out of critical sections.
	for _, sr := range shed {
		if sr.err == ErrSuperseded {
			atomic.AddUint64(&s.stats.superseded, 1)
		} else {
			atomic.AddUint64(&s.stats.deadlineShed, 1)
		}
		s.reply(sr.req, response{err: sr.err})
	}
	return admitted
}

// gather collects up to MaxBatch-1 additional requests behind first
// into the worker's reused batch slice.
func (s *Server) gather(ws *workerScratch, first *request) []*request {
	batch := append(ws.batch[:0], first)
	ws.batch = batch
	if s.cfg.MaxBatch <= 1 {
		return batch
	}
	// Go 1.23+ timer semantics: Reset after Stop needs no drain, and a
	// stale expiry can no longer be sitting buffered in the channel.
	ws.timer.Reset(s.cfg.MaxDelay)
	defer ws.timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case req, ok := <-s.queue:
			if !ok {
				return batch // closing: run what we have
			}
			batch = append(batch, req)
			ws.batch = batch
		case <-ws.timer.C:
			return batch
		}
	}
	return batch
}

// preprocess decodes and letterboxes a detect request's image bytes on
// the executor, entirely inside pooled scratch: the decoded image and
// the letterbox canvas both come from (and return to) the server's
// scratch pool, so a steady stream of same-sized images runs this stage
// with zero allocations. It reports whether the request survives; a
// decode failure is answered immediately (wrapped in ErrBadImage) so it
// never poisons the batch it was coalesced with.
func (s *Server) preprocess(req *request) bool {
	if s.cfg.FaultInjector.Should(faultinject.PointIngestCorrupt) {
		// Truncate the encoded bytes in place of the decode seeing
		// them: the request fails exactly like a client that sent a
		// cut-off upload — answered 400 alone, batch unharmed.
		req.img = req.img[:len(req.img)/2]
	}
	sc := s.scratchPool.Get().(*ingestScratch)
	t0 := time.Now()
	img, err := tensor.DecodeImageInto(sc.img, req.img)
	if err != nil {
		s.scratchPool.Put(sc)
		atomic.AddUint64(&s.stats.errors, 1)
		s.reply(req, response{err: fmt.Errorf("%w: %v", ErrBadImage, err)})
		return false
	}
	sc.img = img
	req.ingest = time.Since(t0)
	t1 := time.Now()
	canvas, meta := tensor.LetterboxImageInto(sc.canvas, img, req.resH, req.resW, tensor.LetterboxFill)
	sc.canvas = canvas
	req.sc = sc
	// The batch stacker accepts [C, H, W] directly; skipping the
	// [1, C, H, W] reshape avoids allocating a view header per request.
	req.in = canvas
	req.meta = meta
	req.pp = time.Since(t1)
	s.stats.recordIngest(req.ingest)
	s.stats.recordPreprocess(req.pp)
	return true
}

// release returns a detect request's pooled preprocess scratch after
// its response has been sent. The response never aliases the scratch
// (detections are freshly appended, heads were already recycled), so
// the next request may overwrite it immediately.
func (s *Server) release(req *request) {
	if req.sc != nil {
		s.scratchPool.Put(req.sc)
		req.sc = nil
	}
}

func (s *Server) execute(ws *workerScratch, sl *wdSlot, batch []*request) {
	// Copy the batch before the in-place compaction below: pending is
	// the one stable, duplicate-free view of every request this call
	// owes an answer to — what recoverBatch walks after a panic and
	// what the watchdog slot records.
	ws.pending = append(ws.pending[:0], batch...)
	if sl != nil {
		sl.begin(s, ws.pending)
		defer sl.end()
	}
	defer s.recoverBatch(ws)
	// Detect requests arrive as encoded bytes: preprocess them here so
	// the forward below can co-batch them with raw-tensor traffic.
	// Reusing batch's backing array keeps the executor allocation-lean.
	ready := batch[:0]
	for _, req := range batch {
		ws.cur = req
		ok := req.kind != kindDetect || s.preprocess(req)
		ws.cur = nil
		if ok {
			ready = append(ready, req)
		}
	}
	if len(ready) == 0 {
		return
	}
	// Clients may legitimately submit different image sizes (Programs
	// accept any resolution the model supports), and images can only be
	// stacked with identical shapes — so partition the batch by shape
	// and forward each group separately. One malformed request then
	// fails alone instead of poisoning whoever it was co-batched with.
	// The common case (every request at the model's nominal resolution)
	// is detected up front and runs group-partition-free.
	if uniformShape(ready) {
		s.executeGroup(ws, ready)
		return
	}
	for _, group := range groupByShape(ready) {
		s.executeGroup(ws, group)
	}
}

// recoverBatch is execute's panic-isolation contract: if anything in
// the batch window panics (preprocess, forward, postprocess — injected
// or real), the worker recovers here instead of unwinding the process.
// The request the panic poisoned (the one a per-request stage was
// touching, or any request on its second incident) is answered with
// ErrWorkerPanic; every other unanswered request is innocent and is
// re-queued for a transparent retry, or failed explicitly with
// ErrCoBatched when the queue has no room — success or 503, never a
// hang. The panics stat records the incident; the worker loop then
// continues with the next batch as if nothing happened.
func (s *Server) recoverBatch(ws *workerScratch) {
	r := recover()
	if r == nil {
		return
	}
	atomic.AddUint64(&s.stats.panics, 1)
	poisoned := ws.cur
	ws.cur = nil
	for _, req := range ws.pending {
		if req.done.Load() {
			continue
		}
		if req == poisoned || req.requeued {
			if s.reply(req, response{err: fmt.Errorf("%w: %v", ErrWorkerPanic, r)}) {
				atomic.AddUint64(&s.stats.errors, 1)
			}
			s.release(req)
			continue
		}
		s.requeueOrFail(req)
	}
}

// requeueOrFail gives an innocent co-batched request a second chance:
// its preprocess state is scrapped (a re-executed detect request
// decodes afresh from its original bytes) and it re-enters the queue
// without blocking. When the queue is full or the server is closing,
// the request is answered ErrCoBatched instead — explicitly, so the
// caller never hangs on a request the executor abandoned.
func (s *Server) requeueOrFail(req *request) {
	s.release(req)
	if req.kind == kindDetect {
		req.in = nil // pointed at the released canvas; preprocess refills it
	}
	req.requeued = true
	s.closeMu.RLock()
	if !s.closed {
		select {
		case s.queue <- req:
			atomic.AddUint64(&s.stats.requeues, 1)
			s.closeMu.RUnlock()
			return
		default:
		}
	}
	s.closeMu.RUnlock()
	if s.reply(req, response{err: ErrCoBatched}) {
		atomic.AddUint64(&s.stats.errors, 1)
	}
}

// uniformShape reports whether every request's input stacks with the
// first one's — the hot path that skips groupByShape's allocations.
//
//rtoss:noalloc
func uniformShape(batch []*request) bool {
	for _, req := range batch[1:] {
		if !sameImageShape(batch[0].in, req.in) {
			return false
		}
	}
	return true
}

// executeGroup runs one stackable group: a single batched forward, then
// per-request postprocess and reply. The input slice is the worker's
// reused scratch.
func (s *Server) executeGroup(ws *workerScratch, group []*request) {
	ins := ws.ins[:0]
	anyHeads := false
	for _, req := range group {
		ins = append(ins, req.in)
		anyHeads = anyHeads || req.kind != kindInfer
	}
	ws.ins = ins
	// A group containing any detection request runs the heads path
	// for the whole group: the final output is the first head (the
	// Detect sink aliases it), so plain Infer co-batches for free.
	var (
		outs  []*tensor.Tensor
		heads [][]*tensor.Tensor
		err   error
	)
	// An injected stall holds the whole batch mid-execution — the
	// scenario the stuck-batch watchdog exists for. The sleep happens
	// here, lock-free, never inside the injector.
	if d := s.cfg.FaultInjector.Latency(faultinject.PointExecStall); d > 0 {
		time.Sleep(d)
	}
	fstart := time.Now()
	if anyHeads {
		// The server's arena feeds the per-image head copies; the
		// detect branch below returns each request's heads as soon
		// as postprocess is done with them. Heads that escape to
		// InferHeads/Infer callers are simply never recycled.
		heads, err = s.prog.HeadsBatchArena(ins, s.headArena)
	} else {
		outs, err = s.prog.ForwardBatch(ins)
	}
	fwd := time.Since(fstart)
	s.stats.recordBatch(len(group))
	for i, req := range group {
		ws.cur = req
		if s.cfg.FaultInjector.Should(faultinject.PointExecPanic) {
			panic(fmt.Sprintf("faultinject: %s while serving request %d", faultinject.PointExecPanic, req.seq))
		}
		r := response{err: err}
		switch {
		case err != nil:
			atomic.AddUint64(&s.stats.errors, 1)
		case req.kind == kindDetect:
			// The postprocess scratch is pooled inside detect, so
			// each executor reuses a warm per-worker buffer set.
			dets, pst, derr := detect.PostprocessStats(nil, heads[i], req.meta, req.pipe)
			// Postprocess copied everything it keeps out of the
			// head tensors, so they go back to the arena either
			// way — the next batch reuses the buffers.
			for _, h := range heads[i] {
				s.headArena.Put(h)
			}
			if derr != nil {
				r.err = derr
				atomic.AddUint64(&s.stats.errors, 1)
				break
			}
			s.stats.recordDetect(pst)
			r.det = &detect.Result{
				Detections: dets,
				SrcW:       req.meta.SrcW,
				SrcH:       req.meta.SrcH,
				Timing: detect.Timing{
					Ingest:     req.ingest,
					Preprocess: req.pp,
					Forward:    fwd,
					Decode:     pst.Decode + pst.NMS,
				},
			}
		case req.kind == kindHeads:
			r.heads = heads[i]
		case anyHeads:
			r.out = heads[i][0]
		default:
			r.out = outs[i]
		}
		s.stats.recordLatency(time.Since(req.enq))
		if !req.deadline.IsZero() && r.err == nil {
			if s.cfg.clock().After(req.deadline) {
				atomic.AddUint64(&s.stats.deadlineMisses, 1)
			} else {
				atomic.AddUint64(&s.stats.deadlineHits, 1)
			}
		}
		// The watchdog may have answered this request already (a
		// stall that outlived the batch allowance); the CAS inside
		// reply makes that race safe, and the executor still owns the
		// scratch release either way.
		s.reply(req, r)
		s.release(req)
		ws.cur = nil
	}
}

// groupByShape splits a batch into stackable groups of identical image
// shape, preserving arrival order within each group. The common case
// (every client sends the model's nominal resolution) stays one group.
func groupByShape(batch []*request) [][]*request {
	groups := make([][]*request, 0, 1)
outer:
	for _, req := range batch {
		for i, g := range groups {
			if sameImageShape(g[0].in, req.in) {
				groups[i] = append(g, req)
				continue outer
			}
		}
		groups = append(groups, []*request{req})
	}
	return groups
}

// sameImageShape reports whether two single-image tensors stack: equal
// shapes, treating [C, H, W] and [1, C, H, W] as equivalent. Malformed
// inputs (wrong rank) compare false against everything, so they fail
// in their own group of one.
//
//rtoss:noalloc
func sameImageShape(a, b *tensor.Tensor) bool {
	ac, ah, aw, aok := imageDims(a)
	bc, bh, bw, bok := imageDims(b)
	return aok && bok && ac == bc && ah == bh && aw == bw
}

// imageDims extracts C, H, W from a single-image tensor without
// copying its shape slice (this runs per request pair in groupByShape).
//
//rtoss:noalloc
func imageDims(t *tensor.Tensor) (c, h, w int, ok bool) {
	switch {
	case t.Rank() == 3:
		return t.Dim(0), t.Dim(1), t.Dim(2), true
	case t.Rank() == 4 && t.Dim(0) == 1:
		return t.Dim(1), t.Dim(2), t.Dim(3), true
	}
	return 0, 0, 0, false
}

// Program returns the immutable Program the server executes — the
// snapshot endpoint's donor and a cheap way for shard plumbing to reach
// model metadata.
func (s *Server) Program() *engine.Program { return s.prog }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := s.stats.snapshot()
	st.QueueDepth = len(s.queue)
	return st
}

// serverStats is the atomically-updated internals behind Stats.
type serverStats struct {
	requests, rejected, errors uint64
	batches, batchedImages     uint64
	maxBatch                   int64
	latencyNS, maxLatencyNS    int64

	// Detection pipeline counters (Detect/TryDetect requests).
	// preprocesses counts separately from detects: a request that
	// preprocessed but failed its forward/postprocess must not skew
	// the other's average.
	detects, preprocesses uint64
	ingests               uint64
	candidates, boxes     uint64
	ingestNS              int64
	preprocessNS          int64
	decodeNS, nmsNS       int64

	// Deadline-scheduler counters (DetectFrame requests). All four are
	// plain atomics so /stats snapshots cannot tear under -race:
	// deadlineShed counts frames dropped at admission with negative
	// slack, superseded counts frames overtaken by a fresher frame of
	// their stream, and hits/misses split the frames that were served
	// by whether they finished inside their budget.
	deadlineShed   uint64
	superseded     uint64
	deadlineHits   uint64
	deadlineMisses uint64

	// Robustness counters: panics recovered by batch executors,
	// requests re-queued after a co-batched panic, and batches the
	// stuck-batch watchdog gave up on.
	panics       uint64
	requeues     uint64
	stuckBatches uint64
}

// The record* helpers run on the batch executor for every request, so
// they are part of the serving hot path's zero-allocation budget.
//
//rtoss:noalloc
func (st *serverStats) recordBatch(size int) {
	atomic.AddUint64(&st.batches, 1)
	atomic.AddUint64(&st.batchedImages, uint64(size))
	atomicMax(&st.maxBatch, int64(size))
}

//rtoss:noalloc
func (st *serverStats) recordLatency(d time.Duration) {
	atomic.AddInt64(&st.latencyNS, int64(d))
	atomicMax(&st.maxLatencyNS, int64(d))
}

//rtoss:noalloc
func (st *serverStats) recordIngest(d time.Duration) {
	atomic.AddUint64(&st.ingests, 1)
	atomic.AddInt64(&st.ingestNS, int64(d))
}

//rtoss:noalloc
func (st *serverStats) recordPreprocess(d time.Duration) {
	atomic.AddUint64(&st.preprocesses, 1)
	atomic.AddInt64(&st.preprocessNS, int64(d))
}

//rtoss:noalloc
func (st *serverStats) recordDetect(pst detect.PostStats) {
	atomic.AddUint64(&st.detects, 1)
	atomic.AddUint64(&st.candidates, uint64(pst.Candidates))
	atomic.AddUint64(&st.boxes, uint64(pst.Kept))
	atomic.AddInt64(&st.decodeNS, int64(pst.Decode))
	atomic.AddInt64(&st.nmsNS, int64(pst.NMS))
}

//rtoss:noalloc
func atomicMax(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v <= cur || atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}

// Stats is one snapshot of a server's accounting: how much traffic it
// has seen, how well micro-batching is coalescing it, what the callers'
// end-to-end latency (queue wait + batch execution) looks like, and —
// for the batched detection path — the per-stage postprocess counters.
type Stats struct {
	Requests               uint64 // accepted requests
	Rejected               uint64 // TryInfer/TryDetect load-shed rejections
	Errors                 uint64 // requests that returned an error
	Completed              uint64 // images that went through a forward pass
	Batches                uint64 // batched forward passes executed
	AvgBatch               float64
	MaxBatch               int
	AvgLatency, MaxLatency time.Duration
	QueueDepth             int

	// Detection-path counters: Detects counts completed Detect
	// requests; Candidates/Boxes the decoded candidates entering NMS
	// and the boxes that survived it; the Avg* durations the per-image
	// ingest (image-bytes decode), preprocess (letterbox), head decode
	// (+ TopK) and NMS (+ un-letterbox) stages on the batch executors.
	Detects       uint64
	Candidates    uint64
	Boxes         uint64
	AvgIngest     time.Duration
	AvgPreprocess time.Duration
	AvgDecode     time.Duration
	AvgNMS        time.Duration

	// Deadline-scheduler counters (DetectFrame requests): how many
	// frames were shed unserved because their deadline had already
	// expired (DeadlineShed) or a fresher frame of the same stream
	// overtook them (Superseded), and how the served ones split into
	// on-budget (DeadlineHits) vs late (DeadlineMisses).
	DeadlineShed   uint64
	Superseded     uint64
	DeadlineHits   uint64
	DeadlineMisses uint64

	// Robustness counters: Panics counts executor panics survived
	// (each answers only the poisoned request with an error), Requeues
	// the innocent co-batched requests transparently retried, and
	// StuckBatches the batches the watchdog failed for overstaying
	// their execution allowance.
	Panics       uint64
	Requeues     uint64
	StuckBatches uint64
}

func (st *serverStats) snapshot() Stats {
	out := Stats{
		Requests:   atomic.LoadUint64(&st.requests),
		Rejected:   atomic.LoadUint64(&st.rejected),
		Errors:     atomic.LoadUint64(&st.errors),
		Completed:  atomic.LoadUint64(&st.batchedImages),
		Batches:    atomic.LoadUint64(&st.batches),
		MaxBatch:   int(atomic.LoadInt64(&st.maxBatch)),
		MaxLatency: time.Duration(atomic.LoadInt64(&st.maxLatencyNS)),
		Detects:    atomic.LoadUint64(&st.detects),
		Candidates: atomic.LoadUint64(&st.candidates),
		Boxes:      atomic.LoadUint64(&st.boxes),

		DeadlineShed:   atomic.LoadUint64(&st.deadlineShed),
		Superseded:     atomic.LoadUint64(&st.superseded),
		DeadlineHits:   atomic.LoadUint64(&st.deadlineHits),
		DeadlineMisses: atomic.LoadUint64(&st.deadlineMisses),

		Panics:       atomic.LoadUint64(&st.panics),
		Requeues:     atomic.LoadUint64(&st.requeues),
		StuckBatches: atomic.LoadUint64(&st.stuckBatches),
	}
	if out.Batches > 0 {
		out.AvgBatch = float64(out.Completed) / float64(out.Batches)
	}
	if out.Completed > 0 {
		out.AvgLatency = time.Duration(atomic.LoadInt64(&st.latencyNS) / int64(out.Completed))
	}
	if in := atomic.LoadUint64(&st.ingests); in > 0 {
		out.AvgIngest = time.Duration(atomic.LoadInt64(&st.ingestNS) / int64(in))
	}
	if pp := atomic.LoadUint64(&st.preprocesses); pp > 0 {
		out.AvgPreprocess = time.Duration(atomic.LoadInt64(&st.preprocessNS) / int64(pp))
	}
	if out.Detects > 0 {
		n := int64(out.Detects)
		out.AvgDecode = time.Duration(atomic.LoadInt64(&st.decodeNS) / n)
		out.AvgNMS = time.Duration(atomic.LoadInt64(&st.nmsNS) / n)
	}
	return out
}
