package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// watchdog.go is the stuck-batch watchdog: every worker owns a slot
// recording the batch it is executing, and one watchdog goroutine
// periodically fails the requests of any batch that has overstayed its
// allowance — so a wedged forward pass (a stalled kernel, an injected
// stall) costs its callers a bounded wait and an explicit 503, never a
// hang. The watchdog answers requests through the server's CAS reply,
// and it never touches a request's pooled scratch: the executor owns
// the release unconditionally, so a batch that eventually un-wedges
// recycles its buffers exactly as if the watchdog had never fired.

const (
	// wdBudgetMult scales a batch's deadline budget into its execution
	// allowance: a batch of deadline traffic may run this many times
	// its largest remaining budget before the watchdog calls it stuck.
	wdBudgetMult = 4
	// wdMinAllowance floors the deadline-derived allowance so very
	// tight budgets (a few ms) don't turn scheduling jitter into
	// watchdog fires.
	wdMinAllowance = 20 * time.Millisecond
)

type watchdog struct {
	s         *Server
	allowance time.Duration // Config.Watchdog: the absolute allowance
	slots     []*wdSlot
	stop      chan struct{}
	done      chan struct{}
}

// wdSlot is one worker's in-flight record. reqs aliases the worker's
// pending scratch between begin and end; the mutex orders the worker's
// writes against the watchdog's reads, so the worker may reuse the
// backing array freely once end has cleared the slot.
type wdSlot struct {
	mu      sync.Mutex
	reqs    []*request
	started time.Time
	budget  time.Duration
	fired   bool
}

func newWatchdog(s *Server, allowance time.Duration, workers int) *watchdog {
	w := &watchdog{
		s:         s,
		allowance: allowance,
		slots:     make([]*wdSlot, workers),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for i := range w.slots {
		w.slots[i] = &wdSlot{}
	}
	go w.loop()
	return w
}

// slot hands worker i its in-flight record; nil when the watchdog is
// disabled (the nil receiver), which disables all slot bookkeeping in
// the executor.
func (w *watchdog) slot(i int) *wdSlot {
	if w == nil {
		return nil
	}
	return w.slots[i]
}

func (w *watchdog) stopLoop() {
	if w == nil {
		return
	}
	close(w.stop)
	<-w.done
}

// begin records a batch entering execution and computes its allowance:
// the configured absolute allowance, tightened to wdBudgetMult times
// the batch's largest remaining deadline budget when the batch carries
// deadline traffic (floored at wdMinAllowance) — "a multiple of its
// deadline budget", with a backstop for deadline-less traffic.
func (sl *wdSlot) begin(s *Server, batch []*request) {
	now := s.cfg.clock()
	budget := s.wd.allowance
	var maxSlack time.Duration
	for _, req := range batch {
		if !req.deadline.IsZero() {
			if d := req.deadline.Sub(now); d > maxSlack {
				maxSlack = d
			}
		}
	}
	if maxSlack > 0 {
		if d := max(wdBudgetMult*maxSlack, wdMinAllowance); d < budget {
			budget = d
		}
	}
	sl.mu.Lock()
	sl.reqs = batch
	sl.started = now
	sl.budget = budget
	sl.fired = false
	sl.mu.Unlock()
}

// end clears the slot when the batch finishes (or its panic recovery
// completes). After end returns the watchdog holds no reference to the
// worker's pending slice.
func (sl *wdSlot) end() {
	sl.mu.Lock()
	sl.reqs = nil
	sl.mu.Unlock()
}

// loop polls the slots and fails overdue batches. The tick is derived
// from the allowance so a tight watchdog checks often and a lax one
// stays cheap; firing is once per batch.
func (w *watchdog) loop() {
	defer close(w.done)
	tick := w.allowance / 8
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			for _, sl := range w.slots {
				w.check(sl)
			}
		}
	}
}

// check fails the unanswered requests of an overdue batch. The stuck
// requests are collected under the slot lock but answered outside it
// (lock discipline: no channel sends in a critical section); the CAS
// inside reply makes the race against a batch that un-wedges at the
// same moment benign.
func (w *watchdog) check(sl *wdSlot) {
	now := w.s.cfg.clock()
	sl.mu.Lock()
	overdue := sl.reqs != nil && !sl.fired && now.Sub(sl.started) > sl.budget
	var stuck []*request
	if overdue {
		sl.fired = true
		stuck = append(stuck, sl.reqs...)
	}
	sl.mu.Unlock()
	if !overdue {
		return
	}
	atomic.AddUint64(&w.s.stats.stuckBatches, 1)
	for _, req := range stuck {
		// No release here: the executor still owns the scratch and
		// will recycle it when (if) the batch completes.
		if w.s.reply(req, response{err: ErrStuckBatch}) {
			atomic.AddUint64(&w.s.stats.errors, 1)
		}
	}
}
