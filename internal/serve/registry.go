// Package serve is the concurrent serving subsystem built on the
// compile-once / run-many engine: a registry that prunes and compiles
// each requested model variant exactly once and caches the immutable
// Program (with optional per-shard memory budgeting and LRU eviction),
// a micro-batching scheduler that coalesces concurrent requests into
// batched forwards, and per-model latency/throughput accounting.
package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rtoss/internal/core"
	"rtoss/internal/engine"
	"rtoss/internal/faultinject"
	"rtoss/internal/models"
	"rtoss/internal/nn"
)

// Key identifies one servable model variant: the architecture, the
// pruning variant applied to it, and the engine's kernel-dispatch mode.
type Key struct {
	// Arch is the zoo architecture: "YOLOv5s" or "RetinaNet".
	Arch string
	// Variant is "dense" (no pruning) or "rtoss-<N>ep" (R-TOSS with N
	// entry patterns, N in 2..5).
	Variant string
	// Mode is the kernel-dispatch policy the Program is compiled with.
	Mode engine.Mode
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s", k.Arch, k.Variant, k.Mode)
}

// ParseVariant validates a variant string and returns its R-TOSS entry
// count (0 for "dense").
func ParseVariant(s string) (entries int, err error) {
	if s == "dense" {
		return 0, nil
	}
	rest, ok := strings.CutPrefix(s, "rtoss-")
	if ok {
		if digits, ok := strings.CutSuffix(rest, "ep"); ok {
			if n, err := strconv.Atoi(digits); err == nil && n >= 2 && n <= 5 {
				return n, nil
			}
		}
	}
	return 0, fmt.Errorf("serve: unknown variant %q (dense|rtoss-2ep..rtoss-5ep)", s)
}

// ParseKey parses an "Arch/variant/mode" string (Key.String's format)
// back into a Key — the wire form fleet routers and shards exchange.
func ParseKey(s string) (Key, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return Key{}, fmt.Errorf("serve: key %q is not Arch/variant/mode", s)
	}
	if _, err := ParseVariant(parts[1]); err != nil {
		return Key{}, err
	}
	mode, err := engine.ParseMode(parts[2])
	if err != nil {
		return Key{}, fmt.Errorf("serve: key %q: %w", s, err)
	}
	return Key{Arch: parts[0], Variant: parts[1], Mode: mode}, nil
}

// Registry lazily builds and caches one Program per Key. Concurrent
// requests for the same key block on a single build (the multi-second
// prune+compile runs once); requests for distinct keys build
// independently. With a memory budget set, the registry evicts the
// least-recently-used Programs once the cached footprint exceeds the
// budget — the mechanism that lets one shard host a subset of the model
// zoo and page variants in and out under routing changes. A Registry is
// safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[Key]*registryEntry
	lru     *list.List // front = most recently used; element value is Key
	bytes   int64      // footprint of cached (successfully built) programs
	budget  int64      // 0 = unlimited
	closed  bool
	onEvict func(Key, *engine.Program)
	inj     *faultinject.Injector

	evictions uint64
}

type registryEntry struct {
	once sync.Once
	prog *engine.Program
	err  error
	size int64
	elem *list.Element // position in the LRU list (nil until built)
}

// NewRegistry returns an empty registry with no memory budget.
func NewRegistry() *Registry {
	return &Registry{entries: map[Key]*registryEntry{}, lru: list.New()}
}

// SetBudget bounds the total MemoryBytes of cached Programs; once the
// sum exceeds maxBytes the least-recently-used entries are evicted
// (the most recently requested Program is never evicted, so a single
// over-budget model still serves). Zero removes the bound. Shrinking
// the budget evicts immediately.
func (r *Registry) SetBudget(maxBytes int64) {
	r.mu.Lock()
	r.budget = maxBytes
	evicted := r.evictOverBudgetLocked(Key{}, false)
	r.mu.Unlock()
	r.notifyEvicted(evicted)
}

// OnEvict registers a hook called (outside the registry lock) with each
// evicted key and Program — the shard layer uses it to close the
// serving stack built on the Program. Must be set before traffic.
func (r *Registry) OnEvict(fn func(Key, *engine.Program)) {
	r.mu.Lock()
	r.onEvict = fn
	r.mu.Unlock()
}

// SetFaultInjector arms the registry's chaos injection points (build
// failure, eviction storm). Nil — the default — disarms them.
func (r *Registry) SetFaultInjector(inj *faultinject.Injector) {
	r.mu.Lock()
	r.inj = inj
	r.mu.Unlock()
}

// ErrRegistryClosed is returned by Program/Install after Close.
var ErrRegistryClosed = errors.New("serve: registry closed")

// Close evicts every cached Program through the OnEvict path — the
// graceful-shutdown drain: the shard layer's hooks close the serving
// stacks built on them — and fails all future Program/Install calls
// with ErrRegistryClosed. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var evicted []evictedEntry
	for el := r.lru.Back(); el != nil; el = r.lru.Back() {
		k := el.Value.(Key)
		e := r.entries[k]
		r.lru.Remove(el)
		delete(r.entries, k)
		r.bytes -= e.size
		r.evictions++
		evicted = append(evicted, evictedEntry{key: k, prog: e.prog})
	}
	// Entries still mid-build (never LRU-linked) just get dropped: the
	// builder's own post-build accounting sees the map emptied and
	// skips itself.
	for k := range r.entries {
		delete(r.entries, k)
	}
	r.mu.Unlock()
	r.notifyEvicted(evicted)
}

// Program returns the compiled Program for a key, building (prune +
// compile) on first request and caching the result — including a build
// error, which callers see on every subsequent request for that key
// until the entry is evicted. Each request marks the key most recently
// used.
func (r *Registry) Program(k Key) (*engine.Program, error) {
	return r.program(k, func() (*engine.Program, error) {
		r.mu.Lock()
		inj := r.inj
		r.mu.Unlock()
		if inj.Should(faultinject.PointRegistryBuild) {
			return nil, fmt.Errorf("%w: %s build failure", faultinject.ErrInjected, k)
		}
		return buildProgram(k)
	})
}

// Install caches a pre-built Program under a key — the warm-handoff
// entry point: a late-joining shard installs a Program decoded from a
// peer's snapshot and skips the prune+compile entirely. An existing
// entry for the key is left in place (first build wins; both are
// immutable and equivalent).
func (r *Registry) Install(k Key, prog *engine.Program) (*engine.Program, error) {
	return r.program(k, func() (*engine.Program, error) { return prog, nil })
}

func (r *Registry) program(k Key, build func() (*engine.Program, error)) (*engine.Program, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRegistryClosed
	}
	e := r.entries[k]
	if e == nil {
		e = &registryEntry{}
		r.entries[k] = e
	}
	inj := r.inj
	r.mu.Unlock()
	e.once.Do(func() {
		e.prog, e.err = build()
		if e.err != nil {
			return
		}
		e.size = e.prog.MemoryBytes()
		r.mu.Lock()
		// The entry may have been evicted between the map insert and
		// the build finishing; only account for it while it is live.
		if r.entries[k] == e {
			e.elem = r.lru.PushFront(k)
			r.bytes += e.size
		}
		r.mu.Unlock()
	})
	if e.err != nil {
		// An injected build failure must degrade one request, not the
		// key: drop the poisoned entry so the next request rebuilds.
		// Real build errors stay cached as documented.
		if errors.Is(e.err, faultinject.ErrInjected) {
			r.mu.Lock()
			if r.entries[k] == e {
				delete(r.entries, k)
			}
			r.mu.Unlock()
		}
		return nil, e.err
	}
	r.mu.Lock()
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
	}
	evicted := r.evictOverBudgetLocked(k, true)
	// An injected eviction storm drops the LRU tail on a plain cache
	// hit — eviction pressure without budget pressure. The spare rule
	// still protects the key being served.
	if inj.Should(faultinject.PointRegistryEvict) {
		evicted = append(evicted, r.evictTailLocked(k)...)
	}
	r.mu.Unlock()
	r.notifyEvicted(evicted)
	return e.prog, nil
}

// evictTailLocked force-evicts the LRU tail entry (sparing spare — the
// key being served). Caller holds r.mu.
func (r *Registry) evictTailLocked(spare Key) []evictedEntry {
	for el := r.lru.Back(); el != nil; el = el.Prev() {
		k := el.Value.(Key)
		if k == spare {
			continue
		}
		e := r.entries[k]
		r.lru.Remove(el)
		delete(r.entries, k)
		r.bytes -= e.size
		r.evictions++
		return []evictedEntry{{key: k, prog: e.prog}}
	}
	return nil
}

type evictedEntry struct {
	key  Key
	prog *engine.Program
}

// evictOverBudgetLocked drops LRU entries until the footprint fits the
// budget, sparing `spare` when protect is set (the key being served
// right now must survive its own admission). Caller holds r.mu; the
// evicted programs are returned so OnEvict hooks run lock-free.
func (r *Registry) evictOverBudgetLocked(spare Key, protect bool) []evictedEntry {
	if r.budget <= 0 {
		return nil
	}
	var out []evictedEntry
	for r.bytes > r.budget {
		el := r.lru.Back()
		if el == nil {
			break
		}
		k := el.Value.(Key)
		if protect && k == spare {
			// The LRU tail is the key being served: nothing older to
			// evict, and evicting the in-flight key would thrash.
			break
		}
		e := r.entries[k]
		r.lru.Remove(el)
		delete(r.entries, k)
		r.bytes -= e.size
		r.evictions++
		out = append(out, evictedEntry{key: k, prog: e.prog})
	}
	return out
}

func (r *Registry) notifyEvicted(evicted []evictedEntry) {
	if len(evicted) == 0 {
		return
	}
	r.mu.Lock()
	fn := r.onEvict
	r.mu.Unlock()
	if fn == nil {
		return
	}
	for _, ev := range evicted {
		fn(ev.key, ev.prog)
	}
}

// Keys returns the registered keys in deterministic order.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	ks := make([]Key, 0, len(r.entries))
	for k := range r.entries {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].String() < ks[j].String() })
	return ks
}

// Footprint returns the summed MemoryBytes of the cached Programs and
// the eviction count so far.
func (r *Registry) Footprint() (bytes int64, evictions uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes, r.evictions
}

// buildProgram assembles the model for a key and compiles it. The dense
// variant compiles straight from the shared read-only zoo instance (no
// weight clone); pruning variants clone first, because pruning mutates
// weights.
func buildProgram(k Key) (*engine.Program, error) {
	entries, err := ParseVariant(k.Variant)
	if err != nil {
		return nil, err
	}
	var m *nn.Model
	if entries == 0 {
		m, err = models.Shared(k.Arch, models.KITTIClasses)
		if err != nil {
			return nil, err
		}
	} else {
		m, err = models.ByName(k.Arch, models.KITTIClasses)
		if err != nil {
			return nil, err
		}
		if _, err := core.NewVariant(entries).Prune(m); err != nil {
			return nil, fmt.Errorf("serve: pruning %s: %w", k, err)
		}
	}
	return engine.Compile(m, engine.Options{Mode: k.Mode})
}
