// Package serve is the concurrent serving subsystem built on the
// compile-once / run-many engine: a registry that prunes and compiles
// each requested model variant exactly once and caches the immutable
// Program, a micro-batching scheduler that coalesces concurrent
// requests into batched forwards, and per-model latency/throughput
// accounting.
package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rtoss/internal/core"
	"rtoss/internal/engine"
	"rtoss/internal/models"
	"rtoss/internal/nn"
)

// Key identifies one servable model variant: the architecture, the
// pruning variant applied to it, and the engine's kernel-dispatch mode.
type Key struct {
	// Arch is the zoo architecture: "YOLOv5s" or "RetinaNet".
	Arch string
	// Variant is "dense" (no pruning) or "rtoss-<N>ep" (R-TOSS with N
	// entry patterns, N in 2..5).
	Variant string
	// Mode is the kernel-dispatch policy the Program is compiled with.
	Mode engine.Mode
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s", k.Arch, k.Variant, k.Mode)
}

// ParseVariant validates a variant string and returns its R-TOSS entry
// count (0 for "dense").
func ParseVariant(s string) (entries int, err error) {
	if s == "dense" {
		return 0, nil
	}
	rest, ok := strings.CutPrefix(s, "rtoss-")
	if ok {
		if digits, ok := strings.CutSuffix(rest, "ep"); ok {
			if n, err := strconv.Atoi(digits); err == nil && n >= 2 && n <= 5 {
				return n, nil
			}
		}
	}
	return 0, fmt.Errorf("serve: unknown variant %q (dense|rtoss-2ep..rtoss-5ep)", s)
}

// Registry lazily builds and caches one Program per Key. Concurrent
// requests for the same key block on a single build (the multi-second
// prune+compile runs once); requests for distinct keys build
// independently. A Registry is safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[Key]*registryEntry
}

type registryEntry struct {
	once sync.Once
	prog *engine.Program
	err  error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[Key]*registryEntry{}}
}

// Program returns the compiled Program for a key, building (prune +
// compile) on first request and caching the result — including a build
// error, which callers see on every subsequent request for that key.
func (r *Registry) Program(k Key) (*engine.Program, error) {
	r.mu.Lock()
	e := r.entries[k]
	if e == nil {
		e = &registryEntry{}
		r.entries[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.prog, e.err = buildProgram(k) })
	return e.prog, e.err
}

// Keys returns the registered keys in deterministic order.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	ks := make([]Key, 0, len(r.entries))
	for k := range r.entries {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].String() < ks[j].String() })
	return ks
}

// buildProgram assembles the model for a key and compiles it. The dense
// variant compiles straight from the shared read-only zoo instance (no
// weight clone); pruning variants clone first, because pruning mutates
// weights.
func buildProgram(k Key) (*engine.Program, error) {
	entries, err := ParseVariant(k.Variant)
	if err != nil {
		return nil, err
	}
	var m *nn.Model
	if entries == 0 {
		m, err = models.Shared(k.Arch, models.KITTIClasses)
		if err != nil {
			return nil, err
		}
	} else {
		m, err = models.ByName(k.Arch, models.KITTIClasses)
		if err != nil {
			return nil, err
		}
		if _, err := core.NewVariant(entries).Prune(m); err != nil {
			return nil, fmt.Errorf("serve: pruning %s: %w", k, err)
		}
	}
	return engine.Compile(m, engine.Options{Mode: k.Mode})
}
