package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"rtoss/internal/engine"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// bench.go measures the serving stack end to end: single-stream dense
// vs sparse forwards, batched forwards, concurrent streams over one
// shared Program, and the micro-batching server. The same harness backs
// `rtoss bench` and the CI JSON artifact (BENCH_PR2.json), so both
// report identical methodology.

// BenchConfig parameterises RunBench. Zero values select the defaults.
type BenchConfig struct {
	Arch    string // "YOLOv5s" (default) or "RetinaNet"
	Entries int    // R-TOSS entry patterns for the sparse variant (default 3)
	Res     int    // input H and W (default 64)
	Batch   int    // images per batched forward (default 8)
	Streams int    // concurrent client streams (default 8)
	Images  int    // images per scenario (default 2*Streams)
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.Arch == "" {
		c.Arch = "YOLOv5s"
	}
	if c.Entries == 0 {
		c.Entries = 3
	}
	if c.Res <= 0 {
		c.Res = 64
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.Streams <= 0 {
		c.Streams = 8
	}
	if c.Images <= 0 {
		c.Images = 2 * c.Streams
	}
	return c
}

// BenchResult is one scenario's measurement.
type BenchResult struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode"`
	Images       int     `json:"images"`
	Seconds      float64 `json:"seconds"`
	ImagesPerSec float64 `json:"images_per_sec"`
	// Speedups are relative to the sequential baselines of the same run.
	SpeedupVsSingleDense  float64 `json:"speedup_vs_single_dense"`
	SpeedupVsSingleSparse float64 `json:"speedup_vs_single_sparse"`
	AvgBatch              float64 `json:"avg_batch,omitempty"` // served scenarios only
}

// BenchReport is the full output of one RunBench call.
type BenchReport struct {
	Model      string        `json:"model"`
	Variant    string        `json:"variant"`
	Res        int           `json:"res"`
	Batch      int           `json:"batch"`
	Streams    int           `json:"streams"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
}

// RunBench builds the dense and pruned Programs through a Registry and
// measures five scenarios: sequential dense, sequential sparse, batched
// sparse, concurrent streams sharing the sparse Program, and the
// micro-batching server over it.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	cfg = cfg.withDefaults()
	reg := NewRegistry()
	dense, err := reg.Program(Key{Arch: cfg.Arch, Variant: "dense", Mode: engine.ModeDense})
	if err != nil {
		return nil, err
	}
	variant := fmt.Sprintf("rtoss-%dep", cfg.Entries)
	sparse, err := reg.Program(Key{Arch: cfg.Arch, Variant: variant, Mode: engine.ModeSparse})
	if err != nil {
		return nil, err
	}

	inputs := make([]*tensor.Tensor, cfg.Images)
	r := rng.New(0xfeed)
	for i := range inputs {
		in := tensor.New(1, dense.Model().InputC, cfg.Res, cfg.Res)
		for j := range in.Data {
			in.Data[j] = float32(r.Range(-1, 1))
		}
		inputs[i] = in
	}

	rep := &BenchReport{
		Model: cfg.Arch, Variant: variant,
		Res: cfg.Res, Batch: cfg.Batch, Streams: cfg.Streams,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	single := func(p *engine.Program) (float64, error) {
		start := time.Now()
		for _, in := range inputs {
			if _, err := p.Output(in); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}

	// Warm up both programs (compile pools, page in weights) off the clock.
	if _, err := dense.Output(inputs[0]); err != nil {
		return nil, err
	}
	if _, err := sparse.Output(inputs[0]); err != nil {
		return nil, err
	}

	denseSec, err := single(dense)
	if err != nil {
		return nil, err
	}
	rep.add("single-stream", "dense", cfg.Images, denseSec, denseSec, 0, 0)

	sparseSec, err := single(sparse)
	if err != nil {
		return nil, err
	}
	rep.add("single-stream", "sparse", cfg.Images, sparseSec, denseSec, sparseSec, 0)

	// Batched: ForwardBatch in chunks of Batch.
	start := time.Now()
	for at := 0; at < len(inputs); at += cfg.Batch {
		end := at + cfg.Batch
		if end > len(inputs) {
			end = len(inputs)
		}
		if _, err := sparse.ForwardBatch(inputs[at:end]); err != nil {
			return nil, err
		}
	}
	rep.add("batched", "sparse", cfg.Images, time.Since(start).Seconds(), denseSec, sparseSec, 0)

	// Concurrent streams over one shared Program.
	sec, err := concurrentStreams(cfg.Streams, inputs, func(in *tensor.Tensor) error {
		_, err := sparse.Output(in)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.add("concurrent-streams", "sparse", cfg.Images, sec, denseSec, sparseSec, 0)

	// Micro-batching server over the same Program.
	srv := NewServer(sparse, Config{MaxBatch: cfg.Batch})
	sec, err = concurrentStreams(cfg.Streams, inputs, func(in *tensor.Tensor) error {
		_, err := srv.Infer(in)
		return err
	})
	st := srv.Stats()
	srv.Close()
	if err != nil {
		return nil, err
	}
	rep.add("served", "sparse", cfg.Images, sec, denseSec, sparseSec, st.AvgBatch)
	return rep, nil
}

// concurrentStreams fans the inputs out over n client goroutines and
// returns the wall-clock seconds until every request completed.
func concurrentStreams(n int, inputs []*tensor.Tensor, infer func(*tensor.Tensor) error) (float64, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(inputs); i += n {
				if err := infer(inputs[i]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(s)
	}
	wg.Wait()
	return time.Since(start).Seconds(), firstErr
}

func (r *BenchReport) add(name, mode string, images int, sec, denseSec, sparseSec, avgBatch float64) {
	res := BenchResult{
		Name: name, Mode: mode, Images: images, Seconds: sec,
		AvgBatch: avgBatch,
	}
	if sec > 0 {
		res.ImagesPerSec = float64(images) / sec
		res.SpeedupVsSingleDense = denseSec / sec
		if sparseSec > 0 {
			res.SpeedupVsSingleSparse = sparseSec / sec
		}
	}
	r.Results = append(r.Results, res)
}

// WriteJSON writes the report to path as indented JSON.
func (r *BenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render returns the report as an aligned text table.
func (r *BenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving benchmark: %s %s, %dx%d input, batch %d, %d streams, GOMAXPROCS %d\n",
		r.Model, r.Variant, r.Res, r.Res, r.Batch, r.Streams, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-20s %-7s %7s %9s %11s %11s %9s\n",
		"scenario", "mode", "images", "img/s", "vs dense", "vs sparse", "avg batch")
	for _, res := range r.Results {
		avgBatch := ""
		if res.AvgBatch > 0 {
			avgBatch = fmt.Sprintf("%.2f", res.AvgBatch)
		}
		fmt.Fprintf(&b, "%-20s %-7s %7d %9.2f %10.2fx %10.2fx %9s\n",
			res.Name, res.Mode, res.Images, res.ImagesPerSec,
			res.SpeedupVsSingleDense, res.SpeedupVsSingleSparse, avgBatch)
	}
	return b.String()
}
