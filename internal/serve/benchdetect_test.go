package serve

import (
	"os"
	"testing"
)

// TestRunDetectBench smoke-tests the detection benchmark harness on the
// smallest possible workload (it powers `rtoss bench` and the
// BENCH_PR8.json CI artifact).
func TestRunDetectBench(t *testing.T) {
	if testing.Short() {
		t.Skip("detect bench harness runs zoo-scale models; skipped in -short")
	}
	rep, err := RunDetectBench(DetectBenchConfig{Images: 4, Streams: 2, Res: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 8 {
		t.Fatalf("expected 8 scenarios, got %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.ImagesPerSec <= 0 {
			t.Errorf("%s/%s throughput %.2f", r.Name, r.Mode, r.ImagesPerSec)
		}
		// The pooled ingest stages are the zero-alloc contract this PR
		// ships; the bench records them so the CI gate can hold the line.
		if r.Mode == "ingest" && r.AllocsPerImage > 0.5 {
			t.Errorf("%s: %.1f allocs/image; pooled ingest should be allocation-free", r.Name, r.AllocsPerImage)
		}
	}
	if rep.Server == nil || rep.Server.AvgDecodeMS <= 0 {
		t.Errorf("served postprocess counters missing: %+v", rep.Server)
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}

// TestEmitDetectBenchJSON writes the BENCH_PR8.json CI artifact when
// RTOSS_DETECT_BENCH_JSON names the output path. CI invokes exactly
// this test (go test -run TestEmitDetectBenchJSON ./internal/serve/) so
// the artifact is produced with the library's own methodology; the
// regression gate (TestDetectBenchRegressionGate) then compares it
// against the committed baseline.
func TestEmitDetectBenchJSON(t *testing.T) {
	path := os.Getenv("RTOSS_DETECT_BENCH_JSON")
	if path == "" {
		t.Skip("set RTOSS_DETECT_BENCH_JSON=<path> to emit the benchmark artifact")
	}
	rep, err := RunDetectBench(DetectBenchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Render())
}
