package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// compareFixture is a plausible committed baseline: ingest decoders at
// zero allocs, sparse ahead of dense, served path between the two, and
// the paced streaming scenario with its timeliness counters.
func compareFixture() *DetectBenchReport {
	return &DetectBenchReport{
		Model: "YOLOv5s", Variant: "rtoss-3ep", Res: 256, Streams: 8, GOMAXPROCS: 1,
		Results: []DetectBenchResult{
			{Name: "decode-ppm", Mode: "ingest", Images: 128, ImagesPerSec: 4000, AllocsPerImage: 0},
			{Name: "decode-png", Mode: "ingest", Images: 128, ImagesPerSec: 900, AllocsPerImage: 0},
			{Name: "decode-jpeg", Mode: "ingest", Images: 128, ImagesPerSec: 700, AllocsPerImage: 0},
			{Name: "letterbox", Mode: "ingest", Images: 128, ImagesPerSec: 2500, AllocsPerImage: 0},
			{Name: "postprocess", Mode: "sparse", Images: 16, ImagesPerSec: 500},
			{Name: "e2e-inprocess", Mode: "dense", Images: 16, ImagesPerSec: 2, SpeedupVsDense: 1},
			{Name: "e2e-inprocess", Mode: "sparse", Images: 16, ImagesPerSec: 4, SpeedupVsDense: 2},
			{Name: "served-detect", Mode: "sparse", Images: 16, ImagesPerSec: 3.6, SpeedupVsDense: 1.8, AvgBatch: 2},
			{Name: "stream-30fps", Mode: "stream", Images: 120, ImagesPerSec: 55,
				AllocsPerImage: 40, DeadlineHitRate: 0.995, DropsPerSec: 0.2},
		},
	}
}

// TestCompareDetectBenchInjectedRegression proves the CI gate actually
// fires: an identical report passes, and each class of injected
// regression — slower served path, re-allocating ingest, dropped
// scenario — produces a failure line naming the scenario.
func TestCompareDetectBenchInjectedRegression(t *testing.T) {
	base := compareFixture()

	if regs := CompareDetectBench(base, compareFixture(), 0.10); len(regs) != 0 {
		t.Fatalf("identical reports must pass, got: %v", regs)
	}

	// A uniformly slower machine must also pass: every throughput is
	// normalized by the same run's dense e2e, so halving everything
	// changes no ratio.
	slowMachine := compareFixture()
	for i := range slowMachine.Results {
		slowMachine.Results[i].ImagesPerSec /= 2
	}
	if regs := CompareDetectBench(base, slowMachine, 0.10); len(regs) != 0 {
		t.Errorf("uniform slowdown must not trip the normalized gate, got: %v", regs)
	}

	// Ingest micro-scenario throughput swinging either way must not
	// fire: sub-millisecond decode loops move ±30% run to run with
	// allocation alignment, so only their alloc counts gate them. The
	// stream scenario's img/s is pinned by its pacing clock, so it is
	// likewise trajectory-only.
	noisy := compareFixture()
	noisy.Results[0].ImagesPerSec *= 0.6
	noisy.Results[3].ImagesPerSec *= 1.5
	noisy.Results[8].ImagesPerSec *= 0.5
	if regs := CompareDetectBench(base, noisy, 0.10); len(regs) != 0 {
		t.Errorf("ingest/stream throughput swing must not trip the gate, got: %v", regs)
	}

	// Served path 20% slower relative to dense: beyond the 10% budget.
	slow := compareFixture()
	slow.Results[7].ImagesPerSec *= 0.8
	regs := CompareDetectBench(base, slow, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "served-detect/sparse") {
		t.Errorf("injected served-detect slowdown not caught: %v", regs)
	}

	// JPEG ingest starts allocating again: hard failure.
	alloc := compareFixture()
	alloc.Results[2].AllocsPerImage = 4
	regs = CompareDetectBench(base, alloc, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "decode-jpeg/ingest") || !strings.Contains(regs[0], "allocs") {
		t.Errorf("injected ingest allocation not caught: %v", regs)
	}

	// The streaming serving path starts allocating well beyond its
	// baseline: hard failure, like ingest but with pool-churn slack.
	streamAlloc := compareFixture()
	streamAlloc.Results[8].AllocsPerImage = base.Results[8].AllocsPerImage*1.25 + 9
	regs = CompareDetectBench(base, streamAlloc, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "stream-30fps/stream") || !strings.Contains(regs[0], "allocs") {
		t.Errorf("injected stream allocation regression not caught: %v", regs)
	}

	// Deadline hit rate collapsing at the same GOMAXPROCS: the
	// scheduler or the session layer is sitting on frames.
	late := compareFixture()
	late.Results[8].DeadlineHitRate = 0.85
	regs = CompareDetectBench(base, late, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "hit rate") {
		t.Errorf("injected hit-rate regression not caught: %v", regs)
	}

	// Different GOMAXPROCS: throughput ratios and the hit rate (a
	// capacity ratio) are incomparable and must be skipped, but the
	// machine-independent alloc gates still fire.
	cross := compareFixture()
	cross.GOMAXPROCS = 4
	cross.Results[7].ImagesPerSec *= 0.5
	cross.Results[0].AllocsPerImage = 7
	cross.Results[8].DeadlineHitRate = 0.1
	regs = CompareDetectBench(base, cross, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "decode-ppm/ingest") {
		t.Errorf("cross-machine compare: want only the alloc failure, got: %v", regs)
	}

	// A scenario vanishing from the report is itself a failure.
	missing := compareFixture()
	missing.Results = missing.Results[:8]
	regs = CompareDetectBench(base, missing, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Errorf("dropped scenario not caught: %v", regs)
	}
}

// TestReadDetectBenchJSONRoundTrip pins the artifact format the gate
// consumes to the one WriteJSON emits.
func TestReadDetectBenchJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	base := compareFixture()
	if err := base.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDetectBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := CompareDetectBench(base, got, 0.10); len(regs) != 0 {
		t.Errorf("round-tripped report fails its own gate: %v", regs)
	}
	if len(got.Results) != len(base.Results) || got.GOMAXPROCS != base.GOMAXPROCS {
		t.Errorf("round trip lost fields: %+v", got)
	}
}

// TestDetectBenchRegressionGate is the CI entry point: with
// RTOSS_DETECT_BENCH_BASELINE naming the committed BENCH_PR8.json and
// RTOSS_DETECT_BENCH_CURRENT the freshly emitted report, it fails on
// any regression CompareDetectBench finds.
func TestDetectBenchRegressionGate(t *testing.T) {
	basePath := os.Getenv("RTOSS_DETECT_BENCH_BASELINE")
	curPath := os.Getenv("RTOSS_DETECT_BENCH_CURRENT")
	if basePath == "" || curPath == "" {
		t.Skip("set RTOSS_DETECT_BENCH_BASELINE and RTOSS_DETECT_BENCH_CURRENT to run the regression gate")
	}
	base, err := ReadDetectBenchJSON(basePath)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ReadDetectBenchJSON(curPath)
	if err != nil {
		t.Fatal(err)
	}
	regs := CompareDetectBench(base, cur, DefaultDetectBenchTolerance)
	for _, r := range regs {
		t.Error(r)
	}
	if len(regs) == 0 {
		t.Logf("bench gate clean: %d scenarios vs %s", len(base.Results), basePath)
	}
}
