package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"rtoss/internal/tensor"
)

// client.go is the consumer side of the /detect wire protocol: a small
// HTTP client that encodes an image tensor, posts it, and decodes the
// DetectResponse the handler produced. The evaluation harness drives
// mAP runs through it, so a served stack is scored over the exact
// bytes a real caller would exchange.

// DefaultClientTimeout bounds one request when neither Client.Timeout
// nor a context deadline narrows it. 60 s accommodates a cold zoo-scale
// forward pass at high resolution while still surfacing dead hosts.
const DefaultClientTimeout = 60 * time.Second

// maxErrBodyDrain caps how much of an oversized error body the client
// reads to keep the connection reusable; anything larger is cheaper to
// abandon (closing the connection) than to download.
const maxErrBodyDrain = 1 << 20

// Client calls a running detection server's /detect endpoint.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides the default client when set. The default
	// shares one keep-alive transport across all Clients so failover
	// retries reuse warm connections.
	HTTPClient *http.Client
	// Timeout bounds one request when no context deadline is tighter
	// (zero = DefaultClientTimeout). Loadtest callers set it well below
	// the default so a dead shard is detected at traffic speed;
	// long-haul callers may raise it. The bound is applied per call via
	// a context deadline, so it composes with DetectBytesContext.
	Timeout time.Duration
	// Score and IoU are optional threshold overrides sent as query
	// parameters; zero leaves the server's configured defaults.
	Score, IoU float64
}

// defaultHTTPClient carries no client-level timeout of its own: request
// lifetimes are bounded per call by a context deadline (Client.Timeout
// or the caller's context), which keeps one shared keep-alive transport
// usable for both sub-second loadtest probes and minute-long cold
// forwards.
var defaultHTTPClient = &http.Client{}

// httpClient returns the effective underlying client.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// timeout returns the effective per-request budget.
func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultClientTimeout
}

// detectURL assembles the /detect request URL with threshold overrides.
func (c *Client) detectURL() (string, error) {
	u, err := url.Parse(c.BaseURL)
	if err != nil {
		return "", fmt.Errorf("serve: client base URL %q: %w", c.BaseURL, err)
	}
	u = u.JoinPath("detect")
	q := u.Query()
	if c.Score > 0 {
		q.Set("score", strconv.FormatFloat(c.Score, 'g', -1, 64))
	}
	if c.IoU > 0 {
		q.Set("iou", strconv.FormatFloat(c.IoU, 'g', -1, 64))
	}
	u.RawQuery = q.Encode()
	return u.String(), nil
}

// drainBody consumes what remains of a response body so the underlying
// keep-alive connection returns to the transport's idle pool instead of
// being torn down — under failover retries a torn-down connection per
// error turns every retry into a fresh TCP+handshake. Bodies larger
// than maxErrBodyDrain are left unread (closing is cheaper then).
func drainBody(body io.Reader) {
	io.Copy(io.Discard, io.LimitReader(body, maxErrBodyDrain))
}

// DetectBytes posts an already-encoded image (PPM/PGM/PNG/JPEG bytes)
// to /detect and decodes the response, bounded by Client.Timeout.
func (c *Client) DetectBytes(img []byte) (*DetectResponse, error) {
	return c.DetectBytesContext(context.Background(), img)
}

// DetectBytesContext is DetectBytes under a caller context: the request
// is cancelled at the earlier of the context's deadline and
// Client.Timeout. Non-2xx statuses become errors carrying the server's
// message. bytes.Reader bodies carry a Content-Length, so the server
// reads them into an exactly-sized pooled buffer instead of
// growth-copying.
func (c *Client) DetectBytesContext(ctx context.Context, img []byte) (*DetectResponse, error) {
	u, err := c.detectURL()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(img))
	if err != nil {
		return nil, fmt.Errorf("serve: building /detect request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: POST /detect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		// Error bodies can exceed the 1KB we surface; drain the rest so
		// the connection is reused — the failover path hits this for
		// every 5xx and must not leak a dying connection per retry.
		drainBody(resp.Body)
		return nil, fmt.Errorf("serve: /detect returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var out DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decoding /detect response: %w", err)
	}
	// The decoder stops at the end of the JSON value; the handler's
	// trailing newline (and any future framing) would otherwise strand
	// the connection out of the idle pool.
	drainBody(resp.Body)
	return &out, nil
}

// Detect encodes a [3, H, W] image tensor as PPM and posts it to
// /detect. Note PPM is 8 bits per channel: callers comparing against an
// in-process pipeline must quantise their reference image the same way
// (encode + decode once) or the network inputs will differ.
func (c *Client) Detect(img *tensor.Tensor) (*DetectResponse, error) {
	var buf bytes.Buffer
	if img.Rank() == 3 {
		// Size the buffer for the binary payload plus a generous header
		// up front: EncodePPM then writes bytes straight into it (no
		// bufio shim, no growth copies — the body is built exactly once).
		buf.Grow(img.Dim(0)*img.Dim(1)*img.Dim(2) + 32)
	}
	if err := tensor.EncodePPM(&buf, img); err != nil {
		return nil, err
	}
	return c.DetectBytes(buf.Bytes())
}
