package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"rtoss/internal/tensor"
)

// client.go is the consumer side of the /detect wire protocol: a small
// HTTP client that encodes an image tensor, posts it, and decodes the
// DetectResponse the handler produced. The evaluation harness drives
// mAP runs through it, so a served stack is scored over the exact
// bytes a real caller would exchange.

// Client calls a running detection server's /detect endpoint.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides the default client (60 s timeout) when
	// set. The default is deliberately finite so an evaluation run
	// against a dead host fails instead of hanging forever.
	HTTPClient *http.Client
	// Score and IoU are optional threshold overrides sent as query
	// parameters; zero leaves the server's configured defaults.
	Score, IoU float64
}

// defaultHTTPClient bounds request lifetimes when the caller does not
// supply a client. 60 s accommodates a cold zoo-scale forward pass at
// high resolution while still surfacing dead hosts.
var defaultHTTPClient = &http.Client{Timeout: 60 * time.Second}

// httpClient returns the effective underlying client.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// detectURL assembles the /detect request URL with threshold overrides.
func (c *Client) detectURL() (string, error) {
	u, err := url.Parse(c.BaseURL)
	if err != nil {
		return "", fmt.Errorf("serve: client base URL %q: %w", c.BaseURL, err)
	}
	u = u.JoinPath("detect")
	q := u.Query()
	if c.Score > 0 {
		q.Set("score", strconv.FormatFloat(c.Score, 'g', -1, 64))
	}
	if c.IoU > 0 {
		q.Set("iou", strconv.FormatFloat(c.IoU, 'g', -1, 64))
	}
	u.RawQuery = q.Encode()
	return u.String(), nil
}

// DetectBytes posts an already-encoded image (PPM/PGM/PNG/JPEG bytes)
// to /detect and decodes the response. Non-2xx statuses become errors
// carrying the server's message. bytes.Reader bodies carry a
// Content-Length, so the server reads them into an exactly-sized pooled
// buffer instead of growth-copying.
func (c *Client) DetectBytes(img []byte) (*DetectResponse, error) {
	u, err := c.detectURL()
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Post(u, "application/octet-stream", bytes.NewReader(img))
	if err != nil {
		return nil, fmt.Errorf("serve: POST /detect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("serve: /detect returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var out DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decoding /detect response: %w", err)
	}
	return &out, nil
}

// Detect encodes a [3, H, W] image tensor as PPM and posts it to
// /detect. Note PPM is 8 bits per channel: callers comparing against an
// in-process pipeline must quantise their reference image the same way
// (encode + decode once) or the network inputs will differ.
func (c *Client) Detect(img *tensor.Tensor) (*DetectResponse, error) {
	var buf bytes.Buffer
	if img.Rank() == 3 {
		// Size the buffer for the binary payload plus a generous header
		// up front: EncodePPM then writes bytes straight into it (no
		// bufio shim, no growth copies — the body is built exactly once).
		buf.Grow(img.Dim(0)*img.Dim(1)*img.Dim(2) + 32)
	}
	if err := tensor.EncodePPM(&buf, img); err != nil {
		return nil, err
	}
	return c.DetectBytes(buf.Bytes())
}
