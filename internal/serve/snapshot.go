package serve

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"rtoss/internal/engine"
	"rtoss/internal/nn"
)

// snapshot.go is the warm Program handoff: a shard that has already
// paid the multi-second prune for a model variant serves the resulting
// weights as a gob snapshot (GET /program), and a late-joining shard
// installs the snapshot instead of re-pruning. Only the immutable
// inputs of Compile travel — the pruned model and the dispatch mode —
// so the receiver recompiles its kernels locally (cheap, deterministic)
// and the two shards end up with bitwise-identical Programs.

// SnapshotContentType is the media type of a Program snapshot body.
const SnapshotContentType = "application/x-rtoss-program"

// maxSnapshotBytes bounds a fetched snapshot (weights of the zoo models
// are tens of MB; 1 GiB is far above any legitimate model).
const maxSnapshotBytes = 1 << 30

// programSnapshot is the gob wire form of a compiled Program: gob
// resolves the layer graph and weight tensors (tensor.Tensor implements
// GobEncoder) without a custom codec per layer kind.
type programSnapshot struct {
	Key   string // Key.String(), echoed for sanity checking
	Mode  engine.Mode
	Model *nn.Model
}

// EncodeSnapshot serialises a Program's immutable inputs for handoff.
func EncodeSnapshot(k Key, prog *engine.Program) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(programSnapshot{Key: k.String(), Mode: prog.Mode(), Model: prog.Model()}); err != nil {
		return nil, fmt.Errorf("serve: encoding %v snapshot: %w", k, err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot reconstructs a Program from a snapshot: the model is
// validated and recompiled under the snapshot's mode. The expected key
// is checked against the snapshot's — installing shard A's YOLOv5s
// under shard B's RetinaNet slot must fail loudly, not serve garbage.
func DecodeSnapshot(k Key, data []byte) (*engine.Program, error) {
	var snap programSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("serve: decoding snapshot: %w", err)
	}
	if snap.Key != k.String() {
		return nil, fmt.Errorf("serve: snapshot is for %q, want %q", snap.Key, k)
	}
	if snap.Model == nil {
		return nil, fmt.Errorf("serve: snapshot for %q carries no model", snap.Key)
	}
	if err := snap.Model.Validate(); err != nil {
		return nil, fmt.Errorf("serve: snapshot model: %w", err)
	}
	return engine.Compile(snap.Model, engine.Options{Mode: snap.Mode})
}

// FetchSnapshot downloads a peer's Program snapshot for a key
// (GET <baseURL>/program?key=...) and compiles it. timeout bounds the
// whole fetch (zero = DefaultClientTimeout).
func FetchSnapshot(ctx context.Context, baseURL string, k Key, timeout time.Duration) (*engine.Program, error) {
	if timeout <= 0 {
		timeout = DefaultClientTimeout
	}
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot base URL %q: %w", baseURL, err)
	}
	u = u.JoinPath("program")
	q := u.Query()
	q.Set("key", k.String())
	u.RawQuery = q.Encode()
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := defaultHTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: fetching snapshot from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		drainBody(resp.Body)
		return nil, fmt.Errorf("serve: snapshot fetch returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes))
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshot body: %w", err)
	}
	return DecodeSnapshot(k, data)
}

// handleSnapshot answers GET /program with the gob snapshot of the
// handler's Program. The ?key= parameter (when present) must match the
// served key — a router proxying handoffs relies on the mismatch being
// a 404, so the requester falls back to a cold build instead of
// compiling the wrong model.
func handleSnapshot(w http.ResponseWriter, r *http.Request, k Key, prog *engine.Program) {
	if want := r.URL.Query().Get("key"); want != "" && want != k.String() {
		http.Error(w, fmt.Sprintf("serve: this shard serves %q, not %q", k, want), http.StatusNotFound)
		return
	}
	data, err := EncodeSnapshot(k, prog)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", SnapshotContentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.Write(data)
}
