package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"rtoss/internal/detect"
	"rtoss/internal/tensor"
)

// detect_race_test.go stresses the detection endpoint under real
// concurrency (this package runs under -race in CI): many goroutines
// POST /detect against one shared Server with mixed threshold
// overrides, so the handler's per-request config copy, the co-batched
// heads path and the stats counters all get exercised at once.

// samplePPM encodes a deterministic non-square test image once.
func samplePPM(t testing.TB) []byte {
	t.Helper()
	img := tensor.New(3, 24, 48)
	for i := range img.Data {
		img.Data[i] = float32(i%23) / 23
	}
	var buf bytes.Buffer
	if err := tensor.EncodePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConcurrentDetectRequests drives one shared Server with parallel
// /detect POSTs using a mix of ?score/?iou overrides. Every response
// must be well-formed, and requests with the same override must agree
// with each other (the per-request config copy may not leak across
// requests).
func TestConcurrentDetectRequests(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{MaxBatch: 4, Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{
		InputC: 3, InputH: 32, InputW: 32,
		Detect: &detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05},
		Labels: []string{"car", "pedestrian"},
	}))
	defer ts.Close()
	ppm := samplePPM(t)

	queries := []string{"", "?score=0.05", "?score=0.5", "?iou=0.9", "?score=0.05&iou=0.2"}
	const rounds = 4
	type result struct {
		query string
		resp  DetectResponse
	}
	results := make([]result, len(queries)*rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for qi, q := range queries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/detect"+q, "application/octet-stream", bytes.NewReader(ppm))
				if err != nil {
					t.Errorf("%q: %v", q, err)
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%q: status %d", q, resp.StatusCode)
					return
				}
				var body DetectResponse
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
					t.Errorf("%q: %v", q, err)
					return
				}
				results[i] = result{query: q, resp: body}
			}(r*len(queries)+qi, q)
		}
	}
	wg.Wait()

	// Group responses by query: all rounds of one query must agree
	// exactly; the no-override and low-threshold queries must see at
	// least as many boxes as the high-threshold one.
	byQuery := map[string][]DetectResponse{}
	for _, r := range results {
		byQuery[r.query] = append(byQuery[r.query], r.resp)
	}
	for q, rs := range byQuery {
		if len(rs) != rounds {
			t.Fatalf("%q: %d results, want %d", q, len(rs), rounds)
		}
		for i := 1; i < rounds; i++ {
			if rs[i].Count != rs[0].Count {
				t.Errorf("%q: round %d returned %d detections, round 0 %d — override leaked across requests",
					q, i, rs[i].Count, rs[0].Count)
			}
			for j := range rs[i].Detections {
				if rs[i].Detections[j] != rs[0].Detections[j] {
					t.Errorf("%q: round %d detection %d differs from round 0", q, i, j)
				}
			}
		}
		if rs[0].Image.Width != 48 || rs[0].Image.Height != 24 {
			t.Errorf("%q: image %dx%d, want 48x24", q, rs[0].Image.Width, rs[0].Image.Height)
		}
	}
	if strict, loose := byQuery["?score=0.5"][0].Count, byQuery["?score=0.05"][0].Count; strict > loose {
		t.Errorf("score=0.5 returned %d detections but score=0.05 only %d", strict, loose)
	}
	if st := s.Stats(); st.Errors != 0 {
		t.Errorf("server recorded %d errors under concurrent /detect", st.Errors)
	}
}

// TestDetectHandlerErrorPaths is the table-driven contract of the
// endpoint's failure modes: threshold overrides outside (0, 1] and
// undecodable bodies are 400s, and a saturated queue is a 503 when
// load shedding is on.
func TestDetectHandlerErrorPaths(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{
		InputC: 3, InputH: 32, InputW: 32,
		Detect: &detect.Config{Spec: tinySpec()},
	}))
	defer ts.Close()
	ppm := samplePPM(t)

	cases := []struct {
		name  string
		query string
		body  []byte
		want  int
	}{
		{"ok", "", ppm, http.StatusOK},
		{"score zero", "?score=0", ppm, http.StatusBadRequest},
		{"score negative", "?score=-0.5", ppm, http.StatusBadRequest},
		{"score above one", "?score=1.5", ppm, http.StatusBadRequest},
		{"score not a number", "?score=wat", ppm, http.StatusBadRequest},
		{"score infinity", "?score=Inf", ppm, http.StatusBadRequest},
		{"iou zero", "?iou=0", ppm, http.StatusBadRequest},
		{"iou above one", "?iou=1.0001", ppm, http.StatusBadRequest},
		{"iou garbage", "?iou=%23", ppm, http.StatusBadRequest},
		{"empty body", "", nil, http.StatusBadRequest},
		{"garbage body", "", []byte("definitely not an image"), http.StatusBadRequest},
		{"truncated ppm", "", ppm[:20], http.StatusBadRequest},
		{"hostile dims", "", []byte("P6\n999999999 999999999\n255\n"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/detect"+tc.query, "application/octet-stream", bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestDetectShedsLoadWith503 saturates a server whose workers never
// started (internal construction, as TestTryInferShedsLoad does) and
// checks the shedding handler maps the full queue to 503 for both
// endpoints — the contract a load balancer retries on.
func TestDetectShedsLoadWith503(t *testing.T) {
	p := tinyProgram(t)
	s := &Server{prog: p, cfg: Config{QueueCap: 1}.withDefaults(), queue: make(chan *request, 1)}
	s.queue <- &request{} // saturate; no worker will ever drain this
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{
		InputC: 3, InputH: 32, InputW: 32,
		Detect:   &detect.Config{Spec: tinySpec()},
		ShedLoad: true,
	}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/detect", "application/octet-stream", bytes.NewReader(samplePPM(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/detect on a full queue: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/infer", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/infer on a full queue: status %d, want 503", resp.StatusCode)
	}
	if st := s.Stats(); st.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", st.Rejected)
	}
}

// TestClientRoundTrip drives serve.Client against a live handler and
// cross-checks the decoded response against the library pipeline —
// the client the evaluation harness scores mAP through.
func TestClientRoundTrip(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	defer s.Close()
	cfg := &detect.Config{Spec: tinySpec(), ScoreThreshold: 0.2}
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{
		InputC: 3, InputH: 32, InputW: 32,
		Detect: cfg,
		Labels: []string{"car", "pedestrian"},
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Score: 0.05}
	ppm := samplePPM(t)
	resp, err := c.DetectBytes(ppm)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(resp.Detections) {
		t.Errorf("count %d != %d detections", resp.Count, len(resp.Detections))
	}

	// Reference: the in-process pipeline at the client's override.
	img, err := tensor.DecodeImage(bytes.NewReader(ppm))
	if err != nil {
		t.Fatal(err)
	}
	canvas, meta := tensor.LetterboxImage(img, 32, 32, tensor.LetterboxFill)
	heads, err := p.Heads(canvas.Reshape(1, 3, 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	pipe := *cfg
	pipe.ScoreThreshold = 0.05
	want, err := detect.Postprocess(heads, meta, pipe)
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Boxes()
	if len(got) != len(want) {
		t.Fatalf("client decoded %d detections, pipeline produced %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("detection %d: client %+v != pipeline %+v (JSON round trip must be exact)", i, got[i], want[i])
		}
	}

	// Error surfaces carry the server's message.
	if _, err := c.DetectBytes([]byte("garbage")); err == nil {
		t.Error("garbage body did not error through the client")
	} else if want := "400"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("client error %q does not mention the %s status", err, want)
	}
	bad := &Client{BaseURL: "http://127.0.0.1:1", Score: 0.5}
	if _, err := bad.DetectBytes(ppm); err == nil {
		t.Error("unreachable server did not error")
	}
	malformed := &Client{BaseURL: "://nope"}
	if _, err := malformed.DetectBytes(ppm); err == nil {
		t.Error("malformed base URL did not error")
	}
}
