package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/tensor"
)

// tinySpec matches tinyProgram's 14-channel head: 2 anchors x (5 + 2
// classes) at the model's stride-4 output grid.
func tinySpec() detect.HeadSpec {
	return detect.HeadSpec{
		Kind:    detect.HeadYOLOv5,
		Classes: 2,
		Levels:  []detect.HeadLevel{{Stride: 4, Anchors: [][2]float64{{8, 8}, {16, 16}}}},
	}
}

// TestInferHeadsMatchesDirect checks the served heads path returns what
// a direct Program.Heads call computes, and that heads and plain Infer
// co-exist on one server.
func TestInferHeadsMatchesDirect(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	defer s.Close()

	in := testImage(31)
	heads, err := s.InferHeads(in)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := p.Heads(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) != len(direct) {
		t.Fatalf("served %d heads, direct %d", len(heads), len(direct))
	}
	for i := range heads {
		if d := maxAbsDiff(heads[i], direct[i]); d > 1e-5 {
			t.Errorf("head %d: served differs from direct by %g", i, d)
		}
	}
	// Plain Infer still matches the final output on the same server.
	out, err := s.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Output(in)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(out, want); d > 1e-5 {
		t.Errorf("Infer differs from direct Output by %g", d)
	}
}

// TestHTTPDetect drives POST /detect end to end with a PPM body and
// cross-checks the response against the library pipeline.
func TestHTTPDetect(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	defer s.Close()
	cfg := &detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05}
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{
		InputC: 3, InputH: 32, InputW: 32,
		Detect: cfg,
		Labels: []string{"car", "pedestrian"},
	}))
	defer ts.Close()

	// A deterministic non-square source image exercises letterboxing.
	img := tensor.New(3, 24, 48)
	for i := range img.Data {
		img.Data[i] = float32(i%17) / 17
	}
	var ppm bytes.Buffer
	if err := tensor.EncodePPM(&ppm, img); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/detect", "image/x-portable-pixmap", bytes.NewReader(ppm.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var got struct {
		Detections []struct {
			Box   []float64 `json:"box"`
			Class int       `json:"class"`
			Label string    `json:"label"`
			Score float64   `json:"score"`
		} `json:"detections"`
		Count    int `json:"count"`
		Image    map[string]int
		TimingMS map[string]float64 `json:"timing_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Image["width"] != 48 || got.Image["height"] != 24 {
		t.Errorf("image dims = %v, want 48x24", got.Image)
	}
	if got.Count != len(got.Detections) {
		t.Errorf("count %d != len(detections) %d", got.Count, len(got.Detections))
	}
	for _, k := range []string{"ingest", "preprocess", "forward", "decode", "total"} {
		if _, ok := got.TimingMS[k]; !ok {
			t.Errorf("timing_ms missing %q", k)
		}
	}

	// Cross-check against the library pipeline on the decoded image.
	decoded, err := tensor.DecodeImage(bytes.NewReader(ppm.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	canvas, meta := tensor.LetterboxImage(decoded, 32, 32, tensor.LetterboxFill)
	heads, err := p.Heads(canvas.Reshape(1, 3, 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	want, err := detect.Postprocess(heads, meta, *cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != got.Count {
		t.Fatalf("served %d detections, library pipeline %d", got.Count, len(want))
	}
	for i, d := range got.Detections {
		w := want[i]
		if d.Class != w.Class {
			t.Errorf("det %d class %d, want %d", i, d.Class, w.Class)
		}
		if diff := d.Score - w.Score; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("det %d score %v, want %v", i, d.Score, w.Score)
		}
		for j, v := range []float64{w.Box.X1, w.Box.Y1, w.Box.X2, w.Box.Y2} {
			if diff := d.Box[j] - v; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("det %d box[%d] = %v, want %v", i, j, d.Box[j], v)
			}
		}
		if d.Class < 2 && d.Label == "" {
			t.Errorf("det %d has no label", i)
		}
	}

	// Garbage body is a 400.
	resp, err = http.Post(ts.URL+"/detect", "image/png", bytes.NewReader([]byte("not an image")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage image: status %d, want 400", resp.StatusCode)
	}

	// Bad threshold overrides are 400s — including an explicit 0, which
	// detect.Config cannot distinguish from "use the default".
	for _, q := range []string{"score=wat", "score=0", "iou=1.5"} {
		resp, err = http.Post(ts.URL+"/detect?"+q, "image/x-portable-pixmap", bytes.NewReader(ppm.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestHTTPDetectDisabled: without a Detect config the endpoint 404s.
func TestHTTPDetectDisabled(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{InputC: 3, InputH: 32, InputW: 32}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/detect", "image/png", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled /detect: status %d, want 404", resp.StatusCode)
	}
}

// TestServerDetectMatchesPipeline checks the batched detection path —
// encoded bytes through Server.Detect, preprocess+forward+postprocess
// on the executors — returns exactly what the library pipeline
// computes, and that the per-stage stats counters advance.
func TestServerDetectMatchesPipeline(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	defer s.Close()
	pipe := detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05}

	img := tensor.New(3, 24, 48)
	for i := range img.Data {
		img.Data[i] = float32(i%13) / 13
	}
	var ppm bytes.Buffer
	if err := tensor.EncodePPM(&ppm, img); err != nil {
		t.Fatal(err)
	}

	res, err := s.Detect(ppm.Bytes(), pipe, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.SrcW != 48 || res.SrcH != 24 {
		t.Errorf("source dims = %dx%d, want 48x24", res.SrcW, res.SrcH)
	}
	if res.Timing.Preprocess <= 0 || res.Timing.Forward <= 0 || res.Timing.Decode <= 0 {
		t.Errorf("incomplete timing breakdown: %+v", res.Timing)
	}

	// The library pipeline on the decoded bytes must agree bitwise.
	decoded, err := tensor.DecodeImage(bytes.NewReader(ppm.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	canvas, meta := tensor.LetterboxImage(decoded, 32, 32, tensor.LetterboxFill)
	heads, err := p.Heads(canvas.Reshape(1, 3, 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	want, err := detect.Postprocess(heads, meta, pipe)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) != len(want) {
		t.Fatalf("served %d detections, library %d", len(res.Detections), len(want))
	}
	for i := range want {
		if res.Detections[i] != want[i] {
			t.Errorf("det %d: served %+v != library %+v", i, res.Detections[i], want[i])
		}
	}
	for i := 1; i < len(res.Detections); i++ {
		if res.Detections[i].Score > res.Detections[i-1].Score {
			t.Errorf("det %d breaks the descending-score contract", i)
		}
	}

	st := s.Stats()
	if st.Detects != 1 {
		t.Errorf("stats detects = %d, want 1", st.Detects)
	}
	if st.Candidates == 0 || st.Boxes != uint64(len(res.Detections)) {
		t.Errorf("stats candidates=%d boxes=%d, want >0 and %d", st.Candidates, st.Boxes, len(res.Detections))
	}
	if st.AvgPreprocess <= 0 || st.AvgDecode <= 0 || st.AvgNMS <= 0 {
		t.Errorf("per-stage averages missing: %+v", st)
	}
}

// TestServerDetectValidation pins the request-validation and bad-image
// error paths of the batched detection entry points.
func TestServerDetectValidation(t *testing.T) {
	p := tinyProgram(t)
	s := NewServer(p, Config{})
	defer s.Close()

	if _, err := s.Detect([]byte("x"), detect.Config{}, 32, 32); err == nil {
		t.Error("Detect without a head spec accepted")
	}
	pipe := detect.Config{Spec: tinySpec()}
	if _, err := s.Detect([]byte("x"), pipe, 30, 32); err == nil {
		t.Error("resolution 30 (not a multiple of the stride-4 head) accepted")
	}
	if _, err := s.Detect([]byte("not an image"), pipe, 32, 32); !errors.Is(err, ErrBadImage) {
		t.Errorf("garbage bytes: err = %v, want ErrBadImage", err)
	}
	// A bad image in a batch must not fail its neighbours: mix one
	// garbage request with valid ones under a single slow worker.
	srv := NewServer(p, Config{MaxBatch: 8, MaxDelay: 50 * time.Millisecond, Workers: 1})
	defer srv.Close()
	img := tensor.New(3, 16, 16)
	var ppm bytes.Buffer
	if err := tensor.EncodePPM(&ppm, img); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := ppm.Bytes()
			if i == 2 {
				body = []byte("garbage")
			}
			_, errs[i] = srv.Detect(body, pipe, 32, 32)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if i == 2 {
			if !errors.Is(err, ErrBadImage) {
				t.Errorf("garbage request: err = %v, want ErrBadImage", err)
			}
		} else if err != nil {
			t.Errorf("valid request %d failed alongside a garbage one: %v", i, err)
		}
	}
	// After Close, Detect and TryDetect reject like the other verbs.
	srv2 := NewServer(p, Config{})
	srv2.Close()
	if _, err := srv2.Detect(ppm.Bytes(), pipe, 32, 32); !errors.Is(err, ErrClosed) {
		t.Errorf("Detect after Close = %v, want ErrClosed", err)
	}
	if _, err := srv2.TryDetect(ppm.Bytes(), pipe, 32, 32); !errors.Is(err, ErrClosed) {
		t.Errorf("TryDetect after Close = %v, want ErrClosed", err)
	}
}

// BenchmarkServerDetect measures the batched detection path end to end
// on the tiny detector: encoded PPM bytes in, boxes out, through the
// micro-batching queue.
func BenchmarkServerDetect(b *testing.B) {
	p := tinyProgram(b)
	s := NewServer(p, Config{})
	defer s.Close()
	pipe := detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05}
	img := tensor.New(3, 24, 48)
	for i := range img.Data {
		img.Data[i] = float32(i%13) / 13
	}
	var ppm bytes.Buffer
	if err := tensor.EncodePPM(&ppm, img); err != nil {
		b.Fatal(err)
	}
	body := ppm.Bytes()
	if _, err := s.Detect(body, pipe, 32, 32); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Detect(body, pipe, 32, 32); err != nil {
			b.Fatal(err)
		}
	}
}
