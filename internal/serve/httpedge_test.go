package serve

// httpedge_test.go covers the HTTP edge hardening: the client's
// keep-alive connection reuse across error responses (failover retries
// must not pay a fresh TCP handshake per 5xx) and readBody's refusal to
// trust a lying Content-Length.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rtoss/internal/detect"
)

// TestClientReusesConnectionsAcrossErrorResponses drives repeated
// requests against a server answering 503 with a body larger than the
// 1KB error excerpt the client surfaces. Before the drain fix the
// undrained remainder forced the transport to tear the connection down,
// so every retry dialled fresh; with the fix every request after the
// first rides the same connection.
func TestClientReusesConnectionsAcrossErrorResponses(t *testing.T) {
	big := strings.Repeat("shard overloaded; ", 300) // ~5.4KB > the 1KB excerpt
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		http.Error(w, big, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var dials atomic.Int64
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			return (&net.Dialer{}).DialContext(ctx, network, addr)
		},
	}
	defer tr.CloseIdleConnections()
	c := &Client{BaseURL: ts.URL, HTTPClient: &http.Client{Transport: tr}}

	const requests = 8
	for i := 0; i < requests; i++ {
		if _, err := c.DetectBytes([]byte("P6\n1 1\n255\nxyz")); err == nil {
			t.Fatal("expected an error from the 503 response")
		}
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("dialled %d times for %d sequential error responses, want 1 (connection not reused)", n, requests)
	}
}

// TestClientReusesConnectionsAcrossSuccesses pins the success path the
// same way: the JSON decoder stops at the end of the value, and the
// handler's trailing newline must be drained for the connection to
// return to the idle pool.
func TestClientReusesConnectionsAcrossSuccesses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"detections":[],"count":0,"image":{"width":1,"height":1},"timing_ms":{"ingest":0,"preprocess":0,"forward":0,"decode":0,"total":0}}`+"\n")
	}))
	defer ts.Close()

	var dials atomic.Int64
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			return (&net.Dialer{}).DialContext(ctx, network, addr)
		},
	}
	defer tr.CloseIdleConnections()
	c := &Client{BaseURL: ts.URL, HTTPClient: &http.Client{Transport: tr}}

	const requests = 8
	for i := 0; i < requests; i++ {
		if _, err := c.DetectBytes([]byte("img")); err != nil {
			t.Fatal(err)
		}
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("dialled %d times for %d sequential successes, want 1", n, requests)
	}
}

// TestClientTimeoutConfigurable pins the per-call-site timeout path: a
// client with a short Timeout must abandon a stalled server at roughly
// that budget instead of the 60 s default, and a caller context with an
// earlier deadline must win over a longer Timeout.
func TestClientTimeoutConfigurable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Stall until the client gives up. The body must be drained
		// first: the server only watches for client disconnect (and
		// cancels the request context) once the handler has consumed
		// the body, and ts.Close waits for this handler to return.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Timeout: 50 * time.Millisecond}
	start := time.Now()
	if _, err := c.DetectBytes([]byte("img")); err == nil {
		t.Fatal("expected a timeout error")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", el)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c2 := &Client{BaseURL: ts.URL, Timeout: time.Hour}
	start = time.Now()
	if _, err := c2.DetectBytesContext(ctx, []byte("img")); err == nil {
		t.Fatal("expected a context-deadline error")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("context deadline took %v, want ~50ms", el)
	}
}

// lyingBody serves raw bytes regardless of the request's declared
// Content-Length — the stand-in for plumbing that does not enforce the
// header the way Go's own server does.
type lyingBody struct{ io.Reader }

func (lyingBody) Close() error { return nil }

// TestReadBodyContentLengthHardening is the table-driven gate over
// readBody: a lying, oversized or negative Content-Length must never
// over-allocate, silently truncate, or silently pad.
func TestReadBodyContentLengthHardening(t *testing.T) {
	const limit = 1 << 10
	payload := bytes.Repeat([]byte{0xAB}, 64)
	cases := []struct {
		name     string
		decl     int64  // Content-Length the request declares
		body     []byte // bytes actually readable
		wantErr  bool
		wantHTTP int // expected bodyErrCode when wantErr
		wantLen  int // expected byte count when !wantErr
	}{
		{name: "honest", decl: 64, body: payload, wantLen: 64},
		{name: "empty honest", decl: 0, body: nil, wantLen: 0},
		{name: "unknown length (chunked)", decl: -1, body: payload, wantLen: 64},
		{name: "declares more than sent", decl: 128, body: payload, wantErr: true, wantHTTP: http.StatusBadRequest},
		{name: "declares fewer than sent", decl: 32, body: payload, wantErr: true, wantHTTP: http.StatusBadRequest},
		{name: "declares past the limit", decl: limit + 1, body: nil, wantErr: true, wantHTTP: http.StatusRequestEntityTooLarge},
		{name: "declares absurdly past the limit", decl: 1 << 40, body: nil, wantErr: true, wantHTTP: http.StatusRequestEntityTooLarge},
		{name: "chunked past the limit", decl: -1, body: bytes.Repeat([]byte{1}, limit+1), wantErr: true, wantHTTP: http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := &http.Request{
				Body:          lyingBody{bytes.NewReader(tc.body)},
				ContentLength: tc.decl,
			}
			bp, err := readBody(req, limit)
			if tc.wantErr {
				if err == nil {
					bufPool.Put(bp)
					t.Fatal("want error, got none")
				}
				if code := bodyErrCode(err); code != tc.wantHTTP {
					t.Fatalf("bodyErrCode(%v) = %d, want %d", err, code, tc.wantHTTP)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(*bp) != tc.wantLen {
				t.Fatalf("read %d bytes, want %d", len(*bp), tc.wantLen)
			}
			bufPool.Put(bp)
		})
	}
}

// TestDetectRejectsOversizedBodyOverHTTP pins the end-to-end status: a
// /detect body declared past maxImageBody answers 413, not 400.
func TestDetectRejectsOversizedBodyOverHTTP(t *testing.T) {
	s := NewServer(tinyProgram(t), Config{})
	defer s.Close()
	pipe := detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05}
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{
		InputC: 3, InputH: 32, InputW: 32, Detect: &pipe,
	}))
	defer ts.Close()

	// http.Transport refuses to send a body shorter than its declared
	// Content-Length, so the lying declaration goes over a raw socket.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /detect HTTP/1.1\r\nHost: rtoss\r\nContent-Length: %d\r\n\r\n", maxImageBody+1)
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized declaration answered %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}
