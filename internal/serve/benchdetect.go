package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image"
	"image/jpeg"
	"image/png"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/kitti"
	"rtoss/internal/models"
	"rtoss/internal/tensor"
)

// benchdetect.go measures the detection pipeline end to end: the
// pooled ingest stage (decode per format, letterbox) with steady-state
// allocation counts, the postprocess stage in isolation (decode ->
// TopK -> NMS -> un-letterbox on precomputed heads), the full image ->
// boxes pipeline under dense vs sparse kernels, and the served
// batched-detect path (encoded bytes through Server.Detect). The same
// harness backs `rtoss bench` and the CI JSON artifact
// (BENCH_PR8.json) — the perf trajectory record for the serving path,
// alongside the PR2 forward-pass bench. CompareDetectBench (see
// benchcompare.go) gates CI on the committed artifact.

// DetectBenchConfig parameterises RunDetectBench. Zero values select
// the defaults.
type DetectBenchConfig struct {
	Arch    string // "YOLOv5s" (default) or "RetinaNet"
	Entries int    // R-TOSS entry patterns for the sparse variant (default 3)
	Res     int    // square letterbox resolution (default 256)
	Streams int    // concurrent client streams for the served scenario (default 8)
	Images  int    // images per scenario (default 2*Streams)
}

func (c DetectBenchConfig) withDefaults() DetectBenchConfig {
	if c.Arch == "" {
		c.Arch = "YOLOv5s"
	}
	if c.Entries == 0 {
		c.Entries = 3
	}
	if c.Res <= 0 {
		c.Res = 256
	}
	if c.Streams <= 0 {
		c.Streams = 8
	}
	if c.Images <= 0 {
		c.Images = 2 * c.Streams
	}
	return c
}

// DetectBenchResult is one detection scenario's measurement.
type DetectBenchResult struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode"`
	Images       int     `json:"images"`
	Seconds      float64 `json:"seconds"`
	ImagesPerSec float64 `json:"images_per_sec"`
	// SpeedupVsDense is relative to the dense end-to-end scenario of
	// the same run (end-to-end scenarios only).
	SpeedupVsDense float64 `json:"speedup_vs_dense,omitempty"`
	AvgBatch       float64 `json:"avg_batch,omitempty"` // served scenario only
	// AllocsPerImage is the steady-state heap allocation count per
	// image. It is measured (and meaningful, including an explicit 0)
	// only for mode "ingest" and mode "stream" scenarios; elsewhere it
	// is absent.
	AllocsPerImage float64 `json:"allocs_per_image,omitempty"`
	// DeadlineHitRate and DropsPerSec are the timeliness counters of
	// mode "stream" scenarios (the paced streaming-serving bench that
	// internal/stream appends to this report); absent elsewhere.
	DeadlineHitRate float64 `json:"deadline_hit_rate,omitempty"`
	DropsPerSec     float64 `json:"drops_per_sec,omitempty"`
}

// DetectServeStats echoes the served scenario's per-stage postprocess
// counters from Server.Stats into the artifact.
type DetectServeStats struct {
	AvgBatch        float64 `json:"avg_batch"`
	AvgPreprocessMS float64 `json:"avg_preprocess_ms"`
	AvgDecodeMS     float64 `json:"avg_decode_ms"`
	AvgNMSMS        float64 `json:"avg_nms_ms"`
	Candidates      uint64  `json:"candidates"`
	Boxes           uint64  `json:"boxes"`
}

// DetectBenchReport is the full output of one RunDetectBench call — the
// BENCH_PR8.json artifact format (a superset of the PR5 shape: the
// ingest scenarios and their allocation counts are new).
type DetectBenchReport struct {
	Model      string              `json:"model"`
	Variant    string              `json:"variant"`
	Res        int                 `json:"res"`
	Streams    int                 `json:"streams"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Results    []DetectBenchResult `json:"results"`
	Server     *DetectServeStats   `json:"server,omitempty"`
}

// RunDetectBench builds the dense and pruned Programs through a
// Registry and measures four detection scenarios: the postprocess
// stage alone on precomputed sparse heads, the end-to-end image ->
// boxes pipeline under dense and sparse kernels, and concurrent
// streams of encoded images through the micro-batching Server.Detect
// path.
func RunDetectBench(cfg DetectBenchConfig) (*DetectBenchReport, error) {
	cfg = cfg.withDefaults()
	reg := NewRegistry()
	dense, err := reg.Program(Key{Arch: cfg.Arch, Variant: "dense", Mode: engine.ModeDense})
	if err != nil {
		return nil, err
	}
	variant := fmt.Sprintf("rtoss-%dep", cfg.Entries)
	sparse, err := reg.Program(Key{Arch: cfg.Arch, Variant: variant, Mode: engine.ModeSparse})
	if err != nil {
		return nil, err
	}
	spec, err := models.HeadByName(cfg.Arch, models.KITTIClasses)
	if err != nil {
		return nil, err
	}
	pipe := detect.Config{Spec: spec}
	if cfg.Res%spec.MaxStride() != 0 {
		return nil, fmt.Errorf("serve: detect bench resolution %d must be a multiple of the head stride %d", cfg.Res, spec.MaxStride())
	}

	// Deterministic KITTI-aspect scenes: the raw tensors feed the
	// in-process scenarios, the encoded bytes the ingest and served
	// ones (PPM, plus PNG/JPEG re-encodes for the per-format decoders).
	rendered := kitti.RenderedDataset(0xb0c5, cfg.Images, 2*cfg.Res, cfg.Res)
	imgs := make([]*tensor.Tensor, len(rendered))
	ppms := make([][]byte, len(rendered))
	pngs := make([][]byte, len(rendered))
	jpgs := make([][]byte, len(rendered))
	for i, rs := range rendered {
		imgs[i] = rs.Image
		var buf bytes.Buffer
		if err := tensor.EncodePPM(&buf, rs.Image); err != nil {
			return nil, err
		}
		ppms[i] = buf.Bytes()
		nrgba := tensorNRGBA(rs.Image)
		var pb, jb bytes.Buffer
		if err := png.Encode(&pb, nrgba); err != nil {
			return nil, err
		}
		pngs[i] = pb.Bytes()
		if err := jpeg.Encode(&jb, nrgba, &jpeg.Options{Quality: 95}); err != nil {
			return nil, err
		}
		jpgs[i] = jb.Bytes()
	}

	rep := &DetectBenchReport{
		Model: cfg.Arch, Variant: variant,
		Res: cfg.Res, Streams: cfg.Streams,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Ingest scenarios: the pooled Into-decoders per format, and the
	// cached-table letterbox, each with steady-state allocs per image.
	// These run before the server exists so no background goroutine
	// pollutes the allocation counters.
	var scratch *tensor.Tensor
	decodeSet := func(set [][]byte) func() error {
		return func() error {
			for _, b := range set {
				img, err := tensor.DecodeImageInto(scratch, b)
				if err != nil {
					return err
				}
				scratch = img
			}
			return nil
		}
	}
	for _, sc := range []struct {
		name string
		set  [][]byte
	}{
		{"decode-ppm", ppms},
		{"decode-png", pngs},
		{"decode-jpeg", jpgs},
	} {
		sec, rounds, allocs, err := measureIngest(decodeSet(sc.set))
		if err != nil {
			return nil, err
		}
		i := rep.add(sc.name, "ingest", rounds*cfg.Images, sec, 0)
		rep.Results[i].AllocsPerImage = allocs / float64(cfg.Images)
	}
	var canvas *tensor.Tensor
	sec, rounds, allocs, err := measureIngest(func() error {
		for _, img := range imgs {
			c, _ := tensor.LetterboxImageInto(canvas, img, cfg.Res, cfg.Res, tensor.LetterboxFill)
			canvas = c
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	i := rep.add("letterbox", "ingest", rounds*cfg.Images, sec, 0)
	rep.Results[i].AllocsPerImage = allocs / float64(cfg.Images)

	// End-to-end pipeline: letterbox -> heads -> pooled postprocess.
	e2e := func(p *engine.Program) (float64, error) {
		var dst []detect.Detection
		start := time.Now()
		for _, img := range imgs {
			canvas, meta := tensor.LetterboxImage(img, cfg.Res, cfg.Res, tensor.LetterboxFill)
			heads, err := p.Heads(canvas.Reshape(1, canvas.Dim(0), canvas.Dim(1), canvas.Dim(2)))
			if err != nil {
				return 0, err
			}
			if dst, err = detect.PostprocessInto(dst[:0], heads, meta, pipe); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}

	// Warm up both programs (and the postprocess pools) off the clock.
	if _, err := e2e(dense); err != nil {
		return nil, err
	}
	if _, err := e2e(sparse); err != nil {
		return nil, err
	}

	// Postprocess stage alone, on precomputed sparse heads.
	headsPer := make([][]*tensor.Tensor, len(imgs))
	metas := make([]tensor.LetterboxMeta, len(imgs))
	for i, img := range imgs {
		canvas, meta := tensor.LetterboxImage(img, cfg.Res, cfg.Res, tensor.LetterboxFill)
		hs, err := sparse.Heads(canvas.Reshape(1, canvas.Dim(0), canvas.Dim(1), canvas.Dim(2)))
		if err != nil {
			return nil, err
		}
		headsPer[i], metas[i] = hs, meta
	}
	// One pass over a small image set is tens of milliseconds — too
	// short for a committed baseline — so time-target it like the
	// ingest scenarios (allocation count unused: postprocess has its
	// own 0-alloc gates in internal/detect).
	var dst []detect.Detection
	ppSec, ppRounds, _, err := measureIngest(func() error {
		for i := range headsPer {
			if dst, err = detect.PostprocessInto(dst[:0], headsPer[i], metas[i], pipe); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.add("postprocess", "sparse", ppRounds*cfg.Images, ppSec, 0)

	denseSec, err := e2e(dense)
	if err != nil {
		return nil, err
	}
	rep.add("e2e-inprocess", "dense", cfg.Images, denseSec, denseSec)

	sparseSec, err := e2e(sparse)
	if err != nil {
		return nil, err
	}
	rep.add("e2e-inprocess", "sparse", cfg.Images, sparseSec, denseSec)

	// Served batched detection: concurrent streams of encoded bytes
	// through Server.Detect.
	srv := NewServer(sparse, Config{})
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(ppms); i += cfg.Streams {
				if _, err := srv.Detect(ppms[i], pipe, cfg.Res, cfg.Res); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(s)
	}
	wg.Wait()
	servedSec := time.Since(start).Seconds()
	st := srv.Stats()
	srv.Close()
	if firstErr != nil {
		return nil, firstErr
	}
	i = rep.add("served-detect", "sparse", cfg.Images, servedSec, denseSec)
	rep.Results[i].AvgBatch = st.AvgBatch
	rep.Server = &DetectServeStats{
		AvgBatch:        st.AvgBatch,
		AvgPreprocessMS: ms(st.AvgPreprocess),
		AvgDecodeMS:     ms(st.AvgDecode),
		AvgNMSMS:        ms(st.AvgNMS),
		Candidates:      st.Candidates,
		Boxes:           st.Boxes,
	}
	return rep, nil
}

// measureIngest repeatedly invokes fn (one full pass over the image
// set per round) until the measurement window is long enough to trust
// — at least minIngestRounds rounds AND minIngestSeconds of wall time,
// whichever takes longer — and reports the wall time, the rounds run,
// and the steady-state heap allocations per round. fn runs once before
// the clock starts so pools, scratch tensors, and resize-table caches
// are warm — what the counter then sees is the per-request cost a
// long-running server pays. The time floor matters for the committed
// baseline: a single-pass scenario measures tens of milliseconds, and
// at that scale scheduler/GC noise between two runs of the SAME code
// can exceed the CI gate's 10% regression budget.
func measureIngest(fn func() error) (sec float64, rounds int, allocsPerRound float64, err error) {
	const (
		minIngestRounds  = 8
		minIngestSeconds = 0.5
	)
	if err = fn(); err != nil {
		return 0, 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for rounds < minIngestRounds || time.Since(start).Seconds() < minIngestSeconds {
		if err = fn(); err != nil {
			return 0, 0, 0, err
		}
		rounds++
	}
	sec = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return sec, rounds, float64(after.Mallocs-before.Mallocs) / float64(rounds), nil
}

// tensorNRGBA converts a [3, H, W] tensor in [0, 1] to an 8-bit NRGBA
// image for the stdlib PNG/JPEG encoders (bench input preparation
// only; the serving path never converts this direction).
func tensorNRGBA(t *tensor.Tensor) *image.NRGBA {
	h, w := t.Dim(1), t.Dim(2)
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	plane := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*img.Stride + 4*x
			img.Pix[i+0] = uint8(t.Data[y*w+x]*255 + 0.5)
			img.Pix[i+1] = uint8(t.Data[plane+y*w+x]*255 + 0.5)
			img.Pix[i+2] = uint8(t.Data[2*plane+y*w+x]*255 + 0.5)
			img.Pix[i+3] = 255
		}
	}
	return img
}

// add appends one scenario row and returns its index.
func (r *DetectBenchReport) add(name, mode string, images int, sec, denseSec float64) int {
	res := DetectBenchResult{Name: name, Mode: mode, Images: images, Seconds: sec}
	if sec > 0 {
		res.ImagesPerSec = float64(images) / sec
		if denseSec > 0 {
			res.SpeedupVsDense = denseSec / sec
		}
	}
	r.Results = append(r.Results, res)
	return len(r.Results) - 1
}

// WriteJSON writes the report to path as indented JSON.
func (r *DetectBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render returns the report as an aligned text table.
func (r *DetectBenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "detection benchmark: %s %s, %dx%d letterbox, %d streams, GOMAXPROCS %d\n",
		r.Model, r.Variant, r.Res, r.Res, r.Streams, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-16s %-7s %7s %9s %11s %9s %11s\n",
		"scenario", "mode", "images", "img/s", "vs dense", "avg batch", "allocs/img")
	for _, res := range r.Results {
		speedup, avgBatch, allocs := "", "", ""
		if res.SpeedupVsDense > 0 {
			speedup = fmt.Sprintf("%.2fx", res.SpeedupVsDense)
		}
		if res.AvgBatch > 0 {
			avgBatch = fmt.Sprintf("%.2f", res.AvgBatch)
		}
		if res.Mode == "ingest" || res.Mode == "stream" {
			allocs = fmt.Sprintf("%.1f", res.AllocsPerImage)
		}
		fmt.Fprintf(&b, "%-16s %-7s %7d %9.2f %11s %9s %11s\n",
			res.Name, res.Mode, res.Images, res.ImagesPerSec, speedup, avgBatch, allocs)
		if res.Mode == "stream" {
			fmt.Fprintf(&b, "  %s: deadline hit rate %.3f, %.1f drops/s\n",
				res.Name, res.DeadlineHitRate, res.DropsPerSec)
		}
	}
	if r.Server != nil {
		fmt.Fprintf(&b, "served postprocess: preprocess %.3f ms, decode %.3f ms, nms %.3f ms per image; %d candidates -> %d boxes\n",
			r.Server.AvgPreprocessMS, r.Server.AvgDecodeMS, r.Server.AvgNMSMS, r.Server.Candidates, r.Server.Boxes)
	}
	return b.String()
}
