package kitti

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rtoss/internal/tensor"
)

// goldenMotionPath locates the committed sample motion frames.
func goldenMotionPath(i int) string {
	return filepath.Join("..", "..", "examples", "data", fmt.Sprintf("kitti_motion_%02d.ppm", i))
}

// goldenMotionFrames is how many frames of the sample sequence are
// committed under examples/data.
const goldenMotionFrames = 4

// TestMotionSequenceMatchesGoldenFrames re-renders the bundled sample
// motion sequence and byte-compares each frame against its committed
// PPM — the moving-scene twin of TestRenderSceneMatchesGoldenSample.
// Neither the track integrator, the scene generator, the RNG, the
// rasteriser, nor the PPM encoder may drift from the committed
// artifacts. To regenerate after an intentional change:
//
//	go run ./cmd/rtoss stream -golden
func TestMotionSequenceMatchesGoldenFrames(t *testing.T) {
	seq := RenderedSequence(SampleMotionSeed, goldenMotionFrames, 160, 96)
	for i, rs := range seq {
		want, err := os.ReadFile(goldenMotionPath(i))
		if err != nil {
			t.Fatalf("reading golden frame %d: %v", i, err)
		}
		var got bytes.Buffer
		if err := tensor.EncodePPM(&got, rs.Image); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("frame %d renders %d bytes that differ from the %d-byte golden file %s; "+
				"if the motion renderer changed intentionally, regenerate with `rtoss stream -golden`",
				i, got.Len(), len(want), goldenMotionPath(i))
		}
	}
}

// TestMovingScenesDeterministic: identical parameters reproduce
// identical sequences; different seeds differ.
func TestMovingScenesDeterministic(t *testing.T) {
	a := MovingScenes(7, 5, 160, 96)
	b := MovingScenes(7, 5, 160, 96)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("sequence lengths %d, %d, want 5", len(a), len(b))
	}
	for k := range a {
		if len(a[k].Truth) != len(b[k].Truth) {
			t.Fatalf("frame %d: truth counts differ", k)
		}
		for j := range a[k].Truth {
			if a[k].Truth[j] != b[k].Truth[j] {
				t.Fatalf("frame %d object %d differs across identical seeds", k, j)
			}
		}
	}
	c := MovingScenes(8, 5, 160, 96)
	if len(c[0].Truth) == len(a[0].Truth) {
		same := true
		for j := range c[0].Truth {
			if c[0].Truth[j] != a[0].Truth[j] {
				same = false
				break
			}
		}
		if same {
			t.Error("seeds 7 and 8 produced identical first frames; generator ignores the seed")
		}
	}
}

// TestMovingScenesActuallyMove: across the sequence at least one
// object's box must change frame over frame (a static "video" would
// make the streaming harness vacuous), and every box must stay inside
// the frame.
func TestMovingScenesActuallyMove(t *testing.T) {
	const w, h = 160, 96
	seq := MovingScenes(SampleMotionSeed, 10, w, h)
	if len(seq[0].Truth) == 0 {
		t.Fatal("first frame has no objects")
	}
	moved := false
	for k := 1; k < len(seq); k++ {
		prev, cur := seq[k-1], seq[k]
		if len(prev.Truth) == len(cur.Truth) {
			for j := range cur.Truth {
				if cur.Truth[j].Box != prev.Truth[j].Box {
					moved = true
				}
			}
		} else {
			moved = true // an object dropped out or re-entered: motion
		}
		for j, g := range cur.Truth {
			if g.Box.X1 < 0 || g.Box.Y1 < 0 || g.Box.X2 > w || g.Box.Y2 > h {
				t.Fatalf("frame %d object %d box %v escapes the %dx%d frame", k, j, g.Box, w, h)
			}
			if g.Box.Area() < 4 {
				t.Fatalf("frame %d object %d has area %v below the generator's floor", k, j, g.Box.Area())
			}
		}
	}
	if !moved {
		t.Fatal("no box changed across 10 frames; motion integrator is inert")
	}
}
