package kitti

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rtoss/internal/tensor"
)

// goldenSamplePath locates the bundled sample image from this
// package's test working directory.
var goldenSamplePath = filepath.Join("..", "..", "examples", "data", "kitti_sample.ppm")

// TestRenderSceneMatchesGoldenSample re-renders the bundled sample
// scene and byte-compares it against the committed PPM, so neither the
// rasteriser, the scene generator, the RNG, nor the PPM encoder can
// drift from the artifact users (and `rtoss detect`'s default input)
// actually see. When an intentional rendering change lands, regenerate
// the golden file by re-encoding kitti.SampleImage(496, 160) with
// tensor.EncodePPM.
func TestRenderSceneMatchesGoldenSample(t *testing.T) {
	want, err := os.ReadFile(goldenSamplePath)
	if err != nil {
		t.Fatalf("reading golden sample: %v", err)
	}
	var got bytes.Buffer
	if err := tensor.EncodePPM(&got, SampleImage(496, 160)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("SampleImage(496, 160) renders %d bytes that differ from the %d-byte golden file %s; "+
			"if the renderer changed intentionally, regenerate the sample", got.Len(), len(want), goldenSamplePath)
	}
}

// TestRenderedDatasetDeterministic pins the evaluation dataset
// contract: the same (seed, n, w, h) must reproduce identical scenes
// and identical pixels, and different seeds must actually differ.
func TestRenderedDatasetDeterministic(t *testing.T) {
	a := RenderedDataset(11, 3, 160, 96)
	b := RenderedDataset(11, 3, 160, 96)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("dataset sizes %d, %d, want 3", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Scene.Truth) != len(b[i].Scene.Truth) {
			t.Fatalf("scene %d: truth counts differ (%d vs %d)", i, len(a[i].Scene.Truth), len(b[i].Scene.Truth))
		}
		for j := range a[i].Scene.Truth {
			if a[i].Scene.Truth[j] != b[i].Scene.Truth[j] {
				t.Errorf("scene %d object %d differs across identical seeds", i, j)
			}
		}
		if !a[i].Image.SameShape(b[i].Image) {
			t.Fatalf("scene %d: image shapes differ", i)
		}
		for j := range a[i].Image.Data {
			if a[i].Image.Data[j] != b[i].Image.Data[j] {
				t.Fatalf("scene %d: pixel %d differs across identical seeds", i, j)
			}
		}
	}
	c := RenderedDataset(12, 3, 160, 96)
	same := true
	for i := range a {
		if len(a[i].Scene.Truth) != len(c[i].Scene.Truth) {
			same = false
			break
		}
	}
	if same {
		match := true
		for j, v := range a[0].Image.Data {
			if c[0].Image.Data[j] != v {
				match = false
				break
			}
		}
		if match {
			t.Error("seeds 11 and 12 produced identical first scenes; generator ignores the seed")
		}
	}
}
