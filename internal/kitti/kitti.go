// Package kitti provides the synthetic stand-in for the KITTI 2-D
// detection benchmark (the dataset itself cannot be downloaded in this
// environment; see DESIGN.md §2). It generates traffic scenes with the
// benchmark's class mix and scale distribution (distant cars are tiny,
// near ones large; heavily truncated objects are marked difficult), and
// simulates a detector of a given quality score over those scenes —
// detection probability, localisation noise, confidence and false
// positives all degrade as quality drops, with small objects degrading
// first (the effect Fig 8 of the paper illustrates).
//
// The simulated detections feed the real mAP evaluator in
// internal/metrics, so the full detection-evaluation code path is
// exercised end to end.
package kitti

import (
	"fmt"
	"math"
	"strings"

	"rtoss/internal/detect"
	"rtoss/internal/metrics"
	"rtoss/internal/rng"
)

// KITTI object classes.
const (
	Car = iota
	Van
	Truck
	Pedestrian
	PersonSitting
	Cyclist
	Tram
	Misc
	NumClasses
)

// ClassNames maps class IDs to KITTI labels.
var ClassNames = [NumClasses]string{
	"Car", "Van", "Truck", "Pedestrian", "Person_sitting", "Cyclist", "Tram", "Misc",
}

// classWeights approximates the KITTI label distribution (cars dominate).
var classWeights = [NumClasses]float64{0.55, 0.06, 0.03, 0.15, 0.02, 0.10, 0.02, 0.07}

// aspect ratios (width/height) per class, loosely from KITTI statistics.
var classAspect = [NumClasses]float64{2.0, 2.2, 2.8, 0.4, 0.5, 0.7, 3.5, 1.2}

// Scene is one synthetic KITTI frame.
type Scene struct {
	W, H  int
	Truth []detect.GroundTruth
}

// sampleClass draws a class from the KITTI mix.
func sampleClass(r *rng.RNG) int {
	u := r.Float64()
	acc := 0.0
	for c, w := range classWeights {
		acc += w
		if u < acc {
			return c
		}
	}
	return Misc
}

// GenerateScene creates one scene with 3-12 objects. Objects sit in a
// perspective band: boxes higher in the frame are further away and
// therefore smaller, reproducing KITTI's long tail of tiny objects.
func GenerateScene(r *rng.RNG, w, h int) Scene {
	s := Scene{W: w, H: h}
	n := 3 + r.Intn(10)
	for i := 0; i < n; i++ {
		class := sampleClass(r)
		// Depth in [0,1]: 0 = near (bottom, large), 1 = far (mid-frame, tiny).
		depth := math.Sqrt(r.Float64())
		// Object height shrinks with depth: near objects ~28% of frame
		// height, distant ones ~2%.
		objH := (0.02 + 0.26*(1-depth)) * float64(h)
		if class == Pedestrian || class == PersonSitting || class == Cyclist {
			objH *= 0.8
		}
		objW := objH * classAspect[class] * r.Range(0.85, 1.15)
		// Horizon sits at ~45% height; near objects sink toward the bottom.
		cy := float64(h) * (0.45 + 0.40*(1-depth)*r.Range(0.6, 1.0))
		cx := r.Range(objW/2, float64(w)-objW/2)
		box := detect.NewBox(cx-objW/2, cy-objH/2, cx+objW/2, cy+objH/2).Clip(float64(w), float64(h))
		if box.Area() < 4 {
			continue
		}
		// KITTI convention: very small or heavily truncated boxes are
		// "difficult" and excluded from scoring.
		difficult := box.Height() < 0.022*float64(h) || box.Area() < 0.55*objW*objH
		s.Truth = append(s.Truth, detect.GroundTruth{Box: box, Class: class, Difficult: difficult})
	}
	return s
}

// Dataset generates n scenes deterministically from a seed.
func Dataset(seed uint64, n, w, h int) []Scene {
	r := rng.New(seed)
	out := make([]Scene, n)
	for i := range out {
		out[i] = GenerateScene(r.Split(), w, h)
	}
	return out
}

// hardness returns the detection difficulty of an object in [0, ~2.5]:
// zero for large objects, growing as the shorter side shrinks.
func hardness(b detect.Box, frameH float64) float64 {
	minDim := math.Min(b.Width(), b.Height())
	rel := minDim / frameH
	h := 0.016/math.Max(rel, 1e-4) - 0.35
	if h < 0 {
		return 0
	}
	if h > 2.5 {
		return 2.5
	}
	return h
}

// SimulateDetections runs a detector of the given quality score over a
// scene. score 1.0 is the trained dense baseline; pattern-pruned models
// score slightly above 1 (the paper reports mAP gains), while damaged
// models fall below. Degradation hits small objects hardest.
func SimulateDetections(s Scene, score float64, r *rng.RNG) []detect.Detection {
	var dets []detect.Detection
	frameH := float64(s.H)
	for _, g := range s.Truth {
		h := hardness(g.Box, frameH)
		// Miss probability rises with hardness and with quality deficit.
		// Even a perfect detector misses some objects (ceiling 0.97).
		pDet := score - 1.2*h*(1.05-score)
		if pDet > 0.97 {
			pDet = 0.97
		}
		if r.Float64() > pDet {
			continue
		}
		// Class confusion: rarer at baseline quality, more common as
		// information is lost (creates a false positive and a miss).
		cls := g.Class
		if r.Float64() < 0.03+0.30*math.Max(0, 1.0-score) {
			cls = sampleClass(r)
		}
		// Localisation noise: grows as quality drops.
		slack := 1.02 - math.Min(score, 1.02)
		sigma := (0.012 + 0.22*slack) * math.Max(g.Box.Width(), g.Box.Height())
		box := g.Box.Translate(r.Norm(0, sigma), r.Norm(0, sigma))
		box = box.Scale(1 + r.Norm(0, 0.6*sigma/math.Max(g.Box.Width(), 1)))
		box = box.Clip(float64(s.W), float64(s.H))
		conf := 0.35 + 0.60*(score-0.45*h*(1.02-score)) + r.Norm(0, 0.07)
		if conf > 0.99 {
			conf = 0.99
		}
		if conf < 0.05 {
			conf = 0.05
		}
		dets = append(dets, detect.Detection{Box: box, Class: cls, Score: conf})
	}
	// False positives: spurious low-confidence boxes, more as quality drops.
	fpRate := 0.25 + 3.5*math.Max(0, 1.0-score)
	nFP := int(fpRate + r.Float64())
	for i := 0; i < nFP; i++ {
		w := r.Range(0.03, 0.12) * float64(s.W)
		h := w * r.Range(0.4, 1.2)
		x := r.Range(0, float64(s.W)-w)
		y := r.Range(0, float64(s.H)-h)
		dets = append(dets, detect.Detection{
			Box:   detect.NewBox(x, y, x+w, y+h),
			Class: sampleClass(r),
			Score: r.Range(0.05, 0.45),
		})
	}
	return detect.NMS(dets, 0.5)
}

// EvaluateScore runs the full pipeline: simulate a detector of the
// given quality over the scenes and compute mAP@iou with the real
// evaluator. Deterministic for a fixed seed.
func EvaluateScore(scenes []Scene, score float64, iou float64, seed uint64) float64 {
	r := rng.New(seed)
	samples := make([]metrics.Sample, len(scenes))
	for i, s := range scenes {
		samples[i] = metrics.Sample{
			Detections: SimulateDetections(s, score, r.Split()),
			Truth:      s.Truth,
		}
	}
	_, mAP := metrics.Evaluate(samples, NumClasses, iou)
	return mAP
}

// Render draws a scene and detections as ASCII art (Fig 8's qualitative
// comparison). Ground truth is drawn with '.' borders, detections with
// '#', and each detection is annotated in the legend with class and
// confidence. cols controls the character width of the canvas.
func Render(s Scene, dets []detect.Detection, cols int) string {
	rows := cols * s.H / s.W / 2 // terminal cells are ~2x taller than wide
	if rows < 8 {
		rows = 8
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	sx := float64(cols) / float64(s.W)
	sy := float64(rows) / float64(s.H)
	drawBox := func(b detect.Box, ch byte) {
		x1 := int(b.X1 * sx)
		y1 := int(b.Y1 * sy)
		x2 := int(b.X2 * sx)
		y2 := int(b.Y2 * sy)
		if x2 >= cols {
			x2 = cols - 1
		}
		if y2 >= rows {
			y2 = rows - 1
		}
		if x1 < 0 {
			x1 = 0
		}
		if y1 < 0 {
			y1 = 0
		}
		for x := x1; x <= x2; x++ {
			grid[y1][x] = ch
			grid[y2][x] = ch
		}
		for y := y1; y <= y2; y++ {
			grid[y][x1] = ch
			grid[y][x2] = ch
		}
	}
	for _, g := range s.Truth {
		drawBox(g.Box, '.')
	}
	for _, d := range dets {
		drawBox(d.Box, '#')
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	for i, d := range dets {
		fmt.Fprintf(&b, "  #%d %s %.2f %s\n", i+1, ClassNames[d.Class], d.Score, d.Box)
	}
	fmt.Fprintf(&b, "  ground truth: %d objects ('.' borders)\n", len(s.Truth))
	return b.String()
}
