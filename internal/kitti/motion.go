package kitti

import (
	"rtoss/internal/detect"
	"rtoss/internal/rng"
)

// motion.go extends the synthetic-KITTI generator to moving scenes:
// one base scene whose objects follow seeded constant-velocity tracks
// with a per-object approach/recede growth factor, advanced frame by
// frame and re-rasterised with the existing renderer. The result is a
// deterministic N-frame "video" with exact per-frame ground truth —
// the input the streaming harness evaluates deadline-hit-rate and mAP
// against. Identical (seed, frames, w, h) always reproduces the same
// pixels and boxes, so streaming runs are comparable across processes
// and serving backends.

// SampleMotionSeed seeds the bundled sample motion sequence
// (examples/data/kitti_motion_NN.ppm are RenderScene of its first
// frames).
const SampleMotionSeed = 2024

// track is one object's motion state: the unclipped box it currently
// occupies plus its per-frame velocity and growth.
type track struct {
	box   detect.Box // unclipped: objects may straddle the frame edge
	class int
	vx    float64 // px/frame
	vy    float64 // px/frame
	grow  float64 // size factor/frame (>1 approaches, <1 recedes)
}

// MovingScenes generates an N-frame scene sequence: frame 0 is a
// standard GenerateScene, and each object then follows its seeded
// track. Objects that drift fully out of frame (or shrink below the
// minimum area) drop out of the ground truth; partially visible ones
// stay, clipped, and become difficult when mostly truncated — the
// same convention the static generator uses.
func MovingScenes(seed uint64, frames, w, h int) []Scene {
	r := rng.New(seed)
	base := GenerateScene(r.Split(), w, h)
	mr := r.Split()
	tracks := make([]track, len(base.Truth))
	for i, g := range base.Truth {
		// Ground objects mostly slide horizontally (traffic), with a
		// small vertical component and a growth factor that makes them
		// loom or recede — enough motion that a 30 fps stream sees real
		// displacement, small enough that tracks stay plausible.
		tracks[i] = track{
			box:   g.Box,
			class: g.Class,
			vx:    mr.Range(-0.015, 0.015) * float64(w),
			vy:    mr.Range(-0.004, 0.004) * float64(h),
			grow:  mr.Range(0.985, 1.015),
		}
	}
	out := make([]Scene, frames)
	for k := range out {
		s := Scene{W: w, H: h}
		for _, tr := range tracks {
			clipped := tr.box.Clip(float64(w), float64(h))
			if clipped.Area() < 4 {
				continue
			}
			difficult := clipped.Height() < 0.022*float64(h) ||
				clipped.Area() < 0.55*tr.box.Area()
			s.Truth = append(s.Truth, detect.GroundTruth{Box: clipped, Class: tr.class, Difficult: difficult})
		}
		out[k] = s
		for i := range tracks {
			tracks[i].box = tracks[i].box.Scale(tracks[i].grow).Translate(tracks[i].vx, tracks[i].vy)
		}
	}
	return out
}

// RenderedSequence generates and rasterises a moving-scene sequence —
// the frame source for streaming evaluation and the stream bench.
func RenderedSequence(seed uint64, frames, w, h int) []RenderedScene {
	scenes := MovingScenes(seed, frames, w, h)
	out := make([]RenderedScene, len(scenes))
	for i, s := range scenes {
		out[i] = RenderedScene{Scene: s, Image: RenderScene(s)}
	}
	return out
}
