package kitti

import (
	"strings"
	"testing"

	"rtoss/internal/detect"
	"rtoss/internal/rng"
)

func TestDatasetDeterministic(t *testing.T) {
	a := Dataset(42, 10, 640, 640)
	b := Dataset(42, 10, 640, 640)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("sizes %d %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Truth) != len(b[i].Truth) {
			t.Fatal("dataset not deterministic")
		}
		for j := range a[i].Truth {
			if a[i].Truth[j] != b[i].Truth[j] {
				t.Fatal("objects differ across builds")
			}
		}
	}
}

func TestSceneObjectsInBounds(t *testing.T) {
	for _, s := range Dataset(7, 50, 640, 640) {
		if len(s.Truth) < 1 {
			t.Fatal("scene with no objects")
		}
		for _, g := range s.Truth {
			if g.Box.X1 < 0 || g.Box.Y1 < 0 || g.Box.X2 > 640 || g.Box.Y2 > 640 {
				t.Fatalf("object out of frame: %v", g.Box)
			}
			if g.Class < 0 || g.Class >= NumClasses {
				t.Fatalf("bad class %d", g.Class)
			}
		}
	}
}

func TestSceneHasScaleDiversity(t *testing.T) {
	// KITTI's defining property: object scale spans an order of
	// magnitude (near trucks vs distant cars).
	var minH, maxH float64 = 1e9, 0
	for _, s := range Dataset(11, 100, 640, 640) {
		for _, g := range s.Truth {
			h := g.Box.Height()
			if h < minH {
				minH = h
			}
			if h > maxH {
				maxH = h
			}
		}
	}
	if maxH/minH < 8 {
		t.Errorf("scale span %.1fx, want >= 8x (tiny + large objects)", maxH/minH)
	}
}

func TestClassMixDominatedByCars(t *testing.T) {
	counts := make([]int, NumClasses)
	total := 0
	for _, s := range Dataset(3, 200, 640, 640) {
		for _, g := range s.Truth {
			counts[g.Class]++
			total++
		}
	}
	carFrac := float64(counts[Car]) / float64(total)
	if carFrac < 0.40 || carFrac > 0.70 {
		t.Errorf("car fraction %.2f, want ~0.55", carFrac)
	}
}

func TestSimulatePerfectScoreFindsMostObjects(t *testing.T) {
	scenes := Dataset(5, 30, 640, 640)
	r := rng.New(1)
	found, truth := 0, 0
	for _, s := range scenes {
		dets := SimulateDetections(s, 1.0, r.Split())
		found += len(dets)
		for _, g := range s.Truth {
			if !g.Difficult {
				truth++
			}
		}
	}
	if float64(found) < 0.7*float64(truth) {
		t.Errorf("baseline detector found %d of %d objects", found, truth)
	}
}

func TestEvaluateScoreMonotone(t *testing.T) {
	// Higher quality scores must give higher mAP on the same scenes.
	scenes := Dataset(21, 60, 640, 640)
	prev := -1.0
	for _, score := range []float64{0.70, 0.85, 1.00} {
		m := EvaluateScore(scenes, score, 0.5, 99)
		if m <= prev {
			t.Errorf("mAP not monotone in quality: score %.2f gave %.3f after %.3f", score, m, prev)
		}
		prev = m
	}
}

func TestEvaluateScoreBands(t *testing.T) {
	scenes := Dataset(33, 80, 640, 640)
	base := EvaluateScore(scenes, 1.0, 0.5, 5)
	if base < 0.55 || base > 0.95 {
		t.Errorf("baseline scene mAP %.3f outside sane band", base)
	}
	bad := EvaluateScore(scenes, 0.6, 0.5, 5)
	if bad > base-0.1 {
		t.Errorf("heavily damaged detector mAP %.3f too close to baseline %.3f", bad, base)
	}
}

func TestSmallObjectsSufferFirst(t *testing.T) {
	// At degraded quality, recall on difficult-sized (small) objects
	// must fall faster than on large ones — the Fig 8 phenomenon.
	scenes := Dataset(13, 100, 640, 640)
	recall := func(score float64, small bool) float64 {
		r := rng.New(77)
		hit, tot := 0, 0
		for _, s := range scenes {
			dets := SimulateDetections(s, score, r.Split())
			for _, g := range s.Truth {
				isSmall := g.Box.Height() < 30
				if isSmall != small || g.Difficult {
					continue
				}
				tot++
				for _, d := range dets {
					if d.Class == g.Class && detect.IoU(d.Box, g.Box) >= 0.5 {
						hit++
						break
					}
				}
			}
		}
		if tot == 0 {
			return 1
		}
		return float64(hit) / float64(tot)
	}
	dropSmall := recall(1.0, true) - recall(0.8, true)
	dropLarge := recall(1.0, false) - recall(0.8, false)
	if dropSmall <= dropLarge {
		t.Errorf("small-object recall drop (%.3f) should exceed large-object drop (%.3f)", dropSmall, dropLarge)
	}
}

func TestRenderContainsBoxesAndLegend(t *testing.T) {
	scenes := Dataset(1, 1, 640, 640)
	r := rng.New(3)
	dets := SimulateDetections(scenes[0], 1.0, r)
	out := Render(scenes[0], dets, 80)
	if !strings.Contains(out, "#") {
		t.Error("render missing detection boxes")
	}
	if !strings.Contains(out, "ground truth") {
		t.Error("render missing legend")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("render too small: %d lines", len(lines))
	}
}

func BenchmarkGenerateScene(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = GenerateScene(r, 640, 640)
	}
}

func BenchmarkEvaluateScore(b *testing.B) {
	scenes := Dataset(1, 20, 640, 640)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EvaluateScore(scenes, 0.95, 0.5, uint64(i))
	}
}
