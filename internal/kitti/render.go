package kitti

import (
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// render.go rasterises synthetic scenes into RGB image tensors, giving
// the end-to-end detection pipeline (and `rtoss detect`) a bundled,
// dependency-free test image: a sky gradient over a road plane with
// each ground-truth object drawn as a shaded, outlined block.

// classColors gives each KITTI class a distinct body colour (RGB in
// [0, 1]) so rendered scenes are readable by eye.
var classColors = [NumClasses][3]float32{
	{0.75, 0.15, 0.15}, // Car: red
	{0.75, 0.45, 0.15}, // Van: orange
	{0.55, 0.35, 0.20}, // Truck: brown
	{0.15, 0.35, 0.75}, // Pedestrian: blue
	{0.20, 0.55, 0.75}, // Person_sitting: light blue
	{0.20, 0.65, 0.30}, // Cyclist: green
	{0.55, 0.20, 0.65}, // Tram: purple
	{0.50, 0.50, 0.50}, // Misc: gray
}

// RenderScene rasterises a scene into a [3, H, W] tensor in [0, 1]:
// sky gradient above the horizon, road below, objects back-to-front as
// filled blocks with a dark outline and a lighter top band. Purely
// deterministic for a given scene.
func RenderScene(s Scene) *tensor.Tensor {
	img := tensor.New(3, s.H, s.W)
	plane := s.H * s.W
	horizon := int(0.45 * float64(s.H))
	for y := 0; y < s.H; y++ {
		var r, g, b float32
		if y < horizon {
			// Sky: bright at the top, hazy at the horizon.
			t := float32(y) / float32(horizon)
			r, g, b = 0.45+0.25*t, 0.62+0.13*t, 0.85
		} else {
			// Road: darkens toward the viewer.
			t := float32(y-horizon) / float32(s.H-horizon)
			r, g, b = 0.42-0.12*t, 0.42-0.12*t, 0.44-0.12*t
		}
		for x := 0; x < s.W; x++ {
			img.Data[0*plane+y*s.W+x] = r
			img.Data[1*plane+y*s.W+x] = g
			img.Data[2*plane+y*s.W+x] = b
		}
	}
	// Lane marking down the road centre.
	for y := horizon; y < s.H; y++ {
		if (y/4)%2 == 0 {
			continue
		}
		half := 1 + (y-horizon)/64
		for x := s.W/2 - half; x < s.W/2+half; x++ {
			if x >= 0 && x < s.W {
				img.Data[0*plane+y*s.W+x] = 0.85
				img.Data[1*plane+y*s.W+x] = 0.85
				img.Data[2*plane+y*s.W+x] = 0.80
			}
		}
	}
	// Objects back-to-front so near (larger) boxes occlude distant ones.
	order := make([]int, len(s.Truth))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if s.Truth[order[j]].Box.Y2 < s.Truth[order[i]].Box.Y2 {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	set := func(y, x int, v [3]float32) {
		if y < 0 || y >= s.H || x < 0 || x >= s.W {
			return
		}
		img.Data[0*plane+y*s.W+x] = v[0]
		img.Data[1*plane+y*s.W+x] = v[1]
		img.Data[2*plane+y*s.W+x] = v[2]
	}
	for _, oi := range order {
		g := s.Truth[oi]
		color := classColors[g.Class]
		lighter := [3]float32{min1(color[0] + 0.2), min1(color[1] + 0.2), min1(color[2] + 0.2)}
		outline := [3]float32{color[0] * 0.4, color[1] * 0.4, color[2] * 0.4}
		x1, y1 := int(g.Box.X1), int(g.Box.Y1)
		x2, y2 := int(g.Box.X2), int(g.Box.Y2)
		topBand := y1 + (y2-y1)/3
		for y := y1; y <= y2; y++ {
			for x := x1; x <= x2; x++ {
				switch {
				case y == y1 || y == y2 || x == x1 || x == x2:
					set(y, x, outline)
				case y < topBand:
					set(y, x, lighter)
				default:
					set(y, x, color)
				}
			}
		}
	}
	return img
}

func min1(v float32) float32 {
	if v > 1 {
		return 1
	}
	return v
}

// RenderedScene pairs one generated scene with its rasterised image —
// the unit the evaluation harness drives through a detection backend.
type RenderedScene struct {
	// Scene holds the ground-truth boxes the image was rendered from.
	Scene Scene
	// Image is the [3, H, W] rasterisation of the scene in [0, 1].
	Image *tensor.Tensor
}

// RenderedDataset generates n scenes deterministically from a seed and
// rasterises each one: the synthetic-KITTI evaluation set. Identical
// (seed, n, w, h) always yields byte-identical images and ground truth,
// so mAP computed over the set is reproducible across runs, processes
// and serving backends.
func RenderedDataset(seed uint64, n, w, h int) []RenderedScene {
	scenes := Dataset(seed, n, w, h)
	out := make([]RenderedScene, len(scenes))
	for i, s := range scenes {
		out[i] = RenderedScene{Scene: s, Image: RenderScene(s)}
	}
	return out
}

// SampleImageSeed seeds the bundled sample scene
// (examples/data/kitti_sample.ppm is RenderScene of this scene).
const SampleImageSeed = 2023

// SampleImage renders the deterministic bundled sample scene at w x h —
// the image `rtoss detect` falls back to when no -image is given, and
// the source of examples/data/kitti_sample.ppm.
func SampleImage(w, h int) *tensor.Tensor {
	return RenderScene(GenerateScene(rng.New(SampleImageSeed), w, h))
}
