// Package faultinject is the deterministic, seed-driven fault layer
// behind `rtoss chaos`: named injection points threaded through the
// serving stack (ingest, batch executor, registry, fleet transport,
// stream sessions) fire according to a Plan of per-point rules drawn
// from a seeded RNG. Every decision is a function of (seed, point,
// draw ordinal) — never of wall-clock time — so a chaos schedule
// replays identically under a virtual clock and across runs with the
// same seed. A disabled layer holds a nil *Injector, and every
// injection-point method is a method on the nil receiver that returns
// immediately: the production hot path pays one nil check, no
// branches, no allocations.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rtoss/internal/rng"
)

// Point names one injection site in the serving stack. The catalog is
// closed: an Injector pre-creates state for every point at New, so
// firing decisions for one point never perturb another's RNG stream.
type Point string

const (
	// PointIngestCorrupt truncates a detect request's image bytes on
	// the batch executor before decode — the request fails decode and
	// is answered 400, exactly like a client that sent garbage.
	PointIngestCorrupt Point = "ingest.corrupt"
	// PointExecPanic panics inside a batch executor while it holds a
	// whole batch — the panic-isolation path must answer the poisoned
	// request 500, save its co-batched neighbors, and respawn.
	PointExecPanic Point = "exec.panic"
	// PointExecStall sleeps the executor mid-batch for the rule's
	// Delay — the stuck-batch watchdog's trigger.
	PointExecStall Point = "exec.stall"
	// PointRegistryBuild fails a registry Program build. The injected
	// error is wrapped in ErrInjected and is never cached, so the next
	// request rebuilds.
	PointRegistryBuild Point = "registry.buildfail"
	// PointRegistryEvict force-evicts the registry's LRU entry on a
	// cache hit — an eviction storm under zero budget pressure.
	PointRegistryEvict Point = "registry.evict"
	// PointFleetReset aborts an in-flight HTTP response by closing the
	// hijacked connection — the client sees a transport-level reset.
	PointFleetReset Point = "fleet.reset"
	// PointFleetSlow delays an HTTP response by the rule's Delay.
	PointFleetSlow Point = "fleet.slow"
	// PointFleet500 answers an HTTP request with a bare 500 before the
	// real handler runs.
	PointFleet500 Point = "fleet.500"
	// PointFleetHealthFlap fails a /healthz probe with 503 — flapping
	// health that exercises the breaker's two-strike discipline.
	PointFleetHealthFlap Point = "fleet.healthflap"
	// PointStreamDisconnect cuts a streaming session mid-frame: the
	// framer loop stops as if the client vanished between frames.
	PointStreamDisconnect Point = "stream.disconnect"
)

// Points returns the full injection-point catalog in a stable order.
func Points() []Point {
	return []Point{
		PointIngestCorrupt,
		PointExecPanic,
		PointExecStall,
		PointRegistryBuild,
		PointRegistryEvict,
		PointFleetReset,
		PointFleetSlow,
		PointFleet500,
		PointFleetHealthFlap,
		PointStreamDisconnect,
	}
}

// ErrInjected marks failures manufactured by this package. Layers that
// cache errors (the registry's singleflight build) test for it with
// errors.Is and skip the cache, so an injected fault degrades one
// request, not every future request on the same key.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule schedules one point: each time the instrumented code path asks,
// the point draws from its own seeded RNG stream and fires with
// probability P — but never during the first After draws, and never
// more than Max times total (0 = unlimited). Delay is the injected
// latency for stall/slow points; it is returned, not slept, so the
// instrumented layer decides where sleeping is safe (never under a
// lock).
type Rule struct {
	P     float64       // firing probability per draw (1 = always)
	After uint64        // skip the first After draws
	Max   uint64        // total firing budget (0 = unlimited)
	Delay time.Duration // injected latency for stall/slow points
}

// enabled reports whether the rule can ever fire.
func (r Rule) enabled() bool { return r.P > 0 }

// Plan maps points to rules; points absent from the plan never fire.
type Plan map[Point]Rule

// ParsePlan parses the compact schedule syntax used by `rtoss chaos
// -schedule`:
//
//	point:p=0.05[,max=3][,after=10][,delay=50ms][;point:...]
//
// A bare preset name (see Preset) is also accepted.
func ParsePlan(spec string) (Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return Plan{}, nil
	}
	if p, err := Preset(spec); err == nil {
		return p, nil
	}
	plan := Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, params, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q wants point:params", clause)
		}
		pt := Point(strings.TrimSpace(name))
		if !knownPoint(pt) {
			return nil, fmt.Errorf("faultinject: unknown point %q (catalog: %v)", pt, Points())
		}
		var rule Rule
		for _, kv := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: parameter %q wants key=value", kv)
			}
			var err error
			switch k {
			case "p":
				rule.P, err = strconv.ParseFloat(v, 64)
				if err == nil && (rule.P < 0 || rule.P > 1) {
					err = fmt.Errorf("probability %v outside [0, 1]", rule.P)
				}
			case "max":
				rule.Max, err = strconv.ParseUint(v, 10, 64)
			case "after":
				rule.After, err = strconv.ParseUint(v, 10, 64)
			case "delay":
				rule.Delay, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown parameter %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: %s: %v", pt, err)
			}
		}
		plan[pt] = rule
	}
	return plan, nil
}

// String renders the plan back in ParsePlan syntax, points sorted.
func (p Plan) String() string {
	pts := make([]string, 0, len(p))
	for pt := range p {
		pts = append(pts, string(pt))
	}
	sort.Strings(pts)
	var b strings.Builder
	for i, name := range pts {
		if i > 0 {
			b.WriteByte(';')
		}
		r := p[Point(name)]
		fmt.Fprintf(&b, "%s:p=%g", name, r.P)
		if r.Max > 0 {
			fmt.Fprintf(&b, ",max=%d", r.Max)
		}
		if r.After > 0 {
			fmt.Fprintf(&b, ",after=%d", r.After)
		}
		if r.Delay > 0 {
			fmt.Fprintf(&b, ",delay=%s", r.Delay)
		}
	}
	return b.String()
}

// Preset returns a named fault schedule. "mixed" is the chaos CI
// default: every fault family at a low rate the acceptance invariants
// must absorb.
func Preset(name string) (Plan, error) {
	switch name {
	case "none":
		return Plan{}, nil
	case "panics":
		return Plan{
			PointExecPanic: {P: 0.02},
		}, nil
	case "network":
		return Plan{
			PointFleetReset:      {P: 0.05},
			PointFleetSlow:       {P: 0.05, Delay: 25 * time.Millisecond},
			PointFleet500:        {P: 0.05},
			PointFleetHealthFlap: {P: 0.2},
		}, nil
	case "ingest":
		return Plan{
			PointIngestCorrupt: {P: 0.05},
		}, nil
	case "registry":
		return Plan{
			PointRegistryBuild: {P: 0.25, Max: 8},
			PointRegistryEvict: {P: 0.05},
		}, nil
	case "mixed":
		return Plan{
			PointIngestCorrupt:    {P: 0.02},
			PointExecPanic:        {P: 0.01},
			PointExecStall:        {P: 0.01, Delay: 20 * time.Millisecond},
			PointRegistryEvict:    {P: 0.01},
			PointFleetReset:       {P: 0.02},
			PointFleetSlow:        {P: 0.03, Delay: 25 * time.Millisecond},
			PointFleet500:         {P: 0.02},
			PointFleetHealthFlap:  {P: 0.1},
			PointStreamDisconnect: {P: 0.05},
		}, nil
	}
	return nil, fmt.Errorf("faultinject: unknown preset %q (want none|panics|network|ingest|registry|mixed)", name)
}

func knownPoint(pt Point) bool {
	for _, p := range Points() {
		if p == pt {
			return true
		}
	}
	return false
}

// Injector draws firing decisions for every point in the catalog. One
// Injector is shared by all instrumented layers of a chaos harness;
// all methods are safe for concurrent use and safe on the nil
// receiver (a nil Injector never fires — the production configuration).
type Injector struct {
	seed uint64
	mu   sync.Mutex // guards rule swaps (SetPlan) across points
	pts  map[Point]*pointState
}

// pointState is one point's private decision stream: its own RNG
// (seeded from the injector seed and the point name, so points are
// independent) plus draw/fire ordinals.
type pointState struct {
	mu    sync.Mutex
	rule  Rule
	rng   *rng.RNG
	draws uint64
	fired uint64
}

// New builds an Injector whose decision streams derive from seed and
// whose firing rules come from plan (nil = all points disabled until
// SetPlan). The same seed and plan reproduce the same per-point
// decision sequence regardless of wall-clock time.
func New(seed uint64, plan Plan) *Injector {
	inj := &Injector{seed: seed, pts: make(map[Point]*pointState, len(Points()))}
	for _, pt := range Points() {
		inj.pts[pt] = &pointState{rng: rng.New(seed ^ pointSalt(pt))}
	}
	inj.SetPlan(plan)
	return inj
}

// pointSalt folds a point name into a seed offset (FNV-1a) so each
// point owns an independent RNG stream under one injector seed.
func pointSalt(pt Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(pt); i++ {
		h ^= uint64(pt[i])
		h *= 1099511628211
	}
	return h
}

// SetPlan swaps the firing rules while keeping every point's RNG
// stream and counters — chaos harnesses use it to phase faults in and
// out mid-run without losing determinism or the fired totals.
func (i *Injector) SetPlan(plan Plan) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for pt, st := range i.pts {
		rule := plan[pt] // zero Rule when absent: disabled
		st.mu.Lock()
		st.rule = rule
		st.mu.Unlock()
	}
}

// Seed returns the injector's seed (0 on the nil receiver).
func (i *Injector) Seed() uint64 {
	if i == nil {
		return 0
	}
	return i.seed
}

// Should reports whether point pt fires at this call. Each call is
// one draw: deterministic in (seed, point, ordinal), independent of
// every other point. Nil receiver: false, no work.
func (i *Injector) Should(pt Point) bool {
	if i == nil {
		return false
	}
	st := i.pts[pt]
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.rule.enabled() {
		return false
	}
	st.draws++
	if st.draws <= st.rule.After {
		return false
	}
	if st.rule.Max > 0 && st.fired >= st.rule.Max {
		return false
	}
	if st.rule.P < 1 && st.rng.Float64() >= st.rule.P {
		return false
	}
	st.fired++
	return true
}

// Latency returns the rule's Delay when point pt fires at this call,
// zero otherwise. The caller sleeps (outside any lock); the injector
// never blocks.
func (i *Injector) Latency(pt Point) time.Duration {
	if i == nil {
		return 0
	}
	if !i.Should(pt) {
		return 0
	}
	i.pts[pt].mu.Lock()
	d := i.pts[pt].rule.Delay
	i.pts[pt].mu.Unlock()
	return d
}

// Counts is one point's lifetime draw/fire tally.
type Counts struct {
	Draws uint64 `json:"draws"`
	Fired uint64 `json:"fired"`
}

// Counts snapshots every point's tally (points with zero draws are
// omitted). Nil receiver: nil.
func (i *Injector) Counts() map[Point]Counts {
	if i == nil {
		return nil
	}
	out := make(map[Point]Counts)
	for pt, st := range i.pts {
		st.mu.Lock()
		c := Counts{Draws: st.draws, Fired: st.fired}
		st.mu.Unlock()
		if c.Draws > 0 {
			out[pt] = c
		}
	}
	return out
}

// Fired returns how many times point pt has fired.
func (i *Injector) Fired(pt Point) uint64 {
	if i == nil {
		return 0
	}
	st := i.pts[pt]
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fired
}
