package faultinject

import (
	"net/http"
	"time"
)

// Middleware wraps an HTTP handler with the fleet-transport fault
// family: flapping /healthz, injected 500s, slow responses, and
// connection resets. A nil injector returns next unwrapped, so the
// production handler chain carries no chaos shim at all.
//
// The fault surface is deliberately split by path: /healthz sees only
// PointFleetHealthFlap (a flapping probe must look exactly like an
// unhealthy backend, not a broken TCP stack), /stats is never faulted
// (the chaos harness reads it to judge the run), and every other
// endpoint draws reset, slow and 500 in that order.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/stats":
			next.ServeHTTP(w, r)
			return
		case "/healthz":
			if inj.Should(PointFleetHealthFlap) {
				http.Error(w, "faultinject: flapping health", http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(w, r)
			return
		}
		if inj.Should(PointFleetReset) {
			abortConn(w)
			return
		}
		if d := inj.Latency(PointFleetSlow); d > 0 {
			time.Sleep(d)
		}
		if inj.Should(PointFleet500) {
			http.Error(w, "faultinject: injected 500", http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// abortConn kills the client connection without writing a response:
// hijack and close when the server supports it, otherwise panic with
// http.ErrAbortHandler (the net/http-sanctioned way to abort — the
// server drops the connection and suppresses the stack trace).
func abortConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}
