package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func firingPattern(seed uint64, pt Point, rule Rule, draws int) []bool {
	inj := New(seed, Plan{pt: rule})
	out := make([]bool, draws)
	for i := range out {
		out[i] = inj.Should(pt)
	}
	return out
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	rule := Rule{P: 0.3}
	a := firingPattern(42, PointExecPanic, rule, 200)
	b := firingPattern(42, PointExecPanic, rule, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
	}
	c := firingPattern(43, PointExecPanic, rule, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical firing patterns")
	}
}

func TestInjectorPointStreamsIndependent(t *testing.T) {
	// Drawing heavily on one point must not shift another point's
	// decisions: each point owns a salted RNG stream.
	solo := firingPattern(7, PointFleet500, Rule{P: 0.5}, 100)
	inj := New(7, Plan{PointFleet500: {P: 0.5}, PointExecPanic: {P: 0.5}})
	for i := 0; i < 1000; i++ {
		inj.Should(PointExecPanic)
	}
	for i, want := range solo {
		if got := inj.Should(PointFleet500); got != want {
			t.Fatalf("draw %d: fleet.500 stream perturbed by exec.panic draws (got %v want %v)", i, got, want)
		}
	}
}

func TestInjectorAfterAndMax(t *testing.T) {
	inj := New(1, Plan{PointFleet500: {P: 1, After: 3, Max: 2}})
	var fired []int
	for i := 0; i < 10; i++ {
		if inj.Should(PointFleet500) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("After=3,Max=2,P=1 fired at %v, want [3 4]", fired)
	}
	if got := inj.Fired(PointFleet500); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if c := inj.Counts()[PointFleet500]; c.Draws != 10 || c.Fired != 2 {
		t.Fatalf("Counts = %+v, want draws 10 fired 2", c)
	}
}

func TestInjectorNilReceiver(t *testing.T) {
	var inj *Injector
	if inj.Should(PointExecPanic) {
		t.Fatal("nil injector fired")
	}
	if d := inj.Latency(PointExecStall); d != 0 {
		t.Fatalf("nil injector latency %v", d)
	}
	inj.SetPlan(Plan{PointExecPanic: {P: 1}}) // must not panic
	if inj.Counts() != nil || inj.Fired(PointExecPanic) != 0 || inj.Seed() != 0 {
		t.Fatal("nil injector reported state")
	}
}

func TestInjectorSetPlanKeepsCounters(t *testing.T) {
	inj := New(3, Plan{PointFleet500: {P: 1}})
	for i := 0; i < 5; i++ {
		inj.Should(PointFleet500)
	}
	inj.SetPlan(Plan{}) // all off
	if inj.Should(PointFleet500) {
		t.Fatal("disabled point fired")
	}
	if got := inj.Fired(PointFleet500); got != 5 {
		t.Fatalf("Fired after SetPlan = %d, want 5 (counters must survive plan swaps)", got)
	}
}

func TestInjectorLatency(t *testing.T) {
	inj := New(1, Plan{PointExecStall: {P: 1, Delay: 7 * time.Millisecond}})
	if d := inj.Latency(PointExecStall); d != 7*time.Millisecond {
		t.Fatalf("Latency = %v, want 7ms", d)
	}
	off := New(1, nil)
	if d := off.Latency(PointExecStall); d != 0 {
		t.Fatalf("disabled Latency = %v, want 0", d)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "exec.panic:p=0.05,max=3;fleet.slow:p=0.1,delay=50ms,after=2"
	plan, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r := plan[PointExecPanic]; r.P != 0.05 || r.Max != 3 {
		t.Fatalf("exec.panic rule %+v", r)
	}
	if r := plan[PointFleetSlow]; r.P != 0.1 || r.Delay != 50*time.Millisecond || r.After != 2 {
		t.Fatalf("fleet.slow rule %+v", r)
	}
	again, err := ParsePlan(plan.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", plan.String(), err)
	}
	for pt, r := range plan {
		if again[pt] != r {
			t.Fatalf("round trip lost %s: %+v vs %+v", pt, r, again[pt])
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"nosuch.point:p=1",
		"exec.panic",         // no params
		"exec.panic:p=2",     // out of range
		"exec.panic:bogus=1", // unknown key
		"exec.panic:p",       // not key=value
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"none", "panics", "network", "ingest", "registry", "mixed"} {
		plan, err := Preset(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		for pt := range plan {
			if !knownPoint(pt) {
				t.Fatalf("preset %s references unknown point %s", name, pt)
			}
		}
		// Presets parse as plans too.
		if _, err := ParsePlan(name); err != nil {
			t.Fatalf("ParsePlan(%q): %v", name, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

func TestMiddlewareNilInjectorIsIdentity(t *testing.T) {
	h := okHandler()
	if got := Middleware(nil, h); &got == nil {
		t.Fatal("nil handler")
	}
	rr := httptest.NewRecorder()
	Middleware(nil, h).ServeHTTP(rr, httptest.NewRequest("GET", "/detect", nil))
	if rr.Code != 200 || rr.Body.String() != "ok" {
		t.Fatalf("nil-injector middleware altered response: %d %q", rr.Code, rr.Body.String())
	}
}

func TestMiddlewareHealthFlap(t *testing.T) {
	inj := New(1, Plan{PointFleetHealthFlap: {P: 1, Max: 1}})
	mw := Middleware(inj, okHandler())
	rr := httptest.NewRecorder()
	mw.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("flapping healthz = %d, want 503", rr.Code)
	}
	rr = httptest.NewRecorder()
	mw.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("healthz after Max exhausted = %d, want 200", rr.Code)
	}
}

func TestMiddleware500AndStatsExempt(t *testing.T) {
	inj := New(1, Plan{PointFleet500: {P: 1}})
	mw := Middleware(inj, okHandler())
	rr := httptest.NewRecorder()
	mw.ServeHTTP(rr, httptest.NewRequest("POST", "/detect", strings.NewReader("x")))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("injected 500 = %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	mw.ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	if rr.Code != 200 {
		t.Fatalf("/stats must never be faulted, got %d", rr.Code)
	}
}

func TestMiddlewareConnectionReset(t *testing.T) {
	inj := New(1, Plan{PointFleetReset: {P: 1, Max: 1}})
	srv := httptest.NewServer(Middleware(inj, okHandler()))
	defer srv.Close()
	if _, err := http.Get(srv.URL + "/detect"); err == nil {
		t.Fatal("expected a transport error from the injected reset")
	}
	resp, err := http.Get(srv.URL + "/detect")
	if err != nil {
		t.Fatalf("second request (Max exhausted): %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("second request = %d", resp.StatusCode)
	}
}
