package fleet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rtoss/internal/serve"
)

// fault_test.go covers the robustness primitives in isolation: the
// router's decorrelated-jitter backoff, the per-backend circuit
// breaker, and the prober's immunity to a hung /healthz.

func newJitterRouter(t *testing.T, seed uint64) *Router {
	t.Helper()
	rt, err := NewRouter(RouterConfig{
		Backends:    []string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
		Backoff:     10 * time.Millisecond,
		BackoffCap:  200 * time.Millisecond,
		BackoffSeed: seed,
		Probe:       ProberConfig{Interval: time.Hour, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestRouterBackoffJitterBounds pins the decorrelated-jitter contract
// under a seeded RNG: the first retry waits exactly the base, every
// later one draws uniformly from [base, min(cap, 3×previous)), the cap
// is never exceeded, and identical seeds replay identical sequences.
func TestRouterBackoffJitterBounds(t *testing.T) {
	base, cap := 10*time.Millisecond, 200*time.Millisecond
	draw := func(seed uint64, n int) []time.Duration {
		rt := newJitterRouter(t, seed)
		out := make([]time.Duration, 0, n)
		var prev time.Duration
		for i := 0; i < n; i++ {
			prev = rt.nextBackoff(prev)
			out = append(out, prev)
		}
		return out
	}

	seq := draw(42, 12)
	if seq[0] != base {
		t.Fatalf("first retry slept %v, want exactly the base %v", seq[0], base)
	}
	prev := seq[0]
	for i, d := range seq[1:] {
		hi := 3 * prev
		if hi > cap {
			hi = cap
		}
		if hi <= base {
			if d != base {
				t.Fatalf("draw %d: got %v, want base %v when the window is empty", i+1, d, base)
			}
		} else if d < base || d >= hi {
			t.Fatalf("draw %d: %v outside [%v, %v)", i+1, d, base, hi)
		}
		prev = d
	}

	// Reproducibility and decorrelation: same seed, same sequence;
	// different seed, a different one.
	if same := draw(42, 12); len(same) != len(seq) {
		t.Fatal("length mismatch")
	} else {
		for i := range seq {
			if same[i] != seq[i] {
				t.Fatalf("seeded sequence diverged at %d: %v != %v", i, same[i], seq[i])
			}
		}
	}
	other := draw(43, 12)
	diff := false
	for i := range seq {
		if other[i] != seq[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// TestProberBreakerStateMachine walks one backend through the full
// breaker cycle via the passive marks: closed → open on MarkDown,
// blocked while the hold runs, half-open once it elapses (Allow admits
// the trial), closed again on MarkSuccess — and consecutive trips grow.
func TestProberBreakerStateMachine(t *testing.T) {
	backend := "http://127.0.0.1:1" // unreachable; the hour interval keeps probes away
	p := NewProber([]string{backend}, ProberConfig{
		Interval: time.Hour, Timeout: 50 * time.Millisecond,
		FailThreshold: 2,
		OpenBase:      30 * time.Millisecond, OpenCap: 120 * time.Millisecond,
		Seed: 11,
	})
	defer p.Close()

	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if st := p.Statuses(); len(st) == 1 && st[0].State == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("backend never reached state %q (now %q)", want, p.Statuses()[0].State)
	}

	// The startup probe round against the unreachable backend may
	// record one strike; that alone must not trip (FailThreshold 2).
	if !p.Healthy(backend) {
		t.Fatal("backend must start closed (optimistic)")
	}

	p.MarkDown(backend, io.ErrUnexpectedEOF)
	waitState("open")
	if p.Allow(backend) {
		// The jittered hold is at least OpenBase/2 = 15ms; an immediate
		// Allow must be blocked.
		t.Fatal("open breaker admitted traffic before the hold elapsed")
	}

	// Once the hold elapses, Allow itself transitions to half-open and
	// admits the trial request.
	deadline := time.Now().Add(2 * time.Second)
	for !p.Allow(backend) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	waitState("half-open")

	// The trial failing re-trips with a grown hold.
	p.MarkDown(backend, io.ErrUnexpectedEOF)
	waitState("open")
	if st := p.Statuses(); st[0].Trips < 2 {
		t.Fatalf("trips = %d after two consecutive opens, want >= 2", st[0].Trips)
	}

	// A success from any path closes it immediately, hold or no hold.
	p.MarkSuccess(backend)
	waitState("closed")
	if !p.Healthy(backend) || !p.AnyHealthy() {
		t.Fatal("closed breaker must report healthy")
	}
	if st := p.Statuses(); st[0].Trips != 0 {
		t.Fatalf("trips not reset on close: %d", st[0].Trips)
	}
}

// TestProberSurvivesHungHealthz is the stalled-probe regression test:
// one backend whose /healthz hangs forever must not stall the probe
// loop — the healthy backend keeps getting probed on the interval, and
// the hung one is demoted by its own per-probe timeout.
func TestProberSurvivesHungHealthz(t *testing.T) {
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the probe until the test ends
	}))
	defer hung.Close()
	defer close(release)

	var probes atomic.Int64
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		io.WriteString(w, "ok\n")
	}))
	defer healthy.Close()

	p := NewProber([]string{hung.URL, healthy.URL}, ProberConfig{
		Interval: 20 * time.Millisecond, Timeout: 60 * time.Millisecond,
		FailThreshold: 2, OpenBase: 50 * time.Millisecond, Seed: 5,
	})
	defer p.Close()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if probes.Load() >= 5 && !p.Healthy(hung.URL) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := probes.Load(); got < 5 {
		t.Errorf("healthy backend probed only %d times; the hung peer stalled the loop", got)
	}
	if p.Healthy(hung.URL) {
		t.Error("hung backend still reported healthy; the per-probe timeout never fired")
	}
	if !p.Healthy(healthy.URL) {
		t.Error("healthy backend was demoted")
	}
}

// TestRouterShedsWithRetryAfter pins the bottom rung of the
// degradation ladder: when every replica attempt fails, the router
// answers 503 with a Retry-After hint — it never hangs and never
// invents a gateway error.
func TestRouterShedsWithRetryAfter(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer down.Close()
	rt, err := NewRouter(RouterConfig{
		Backends: []string{down.URL},
		Default:  serve.Key{Arch: "A", Variant: "dense", Mode: 0},
		Backoff:  time.Millisecond, BackoffSeed: 9,
		Probe: ProberConfig{Interval: time.Hour, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/detect", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exhausted ladder answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 shed carries no Retry-After header")
	}
	st := rt.Stats()
	if st["exhausted"] != 1 {
		t.Errorf("exhausted = %d, want 1", st["exhausted"])
	}
	if got := st["success"] + st["passthrough"] + st["exhausted"] + st["rejected"]; got != st["requests"] {
		t.Errorf("conservation broken: %d != requests %d", got, st["requests"])
	}
}
