package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/models"
	"rtoss/internal/serve"
)

// Shard hosts a subset of the model zoo behind one HTTP listener: each
// requested model key gets its own micro-batching serve.Server, built
// lazily on first request and paged out again when the registry's
// memory budget forces an LRU eviction. A late-joining shard warm
// starts by fetching a peer's gob Program snapshot (skipping the
// multi-second prune) and only falls back to a cold build when no peer
// has the key.
type Shard struct {
	cfg ShardConfig
	reg *serve.Registry

	mu      sync.Mutex
	entries map[serve.Key]*shardEntry
	closed  bool
}

type shardEntry struct {
	once sync.Once
	srv  *serve.Server
	h    http.Handler
	err  error
}

// ShardConfig wires a Shard. Zero values select the defaults.
type ShardConfig struct {
	// Registry caches compiled Programs; set a budget on it to bound
	// this shard's model memory. Nil creates a fresh unlimited one.
	Registry *serve.Registry
	// Default is the model key used when a request carries no routing
	// parameters.
	Default serve.Key
	// Res is the square letterbox resolution for /detect and the
	// /infer tensor shape (default 256; must be a multiple of the
	// head stride for zoo models).
	Res int
	// Serve configures each per-model server (batching, workers,
	// queue bound).
	Serve serve.Config
	// ShedLoad rejects with 503 instead of blocking when a model's
	// queue is full — the right choice behind a failover router.
	ShedLoad bool
	// Exact switches /detect decoding to exact float64 math.
	Exact bool
	// Labels maps class IDs to names in /detect responses.
	Labels []string
	// WarmFrom lists peer base URLs to try for a Program snapshot
	// before cold building a key.
	WarmFrom []string
	// SnapshotTimeout bounds each warm-handoff fetch (default 30s).
	SnapshotTimeout time.Duration
	// PipeFor resolves the detect pipeline for a key (the test hook
	// that lets non-zoo programs serve). Nil uses the zoo head spec
	// for the key's architecture.
	PipeFor func(serve.Key, *engine.Program) (detect.Config, error)
}

// NewShard returns a shard serving the configured registry. The
// registry's OnEvict hook is claimed by the shard (evicted Programs
// take their serving stack down with them), so don't share one
// registry between shards.
func NewShard(cfg ShardConfig) *Shard {
	if cfg.Registry == nil {
		cfg.Registry = serve.NewRegistry()
	}
	if cfg.Res <= 0 {
		cfg.Res = 256
	}
	if cfg.SnapshotTimeout <= 0 {
		cfg.SnapshotTimeout = 30 * time.Second
	}
	sh := &Shard{cfg: cfg, reg: cfg.Registry, entries: map[serve.Key]*shardEntry{}}
	sh.reg.OnEvict(func(k serve.Key, _ *engine.Program) { sh.drop(k) })
	return sh
}

// Registry exposes the shard's program cache (tests pre-install tiny
// programs through it; /stats reads its footprint).
func (sh *Shard) Registry() *serve.Registry { return sh.reg }

// drop tears down the serving stack for an evicted key. The server
// close runs on its own goroutine: eviction fires inside a request
// that is admitting a different model, and that request must not pay
// for draining this one's queue.
func (sh *Shard) drop(k serve.Key) {
	sh.mu.Lock()
	e := sh.entries[k]
	delete(sh.entries, k)
	sh.mu.Unlock()
	if e != nil && e.srv != nil {
		go e.srv.Close()
	}
}

// entry returns the serving stack for a key, building it on first
// request. Concurrent requests for the same key block on one build;
// distinct keys build independently (same discipline as the registry).
func (sh *Shard) entry(k serve.Key) (*shardEntry, error) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return nil, fmt.Errorf("fleet: shard is closed")
	}
	e := sh.entries[k]
	if e == nil {
		e = &shardEntry{}
		sh.entries[k] = e
	}
	sh.mu.Unlock()
	e.once.Do(func() { e.srv, e.h, e.err = sh.build(k) })
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

func (sh *Shard) build(k serve.Key) (*serve.Server, http.Handler, error) {
	prog, err := sh.program(k)
	if err != nil {
		return nil, nil, err
	}
	pipe, err := sh.pipeFor(k, prog)
	if err != nil {
		return nil, nil, err
	}
	srv := serve.NewServer(prog, sh.cfg.Serve)
	key := k
	h := serve.NewHandler(srv, serve.HandlerConfig{
		InputC: prog.Model().InputC, InputH: sh.cfg.Res, InputW: sh.cfg.Res,
		Detect:      &pipe,
		Labels:      sh.cfg.Labels,
		ShedLoad:    sh.cfg.ShedLoad,
		SnapshotKey: &key,
	})
	return srv, h, nil
}

// program resolves a key's Program: warm handoff from the first peer
// that has it, cold build otherwise.
func (sh *Shard) program(k serve.Key) (*engine.Program, error) {
	for _, peer := range sh.cfg.WarmFrom {
		prog, err := serve.FetchSnapshot(context.Background(), peer, k, sh.cfg.SnapshotTimeout)
		if err != nil {
			continue // peer down or key not resident there: try the next
		}
		return sh.reg.Install(k, prog)
	}
	return sh.reg.Program(k)
}

func (sh *Shard) pipeFor(k serve.Key, prog *engine.Program) (detect.Config, error) {
	if sh.cfg.PipeFor != nil {
		return sh.cfg.PipeFor(k, prog)
	}
	spec, err := models.HeadByName(k.Arch, models.KITTIClasses)
	if err != nil {
		return detect.Config{}, err
	}
	if s := spec.MaxStride(); sh.cfg.Res%s != 0 {
		return detect.Config{}, fmt.Errorf("fleet: shard resolution %d is not a multiple of the %s head stride %d", sh.cfg.Res, k.Arch, s)
	}
	return detect.Config{Spec: spec, ExactMath: sh.cfg.Exact}, nil
}

// Handler serves the shard's HTTP surface: the per-model /detect,
// /infer and /program routes dispatched by model key, plus shard-level
// /healthz and merged /stats. /stream is not proxied at the fleet
// tier, so the shard answers 501 for symmetry with the router.
func (sh *Shard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, sh.statsDoc())
	})
	mux.HandleFunc("GET /program", func(w http.ResponseWriter, r *http.Request) {
		// Snapshots serve resident keys only: a donor must never pay a
		// cold build to satisfy a peer that would otherwise build the
		// same thing itself.
		k, err := KeyFromQuery(r.URL.Query(), sh.cfg.Default)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		e := sh.resident(k)
		if e == nil {
			http.Error(w, fmt.Sprintf("fleet: %v is not resident on this shard", k), http.StatusNotFound)
			return
		}
		e.h.ServeHTTP(w, r)
	})
	serveModel := func(w http.ResponseWriter, r *http.Request) {
		k, err := KeyFromQuery(r.URL.Query(), sh.cfg.Default)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		e, err := sh.entry(k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		e.h.ServeHTTP(w, r)
	}
	mux.HandleFunc("POST /detect", serveModel)
	mux.HandleFunc("POST /infer", serveModel)
	mux.HandleFunc("POST /stream", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "fleet: /stream is not served at the fleet tier; run rtoss serve for streaming sessions", http.StatusNotImplemented)
	})
	return mux
}

// resident returns the built entry for a key without triggering a
// build, nil when absent (or still building, or failed).
func (sh *Shard) resident(k serve.Key) *shardEntry {
	sh.mu.Lock()
	e := sh.entries[k]
	sh.mu.Unlock()
	if e == nil || e.srv == nil || e.err != nil {
		return nil
	}
	return e
}

// statsDoc merges every resident model's serve stats with the shard's
// registry accounting.
func (sh *Shard) statsDoc() map[string]any {
	bytes, evictions := sh.reg.Footprint()
	keys := sh.reg.Keys()
	resident := make([]string, len(keys))
	for i, k := range keys {
		resident[i] = k.String()
	}
	modelStats := map[string]any{}
	sh.mu.Lock()
	built := make(map[serve.Key]*shardEntry, len(sh.entries))
	for k, e := range sh.entries {
		built[k] = e
	}
	sh.mu.Unlock()
	for k, e := range built {
		if e.srv != nil && e.err == nil {
			modelStats[k.String()] = serve.StatsJSON(e.srv.Stats())
		}
	}
	return map[string]any{
		"shard": map[string]any{
			"resident":        resident,
			"footprint_bytes": bytes,
			"evictions":       evictions,
		},
		"models": modelStats,
	}
}

// Close tears down every resident serving stack.
func (sh *Shard) Close() {
	sh.mu.Lock()
	sh.closed = true
	entries := sh.entries
	sh.entries = map[serve.Key]*shardEntry{}
	sh.mu.Unlock()
	for _, e := range entries {
		if e.srv != nil {
			e.srv.Close()
		}
	}
}
