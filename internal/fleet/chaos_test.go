package fleet

import (
	"testing"
	"time"

	"rtoss/internal/faultinject"
)

// TestFleetChaos is the acceptance run from the robustness issue: a
// seeded chaos run against a 3-shard in-process fleet under the mixed
// fault schedule must complete with zero client-visible transport
// errors, a bounded 5xx rate, balanced conservation counters, and
// bitwise mAP parity on successful responses. Named TestFleetChaos so
// the CI fleet job's -run filter picks it up.
func TestFleetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes seconds of wall clock; skipped in -short")
	}
	plan, err := faultinject.Preset("mixed")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunChaos(ChaosConfig{
		Seed: 7, Plan: plan, Shards: 3,
		Duration: 2 * time.Second, Concurrency: 4,
	})
	if err != nil {
		t.Fatalf("chaos harness failed: %v", err)
	}
	t.Log("\n" + rep.Render())
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("invariant violated: %s", v)
		}
	}
	// The run must actually have injected faults — a chaos run where
	// nothing fired proves nothing.
	var fired uint64
	for _, c := range rep.Injections {
		fired += c.Fired
	}
	if fired == 0 {
		t.Error("no faults fired during the chaos run; the schedule is not exercising the stack")
	}
	// Reproducibility: the same seed and schedule must draw the same
	// injection decisions. Traffic volume varies run to run (the load
	// phase is time-bounded), so compare the decision streams per point
	// only up to the shorter draw count via a fresh injector replay.
	inj1 := faultinject.New(7, plan)
	inj2 := faultinject.New(7, plan)
	for _, pt := range faultinject.Points() {
		for i := 0; i < 64; i++ {
			if inj1.Should(pt) != inj2.Should(pt) {
				t.Fatalf("point %s: decision stream diverged at draw %d for identical seeds", pt, i)
			}
		}
	}
}
