package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend base URLs. Each backend
// contributes vnodes virtual points so a small fleet still spreads
// model keys evenly, and the ring yields a full failover order (every
// backend exactly once, starting at the key's successor) rather than
// just a primary — the router walks that order when replicas fail.
//
// The ring is immutable after construction: membership changes mean a
// new ring. Health is the prober's concern, not the ring's, so a
// bounced shard keeps its ring position (and therefore its keys) —
// consistent hashing's whole point.
type ring struct {
	backends []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int // index into backends
}

// newRing builds the ring. vnodes <= 0 selects the default (64 per
// backend, plenty below 1% imbalance for single-digit fleets).
func newRing(backends []string, vnodes int) (*ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("fleet: a ring needs at least one backend")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := map[string]bool{}
	r := &ring{backends: backends, points: make([]ringPoint, 0, len(backends)*vnodes)}
	for i, b := range backends {
		if seen[b] {
			return nil, fmt.Errorf("fleet: duplicate backend %q", b)
		}
		seen[b] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashString(fmt.Sprintf("%s#%d", b, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// order returns every backend exactly once, in failover order for a
// key: the owner (first distinct backend at or after the key's hash,
// wrapping) first, then each successor. Deterministic for a fixed
// membership, so every router instance agrees on placement.
func (r *ring) order(key string) []string {
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.backends))
	seen := make([]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, r.backends[p.idx])
		}
	}
	return out
}

// owner is the primary backend for a key.
func (r *ring) owner(key string) string { return r.order(key)[0] }

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
