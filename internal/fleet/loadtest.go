package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rtoss/internal/kitti"
	"rtoss/internal/serve"
	"rtoss/internal/tensor"
)

// LoadConfig parameterises one closed-loop load test: Concurrency
// workers each fire /detect requests back-to-back against URL for
// Duration, cycling through pre-rendered synthetic-KITTI images and
// the configured model-key mix.
type LoadConfig struct {
	// URL is the router (or single shard) base URL.
	URL string
	// Duration is the firing window (default 5s).
	Duration time.Duration
	// Concurrency is the worker count (default 4).
	Concurrency int
	// Keys is the model-key traffic mix, cycled round-robin. Empty
	// sends no routing parameters (the target's default key serves).
	Keys []serve.Key
	// Scenes is the distinct pre-rendered image count (default 4).
	Scenes int
	// SceneW, SceneH are the rendered image dimensions (default
	// 320x192).
	SceneW, SceneH int
	// Seed drives scene rendering (default 1).
	Seed uint64
	// Score, IoU override the detect thresholds when positive.
	Score, IoU float64
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
}

// LoadReport is the load-test result, JSON-shaped for the CI artifact.
type LoadReport struct {
	URL         string  `json:"url"`
	DurationSec float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`

	Requests  int64 `json:"requests"`
	Success   int64 `json:"success"`
	ClientErr int64 `json:"client_errors"` // 4xx
	ServerErr int64 `json:"server_errors"` // 5xx
	NetErr    int64 `json:"net_errors"`    // transport failures / timeouts

	ByStatus map[string]int64 `json:"by_status,omitempty"`
	ByKey    map[string]int64 `json:"by_key,omitempty"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
}

// RunLoad executes the load test. Images are rendered and PPM-encoded
// once up front, so the measured path is purely HTTP + serving.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("fleet: loadtest needs a target URL")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Scenes <= 0 {
		cfg.Scenes = 4
	}
	if cfg.SceneW <= 0 {
		cfg.SceneW = 320
	}
	if cfg.SceneH <= 0 {
		cfg.SceneH = 192
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	images, err := renderImages(cfg)
	if err != nil {
		return nil, err
	}
	targets, err := buildTargets(cfg)
	if err != nil {
		return nil, err
	}

	client := &http.Client{}
	defer client.CloseIdleConnections()
	deadline := time.Now().Add(cfg.Duration)
	var next atomic.Int64
	results := make([]workerResult, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(res *workerResult) {
			defer wg.Done()
			res.byStatus = map[int]int64{}
			res.byKey = map[string]int64{}
			for time.Now().Before(deadline) {
				i := next.Add(1) - 1
				tgt := targets[int(i)%len(targets)]
				img := images[int(i)%len(images)]
				res.fire(client, tgt, img, cfg.Timeout)
			}
		}(&results[w])
	}
	wg.Wait()
	return reduce(cfg, time.Since(start), results), nil
}

// target is one pre-encoded request destination (URL with routing and
// threshold parameters baked in) plus its key label for accounting.
type target struct {
	url   string
	label string
}

func buildTargets(cfg LoadConfig) ([]target, error) {
	base, err := url.Parse(cfg.URL)
	if err != nil {
		return nil, fmt.Errorf("fleet: loadtest URL %q: %w", cfg.URL, err)
	}
	keys := cfg.Keys
	labels := make([]string, len(keys))
	for i, k := range keys {
		labels[i] = k.String()
	}
	if len(keys) == 0 {
		labels = []string{"default"}
	}
	out := make([]target, 0, len(labels))
	for i, label := range labels {
		u := *base.JoinPath("detect")
		q := u.Query()
		if len(keys) > 0 {
			q.Set("key", keys[i].String())
		}
		if cfg.Score > 0 {
			q.Set("score", strconv.FormatFloat(cfg.Score, 'g', -1, 64))
		}
		if cfg.IoU > 0 {
			q.Set("iou", strconv.FormatFloat(cfg.IoU, 'g', -1, 64))
		}
		u.RawQuery = q.Encode()
		out = append(out, target{url: u.String(), label: label})
	}
	return out, nil
}

func renderImages(cfg LoadConfig) ([][]byte, error) {
	scenes := kitti.RenderedDataset(cfg.Seed, cfg.Scenes, cfg.SceneW, cfg.SceneH)
	images := make([][]byte, len(scenes))
	for i, rs := range scenes {
		var buf bytes.Buffer
		if err := tensor.EncodePPM(&buf, rs.Image); err != nil {
			return nil, fmt.Errorf("fleet: encoding scene %d: %w", i, err)
		}
		images[i] = buf.Bytes()
	}
	return images, nil
}

type workerResult struct {
	latencies []float64 // milliseconds, successes only
	byStatus  map[int]int64
	byKey     map[string]int64
	netErrs   int64
}

func (res *workerResult) fire(client *http.Client, tgt target, img []byte, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, tgt.url, bytes.NewReader(img))
	if err != nil {
		res.netErrs++
		return
	}
	req.ContentLength = int64(len(img))
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		res.netErrs++
		res.byKey[tgt.label]++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	res.byStatus[resp.StatusCode]++
	res.byKey[tgt.label]++
	if resp.StatusCode == http.StatusOK {
		res.latencies = append(res.latencies, float64(time.Since(start))/float64(time.Millisecond))
	}
}

func reduce(cfg LoadConfig, elapsed time.Duration, results []workerResult) *LoadReport {
	rep := &LoadReport{
		URL:         cfg.URL,
		DurationSec: elapsed.Seconds(),
		Concurrency: cfg.Concurrency,
		ByStatus:    map[string]int64{},
		ByKey:       map[string]int64{},
	}
	var lat []float64
	for _, r := range results {
		rep.NetErr += r.netErrs
		lat = append(lat, r.latencies...)
		for code, n := range r.byStatus {
			rep.ByStatus[strconv.Itoa(code)] += n
			switch {
			case code >= 200 && code < 300:
				rep.Success += n
			case code >= 400 && code < 500:
				rep.ClientErr += n
			case code >= 500:
				rep.ServerErr += n
			}
		}
		for k, n := range r.byKey {
			rep.ByKey[k] += n
		}
	}
	rep.Requests = rep.Success + rep.ClientErr + rep.ServerErr + rep.NetErr
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Success) / elapsed.Seconds()
	}
	sort.Float64s(lat)
	rep.P50Ms = percentile(lat, 0.50)
	rep.P90Ms = percentile(lat, 0.90)
	rep.P99Ms = percentile(lat, 0.99)
	if n := len(lat); n > 0 {
		rep.MaxMs = lat[n-1]
	}
	return rep
}

// percentile reads the q-quantile from an ascending slice (nearest
// rank; 0 for an empty slice).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Render formats the report for a terminal.
func (r *LoadReport) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "loadtest %s (%.1fs, %d workers)\n", r.URL, r.DurationSec, r.Concurrency)
	fmt.Fprintf(&b, "  requests:   %d (%.1f ok/s)\n", r.Requests, r.ThroughputRPS)
	fmt.Fprintf(&b, "  success:    %d\n", r.Success)
	fmt.Fprintf(&b, "  4xx:        %d\n", r.ClientErr)
	fmt.Fprintf(&b, "  5xx:        %d\n", r.ServerErr)
	fmt.Fprintf(&b, "  net errors: %d\n", r.NetErr)
	fmt.Fprintf(&b, "  latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n", r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
	if len(r.ByKey) > 1 {
		keys := make([]string, 0, len(r.ByKey))
		for k := range r.ByKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  key %-30s %d\n", k, r.ByKey[k])
		}
	}
	return b.String()
}

// WriteJSON writes the report to a file (the CI latency artifact).
func (r *LoadReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
