package fleet

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Prober tracks per-backend health with two signals: an active loop
// that polls each backend's GET /healthz on an interval, and passive
// feedback from the router (MarkDown) when a forward attempt fails at
// the transport level. Passive marks take effect immediately — the
// very next request routes around the dead shard instead of waiting
// out a probe interval — and one successful probe restores the
// backend, so a bounced shard rejoins within one interval.
type Prober struct {
	interval time.Duration
	timeout  time.Duration
	failN    int
	client   *http.Client

	mu     sync.Mutex
	states map[string]*backendState

	stop chan struct{}
	done chan struct{}
}

type backendState struct {
	healthy   bool
	fails     int // consecutive probe failures
	lastErr   string
	lastProbe time.Time
}

// BackendStatus is one backend's health snapshot for /stats.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Fails   int    `json:"consecutive_failures"`
	LastErr string `json:"last_error,omitempty"`
}

// ProberConfig tunes the probe loop. Zero values select the defaults.
type ProberConfig struct {
	// Interval between probe rounds (default 250ms).
	Interval time.Duration
	// Timeout per probe request (default 2s).
	Timeout time.Duration
	// FailThreshold is how many consecutive probe failures demote a
	// healthy backend (default 2, so one dropped probe on a loaded
	// shard does not trigger a failover storm).
	FailThreshold int
}

// NewProber starts probing the given backend base URLs. All backends
// start healthy (optimistic, so traffic flows before the first round);
// the first round corrects any that are already down. Close stops the
// loop.
func NewProber(backends []string, cfg ProberConfig) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	p := &Prober{
		interval: cfg.Interval,
		timeout:  cfg.Timeout,
		failN:    cfg.FailThreshold,
		client:   &http.Client{},
		states:   map[string]*backendState{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, b := range backends {
		p.states[b] = &backendState{healthy: true}
	}
	go p.loop()
	return p
}

func (p *Prober) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	p.probeAll()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

func (p *Prober) probeAll() {
	p.mu.Lock()
	urls := make([]string, 0, len(p.states))
	for u := range p.states {
		urls = append(urls, u)
	}
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			p.probe(u)
		}(u)
	}
	wg.Wait()
}

func (p *Prober) probe(base string) {
	err := p.ping(base)
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.states[base]
	if s == nil {
		return
	}
	s.lastProbe = time.Now()
	if err == nil {
		s.healthy, s.fails, s.lastErr = true, 0, ""
		return
	}
	s.fails++
	s.lastErr = err.Error()
	if s.fails >= p.failN {
		s.healthy = false
	}
}

func (p *Prober) ping(base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &probeStatusError{status: resp.Status}
	}
	return nil
}

type probeStatusError struct{ status string }

func (e *probeStatusError) Error() string { return "healthz answered " + e.status }

// Healthy reports the current verdict for a backend. Unknown backends
// are reported unhealthy.
func (p *Prober) Healthy(base string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.states[base]
	return s != nil && s.healthy
}

// MarkDown is the router's passive signal: a forward attempt failed at
// the transport level, so stop routing to this backend now rather than
// after FailThreshold probe rounds. The probe loop re-promotes the
// backend on its next successful /healthz.
func (p *Prober) MarkDown(base string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.states[base]; s != nil {
		s.healthy = false
		if s.fails < p.failN {
			s.fails = p.failN
		}
		if err != nil {
			s.lastErr = err.Error()
		}
	}
}

// AnyHealthy reports whether at least one backend is healthy.
func (p *Prober) AnyHealthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.states {
		if s.healthy {
			return true
		}
	}
	return false
}

// Statuses snapshots every backend's health, sorted by URL.
func (p *Prober) Statuses() []BackendStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]BackendStatus, 0, len(p.states))
	for u, s := range p.states {
		out = append(out, BackendStatus{URL: u, Healthy: s.healthy, Fails: s.fails, LastErr: s.lastErr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Close stops the probe loop and waits for it to exit.
func (p *Prober) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}
