package fleet

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"rtoss/internal/rng"
)

// Prober tracks per-backend health with two signals — an active loop
// that polls each backend's GET /healthz on an interval, and passive
// feedback from the router (MarkDown/MarkSuccess) as forwards fail or
// succeed — and folds both into a per-backend circuit breaker:
//
//	closed ──(FailThreshold probe strikes, or one transport error)──▶ open
//	open ──(hold elapses; jittered, doubling per consecutive trip)──▶ half-open
//	half-open ──(one success: probe or forward)──▶ closed
//	half-open ──(any failure)──▶ open (longer hold)
//
// Passive marks take effect immediately — the very next request routes
// around the dead shard instead of waiting out a probe interval — and
// one successful probe restores the backend regardless of the hold, so
// a bounced shard rejoins within one interval. The open hold is what
// paces live traffic's re-trials of a backend that keeps failing: each
// consecutive trip doubles the hold (jittered so a fleet of routers
// does not re-trial in lockstep), capped at OpenCap.
type Prober struct {
	interval time.Duration
	timeout  time.Duration
	failN    int
	openBase time.Duration
	openCap  time.Duration
	client   *http.Client

	mu     sync.Mutex
	states map[string]*backendState
	rng    *rng.RNG // jitter source for open holds; guarded by mu

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup // in-flight probes
}

// breakerState is one backend's circuit-breaker position.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

type backendState struct {
	state     breakerState
	fails     int // consecutive probe failures
	trips     int // consecutive opens; scales the hold
	openUntil time.Time
	lastErr   string
	lastProbe time.Time
	probing   bool // a probe is in flight; skip this backend next round
}

// BackendStatus is one backend's health snapshot for /stats.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	State   string `json:"state"`
	Trips   int    `json:"breaker_trips,omitempty"`
	Fails   int    `json:"consecutive_failures"`
	LastErr string `json:"last_error,omitempty"`
}

// ProberConfig tunes the probe loop. Zero values select the defaults.
type ProberConfig struct {
	// Interval between probe rounds (default 250ms).
	Interval time.Duration
	// Timeout per probe request. The default is the probe interval
	// clamped to [50ms, 2s]: a probe gets its own short deadline so one
	// hung /healthz neither stalls the loop nor keeps its backend
	// unprobed much longer than a round.
	Timeout time.Duration
	// FailThreshold is how many consecutive probe failures demote a
	// healthy backend (default 2, so one dropped probe on a loaded
	// shard does not trigger a failover storm).
	FailThreshold int
	// OpenBase is the first trip's open hold (default 200ms); each
	// consecutive trip doubles it, jittered, up to OpenCap (default 5s).
	OpenBase time.Duration
	OpenCap  time.Duration
	// Seed drives the hold jitter; 0 seeds from the clock (production).
	// Chaos and unit tests pin it for reproducible holds.
	Seed uint64
}

// NewProber starts probing the given backend base URLs. All backends
// start healthy (optimistic, so traffic flows before the first round);
// the first round corrects any that are already down. Close stops the
// loop.
func NewProber(backends []string, cfg ProberConfig) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
		if cfg.Timeout < 50*time.Millisecond {
			cfg.Timeout = 50 * time.Millisecond
		}
		if cfg.Timeout > 2*time.Second {
			cfg.Timeout = 2 * time.Second
		}
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.OpenBase <= 0 {
		cfg.OpenBase = 200 * time.Millisecond
	}
	if cfg.OpenCap <= 0 {
		cfg.OpenCap = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = uint64(time.Now().UnixNano())
	}
	p := &Prober{
		interval: cfg.Interval,
		timeout:  cfg.Timeout,
		failN:    cfg.FailThreshold,
		openBase: cfg.OpenBase,
		openCap:  cfg.OpenCap,
		client:   &http.Client{},
		states:   map[string]*backendState{},
		rng:      rng.New(cfg.Seed),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, b := range backends {
		p.states[b] = &backendState{state: breakerClosed}
	}
	go p.loop()
	return p
}

func (p *Prober) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	p.probeAll()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

// probeAll launches one probe per backend without waiting for any of
// them: the loop ticks on schedule even when a backend's /healthz
// hangs. A backend whose previous probe is still in flight is skipped
// (its own timeout bounds the wait), so a single wedged shard costs
// itself probe freshness, never the fleet.
func (p *Prober) probeAll() {
	p.mu.Lock()
	for u, s := range p.states {
		if s.probing {
			continue
		}
		s.probing = true
		p.wg.Add(1)
		go func(u string) {
			defer p.wg.Done()
			p.probe(u)
		}(u)
	}
	p.mu.Unlock()
}

func (p *Prober) probe(base string) {
	err := p.ping(base)
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.states[base]
	if s == nil {
		return
	}
	s.probing = false
	s.lastProbe = time.Now()
	if err == nil {
		p.closeBreakerLocked(s)
		return
	}
	s.fails++
	s.lastErr = err.Error()
	switch s.state {
	case breakerClosed:
		if s.fails >= p.failN {
			p.tripLocked(s)
		}
	case breakerHalfOpen:
		// The trial failed: back to open with a longer hold.
		p.tripLocked(s)
	}
}

func (p *Prober) ping(base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &probeStatusError{status: resp.Status}
	}
	return nil
}

type probeStatusError struct{ status string }

func (e *probeStatusError) Error() string { return "healthz answered " + e.status }

// closeBreakerLocked resets a backend to closed after a success.
func (p *Prober) closeBreakerLocked(s *backendState) {
	s.state = breakerClosed
	s.fails, s.trips, s.lastErr = 0, 0, ""
	s.openUntil = time.Time{}
}

// tripLocked opens the breaker: the hold doubles per consecutive trip
// and is jittered to half-to-full of that value, so a fleet of routers
// watching the same dead shard spreads its re-trials instead of
// thundering back in lockstep. Capped at openCap.
func (p *Prober) tripLocked(s *backendState) {
	s.state = breakerOpen
	s.trips++
	hold := p.openBase << (s.trips - 1)
	if hold > p.openCap || hold <= 0 {
		hold = p.openCap
	}
	// Jitter into [hold/2, hold).
	hold = hold/2 + time.Duration(p.rng.Float64()*float64(hold/2))
	s.openUntil = time.Now().Add(hold)
}

// Healthy reports whether a backend's breaker is closed. Unknown
// backends are reported unhealthy.
func (p *Prober) Healthy(base string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.states[base]
	return s != nil && s.state == breakerClosed
}

// Allow reports whether the router may send a request to this backend
// right now: closed always, open only once the hold has elapsed (the
// call transitions the breaker to half-open — the request is the
// trial), half-open always (results close or re-trip it). Unknown
// backends are not allowed.
func (p *Prober) Allow(base string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.states[base]
	if s == nil {
		return false
	}
	switch s.state {
	case breakerClosed, breakerHalfOpen:
		return true
	default:
		if time.Now().After(s.openUntil) {
			s.state = breakerHalfOpen
			return true
		}
		return false
	}
}

// MarkDown is the router's passive signal: a forward attempt failed at
// the transport level, so trip the breaker now rather than after
// FailThreshold probe rounds. The probe loop (or a successful forward
// during half-open) re-promotes the backend.
func (p *Prober) MarkDown(base string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.states[base]
	if s == nil {
		return
	}
	if s.fails < p.failN {
		s.fails = p.failN
	}
	if err != nil {
		s.lastErr = err.Error()
	}
	p.tripLocked(s)
}

// MarkSuccess is the router's positive signal: a forward reached the
// backend and got an HTTP response (any status — the transport works),
// which closes the breaker. Half-open trials are promoted by exactly
// this call.
func (p *Prober) MarkSuccess(base string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.states[base]; s != nil {
		p.closeBreakerLocked(s)
	}
}

// AnyHealthy reports whether at least one backend's breaker is closed.
func (p *Prober) AnyHealthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.states {
		if s.state == breakerClosed {
			return true
		}
	}
	return false
}

// Statuses snapshots every backend's health, sorted by URL.
func (p *Prober) Statuses() []BackendStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]BackendStatus, 0, len(p.states))
	for u, s := range p.states {
		out = append(out, BackendStatus{
			URL:     u,
			Healthy: s.state == breakerClosed,
			State:   s.state.String(),
			Trips:   s.trips,
			Fails:   s.fails,
			LastErr: s.lastErr,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Close stops the probe loop and waits for it and every in-flight
// probe to exit.
func (p *Prober) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
	p.wg.Wait()
}
