// Package fleet is the sharded serving tier above internal/serve: a
// front-end router that consistent-hashes requests by model key across
// N backend serve processes, per-backend health probes with passive
// failure detection, bounded retry-with-backoff failover along the
// hash ring, a multi-model shard that pages Programs in and out under
// the registry's memory budget (warm-starting from peers' gob
// snapshots), and a closed-loop load generator that reports tail
// latency per shard.
//
// Dataflow:
//
//	client ──> Router ──(ring order, skip unhealthy, retry 5xx)──> Shard
//	                                                                 │
//	                                                 serve.Registry (LRU budget)
//	                                                                 │
//	                                                 serve.Server (micro-batch)
//
// The router never interprets payloads: /detect and /infer bodies pass
// through byte-for-byte, so fleet-wide results are bitwise identical
// to a single shard's.
package fleet

import (
	"fmt"
	"net/url"

	"rtoss/internal/engine"
	"rtoss/internal/serve"
)

// KeyFromQuery resolves the model key a request addresses. A ?key=
// parameter ("Arch/variant/mode") wins; otherwise ?model=, ?variant=
// and ?engine= (alias ?mode=) individually override the default key.
// Requests with none of these land on def — the single-model fleet
// case needs no routing parameters at all.
func KeyFromQuery(q url.Values, def serve.Key) (serve.Key, error) {
	if s := q.Get("key"); s != "" {
		return serve.ParseKey(s)
	}
	k := def
	if v := q.Get("model"); v != "" {
		k.Arch = v
	}
	if v := q.Get("variant"); v != "" {
		if _, err := serve.ParseVariant(v); err != nil {
			return serve.Key{}, err
		}
		k.Variant = v
	}
	v := q.Get("engine")
	if v == "" {
		v = q.Get("mode")
	}
	if v != "" {
		mode, err := engine.ParseMode(v)
		if err != nil {
			return serve.Key{}, fmt.Errorf("fleet: query engine=%q: %w", v, err)
		}
		k.Mode = mode
	}
	return k, nil
}
