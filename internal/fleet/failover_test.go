package fleet

// failover_test.go is the fleet acceptance gate: a shard dies under
// live load and the client must never see it (zero 5xx, zero transport
// errors), and routed evaluation must stay bitwise identical to a
// single shard across a kill and a restart.

import (
	"testing"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/eval"
	"rtoss/internal/serve"
)

// fleetUnderTest assembles three restartable shards (all hosting the
// same tiny model) behind a router tuned for fast failover.
func fleetUnderTest(t testing.TB, k serve.Key) (*Router, []*restartableShard, func()) {
	t.Helper()
	shards := []*restartableShard{
		startRestartableShard(t, k),
		startRestartableShard(t, k),
		startRestartableShard(t, k),
	}
	backends := make([]string, len(shards))
	for i, s := range shards {
		backends[i] = s.url()
	}
	rt, err := NewRouter(RouterConfig{
		Backends:       backends,
		Default:        k,
		Backoff:        2 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
		Probe:          ProberConfig{Interval: 25 * time.Millisecond, Timeout: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		rt.Close()
		for _, s := range shards {
			s.kill()
			s.sh.Close()
		}
	}
	return rt, shards, cleanup
}

// TestFleetFailoverUnderLoad kills one shard in the middle of a load
// test and restarts it before the end: the client-side report must
// show zero 5xx responses and zero transport errors (the router ate
// the failure), and the router counters must balance.
func TestFleetFailoverUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load test")
	}
	k := tinyKey("A")
	rt, shards, cleanup := fleetUnderTest(t, k)
	defer cleanup()
	front := startRestartable(t, rt.Handler())
	defer front.kill()

	victim := shards[0]
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(600 * time.Millisecond)
		victim.kill()
		time.Sleep(600 * time.Millisecond)
		victim.restart()
	}()

	rep, err := RunLoad(LoadConfig{
		URL:         front.url(),
		Duration:    2 * time.Second,
		Concurrency: 3,
		Keys:        []serve.Key{k},
		Scenes:      2,
		SceneW:      96, SceneH: 64,
		Timeout: 8 * time.Second,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	if rep.Requests == 0 || rep.Success == 0 {
		t.Fatalf("load test sent nothing: %+v", rep)
	}
	if rep.ServerErr != 0 {
		t.Fatalf("%d 5xx responses leaked to the client across the shard kill", rep.ServerErr)
	}
	if rep.NetErr != 0 {
		t.Fatalf("%d transport errors leaked to the client across the shard kill", rep.NetErr)
	}
	st := rt.Stats()
	if st["requests"] != st["success"]+st["passthrough"]+st["exhausted"]+st["rejected"] {
		t.Fatalf("router stats %v are not conservation-consistent", st)
	}
	if st["exhausted"] != 0 {
		t.Fatalf("router stats %v: %d requests exhausted every replica", st, st["exhausted"])
	}
	if uint64(rep.Success) != st["success"] {
		t.Fatalf("client saw %d successes, router counted %d", rep.Success, st["success"])
	}
	// The restarted shard must rejoin: wait for its probe to pass and
	// confirm all three backends are healthy again.
	deadline := time.Now().Add(3 * time.Second)
	for {
		healthy := 0
		for _, s := range rt.prober.Statuses() {
			if s.Healthy {
				healthy++
			}
		}
		if healthy == len(shards) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted shard never rejoined: %+v", rt.prober.Statuses())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestFleetEvalParityAcrossKillAndRestart runs the real mAP evaluator
// through the router in three fleet states — all shards up, the
// default key's owner killed, and the owner restarted — and requires
// the score to be bitwise identical to evaluating one shard directly.
// The router forwards bodies and responses untouched and detection is
// deterministic, so any drift here means the fleet tier corrupted a
// request.
func TestFleetEvalParityAcrossKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second eval runs")
	}
	k := tinyKey("A")
	rt, shards, cleanup := fleetUnderTest(t, k)
	defer cleanup()
	front := startRestartable(t, rt.Handler())
	defer front.kill()

	prog := tinyProgram(t)
	run := func(url string) float64 {
		rep, err := eval.Run(eval.Config{
			Scenes: 4, Seed: 3, SceneW: 96, SceneH: 64,
			Res:     32,
			Detect:  detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05},
			Backend: eval.BackendHTTP, URL: url,
			Program: prog,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MAP
	}

	direct := run(shards[1].url()) // any single shard, no router
	viaFleet := run(front.url())
	if viaFleet != direct {
		t.Fatalf("routed mAP %v != direct shard mAP %v (all shards up)", viaFleet, direct)
	}

	// Kill the key's ring owner: traffic fails over, score must not move.
	owner := rt.ring.owner(k.String())
	var victim *restartableShard
	for _, s := range shards {
		if s.url() == owner {
			victim = s
			break
		}
	}
	victim.kill()
	afterKill := run(front.url())
	if afterKill != direct {
		t.Fatalf("routed mAP %v != %v after killing the owner shard", afterKill, direct)
	}

	victim.restart()
	// Wait for the probe to re-promote the restarted shard so the run
	// below exercises it again.
	deadline := time.Now().Add(3 * time.Second)
	for !rt.prober.Healthy(owner) {
		if time.Now().After(deadline) {
			t.Fatalf("owner %s never re-promoted after restart", owner)
		}
		time.Sleep(25 * time.Millisecond)
	}
	afterRestart := run(front.url())
	if afterRestart != direct {
		t.Fatalf("routed mAP %v != %v after restarting the owner shard", afterRestart, direct)
	}
}
