package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"rtoss/internal/core"
	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/kitti"
	"rtoss/internal/nn"
	"rtoss/internal/serve"
	"rtoss/internal/tensor"
)

// tinyProgram compiles a small pruned detector (the same shape the
// serve tests use) so fleet tests never pay for zoo-scale models.
func tinyProgram(t testing.TB) *engine.Program {
	t.Helper()
	b := nn.NewBuilder("tinydet", 3, 32, 32, 2)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 8, 3, 2, 1, nn.SiLU)
	c3 := b.C3("c3", x, 8, 8, 1, true, nn.SiLU)
	x = b.ConvBNAct("down", c3, 8, 16, 3, 2, 1, nn.SiLU)
	head := b.Conv("head", x, 16, 14, 1, 1, 0, true)
	b.Detect("detect", head)
	m := b.MustBuild()
	m.InitWeights(3)
	if _, err := core.NewVariant(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	p, err := engine.Compile(m, engine.Options{Mode: engine.ModeSparse})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tinySpec() detect.HeadSpec {
	return detect.HeadSpec{
		Kind:    detect.HeadYOLOv5,
		Classes: 2,
		Levels:  []detect.HeadLevel{{Stride: 4, Anchors: [][2]float64{{8, 8}, {16, 16}}}},
	}
}

func tinyPipe(serve.Key, *engine.Program) (detect.Config, error) {
	return detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05}, nil
}

func tinyKey(arch string) serve.Key {
	return serve.Key{Arch: arch, Variant: "dense", Mode: engine.ModeSparse}
}

// ppmImage renders one deterministic synthetic scene as PPM bytes.
func ppmImage(t testing.TB, seed uint64) []byte {
	t.Helper()
	rs := kitti.RenderedDataset(seed, 1, 96, 64)
	var buf bytes.Buffer
	if err := tensor.EncodePPM(&buf, rs[0].Image); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTinyShard builds a Shard pre-installed with tiny programs under
// the given keys; the first key is the default.
func newTinyShard(t testing.TB, keys ...serve.Key) *Shard {
	t.Helper()
	sh := NewShard(ShardConfig{
		Default: keys[0], Res: 32, PipeFor: tinyPipe,
		Serve: serve.Config{Workers: 1, MaxBatch: 2, QueueCap: 16},
	})
	for _, k := range keys {
		if _, err := sh.Registry().Install(k, tinyProgram(t)); err != nil {
			t.Fatal(err)
		}
	}
	return sh
}

func TestRingOrderIsDeterministicAndComplete(t *testing.T) {
	backends := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r, err := newRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits := map[string]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("Model%d/dense/sparse", i)
		o1, o2 := r.order(key), r.order(key)
		if len(o1) != len(backends) {
			t.Fatalf("order(%q) has %d entries, want %d", key, len(o1), len(backends))
		}
		seen := map[string]bool{}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("order(%q) not deterministic", key)
			}
			if seen[o1[j]] {
				t.Fatalf("order(%q) repeats %q", key, o1[j])
			}
			seen[o1[j]] = true
		}
		hits[o1[0]]++
	}
	// Consistent hashing must spread owners across the fleet: with 200
	// keys over 4 backends, every backend should own a decent share.
	for _, b := range backends {
		if hits[b] < 20 {
			t.Errorf("backend %s owns only %d/200 keys (imbalanced ring)", b, hits[b])
		}
	}
	if _, err := newRing(nil, 0); err == nil {
		t.Fatal("empty ring must be rejected")
	}
	if _, err := newRing([]string{"x", "x"}, 0); err == nil {
		t.Fatal("duplicate backends must be rejected")
	}
}

func TestKeyFromQuery(t *testing.T) {
	def := tinyKey("YOLOv5s")
	q := url.Values{}
	if k, err := KeyFromQuery(q, def); err != nil || k != def {
		t.Fatalf("empty query -> %v, %v; want default", k, err)
	}
	q.Set("model", "RetinaNet")
	q.Set("variant", "rtoss-3ep")
	q.Set("engine", "auto")
	k, err := KeyFromQuery(q, def)
	if err != nil {
		t.Fatal(err)
	}
	want := serve.Key{Arch: "RetinaNet", Variant: "rtoss-3ep", Mode: engine.ModeAuto}
	if k != want {
		t.Fatalf("got %v, want %v", k, want)
	}
	full := url.Values{"key": []string{want.String()}}
	if k, err := KeyFromQuery(full, def); err != nil || k != want {
		t.Fatalf("key= form -> %v, %v", k, err)
	}
	for _, bad := range []url.Values{
		{"variant": []string{"nope"}},
		{"engine": []string{"warp"}},
		{"key": []string{"just-one-part"}},
	} {
		if _, err := KeyFromQuery(bad, def); err == nil {
			t.Fatalf("query %v accepted, want error", bad)
		}
	}
}

// TestShardServesMultipleModels drives two model keys through one
// shard handler and checks per-key dispatch plus the merged stats doc.
func TestShardServesMultipleModels(t *testing.T) {
	a, b := tinyKey("A"), tinyKey("B")
	sh := newTinyShard(t, a, b)
	defer sh.Close()
	ts := httptest.NewServer(sh.Handler())
	defer ts.Close()

	img := ppmImage(t, 3)
	for _, k := range []serve.Key{a, b} {
		resp, err := http.Post(ts.URL+"/detect?key="+url.QueryEscape(k.String()), "image/x-portable-pixmap", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect %v: %d %s", k, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Shard struct {
			Resident  []string `json:"resident"`
			Evictions uint64   `json:"evictions"`
		} `json:"shard"`
		Models map[string]json.RawMessage `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(doc.Shard.Resident) != 2 || len(doc.Models) != 2 {
		t.Fatalf("stats resident=%v models=%d, want both keys", doc.Shard.Resident, len(doc.Models))
	}
	// /stream is refused cleanly at the fleet tier.
	sresp, err := http.Post(ts.URL+"/stream", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("/stream answered %d, want 501", sresp.StatusCode)
	}
}

// TestShardEvictsUnderBudget bounds the registry to two programs and
// touches a third key: the LRU one must be evicted, its serving stack
// closed, and the shard must keep serving the survivors.
func TestShardEvictsUnderBudget(t *testing.T) {
	a, b, c := tinyKey("A"), tinyKey("B"), tinyKey("C")
	sh := newTinyShard(t, a, b)
	defer sh.Close()
	one := tinyProgram(t).MemoryBytes()
	sh.Registry().SetBudget(2*one + one/2)
	ts := httptest.NewServer(sh.Handler())
	defer ts.Close()

	img := ppmImage(t, 3)
	post := func(k serve.Key) int {
		resp, err := http.Post(ts.URL+"/detect?key="+url.QueryEscape(k.String()), "image/x-portable-pixmap", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(a); code != http.StatusOK {
		t.Fatalf("detect A: %d", code)
	}
	if code := post(b); code != http.StatusOK {
		t.Fatalf("detect B: %d", code)
	}
	// Install C (as a router-directed warm add would) and serve it:
	// the budget forces A out — it was least recently used.
	if _, err := sh.Registry().Install(c, tinyProgram(t)); err != nil {
		t.Fatal(err)
	}
	if code := post(c); code != http.StatusOK {
		t.Fatalf("detect C: %d", code)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		keys := sh.Registry().Keys()
		if len(keys) == 2 && keys[0] == b && keys[1] == c {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry keys %v, want [B C] after eviction", keys)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sh.resident(a) != nil {
		t.Fatal("evicted key A still has a serving stack")
	}
	if code := post(b); code != http.StatusOK {
		t.Fatalf("detect B after eviction: %d", code)
	}
}

// TestShardWarmHandoffBitwise starts a donor shard, then a joiner that
// warm-starts from it, and checks the joiner's /detect responses are
// byte-identical to the donor's — the snapshot really transplanted the
// model.
func TestShardWarmHandoffBitwise(t *testing.T) {
	k := tinyKey("A")
	donor := newTinyShard(t, k)
	defer donor.Close()
	donorTS := httptest.NewServer(donor.Handler())
	defer donorTS.Close()

	// The joiner has no program installed and a fake arch, so a cold
	// build would fail: serving at all proves the warm handoff worked.
	joiner := NewShard(ShardConfig{
		Default: k, Res: 32, PipeFor: tinyPipe,
		WarmFrom: []string{"http://127.0.0.1:1", donorTS.URL}, // first peer is dead: must be skipped
		Serve:    serve.Config{Workers: 1},
	})
	defer joiner.Close()
	joinerTS := httptest.NewServer(joiner.Handler())
	defer joinerTS.Close()

	img := ppmImage(t, 7)
	get := func(base string) []byte {
		resp, err := http.Post(base+"/detect", "image/x-portable-pixmap", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/detect: %d %s", base, resp.StatusCode, body)
		}
		return body
	}
	// The detections must be bitwise identical; only the wall-clock
	// timing_ms section may differ between the two servers.
	want := stripTiming(t, get(donorTS.URL))
	got := stripTiming(t, get(joinerTS.URL))
	if !bytes.Equal(want, got) {
		t.Fatalf("joiner response differs from donor:\n donor: %s\njoiner: %s", want, got)
	}
}

// stripTiming drops the "timing_ms" member from a /detect response so
// bitwise comparisons cover only the deterministic payload.
func stripTiming(t *testing.T, body []byte) []byte {
	t.Helper()
	i := bytes.LastIndex(body, []byte(`,"timing_ms":`))
	if i < 0 {
		t.Fatalf("response has no timing_ms section: %s", body)
	}
	return body[:i]
}

// TestRouterFailsOverOnDeadBackend routes through a two-backend ring
// where one backend is dead; every request must still succeed, the
// prober must mark the dead backend down, and the router counters must
// stay conservation-consistent.
func TestRouterFailsOverOnDeadBackend(t *testing.T) {
	k := tinyKey("A")
	sh := newTinyShard(t, k)
	defer sh.Close()
	live := httptest.NewServer(sh.Handler())
	defer live.Close()

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection-refused backend

	rt, err := NewRouter(RouterConfig{
		Backends: []string{dead.URL, live.URL},
		Default:  k,
		Backoff:  time.Millisecond,
		Probe:    ProberConfig{Interval: 20 * time.Millisecond, Timeout: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	img := ppmImage(t, 5)
	const n = 6
	for i := 0; i < n; i++ {
		resp, err := http.Post(front.URL+"/detect", "image/x-portable-pixmap", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	st := rt.Stats()
	if st["requests"] != n || st["success"] != n {
		t.Fatalf("stats %v: want requests=success=%d", st, n)
	}
	if st["requests"] != st["success"]+st["passthrough"]+st["exhausted"]+st["rejected"] {
		t.Fatalf("stats %v are not conservation-consistent", st)
	}
	// After the passive MarkDown, the dead backend must no longer be
	// attempted first: at most the first request pays a retry.
	if st["retries"] > 2 {
		t.Errorf("stats %v: %d retries for %d requests — passive health not applied", st, st["retries"], n)
	}
	// /healthz reflects the one live backend; /stream is refused.
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", hresp.StatusCode)
	}
	sresp, err := http.Post(front.URL+"/stream", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("/stream: %d, want 501", sresp.StatusCode)
	}
}

// TestRouterPassesThroughClientErrors pins the non-retryable path: a
// 4xx from the shard must reach the client as-is (no failover storm)
// and count as passthrough.
func TestRouterPassesThroughClientErrors(t *testing.T) {
	k := tinyKey("A")
	sh := newTinyShard(t, k)
	defer sh.Close()
	live := httptest.NewServer(sh.Handler())
	defer live.Close()
	rt, err := NewRouter(RouterConfig{
		Backends: []string{live.URL},
		Default:  k,
		Probe:    ProberConfig{Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/detect", "image/x-portable-pixmap", strings.NewReader("not an image"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage image answered %d, want 400", resp.StatusCode)
	}
	st := rt.Stats()
	if st["passthrough"] != 1 || st["attempts"] != 1 {
		t.Fatalf("stats %v: want one passthrough in one attempt", st)
	}
}

// restartableServer hosts a handler on a fixed port so it can be
// killed and brought back at the same address — the ring keys off the
// URL, so a restart rejoins the fleet without router reconfiguration.
type restartableServer struct {
	t       testing.TB
	handler http.Handler
	addr    string
	hs      *http.Server
	ln      net.Listener
}

func startRestartable(t testing.TB, h http.Handler) *restartableServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &restartableServer{t: t, handler: h, addr: ln.Addr().String(), ln: ln}
	rs.serve()
	return rs
}

func (rs *restartableServer) serve() {
	rs.hs = &http.Server{Handler: rs.handler}
	go rs.hs.Serve(rs.ln)
}

func (rs *restartableServer) url() string { return "http://" + rs.addr }

// kill drops the listener and every open connection mid-flight.
func (rs *restartableServer) kill() {
	rs.hs.Close()
	rs.ln.Close()
}

// restart re-listens on the same address with the same handler state.
func (rs *restartableServer) restart() {
	var err error
	deadline := time.Now().Add(2 * time.Second)
	for {
		rs.ln, err = net.Listen("tcp", rs.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			rs.t.Fatalf("re-listening on %s: %v", rs.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rs.serve()
}

// restartableShard pairs a Shard with its restartable listener.
type restartableShard struct {
	sh *Shard
	*restartableServer
}

func startRestartableShard(t testing.TB, keys ...serve.Key) *restartableShard {
	t.Helper()
	sh := newTinyShard(t, keys...)
	return &restartableShard{sh: sh, restartableServer: startRestartable(t, sh.Handler())}
}
