package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rtoss/internal/rng"
	"rtoss/internal/serve"
)

// maxProxyBody bounds a request body the router buffers for replay
// across failover attempts (matches the shard's own /detect limit).
const maxProxyBody = 32 << 20

// Router is the fleet front end: it consistent-hashes each request's
// model key onto the backend ring, forwards to the key's owner, and on
// transport errors or retryable statuses (500/502/503) fails over
// along the ring with decorrelated-jitter backoff — preferring
// backends whose circuit breaker admits traffic, trying the rest only
// as a last resort. Request bodies are buffered up front so every
// attempt replays identical bytes; responses stream back untouched, so
// fleet results are bitwise identical to a single shard's.
//
// The degradation ladder: the key's ring owner first; on failure, each
// next ring owner in order; when every attempt is spent, shed with 503
// + Retry-After. A request is never left hanging on a dead backend —
// every rung either answers or falls through to the next.
type Router struct {
	cfg    RouterConfig
	ring   *ring
	prober *Prober
	client *http.Client // shared keep-alive transport across attempts

	// jrng draws the retry backoff jitter; guarded by jmu (the proxy
	// path only touches it between failed attempts, never per request).
	jmu  sync.Mutex
	jrng *rng.RNG

	stats routerStats
}

// RouterConfig wires a Router. Zero values select the defaults.
type RouterConfig struct {
	// Backends are the shard base URLs (e.g. "http://host:port").
	Backends []string
	// Default is the model key for requests without routing params.
	Default serve.Key
	// VNodes is the virtual-node count per backend (default 64).
	VNodes int
	// Attempts bounds upstream tries per request (default: one per
	// backend).
	Attempts int
	// Backoff is the base delay between failover attempts. Retries
	// sleep with decorrelated jitter: the first retry waits exactly
	// Backoff, each later one a uniform draw from [Backoff,
	// min(BackoffCap, 3×previous)) — growing like doubling on average
	// but desynchronized, so a fleet of clients retrying a dead owner
	// does not arrive in lockstep waves (default 10ms).
	Backoff time.Duration
	// BackoffCap bounds a single retry sleep (default 1s).
	BackoffCap time.Duration
	// BackoffSeed pins the jitter RNG for reproducible tests; 0 seeds
	// from the clock (production).
	BackoffSeed uint64
	// AttemptTimeout bounds each upstream try (default 60s).
	AttemptTimeout time.Duration
	// Probe tunes the health prober.
	Probe ProberConfig
}

type routerStats struct {
	requests    atomic.Uint64 // proxied requests accepted
	attempts    atomic.Uint64 // upstream forward attempts
	retries     atomic.Uint64 // attempts beyond the first per request
	failovers   atomic.Uint64 // responses served by a non-primary replica
	success     atomic.Uint64 // 2xx proxied back to the client
	passthrough atomic.Uint64 // non-retryable upstream statuses proxied back
	exhausted   atomic.Uint64 // 503s shed after every replica failed
	rejected    atomic.Uint64 // requests the router itself refused (bad key/body)
}

// NewRouter validates the config and starts the health prober.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ring, err := newRing(cfg.Backends, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = len(cfg.Backends)
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = time.Second
	}
	if cfg.BackoffSeed == 0 {
		cfg.BackoffSeed = uint64(time.Now().UnixNano())
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = serve.DefaultClientTimeout
	}
	return &Router{
		cfg:    cfg,
		ring:   ring,
		prober: NewProber(cfg.Backends, cfg.Probe),
		client: &http.Client{},
		jrng:   rng.New(cfg.BackoffSeed),
	}, nil
}

// Close stops the prober and drops idle upstream connections.
func (rt *Router) Close() {
	rt.prober.Close()
	rt.client.CloseIdleConnections()
}

// Handler is the router's HTTP surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !rt.prober.AnyHealthy() {
			http.Error(w, "fleet: no healthy backends", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, rt.statsDoc(r.Context()))
	})
	mux.HandleFunc("POST /stream", func(w http.ResponseWriter, r *http.Request) {
		// Streaming sessions are stateful (one session pins one model
		// server); proxying them through a failover tier would tear
		// session state on every retry, so the router refuses cleanly.
		http.Error(w, "fleet: /stream is not proxied; connect to a shard's rtoss serve directly", http.StatusNotImplemented)
	})
	mux.HandleFunc("POST /detect", rt.proxy)
	mux.HandleFunc("POST /infer", rt.proxy)
	mux.HandleFunc("GET /program", rt.proxy)
	return mux
}

// proxy routes one request along the ring with failover.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	rt.stats.requests.Add(1)
	key, err := KeyFromQuery(r.URL.Query(), rt.cfg.Default)
	if err != nil {
		rt.stats.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var body []byte
	if r.Body != nil {
		body, err = io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
		if err != nil {
			rt.stats.rejected.Add(1)
			http.Error(w, fmt.Sprintf("fleet: reading request body: %v", err), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > maxProxyBody {
			rt.stats.rejected.Add(1)
			http.Error(w, fmt.Sprintf("fleet: request body exceeds the %d-byte proxy limit", maxProxyBody), http.StatusRequestEntityTooLarge)
			return
		}
	}

	order := rt.attemptOrder(key.String())
	var backoff time.Duration
	var lastErr error
	for i, backend := range order {
		if i > 0 {
			rt.stats.retries.Add(1)
			backoff = rt.nextBackoff(backoff)
			time.Sleep(backoff)
		}
		rt.stats.attempts.Add(1)
		resp, err := rt.forward(r, backend, body)
		if err != nil {
			rt.prober.MarkDown(backend, err)
			lastErr = err
			continue
		}
		// Any HTTP response proves the transport works: close the
		// breaker (a half-open trial is promoted by exactly this).
		// Retryable 5xx bodies below still fail the request over —
		// breaker state tracks reachability, not application health.
		rt.prober.MarkSuccess(backend)
		if retryableStatus(resp.StatusCode) {
			lastErr = fmt.Errorf("%s answered %s", backend, resp.Status)
			excerpt, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
			io.Copy(io.Discard, io.LimitReader(resp.Body, maxProxyBody))
			resp.Body.Close()
			if len(excerpt) > 0 {
				lastErr = fmt.Errorf("%s answered %s: %s", backend, resp.Status, bytes.TrimSpace(excerpt))
			}
			continue
		}
		if backend != order[0] {
			rt.stats.failovers.Add(1)
		}
		rt.relay(w, resp)
		return
	}
	// The bottom of the degradation ladder: every rung failed, so shed
	// explicitly — 503 with a Retry-After hint sized to the breaker's
	// base hold — rather than hanging the client or masquerading as a
	// gateway error. 503 is what load balancers and clients treat as
	// "back off and retry elsewhere/later", which is exactly the state.
	rt.stats.exhausted.Add(1)
	w.Header().Set("Retry-After", "1")
	http.Error(w, fmt.Sprintf("fleet: all %d replica attempts for %v failed, last error: %v",
		len(order), key, lastErr), http.StatusServiceUnavailable)
}

// nextBackoff draws the next retry sleep with decorrelated jitter:
// the first retry waits exactly the configured base, each later one a
// uniform draw from [base, min(cap, 3×previous)).
func (rt *Router) nextBackoff(prev time.Duration) time.Duration {
	base, cap := rt.cfg.Backoff, rt.cfg.BackoffCap
	if prev <= 0 {
		return base
	}
	hi := 3 * prev
	if hi > cap || hi <= 0 {
		hi = cap
	}
	if hi <= base {
		return base
	}
	rt.jmu.Lock()
	f := rt.jrng.Float64()
	rt.jmu.Unlock()
	return base + time.Duration(f*float64(hi-base))
}

// attemptOrder is the ring's failover order for a key with backends
// whose breaker blocks traffic (open, hold not yet elapsed) moved to
// the back: they are still tried as a last resort (the breaker may be
// stale) but never before an admissible replica. Allow itself
// transitions an open breaker whose hold has elapsed to half-open —
// the request that then reaches it is the trial. The slice is capped
// at the configured attempt budget.
func (rt *Router) attemptOrder(key string) []string {
	order := rt.ring.order(key)
	sorted := make([]string, 0, len(order))
	blocked := make([]bool, len(order))
	for i, b := range order {
		if rt.prober.Allow(b) {
			sorted = append(sorted, b)
		} else {
			blocked[i] = true
		}
	}
	for i, b := range order {
		if blocked[i] {
			sorted = append(sorted, b)
		}
	}
	if len(sorted) > rt.cfg.Attempts {
		sorted = sorted[:rt.cfg.Attempts]
	}
	return sorted
}

// forward replays the request against one backend.
func (rt *Router) forward(r *http.Request, backend string, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.AttemptTimeout)
	u := backend + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.ContentLength = int64(len(body))
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The context must outlive the response body read; tie the cancel
	// to body close so relay/drain paths release it.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.once.Do(c.cancel)
	return err
}

// relay copies an upstream response to the client verbatim.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		rt.stats.success.Add(1)
	} else {
		rt.stats.passthrough.Add(1)
	}
	for _, h := range []string{"Content-Type", "Content-Length"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// retryableStatus reports whether an upstream status warrants failing
// over to the next replica: transport-adjacent server failures only.
// 4xx (the client's fault), 501 (deliberate refusal) and 504 (the
// frame's own deadline budget expired — a replay would arrive even
// later) pass through.
func retryableStatus(code int) bool {
	return code == http.StatusInternalServerError ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// Stats snapshots the router's counters. The counters are
// conservation-consistent: requests == success + passthrough +
// exhausted + rejected once in-flight requests settle.
func (rt *Router) Stats() map[string]uint64 {
	return map[string]uint64{
		"requests":    rt.stats.requests.Load(),
		"attempts":    rt.stats.attempts.Load(),
		"retries":     rt.stats.retries.Load(),
		"failovers":   rt.stats.failovers.Load(),
		"success":     rt.stats.success.Load(),
		"passthrough": rt.stats.passthrough.Load(),
		"exhausted":   rt.stats.exhausted.Load(),
		"rejected":    rt.stats.rejected.Load(),
	}
}

// statsDoc is the GET /stats document: router counters, per-backend
// health, and each live backend's own /stats fetched in parallel.
func (rt *Router) statsDoc(ctx context.Context) map[string]any {
	statuses := rt.prober.Statuses()
	shardStats := make([]any, len(statuses))
	var wg sync.WaitGroup
	for i, st := range statuses {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			shardStats[i] = rt.fetchShardStats(ctx, base)
		}(i, st.URL)
	}
	wg.Wait()
	backends := make([]map[string]any, len(statuses))
	for i, st := range statuses {
		backends[i] = map[string]any{
			"url":                  st.URL,
			"healthy":              st.Healthy,
			"breaker":              st.State,
			"breaker_trips":        st.Trips,
			"consecutive_failures": st.Fails,
			"stats":                shardStats[i],
		}
		if st.LastErr != "" {
			backends[i]["last_error"] = st.LastErr
		}
	}
	return map[string]any{
		"router":   rt.Stats(),
		"backends": backends,
	}
}

func (rt *Router) fetchShardStats(ctx context.Context, base string) any {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return map[string]any{"error": err.Error()}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return map[string]any{"error": err.Error()}
	}
	defer resp.Body.Close()
	var doc any
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxProxyBody)).Decode(&doc); err != nil {
		return map[string]any{"error": err.Error()}
	}
	io.Copy(io.Discard, resp.Body)
	return doc
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
