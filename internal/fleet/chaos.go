package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"rtoss/internal/core"
	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/eval"
	"rtoss/internal/faultinject"
	"rtoss/internal/kitti"
	"rtoss/internal/nn"
	"rtoss/internal/serve"
	"rtoss/internal/stream"
	"rtoss/internal/tensor"
)

// chaos.go is the reproducible chaos harness behind `rtoss chaos`: it
// stands up an in-process sharded fleet (real listeners, real HTTP),
// arms every layer's fault-injection points from one seeded schedule,
// drives the loadtest generator through the router, and then asserts
// the acceptance invariants the robustness work promises:
//
//  1. zero client-visible transport errors — every shard-side reset,
//     500, stall, panic or flap is absorbed by the failover ladder;
//  2. the client-visible 5xx rate stays bounded (exhausted sheds only);
//  3. the router's conservation counters balance exactly
//     (requests == success + passthrough + exhausted + rejected);
//  4. detection quality on surviving responses is bitwise unchanged —
//     mAP through the faulted fleet equals mAP against a fault-free
//     shard, float64-equal, no tolerance;
//  5. stream sessions killed mid-frame leave balanced frame counters
//     (frames_in == served + stale + deadline + errors).
//
// Every run is a pure function of the seed: the injector, the router's
// backoff jitter, the prober's hold jitter and the scene renderer all
// draw from it, so a failing chaos run replays exactly.

// TinyKey is the model key chaos runs serve the built-in tiny detector
// under when no zoo key is requested.
func TinyKey() serve.Key {
	return serve.Key{Arch: "tiny", Variant: "dense", Mode: engine.ModeSparse}
}

// TinySpec is the detect head spec matching TinyProgram's output.
func TinySpec() detect.HeadSpec {
	return detect.HeadSpec{
		Kind:    detect.HeadYOLOv5,
		Classes: 2,
		Levels:  []detect.HeadLevel{{Stride: 4, Anchors: [][2]float64{{8, 8}, {16, 16}}}},
	}
}

// TinyProgram compiles a small pruned detector (the same shape the
// serve and fleet tests use) so chaos runs never pay for zoo-scale
// models. Deterministic: every call yields a bitwise-identical model.
func TinyProgram() (*engine.Program, error) {
	b := nn.NewBuilder("tinydet", 3, 32, 32, 2)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 8, 3, 2, 1, nn.SiLU)
	c3 := b.C3("c3", x, 8, 8, 1, true, nn.SiLU)
	x = b.ConvBNAct("down", c3, 8, 16, 3, 2, 1, nn.SiLU)
	head := b.Conv("head", x, 16, 14, 1, 1, 0, true)
	b.Detect("detect", head)
	m := b.MustBuild()
	m.InitWeights(3)
	if _, err := core.NewVariant(3).Prune(m); err != nil {
		return nil, err
	}
	return engine.Compile(m, engine.Options{Mode: engine.ModeSparse})
}

// ChaosConfig parameterises one chaos run. Zero values select the
// defaults; the zero Key selects the built-in tiny detector.
type ChaosConfig struct {
	// Seed drives every random draw in the run (default 1).
	Seed uint64
	// Plan is the fault schedule (default the "mixed" preset).
	Plan faultinject.Plan
	// Key is the model every shard serves; the zero Key uses the
	// built-in tiny detector (no zoo build).
	Key serve.Key
	// Shards is the fleet size (default 3).
	Shards int
	// Res is the square letterbox resolution (default 32 for the tiny
	// detector, 64 for zoo keys).
	Res int
	// Duration bounds the load phase (default 3s).
	Duration time.Duration
	// Concurrency is the load-generator worker count (default 4).
	Concurrency int
	// Scenes, SceneW, SceneH shape the synthetic traffic (default 4
	// scenes at 96x64).
	Scenes         int
	SceneW, SceneH int
	// Max5xxRate bounds the client-visible 5xx fraction of the load
	// phase (default 0.05).
	Max5xxRate float64
	// StreamFrames is the per-session frame count for the stream
	// disconnect phase (default 16; negative skips the phase).
	StreamFrames int
	// StreamSessions is how many stream sessions to run (default 8).
	StreamSessions int
	// Watchdog is each shard server's stuck-batch allowance ceiling
	// (default 2s).
	Watchdog time.Duration
	// EvalScenes sizes the parity phase (default 4).
	EvalScenes int
}

// ChaosReport is the run's outcome, JSON-shaped for the CI artifact.
// Violations is empty iff every acceptance invariant held.
type ChaosReport struct {
	Seed   uint64 `json:"seed"`
	Plan   string `json:"plan"`
	Shards int    `json:"shards"`
	Key    string `json:"key"`

	Load       *LoadReport                              `json:"load"`
	Router     map[string]uint64                        `json:"router"`
	Injections map[faultinject.Point]faultinject.Counts `json:"injections,omitempty"`

	DirectMAP        float64 `json:"direct_map"`
	RoutedMAP        float64 `json:"routed_map"`
	DirectDetections int     `json:"direct_detections"`
	RoutedDetections int     `json:"routed_detections"`
	ParityOK         bool    `json:"parity_ok"`

	Stream *stream.Summary `json:"stream,omitempty"`

	Violations []string `json:"violations,omitempty"`
}

// OK reports whether every acceptance invariant held.
func (r *ChaosReport) OK() bool { return len(r.Violations) == 0 }

// WriteJSON writes the report to a file (the CI chaos artifact).
func (r *ChaosReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the report for a terminal.
func (r *ChaosReport) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "chaos seed=%d shards=%d key=%s plan=%q\n", r.Seed, r.Shards, r.Key, r.Plan)
	if r.Load != nil {
		fmt.Fprintf(&b, "  load: %d requests, %d ok, %d 4xx, %d 5xx, %d net errors\n",
			r.Load.Requests, r.Load.Success, r.Load.ClientErr, r.Load.ServerErr, r.Load.NetErr)
	}
	fmt.Fprintf(&b, "  router: requests=%d success=%d retries=%d failovers=%d exhausted=%d\n",
		r.Router["requests"], r.Router["success"], r.Router["retries"], r.Router["failovers"], r.Router["exhausted"])
	pts := make([]string, 0, len(r.Injections))
	for pt := range r.Injections {
		pts = append(pts, string(pt))
	}
	sort.Strings(pts)
	for _, pt := range pts {
		c := r.Injections[faultinject.Point(pt)]
		fmt.Fprintf(&b, "  fault %-20s fired %d/%d draws\n", pt, c.Fired, c.Draws)
	}
	fmt.Fprintf(&b, "  parity: direct mAP %v (%d det), routed mAP %v (%d det), bitwise match %v\n",
		r.DirectMAP, r.DirectDetections, r.RoutedMAP, r.RoutedDetections, r.ParityOK)
	if r.Stream != nil {
		fmt.Fprintf(&b, "  stream: %d in = %d served + %d stale + %d deadline + %d errors\n",
			r.Stream.FramesIn, r.Stream.FramesServed, r.Stream.DroppedStale, r.Stream.DroppedDeadline, r.Stream.Errors)
	}
	if r.OK() {
		fmt.Fprintf(&b, "  PASS: all invariants held\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// chaosBackend is one in-process shard behind a real listener.
type chaosBackend struct {
	sh  *Shard
	hs  *http.Server
	url string
}

func (cb *chaosBackend) close() {
	cb.hs.Close()
	cb.sh.Close()
}

// RunChaos executes one seeded chaos run and returns the report. A
// non-nil error means the harness itself failed to stand up; invariant
// failures are reported through ChaosReport.Violations instead.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	tiny := cfg.Key == (serve.Key{})
	if tiny {
		cfg.Key = TinyKey()
		if cfg.Res <= 0 {
			cfg.Res = 32
		}
	}
	if cfg.Res <= 0 {
		cfg.Res = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Plan == nil {
		cfg.Plan, _ = faultinject.Preset("mixed")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Scenes <= 0 {
		cfg.Scenes = 4
	}
	if cfg.SceneW <= 0 {
		cfg.SceneW = 96
	}
	if cfg.SceneH <= 0 {
		cfg.SceneH = 64
	}
	if cfg.Max5xxRate <= 0 {
		cfg.Max5xxRate = 0.05
	}
	if cfg.StreamFrames == 0 {
		cfg.StreamFrames = 16
	}
	if cfg.StreamSessions <= 0 {
		cfg.StreamSessions = 8
	}
	if cfg.Watchdog <= 0 {
		cfg.Watchdog = 2 * time.Second
	}
	if cfg.EvalScenes <= 0 {
		cfg.EvalScenes = 4
	}

	inj := faultinject.New(cfg.Seed, cfg.Plan)

	var spec detect.HeadSpec
	var pipeFor func(serve.Key, *engine.Program) (detect.Config, error)
	var prog *engine.Program
	if tiny {
		spec = TinySpec()
		pipeFor = func(serve.Key, *engine.Program) (detect.Config, error) {
			return detect.Config{Spec: spec, ScoreThreshold: 0.05}, nil
		}
		var err error
		if prog, err = TinyProgram(); err != nil {
			return nil, fmt.Errorf("fleet: chaos tiny program: %w", err)
		}
	}

	// The fleet: every shard shares the one injector, so the schedule's
	// draw ordinals interleave across shards exactly as traffic does.
	backends := make([]*chaosBackend, 0, cfg.Shards)
	defer func() {
		for _, cb := range backends {
			cb.close()
		}
	}()
	urls := make([]string, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		reg := serve.NewRegistry()
		reg.SetFaultInjector(inj)
		sh := NewShard(ShardConfig{
			Registry: reg, Default: cfg.Key, Res: cfg.Res,
			PipeFor: pipeFor, ShedLoad: true,
			Serve: serve.Config{
				Workers: 2, MaxBatch: 4, QueueCap: 64,
				Watchdog: cfg.Watchdog, FaultInjector: inj,
			},
		})
		if tiny {
			if _, err := sh.Registry().Install(cfg.Key, prog); err != nil {
				sh.Close()
				return nil, fmt.Errorf("fleet: chaos shard %d install: %w", i, err)
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			sh.Close()
			return nil, fmt.Errorf("fleet: chaos shard %d listen: %w", i, err)
		}
		hs := &http.Server{Handler: faultinject.Middleware(inj, sh.Handler())}
		go hs.Serve(ln)
		cb := &chaosBackend{sh: sh, hs: hs, url: "http://" + ln.Addr().String()}
		backends = append(backends, cb)
		urls = append(urls, cb.url)
	}

	// Fast failure detection: tight probe interval and short open holds
	// so a run measured in seconds exercises the full breaker cycle.
	rt, err := NewRouter(RouterConfig{
		Backends: urls, Default: cfg.Key,
		Backoff: 2 * time.Millisecond, BackoffCap: 50 * time.Millisecond,
		BackoffSeed:    cfg.Seed,
		AttemptTimeout: 15 * time.Second,
		Probe: ProberConfig{
			Interval: 50 * time.Millisecond, Timeout: 500 * time.Millisecond,
			FailThreshold: 2,
			OpenBase:      25 * time.Millisecond, OpenCap: 250 * time.Millisecond,
			Seed: cfg.Seed,
		},
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet: chaos router listen: %w", err)
	}
	front := &http.Server{Handler: rt.Handler()}
	go front.Serve(fln)
	defer front.Close()
	frontURL := "http://" + fln.Addr().String()

	rep := &ChaosReport{
		Seed: cfg.Seed, Plan: cfg.Plan.String(),
		Shards: cfg.Shards, Key: cfg.Key.String(),
	}

	// Phase 1: load under the full fault schedule.
	rep.Load, err = RunLoad(LoadConfig{
		URL: frontURL, Duration: cfg.Duration, Concurrency: cfg.Concurrency,
		Scenes: cfg.Scenes, SceneW: cfg.SceneW, SceneH: cfg.SceneH,
		Seed: cfg.Seed, Timeout: 30 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: chaos load phase: %w", err)
	}
	rep.Router = rt.Stats()

	if rep.Load.NetErr > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("client saw %d transport errors (want 0: the router must absorb every shard fault)", rep.Load.NetErr))
	}
	if rep.Load.Requests > 0 {
		rate := float64(rep.Load.ServerErr) / float64(rep.Load.Requests)
		if rate > cfg.Max5xxRate {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("client-visible 5xx rate %.4f exceeds bound %.4f (%d/%d)",
					rate, cfg.Max5xxRate, rep.Load.ServerErr, rep.Load.Requests))
		}
	} else {
		rep.Violations = append(rep.Violations, "load phase completed zero requests")
	}
	rs := rep.Router
	if got, want := rs["success"]+rs["passthrough"]+rs["exhausted"]+rs["rejected"], rs["requests"]; got != want {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("router conservation broken: success+passthrough+exhausted+rejected = %d, requests = %d", got, want))
	}

	// Phase 2: bitwise output parity. Baseline against one shard with
	// every fault disarmed, then the same evaluation through the faulted
	// fleet — minus the faults that corrupt the requests themselves
	// (ingest.corrupt, stream.disconnect): those legitimately change
	// responses, everything else must be absorbed without touching a
	// successful response's bytes.
	runEval := func(url string) (float64, int, error) {
		ecfg := eval.Config{
			Scenes: cfg.EvalScenes, Seed: cfg.Seed,
			SceneW: cfg.SceneW, SceneH: cfg.SceneH, Res: cfg.Res,
			Backend: eval.BackendHTTP, URL: url,
		}
		if tiny {
			ecfg.Detect = detect.Config{Spec: spec, ScoreThreshold: 0.05}
			ecfg.Program = prog
		} else {
			ecfg.Arch, ecfg.Variant, ecfg.Mode = cfg.Key.Arch, cfg.Key.Variant, cfg.Key.Mode
		}
		r, err := eval.Run(ecfg)
		if err != nil {
			return 0, 0, err
		}
		return r.MAP, r.Detections, nil
	}
	inj.SetPlan(nil)
	rep.DirectMAP, rep.DirectDetections, err = runEval(backends[0].url)
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("fault-free baseline eval failed: %v", err))
	} else if rep.DirectDetections == 0 {
		// A baseline that detects nothing would make the parity check
		// vacuous: any response corruption would go unnoticed.
		rep.Violations = append(rep.Violations, "fault-free baseline produced zero detections; parity check has no signal")
	}
	parityPlan := faultinject.Plan{}
	for pt, rule := range cfg.Plan {
		if pt == faultinject.PointIngestCorrupt || pt == faultinject.PointStreamDisconnect {
			continue
		}
		parityPlan[pt] = rule
	}
	inj.SetPlan(parityPlan)
	rep.RoutedMAP, rep.RoutedDetections, err = runEval(frontURL)
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("faulted fleet eval failed: %v", err))
	} else {
		rep.ParityOK = rep.RoutedMAP == rep.DirectMAP && rep.RoutedDetections == rep.DirectDetections
		if !rep.ParityOK {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("output parity broken: routed mAP %v / %d detections != direct mAP %v / %d detections (faults must not touch successful responses)",
					rep.RoutedMAP, rep.RoutedDetections, rep.DirectMAP, rep.DirectDetections))
		}
	}

	// Phase 3: stream sessions under mid-frame disconnects. The stream
	// tier runs beside the fleet (the router refuses /stream), so the
	// harness hosts its own hub on a tiny server and checks the frame
	// conservation the session layer promises even for killed streams.
	if cfg.StreamFrames > 0 && tiny {
		if sum, err := runStreamPhase(cfg, inj, prog, spec); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("stream phase failed: %v", err))
		} else {
			rep.Stream = sum
			if got := sum.FramesServed + sum.DroppedStale + sum.DroppedDeadline + sum.Errors; got != sum.FramesIn {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("stream conservation broken: served+stale+deadline+errors = %d, frames_in = %d", got, sum.FramesIn))
			}
		}
	}

	rep.Injections = inj.Counts()
	return rep, nil
}

// runStreamPhase drives StreamSessions raw-framed uploads into a hub
// with the mid-frame disconnect point armed and returns the hub's
// final counter summary.
func runStreamPhase(cfg ChaosConfig, inj *faultinject.Injector, prog *engine.Program, spec detect.HeadSpec) (*stream.Summary, error) {
	rule, ok := cfg.Plan[faultinject.PointStreamDisconnect]
	if !ok {
		rule = faultinject.Rule{P: 0.25}
	}
	inj.SetPlan(faultinject.Plan{faultinject.PointStreamDisconnect: rule})

	ssrv := serve.NewServer(prog, serve.Config{Workers: 1, MaxBatch: 2, QueueCap: 16})
	defer ssrv.Close()
	hub := stream.NewHub(ssrv, stream.Config{
		Pipe: detect.Config{Spec: spec, ScoreThreshold: 0.05},
		ResH: cfg.Res, ResW: cfg.Res,
		FaultInjector: inj,
	})
	defer hub.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: hub.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/stream"

	scene := kitti.RenderedDataset(cfg.Seed, 1, cfg.SceneW, cfg.SceneH)
	var ppm bytes.Buffer
	if err := tensor.EncodePPM(&ppm, scene[0].Image); err != nil {
		return nil, err
	}
	var body []byte
	for i := 0; i < cfg.StreamFrames; i++ {
		body = stream.AppendRawFrame(body, ppm.Bytes())
	}
	body = stream.FinishRaw(body)

	client := &http.Client{}
	defer client.CloseIdleConnections()
	for i := 0; i < cfg.StreamSessions; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, err
		}
		req.Header.Set("Content-Type", stream.RawContentType)
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			return nil, err
		}
		// Injected disconnects answer 400 (the truncated-upload path);
		// clean sessions answer 200. Anything else is a harness bug.
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			cancel()
			return nil, fmt.Errorf("stream session %d answered %s", i, resp.Status)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
	}
	hub.Close()
	sum := hub.Stats()
	return &sum, nil
}
