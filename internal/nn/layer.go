// Package nn defines the neural-network layer and model descriptors the
// pruning frameworks operate on: convolution layers with real weight
// tensors, batch-norm/activation/pooling/topology nodes, per-layer
// parameter and MAC accounting, and shape inference over the model DAG.
//
// The descriptors are deliberately framework-shaped: a layer knows its
// producers (Inputs), so the model converts losslessly to the
// computational graph consumed by Algorithm 1 (internal/graph), and
// every pruning decision made by R-TOSS or a baseline mutates the
// Weight tensors held here.
package nn

import (
	"fmt"

	"rtoss/internal/tensor"
)

// Kind enumerates layer types.
type Kind int

// Layer kinds. Conv and Linear carry weights; the rest are topology or
// pointwise nodes that shape inference and Algorithm 1's DFS must
// understand.
const (
	Input Kind = iota
	Conv
	BatchNorm
	Act
	MaxPool
	Upsample
	Concat
	Add
	GlobalPool
	Linear
	Detect // detection-head sink: collects multi-scale outputs
)

var kindNames = map[Kind]string{
	Input: "Input", Conv: "Conv", BatchNorm: "BatchNorm", Act: "Act",
	MaxPool: "MaxPool", Upsample: "Upsample", Concat: "Concat", Add: "Add",
	GlobalPool: "GlobalPool", Linear: "Linear", Detect: "Detect",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Activation enumerates activation functions.
type Activation int

// Supported activations.
const (
	NoAct Activation = iota
	ReLU
	SiLU
	LeakyReLU
	Sigmoid
)

// Layer is a single node of a model. Only the fields relevant to its
// Kind are populated.
type Layer struct {
	ID     int
	Name   string
	Module string // high-level module tag (e.g. "backbone.C3_1")
	Kind   Kind
	Inputs []int // producer layer IDs
	// NoPrune excludes the layer from pruning (e.g. RetinaNet's shared
	// head towers, which are too sensitive to prune; the paper's
	// RetinaNet compression ratios imply they were left dense).
	NoPrune bool
	// MACScale multiplies the layer's MAC count in cost models (zero
	// means 1). RetinaNet's shared heads are instantiated once but run
	// on five pyramid levels; their layers carry the spatial sum ratio.
	MACScale float64
	// Structure records the sparsity structure of the pruner that last
	// touched this layer (SparsityDense when never pruned). The
	// execution engine's auto mode uses it to pick a dense or sparse
	// kernel per layer.
	Structure Sparsity

	// Conv fields. Weight is laid out [OutC, InC/Groups, KH, KW].
	InC, OutC          int
	KH, KW             int
	Stride, Pad, Group int
	Weight             *tensor.Tensor
	Bias               []float32

	// BatchNorm fields (per-channel affine parameters).
	Gamma, Beta []float32

	// Act field.
	Act Activation

	// Pool fields (MaxPool).
	PoolK, PoolStride, PoolPad int

	// Upsample scale factor (nearest neighbour).
	Scale int

	// Linear fields. LinW is laid out [OutF, InF].
	InF, OutF int
	LinW      *tensor.Tensor
	LinB      []float32
}

// IsConv reports whether the layer carries convolution kernels.
func (l *Layer) IsConv() bool { return l.Kind == Conv }

// Is1x1 reports whether the layer is a pointwise (1×1) convolution.
func (l *Layer) Is1x1() bool { return l.Kind == Conv && l.KH == 1 && l.KW == 1 }

// Is3x3 reports whether the layer is a 3×3 convolution.
func (l *Layer) Is3x3() bool { return l.Kind == Conv && l.KH == 3 && l.KW == 3 }

// KernelCount returns the number of spatial kernels in a conv layer
// (OutC × InC/Groups); zero for other kinds.
func (l *Layer) KernelCount() int {
	if l.Kind != Conv {
		return 0
	}
	return l.OutC * (l.InC / l.Group)
}

// Kernel returns the row-major spatial kernel (length KH*KW) for output
// channel oc and (per-group) input channel ic as a mutable slice view
// into the layer's weight tensor.
func (l *Layer) Kernel(oc, ic int) []float32 {
	if l.Kind != Conv {
		panic("nn: Kernel on non-conv layer")
	}
	ks := l.KH * l.KW
	base := (oc*(l.InC/l.Group) + ic) * ks
	return l.Weight.Data[base : base+ks]
}

// Params returns the number of learnable parameters of the layer
// (weights + biases + batch-norm affine parameters), matching the
// PyTorch convention used by the paper's parameter counts.
func (l *Layer) Params() int64 {
	switch l.Kind {
	case Conv:
		n := int64(l.OutC) * int64(l.InC/l.Group) * int64(l.KH) * int64(l.KW)
		if l.Bias != nil {
			n += int64(l.OutC)
		}
		return n
	case BatchNorm:
		return int64(2 * len(l.Gamma))
	case Linear:
		n := int64(l.InF) * int64(l.OutF)
		if l.LinB != nil {
			n += int64(l.OutF)
		}
		return n
	default:
		return 0
	}
}

// WeightCount returns the number of prunable weights (conv kernel or
// linear matrix entries, excluding biases and BN parameters).
func (l *Layer) WeightCount() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.OutC) * int64(l.InC/l.Group) * int64(l.KH) * int64(l.KW)
	case Linear:
		return int64(l.InF) * int64(l.OutF)
	default:
		return 0
	}
}

// NNZ returns the number of non-zero prunable weights.
func (l *Layer) NNZ() int64 {
	switch l.Kind {
	case Conv:
		if l.Weight == nil {
			return 0
		}
		return int64(l.Weight.NNZ())
	case Linear:
		if l.LinW == nil {
			return 0
		}
		return int64(l.LinW.NNZ())
	default:
		return 0
	}
}

// MACs returns the multiply-accumulate count of the layer for the given
// input spatial size, assuming dense execution. outH/outW are computed
// by the caller's shape inference.
func (l *Layer) MACs(outH, outW int) int64 {
	scale := l.MACScale
	if scale == 0 {
		scale = 1
	}
	switch l.Kind {
	case Conv:
		perPos := int64(l.InC/l.Group) * int64(l.KH) * int64(l.KW)
		return int64(scale * float64(int64(outH)*int64(outW)*int64(l.OutC)*perPos))
	case Linear:
		return int64(scale * float64(int64(l.InF)*int64(l.OutF)))
	case BatchNorm:
		// scale+shift per element: count as one MAC per output element.
		return int64(outH) * int64(outW) * int64(len(l.Gamma))
	default:
		return 0
	}
}

// Validate checks internal consistency of the layer descriptor.
func (l *Layer) Validate() error {
	switch l.Kind {
	case Conv:
		if l.InC <= 0 || l.OutC <= 0 || l.KH <= 0 || l.KW <= 0 || l.Stride <= 0 {
			return fmt.Errorf("nn: layer %q invalid conv dims in=%d out=%d k=%dx%d s=%d", l.Name, l.InC, l.OutC, l.KH, l.KW, l.Stride)
		}
		if l.Group <= 0 || l.InC%l.Group != 0 || l.OutC%l.Group != 0 {
			return fmt.Errorf("nn: layer %q invalid groups %d for in=%d out=%d", l.Name, l.Group, l.InC, l.OutC)
		}
		if l.Weight != nil {
			want := []int{l.OutC, l.InC / l.Group, l.KH, l.KW}
			got := l.Weight.Shape()
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("nn: layer %q weight shape %v want %v", l.Name, got, want)
				}
			}
		}
		if len(l.Inputs) != 1 {
			return fmt.Errorf("nn: conv layer %q needs exactly 1 input, has %d", l.Name, len(l.Inputs))
		}
	case BatchNorm:
		if len(l.Gamma) == 0 || len(l.Gamma) != len(l.Beta) {
			return fmt.Errorf("nn: layer %q BN gamma/beta sizes %d/%d", l.Name, len(l.Gamma), len(l.Beta))
		}
	case Concat:
		if len(l.Inputs) < 2 {
			return fmt.Errorf("nn: concat layer %q needs >=2 inputs", l.Name)
		}
	case Add:
		if len(l.Inputs) < 2 {
			return fmt.Errorf("nn: add layer %q needs >=2 inputs", l.Name)
		}
	case Linear:
		if l.InF <= 0 || l.OutF <= 0 {
			return fmt.Errorf("nn: linear layer %q invalid dims", l.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the layer (weights included).
func (l *Layer) Clone() *Layer {
	c := *l
	c.Inputs = append([]int(nil), l.Inputs...)
	if l.Weight != nil {
		c.Weight = l.Weight.Clone()
	}
	if l.Bias != nil {
		c.Bias = append([]float32(nil), l.Bias...)
	}
	if l.Gamma != nil {
		c.Gamma = append([]float32(nil), l.Gamma...)
	}
	if l.Beta != nil {
		c.Beta = append([]float32(nil), l.Beta...)
	}
	if l.LinW != nil {
		c.LinW = l.LinW.Clone()
	}
	if l.LinB != nil {
		c.LinB = append([]float32(nil), l.LinB...)
	}
	return &c
}
