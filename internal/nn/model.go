package nn

import (
	"fmt"
	"math"

	"rtoss/internal/graph"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// Model is a full network: an ordered list of layers whose Inputs fields
// form a DAG. Layer IDs equal their index in Layers.
type Model struct {
	Name       string
	NumClasses int
	InputC     int
	InputH     int
	InputW     int
	Layers     []*Layer
}

// Validate checks the model's structural invariants.
func (m *Model) Validate() error {
	for i, l := range m.Layers {
		if l.ID != i {
			return fmt.Errorf("nn: layer %d has ID %d", i, l.ID)
		}
		for _, in := range l.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("nn: layer %q input %d not an earlier layer", l.Name, in)
			}
		}
		if err := l.Validate(); err != nil {
			return err
		}
	}
	if _, err := m.Graph().TopoSort(); err != nil {
		return fmt.Errorf("nn: model %q: %w", m.Name, err)
	}
	return nil
}

// Graph converts the model to its computational graph (producer→consumer
// edges), the input to Algorithm 1.
func (m *Model) Graph() *graph.Graph {
	g := graph.New(len(m.Layers))
	for _, l := range m.Layers {
		for _, in := range l.Inputs {
			g.AddEdge(in, l.ID)
		}
	}
	return g
}

// Params returns the total learnable parameter count.
func (m *Model) Params() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.Params()
	}
	return n
}

// WeightCount returns the total prunable weight count.
func (m *Model) WeightCount() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.WeightCount()
	}
	return n
}

// NNZ returns the total non-zero prunable weights.
func (m *Model) NNZ() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.NNZ()
	}
	return n
}

// Sparsity returns the overall fraction of zero prunable weights.
func (m *Model) Sparsity() float64 {
	w := m.WeightCount()
	if w == 0 {
		return 0
	}
	return 1 - float64(m.NNZ())/float64(w)
}

// ConvLayers returns the conv layers in ID order.
func (m *Model) ConvLayers() []*Layer {
	var out []*Layer
	for _, l := range m.Layers {
		if l.Kind == Conv {
			out = append(out, l)
		}
	}
	return out
}

// Layer returns the layer with the given ID.
func (m *Model) Layer(id int) *Layer {
	return m.Layers[id]
}

// Clone returns a deep copy; pruning frameworks operate on clones so the
// base model stays intact for baseline comparisons.
func (m *Model) Clone() *Model {
	c := &Model{
		Name:       m.Name,
		NumClasses: m.NumClasses,
		InputC:     m.InputC,
		InputH:     m.InputH,
		InputW:     m.InputW,
		Layers:     make([]*Layer, len(m.Layers)),
	}
	for i, l := range m.Layers {
		c.Layers[i] = l.Clone()
	}
	return c
}

// Census summarises the kernel-size composition of a model, reproducing
// the paper's §III motivation numbers (e.g. 68.42% of YOLOv5s kernels
// are 1×1).
type Census struct {
	Conv1x1Kernels int64 // spatial kernels in 1×1 conv layers
	Conv3x3Kernels int64 // spatial kernels in 3×3 conv layers
	OtherKernels   int64 // any other spatial size
	Conv1x1Layers  int
	Conv3x3Layers  int
	OtherLayers    int
	Params         int64
}

// TotalKernels returns the total spatial kernel count.
func (c Census) TotalKernels() int64 {
	return c.Conv1x1Kernels + c.Conv3x3Kernels + c.OtherKernels
}

// Frac1x1 returns the fraction of kernels that are 1×1.
func (c Census) Frac1x1() float64 {
	t := c.TotalKernels()
	if t == 0 {
		return 0
	}
	return float64(c.Conv1x1Kernels) / float64(t)
}

// KernelCensus computes the kernel-size census of the model.
func (m *Model) KernelCensus() Census {
	var c Census
	for _, l := range m.Layers {
		if l.Kind != Conv {
			continue
		}
		k := int64(l.KernelCount())
		switch {
		case l.Is1x1():
			c.Conv1x1Kernels += k
			c.Conv1x1Layers++
		case l.Is3x3():
			c.Conv3x3Kernels += k
			c.Conv3x3Layers++
		default:
			c.OtherKernels += k
			c.OtherLayers++
		}
	}
	c.Params = m.Params()
	return c
}

// Shape is a layer output shape (channels, height, width).
type Shape struct{ C, H, W int }

// InferShapes propagates the input shape through the DAG and returns the
// output shape of every layer. It returns an error on inconsistent
// topology (channel mismatches on Add, conv input channel mismatch, ...).
func (m *Model) InferShapes() ([]Shape, error) {
	shapes := make([]Shape, len(m.Layers))
	have := make([]bool, len(m.Layers))
	order, err := m.Graph().TopoSort()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		l := m.Layers[id]
		in := func(i int) Shape { return shapes[l.Inputs[i]] }
		switch l.Kind {
		case Input:
			shapes[id] = Shape{C: m.InputC, H: m.InputH, W: m.InputW}
		case Conv:
			s := in(0)
			if s.C != l.InC {
				return nil, fmt.Errorf("nn: layer %q expects %d channels, gets %d", l.Name, l.InC, s.C)
			}
			shapes[id] = Shape{
				C: l.OutC,
				H: tensor.ConvOut(s.H, l.KH, l.Stride, l.Pad),
				W: tensor.ConvOut(s.W, l.KW, l.Stride, l.Pad),
			}
		case BatchNorm:
			s := in(0)
			if len(l.Gamma) != s.C {
				return nil, fmt.Errorf("nn: BN layer %q has %d channels, input has %d", l.Name, len(l.Gamma), s.C)
			}
			shapes[id] = s
		case Act:
			shapes[id] = in(0)
		case MaxPool:
			s := in(0)
			shapes[id] = Shape{
				C: s.C,
				H: tensor.ConvOut(s.H, l.PoolK, l.PoolStride, l.PoolPad),
				W: tensor.ConvOut(s.W, l.PoolK, l.PoolStride, l.PoolPad),
			}
		case Upsample:
			s := in(0)
			scale := l.Scale
			if scale == 0 {
				scale = 2
			}
			shapes[id] = Shape{C: s.C, H: s.H * scale, W: s.W * scale}
		case Concat:
			s := in(0)
			c := 0
			for i := range l.Inputs {
				si := in(i)
				if si.H != s.H || si.W != s.W {
					return nil, fmt.Errorf("nn: concat %q spatial mismatch %v vs %v", l.Name, s, si)
				}
				c += si.C
			}
			shapes[id] = Shape{C: c, H: s.H, W: s.W}
		case Add:
			s := in(0)
			for i := range l.Inputs {
				if in(i) != s {
					return nil, fmt.Errorf("nn: add %q shape mismatch %v vs %v", l.Name, s, in(i))
				}
			}
			shapes[id] = s
		case GlobalPool:
			s := in(0)
			shapes[id] = Shape{C: s.C, H: 1, W: 1}
		case Linear:
			shapes[id] = Shape{C: l.OutF, H: 1, W: 1}
		case Detect:
			// Sink; report the first input's shape.
			shapes[id] = in(0)
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %v", l.Kind)
		}
		have[id] = true
	}
	for id, ok := range have {
		if !ok {
			return nil, fmt.Errorf("nn: layer %d unreachable in shape inference", id)
		}
	}
	return shapes, nil
}

// MACs returns the total dense multiply-accumulate count of one forward
// pass at the model's input resolution.
func (m *Model) MACs() (int64, error) {
	shapes, err := m.InferShapes()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, l := range m.Layers {
		total += l.MACs(shapes[l.ID].H, shapes[l.ID].W)
	}
	return total, nil
}

// InitWeights fills every conv/linear/BN parameter with deterministic
// synthetic values shaped like a trained network: He-scaled Gaussian
// weights (std = sqrt(2 / fan_in)), BN gamma near 1 with trained-like
// spread, beta near 0. Each layer draws from an independent split of
// the seed stream, so adding layers does not perturb others.
func (m *Model) InitWeights(seed uint64) {
	root := rng.New(seed)
	for _, l := range m.Layers {
		r := root.Split()
		switch l.Kind {
		case Conv:
			fanIn := float64(l.InC/l.Group) * float64(l.KH) * float64(l.KW)
			std := 1.0
			if fanIn > 0 {
				std = math.Sqrt(2 / fanIn)
			}
			l.Weight = tensor.New(l.OutC, l.InC/l.Group, l.KH, l.KW)
			for i := range l.Weight.Data {
				l.Weight.Data[i] = float32(r.Norm(0, std))
			}
			if l.Bias != nil {
				for i := range l.Bias {
					l.Bias[i] = float32(r.Norm(0, 0.01))
				}
			}
		case BatchNorm:
			for i := range l.Gamma {
				l.Gamma[i] = float32(r.Norm(1, 0.15))
				l.Beta[i] = float32(r.Norm(0, 0.05))
			}
		case Linear:
			std := math.Sqrt(2 / float64(l.InF))
			l.LinW = tensor.New(l.OutF, l.InF)
			for i := range l.LinW.Data {
				l.LinW.Data[i] = float32(r.Norm(0, std))
			}
			if l.LinB != nil {
				for i := range l.LinB {
					l.LinB[i] = float32(r.Norm(0, 0.01))
				}
			}
		}
	}
}

// PrunableConvs returns the conv layers that pattern pruning targets:
// every conv except the final detection predictors (whose outputs are
// class/box logits; pruning them destroys calibrated confidences, and
// the paper's kernel census for YOLOv5s — 68.42% 1×1 — matches exactly
// the census over non-predictor convs).
func PrunableConvs(m *Model) []*Layer {
	detectInputs := map[int]bool{}
	for _, l := range m.Layers {
		if l.Kind == Detect {
			for _, in := range l.Inputs {
				detectInputs[in] = true
			}
		}
	}
	var out []*Layer
	for _, l := range m.Layers {
		if l.Kind == Conv && !detectInputs[l.ID] && !l.NoPrune {
			out = append(out, l)
		}
	}
	return out
}
