package nn

import (
	"testing"
	"testing/quick"
)

// tinyNet builds input → conv3x3(3→8) → BN → SiLU → conv1x1(8→4).
func tinyNet(t *testing.T) *Model {
	t.Helper()
	b := NewBuilder("tiny", 3, 16, 16, 2)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 8, 3, 1, 1, SiLU)
	b.Conv("head", x, 8, 4, 1, 1, 0, true)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuilderIDsSequential(t *testing.T) {
	m := tinyNet(t)
	for i, l := range m.Layers {
		if l.ID != i {
			t.Fatalf("layer %d has ID %d", i, l.ID)
		}
	}
	if len(m.Layers) != 5 { // input, conv, bn, act, conv
		t.Fatalf("layers=%d", len(m.Layers))
	}
}

func TestParamsAccounting(t *testing.T) {
	m := tinyNet(t)
	// stem conv: 8*3*3*3 = 216 (no bias); BN: 2*8 = 16; head: 4*8*1*1 + 4 = 36.
	if got := m.Params(); got != 216+16+36 {
		t.Fatalf("params=%d want %d", got, 216+16+36)
	}
	if got := m.WeightCount(); got != 216+32 {
		t.Fatalf("weights=%d want %d", got, 216+32)
	}
}

func TestInferShapes(t *testing.T) {
	m := tinyNet(t)
	shapes, err := m.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	// conv stride 1 pad 1 keeps 16x16; head 1x1 keeps 16x16 with 4 channels.
	last := shapes[len(shapes)-1]
	if last != (Shape{C: 4, H: 16, W: 16}) {
		t.Fatalf("last shape %v", last)
	}
}

func TestInferShapesChannelMismatch(t *testing.T) {
	b := NewBuilder("bad", 3, 8, 8, 1)
	x := b.Input()
	b.Conv("c", x, 5, 4, 1, 1, 0, false) // expects 5 channels, input has 3
	m := b.m                             // skip Validate; InferShapes must catch it
	if _, err := m.InferShapes(); err == nil {
		t.Fatal("expected channel mismatch error")
	}
}

func TestMACs(t *testing.T) {
	m := tinyNet(t)
	macs, err := m.MACs()
	if err != nil {
		t.Fatal(err)
	}
	// stem conv: 16*16*8*3*3*3 = 55296; BN: 16*16*8 = 2048; head: 16*16*4*8 = 8192.
	want := int64(55296 + 2048 + 8192)
	if macs != want {
		t.Fatalf("MACs=%d want %d", macs, want)
	}
}

func TestInitWeightsDeterministic(t *testing.T) {
	a, b := tinyNet(t), tinyNet(t)
	a.InitWeights(7)
	b.InitWeights(7)
	la, lb := a.ConvLayers()[0], b.ConvLayers()[0]
	for i := range la.Weight.Data {
		if la.Weight.Data[i] != lb.Weight.Data[i] {
			t.Fatal("InitWeights not deterministic")
		}
	}
	c := tinyNet(t)
	c.InitWeights(8)
	diff := false
	for i := range la.Weight.Data {
		if la.Weight.Data[i] != c.ConvLayers()[0].Weight.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds gave identical weights")
	}
}

func TestInitWeightsScale(t *testing.T) {
	m := tinyNet(t)
	m.InitWeights(3)
	stem := m.ConvLayers()[0]
	// He init: std = sqrt(2/27) ~= 0.272; with 216 samples the sample std
	// should be within a loose band.
	var sum, sumSq float64
	for _, v := range stem.Weight.Data {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	n := float64(stem.Weight.Len())
	std := sumSq/n - (sum/n)*(sum/n)
	if std < 0.02 || std > 0.2 { // variance 2/27 = 0.074
		t.Fatalf("weight variance %v outside sane He-init band", std)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := tinyNet(t)
	m.InitWeights(1)
	c := m.Clone()
	c.ConvLayers()[0].Weight.Data[0] = 999
	if m.ConvLayers()[0].Weight.Data[0] == 999 {
		t.Fatal("clone shares weight storage")
	}
}

func TestKernelCensus(t *testing.T) {
	m := tinyNet(t)
	c := m.KernelCensus()
	// stem: 8*3=24 3x3 kernels; head: 4*8=32 1x1 kernels.
	if c.Conv3x3Kernels != 24 || c.Conv1x1Kernels != 32 {
		t.Fatalf("census %+v", c)
	}
	if c.Conv1x1Layers != 1 || c.Conv3x3Layers != 1 {
		t.Fatalf("census layers %+v", c)
	}
	want := 32.0 / 56.0
	if f := c.Frac1x1(); f < want-1e-9 || f > want+1e-9 {
		t.Fatalf("Frac1x1=%v want %v", f, want)
	}
}

func TestKernelAccessor(t *testing.T) {
	m := tinyNet(t)
	m.InitWeights(5)
	stem := m.ConvLayers()[0]
	k := stem.Kernel(2, 1)
	if len(k) != 9 {
		t.Fatalf("kernel len %d", len(k))
	}
	// Mutating through the view must hit the tensor.
	k[0] = 123
	if stem.Weight.At(2, 1, 0, 0) != 123 {
		t.Fatal("Kernel does not alias weight storage")
	}
}

func TestBottleneckShortcutOnlyWhenChannelsMatch(t *testing.T) {
	b := NewBuilder("bn", 3, 8, 8, 1)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 16, 3, 1, 1, SiLU)
	out := b.Bottleneck("btl", x, 16, 16, 0.5, true, SiLU)
	m := b.MustBuild()
	if m.Layers[out].Kind != Add {
		t.Fatal("expected residual Add when c1 == c2")
	}
	out2 := b.Bottleneck("btl2", out, 16, 32, 0.5, true, SiLU)
	if b.m.Layers[out2].Kind == Add {
		t.Fatal("no residual expected when c1 != c2")
	}
}

func TestC3Structure(t *testing.T) {
	b := NewBuilder("c3net", 3, 32, 32, 1)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 64, 3, 2, 1, SiLU)
	x = b.C3("c3", x, 64, 64, 1, true, SiLU)
	m := b.MustBuild()
	shapes, err := m.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	if shapes[x] != (Shape{C: 64, H: 16, W: 16}) {
		t.Fatalf("C3 out %v", shapes[x])
	}
}

func TestSPPFShape(t *testing.T) {
	b := NewBuilder("sppf", 3, 32, 32, 1)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 64, 3, 2, 1, SiLU)
	x = b.SPPF("sppf", x, 64, 64, 5, SiLU)
	m := b.MustBuild()
	shapes, err := m.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	if shapes[x] != (Shape{C: 64, H: 16, W: 16}) {
		t.Fatalf("SPPF out %v", shapes[x])
	}
}

func TestResNetBlockShapes(t *testing.T) {
	b := NewBuilder("res", 3, 32, 32, 1)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 64, 3, 1, 1, ReLU)
	x = b.ResNetBlock("block", x, 64, 64, 256, 1)
	m := b.MustBuild()
	shapes, err := m.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	if shapes[x] != (Shape{C: 256, H: 32, W: 32}) {
		t.Fatalf("resnet block out %v", shapes[x])
	}
	x2 := b.ResNetBlock("block2", x, 256, 128, 512, 2)
	m2 := b.MustBuild()
	shapes2, _ := m2.InferShapes()
	if shapes2[x2] != (Shape{C: 512, H: 16, W: 16}) {
		t.Fatalf("strided resnet block out %v", shapes2[x2])
	}
}

func TestValidateCatchesBadInputRef(t *testing.T) {
	m := &Model{Name: "bad", InputC: 3, InputH: 4, InputW: 4}
	m.Layers = []*Layer{
		{ID: 0, Kind: Input},
		{ID: 1, Kind: Conv, Inputs: []int{1}, InC: 3, OutC: 4, KH: 1, KW: 1, Stride: 1, Group: 1},
	}
	if err := m.Validate(); err == nil {
		t.Fatal("expected self-referencing input error")
	}
}

func TestGraphRoundTrip(t *testing.T) {
	m := tinyNet(t)
	g := m.Graph()
	if g.NumNodes() != len(m.Layers) {
		t.Fatal("node count mismatch")
	}
	// Edges follow Inputs.
	if len(g.Parents(1)) != 1 || g.Parents(1)[0] != 0 {
		t.Fatalf("parents of conv: %v", g.Parents(1))
	}
}

func TestQuickSparsityMatchesNNZ(t *testing.T) {
	m := tinyNet(t)
	m.InitWeights(11)
	f := func(zeroEvery uint8) bool {
		if zeroEvery == 0 {
			zeroEvery = 1
		}
		c := m.Clone()
		var zeroed int64
		for _, l := range c.ConvLayers() {
			for i := range l.Weight.Data {
				if i%int(zeroEvery) == 0 {
					if l.Weight.Data[i] != 0 {
						zeroed++
					}
					l.Weight.Data[i] = 0
				}
			}
		}
		return c.NNZ() == m.NNZ()-zeroed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInferShapes(b *testing.B) {
	bld := NewBuilder("bench", 3, 640, 640, 8)
	x := bld.Input()
	x = bld.ConvBNAct("stem", x, 3, 32, 6, 2, 2, SiLU)
	for i := 0; i < 10; i++ {
		x = bld.C3("c3", x, 32, 32, 2, true, SiLU)
	}
	m := bld.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.InferShapes(); err != nil {
			b.Fatal(err)
		}
	}
}
