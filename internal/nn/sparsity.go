package nn

import "fmt"

// Sparsity classifies the sparsity structure pruning induces. It lives
// here (rather than in internal/prune, which aliases it as
// prune.Structure) so that layer descriptors can record the structure a
// pruner left behind and the execution engine can dispatch dense or
// sparse kernels per layer without import cycles.
type Sparsity int

// Sparsity structures, ordered roughly by regularity.
const (
	// SparsityDense: no pruning (the Base Model).
	SparsityDense Sparsity = iota
	// SparsityUnstructured: element-wise sparsity (magnitude pruning).
	SparsityUnstructured
	// SparsityPattern: semi-structured kernel patterns (R-TOSS, PatDNN).
	SparsityPattern
	// SparsityChannel: whole input channels removed (Network Slimming).
	SparsityChannel
	// SparsityFilter: whole filters removed (Pruning Filters).
	SparsityFilter
	// SparsityMixed: filter pruning combined with unstructured weight
	// pruning (Neural Pruning).
	SparsityMixed
)

var sparsityNames = map[Sparsity]string{
	SparsityDense: "dense", SparsityUnstructured: "unstructured",
	SparsityPattern: "pattern", SparsityChannel: "channel",
	SparsityFilter: "filter", SparsityMixed: "mixed",
}

func (s Sparsity) String() string {
	if n, ok := sparsityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Structure(%d)", int(s))
}
