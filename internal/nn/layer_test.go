package nn

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if Conv.String() != "Conv" || BatchNorm.String() != "BatchNorm" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind should include its number")
	}
}

func TestLayerKindPredicates(t *testing.T) {
	c1 := &Layer{Kind: Conv, KH: 1, KW: 1}
	c3 := &Layer{Kind: Conv, KH: 3, KW: 3}
	bn := &Layer{Kind: BatchNorm}
	if !c1.Is1x1() || c1.Is3x3() || !c1.IsConv() {
		t.Fatal("1x1 predicates wrong")
	}
	if !c3.Is3x3() || c3.Is1x1() {
		t.Fatal("3x3 predicates wrong")
	}
	if bn.IsConv() || bn.Is1x1() || bn.Is3x3() {
		t.Fatal("BN predicates wrong")
	}
}

func TestLayerValidateErrors(t *testing.T) {
	cases := []Layer{
		{Name: "bad-dims", Kind: Conv, InC: 0, OutC: 4, KH: 3, KW: 3, Stride: 1, Group: 1, Inputs: []int{0}},
		{Name: "bad-groups", Kind: Conv, InC: 3, OutC: 4, KH: 3, KW: 3, Stride: 1, Group: 2, Inputs: []int{0}},
		{Name: "no-input", Kind: Conv, InC: 3, OutC: 4, KH: 3, KW: 3, Stride: 1, Group: 1},
		{Name: "bad-bn", Kind: BatchNorm, Gamma: make([]float32, 4), Beta: make([]float32, 2)},
		{Name: "bad-concat", Kind: Concat, Inputs: []int{0}},
		{Name: "bad-add", Kind: Add, Inputs: []int{0}},
		{Name: "bad-linear", Kind: Linear, InF: 0, OutF: 4},
	}
	for _, l := range cases {
		ll := l
		if err := ll.Validate(); err == nil {
			t.Errorf("%s: expected validation error", l.Name)
		}
	}
}

func TestLayerValidateWeightShape(t *testing.T) {
	b := NewBuilder("ws", 3, 8, 8, 1)
	x := b.Input()
	b.Conv("c", x, 3, 4, 3, 1, 1, false)
	m := b.MustBuild()
	m.InitWeights(1)
	// Corrupt the weight tensor shape.
	m.Layers[1].Weight = m.Layers[1].Weight.Reshape(4, 9, 1, 3)
	if err := m.Layers[1].Validate(); err == nil {
		t.Fatal("expected weight-shape error")
	}
}

func TestMACScaleMultiplies(t *testing.T) {
	l := &Layer{Kind: Conv, InC: 4, OutC: 8, KH: 3, KW: 3, Stride: 1, Group: 1}
	base := l.MACs(10, 10)
	l.MACScale = 2.5
	if got := l.MACs(10, 10); got != int64(2.5*float64(base)) {
		t.Fatalf("MACScale not applied: %d vs base %d", got, base)
	}
}

func TestKernelPanicsOnNonConv(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Layer{Kind: BatchNorm}).Kernel(0, 0)
}

func TestCensusMethods(t *testing.T) {
	c := Census{Conv1x1Kernels: 30, Conv3x3Kernels: 60, OtherKernels: 10}
	if c.TotalKernels() != 100 {
		t.Fatalf("total %d", c.TotalKernels())
	}
	if c.Frac1x1() != 0.3 {
		t.Fatalf("frac %v", c.Frac1x1())
	}
	empty := Census{}
	if empty.Frac1x1() != 0 {
		t.Fatal("empty census frac should be 0")
	}
}

func TestGroupedConvAccounting(t *testing.T) {
	l := &Layer{Kind: Conv, InC: 8, OutC: 8, KH: 3, KW: 3, Stride: 1, Group: 4}
	// Grouped conv: 8 * (8/4) * 9 = 144 weights, not 576.
	if l.WeightCount() != 144 {
		t.Fatalf("grouped weight count %d", l.WeightCount())
	}
	if l.KernelCount() != 16 {
		t.Fatalf("grouped kernel count %d", l.KernelCount())
	}
	// MACs shrink by the group factor too.
	if l.MACs(4, 4) != int64(4*4*8*2*9) {
		t.Fatalf("grouped MACs %d", l.MACs(4, 4))
	}
}

func TestLinearParamsAndMACs(t *testing.T) {
	l := &Layer{Kind: Linear, InF: 10, OutF: 5, LinB: make([]float32, 5)}
	if l.Params() != 55 {
		t.Fatalf("linear params %d", l.Params())
	}
	if l.MACs(1, 1) != 50 {
		t.Fatalf("linear MACs %d", l.MACs(1, 1))
	}
	if l.WeightCount() != 50 {
		t.Fatalf("linear weights %d", l.WeightCount())
	}
}

func TestCloneCopiesEverything(t *testing.T) {
	b := NewBuilder("cl", 3, 8, 8, 1)
	x := b.Input()
	x = b.ConvBNAct("c", x, 3, 4, 3, 1, 1, SiLU)
	x = b.GlobalPool("gp", x)
	b.Linear("fc", x, 4, 2, true)
	m := b.MustBuild()
	m.InitWeights(9)
	c := m.Clone()
	// Mutate original BN and linear; clone must be unaffected.
	for _, l := range m.Layers {
		switch l.Kind {
		case BatchNorm:
			l.Gamma[0] = 555
		case Linear:
			l.LinW.Data[0] = 777
			l.LinB[0] = 888
		}
	}
	for _, l := range c.Layers {
		switch l.Kind {
		case BatchNorm:
			if l.Gamma[0] == 555 {
				t.Fatal("clone shares BN gamma")
			}
		case Linear:
			if l.LinW.Data[0] == 777 || l.LinB[0] == 888 {
				t.Fatal("clone shares linear params")
			}
		}
	}
}

func TestModelSparsityEmptyModel(t *testing.T) {
	m := &Model{Name: "empty"}
	if m.Sparsity() != 0 {
		t.Fatal("empty model sparsity should be 0")
	}
	if m.Params() != 0 || m.NNZ() != 0 {
		t.Fatal("empty model should have no params")
	}
}

func TestPrunableConvsRespectsNoPrune(t *testing.T) {
	b := NewBuilder("np", 3, 8, 8, 1)
	x := b.Input()
	c1 := b.Conv("c1", x, 3, 4, 3, 1, 1, false)
	c2 := b.Conv("c2", c1, 4, 4, 3, 1, 1, false)
	b.NoPrune(c2)
	b.Detect("d", c2)
	m := b.MustBuild()
	prunable := PrunableConvs(m)
	// c2 is both NoPrune and a Detect input; only c1 remains.
	if len(prunable) != 1 || prunable[0].ID != c1 {
		t.Fatalf("prunable %v", prunable)
	}
}

func TestInferShapesErrors(t *testing.T) {
	// BN channel mismatch.
	b := NewBuilder("e1", 3, 8, 8, 1)
	x := b.Input()
	c := b.Conv("c", x, 3, 4, 3, 1, 1, false)
	b.m.Layers = append(b.m.Layers, &Layer{
		ID: len(b.m.Layers), Name: "bn", Kind: BatchNorm, Inputs: []int{c},
		Gamma: make([]float32, 7), Beta: make([]float32, 7),
	})
	if _, err := b.m.InferShapes(); err == nil {
		t.Error("expected BN channel mismatch")
	}

	// Concat spatial mismatch.
	b2 := NewBuilder("e2", 3, 8, 8, 1)
	y := b2.Input()
	a1 := b2.Conv("a1", y, 3, 4, 3, 1, 1, false) // 8x8
	a2 := b2.Conv("a2", y, 3, 4, 3, 2, 1, false) // 4x4
	b2.Concat("cat", a1, a2)
	if _, err := b2.m.InferShapes(); err == nil {
		t.Error("expected concat spatial mismatch")
	}

	// Add shape mismatch.
	b3 := NewBuilder("e3", 3, 8, 8, 1)
	z := b3.Input()
	m1 := b3.Conv("m1", z, 3, 4, 3, 1, 1, false)
	m2 := b3.Conv("m2", z, 3, 8, 3, 1, 1, false)
	b3.Add("add", m1, m2)
	if _, err := b3.m.InferShapes(); err == nil {
		t.Error("expected add shape mismatch")
	}
}

func TestBuilderInputMustBeFirst(t *testing.T) {
	b := NewBuilder("x", 3, 8, 8, 1)
	b.Input()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for second Input")
		}
	}()
	b.Input()
}
