package nn

import "fmt"

// Builder assembles a Model layer by layer. Methods return the new
// layer's ID so model definitions read as a dataflow program:
//
//	b := nn.NewBuilder("net", 3, 640, 640, 8)
//	x := b.Input()
//	x = b.ConvBNAct("stem", x, 3, 32, 6, 2, 2, nn.SiLU)
type Builder struct {
	m      *Model
	module string
}

// NewBuilder starts a model with the given input channels/size and
// class count.
func NewBuilder(name string, inC, inH, inW, classes int) *Builder {
	return &Builder{m: &Model{
		Name:       name,
		NumClasses: classes,
		InputC:     inC,
		InputH:     inH,
		InputW:     inW,
	}}
}

// SetModule tags subsequently added layers with a module name (used for
// module-level reporting, e.g. YOLOv5s's 25 modules).
func (b *Builder) SetModule(name string) { b.module = name }

func (b *Builder) add(l *Layer) int {
	l.ID = len(b.m.Layers)
	l.Module = b.module
	b.m.Layers = append(b.m.Layers, l)
	return l.ID
}

// Input adds the input node; call exactly once, first.
func (b *Builder) Input() int {
	if len(b.m.Layers) != 0 {
		panic("nn: Input must be the first layer")
	}
	return b.add(&Layer{Name: "input", Kind: Input})
}

// Conv adds a bare convolution (no BN/activation). bias selects whether
// the layer carries a bias vector.
func (b *Builder) Conv(name string, from, inC, outC, k, stride, pad int, bias bool) int {
	l := &Layer{
		Name: name, Kind: Conv, Inputs: []int{from},
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, Group: 1,
	}
	if bias {
		l.Bias = make([]float32, outC)
	}
	return b.add(l)
}

// BN adds a batch-norm layer over c channels.
func (b *Builder) BN(name string, from, c int) int {
	return b.add(&Layer{
		Name: name, Kind: BatchNorm, Inputs: []int{from},
		Gamma: make([]float32, c), Beta: make([]float32, c),
	})
}

// Act adds an activation layer.
func (b *Builder) Act(name string, from int, act Activation) int {
	return b.add(&Layer{Name: name, Kind: Act, Inputs: []int{from}, Act: act})
}

// ConvBNAct adds the conv → batch-norm → activation triple that
// dominates modern detectors. Returns the activation's ID.
func (b *Builder) ConvBNAct(name string, from, inC, outC, k, stride, pad int, act Activation) int {
	c := b.Conv(name+".conv", from, inC, outC, k, stride, pad, false)
	n := b.BN(name+".bn", c, outC)
	return b.Act(name+".act", n, act)
}

// MaxPool adds a max-pooling layer.
func (b *Builder) MaxPool(name string, from, k, stride, pad int) int {
	return b.add(&Layer{Name: name, Kind: MaxPool, Inputs: []int{from}, PoolK: k, PoolStride: stride, PoolPad: pad})
}

// Upsample adds a nearest-neighbour upsampling layer.
func (b *Builder) Upsample(name string, from, scale int) int {
	return b.add(&Layer{Name: name, Kind: Upsample, Inputs: []int{from}, Scale: scale})
}

// Concat adds a channel concatenation of the given producers.
func (b *Builder) Concat(name string, from ...int) int {
	return b.add(&Layer{Name: name, Kind: Concat, Inputs: append([]int(nil), from...)})
}

// Add adds an element-wise residual addition.
func (b *Builder) Add(name string, from ...int) int {
	return b.add(&Layer{Name: name, Kind: Add, Inputs: append([]int(nil), from...)})
}

// GlobalPool adds global average pooling.
func (b *Builder) GlobalPool(name string, from int) int {
	return b.add(&Layer{Name: name, Kind: GlobalPool, Inputs: []int{from}})
}

// Linear adds a fully connected layer.
func (b *Builder) Linear(name string, from, inF, outF int, bias bool) int {
	l := &Layer{Name: name, Kind: Linear, Inputs: []int{from}, InF: inF, OutF: outF}
	if bias {
		l.LinB = make([]float32, outF)
	}
	return b.add(l)
}

// NoPrune marks an already-added layer as excluded from pruning.
func (b *Builder) NoPrune(id int) { b.m.Layers[id].NoPrune = true }

// MACScale sets the cost-model MAC multiplier of an added layer.
func (b *Builder) MACScale(id int, scale float64) { b.m.Layers[id].MACScale = scale }

// Detect adds the detection sink collecting the multi-scale heads.
func (b *Builder) Detect(name string, from ...int) int {
	return b.add(&Layer{Name: name, Kind: Detect, Inputs: append([]int(nil), from...)})
}

// Bottleneck adds a YOLOv5 bottleneck: 1×1 to hidden = c2*expansion
// channels, then 3×3 back to c2, with an optional residual shortcut.
// YOLOv5 uses expansion 0.5 for standalone bottlenecks and 1.0 inside
// C3 modules. Returns the output layer ID.
func (b *Builder) Bottleneck(name string, from, c1, c2 int, expansion float64, shortcut bool, act Activation) int {
	hidden := int(float64(c2) * expansion)
	if hidden == 0 {
		hidden = 1
	}
	cv1 := b.ConvBNAct(name+".cv1", from, c1, hidden, 1, 1, 0, act)
	cv2 := b.ConvBNAct(name+".cv2", cv1, hidden, c2, 3, 1, 1, act)
	if shortcut && c1 == c2 {
		return b.Add(name+".add", from, cv2)
	}
	return cv2
}

// C3 adds a YOLOv5 C3 (CSP bottleneck with 3 convolutions) module: two
// parallel 1×1 branches, n bottlenecks (expansion 1.0, per the YOLOv5
// reference implementation) on one branch, concat, 1×1 fuse.
func (b *Builder) C3(name string, from, c1, c2, n int, shortcut bool, act Activation) int {
	hidden := c2 / 2
	cv1 := b.ConvBNAct(name+".cv1", from, c1, hidden, 1, 1, 0, act)
	cv2 := b.ConvBNAct(name+".cv2", from, c1, hidden, 1, 1, 0, act)
	x := cv1
	for i := 0; i < n; i++ {
		x = b.Bottleneck(fmt.Sprintf("%s.m%d", name, i), x, hidden, hidden, 1.0, shortcut, act)
	}
	cat := b.Concat(name+".cat", x, cv2)
	return b.ConvBNAct(name+".cv3", cat, 2*hidden, c2, 1, 1, 0, act)
}

// SPPF adds YOLOv5's spatial pyramid pooling (fast) module.
func (b *Builder) SPPF(name string, from, c1, c2, k int, act Activation) int {
	hidden := c1 / 2
	cv1 := b.ConvBNAct(name+".cv1", from, c1, hidden, 1, 1, 0, act)
	p1 := b.MaxPool(name+".m1", cv1, k, 1, k/2)
	p2 := b.MaxPool(name+".m2", p1, k, 1, k/2)
	p3 := b.MaxPool(name+".m3", p2, k, 1, k/2)
	cat := b.Concat(name+".cat", cv1, p1, p2, p3)
	return b.ConvBNAct(name+".cv2", cat, 4*hidden, c2, 1, 1, 0, act)
}

// ResNetBlock adds a ResNet bottleneck block (1×1 reduce, 3×3, 1×1
// expand, residual). If downsample is true the 3×3 conv strides by 2 and
// a 1×1 projection aligns the shortcut; a projection is also inserted
// whenever the channel counts differ.
func (b *Builder) ResNetBlock(name string, from, inC, midC, outC int, stride int) int {
	cv1 := b.ConvBNAct(name+".cv1", from, inC, midC, 1, 1, 0, ReLU)
	cv2 := b.ConvBNAct(name+".cv2", cv1, midC, midC, 3, stride, 1, ReLU)
	cv3 := b.Conv(name+".cv3.conv", cv2, midC, outC, 1, 1, 0, false)
	bn3 := b.BN(name+".cv3.bn", cv3, outC)
	shortcut := from
	if stride != 1 || inC != outC {
		sc := b.Conv(name+".down.conv", from, inC, outC, 1, stride, 0, false)
		shortcut = b.BN(name+".down.bn", sc, outC)
	}
	sum := b.Add(name+".add", shortcut, bn3)
	return b.Act(name+".relu", sum, ReLU)
}

// Build validates and returns the model.
func (b *Builder) Build() (*Model, error) {
	if err := b.m.Validate(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// MustBuild is Build that panics on error; model definitions are static
// so a failure is a programming bug.
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
