package experiments

import (
	"rtoss/internal/detect"
	"rtoss/internal/kitti"
	"rtoss/internal/rng"
)

// pickFig8Scene returns a fixed scene containing both large near
// vehicles and one tiny distant car, mirroring the frame the paper uses
// to show that only R-TOSS-2EP keeps detecting the small object.
func pickFig8Scene() kitti.Scene {
	return kitti.Scene{
		W: 640, H: 640,
		Truth: []detect.GroundTruth{
			{Box: detect.NewBox(40, 380, 250, 520), Class: kitti.Car},      // near car, left
			{Box: detect.NewBox(420, 360, 620, 480), Class: kitti.Van},     // near van, right
			{Box: detect.NewBox(300, 330, 345, 355), Class: kitti.Car},     // distant small car
			{Box: detect.NewBox(210, 300, 228, 312), Class: kitti.Car},     // tiny far car (the Fig 8 object)
			{Box: detect.NewBox(520, 300, 545, 350), Class: kitti.Cyclist}, // mid-range cyclist
		},
	}
}

// fig8RNG gives each framework a deterministic noise stream so the
// rendered comparison is stable across runs.
func fig8RNG(framework string) *rng.RNG {
	seed := uint64(0xF18)
	for _, c := range framework {
		seed = seed*131 + uint64(c)
	}
	return rng.New(seed)
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md A1-A3)

// AblationDFS compares pruning cost with and without Algorithm 1
// grouping: the number of best-fit searches and wall time.
type AblationDFSResult struct {
	WithSearches, WithoutSearches     int64
	WithInherited                     int64
	WithDurationMS, WithoutDurationMS float64
	SparsityWith, SparsityWithout     float64
}

// AblationConnectivityResult compares mAP at matched sparsity with
// kernel-connectivity pruning (PatDNN-style) vs without (R-TOSS).
type AblationConnectivityResult struct {
	MAPWithConnectivity    float64
	MAPWithoutConnectivity float64
	SparsityWith           float64
	SparsityWithout        float64
}

// Ablation1x1Result compares achievable sparsity with and without
// Algorithm 3 (the 1×1 transform).
type Ablation1x1Result struct {
	SparsityWith       float64
	SparsityWithout    float64
	CompressionWith    float64
	CompressionWithout float64
}
