package experiments

import (
	"strings"
	"testing"
)

func TestRTOSSTradeoffMonotone(t *testing.T) {
	c, err := RTOSSTradeoff("YOLOv5s")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 4 {
		t.Fatalf("points %d", len(c.Points))
	}
	// 5EP → 2EP: sparsity, compression and speedup all increase.
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Sparsity <= c.Points[i-1].Sparsity {
			t.Errorf("sparsity not increasing at %s", c.Points[i].Label)
		}
		if c.Points[i].Compression <= c.Points[i-1].Compression {
			t.Errorf("compression not increasing at %s", c.Points[i].Label)
		}
		if c.Points[i].SpeedupTX2 <= c.Points[i-1].SpeedupTX2 {
			t.Errorf("speedup not increasing at %s", c.Points[i].Label)
		}
	}
}

func TestNMSTradeoffAccuracyFalls(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow tradeoff sweep in -short mode")
	}
	c, err := NMSTradeoff("YOLOv5s", []float64{0.5, 0.7, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Unstructured pruning: mAP must fall as target sparsity rises.
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].MAP >= c.Points[i-1].MAP {
			t.Errorf("NMS mAP not decreasing: %v", c.Points)
		}
	}
}

func TestPDTradeoffConnectivityHurtsAccuracy(t *testing.T) {
	c, err := PDTradeoff("YOLOv5s", []float64{0.0, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	first, last := c.Points[0], c.Points[len(c.Points)-1]
	if last.MAP >= first.MAP {
		t.Errorf("more connectivity pruning should cost accuracy: %.2f -> %.2f", first.MAP, last.MAP)
	}
	if last.Sparsity <= first.Sparsity {
		t.Error("more connectivity pruning should raise sparsity")
	}
}

func TestRTOSSDominatesNMSSomewhere(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow tradeoff sweep in -short mode")
	}
	// The paper's overall claim in trade-off terms: some R-TOSS point
	// Pareto-dominates the NMS default operating point.
	rt, err := RTOSSTradeoff("YOLOv5s")
	if err != nil {
		t.Fatal(err)
	}
	nms, err := NMSTradeoff("YOLOv5s", []float64{0.7})
	if err != nil {
		t.Fatal(err)
	}
	dominated := false
	for _, p := range rt.Points {
		if ParetoDominates(p, nms.Points[0]) {
			dominated = true
		}
	}
	if !dominated {
		t.Error("no R-TOSS point dominates the NMS operating point")
	}
}

func TestTradeoffRender(t *testing.T) {
	c, err := RTOSSTradeoff("YOLOv5s")
	if err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.Contains(out, "2EP") || !strings.Contains(out, "R-TOSS trade-off") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestParetoDominates(t *testing.T) {
	a := TradeoffPoint{MAP: 80, SpeedupTX2: 2, Compression: 4}
	b := TradeoffPoint{MAP: 75, SpeedupTX2: 1.5, Compression: 3}
	if !ParetoDominates(a, b) || ParetoDominates(b, a) {
		t.Error("domination wrong for strictly better point")
	}
	c := TradeoffPoint{MAP: 85, SpeedupTX2: 1, Compression: 3}
	if ParetoDominates(a, c) || ParetoDominates(c, a) {
		t.Error("incomparable points should not dominate")
	}
	if ParetoDominates(a, a) {
		t.Error("a point must not dominate itself")
	}
}

func TestFigsRenderNonEmpty(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow tradeoff sweep in -short mode")
	}
	for name, fig := range map[string]func() (string, error){
		"Fig4": Fig4, "Fig5": Fig5, "Fig6": Fig6, "Fig7": Fig7,
	} {
		s, err := fig()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(s, "R-TOSS (2EP)") || !strings.Contains(s, "#") {
			t.Errorf("%s missing bars:\n%.200s", name, s)
		}
		if !strings.Contains(s, "YOLOv5s") || !strings.Contains(s, "RetinaNet") {
			t.Errorf("%s missing model panels", name)
		}
	}
}
