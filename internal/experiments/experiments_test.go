package experiments

import (
	"math"
	"strings"
	"testing"
)

func results(t *testing.T, model string) map[string]FrameworkResult {
	t.Helper()
	rs, err := RunFrameworks(model)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]FrameworkResult{}
	for _, r := range rs {
		out[r.Framework] = r
	}
	return out
}

func TestRunFrameworksLineup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework lineup in -short mode")
	}
	rs, err := RunFrameworks("YOLOv5s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 { // BM + 5 baselines + 2 R-TOSS variants
		t.Fatalf("framework count %d, want 8", len(rs))
	}
	if rs[0].Framework != "Base Model (BM)" {
		t.Fatalf("first result %q, want BM", rs[0].Framework)
	}
}

func TestRunFrameworksCached(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework lineup in -short mode")
	}
	a, err := RunFrameworks("YOLOv5s")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFrameworks("YOLOv5s")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("results should be cached")
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework lineup in -short mode")
	}
	// Fig 4: R-TOSS-2EP achieves the highest compression on both models
	// (the paper's headline 4.4x / 2.89x).
	for _, model := range EvalModels {
		rs := results(t, model)
		best := rs["R-TOSS (2EP)"].Compression
		for name, r := range rs {
			if name == "R-TOSS (2EP)" {
				continue
			}
			if r.Compression >= best {
				t.Errorf("%s: %s compression %.2f >= R-TOSS-2EP %.2f", model, name, r.Compression, best)
			}
		}
	}
	y := results(t, "YOLOv5s")
	if math.Abs(y["R-TOSS (2EP)"].Compression-4.4) > 0.25 {
		t.Errorf("YOLOv5s 2EP compression %.2f, paper 4.4", y["R-TOSS (2EP)"].Compression)
	}
	r := results(t, "RetinaNet")
	if math.Abs(r["R-TOSS (2EP)"].Compression-2.89) > 0.35 {
		t.Errorf("RetinaNet 2EP compression %.2f, paper 2.89", r["R-TOSS (2EP)"].Compression)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework lineup in -short mode")
	}
	// Fig 5: R-TOSS beats every non-pattern framework on mAP, and beats
	// the base model.
	for _, model := range EvalModels {
		rs := results(t, model)
		for _, variant := range []string{"R-TOSS (3EP)", "R-TOSS (2EP)"} {
			v := rs[variant]
			if v.MAP <= rs["Base Model (BM)"].MAP {
				t.Errorf("%s: %s mAP %.2f should exceed BM %.2f", model, variant, v.MAP, rs["Base Model (BM)"].MAP)
			}
			for _, prior := range []string{"SparseML (NMS)", "Network Slimming (NS)", "Pruning Filters (PF)", "Neural Pruning (NP)"} {
				if v.MAP <= rs[prior].MAP {
					t.Errorf("%s: %s mAP %.2f should exceed %s %.2f", model, variant, v.MAP, prior, rs[prior].MAP)
				}
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework lineup in -short mode")
	}
	// Fig 6: R-TOSS variants are the fastest frameworks on both models
	// and platforms; 2EP > 3EP; TX2 YOLOv5s speedups land near the
	// paper's 2.12x/2.15x.
	for _, model := range EvalModels {
		rs := results(t, model)
		for name, r := range rs {
			if strings.HasPrefix(name, "R-TOSS") || name == "Base Model (BM)" {
				continue
			}
			if r.SpeedupGPU >= rs["R-TOSS (3EP)"].SpeedupGPU {
				t.Errorf("%s: %s GPU speedup %.2f >= R-TOSS-3EP %.2f", model, name, r.SpeedupGPU, rs["R-TOSS (3EP)"].SpeedupGPU)
			}
			if r.SpeedupTX2 >= rs["R-TOSS (3EP)"].SpeedupTX2 {
				t.Errorf("%s: %s TX2 speedup %.2f >= R-TOSS-3EP %.2f", model, name, r.SpeedupTX2, rs["R-TOSS (3EP)"].SpeedupTX2)
			}
		}
		if rs["R-TOSS (2EP)"].SpeedupTX2 <= rs["R-TOSS (3EP)"].SpeedupTX2 {
			t.Errorf("%s: 2EP should out-speed 3EP on TX2", model)
		}
	}
	y := results(t, "YOLOv5s")
	if math.Abs(y["R-TOSS (2EP)"].SpeedupTX2-2.15) > 0.35 {
		t.Errorf("YOLOv5s 2EP TX2 speedup %.2f, paper 2.15", y["R-TOSS (2EP)"].SpeedupTX2)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework lineup in -short mode")
	}
	// Fig 7: R-TOSS saves the most energy; reductions on YOLOv5s/TX2
	// sit in the paper's ~55-60% band.
	for _, model := range EvalModels {
		rs := results(t, model)
		for name, r := range rs {
			if strings.HasPrefix(name, "R-TOSS") || name == "Base Model (BM)" {
				continue
			}
			if r.EnergyRedTX2 >= rs["R-TOSS (3EP)"].EnergyRedTX2 {
				t.Errorf("%s: %s TX2 energy reduction %.2f >= R-TOSS-3EP %.2f",
					model, name, r.EnergyRedTX2, rs["R-TOSS (3EP)"].EnergyRedTX2)
			}
		}
	}
	y := results(t, "YOLOv5s")
	if y["R-TOSS (3EP)"].EnergyRedTX2 < 0.45 || y["R-TOSS (3EP)"].EnergyRedTX2 > 0.65 {
		t.Errorf("YOLOv5s 3EP TX2 energy reduction %.2f, paper 0.57", y["R-TOSS (3EP)"].EnergyRedTX2)
	}
}

func TestTable1Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow analytic table regeneration in -short mode")
	}
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 1 rows %d", len(tab.Rows))
	}
	s := tab.Render()
	for _, name := range []string{"R-CNN", "Faster R-CNN", "YOLOv5"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestTable2MatchesPaperWithin(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow analytic table regeneration in -short mode")
	}
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 2 rows %d", len(tab.Rows))
	}
	// YOLOv5s row is the calibration anchor and must be within 5%.
	if !strings.Contains(tab.Render(), "0.74") {
		t.Error("Table 2 YOLOv5s time drifted from 0.74s")
	}
}

func TestTable3RowsAndOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow analytic table regeneration in -short mode")
	}
	rows, err := Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table 3 rows %d, want 8", len(rows))
	}
	// Within each model: reduction grows and latency falls as the entry
	// count drops from 5 to 2 (the paper's monotone columns).
	for m := 0; m < 2; m++ {
		base := m * 4
		for i := 1; i < 4; i++ {
			if rows[base+i].Reduction <= rows[base+i-1].Reduction {
				t.Errorf("%s: reduction not increasing at row %d", rows[base].Model, i)
			}
			if rows[base+i].TimeMS >= rows[base+i-1].TimeMS {
				t.Errorf("%s: latency not decreasing at row %d", rows[base].Model, i)
			}
			if rows[base+i].EnergyJ >= rows[base+i-1].EnergyJ {
				t.Errorf("%s: energy not decreasing at row %d", rows[base].Model, i)
			}
		}
	}
}

func TestFig8ShowsTinyCarBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework lineup in -short mode")
	}
	out, err := Fig8(70)
	if err != nil {
		t.Fatal(err)
	}
	for _, fw := range []string{"Base Model (BM)", "Neural Pruning (NP)", "PatDNN (PD)", "R-TOSS (2EP)"} {
		if !strings.Contains(out, fw) {
			t.Errorf("Fig 8 missing panel for %s", fw)
		}
	}
	if !strings.Contains(out, "Car") {
		t.Error("Fig 8 has no car detections at all")
	}
}

func TestAblationDFSSavesSearches(t *testing.T) {
	res, err := AblationDFS("YOLOv5s")
	if err != nil {
		t.Fatal(err)
	}
	if res.WithSearches >= res.WithoutSearches {
		t.Errorf("grouping should reduce searches: %d vs %d", res.WithSearches, res.WithoutSearches)
	}
	if math.Abs(res.SparsityWith-res.SparsityWithout) > 0.02 {
		t.Errorf("grouping changed sparsity: %.4f vs %.4f", res.SparsityWith, res.SparsityWithout)
	}
	saved := 1 - float64(res.WithSearches)/float64(res.WithoutSearches)
	if saved < 0.15 {
		t.Errorf("grouping saved only %.1f%% of searches", 100*saved)
	}
}

func TestAblationConnectivityCostsAccuracy(t *testing.T) {
	res, err := AblationConnectivity("YOLOv5s")
	if err != nil {
		t.Fatal(err)
	}
	// R-TOSS reaches much higher sparsity without kernel removal while
	// keeping mAP in the same range — connectivity pruning pays kernels
	// for sparsity R-TOSS gets from patterns.
	if res.SparsityWithout <= res.SparsityWith {
		t.Errorf("R-TOSS sparsity %.3f should exceed PD %.3f", res.SparsityWithout, res.SparsityWith)
	}
	if res.MAPWithoutConnectivity < res.MAPWithConnectivity-2.5 {
		t.Errorf("R-TOSS mAP %.2f collapsed vs PD %.2f", res.MAPWithoutConnectivity, res.MAPWithConnectivity)
	}
}

func TestAblation1x1Doubles(t *testing.T) {
	res, err := Ablation1x1("YOLOv5s")
	if err != nil {
		t.Fatal(err)
	}
	// Without Algorithm 3, 68% of YOLOv5s's conv layers stay dense and
	// compression collapses (the paper's §III motivation).
	if res.CompressionWith < 1.7*res.CompressionWithout {
		t.Errorf("1x1 transform should matter: %.2fx with vs %.2fx without",
			res.CompressionWith, res.CompressionWithout)
	}
}

func TestSceneMAPOrderingMatchesSurrogate(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework lineup in -short mode")
	}
	// The end-to-end scene evaluation must rank R-TOSS above the
	// structured baselines, like the surrogate does.
	maps, err := SceneMAP("RetinaNet", []string{"R-TOSS (2EP)", "Pruning Filters (PF)", "Base Model (BM)"}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if maps["R-TOSS (2EP)"] <= maps["Pruning Filters (PF)"] {
		t.Errorf("scene eval ranks PF (%.2f) above R-TOSS (%.2f)", maps["Pruning Filters (PF)"], maps["R-TOSS (2EP)"])
	}
}
