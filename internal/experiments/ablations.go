package experiments

import (
	"rtoss/internal/baselines"
	"rtoss/internal/core"
	"rtoss/internal/metrics"
)

// AblationDFS runs R-TOSS-3EP on the named model with and without
// Algorithm 1's DFS grouping (ablation A1: the grouping is a pure
// compute saving — same sparsity, fewer best-fit searches).
func AblationDFS(modelName string) (*AblationDFSResult, error) {
	withM := buildModel(modelName)
	withRes, err := core.NewVariant(3).Prune(withM)
	if err != nil {
		return nil, err
	}
	noGroup, err := core.New(core.Config{Entries: 3, UseDFSGrouping: false, Transform1x1: true})
	if err != nil {
		return nil, err
	}
	withoutM := buildModel(modelName)
	withoutRes, err := noGroup.Prune(withoutM)
	if err != nil {
		return nil, err
	}
	return &AblationDFSResult{
		WithSearches:      withRes.BestFitSearches,
		WithoutSearches:   withoutRes.BestFitSearches,
		WithInherited:     withRes.InheritedKernels,
		WithDurationMS:    float64(withRes.Duration.Microseconds()) / 1e3,
		WithoutDurationMS: float64(withoutRes.Duration.Microseconds()) / 1e3,
		SparsityWith:      withRes.Sparsity(),
		SparsityWithout:   withoutRes.Sparsity(),
	}, nil
}

// AblationConnectivity contrasts PatDNN-style connectivity pruning with
// R-TOSS's refusal to remove kernels (ablation A2): at comparable
// overall sparsity, connectivity pruning costs accuracy.
func AblationConnectivity(modelName string) (*AblationConnectivityResult, error) {
	orig := sharedModel(modelName)

	// With connectivity: 4EP patterns + 30% kernel removal (PD).
	withM := buildModel(modelName)
	withRes, err := baselines.NewPatDNN().Prune(withM)
	if err != nil {
		return nil, err
	}
	withQ := metrics.AssessPruned(orig, withM, withRes)

	// Without connectivity at higher per-kernel sparsity to match:
	// R-TOSS-3EP reaches similar overall sparsity with no kernel loss.
	withoutM := buildModel(modelName)
	withoutRes, err := core.NewVariant(3).Prune(withoutM)
	if err != nil {
		return nil, err
	}
	withoutQ := metrics.AssessPruned(orig, withoutM, withoutRes)

	// Compare whole-model sparsity: PD's per-layer accounting covers
	// only the 3×3 layers it touches, understating how much of the
	// model stays dense.
	return &AblationConnectivityResult{
		MAPWithConnectivity:    withQ.MAP,
		MAPWithoutConnectivity: withoutQ.MAP,
		SparsityWith:           withM.Sparsity(),
		SparsityWithout:        withoutM.Sparsity(),
	}, nil
}

// Ablation1x1 measures what Algorithm 3 buys (ablation A3): with the
// 1×1 transform disabled, most of a modern detector's kernels stay
// dense and the achievable compression collapses.
func Ablation1x1(modelName string) (*Ablation1x1Result, error) {
	withM := buildModel(modelName)
	withRes, err := core.NewVariant(2).Prune(withM)
	if err != nil {
		return nil, err
	}
	no1x1, err := core.New(core.Config{Entries: 2, UseDFSGrouping: true, Transform1x1: false})
	if err != nil {
		return nil, err
	}
	withoutM := buildModel(modelName)
	withoutRes, err := no1x1.Prune(withoutM)
	if err != nil {
		return nil, err
	}
	return &Ablation1x1Result{
		SparsityWith:       withRes.Sparsity(),
		SparsityWithout:    withoutRes.Sparsity(),
		CompressionWith:    withRes.CompressionRatio(),
		CompressionWithout: withoutRes.CompressionRatio(),
	}, nil
}
