// Package experiments is the reproduction harness: one runner per table
// and figure of the paper's evaluation (§V), plus the ablations called
// out in DESIGN.md. Each runner assembles the full pipeline — build
// model, prune, measure compression/sparsity, estimate latency and
// energy on both platforms, assess accuracy — and renders the same rows
// or series the paper reports.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"rtoss/internal/baselines"
	"rtoss/internal/core"
	"rtoss/internal/engine"
	"rtoss/internal/hw"
	"rtoss/internal/kitti"
	"rtoss/internal/metrics"
	"rtoss/internal/models"
	"rtoss/internal/nn"
	"rtoss/internal/prune"
	"rtoss/internal/report"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// FrameworkResult is the full measurement of one pruning framework on
// one model, across both platforms.
type FrameworkResult struct {
	Framework   string
	Model       string
	Structure   prune.Structure
	Compression float64 // params_total / params_nnz (paper's reduction ratio)
	Sparsity    float64 // prunable-weight sparsity
	MAP         float64 // surrogate mAP (%)

	TimeGPU, TimeTX2           float64 // seconds
	SpeedupGPU, SpeedupTX2     float64 // vs the dense baseline (analytic)
	EnergyGPU, EnergyTX2       float64 // joules
	EnergyRedGPU, EnergyRedTX2 float64 // fraction saved vs baseline

	// Measured (not analytic) numbers from the real execution engine at
	// MeasuredRes×MeasuredRes: the dense base model's forward wall-clock,
	// this framework's sparsity-aware forward wall-clock, and their
	// ratio. This is the end-to-end proof that the induced sparsity is
	// executable, on whatever machine ran the experiment.
	MeasuredRes     int
	MeasuredDense   float64 // seconds, dense kernels on the base model
	MeasuredSparse  float64 // seconds, sparse dispatch on the pruned model
	MeasuredSpeedup float64
}

// measuredRes is the probe resolution for measured engine speedups:
// small enough that the pure-Go kernels finish quickly, large enough
// that every conv output stays non-empty (RetinaNet's P7 sits at /128
// but survives 64×64 thanks to padding).
const measuredRes = 64

// MeasureForward times a compiled Program's forward pass (best of reps
// runs, which suppresses one-off scheduler/GC hiccups; reps < 1 counts
// as 1) and returns the final output tensor of the last run. It is
// shared by RunFrameworks, the serving benchmarks and the rtoss CLI so
// all measure with the same methodology.
func MeasureForward(e *engine.Program, input *tensor.Tensor, reps int) (float64, *tensor.Tensor, error) {
	if reps < 1 {
		reps = 1
	}
	best := 0.0
	var out *tensor.Tensor
	for i := 0; i < reps; i++ {
		start := time.Now()
		o, err := e.Output(input)
		if err != nil {
			return 0, nil, err
		}
		out = o
		if d := time.Since(start).Seconds(); i == 0 || d < best {
			best = d
		}
	}
	return best, out, nil
}

// probeInput returns a deterministic random input for measured runs.
func probeInput(c, res int) *tensor.Tensor {
	r := rng.New(0xbeef)
	in := tensor.New(1, c, res, res)
	for i := range in.Data {
		in.Data[i] = float32(r.Range(-1, 1))
	}
	return in
}

// buildModel returns a fresh copy of a zoo model by name — the path
// for pruners, which mutate weights and must own their copy.
func buildModel(name string) *nn.Model {
	m, err := models.ByName(name, models.KITTIClasses)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return m
}

// sharedModel returns the shared read-only zoo instance by name — the
// path for baselines and reference measurements (analytic estimates,
// dense Program compilation, accuracy assessment), which only read
// weights and so skip the multi-million-parameter clone.
func sharedModel(name string) *nn.Model {
	m, err := models.Shared(name, models.KITTIClasses)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return m
}

// Pruners returns the paper's framework lineup: BM (nil pruner),
// PD, NMS, NS, PF, NP, R-TOSS-3EP, R-TOSS-2EP.
func Pruners() []prune.Pruner {
	ps := []prune.Pruner{}
	ps = append(ps, baselines.All()...)
	ps = append(ps, core.NewVariant(3), core.NewVariant(2))
	return ps
}

var (
	frameworkMu    sync.Mutex
	frameworkCache = map[string][]FrameworkResult{}
)

// RunFrameworks measures the base model plus every framework on the
// named model ("YOLOv5s" or "RetinaNet"). Results are cached per model;
// the first entry is always the Base Model (BM).
func RunFrameworks(modelName string) ([]FrameworkResult, error) {
	frameworkMu.Lock()
	if r, ok := frameworkCache[modelName]; ok {
		frameworkMu.Unlock()
		return r, nil
	}
	frameworkMu.Unlock()

	gpu, tx2 := hw.RTX2080Ti(), hw.JetsonTX2()
	orig := sharedModel(modelName)
	baseGPU, err := hw.Estimate(orig, gpu, prune.Dense)
	if err != nil {
		return nil, err
	}
	baseTX2, err := hw.Estimate(orig, tx2, prune.Dense)
	if err != nil {
		return nil, err
	}
	probe := probeInput(orig.InputC, measuredRes)
	denseEng, err := engine.Compile(orig, engine.Options{Mode: engine.ModeDense})
	if err != nil {
		return nil, err
	}
	baseMeasured, _, err := MeasureForward(denseEng, probe, 2)
	if err != nil {
		return nil, fmt.Errorf("measured dense forward on %s: %w", modelName, err)
	}
	results := []FrameworkResult{{
		Framework:   "Base Model (BM)",
		Model:       modelName,
		Structure:   prune.Dense,
		Compression: 1,
		MAP:         metrics.BaselineQuality(orig).MAP,
		TimeGPU:     baseGPU.Time, TimeTX2: baseTX2.Time,
		SpeedupGPU: 1, SpeedupTX2: 1,
		EnergyGPU: baseGPU.Energy, EnergyTX2: baseTX2.Energy,
		MeasuredRes:   measuredRes,
		MeasuredDense: baseMeasured, MeasuredSparse: baseMeasured, MeasuredSpeedup: 1,
	}}

	for _, p := range Pruners() {
		m := buildModel(modelName)
		res, err := p.Prune(m)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", p.Name(), modelName, err)
		}
		cGPU, err := hw.Estimate(m, gpu, res.Structure)
		if err != nil {
			return nil, err
		}
		cTX2, err := hw.Estimate(m, tx2, res.Structure)
		if err != nil {
			return nil, err
		}
		sparseEng, err := engine.Compile(m, engine.Options{Mode: engine.ModeSparse})
		if err != nil {
			return nil, err
		}
		measured, _, err := MeasureForward(sparseEng, probe, 2)
		if err != nil {
			return nil, fmt.Errorf("measured sparse forward for %s on %s: %w", p.Name(), modelName, err)
		}
		q := metrics.AssessPruned(orig, m, res)
		results = append(results, FrameworkResult{
			Framework:   p.Name(),
			Model:       modelName,
			Structure:   res.Structure,
			Compression: res.CompressionRatio(),
			Sparsity:    res.Sparsity(),
			MAP:         q.MAP,
			TimeGPU:     cGPU.Time, TimeTX2: cTX2.Time,
			SpeedupGPU: cGPU.Speedup(baseGPU), SpeedupTX2: cTX2.Speedup(baseTX2),
			EnergyGPU: cGPU.Energy, EnergyTX2: cTX2.Energy,
			EnergyRedGPU: cGPU.EnergyReduction(baseGPU), EnergyRedTX2: cTX2.EnergyReduction(baseTX2),
			MeasuredRes:   measuredRes,
			MeasuredDense: baseMeasured, MeasuredSparse: measured,
			MeasuredSpeedup: baseMeasured / measured,
		})
	}
	frameworkMu.Lock()
	frameworkCache[modelName] = results
	frameworkMu.Unlock()
	return results, nil
}

// EvalModels is the pair of models the paper evaluates.
var EvalModels = []string{"YOLOv5s", "RetinaNet"}

// ---------------------------------------------------------------------
// Table 1

// Table1 regenerates "Metrics comparison of two-stage vs single-stage
// detectors": literature mAP plus inference rate derived from the
// analytic desktop-GPU model (paper values were likewise collected from
// heterogeneous literature sources).
func Table1() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 1: two-stage vs single-stage detectors",
		Headers: []string{"Name", "Type", "mAP (paper)", "fps (paper)", "fps (model)"},
	}
	gpu := hw.RTX2080Ti()
	for i, d := range models.Zoo() {
		c, err := hw.EstimateTwoStage(d.Model, d.PerRegion, d.Regions, gpu)
		if err != nil {
			return nil, err
		}
		t.AddRow(models.Table1Names[i], d.Stage,
			fmt.Sprintf("%.1f%%", d.RefMAP), fmt.Sprintf("%.2f", d.RefFPS),
			fmt.Sprintf("%.2f", c.FPS()))
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Table 2

// table2Paper holds the paper's execution-time column (seconds on TX2).
var table2Paper = map[string]float64{
	"YOLOv5s": 0.7415, "YOLOXs": 1.23, "RetinaNet": 6.8,
	"YOLOv7": 6.5, "YOLOR": 6.89, "DETR": 7.6,
}

// Table2 regenerates "Comparison of model sizes vs. execution time" on
// the Jetson TX2 model.
func Table2() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 2: model size vs execution time (Jetson TX2)",
		Headers: []string{"Model", "Params (M)", "Time (s)", "Paper (s)"},
	}
	tx2 := hw.JetsonTX2()
	for _, m := range models.Table2Models() {
		c, err := hw.Estimate(m, tx2, prune.Dense)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name, fmt.Sprintf("%.2f", float64(m.Params())/1e6),
			fmt.Sprintf("%.3f", c.Time), fmt.Sprintf("%.3f", table2Paper[m.Name]))
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Table 3

// SensitivityRow is one row of the Table 3 sensitivity study.
type SensitivityRow struct {
	Variant   string
	Model     string
	Reduction float64
	MAP       float64
	TimeMS    float64 // RTX 2080Ti, milliseconds
	EnergyJ   float64 // RTX 2080Ti, joules
}

// Sensitivity runs the Table 3 study: R-TOSS with 5/4/3/2-entry
// patterns on both models, measured on the RTX 2080Ti model.
func Sensitivity() ([]SensitivityRow, error) {
	gpu := hw.RTX2080Ti()
	var rows []SensitivityRow
	for _, modelName := range EvalModels {
		orig := sharedModel(modelName)
		for _, entries := range []int{5, 4, 3, 2} {
			m := buildModel(modelName)
			res, err := core.NewVariant(entries).Prune(m)
			if err != nil {
				return nil, err
			}
			c, err := hw.Estimate(m, gpu, res.Structure)
			if err != nil {
				return nil, err
			}
			q := metrics.AssessPruned(orig, m, res)
			rows = append(rows, SensitivityRow{
				Variant:   fmt.Sprintf("R-TOSS (%dEP)", entries),
				Model:     modelName,
				Reduction: res.CompressionRatio(),
				MAP:       q.MAP,
				TimeMS:    c.Time * 1e3,
				EnergyJ:   c.Energy,
			})
		}
	}
	return rows, nil
}

// Table3 renders the sensitivity study in the paper's layout.
func Table3() (*report.Table, error) {
	rows, err := Sensitivity()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Table 3: R-TOSS sensitivity analysis (RTX 2080Ti)",
		Headers: []string{"Variant", "Model", "Reduction ratio", "mAP", "Inference (ms)", "Energy (J)"},
	}
	for _, r := range rows {
		t.AddRow(r.Variant, r.Model, fmt.Sprintf("%.2fx", r.Reduction),
			fmt.Sprintf("%.2f", r.MAP), fmt.Sprintf("%.2f", r.TimeMS), fmt.Sprintf("%.3f", r.EnergyJ))
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Figures 4-7

// figSeries builds one chart series per model over the framework lineup.
func figSeries(value func(FrameworkResult) float64) ([]string, []report.Series, error) {
	var labels []string
	var series []report.Series
	for _, modelName := range EvalModels {
		rs, err := RunFrameworks(modelName)
		if err != nil {
			return nil, nil, err
		}
		s := report.Series{Name: modelName}
		if labels == nil {
			for _, r := range rs {
				labels = append(labels, r.Framework)
			}
		}
		for _, r := range rs {
			s.Values = append(s.Values, value(r))
		}
		series = append(series, s)
	}
	// Transpose: the paper plots frameworks on the X axis per model.
	out := make([]report.Series, len(labels))
	for i, l := range labels {
		out[i] = report.Series{Name: l}
		for _, s := range series {
			out[i].Values = append(out[i].Values, s.Values[i])
		}
	}
	return EvalModels, out, nil
}

// Fig4 regenerates the sparsity-ratio comparison (compression normalised
// to the base model).
func Fig4() (string, error) {
	labels, series, err := figSeries(func(r FrameworkResult) float64 { return r.Compression })
	if err != nil {
		return "", err
	}
	return report.BarChart("Fig 4: compression ratio vs base model", labels, series, "x", 40), nil
}

// Fig5 regenerates the mAP comparison.
func Fig5() (string, error) {
	labels, series, err := figSeries(func(r FrameworkResult) float64 { return r.MAP })
	if err != nil {
		return "", err
	}
	return report.BarChart("Fig 5: mAP comparison (KITTI surrogate)", labels, series, "%", 40), nil
}

// Fig6 regenerates the speedup comparison on both platforms.
func Fig6() (string, error) {
	labelsGPU, seriesGPU, err := figSeries(func(r FrameworkResult) float64 { return r.SpeedupGPU })
	if err != nil {
		return "", err
	}
	labelsTX2, seriesTX2, err := figSeries(func(r FrameworkResult) float64 { return r.SpeedupTX2 })
	if err != nil {
		return "", err
	}
	return report.BarChart("Fig 6a: speedup on RTX 2080Ti", labelsGPU, seriesGPU, "x", 40) + "\n" +
		report.BarChart("Fig 6b: speedup on Jetson TX2", labelsTX2, seriesTX2, "x", 40), nil
}

// Fig7 regenerates the energy-reduction comparison on both platforms.
func Fig7() (string, error) {
	labelsGPU, seriesGPU, err := figSeries(func(r FrameworkResult) float64 { return 100 * r.EnergyRedGPU })
	if err != nil {
		return "", err
	}
	labelsTX2, seriesTX2, err := figSeries(func(r FrameworkResult) float64 { return 100 * r.EnergyRedTX2 })
	if err != nil {
		return "", err
	}
	return report.BarChart("Fig 7a: energy reduction on RTX 2080Ti", labelsGPU, seriesGPU, "%", 40) + "\n" +
		report.BarChart("Fig 7b: energy reduction on Jetson TX2", labelsTX2, seriesTX2, "%", 40), nil
}

// ---------------------------------------------------------------------
// Figure 8

// Fig8 regenerates the qualitative KITTI comparison: one scene,
// RetinaNet pruned by BM / NP / PD / R-TOSS-2EP, rendered as ASCII with
// per-detection confidences. The scene seed is chosen to contain a tiny
// distant car — the object the paper shows only R-TOSS-2EP retaining.
func Fig8(cols int) (string, error) {
	rs, err := RunFrameworks("RetinaNet")
	if err != nil {
		return "", err
	}
	scores := map[string]float64{}
	base := metrics.BaseMAP["RetinaNet"]
	for _, r := range rs {
		scores[r.Framework] = r.MAP / base
	}
	scene := pickFig8Scene()
	out := "Fig 8: qualitative comparison on a KITTI scene (RetinaNet)\n"
	for _, fw := range []string{"Base Model (BM)", "Neural Pruning (NP)", "PatDNN (PD)", "R-TOSS (2EP)"} {
		score, ok := scores[fw]
		if !ok {
			return "", fmt.Errorf("experiments: no score for %q", fw)
		}
		dets := kitti.SimulateDetections(scene, score, fig8RNG(fw))
		out += "\n--- " + fw + fmt.Sprintf(" (quality %.3f)\n", score)
		out += kitti.Render(scene, dets, cols)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Scene-level mAP cross-check

// SceneMAP evaluates a framework's quality score on the synthetic KITTI
// scenes with the real mAP evaluator (the end-to-end cross-check of the
// surrogate; see EXPERIMENTS.md).
func SceneMAP(modelName string, frameworks []string, scenes int) (map[string]float64, error) {
	rs, err := RunFrameworks(modelName)
	if err != nil {
		return nil, err
	}
	data := kitti.Dataset(2023, scenes, 640, 640)
	base := metrics.BaseMAP[modelName]
	out := map[string]float64{}
	for _, r := range rs {
		want := false
		for _, f := range frameworks {
			if f == r.Framework {
				want = true
			}
		}
		if !want {
			continue
		}
		out[r.Framework] = 100 * kitti.EvaluateScore(data, r.MAP/base, 0.5, 7)
	}
	return out, nil
}
