package experiments

import (
	"fmt"

	"rtoss/internal/baselines"
	"rtoss/internal/core"
	"rtoss/internal/hw"
	"rtoss/internal/metrics"
	"rtoss/internal/prune"
	"rtoss/internal/report"
)

// TradeoffPoint is one operating point on a sparsity/accuracy/latency
// trade-off curve.
type TradeoffPoint struct {
	Label       string
	Sparsity    float64 // whole-model prunable sparsity
	Compression float64
	MAP         float64
	SpeedupTX2  float64
}

// TradeoffCurve sweeps a family of pruner configurations over a model
// and returns the resulting operating points — the design-space view
// behind the paper's fixed operating points (an extension beyond the
// paper's tables; see DESIGN.md "optional/extension" work).
type TradeoffCurve struct {
	Family string
	Model  string
	Points []TradeoffPoint
}

// sweep evaluates a list of (label, pruner) pairs on the model.
func sweep(modelName, family string, pruners []struct {
	label string
	p     prune.Pruner
}) (*TradeoffCurve, error) {
	tx2 := hw.JetsonTX2()
	orig := sharedModel(modelName)
	base, err := hw.Estimate(orig, tx2, prune.Dense)
	if err != nil {
		return nil, err
	}
	curve := &TradeoffCurve{Family: family, Model: modelName}
	for _, entry := range pruners {
		m := buildModel(modelName)
		res, err := entry.p.Prune(m)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", entry.label, err)
		}
		cost, err := hw.Estimate(m, tx2, res.Structure)
		if err != nil {
			return nil, err
		}
		q := metrics.AssessPruned(orig, m, res)
		curve.Points = append(curve.Points, TradeoffPoint{
			Label:       entry.label,
			Sparsity:    m.Sparsity(),
			Compression: res.CompressionRatio(),
			MAP:         q.MAP,
			SpeedupTX2:  cost.Speedup(base),
		})
	}
	return curve, nil
}

// RTOSSTradeoff sweeps the entry-pattern axis (5EP → 2EP).
func RTOSSTradeoff(modelName string) (*TradeoffCurve, error) {
	var entries []struct {
		label string
		p     prune.Pruner
	}
	for _, e := range []int{5, 4, 3, 2} {
		entries = append(entries, struct {
			label string
			p     prune.Pruner
		}{fmt.Sprintf("%dEP", e), core.NewVariant(e)})
	}
	return sweep(modelName, "R-TOSS", entries)
}

// NMSTradeoff sweeps SparseML's global target sparsity.
func NMSTradeoff(modelName string, targets []float64) (*TradeoffCurve, error) {
	var entries []struct {
		label string
		p     prune.Pruner
	}
	for _, t := range targets {
		s := baselines.NewSparseML()
		s.TargetSparsity = t
		entries = append(entries, struct {
			label string
			p     prune.Pruner
		}{fmt.Sprintf("s=%.2f", t), s})
	}
	return sweep(modelName, "SparseML", entries)
}

// PDTradeoff sweeps PatDNN's connectivity-pruning fraction.
func PDTradeoff(modelName string, fracs []float64) (*TradeoffCurve, error) {
	var entries []struct {
		label string
		p     prune.Pruner
	}
	for _, f := range fracs {
		p := baselines.NewPatDNN()
		p.ConnectivityFrac = f
		entries = append(entries, struct {
			label string
			p     prune.Pruner
		}{fmt.Sprintf("conn=%.2f", f), p})
	}
	return sweep(modelName, "PatDNN", entries)
}

// Render formats the curve as a table.
func (c *TradeoffCurve) Render() string {
	t := &report.Table{
		Title:   fmt.Sprintf("%s trade-off on %s (TX2)", c.Family, c.Model),
		Headers: []string{"Point", "Sparsity", "Compression", "mAP", "TX2 speedup"},
	}
	for _, p := range c.Points {
		t.AddRow(p.Label,
			fmt.Sprintf("%.3f", p.Sparsity),
			fmt.Sprintf("%.2fx", p.Compression),
			fmt.Sprintf("%.2f", p.MAP),
			fmt.Sprintf("%.2fx", p.SpeedupTX2))
	}
	return t.Render()
}

// ParetoDominates reports whether point a dominates b (at least as good
// on every axis that matters and strictly better on one).
func ParetoDominates(a, b TradeoffPoint) bool {
	geq := a.MAP >= b.MAP && a.SpeedupTX2 >= b.SpeedupTX2 && a.Compression >= b.Compression
	gt := a.MAP > b.MAP || a.SpeedupTX2 > b.SpeedupTX2 || a.Compression > b.Compression
	return geq && gt
}
