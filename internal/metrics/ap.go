// Package metrics implements the accuracy stack: a real PASCAL/KITTI
// style AP/mAP evaluator (greedy IoU matching, precision-recall curve,
// interpolated AP), and the information-retention mAP surrogate that
// substitutes for post-pruning finetuned evaluation (the repository's
// documented substitution for a GPU training stack; see DESIGN.md §2).
package metrics

import (
	"sort"

	"rtoss/internal/detect"
)

// Sample pairs one image's detections with its ground truth.
type Sample struct {
	Detections []detect.Detection
	Truth      []detect.GroundTruth
}

// APResult is the evaluation outcome for one class.
type APResult struct {
	Class     int
	AP        float64
	Precision []float64
	Recall    []float64
	NumTruth  int
	NumDet    int
}

// Evaluate computes per-class AP and mAP at the given IoU threshold
// over a dataset, using greedy highest-score-first matching (each
// ground-truth box matches at most one detection; difficult objects
// neither count as truth nor penalise detections that match them).
func Evaluate(samples []Sample, numClasses int, iouThreshold float64) (perClass []APResult, mAP float64) {
	perClass = make([]APResult, numClasses)
	validClasses := 0
	sum := 0.0
	for c := 0; c < numClasses; c++ {
		perClass[c] = evalClass(samples, c, iouThreshold)
		if perClass[c].NumTruth > 0 {
			validClasses++
			sum += perClass[c].AP
		}
	}
	if validClasses > 0 {
		mAP = sum / float64(validClasses)
	}
	return perClass, mAP
}

type scoredMatch struct {
	score float64
	tp    bool
	skip  bool // matched a difficult object: ignore entirely
}

func evalClass(samples []Sample, class int, iouThreshold float64) APResult {
	var matches []scoredMatch
	numTruth := 0
	numDet := 0
	for _, s := range samples {
		var truth []detect.GroundTruth
		for _, g := range s.Truth {
			if g.Class == class {
				truth = append(truth, g)
				if !g.Difficult {
					numTruth++
				}
			}
		}
		var dets []detect.Detection
		for _, d := range s.Detections {
			if d.Class == class {
				dets = append(dets, d)
			}
		}
		numDet += len(dets)
		sort.SliceStable(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
		used := make([]bool, len(truth))
		for _, d := range dets {
			bestIoU := 0.0
			bestIdx := -1
			for ti, g := range truth {
				if used[ti] {
					continue
				}
				if iou := detect.IoU(d.Box, g.Box); iou > bestIoU {
					bestIoU = iou
					bestIdx = ti
				}
			}
			m := scoredMatch{score: d.Score}
			if bestIdx >= 0 && bestIoU >= iouThreshold {
				used[bestIdx] = true
				if truth[bestIdx].Difficult {
					m.skip = true
				} else {
					m.tp = true
				}
			}
			matches = append(matches, m)
		}
	}
	res := APResult{Class: class, NumTruth: numTruth, NumDet: numDet}
	if numTruth == 0 {
		return res
	}
	sort.SliceStable(matches, func(i, j int) bool { return matches[i].score > matches[j].score })
	tp, fp := 0, 0
	for _, m := range matches {
		if m.skip {
			continue
		}
		if m.tp {
			tp++
		} else {
			fp++
		}
		res.Precision = append(res.Precision, float64(tp)/float64(tp+fp))
		res.Recall = append(res.Recall, float64(tp)/float64(numTruth))
	}
	res.AP = interpolatedAP(res.Precision, res.Recall)
	return res
}

// interpolatedAP computes all-point interpolated average precision: the
// area under the precision envelope as a function of recall.
func interpolatedAP(precision, recall []float64) float64 {
	if len(precision) == 0 {
		return 0
	}
	n := len(precision)
	// Precision envelope: p'(r) = max_{r' >= r} p(r').
	env := make([]float64, n)
	maxP := 0.0
	for i := n - 1; i >= 0; i-- {
		if precision[i] > maxP {
			maxP = precision[i]
		}
		env[i] = maxP
	}
	ap := 0.0
	prevR := 0.0
	for i := 0; i < n; i++ {
		ap += (recall[i] - prevR) * env[i]
		prevR = recall[i]
	}
	return ap
}
