package metrics

import (
	"math"
	"testing"

	"rtoss/internal/baselines"
	"rtoss/internal/core"
	"rtoss/internal/detect"
	"rtoss/internal/models"
	"rtoss/internal/nn"
)

func TestEvaluatePerfectDetector(t *testing.T) {
	truth := []detect.GroundTruth{
		{Box: detect.NewBox(0, 0, 10, 10), Class: 0},
		{Box: detect.NewBox(20, 20, 40, 40), Class: 1},
	}
	dets := []detect.Detection{
		{Box: detect.NewBox(0, 0, 10, 10), Class: 0, Score: 0.9},
		{Box: detect.NewBox(20, 20, 40, 40), Class: 1, Score: 0.8},
	}
	_, mAP := Evaluate([]Sample{{Detections: dets, Truth: truth}}, 2, 0.5)
	if mAP != 1 {
		t.Fatalf("perfect detector mAP = %v", mAP)
	}
}

func TestEvaluateMissedObject(t *testing.T) {
	truth := []detect.GroundTruth{
		{Box: detect.NewBox(0, 0, 10, 10), Class: 0},
		{Box: detect.NewBox(50, 50, 60, 60), Class: 0},
	}
	dets := []detect.Detection{
		{Box: detect.NewBox(0, 0, 10, 10), Class: 0, Score: 0.9},
	}
	per, mAP := Evaluate([]Sample{{Detections: dets, Truth: truth}}, 1, 0.5)
	// One of two objects found at full precision: AP = 0.5.
	if math.Abs(mAP-0.5) > 1e-9 {
		t.Fatalf("mAP = %v want 0.5", mAP)
	}
	if per[0].NumTruth != 2 {
		t.Fatalf("truth count %d", per[0].NumTruth)
	}
}

func TestEvaluateFalsePositiveLowersAP(t *testing.T) {
	truth := []detect.GroundTruth{{Box: detect.NewBox(0, 0, 10, 10), Class: 0}}
	// High-scoring FP ranked above the TP.
	dets := []detect.Detection{
		{Box: detect.NewBox(80, 80, 90, 90), Class: 0, Score: 0.95},
		{Box: detect.NewBox(0, 0, 10, 10), Class: 0, Score: 0.5},
	}
	_, mAP := Evaluate([]Sample{{Detections: dets, Truth: truth}}, 1, 0.5)
	if mAP >= 1 || mAP <= 0 {
		t.Fatalf("mAP = %v, want in (0,1)", mAP)
	}
	// Precision at the TP is 1/2, so all-point AP = 0.5.
	if math.Abs(mAP-0.5) > 1e-9 {
		t.Fatalf("mAP = %v want 0.5", mAP)
	}
}

func TestEvaluateLocalisationThreshold(t *testing.T) {
	truth := []detect.GroundTruth{{Box: detect.NewBox(0, 0, 10, 10), Class: 0}}
	// Shifted box with IoU ~ 0.38 fails at 0.5 but passes at 0.3.
	dets := []detect.Detection{{Box: detect.NewBox(4, 0, 14, 10), Class: 0, Score: 0.9}}
	_, strict := Evaluate([]Sample{{Detections: dets, Truth: truth}}, 1, 0.5)
	_, loose := Evaluate([]Sample{{Detections: dets, Truth: truth}}, 1, 0.3)
	if strict != 0 || loose != 1 {
		t.Fatalf("strict=%v loose=%v", strict, loose)
	}
}

func TestEvaluateDifficultIgnored(t *testing.T) {
	truth := []detect.GroundTruth{
		{Box: detect.NewBox(0, 0, 10, 10), Class: 0},
		{Box: detect.NewBox(50, 50, 52, 52), Class: 0, Difficult: true},
	}
	// Detect only the easy one: AP must be 1 (difficult not counted),
	// and detecting the difficult one must not hurt either.
	dets := []detect.Detection{{Box: detect.NewBox(0, 0, 10, 10), Class: 0, Score: 0.9}}
	_, mAP := Evaluate([]Sample{{Detections: dets, Truth: truth}}, 1, 0.5)
	if mAP != 1 {
		t.Fatalf("difficult object penalised: mAP=%v", mAP)
	}
	dets = append(dets, detect.Detection{Box: detect.NewBox(50, 50, 52, 52), Class: 0, Score: 0.8})
	_, mAP = Evaluate([]Sample{{Detections: dets, Truth: truth}}, 1, 0.5)
	if mAP != 1 {
		t.Fatalf("difficult match penalised: mAP=%v", mAP)
	}
}

func TestEvaluateDuplicateDetectionsPenalised(t *testing.T) {
	truth := []detect.GroundTruth{{Box: detect.NewBox(0, 0, 10, 10), Class: 0}}
	dets := []detect.Detection{
		{Box: detect.NewBox(0, 0, 10, 10), Class: 0, Score: 0.9},
		{Box: detect.NewBox(0, 0, 10, 10), Class: 0, Score: 0.8}, // duplicate → FP
	}
	per, _ := Evaluate([]Sample{{Detections: dets, Truth: truth}}, 1, 0.5)
	if per[0].Precision[len(per[0].Precision)-1] >= 1 {
		t.Fatal("duplicate detection should register as FP")
	}
}

func TestInterpolatedAPMonotoneEnvelope(t *testing.T) {
	p := []float64{1.0, 0.5, 0.67, 0.5}
	r := []float64{0.25, 0.25, 0.5, 0.5}
	ap := interpolatedAP(p, r)
	// Envelope at r<=0.25 is 1.0; (0.25,0.5] is 0.67.
	want := 0.25*1.0 + 0.25*0.67
	if math.Abs(ap-want) > 1e-9 {
		t.Fatalf("ap=%v want %v", ap, want)
	}
}

func TestSurrogateBaseline(t *testing.T) {
	m := models.YOLOv5s(models.KITTIClasses)
	q := BaselineQuality(m)
	if q.Score != 1 || q.MAP != BaseMAP["YOLOv5s"] {
		t.Fatalf("baseline quality %+v", q)
	}
}

func TestSurrogateTable3YOLOv5s(t *testing.T) {
	// Paper Table 3: YOLOv5s 3EP mAP 78.58 (calibration anchor) and the
	// headline ordering 3EP > 2EP > BM.
	orig := models.YOLOv5s(models.KITTIClasses)
	maps := map[int]float64{}
	for _, e := range []int{2, 3} {
		m := models.YOLOv5s(models.KITTIClasses)
		res, err := core.NewVariant(e).Prune(m)
		if err != nil {
			t.Fatal(err)
		}
		maps[e] = AssessPruned(orig, m, res).MAP
	}
	if math.Abs(maps[3]-78.58) > 1.0 {
		t.Errorf("3EP mAP %.2f, paper 78.58", maps[3])
	}
	if !(maps[3] > maps[2] && maps[2] > BaseMAP["YOLOv5s"]) {
		t.Errorf("ordering broken: 3EP=%.2f 2EP=%.2f BM=%.2f", maps[3], maps[2], BaseMAP["YOLOv5s"])
	}
}

func TestSurrogateTable3RetinaNet(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework sweep in -short mode")
	}
	// Paper: RetinaNet 3EP 79.45, 2EP 82.9 — the flip (2EP > 3EP) must
	// reproduce even though it reverses on YOLOv5s.
	orig := models.RetinaNet(models.KITTIClasses)
	maps := map[int]float64{}
	for _, e := range []int{2, 3} {
		m := models.RetinaNet(models.KITTIClasses)
		res, err := core.NewVariant(e).Prune(m)
		if err != nil {
			t.Fatal(err)
		}
		maps[e] = AssessPruned(orig, m, res).MAP
	}
	if math.Abs(maps[3]-79.45) > 1.0 {
		t.Errorf("3EP mAP %.2f, paper 79.45", maps[3])
	}
	if maps[2] <= maps[3] {
		t.Errorf("RetinaNet 2EP (%.2f) should beat 3EP (%.2f), as in the paper", maps[2], maps[3])
	}
}

func TestSurrogateFig5Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full framework sweep in -short mode")
	}
	// Fig 5's shape on both models: R-TOSS beats NMS (best prior
	// non-pattern framework); NS/PF are the worst; on YOLOv5s PD
	// slightly outperforms R-TOSS-3EP (the paper concedes this).
	run := func(build func() *nn.Model) map[string]float64 {
		orig := build()
		out := map[string]float64{}
		for _, e := range []int{2, 3} {
			m := build()
			res, _ := core.NewVariant(e).Prune(m)
			out[core.NewVariant(e).Name()] = AssessPruned(orig, m, res).MAP
		}
		for _, p := range baselines.All() {
			m := build()
			res, _ := p.Prune(m)
			out[p.Name()] = AssessPruned(orig, m, res).MAP
		}
		return out
	}
	yolo := run(func() *nn.Model { return models.YOLOv5s(models.KITTIClasses) })
	retina := run(func() *nn.Model { return models.RetinaNet(models.KITTIClasses) })

	for _, maps := range []map[string]float64{yolo, retina} {
		if maps["R-TOSS (3EP)"] <= maps["SparseML (NMS)"] {
			t.Errorf("R-TOSS-3EP (%.2f) must beat NMS (%.2f)", maps["R-TOSS (3EP)"], maps["SparseML (NMS)"])
		}
		if maps["Network Slimming (NS)"] >= maps["SparseML (NMS)"] || maps["Pruning Filters (PF)"] >= maps["SparseML (NMS)"] {
			t.Errorf("structured baselines should trail NMS: %v", maps)
		}
	}
	if yolo["PatDNN (PD)"] <= yolo["R-TOSS (3EP)"]-1.5 {
		t.Errorf("on YOLOv5s PD (%.2f) should be at least comparable to 3EP (%.2f)", yolo["PatDNN (PD)"], yolo["R-TOSS (3EP)"])
	}
	if retina["R-TOSS (2EP)"] <= retina["PatDNN (PD)"] {
		t.Errorf("on RetinaNet R-TOSS-2EP (%.2f) must beat PD (%.2f)", retina["R-TOSS (2EP)"], retina["PatDNN (PD)"])
	}
	// Paper: R-TOSS is ~8-11% better than NMS on RetinaNet.
	gain := retina["R-TOSS (2EP)"]/retina["SparseML (NMS)"] - 1
	if gain < 0.05 || gain > 0.20 {
		t.Errorf("RetinaNet 2EP vs NMS gain %.1f%%, paper ~11%%", 100*gain)
	}
}

func TestRetentionBoundsAndPenalty(t *testing.T) {
	orig := models.YOLOv5s(models.KITTIClasses)
	m := models.YOLOv5s(models.KITTIClasses)
	res, _ := baselines.NewPruningFilters().Prune(m)
	q := AssessPruned(orig, m, res)
	if q.Retention <= 0 || q.Retention >= 1 {
		t.Fatalf("retention %v out of (0,1)", q.Retention)
	}
	if q.Recovered < q.Retention {
		t.Fatal("recovery must not reduce retention")
	}
}

func TestAssessDenseModelIsPerfect(t *testing.T) {
	orig := models.YOLOv5s(models.KITTIClasses)
	m := models.YOLOv5s(models.KITTIClasses)
	q := AssessPruned(orig, m, nil)
	if math.Abs(q.Retention-1) > 1e-9 || math.Abs(q.Score-1) > 1e-9 {
		t.Fatalf("unpruned model quality %+v", q)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	var samples []Sample
	for s := 0; s < 20; s++ {
		var truth []detect.GroundTruth
		var dets []detect.Detection
		for i := 0; i < 10; i++ {
			x := float64(i * 60)
			truth = append(truth, detect.GroundTruth{Box: detect.NewBox(x, 0, x+40, 40), Class: i % 8})
			dets = append(dets, detect.Detection{Box: detect.NewBox(x+2, 1, x+41, 40), Class: i % 8, Score: 0.8})
		}
		samples = append(samples, Sample{Detections: dets, Truth: truth})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Evaluate(samples, 8, 0.5)
	}
}

func BenchmarkAssessPruned(b *testing.B) {
	orig := models.YOLOv5s(models.KITTIClasses)
	m := models.YOLOv5s(models.KITTIClasses)
	res, _ := core.NewVariant(3).Prune(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AssessPruned(orig, m, res)
	}
}
