package metrics

import (
	"math"

	"rtoss/internal/nn"
	"rtoss/internal/prune"
)

// The surrogate replaces "finetune the pruned detector on KITTI and
// evaluate" — infeasible without a GPU training stack — with an
// information-retention model whose inputs are all *measured* from the
// weight tensors:
//
//   - per-layer energy retention: the fraction of squared-weight mass
//     surviving pruning (pattern pruning keeps the top-k per kernel, so
//     it retains far more mass than its sparsity suggests; structured
//     removals destroy whole units and retain the least);
//   - a whole-unit removal penalty: information in removed
//     kernels/filters/channels is unrecoverable by finetuning;
//   - sensitivity weighting: layers late in the topological order feed
//     the detection heads and are weighted more heavily (this is what
//     makes protecting RetinaNet's NoPrune towers pay off);
//   - finetune recovery: a structure-dependent fraction of the lost
//     mass is recovered by retraining (regular sparsity recovers best —
//     masks stay fixed and gradients flow through surviving weights);
//   - a sparsity-regularisation bonus: moderate, regular pruning acts
//     as a regulariser and can lift mAP above the unpruned baseline, as
//     the paper itself reports for R-TOSS.
//
// Constants are documented in EXPERIMENTS.md; the base mAP anchors are
// calibrated once against Table 3's R-TOSS-3EP rows, everything else
// (baseline orderings, the 2EP/3EP flip between YOLOv5s and RetinaNet)
// is emergent.

// Recovery is the fraction of lost information recovered by finetuning,
// per sparsity structure.
var Recovery = map[prune.Structure]float64{
	prune.Dense:        0,
	prune.Pattern:      0.88,
	prune.Unstructured: 0.50,
	prune.Channel:      0.45,
	prune.Filter:       0.45,
	prune.Mixed:        0.45,
}

// BonusSlope is the regularisation-bonus coefficient per structure,
// multiplied by prunable-weight sparsity.
var BonusSlope = map[prune.Structure]float64{
	prune.Dense:        0,
	prune.Pattern:      0.115,
	prune.Unstructured: 0.05,
	prune.Channel:      0.05,
	prune.Filter:       0.05,
	prune.Mixed:        0.06,
}

// UnitRemovalPenalty scales the extra damage of removing whole
// kernels/filters beyond their energy share. Unlike masked weights,
// destroyed units cannot be recovered by finetuning, so this penalty
// applies after the recovery term.
const UnitRemovalPenalty = 0.05

// DepthSensitivity controls how much more heavily late layers are
// weighted: weight = sqrt(params) * (1 + DepthSensitivity * depth²).
const DepthSensitivity = 5.0

// BaseMAP holds the unpruned KITTI mAP@0.5 anchors per model. The
// paper never states its baselines numerically; these are set so that
// R-TOSS-3EP lands on Table 3 (78.58 / 79.45).
var BaseMAP = map[string]float64{
	"YOLOv5s":   77.1,
	"RetinaNet": 76.6,
}

// DefaultBaseMAP is used for models without an anchor.
const DefaultBaseMAP = 70.0

// Quality summarises the surrogate's assessment of a pruned model.
type Quality struct {
	// Retention is the sensitivity-weighted energy retention in [0,1].
	Retention float64
	// Recovered is retention after finetune recovery.
	Recovered float64
	// Bonus is the regularisation bonus added to the score.
	Bonus float64
	// Score multiplies the base mAP (1.0 = baseline quality).
	Score float64
	// MAP is the surrogate mAP estimate (percent).
	MAP float64
}

// removedUnitFrac returns the fraction of whole units removed for a
// layer, from the pruning result's accounting.
func removedUnitFrac(l *nn.Layer, stats map[int]prune.LayerStat) float64 {
	st, ok := stats[l.ID]
	if !ok {
		return 0
	}
	frac := 0.0
	if k := l.KernelCount(); k > 0 && st.RemovedKernels > 0 {
		frac += float64(st.RemovedKernels) / float64(k)
	}
	if l.OutC > 0 && st.RemovedFilters > 0 {
		frac += float64(st.RemovedFilters) / float64(l.OutC)
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// AssessPruned computes the surrogate quality of a pruned model against
// its unpruned original. res may be nil for the dense baseline.
func AssessPruned(orig, pruned *nn.Model, res *prune.Result) Quality {
	stats := map[int]prune.LayerStat{}
	structure := prune.Dense
	if res != nil {
		structure = res.Structure
		for _, st := range res.Layers {
			stats[st.LayerID] = st
		}
	}

	n := len(pruned.Layers)
	var wSum, wrSum, wuSum float64
	var prunableW, prunableNNZ int64
	for i, l := range pruned.Layers {
		if l.Kind != nn.Conv || l.Weight == nil {
			continue
		}
		ol := orig.Layers[i]
		origEnergy := 0.0
		for _, v := range ol.Weight.Data {
			origEnergy += float64(v) * float64(v)
		}
		keptEnergy := 0.0
		for _, v := range l.Weight.Data {
			keptEnergy += float64(v) * float64(v)
		}
		r := 1.0
		if origEnergy > 0 {
			r = keptEnergy / origEnergy
		}
		depth := float64(i) / float64(n-1)
		w := math.Sqrt(float64(l.WeightCount())) * (1 + DepthSensitivity*depth*depth)
		wSum += w
		wrSum += w * r
		wuSum += w * removedUnitFrac(l, stats)
		if !l.NoPrune {
			prunableW += l.WeightCount()
			prunableNNZ += l.NNZ()
		}
	}
	q := Quality{Retention: 1}
	unitFrac := 0.0
	if wSum > 0 {
		q.Retention = wrSum / wSum
		unitFrac = wuSum / wSum
	}
	recov := Recovery[structure]
	q.Recovered = 1 - (1-q.Retention)*(1-recov)
	// Whole-unit destruction survives finetuning.
	q.Recovered *= 1 - UnitRemovalPenalty*unitFrac
	sparsity := 0.0
	if prunableW > 0 {
		sparsity = 1 - float64(prunableNNZ)/float64(prunableW)
	}
	q.Bonus = BonusSlope[structure] * sparsity
	q.Score = q.Recovered + q.Bonus
	base, ok := BaseMAP[pruned.Name]
	if !ok {
		base = DefaultBaseMAP
	}
	q.MAP = base * q.Score
	if q.MAP > 99 {
		q.MAP = 99
	}
	return q
}

// BaselineQuality returns the dense model's quality (Score 1).
func BaselineQuality(m *nn.Model) Quality {
	base, ok := BaseMAP[m.Name]
	if !ok {
		base = DefaultBaseMAP
	}
	return Quality{Retention: 1, Recovered: 1, Score: 1, MAP: base}
}
