package models

import (
	"fmt"

	"rtoss/internal/nn"
)

// RetinaNet builds RetinaNet with a ResNet-50 FPN backbone at 640×640,
// following the torchvision layout: ResNet-50 (stem + 3/4/6/3
// bottleneck blocks), FPN with P3–P7, and classification/regression
// towers of four 3×3 convs each applied per pyramid level (parameters
// shared across levels, so counted once). With classes = KITTIClasses
// and 9 anchors per location the parameter count is ~36.4 M, matching
// the paper's 36.49 M; the layer count lands near the paper's "186
// layers".
func buildRetinaNet(classes int) *nn.Model {
	const anchors = 9
	b := nn.NewBuilder("RetinaNet", 3, 640, 640, classes)
	x := b.Input()

	// ResNet-50 stem.
	b.SetModule("backbone.stem")
	x = b.ConvBNAct("stem", x, 3, 64, 7, 2, 3, nn.ReLU)
	x = b.MaxPool("stem.pool", x, 3, 2, 1)

	// Residual stages. Channel plan: (in, mid, out, blocks, stride).
	stages := []struct {
		name             string
		in, mid, out, n  int
		firstBlockStride int
	}{
		{"layer1", 64, 64, 256, 3, 1},
		{"layer2", 256, 128, 512, 4, 2},
		{"layer3", 512, 256, 1024, 6, 2},
		{"layer4", 1024, 512, 2048, 3, 2},
	}
	var c3, c4, c5 int
	for _, st := range stages {
		b.SetModule("backbone." + st.name)
		in := st.in
		for i := 0; i < st.n; i++ {
			stride := 1
			if i == 0 {
				stride = st.firstBlockStride
			}
			x = b.ResNetBlock(fmt.Sprintf("%s.b%d", st.name, i), x, in, st.mid, st.out, stride)
			in = st.out
		}
		switch st.name {
		case "layer2":
			c3 = x
		case "layer3":
			c4 = x
		case "layer4":
			c5 = x
		}
	}

	// FPN. Laterals are 1×1, outputs are 3×3; P6/P7 extend the pyramid.
	b.SetModule("fpn")
	l5 := b.Conv("fpn.lat5", c5, 2048, 256, 1, 1, 0, true)
	l4 := b.Conv("fpn.lat4", c4, 1024, 256, 1, 1, 0, true)
	l3 := b.Conv("fpn.lat3", c3, 512, 256, 1, 1, 0, true)
	u5 := b.Upsample("fpn.up5", l5, 2)
	m4 := b.Add("fpn.sum4", l4, u5)
	u4 := b.Upsample("fpn.up4", m4, 2)
	m3 := b.Add("fpn.sum3", l3, u4)
	p3 := b.Conv("fpn.p3", m3, 256, 256, 3, 1, 1, true)
	p4 := b.Conv("fpn.p4", m4, 256, 256, 3, 1, 1, true)
	p5 := b.Conv("fpn.p5", l5, 256, 256, 3, 1, 1, true)
	p6 := b.Conv("fpn.p6", c5, 2048, 256, 3, 2, 1, true)
	p6a := b.Act("fpn.p6.relu", p6, nn.ReLU)
	p7 := b.Conv("fpn.p7", p6a, 256, 256, 3, 2, 1, true)

	// Heads: four 3×3 conv towers + predictors. Weights are shared
	// across pyramid levels in RetinaNet, so the descriptor instantiates
	// them once, fed from P3 (the analytic engine accounts for the
	// per-level MAC replication via HeadLevels below). The towers are
	// marked NoPrune: shared-head sensitivity makes them poor pruning
	// targets, and the paper's RetinaNet compression ratios (2.4×/2.89×)
	// are only reachable if they stay dense.
	// The shared heads run on P3..P7; relative to the P3 instance the
	// extra levels add (1/4 + 1/16 + 1/64 + 1/256) of the spatial work.
	headScale := 1.0 + 0.25 + 0.0625 + 0.015625 + 0.00390625

	b.SetModule("head.cls")
	t := p3
	for i := 0; i < 4; i++ {
		c := b.Conv(fmt.Sprintf("head.cls.t%d", i), t, 256, 256, 3, 1, 1, true)
		b.NoPrune(c)
		b.MACScale(c, headScale)
		t = b.Act(fmt.Sprintf("head.cls.t%d.relu", i), c, nn.ReLU)
	}
	clsPred := b.Conv("head.cls.pred", t, 256, anchors*classes, 3, 1, 1, true)
	b.MACScale(clsPred, headScale)

	b.SetModule("head.reg")
	t = p3
	for i := 0; i < 4; i++ {
		c := b.Conv(fmt.Sprintf("head.reg.t%d", i), t, 256, 256, 3, 1, 1, true)
		b.NoPrune(c)
		b.MACScale(c, headScale)
		t = b.Act(fmt.Sprintf("head.reg.t%d.relu", i), c, nn.ReLU)
	}
	regPred := b.Conv("head.reg.pred", t, 256, anchors*4, 3, 1, 1, true)
	b.MACScale(regPred, headScale)

	// P4-P7 are real pyramid outputs; the shared head instance reads P3
	// and the engine replicates its cost across levels, so they remain
	// computed-but-unconsumed taps rather than Detect inputs (only the
	// predictors feed Detect, which also keeps the prunable-conv census
	// honest).
	_, _, _, _ = p4, p5, p6a, p7

	b.SetModule("detect")
	b.Detect("detect", clsPred, regPred)

	m := b.MustBuild()
	m.InitWeights(DefaultSeed + 1)
	return m
}

// HeadLevels is the number of pyramid levels RetinaNet's shared heads
// run on (P3–P7); the analytic execution model multiplies head MACs by
// the per-level spatial ratio implied by the pyramid.
const HeadLevels = 5

// RetinaNet returns a fresh copy of the cached RetinaNet build.
func RetinaNet(classes int) *nn.Model {
	return cached("RetinaNet", classes, func() *nn.Model { return buildRetinaNet(classes) })
}

// RetinaNetShared returns the shared read-only RetinaNet instance (no
// clone); see Shared for the mutation contract.
func RetinaNetShared(classes int) *nn.Model {
	return sharedCached("RetinaNet", classes, func() *nn.Model { return buildRetinaNet(classes) })
}
