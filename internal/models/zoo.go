package models

import (
	"fmt"
	"sort"

	"rtoss/internal/nn"
)

// Detector pairs an architecture with the metadata the Table 1/2
// experiments need. Two-stage detectors additionally carry a per-region
// classifier evaluated Regions times per image, which is what made
// R-CNN-era latencies catastrophic.
type Detector struct {
	Model *nn.Model
	// Stage is "single-stage" or "two-stage".
	Stage string
	// Regions is the number of region proposals evaluated per image by
	// PerRegion (zero for single-stage detectors).
	Regions int
	// PerRegion is the per-proposal classifier network (nil if none).
	PerRegion *nn.Model
	// RefMAP is the literature mAP the paper quotes in Table 1 (%).
	RefMAP float64
	// RefFPS is the literature inference rate the paper quotes in Table 1.
	RefFPS float64
}

// TotalMACs returns the full per-image MAC count including per-region
// replication for two-stage detectors.
func (d *Detector) TotalMACs() int64 {
	m, err := d.Model.MACs()
	if err != nil {
		panic(fmt.Sprintf("models: %s MACs: %v", d.Model.Name, err))
	}
	if d.PerRegion != nil && d.Regions > 0 {
		pr, err := d.PerRegion.MACs()
		if err != nil {
			panic(fmt.Sprintf("models: %s per-region MACs: %v", d.Model.Name, err))
		}
		m += int64(d.Regions) * pr
	}
	return m
}

// TotalParams returns parameters across the main and per-region nets.
func (d *Detector) TotalParams() int64 {
	p := d.Model.Params()
	if d.PerRegion != nil {
		p += d.PerRegion.Params()
	}
	return p
}

// YOLOXs builds YOLOX-s: a YOLOv5s-style CSP backbone and PAN neck with
// YOLOX's decoupled, anchor-free heads (per-level stem + separate
// classification and regression towers). Parameter count lands near the
// paper's Table 2 value of 8.97 M.
func buildYOLOXs(classes int) *nn.Model {
	b := nn.NewBuilder("YOLOXs", 3, 640, 640, classes)
	x := b.Input()
	b.SetModule("backbone")
	x = b.ConvBNAct("b0", x, 3, 32, 6, 2, 2, nn.SiLU)
	x = b.ConvBNAct("b1", x, 32, 64, 3, 2, 1, nn.SiLU)
	x = b.C3("b2", x, 64, 64, 1, true, nn.SiLU)
	x = b.ConvBNAct("b3", x, 64, 128, 3, 2, 1, nn.SiLU)
	p3 := b.C3("b4", x, 128, 128, 3, true, nn.SiLU)
	x = b.ConvBNAct("b5", p3, 128, 256, 3, 2, 1, nn.SiLU)
	p4 := b.C3("b6", x, 256, 256, 3, true, nn.SiLU)
	x = b.ConvBNAct("b7", p4, 256, 512, 3, 2, 1, nn.SiLU)
	x = b.SPPF("b8", x, 512, 512, 5, nn.SiLU)
	p5 := b.C3("b9", x, 512, 512, 1, true, nn.SiLU)

	b.SetModule("neck")
	h10 := b.ConvBNAct("n0", p5, 512, 256, 1, 1, 0, nn.SiLU)
	u := b.Upsample("n1", h10, 2)
	cat := b.Concat("n2", u, p4)
	n3 := b.C3("n3", cat, 512, 256, 1, false, nn.SiLU)
	h14 := b.ConvBNAct("n4", n3, 256, 128, 1, 1, 0, nn.SiLU)
	u2 := b.Upsample("n5", h14, 2)
	cat2 := b.Concat("n6", u2, p3)
	o3 := b.C3("n7", cat2, 256, 128, 1, false, nn.SiLU)
	d := b.ConvBNAct("n8", o3, 128, 128, 3, 2, 1, nn.SiLU)
	cat3 := b.Concat("n9", d, h14)
	o4 := b.C3("n10", cat3, 256, 256, 1, false, nn.SiLU)
	d2 := b.ConvBNAct("n11", o4, 256, 256, 3, 2, 1, nn.SiLU)
	cat4 := b.Concat("n12", d2, h10)
	o5 := b.C3("n13", cat4, 512, 512, 1, false, nn.SiLU)

	// Decoupled heads, one per level (not shared in YOLOX).
	var preds []int
	for i, lv := range []struct{ id, in int }{{o3, 128}, {o4, 256}, {o5, 512}} {
		b.SetModule(fmt.Sprintf("head.l%d", i))
		pfx := fmt.Sprintf("head%d", i)
		stem := b.ConvBNAct(pfx+".stem", lv.id, lv.in, 128, 1, 1, 0, nn.SiLU)
		ct := b.ConvBNAct(pfx+".cls0", stem, 128, 128, 3, 1, 1, nn.SiLU)
		ct = b.ConvBNAct(pfx+".cls1", ct, 128, 128, 3, 1, 1, nn.SiLU)
		cp := b.Conv(pfx+".clsPred", ct, 128, classes, 1, 1, 0, true)
		rt := b.ConvBNAct(pfx+".reg0", stem, 128, 128, 3, 1, 1, nn.SiLU)
		rt = b.ConvBNAct(pfx+".reg1", rt, 128, 128, 3, 1, 1, nn.SiLU)
		rp := b.Conv(pfx+".regPred", rt, 128, 4, 1, 1, 0, true)
		op := b.Conv(pfx+".objPred", rt, 128, 1, 1, 1, 0, true)
		preds = append(preds, cp, rp, op)
	}
	b.SetModule("detect")
	b.Detect("detect", preds...)
	m := b.MustBuild()
	m.InitWeights(DefaultSeed + 2)
	return m
}

// YOLOv7 builds an ELAN-style approximation of YOLOv7 at 640×640: the
// real network's E-ELAN blocks are concatenations of parallel conv
// chains; this descriptor reproduces that block structure with channel
// widths tuned so total parameters land near Table 2's 36.90 M and MACs
// near the published ~52 GMACs.
func buildYOLOv7(classes int) *nn.Model {
	b := nn.NewBuilder("YOLOv7", 3, 640, 640, classes)
	x := b.Input()
	b.SetModule("backbone")
	x = b.ConvBNAct("b0", x, 3, 32, 3, 1, 1, nn.SiLU)
	x = b.ConvBNAct("b1", x, 32, 64, 3, 2, 1, nn.SiLU)
	x = b.ConvBNAct("b2", x, 64, 64, 3, 1, 1, nn.SiLU)
	x = b.ConvBNAct("b3", x, 64, 128, 3, 2, 1, nn.SiLU)

	elan := func(name string, from, inC, midC, outC int) int {
		// Two 1×1 entries; one branch chains four 3×3 convs; concat of
		// four taps; 1×1 fuse — the E-ELAN topology.
		a := b.ConvBNAct(name+".a", from, inC, midC, 1, 1, 0, nn.SiLU)
		c := b.ConvBNAct(name+".b", from, inC, midC, 1, 1, 0, nn.SiLU)
		c1 := b.ConvBNAct(name+".c1", c, midC, midC, 3, 1, 1, nn.SiLU)
		c2 := b.ConvBNAct(name+".c2", c1, midC, midC, 3, 1, 1, nn.SiLU)
		c3 := b.ConvBNAct(name+".c3", c2, midC, midC, 3, 1, 1, nn.SiLU)
		c4 := b.ConvBNAct(name+".c4", c3, midC, midC, 3, 1, 1, nn.SiLU)
		cat := b.Concat(name+".cat", a, c, c2, c4)
		return b.ConvBNAct(name+".fuse", cat, 4*midC, outC, 1, 1, 0, nn.SiLU)
	}
	down := func(name string, from, c int) int {
		return b.ConvBNAct(name, from, c, c, 3, 2, 1, nn.SiLU)
	}

	x = elan("e1", x, 128, 64, 256)
	x = down("d1", x, 256)
	p3 := elan("e2", x, 256, 128, 512)
	x = down("d2", p3, 512)
	p4 := elan("e3", x, 512, 256, 1024)
	x = down("d3", p4, 1024)
	p5 := elan("e4", x, 1024, 256, 1024)

	b.SetModule("neck")
	sp := b.SPPF("sppf", p5, 1024, 512, 5, nn.SiLU)
	n1 := b.ConvBNAct("n1", sp, 512, 256, 1, 1, 0, nn.SiLU)
	u1 := b.Upsample("u1", n1, 2)
	l4 := b.ConvBNAct("l4", p4, 1024, 256, 1, 1, 0, nn.SiLU)
	cat1 := b.Concat("cat1", u1, l4)
	f4 := elan("ne1", cat1, 512, 128, 256)
	n2 := b.ConvBNAct("n2", f4, 256, 128, 1, 1, 0, nn.SiLU)
	u2 := b.Upsample("u2", n2, 2)
	l3 := b.ConvBNAct("l3", p3, 512, 128, 1, 1, 0, nn.SiLU)
	cat2 := b.Concat("cat2", u2, l3)
	f3 := elan("ne2", cat2, 256, 64, 128)
	d4 := b.ConvBNAct("nd1", f3, 128, 256, 3, 2, 1, nn.SiLU)
	cat3 := b.Concat("cat3", d4, f4)
	g4 := elan("ne3", cat3, 512, 128, 256)
	d5 := b.ConvBNAct("nd2", g4, 256, 512, 3, 2, 1, nn.SiLU)
	cat4 := b.Concat("cat4", d5, sp)
	g5 := elan("ne4", cat4, 1024, 256, 512)

	b.SetModule("detect")
	no := 3 * (5 + classes)
	h3 := b.ConvBNAct("h3", f3, 128, 256, 3, 1, 1, nn.SiLU)
	h4 := b.ConvBNAct("h4", g4, 256, 512, 3, 1, 1, nn.SiLU)
	h5 := b.ConvBNAct("h5", g5, 512, 1024, 3, 1, 1, nn.SiLU)
	d3p := b.Conv("detect.p3", h3, 256, no, 1, 1, 0, true)
	d4p := b.Conv("detect.p4", h4, 512, no, 1, 1, 0, true)
	d5p := b.Conv("detect.p5", h5, 1024, no, 1, 1, 0, true)
	b.Detect("detect", d3p, d4p, d5p)
	m := b.MustBuild()
	m.InitWeights(DefaultSeed + 3)
	return m
}

// YOLOR builds a CSP-style approximation of YOLOR (implicit-knowledge
// representation network); widths are tuned so parameters land near
// Table 2's 37.26 M.
func buildYOLOR(classes int) *nn.Model {
	// YOLOR-P6-style models run at larger native resolutions; 896 is
	// the closest square to its published operating points.
	b := nn.NewBuilder("YOLOR", 3, 896, 896, classes)
	x := b.Input()
	b.SetModule("backbone")
	x = b.ConvBNAct("b0", x, 3, 64, 6, 2, 2, nn.SiLU)
	x = b.ConvBNAct("b1", x, 64, 128, 3, 2, 1, nn.SiLU)
	x = b.C3("b2", x, 128, 128, 3, true, nn.SiLU)
	x = b.ConvBNAct("b3", x, 128, 256, 3, 2, 1, nn.SiLU)
	p3 := b.C3("b4", x, 256, 256, 5, true, nn.SiLU)
	x = b.ConvBNAct("b5", p3, 256, 512, 3, 2, 1, nn.SiLU)
	p4 := b.C3("b6", x, 512, 512, 4, true, nn.SiLU)
	x = b.ConvBNAct("b7", p4, 512, 1024, 3, 2, 1, nn.SiLU)
	x = b.C3("b8", x, 1024, 1024, 2, true, nn.SiLU)
	x = b.SPPF("b9", x, 1024, 1024, 5, nn.SiLU)

	b.SetModule("neck")
	h := b.ConvBNAct("n0", x, 1024, 512, 1, 1, 0, nn.SiLU)
	u := b.Upsample("n1", h, 2)
	l4 := b.ConvBNAct("n2", p4, 512, 512, 1, 1, 0, nn.SiLU)
	cat := b.Concat("n3", u, l4)
	f4 := b.C3("n4", cat, 1024, 512, 2, false, nn.SiLU)
	h2 := b.ConvBNAct("n5", f4, 512, 256, 1, 1, 0, nn.SiLU)
	u2 := b.Upsample("n6", h2, 2)
	l3 := b.ConvBNAct("n7", p3, 256, 256, 1, 1, 0, nn.SiLU)
	cat2 := b.Concat("n8", u2, l3)
	f3 := b.C3("n9", cat2, 512, 256, 2, false, nn.SiLU)
	d1 := b.ConvBNAct("n10", f3, 256, 512, 3, 2, 1, nn.SiLU)
	cat3 := b.Concat("n11", d1, f4)
	g4 := b.C3("n12", cat3, 1024, 512, 2, false, nn.SiLU)
	d2 := b.ConvBNAct("n13", g4, 512, 1024, 3, 2, 1, nn.SiLU)
	cat4 := b.Concat("n14", d2, h)
	g5 := b.C3("n15", cat4, 1536, 1024, 1, false, nn.SiLU)

	b.SetModule("detect")
	no := 3 * (5 + classes)
	d3p := b.Conv("detect.p3", f3, 256, no, 1, 1, 0, true)
	d4p := b.Conv("detect.p4", g4, 512, no, 1, 1, 0, true)
	d5p := b.Conv("detect.p5", g5, 1024, no, 1, 1, 0, true)
	b.Detect("detect", d3p, d4p, d5p)
	m := b.MustBuild()
	m.InitWeights(DefaultSeed + 4)
	return m
}

// DETR builds DETR-R50: ResNet-50 backbone, 1×1 input projection, and a
// 6-encoder/6-decoder transformer whose attention and feed-forward
// projections are Linear layers (256-d model, 2048-d FFN, as published).
// Parameters land near Table 2's 41.52 M.
func buildDETR(classes int) *nn.Model {
	b := nn.NewBuilder("DETR", 3, 640, 640, classes)
	x := b.Input()
	b.SetModule("backbone.stem")
	x = b.ConvBNAct("stem", x, 3, 64, 7, 2, 3, nn.ReLU)
	x = b.MaxPool("stem.pool", x, 3, 2, 1)
	stages := []struct {
		name            string
		in, mid, out, n int
		stride          int
	}{
		{"layer1", 64, 64, 256, 3, 1},
		{"layer2", 256, 128, 512, 4, 2},
		{"layer3", 512, 256, 1024, 6, 2},
		{"layer4", 1024, 512, 2048, 3, 2},
	}
	for _, st := range stages {
		b.SetModule("backbone." + st.name)
		in := st.in
		for i := 0; i < st.n; i++ {
			s := 1
			if i == 0 {
				s = st.stride
			}
			x = b.ResNetBlock(fmt.Sprintf("%s.b%d", st.name, i), x, in, st.mid, st.out, s)
			in = st.out
		}
	}
	b.SetModule("transformer")
	x = b.Conv("inputProj", x, 2048, 256, 1, 1, 0, true)
	x = b.GlobalPool("flatten", x) // token dimension abstracted; MACs of attention are seq-dependent and carried by Linear layers below
	// Token counts at 640x640: the encoder sees the 20x20 C5 map (400
	// tokens); the decoder holds 100 object queries. Linear layers carry
	// per-token weights; MACScale replicates their cost across tokens so
	// the analytic engine charges the transformer its real compute.
	const d, ff = 256, 2048
	const encTokens, decTokens = 400, 100
	lin := func(name string, from, in, out int, tokens float64) int {
		id := b.Linear(name, from, in, out, true)
		b.MACScale(id, tokens)
		return id
	}
	for i := 0; i < 6; i++ { // encoder layers: QKV+out projections + FFN
		pfx := fmt.Sprintf("enc%d", i)
		x = lin(pfx+".q", x, d, d, encTokens)
		x = lin(pfx+".k", x, d, d, encTokens)
		x = lin(pfx+".v", x, d, d, encTokens)
		x = lin(pfx+".o", x, d, d, encTokens)
		x = lin(pfx+".ff1", x, d, ff, encTokens)
		x = lin(pfx+".ff2", x, ff, d, encTokens)
	}
	for i := 0; i < 6; i++ { // decoder layers: self-attn + cross-attn + FFN
		pfx := fmt.Sprintf("dec%d", i)
		for _, blk := range []string{".sq", ".sk", ".sv", ".so"} {
			x = lin(pfx+blk, x, d, d, decTokens)
		}
		// Cross-attention: queries from the decoder, keys/values from
		// the 400 encoder tokens.
		x = lin(pfx+".cq", x, d, d, decTokens)
		x = lin(pfx+".ck", x, d, d, encTokens)
		x = lin(pfx+".cv", x, d, d, encTokens)
		x = lin(pfx+".co", x, d, d, decTokens)
		x = lin(pfx+".ff1", x, d, ff, decTokens)
		x = lin(pfx+".ff2", x, ff, d, decTokens)
	}
	b.SetModule("head")
	cls := lin("clsHead", x, d, classes+1, decTokens)
	box1 := lin("boxHead1", x, d, d, decTokens)
	box2 := lin("boxHead2", box1, d, d, decTokens)
	box3 := lin("boxHead3", box2, d, 4, decTokens)
	b.Detect("detect", cls, box3)
	m := b.MustBuild()
	m.InitWeights(DefaultSeed + 5)
	return m
}

// YOLOv4 builds a CSPDarknet53+PANet approximation of YOLOv4 used only
// in the Table 1 comparison.
func buildYOLOv4(classes int) *nn.Model {
	b := nn.NewBuilder("YOLOv4", 3, 640, 640, classes)
	x := b.Input()
	b.SetModule("backbone")
	x = b.ConvBNAct("b0", x, 3, 32, 3, 1, 1, nn.LeakyReLU)
	x = b.ConvBNAct("b1", x, 32, 64, 3, 2, 1, nn.LeakyReLU)
	x = b.C3("b2", x, 64, 64, 1, true, nn.LeakyReLU)
	x = b.ConvBNAct("b3", x, 64, 128, 3, 2, 1, nn.LeakyReLU)
	x = b.C3("b4", x, 128, 128, 2, true, nn.LeakyReLU)
	x = b.ConvBNAct("b5", x, 128, 256, 3, 2, 1, nn.LeakyReLU)
	p3 := b.C3("b6", x, 256, 256, 8, true, nn.LeakyReLU)
	x = b.ConvBNAct("b7", p3, 256, 512, 3, 2, 1, nn.LeakyReLU)
	p4 := b.C3("b8", x, 512, 512, 8, true, nn.LeakyReLU)
	x = b.ConvBNAct("b9", p4, 512, 1024, 3, 2, 1, nn.LeakyReLU)
	x = b.C3("b10", x, 1024, 1024, 4, true, nn.LeakyReLU)
	x = b.SPPF("sppf", x, 1024, 512, 5, nn.LeakyReLU)

	b.SetModule("neck")
	u := b.Upsample("u1", b.ConvBNAct("n1", x, 512, 256, 1, 1, 0, nn.LeakyReLU), 2)
	cat := b.Concat("c1", u, b.ConvBNAct("l4", p4, 512, 256, 1, 1, 0, nn.LeakyReLU))
	f4 := b.C3("n4", cat, 512, 256, 2, false, nn.LeakyReLU)
	u2 := b.Upsample("u2", b.ConvBNAct("n5", f4, 256, 128, 1, 1, 0, nn.LeakyReLU), 2)
	cat2 := b.Concat("c2", u2, b.ConvBNAct("l3", p3, 256, 128, 1, 1, 0, nn.LeakyReLU))
	f3 := b.C3("n6", cat2, 256, 128, 2, false, nn.LeakyReLU)

	b.SetModule("detect")
	no := 3 * (5 + classes)
	d3 := b.Conv("detect.p3", f3, 128, no, 1, 1, 0, true)
	d4 := b.Conv("detect.p4", f4, 256, no, 1, 1, 0, true)
	d5 := b.Conv("detect.p5", x, 512, no, 1, 1, 0, true)
	b.Detect("detect", d3, d4, d5)
	m := b.MustBuild()
	m.InitWeights(DefaultSeed + 6)
	return m
}

// vgg16Features builds the VGG-16 convolutional trunk at the given
// input size (used by the Fast/Faster R-CNN descriptors).
func buildVGG16Features(name string, h, w int) *nn.Model {
	b := nn.NewBuilder(name, 3, h, w, 20)
	x := b.Input()
	b.SetModule("features")
	cfg := []struct{ c, n int }{{64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}}
	in := 3
	for si, st := range cfg {
		for i := 0; i < st.n; i++ {
			x = b.ConvBNAct(fmt.Sprintf("s%d.c%d", si, i), x, in, st.c, 3, 1, 1, nn.ReLU)
			in = st.c
		}
		if si != len(cfg)-1 {
			x = b.MaxPool(fmt.Sprintf("s%d.pool", si), x, 2, 2, 0)
		}
	}
	b.Detect("out", x)
	m := b.MustBuild()
	m.InitWeights(DefaultSeed + 7)
	return m
}

// alexNet builds the AlexNet classifier R-CNN ran on every region crop.
func buildAlexNet(classes int) *nn.Model {
	b := nn.NewBuilder("AlexNet", 3, 227, 227, classes)
	x := b.Input()
	b.SetModule("features")
	x = b.ConvBNAct("c1", x, 3, 64, 11, 4, 2, nn.ReLU)
	x = b.MaxPool("p1", x, 3, 2, 0)
	x = b.ConvBNAct("c2", x, 64, 192, 5, 1, 2, nn.ReLU)
	x = b.MaxPool("p2", x, 3, 2, 0)
	x = b.ConvBNAct("c3", x, 192, 384, 3, 1, 1, nn.ReLU)
	x = b.ConvBNAct("c4", x, 384, 256, 3, 1, 1, nn.ReLU)
	x = b.ConvBNAct("c5", x, 256, 256, 3, 1, 1, nn.ReLU)
	x = b.MaxPool("p3", x, 3, 2, 0)
	b.SetModule("classifier")
	// Real AlexNet flattens the 256x6x6 conv output into fc6.
	x = b.Linear("fc6", x, 256*6*6, 4096, true)
	x = b.Linear("fc7", x, 4096, 4096, true)
	x = b.Linear("fc8", x, 4096, classes+1, true)
	b.Detect("out", x)
	m := b.MustBuild()
	m.InitWeights(DefaultSeed + 8)
	return m
}

// roiHead builds the per-region FC head of Fast/Faster R-CNN
// (7×7×512 RoI-pooled features → 4096 → 4096 → cls+box).
func buildRoIHead(classes int) *nn.Model {
	b := nn.NewBuilder("RoIHead", 512, 7, 7, classes)
	x := b.Input()
	b.SetModule("head")
	x = b.GlobalPool("pool", x)
	x = b.Linear("fc6", x, 512*7*7, 4096, true)
	x = b.Linear("fc7", x, 4096, 4096, true)
	cls := b.Linear("cls", x, 4096, classes+1, true)
	box := b.Linear("box", x, 4096, 4*(classes+1), true)
	b.Detect("out", cls, box)
	m := b.MustBuild()
	m.InitWeights(DefaultSeed + 9)
	return m
}

// Zoo returns the Table 1 detector lineup with the paper's literature
// metrics attached. Reference mAP/fps are the values quoted in Table 1
// (heterogeneous sources, as in the paper); latency is re-derived on our
// analytic platforms.
func Zoo() []*Detector {
	return []*Detector{
		{
			Model:     alexNet(20),
			Stage:     "two-stage",
			Regions:   2000,
			PerRegion: alexNet(20), // selective-search crops each re-run the CNN
			RefMAP:    42.0, RefFPS: 0.02,
		},
		{
			Model:     vgg16Features("FastRCNN", 600, 600),
			Stage:     "two-stage",
			Regions:   2000,
			PerRegion: roiHead(20),
			RefMAP:    19.7, RefFPS: 0.5,
		},
		{
			Model:     vgg16Features("FasterRCNN", 600, 600),
			Stage:     "two-stage",
			Regions:   300,
			PerRegion: roiHead(20),
			RefMAP:    78.9, RefFPS: 7,
		},
		{Model: RetinaNet(COCOClasses), Stage: "single-stage", RefMAP: 61.1, RefFPS: 90},
		{Model: YOLOv4(COCOClasses), Stage: "single-stage", RefMAP: 65.7, RefFPS: 62},
		{Model: YOLOv5s(COCOClasses), Stage: "single-stage", RefMAP: 56.4, RefFPS: 140},
	}
}

// Table1Names maps zoo entries to the display names used in Table 1.
var Table1Names = []string{"R-CNN", "Fast R-CNN", "Faster R-CNN", "RetinaNet", "YOLOv4", "YOLOv5"}

// Table2Models returns the six detectors of Table 2 (model size vs
// execution time on Jetson TX2), in the paper's row order, built with
// KITTI classes.
func Table2Models() []*nn.Model {
	return []*nn.Model{
		YOLOv5s(KITTIClasses),
		YOLOXs(KITTIClasses),
		RetinaNet(KITTIClasses),
		YOLOv7(KITTIClasses),
		YOLOR(KITTIClasses),
		DETR(KITTIClasses),
	}
}

// SortedModuleNames returns the distinct module tags of a model sorted
// lexicographically (reporting helper).
func SortedModuleNames(m *nn.Model) []string {
	seen := map[string]bool{}
	for _, l := range m.Layers {
		if l.Module != "" {
			seen[l.Module] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// YOLOXs returns a fresh copy of the cached YOLOXs build.
func YOLOXs(classes int) *nn.Model {
	return cached("YOLOXs", classes, func() *nn.Model { return buildYOLOXs(classes) })
}

// YOLOv7 returns a fresh copy of the cached YOLOv7 build.
func YOLOv7(classes int) *nn.Model {
	return cached("YOLOv7", classes, func() *nn.Model { return buildYOLOv7(classes) })
}

// YOLOR returns a fresh copy of the cached YOLOR build.
func YOLOR(classes int) *nn.Model {
	return cached("YOLOR", classes, func() *nn.Model { return buildYOLOR(classes) })
}

// DETR returns a fresh copy of the cached DETR build.
func DETR(classes int) *nn.Model {
	return cached("DETR", classes, func() *nn.Model { return buildDETR(classes) })
}

// YOLOv4 returns a fresh copy of the cached YOLOv4 build.
func YOLOv4(classes int) *nn.Model {
	return cached("YOLOv4", classes, func() *nn.Model { return buildYOLOv4(classes) })
}

func vgg16Features(name string, h, w int) *nn.Model {
	return cached("vgg16/"+name, h*10000+w, func() *nn.Model { return buildVGG16Features(name, h, w) })
}

func alexNet(classes int) *nn.Model {
	return cached("alexnet", classes, func() *nn.Model { return buildAlexNet(classes) })
}

func roiHead(classes int) *nn.Model {
	return cached("roihead", classes, func() *nn.Model { return buildRoIHead(classes) })
}
