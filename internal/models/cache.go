package models

import (
	"fmt"
	"sync"

	"rtoss/internal/nn"
)

// Building a zoo model is dominated by synthesizing tens of millions of
// deterministic weights, so constructors memoise the first build per
// (architecture, classes). Two access paths share the memo:
//
//   - cached hands out a deep Clone: callers own their copy and may
//     prune it freely (the constructors' historical contract);
//   - sharedCached hands out the memoised instance itself, so
//     read-only consumers (compiling an execution Program, analytic
//     estimates, the serving registry) skip the multi-million-weight
//     copy. Shared instances must never be mutated.
var (
	cacheMu sync.Mutex
	cache   = map[string]*nn.Model{}
)

func lookup(name string, classes int, build func() *nn.Model) *nn.Model {
	key := fmt.Sprintf("%s/%d", name, classes)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	m, ok := cache[key]
	if !ok {
		m = build()
		cache[key] = m
	}
	return m
}

func cached(name string, classes int, build func() *nn.Model) *nn.Model {
	return lookup(name, classes, build).Clone()
}

func sharedCached(name string, classes int, build func() *nn.Model) *nn.Model {
	return lookup(name, classes, build)
}

// Shared returns the shared read-only instance of an evaluation model
// by its display name ("YOLOv5s" or "RetinaNet"). The instance is
// memoised and handed to every caller — do not mutate it; clone via
// ByName (or the per-model constructor) before pruning.
func Shared(name string, classes int) (*nn.Model, error) {
	switch name {
	case "YOLOv5s":
		return YOLOv5sShared(classes), nil
	case "RetinaNet":
		return RetinaNetShared(classes), nil
	}
	return nil, fmt.Errorf("models: no shared instance for %q (YOLOv5s|RetinaNet)", name)
}

// ByName is the clone counterpart of Shared: a fresh deep copy of an
// evaluation model by display name, safe to prune. It keeps the
// name dispatch in one place for every caller (serving registry,
// experiment runners, CLIs).
func ByName(name string, classes int) (*nn.Model, error) {
	switch name {
	case "YOLOv5s":
		return YOLOv5s(classes), nil
	case "RetinaNet":
		return RetinaNet(classes), nil
	}
	return nil, fmt.Errorf("models: unknown evaluation model %q (YOLOv5s|RetinaNet)", name)
}
