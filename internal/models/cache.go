package models

import (
	"fmt"
	"sync"

	"rtoss/internal/nn"
)

// Building a zoo model is dominated by synthesizing tens of millions of
// deterministic weights, so constructors memoise the first build per
// (architecture, classes) and hand out deep clones: callers always own
// their copy and may prune it freely.
var (
	cacheMu sync.Mutex
	cache   = map[string]*nn.Model{}
)

func cached(name string, classes int, build func() *nn.Model) *nn.Model {
	key := fmt.Sprintf("%s/%d", name, classes)
	cacheMu.Lock()
	m, ok := cache[key]
	if !ok {
		m = build()
		cache[key] = m
	}
	cacheMu.Unlock()
	return m.Clone()
}
