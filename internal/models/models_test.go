package models

import (
	"math"
	"testing"

	"rtoss/internal/nn"
)

func approx(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if math.Abs(got-want) > tolFrac*want {
		t.Errorf("%s = %v, want %v ±%.0f%%", name, got, want, tolFrac*100)
	}
}

func TestYOLOv5sMatchesPaper(t *testing.T) {
	m := YOLOv5s(KITTIClasses)
	// Paper: 7.02 M parameters, 25 layers (modules).
	approx(t, "YOLOv5s params", float64(m.Params()), 7.02e6, 0.01)
	if mc := ModuleCount(m); mc != 25 {
		t.Errorf("YOLOv5s modules = %d, want 25", mc)
	}
	// Paper §III: 68.42% of kernels are 1×1. 39/57 prunable conv layers.
	f := Frac1x1Layers(m)
	if math.Abs(f-0.6842) > 0.0001 {
		t.Errorf("YOLOv5s 1x1 fraction = %.4f, want 0.6842", f)
	}
	// Published YOLOv5s compute is ~8.2 GMACs (16.5 GFLOPs) at 640².
	macs, err := m.MACs()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "YOLOv5s MACs", float64(macs), 8.2e9, 0.08)
}

func TestYOLOv5sCOCOParams(t *testing.T) {
	m := YOLOv5s(COCOClasses)
	// The familiar 7.2 M COCO configuration.
	approx(t, "YOLOv5s COCO params", float64(m.Params()), 7.23e6, 0.01)
}

func TestRetinaNetMatchesPaper(t *testing.T) {
	m := RetinaNet(KITTIClasses)
	// Paper: 36.49 M parameters, 186 layers.
	approx(t, "RetinaNet params", float64(m.Params()), 36.49e6, 0.005)
	// Layer-node count should be in the paper's ballpark (qualifies as
	// "186 layers" territory; exact counting conventions differ).
	if n := len(m.Layers); n < 150 || n > 230 {
		t.Errorf("RetinaNet has %d layer nodes, expected 150-230", n)
	}
	// Paper §III: 56.14% 1×1 kernels; our conv census gives ~59%.
	f := Frac1x1Layers(m)
	if f < 0.50 || f < 0.5614-0.08 || f > 0.5614+0.08 {
		t.Errorf("RetinaNet 1x1 fraction = %.4f, want ~0.5614", f)
	}
}

func TestTable2ParamColumn(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping paper-scale model construction in -short mode")
	}
	// Table 2 of the paper: parameters in millions.
	want := map[string]float64{
		"YOLOv5s":   7.02e6,
		"YOLOXs":    8.97e6,
		"RetinaNet": 36.49e6,
		"YOLOv7":    36.90e6,
		"YOLOR":     37.26e6,
		"DETR":      41.52e6,
	}
	for _, m := range Table2Models() {
		approx(t, m.Name+" params", float64(m.Params()), want[m.Name], 0.03)
	}
}

func TestDETRFrac1x1(t *testing.T) {
	// Paper §III: DETR has 63.46% 1×1 kernels (we count convs; the
	// transformer's linears are excluded).
	f := Frac1x1Layers(DETR(KITTIClasses))
	if math.Abs(f-0.6346) > 0.08 {
		t.Errorf("DETR 1x1 fraction = %.4f, want ~0.6346", f)
	}
}

func TestAllModelsValidate(t *testing.T) {
	ms := Table2Models()
	ms = append(ms, YOLOv4(COCOClasses))
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if _, err := m.InferShapes(); err != nil {
			t.Errorf("%s shapes: %v", m.Name, err)
		}
	}
}

func TestAllModelsHaveWeights(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping paper-scale model construction in -short mode")
	}
	for _, m := range Table2Models() {
		for _, l := range m.ConvLayers() {
			if l.Weight == nil {
				t.Fatalf("%s layer %q has no weights", m.Name, l.Name)
			}
			if l.Weight.NNZ() == 0 {
				t.Fatalf("%s layer %q weights all zero", m.Name, l.Name)
			}
		}
	}
}

func TestZooTwoStageStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping paper-scale model construction in -short mode")
	}
	zoo := Zoo()
	if len(zoo) != 6 {
		t.Fatalf("zoo size %d", len(zoo))
	}
	for i, d := range zoo {
		if d.Stage == "two-stage" {
			if d.Regions == 0 || d.PerRegion == nil {
				t.Errorf("%s: two-stage without regions", Table1Names[i])
			}
		} else if d.Regions != 0 {
			t.Errorf("%s: single-stage with regions", Table1Names[i])
		}
		if d.RefMAP <= 0 || d.RefFPS <= 0 {
			t.Errorf("%s: missing reference metrics", Table1Names[i])
		}
	}
}

func TestTwoStageMACsDominatedByRegions(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping paper-scale model construction in -short mode")
	}
	// The defining property of R-CNN: per-region evaluation dominates.
	rcnn := Zoo()[0]
	base, _ := rcnn.Model.MACs()
	if rcnn.TotalMACs() < 100*base {
		t.Errorf("R-CNN region MACs should dwarf single-pass MACs: total %d base %d", rcnn.TotalMACs(), base)
	}
	// And the Table 1 ordering: R-CNN > Fast R-CNN > Faster R-CNN.
	zoo := Zoo()
	if !(zoo[0].TotalMACs() > zoo[1].TotalMACs() && zoo[1].TotalMACs() > zoo[2].TotalMACs()) {
		t.Errorf("two-stage MAC ordering broken: %d %d %d", zoo[0].TotalMACs(), zoo[1].TotalMACs(), zoo[2].TotalMACs())
	}
}

func TestPrunableConvsExcludesDetectPredictors(t *testing.T) {
	m := YOLOv5s(KITTIClasses)
	prunable := nn.PrunableConvs(m)
	all := m.ConvLayers()
	if len(all)-len(prunable) != 3 {
		t.Errorf("expected exactly 3 detect predictors excluded, got %d of %d", len(all)-len(prunable), len(all))
	}
	for _, l := range prunable {
		for _, d := range m.Layers {
			if d.Kind == nn.Detect {
				for _, in := range d.Inputs {
					if in == l.ID {
						t.Errorf("prunable conv %q feeds Detect directly", l.Name)
					}
				}
			}
		}
	}
}

func TestWeightsDeterministicAcrossBuilds(t *testing.T) {
	a := YOLOv5s(KITTIClasses)
	b := YOLOv5s(KITTIClasses)
	la, lb := a.ConvLayers()[10], b.ConvLayers()[10]
	for i := range la.Weight.Data {
		if la.Weight.Data[i] != lb.Weight.Data[i] {
			t.Fatal("zoo weights are not reproducible")
		}
	}
}

func TestMACsScaleWithResolution(t *testing.T) {
	m := YOLOv5s(KITTIClasses)
	macs640, _ := m.MACs()
	m.InputH, m.InputW = 320, 320
	macs320, err := m.MACs()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(macs640) / float64(macs320)
	if ratio < 3.6 || ratio > 4.4 {
		t.Errorf("MACs should scale ~4x with 2x resolution, got %.2fx", ratio)
	}
}

func TestSortedModuleNames(t *testing.T) {
	names := SortedModuleNames(YOLOv5s(KITTIClasses))
	if len(names) != 25 {
		t.Fatalf("module names %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("module names not sorted")
		}
	}
}

func BenchmarkBuildYOLOv5s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = YOLOv5s(KITTIClasses)
	}
}

func BenchmarkBuildRetinaNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RetinaNet(KITTIClasses)
	}
}

func TestSharedCacheHandsOutOneInstance(t *testing.T) {
	a := YOLOv5sShared(KITTIClasses)
	b := YOLOv5sShared(KITTIClasses)
	if a != b {
		t.Fatal("shared path returned distinct instances")
	}
	byName, err := Shared("YOLOv5s", KITTIClasses)
	if err != nil {
		t.Fatal(err)
	}
	if byName != a {
		t.Fatal("Shared by name returned a different instance than YOLOv5sShared")
	}
	if _, err := Shared("DETR", KITTIClasses); err == nil {
		t.Fatal("Shared should reject architectures without a shared path")
	}

	// The clone path must still hand out independent copies: mutating a
	// clone (what pruners do) may not leak into the shared instance.
	clone := YOLOv5s(KITTIClasses)
	if clone == a {
		t.Fatal("clone path returned the shared instance")
	}
	var conv *nn.Layer
	for _, l := range clone.Layers {
		if l.Kind == nn.Conv && l.Weight != nil {
			conv = l
			break
		}
	}
	orig := a.Layers[conv.ID].Weight.Data[0]
	conv.Weight.Data[0] = orig + 42
	if a.Layers[conv.ID].Weight.Data[0] != orig {
		t.Fatal("mutating a clone corrupted the shared instance")
	}
}
