// Package models is the model zoo: architecture descriptors for every
// detector the paper touches. YOLOv5s and RetinaNet are layer-faithful
// reconstructions (their parameter counts land on the paper's 7.02 M and
// 36.49 M with KITTI's 8 classes, and their kernel censuses reproduce
// the §III motivation numbers); the Table 1/2 comparison models are
// architecture sketches with calibrated parameter/MAC totals, documented
// per model.
package models

import (
	"fmt"

	"rtoss/internal/nn"
)

// KITTIClasses is the number of object classes in the KITTI 2-D
// detection benchmark (car, van, truck, pedestrian, person sitting,
// cyclist, tram, misc).
const KITTIClasses = 8

// COCOClasses is the number of classes in MS-COCO.
const COCOClasses = 80

// DefaultSeed seeds the synthetic "trained" weights of every zoo model.
const DefaultSeed = 0xDAC2023

// YOLOv5s builds the small YOLOv5 v6.0 variant at 640×640: the paper's
// "25 layers" are the 25 top-level modules tagged via Module. With
// classes = KITTIClasses the parameter count is ~7.04 M, matching the
// paper's 7.02 M; with COCOClasses it is the familiar 7.2 M.
func buildYOLOv5s(classes int) *nn.Model {
	b := nn.NewBuilder("YOLOv5s", 3, 640, 640, classes)
	x := b.Input()

	// Backbone (modules 0-9).
	b.SetModule("m0.Conv")
	x = b.ConvBNAct("b0", x, 3, 32, 6, 2, 2, nn.SiLU) // P1/2
	b.SetModule("m1.Conv")
	x = b.ConvBNAct("b1", x, 32, 64, 3, 2, 1, nn.SiLU) // P2/4
	b.SetModule("m2.C3")
	x = b.C3("b2", x, 64, 64, 1, true, nn.SiLU)
	b.SetModule("m3.Conv")
	x = b.ConvBNAct("b3", x, 64, 128, 3, 2, 1, nn.SiLU) // P3/8
	b.SetModule("m4.C3")
	p3 := b.C3("b4", x, 128, 128, 2, true, nn.SiLU)
	b.SetModule("m5.Conv")
	x = b.ConvBNAct("b5", p3, 128, 256, 3, 2, 1, nn.SiLU) // P4/16
	b.SetModule("m6.C3")
	p4 := b.C3("b6", x, 256, 256, 3, true, nn.SiLU)
	b.SetModule("m7.Conv")
	x = b.ConvBNAct("b7", p4, 256, 512, 3, 2, 1, nn.SiLU) // P5/32
	b.SetModule("m8.C3")
	x = b.C3("b8", x, 512, 512, 1, true, nn.SiLU)
	b.SetModule("m9.SPPF")
	x = b.SPPF("b9", x, 512, 512, 5, nn.SiLU)

	// Head / PANet neck (modules 10-23).
	b.SetModule("m10.Conv")
	h10 := b.ConvBNAct("h10", x, 512, 256, 1, 1, 0, nn.SiLU)
	b.SetModule("m11.Upsample")
	x = b.Upsample("h11", h10, 2)
	b.SetModule("m12.Concat")
	x = b.Concat("h12", x, p4)
	b.SetModule("m13.C3")
	x = b.C3("h13", x, 512, 256, 1, false, nn.SiLU)
	b.SetModule("m14.Conv")
	h14 := b.ConvBNAct("h14", x, 256, 128, 1, 1, 0, nn.SiLU)
	b.SetModule("m15.Upsample")
	x = b.Upsample("h15", h14, 2)
	b.SetModule("m16.Concat")
	x = b.Concat("h16", x, p3)
	b.SetModule("m17.C3")
	out3 := b.C3("h17", x, 256, 128, 1, false, nn.SiLU) // P3/8 small
	b.SetModule("m18.Conv")
	x = b.ConvBNAct("h18", out3, 128, 128, 3, 2, 1, nn.SiLU)
	b.SetModule("m19.Concat")
	x = b.Concat("h19", x, h14)
	b.SetModule("m20.C3")
	out4 := b.C3("h20", x, 256, 256, 1, false, nn.SiLU) // P4/16 medium
	b.SetModule("m21.Conv")
	x = b.ConvBNAct("h21", out4, 256, 256, 3, 2, 1, nn.SiLU)
	b.SetModule("m22.Concat")
	x = b.Concat("h22", x, h10)
	b.SetModule("m23.C3")
	out5 := b.C3("h23", x, 512, 512, 1, false, nn.SiLU) // P5/32 large

	// Detect (module 24): one 1×1 conv per scale, 3 anchors × (5+nc).
	b.SetModule("m24.Detect")
	no := 3 * (5 + classes)
	d3 := b.Conv("detect.p3", out3, 128, no, 1, 1, 0, true)
	d4 := b.Conv("detect.p4", out4, 256, no, 1, 1, 0, true)
	d5 := b.Conv("detect.p5", out5, 512, no, 1, 1, 0, true)
	b.Detect("detect", d3, d4, d5)

	m := b.MustBuild()
	m.InitWeights(DefaultSeed)
	return m
}

// ModuleCount returns the number of distinct top-level modules in a
// model (YOLOv5s reports 25, the paper's "25 layers").
func ModuleCount(m *nn.Model) int {
	seen := map[string]bool{}
	for _, l := range m.Layers {
		if l.Module != "" {
			seen[l.Module] = true
		}
	}
	return len(seen)
}

// PrunableCensus computes the kernel census over prunable convs only.
func PrunableCensus(m *nn.Model) nn.Census {
	var c nn.Census
	for _, l := range nn.PrunableConvs(m) {
		k := int64(l.KernelCount())
		switch {
		case l.Is1x1():
			c.Conv1x1Kernels += k
			c.Conv1x1Layers++
		case l.Is3x3():
			c.Conv3x3Kernels += k
			c.Conv3x3Layers++
		default:
			c.OtherKernels += k
			c.OtherLayers++
		}
	}
	c.Params = m.Params()
	return c
}

// Frac1x1Layers returns the fraction of prunable conv *layers* that are
// 1×1 — the statistic the paper quotes in §III (YOLOv5s 68.42%,
// RetinaNet 56.14%, DETR 63.46%).
func Frac1x1Layers(m *nn.Model) float64 {
	c := PrunableCensus(m)
	total := c.Conv1x1Layers + c.Conv3x3Layers + c.OtherLayers
	if total == 0 {
		return 0
	}
	return float64(c.Conv1x1Layers) / float64(total)
}

func mustShapes(m *nn.Model) []nn.Shape {
	s, err := m.InferShapes()
	if err != nil {
		panic(fmt.Sprintf("models: %s shape inference: %v", m.Name, err))
	}
	return s
}

// YOLOv5s returns a fresh copy of the cached YOLOv5s build.
func YOLOv5s(classes int) *nn.Model {
	return cached("YOLOv5s", classes, func() *nn.Model { return buildYOLOv5s(classes) })
}

// YOLOv5sShared returns the shared read-only YOLOv5s instance (no
// clone); see Shared for the mutation contract.
func YOLOv5sShared(classes int) *nn.Model {
	return sharedCached("YOLOv5s", classes, func() *nn.Model { return buildYOLOv5s(classes) })
}
