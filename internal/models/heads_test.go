package models

import (
	"testing"

	"rtoss/internal/detect"
	"rtoss/internal/nn"
)

// detectInputChannels returns the OutC of each layer feeding a model's
// Detect sink.
func detectInputChannels(t *testing.T, m *nn.Model) []int {
	t.Helper()
	shapes, err := m.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range m.Layers {
		if l.Kind != nn.Detect {
			continue
		}
		chans := make([]int, len(l.Inputs))
		for i, id := range l.Inputs {
			chans[i] = shapes[id].C
		}
		return chans
	}
	t.Fatalf("model %s has no Detect layer", m.Name)
	return nil
}

// TestYOLOv5sHeadMatchesModel checks the exported spec against the
// actual descriptor: 3 levels, each 3 anchors x (5 + classes) channels.
func TestYOLOv5sHeadMatchesModel(t *testing.T) {
	spec := YOLOv5sHead(KITTIClasses)
	chans := detectInputChannels(t, YOLOv5sShared(KITTIClasses))
	if len(chans) != len(spec.Levels) {
		t.Fatalf("model has %d heads, spec has %d levels", len(chans), len(spec.Levels))
	}
	for i, c := range chans {
		want := len(spec.Levels[i].Anchors) * (5 + spec.Classes)
		if c != want {
			t.Errorf("head %d: model %d channels, spec wants %d", i, c, want)
		}
	}
	if spec.MaxStride() != 32 {
		t.Errorf("max stride = %d, want 32", spec.MaxStride())
	}
}

// TestRetinaNetHeadMatchesModel checks the cls/reg channel layout and
// the 9-anchor set.
func TestRetinaNetHeadMatchesModel(t *testing.T) {
	spec := RetinaNetHead(KITTIClasses)
	chans := detectInputChannels(t, RetinaNetShared(KITTIClasses))
	if len(chans) != 2 {
		t.Fatalf("RetinaNet Detect has %d inputs, want 2 (cls, reg)", len(chans))
	}
	a := len(spec.Levels[0].Anchors)
	if a != 9 {
		t.Fatalf("spec has %d anchors, want 9", a)
	}
	if chans[0] != a*spec.Classes {
		t.Errorf("cls head: model %d channels, spec wants %d", chans[0], a*spec.Classes)
	}
	if chans[1] != a*4 {
		t.Errorf("reg head: model %d channels, spec wants %d", chans[1], a*4)
	}
	// Anchors are equal-area per octave scale: w*h == (32*scale)^2.
	for i, anchor := range spec.Levels[0].Anchors {
		area := anchor[0] * anchor[1]
		scale := []float64{1, 1.2599210498948732, 1.5874010519681994}[i/3]
		want := (32 * scale) * (32 * scale)
		if diff := area - want; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("anchor %d area = %v, want %v", i, area, want)
		}
	}
}

func TestHeadByName(t *testing.T) {
	if _, err := HeadByName("YOLOv5s", KITTIClasses); err != nil {
		t.Error(err)
	}
	if _, err := HeadByName("RetinaNet", KITTIClasses); err != nil {
		t.Error(err)
	}
	if _, err := HeadByName("DETR", KITTIClasses); err == nil {
		t.Error("HeadByName accepted an unsupported model")
	}
	spec, _ := HeadByName("YOLOv5s", KITTIClasses)
	if spec.Kind != detect.HeadYOLOv5 {
		t.Errorf("kind = %v, want yolov5", spec.Kind)
	}
}
