package models

import (
	"fmt"
	"math"

	"rtoss/internal/detect"
)

// heads.go exports the decode metadata that pairs each zoo model's
// Detect inputs with the anchor-grid geometry the detection pipeline
// needs. The specs mirror the published configurations: YOLOv5's three
// P3/P4/P5 levels with the COCO-tuned anchors, and RetinaNet's
// 3-scale x 3-ratio anchor set (our descriptor computes the shared
// head on P3, so the spec exposes that single level — see retinanet.go
// for the MAC-replication story behind the other pyramid levels).

// yolov5Anchors are the YOLOv5 v6 default anchors as (w, h) pixel
// pairs per level (P3/8, P4/16, P5/32).
var yolov5Anchors = [3][3][2]float64{
	{{10, 13}, {16, 30}, {33, 23}},
	{{30, 61}, {62, 45}, {59, 119}},
	{{116, 90}, {156, 198}, {373, 326}},
}

// YOLOv5sHead returns the decode spec for the YOLOv5s descriptor: the
// Detect sink collects the P3/P4/P5 prediction maps (strides 8/16/32),
// each fusing 3 anchors x (5 + classes) channels.
func YOLOv5sHead(classes int) detect.HeadSpec {
	spec := detect.HeadSpec{Kind: detect.HeadYOLOv5, Classes: classes}
	for i, stride := range []int{8, 16, 32} {
		lv := detect.HeadLevel{Stride: stride}
		for _, a := range yolov5Anchors[i] {
			lv.Anchors = append(lv.Anchors, a)
		}
		spec.Levels = append(spec.Levels, lv)
	}
	return spec
}

// RetinaNetHead returns the decode spec for the RetinaNet descriptor.
// The shared classification/regression towers are instantiated on P3
// (stride 8), so the Detect sink carries one [9*classes] map and one
// [9*4] map; the 9 anchors are the standard 3 octave scales x 3 aspect
// ratios around the level's base size of 32 pixels.
func RetinaNetHead(classes int) detect.HeadSpec {
	const base = 32.0
	lv := detect.HeadLevel{Stride: 8}
	for _, scale := range []float64{1, math.Pow(2, 1.0/3), math.Pow(2, 2.0/3)} {
		for _, ratio := range []float64{0.5, 1, 2} {
			// Equal-area anchors: w*h = (base*scale)^2, h/w = ratio.
			size := base * scale
			w := size / math.Sqrt(ratio)
			h := size * math.Sqrt(ratio)
			lv.Anchors = append(lv.Anchors, [2]float64{w, h})
		}
	}
	return detect.HeadSpec{Kind: detect.HeadRetinaNet, Classes: classes, Levels: []detect.HeadLevel{lv}}
}

// HeadByName returns the decode spec for an evaluation model by its
// display name ("YOLOv5s" or "RetinaNet").
func HeadByName(name string, classes int) (detect.HeadSpec, error) {
	switch name {
	case "YOLOv5s":
		return YOLOv5sHead(classes), nil
	case "RetinaNet":
		return RetinaNetHead(classes), nil
	}
	return detect.HeadSpec{}, fmt.Errorf("models: no head spec for %q (YOLOv5s|RetinaNet)", name)
}
