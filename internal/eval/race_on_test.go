//go:build race

package eval

// raceEnabled reports whether the race detector is instrumenting this
// build. Tests whose assertions are premised on real-time performance
// (service time well under a frame interval) consult it: race
// instrumentation inflates the tiny model's service time past the
// 30 fps frame interval, which makes the premise — not the code —
// false.
const raceEnabled = true
