package eval

import (
	"bytes"
	"image"
	"image/jpeg"
	"math"
	"testing"

	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/kitti"
	"rtoss/internal/metrics"
	"rtoss/internal/serve"
	"rtoss/internal/tensor"
)

// TestJPEGIngestMAPParity gates the JPEG ingest path by accuracy
// rather than bitwise parity: JPEG is lossy, so unlike PPM/PNG its
// decoded pixels legitimately differ from the rendered scene, and the
// bitwise backend-parity tests exclude it. What must hold instead is
// that serving JPEG bytes scores the same mAP as serving the lossless
// PPM bytes to within 0.01 on the rendered KITTI set — i.e. the
// encode loss plus the in-repo decoder's IDCT rounding moves no box
// far enough to change the evaluation outcome.
func TestJPEGIngestMAPParity(t *testing.T) {
	prog := tinyProgram(t, engine.ModeSparse)
	srv := serve.NewServer(prog, serve.Config{})
	defer srv.Close()
	cfg := detect.Config{Spec: tinySpec8(), ScoreThreshold: 0.05}

	rendered := kitti.RenderedDataset(3, 6, 320, 192)
	var ppmSamples, jpegSamples []metrics.Sample
	for i, rs := range rendered {
		var ppm bytes.Buffer
		if err := tensor.EncodePPM(&ppm, rs.Image); err != nil {
			t.Fatal(err)
		}
		// Encode the JPEG from the same 8-bit-quantised pixels the PPM
		// carries, so the only differences left are JPEG's own.
		quant, err := tensor.DecodeImage(bytes.NewReader(ppm.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var jpg bytes.Buffer
		if err := jpeg.Encode(&jpg, tensorToNRGBA(quant), &jpeg.Options{Quality: 95}); err != nil {
			t.Fatal(err)
		}

		resP, err := srv.Detect(ppm.Bytes(), cfg, 64, 64)
		if err != nil {
			t.Fatalf("scene %d ppm: %v", i, err)
		}
		resJ, err := srv.Detect(jpg.Bytes(), cfg, 64, 64)
		if err != nil {
			t.Fatalf("scene %d jpeg: %v", i, err)
		}
		ppmSamples = append(ppmSamples, metrics.Sample{Detections: resP.Detections, Truth: rs.Scene.Truth})
		jpegSamples = append(jpegSamples, metrics.Sample{Detections: resJ.Detections, Truth: rs.Scene.Truth})
	}

	_, mapPPM := metrics.Evaluate(ppmSamples, kitti.NumClasses, 0.5)
	_, mapJPEG := metrics.Evaluate(jpegSamples, kitti.NumClasses, 0.5)
	t.Logf("mAP@0.5: ppm %.4f, jpeg %.4f (delta %.4f)", mapPPM, mapJPEG, math.Abs(mapPPM-mapJPEG))
	if d := math.Abs(mapPPM - mapJPEG); d > 0.01 {
		t.Errorf("JPEG ingest shifts mAP by %.4f (ppm %.4f vs jpeg %.4f), budget 0.01", d, mapPPM, mapJPEG)
	}

	// The mAP delta alone can pass vacuously when both scores are ~0, so
	// also gate at the detection level: the network's raw output is a
	// deterministic function of the decoded pixels, and JPEG's loss must
	// not move it far. Require (a) real output, and (b) that nearly every
	// JPEG detection greedily matches a same-class PPM detection at high
	// IoU with a small score delta.
	var total, matched int
	for s := range jpegSamples {
		pd, jd := ppmSamples[s].Detections, jpegSamples[s].Detections
		used := make([]bool, len(pd))
		for _, d := range jd {
			total++
			for i, p := range pd {
				if used[i] || p.Class != d.Class {
					continue
				}
				if detect.IoU(p.Box, d.Box) >= 0.85 && math.Abs(p.Score-d.Score) <= 0.05 {
					used[i] = true
					matched++
					break
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no detections produced — the gate is vacuous; lower the score threshold")
	}
	frac := float64(matched) / float64(total)
	t.Logf("detection match: %d/%d (%.1f%%) jpeg detections match a ppm detection at IoU>=0.85", matched, total, 100*frac)
	if frac < 0.95 {
		t.Errorf("only %.1f%% of jpeg detections match the ppm run (want >=95%%): JPEG decode drift is shifting boxes", 100*frac)
	}
}

// tensorToNRGBA converts a [3, H, W] tensor in [0, 1] holding
// 8-bit-quantised values (k/255) back to the exact bytes.
func tensorToNRGBA(t *tensor.Tensor) *image.NRGBA {
	h, w := t.Dim(1), t.Dim(2)
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	plane := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*img.Stride + 4*x
			img.Pix[i+0] = uint8(t.Data[y*w+x]*255 + 0.5)
			img.Pix[i+1] = uint8(t.Data[plane+y*w+x]*255 + 0.5)
			img.Pix[i+2] = uint8(t.Data[2*plane+y*w+x]*255 + 0.5)
			img.Pix[i+3] = 255
		}
	}
	return img
}
