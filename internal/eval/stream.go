package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/kitti"
	"rtoss/internal/metrics"
	"rtoss/internal/serve"
	"rtoss/internal/stream"
	"rtoss/internal/tensor"
)

// stream.go is the streaming half of the harness: instead of scoring a
// bag of independent images, it replays deterministic moving-scene
// videos (kitti.RenderedSequence) through stream sessions against a
// live serve.Server and scores BOTH accuracy and timeliness — mAP over
// the served frames, plus deadline-hit-rate and drop-rate per stream.
// Stream i draws its frames from seed Seed+i, so a run is fully
// reproducible: the same config replays the same videos.
//
// Two pacing modes:
//
//   - paced (default): each stream pushes at FPS against the wall
//     clock, exactly like a camera. Under load the newest-frame-wins
//     mailbox and the EDF scheduler shed stale frames, and the report
//     shows it in the drop counters.
//   - Lockstep: the next frame is pushed only after the previous one
//     resolved. No pacing, no drops — the mode that makes served-frame
//     detections bitwise comparable with the single-shot backends,
//     isolating the streaming transport from the math.

// StreamConfig parameterises one streaming evaluation run.
type StreamConfig struct {
	// Streams is how many concurrent video sessions to replay
	// (default 2).
	Streams int
	// Frames is the length of each stream's video (default 30).
	Frames int
	// FPS is the per-stream frame rate in paced mode (default 30).
	FPS float64
	// Budget is the per-frame deadline budget (default 4 frame
	// intervals; <0 disables deadlines).
	Budget time.Duration
	// Lockstep pushes each frame only after the previous resolved —
	// drop-free, for parity testing against single-shot backends.
	Lockstep bool

	// Seed drives scene generation; stream i uses Seed+i (default 1).
	Seed uint64
	// SceneW, SceneH are the rendered frame dimensions (default
	// 320x192).
	SceneW, SceneH int

	// Arch, Variant, Mode, Res, Detect, Program mirror Config: they
	// select and tune the model under evaluation.
	Arch    string
	Variant string
	Mode    engine.Mode
	Res     int
	Detect  detect.Config
	Program *engine.Program

	// EvalIoU is the mAP matching threshold (default 0.5).
	EvalIoU float64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Streams <= 0 {
		c.Streams = 2
	}
	if c.Frames <= 0 {
		c.Frames = 30
	}
	if c.FPS <= 0 {
		c.FPS = 30
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SceneW <= 0 {
		c.SceneW = 320
	}
	if c.SceneH <= 0 {
		c.SceneH = 192
	}
	if c.Arch == "" {
		c.Arch = "YOLOv5s"
	}
	if c.Variant == "" {
		c.Variant = "rtoss-3ep"
	}
	if c.Res <= 0 {
		c.Res = 256
	}
	if c.EvalIoU <= 0 {
		c.EvalIoU = 0.5
	}
	if c.Budget == 0 {
		c.Budget = time.Duration(4 * float64(time.Second) / c.FPS)
	} else if c.Budget < 0 {
		c.Budget = 0 // explicit "no deadline"
	}
	c.Detect = c.Detect.WithDefaults()
	return c
}

// FrameOutcome records what happened to one pushed frame.
type FrameOutcome struct {
	Stream int  `json:"stream"`
	Frame  int  `json:"frame"`
	Served bool `json:"served"`
	OnTime bool `json:"on_time"`
	// Drop classifies an unserved frame: "stale", "deadline" or
	// "error"; empty for served frames.
	Drop string `json:"drop,omitempty"`
	// Detections are the served frame's boxes in source pixels (nil
	// when dropped). Excluded from JSON: the report carries scores,
	// not raw boxes.
	Detections []detect.Detection `json:"-"`
}

// StreamReport is the result of one streaming evaluation.
type StreamReport struct {
	Arch    string `json:"arch"`
	Variant string `json:"variant"`
	Mode    string `json:"mode"`

	Streams  int     `json:"streams"`
	Frames   int     `json:"frames_per_stream"`
	FPS      float64 `json:"fps"`
	BudgetMS float64 `json:"budget_ms"`
	Lockstep bool    `json:"lockstep"`
	Seed     uint64  `json:"seed"`
	EvalIoU  float64 `json:"eval_iou"`

	FramesIn        uint64  `json:"frames_in"`
	FramesServed    uint64  `json:"frames_served"`
	DroppedStale    uint64  `json:"dropped_stale"`
	DroppedDeadline uint64  `json:"dropped_deadline"`
	Errors          uint64  `json:"errors"`
	DeadlineHitRate float64 `json:"deadline_hit_rate"`
	DropRate        float64 `json:"drop_rate"`
	AvgServeMS      float64 `json:"avg_serve_ms"`

	// MAP scores the served frames against their ground truth; dropped
	// frames contribute nothing (they are timeliness failures, already
	// priced into the hit rate, not accuracy failures).
	MAP        float64        `json:"map"`
	Objects    int            `json:"objects"`
	Detections int            `json:"detections"`
	Outcomes   []FrameOutcome `json:"-"`
}

// Render returns the report as aligned text (`rtoss stream` output).
func (r *StreamReport) Render() string {
	var b strings.Builder
	pacing := fmt.Sprintf("%.0f fps", r.FPS)
	if r.Lockstep {
		pacing = "lockstep"
	}
	deadline := fmt.Sprintf("budget %.0f ms", r.BudgetMS)
	if r.BudgetMS <= 0 {
		deadline = "no deadline"
	}
	fmt.Fprintf(&b, "stream eval %s/%s/%s: %d streams x %d frames (%s, %s, seed %d)\n",
		r.Arch, r.Variant, r.Mode, r.Streams, r.Frames, pacing, deadline, r.Seed)
	fmt.Fprintf(&b, "  frames: %d in, %d served, %d stale, %d deadline, %d errors\n",
		r.FramesIn, r.FramesServed, r.DroppedStale, r.DroppedDeadline, r.Errors)
	fmt.Fprintf(&b, "  deadline hit rate %.4f, drop rate %.4f, avg serve %.2f ms\n",
		r.DeadlineHitRate, r.DropRate, r.AvgServeMS)
	fmt.Fprintf(&b, "  mAP@%.2f = %.6f over served frames (%d objects, %d detections)\n",
		r.EvalIoU, r.MAP, r.Objects, r.Detections)
	return b.String()
}

// WriteJSON writes the report to a file as indented JSON.
func (r *StreamReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunStream replays Streams deterministic videos through stream
// sessions against one live server and scores accuracy and
// timeliness.
func RunStream(cfg StreamConfig) (*StreamReport, error) {
	cfg = cfg.withDefaults()
	spec, err := resolveSpec(Config{Detect: cfg.Detect, Arch: cfg.Arch})
	if err != nil {
		return nil, err
	}
	if s := spec.MaxStride(); cfg.Res%s != 0 {
		return nil, fmt.Errorf("eval: stream resolution %d must be a multiple of the head stride %d", cfg.Res, s)
	}
	cfg.Detect.Spec = spec
	prog, err := buildProgram(Config{Program: cfg.Program, Arch: cfg.Arch, Variant: cfg.Variant, Mode: cfg.Mode})
	if err != nil {
		return nil, err
	}

	// Render every stream's video and fix the canonical wire bytes up
	// front, so pacing measures serving, not rasterisation.
	videos := make([][]kitti.RenderedScene, cfg.Streams)
	frames := make([][][]byte, cfg.Streams)
	for i := range videos {
		videos[i] = kitti.RenderedSequence(cfg.Seed+uint64(i), cfg.Frames, cfg.SceneW, cfg.SceneH)
		frames[i] = make([][]byte, cfg.Frames)
		for k, rs := range videos[i] {
			var buf bytes.Buffer
			if err := tensor.EncodePPM(&buf, rs.Image); err != nil {
				return nil, fmt.Errorf("eval: encoding stream %d frame %d: %w", i, k, err)
			}
			frames[i][k] = buf.Bytes()
		}
	}

	srv := serve.NewServer(prog, serve.Config{})
	defer srv.Close()
	hub := stream.NewHub(srv, stream.Config{
		Pipe: cfg.Detect, ResH: cfg.Res, ResW: cfg.Res, Budget: cfg.Budget,
	})
	defer hub.Close()

	interval := time.Duration(float64(time.Second) / cfg.FPS)
	outcomes := make([][]FrameOutcome, cfg.Streams)
	errC := make(chan error, cfg.Streams)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Streams; i++ {
		outcomes[i] = make([]FrameOutcome, cfg.Frames)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errC <- runOneStream(hub, cfg, i, frames[i], outcomes[i], interval)
		}(i)
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		if err != nil {
			return nil, err
		}
	}
	return buildStreamReport(cfg, hub.Stats(), videos, outcomes), nil
}

// runOneStream replays one video through one session, recording every
// frame's outcome by its push sequence (seq k+1 = frame k).
func runOneStream(hub *stream.Hub, cfg StreamConfig, idx int, frames [][]byte, out []FrameOutcome, interval time.Duration) error {
	var mu sync.Mutex
	resolved := make(chan stream.Result, len(frames)+1)
	sess, err := hub.Open(stream.SessionConfig{OnResult: func(r stream.Result) {
		mu.Lock()
		k := int(r.Seq) - 1
		if k >= 0 && k < len(out) {
			o := &out[k]
			o.Stream = idx
			o.Frame = k
			switch {
			case r.Err == nil:
				o.Served = true
				o.OnTime = r.OnTime
				o.Detections = r.Det.Detections
			case r.Err == serve.ErrSuperseded:
				o.Drop = "stale"
			case r.Err == serve.ErrDeadline:
				o.Drop = "deadline"
			default:
				o.Drop = "error"
			}
		}
		mu.Unlock()
		resolved <- r
	}})
	if err != nil {
		return err
	}
	start := time.Now()
	for k, ppm := range frames {
		if !cfg.Lockstep {
			// Camera pacing: frame k is captured at start + k*interval.
			if wait := time.Until(start.Add(time.Duration(k) * interval)); wait > 0 {
				time.Sleep(wait)
			}
		}
		if err := sess.Push(ppm); err != nil {
			sess.Close()
			return fmt.Errorf("eval: stream %d frame %d: %w", idx, k, err)
		}
		if cfg.Lockstep {
			<-resolved // strictly one in flight: drop-free by construction
		}
	}
	sess.Close()
	return nil
}

// buildStreamReport aggregates counters and scores served frames.
func buildStreamReport(cfg StreamConfig, sum stream.Summary, videos [][]kitti.RenderedScene, outcomes [][]FrameOutcome) *StreamReport {
	rep := &StreamReport{
		Arch: cfg.Arch, Variant: cfg.Variant, Mode: cfg.Mode.String(),
		Streams: cfg.Streams, Frames: cfg.Frames, FPS: cfg.FPS,
		BudgetMS: float64(cfg.Budget) / float64(time.Millisecond),
		Lockstep: cfg.Lockstep, Seed: cfg.Seed, EvalIoU: cfg.EvalIoU,

		FramesIn:        sum.FramesIn,
		FramesServed:    sum.FramesServed,
		DroppedStale:    sum.DroppedStale,
		DroppedDeadline: sum.DroppedDeadline,
		Errors:          sum.Errors,
		DeadlineHitRate: sum.DeadlineHitRate,
		AvgServeMS:      sum.AvgServeMS,
	}
	if sum.FramesIn > 0 {
		rep.DropRate = float64(sum.DroppedStale+sum.DroppedDeadline) / float64(sum.FramesIn)
	}
	var samples []metrics.Sample
	for i, streamOutcomes := range outcomes {
		for k := range streamOutcomes {
			o := streamOutcomes[k]
			rep.Outcomes = append(rep.Outcomes, o)
			if !o.Served {
				continue
			}
			truth := videos[i][k].Scene.Truth
			samples = append(samples, metrics.Sample{Detections: o.Detections, Truth: truth})
			rep.Detections += len(o.Detections)
			for _, g := range truth {
				if !g.Difficult {
					rep.Objects++
				}
			}
		}
	}
	_, rep.MAP = metrics.Evaluate(samples, kitti.NumClasses, cfg.EvalIoU)
	return rep
}
