package eval

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rtoss/internal/core"
	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/nn"
)

// tinyProgram compiles a small pruned 8-class detector so parity tests
// don't pay for zoo-scale models. Head: 2 anchors x (5 + 8 classes) =
// 26 channels at stride 4.
func tinyProgram(t testing.TB, mode engine.Mode) *engine.Program {
	t.Helper()
	b := nn.NewBuilder("tinydet8", 3, 64, 64, 8)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 8, 3, 2, 1, nn.SiLU)
	c3 := b.C3("c3", x, 8, 8, 1, true, nn.SiLU)
	x = b.ConvBNAct("down", c3, 8, 16, 3, 2, 1, nn.SiLU)
	head := b.Conv("head", x, 16, 26, 1, 1, 0, true)
	b.Detect("detect", head)
	m := b.MustBuild()
	m.InitWeights(3)
	if _, err := core.NewVariant(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	p, err := engine.Compile(m, engine.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tinySpec8 matches tinyProgram's head layout.
func tinySpec8() detect.HeadSpec {
	return detect.HeadSpec{
		Kind:    detect.HeadYOLOv5,
		Classes: 8,
		Levels:  []detect.HeadLevel{{Stride: 4, Anchors: [][2]float64{{8, 8}, {24, 24}}}},
	}
}

// tinyConfig is the shared run configuration of the parity tests: a
// low score threshold so the untrained network yields plenty of
// detections (parity over an empty set would be vacuous).
func tinyConfig() Config {
	return Config{
		Scenes: 4, Seed: 3, Res: 64,
		Detect: detect.Config{Spec: tinySpec8(), ScoreThreshold: 0.05},
	}
}

// runTiny evaluates the tiny model via one backend/mode combination.
func runTiny(t *testing.T, backend string, mode engine.Mode) *Report {
	t.Helper()
	cfg := tinyConfig()
	cfg.Program = tinyProgram(t, mode)
	cfg.Backend = backend
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s/%v: %v", backend, mode, err)
	}
	return rep
}

// TestBackendAndModeParity is the harness's central guarantee: the
// same model evaluated (a) with dense vs sparse kernel dispatch and
// (b) in process vs through a served HTTP round trip produces the
// bitwise-identical report — same mAP, same per-class APs, same
// detection count. The dataset is canonical PPM bytes, sparse kernels
// preserve the dense summation order, and Go's JSON float64 encoding
// round-trips exactly, so nothing in the stack may perturb a single
// bit.
func TestBackendAndModeParity(t *testing.T) {
	ref := runTiny(t, BackendInProcess, engine.ModeDense)
	if ref.Detections == 0 {
		t.Fatal("reference run produced no detections; parity would be vacuous")
	}
	for _, tc := range []struct {
		backend string
		mode    engine.Mode
	}{
		{BackendInProcess, engine.ModeSparse},
		{BackendServer, engine.ModeSparse},
		{BackendHTTP, engine.ModeSparse},
		{BackendHTTP, engine.ModeDense},
	} {
		got := runTiny(t, tc.backend, tc.mode)
		if got.MAP != ref.MAP {
			t.Errorf("%s/%v: mAP %v != reference %v", tc.backend, tc.mode, got.MAP, ref.MAP)
		}
		if got.Detections != ref.Detections {
			t.Errorf("%s/%v: %d detections, reference %d", tc.backend, tc.mode, got.Detections, ref.Detections)
		}
		if len(got.PerClass) != len(ref.PerClass) {
			t.Fatalf("%s/%v: %d per-class rows, reference %d", tc.backend, tc.mode, len(got.PerClass), len(ref.PerClass))
		}
		for i, c := range got.PerClass {
			if c.AP != ref.PerClass[i].AP || c.Detections != ref.PerClass[i].Detections {
				t.Errorf("%s/%v: class %s AP/dets (%v, %d) != reference (%v, %d)",
					tc.backend, tc.mode, c.Name, c.AP, c.Detections, ref.PerClass[i].AP, ref.PerClass[i].Detections)
			}
		}
	}
}

// TestConcurrencyDeterminism: driving the set with many images in
// flight must not change the scores (results are index-keyed, and
// co-batched sparse forwards preserve per-image math).
func TestConcurrencyDeterminism(t *testing.T) {
	ref := runTiny(t, BackendServer, engine.ModeSparse)
	cfg := tinyConfig()
	cfg.Program = tinyProgram(t, engine.ModeSparse)
	cfg.Backend = BackendServer
	cfg.Concurrency = 4
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.MAP != ref.MAP || got.Detections != ref.Detections {
		t.Errorf("concurrency 4: (mAP %v, %d dets) != sequential (%v, %d)",
			got.MAP, got.Detections, ref.MAP, ref.Detections)
	}
}

// TestOracleMAPFloor is the pipeline-geometry gate: ground truth
// encoded into head tensors and pushed through the real decode -> NMS
// -> un-letterbox pipeline must score near-perfect mAP. Any regression
// in head decoding, NMS or the letterbox round trip collapses this.
func TestOracleMAPFloor(t *testing.T) {
	const floor = 0.95
	for _, seed := range []uint64{1, 2, 42} {
		rep, err := Run(Config{Backend: BackendOracle, Scenes: 8, Seed: seed, Res: 256})
		if err != nil {
			t.Fatal(err)
		}
		if rep.MAP < floor {
			t.Errorf("seed %d: oracle mAP %.4f below floor %.2f — decode/NMS/letterbox geometry regressed", seed, rep.MAP, floor)
		}
		if rep.Objects == 0 || rep.Detections == 0 {
			t.Errorf("seed %d: degenerate run (%d objects, %d detections)", seed, rep.Objects, rep.Detections)
		}
	}
}

// TestOracleResolutionInvariance: the oracle's score must survive a
// resolution change (the letterbox mapping is exact at any legal res).
func TestOracleResolutionInvariance(t *testing.T) {
	for _, res := range []int{128, 256} {
		rep, err := Run(Config{Backend: BackendOracle, Scenes: 6, Seed: 9, Res: res})
		if err != nil {
			t.Fatal(err)
		}
		if rep.MAP < 0.95 {
			t.Errorf("res %d: oracle mAP %.4f below 0.95", res, rep.MAP)
		}
	}
}

// TestReportShape checks the report carries a complete, serialisable
// picture of the run.
func TestReportShape(t *testing.T) {
	cfg := tinyConfig()
	cfg.Program = tinyProgram(t, engine.ModeSparse)
	cfg.Backend = BackendInProcess
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != BackendInProcess || rep.Scenes != 4 || rep.Seed != 3 || rep.Res != 64 {
		t.Errorf("config echo wrong: %+v", rep)
	}
	if rep.ScoreThreshold != 0.05 || rep.IoUThreshold != 0.45 || rep.EvalIoU != 0.5 {
		t.Errorf("threshold echo wrong: score %v iou %v eval %v", rep.ScoreThreshold, rep.IoUThreshold, rep.EvalIoU)
	}
	lat := rep.Latency
	if lat.MeanMS <= 0 || lat.P50MS <= 0 || lat.P90MS < lat.P50MS || lat.MaxMS < lat.P99MS {
		t.Errorf("latency summary inconsistent: %+v", lat)
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}

	path := filepath.Join(t.TempDir(), "eval.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.MAP != rep.MAP || back.Detections != rep.Detections || len(back.PerClass) != len(rep.PerClass) {
		t.Errorf("JSON round trip lost data: %+v vs %+v", back, rep)
	}
}

// TestConfigErrors pins the validation paths.
func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{Backend: "quantum"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := Run(Config{Backend: BackendOracle, Res: 100}); err == nil {
		t.Error("resolution 100 (not a multiple of the 32 head stride) accepted")
	}
	// The oracle can only invert YOLO heads.
	if _, err := Run(Config{Backend: BackendOracle, Arch: "RetinaNet", Res: 128, Scenes: 1}); err == nil {
		t.Error("oracle over RetinaNet heads accepted")
	}
	// Unknown architectures surface the registry/spec error.
	if _, err := Run(Config{Arch: "SSD"}); err == nil {
		t.Error("unknown architecture accepted")
	}
}

// TestZooHTTPSparseVsInProcessDense is the acceptance gate on the real
// zoo model: YOLOv5s pruned with R-TOSS 3EP, evaluated once over real
// HTTP with sparse kernels and once in process with dense kernels,
// must report the bitwise-identical mAP — the serving stack scored
// against the paper's accuracy methodology.
func TestZooHTTPSparseVsInProcessDense(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo-scale eval prunes and compiles YOLOv5s twice; skipped in -short")
	}
	base := Config{Scenes: 3, Seed: 5, Res: 64}
	http := base
	http.Backend = BackendHTTP
	http.Mode = engine.ModeSparse
	httpRep, err := Run(http)
	if err != nil {
		t.Fatal(err)
	}
	inproc := base
	inproc.Backend = BackendInProcess
	inproc.Mode = engine.ModeDense
	inprocRep, err := Run(inproc)
	if err != nil {
		t.Fatal(err)
	}
	if httpRep.MAP != inprocRep.MAP {
		t.Errorf("http/sparse mAP %v != inprocess/dense mAP %v", httpRep.MAP, inprocRep.MAP)
	}
	if httpRep.Detections != inprocRep.Detections {
		t.Errorf("http/sparse %d detections != inprocess/dense %d", httpRep.Detections, inprocRep.Detections)
	}
	if httpRep.Detections == 0 {
		t.Error("zoo eval produced no detections; parity is vacuous")
	}
	if httpRep.Variant != "rtoss-3ep" || httpRep.Arch != "YOLOv5s" {
		t.Errorf("unexpected defaults: %s/%s", httpRep.Arch, httpRep.Variant)
	}
}

// TestFastVsExactMathMAP is the accuracy gate on the fast float32
// decode path: at the pipeline's default thresholds, evaluating with
// detect.Config.ExactMath (float64 math.Exp reference decoders) and
// without it (polynomial sigmoid within detect.FastSigmoidTolerance)
// must score the identical mAP — the approximation may not move a
// single AP matching decision.
func TestFastVsExactMathMAP(t *testing.T) {
	// Oracle backend: real geometry through decode -> NMS ->
	// un-letterbox at the default score/IoU thresholds.
	for _, seed := range []uint64{1, 9} {
		base := Config{Backend: BackendOracle, Scenes: 6, Seed: seed, Res: 128}
		fast, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		exact := base
		exact.Detect.ExactMath = true
		ref, err := Run(exact)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Detections == 0 {
			t.Fatalf("seed %d: no detections; comparison is vacuous", seed)
		}
		if fast.MAP != ref.MAP || fast.Detections != ref.Detections {
			t.Errorf("seed %d: fast (mAP %v, %d dets) != exact (mAP %v, %d dets)",
				seed, fast.MAP, fast.Detections, ref.MAP, ref.Detections)
		}
	}
	// Tiny live network: the same gate through a real forward pass.
	fastCfg := tinyConfig()
	fastCfg.Program = tinyProgram(t, engine.ModeSparse)
	fast, err := Run(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	exactCfg := tinyConfig()
	exactCfg.Detect.ExactMath = true
	exactCfg.Program = tinyProgram(t, engine.ModeSparse)
	ref, err := Run(exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Detections == 0 {
		t.Fatal("tiny net produced no detections; comparison is vacuous")
	}
	if fast.MAP != ref.MAP || fast.Detections != ref.Detections {
		t.Errorf("tiny net: fast (mAP %v, %d dets) != exact (mAP %v, %d dets)",
			fast.MAP, fast.Detections, ref.MAP, ref.Detections)
	}
}
