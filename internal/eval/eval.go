// Package eval is the accuracy-regression harness: it scores the full
// detection stack against the paper's evaluation methodology (mAP over
// a KITTI-style scene set) instead of asserting box parity on a single
// image. A deterministic synthetic-KITTI dataset is generated from a
// seed, every image is driven through one of several interchangeable
// backends — the in-process pipeline, direct serve.Server calls, or
// real HTTP POSTs to /detect — and the results are scored with the
// real AP evaluator in internal/metrics into a per-class AP + mAP +
// latency-percentile report.
//
// Two properties make the harness a regression gate rather than a
// benchmark:
//
//   - The dataset is defined as encoded PPM bytes. Every backend decodes
//     the same 8-bit-quantised image, so the network inputs — and hence
//     the mAP — are bit-identical whether the pipeline runs in process
//     or across a socket. Engine modes share kernels whose surviving-tap
//     summation order matches the dense order, so dense and sparse
//     dispatch agree bitwise too.
//   - The oracle backend bypasses the network: it synthesises head
//     tensors that decode exactly to the ground truth and runs them
//     through the standard decode -> NMS -> un-letterbox pipeline. Its
//     mAP is therefore ~1.0 by construction, and any geometry regression
//     (head decode, NMS, letterbox round-trip) collapses it loudly.
package eval

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/kitti"
	"rtoss/internal/metrics"
	"rtoss/internal/models"
	"rtoss/internal/serve"
	"rtoss/internal/tensor"
)

// Backend names accepted by Config.Backend.
const (
	// BackendInProcess runs the pipeline directly on the compiled
	// Program — the library path rtoss.Detector takes.
	BackendInProcess = "inprocess"
	// BackendServer drives a micro-batching serve.Server in process
	// (no sockets), exercising the batched heads path.
	BackendServer = "server"
	// BackendHTTP POSTs each image to a /detect endpoint and decodes
	// the JSON — the full wire round trip. Without Config.URL the
	// harness hosts its own server on a loopback port.
	BackendHTTP = "http"
	// BackendOracle synthesises ground-truth head tensors and runs
	// only the post-network pipeline: the geometry-regression gate.
	BackendOracle = "oracle"
)

// Backends lists the accepted Config.Backend values.
func Backends() []string {
	return []string{BackendInProcess, BackendServer, BackendHTTP, BackendOracle}
}

// Config parameterises one evaluation run. Zero values select the
// documented defaults.
type Config struct {
	// Scenes is the synthetic-KITTI scene count (default 8).
	Scenes int
	// Seed drives scene generation; identical seeds yield identical
	// datasets (default 1).
	Seed uint64
	// SceneW, SceneH are the rendered scene dimensions (default
	// 640x384, KITTI's wide aspect).
	SceneW, SceneH int

	// Arch is the zoo architecture to evaluate: "YOLOv5s" or
	// "RetinaNet" (default "YOLOv5s"). Ignored when Program is set.
	Arch string
	// Variant is the pruning variant: "dense" or "rtoss-<N>ep"
	// (default "rtoss-3ep"). Ignored when Program is set.
	Variant string
	// Mode is the engine kernel-dispatch mode the Program is compiled
	// with (default auto).
	Mode engine.Mode
	// Res is the square model resolution images are letterboxed to
	// (default 256; must be a multiple of the head's coarsest stride).
	Res int
	// Detect tunes the post-network pipeline. Spec is resolved from
	// Arch when unset.
	Detect detect.Config

	// Backend selects how images reach the pipeline (default
	// "inprocess"; see the Backend* constants).
	Backend string
	// URL points the http backend at an externally running server
	// ("" self-hosts one on a loopback port).
	URL string
	// Concurrency is how many images are in flight at once (default
	// 1, which keeps server-side batches single-image and therefore
	// bitwise comparable across backends).
	Concurrency int
	// EvalIoU is the mAP matching threshold (default 0.5).
	EvalIoU float64

	// Program short-circuits the registry build with a pre-compiled
	// Program — the test hook that lets tiny models stand in for the
	// zoo. Detect.Spec must be set when the program's model is not a
	// zoo architecture.
	Program *engine.Program
}

// withDefaults returns the config with zero values replaced.
func (c Config) withDefaults() Config {
	if c.Scenes <= 0 {
		c.Scenes = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SceneW <= 0 {
		c.SceneW = 640
	}
	if c.SceneH <= 0 {
		c.SceneH = 384
	}
	if c.Arch == "" {
		c.Arch = "YOLOv5s"
	}
	if c.Variant == "" {
		c.Variant = "rtoss-3ep"
	}
	if c.Res <= 0 {
		c.Res = 256
	}
	if c.Backend == "" {
		c.Backend = BackendInProcess
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.EvalIoU <= 0 {
		c.EvalIoU = 0.5
	}
	c.Detect = c.Detect.WithDefaults()
	return c
}

// item is one dataset element: the ground truth, the canonical encoded
// bytes, and the image every in-process backend decodes from them.
type item struct {
	scene kitti.Scene
	ppm   []byte
	img   *tensor.Tensor
}

// backend turns one dataset item into detections in source-image
// pixel coordinates.
type backend interface {
	// detect runs one image through the stack.
	detect(it item) ([]detect.Detection, error)
	// close releases servers/listeners the backend owns.
	close()
}

// Run executes one evaluation: generate the scene set, drive every
// image through the configured backend, and score the detections with
// the real AP evaluator.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	spec, err := resolveSpec(cfg)
	if err != nil {
		return nil, err
	}
	if s := spec.MaxStride(); cfg.Res%s != 0 {
		return nil, fmt.Errorf("eval: resolution %d must be a multiple of the head stride %d", cfg.Res, s)
	}
	cfg.Detect.Spec = spec

	items, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	b, err := newBackend(cfg)
	if err != nil {
		return nil, err
	}
	defer b.close()

	dets := make([][]detect.Detection, len(items))
	lats := make([]time.Duration, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	for i := range items {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			dets[i], errs[i] = b.detect(items[i])
			lats[i] = time.Since(start)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eval: scene %d: %w", i, err)
		}
	}

	samples := make([]metrics.Sample, len(items))
	for i := range items {
		samples[i] = metrics.Sample{Detections: dets[i], Truth: items[i].scene.Truth}
	}
	perClass, mAP := metrics.Evaluate(samples, kitti.NumClasses, cfg.EvalIoU)
	return buildReport(cfg, perClass, mAP, samples, lats), nil
}

// resolveSpec returns the head-decode metadata for the run: the
// explicit Detect.Spec when given, the zoo lookup otherwise.
func resolveSpec(cfg Config) (detect.HeadSpec, error) {
	if len(cfg.Detect.Spec.Levels) > 0 {
		return cfg.Detect.Spec, nil
	}
	return models.HeadByName(cfg.Arch, models.KITTIClasses)
}

// dataset renders the scene set and fixes the canonical wire bytes:
// each image is encoded to PPM once, and the tensor every in-process
// backend consumes is decoded back from those bytes, so all backends
// (including HTTP, which posts the bytes verbatim) see bit-identical
// 8-bit-quantised inputs.
func dataset(cfg Config) ([]item, error) {
	rendered := kitti.RenderedDataset(cfg.Seed, cfg.Scenes, cfg.SceneW, cfg.SceneH)
	items := make([]item, len(rendered))
	for i, rs := range rendered {
		var buf bytes.Buffer
		if err := tensor.EncodePPM(&buf, rs.Image); err != nil {
			return nil, fmt.Errorf("eval: encoding scene %d: %w", i, err)
		}
		img, err := tensor.DecodeImage(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("eval: round-tripping scene %d: %w", i, err)
		}
		items[i] = item{scene: rs.Scene, ppm: buf.Bytes(), img: img}
	}
	return items, nil
}

// buildProgram compiles the model under evaluation: the explicit test
// Program when given, otherwise the shared registry build for
// (arch, variant, mode) — the exact code path `rtoss serve` runs.
func buildProgram(cfg Config) (*engine.Program, error) {
	if cfg.Program != nil {
		return cfg.Program, nil
	}
	return serve.NewRegistry().Program(serve.Key{Arch: cfg.Arch, Variant: cfg.Variant, Mode: cfg.Mode})
}
