package eval

import (
	"fmt"
	"net"
	"net/http"

	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/kitti"
	"rtoss/internal/serve"
	"rtoss/internal/tensor"
)

// backends.go implements the interchangeable evaluation paths. The
// in-process backend runs forwardPipeline (letterbox -> heads ->
// Postprocess) directly; the server and http backends push the
// canonical image bytes through Server.Detect — the batched
// postprocess path — which decodes the same bytes and runs the same
// Postprocess, so a mAP difference between any two backends isolates
// the transport layer, not the math.

// newBackend constructs the configured backend.
func newBackend(cfg Config) (backend, error) {
	switch cfg.Backend {
	case BackendOracle:
		return &oracleBackend{cfg: cfg.Detect, res: cfg.Res}, nil
	case BackendInProcess:
		prog, err := buildProgram(cfg)
		if err != nil {
			return nil, err
		}
		return &inprocessBackend{prog: prog, cfg: cfg.Detect, res: cfg.Res}, nil
	case BackendServer:
		prog, err := buildProgram(cfg)
		if err != nil {
			return nil, err
		}
		return &serverBackend{srv: serve.NewServer(prog, serve.Config{}), cfg: cfg.Detect, res: cfg.Res}, nil
	case BackendHTTP:
		return newHTTPBackend(cfg)
	}
	return nil, fmt.Errorf("eval: unknown backend %q (want %v)", cfg.Backend, Backends())
}

// forwardPipeline is the shared post-transport path: letterbox the
// decoded image onto the model canvas, fetch the head tensors, run the
// standard postprocess.
func forwardPipeline(img *tensor.Tensor, res int, heads func(*tensor.Tensor) ([]*tensor.Tensor, error), cfg detect.Config) ([]detect.Detection, error) {
	canvas, meta := tensor.LetterboxImage(img, res, res, tensor.LetterboxFill)
	hs, err := heads(canvas.Reshape(1, canvas.Dim(0), canvas.Dim(1), canvas.Dim(2)))
	if err != nil {
		return nil, err
	}
	return detect.Postprocess(hs, meta, cfg)
}

// inprocessBackend calls the compiled Program directly — the
// rtoss.Detector path without the public wrapper.
type inprocessBackend struct {
	prog *engine.Program
	cfg  detect.Config
	res  int
}

func (b *inprocessBackend) detect(it item) ([]detect.Detection, error) {
	return forwardPipeline(it.img, b.res, b.prog.Heads, b.cfg)
}

func (b *inprocessBackend) close() {}

// serverBackend routes whole detection requests through a
// micro-batching serve.Server (direct method calls, no sockets): the
// canonical PPM bytes enter Server.Detect, so preprocess, the
// co-batched forward and the pooled decode+NMS all run on the batch
// executors — the same path POST /detect takes. Parity with the
// in-process backend holds bitwise because the executor decodes the
// identical bytes and runs the identical Postprocess.
type serverBackend struct {
	srv *serve.Server
	cfg detect.Config
	res int
}

func (b *serverBackend) detect(it item) ([]detect.Detection, error) {
	res, err := b.srv.Detect(it.ppm, b.cfg, b.res, b.res)
	if err != nil {
		return nil, err
	}
	return res.Detections, nil
}

func (b *serverBackend) close() { b.srv.Close() }

// httpBackend POSTs the canonical PPM bytes to a /detect endpoint.
// Without an external URL it hosts the full serving stack (Server +
// NewHandler) on a loopback listener for the duration of the run.
type httpBackend struct {
	client *serve.Client
	srv    *serve.Server
	hs     *http.Server
}

func newHTTPBackend(cfg Config) (backend, error) {
	b := &httpBackend{
		client: &serve.Client{
			Score: cfg.Detect.ScoreThreshold,
			IoU:   cfg.Detect.IoUThreshold,
		},
	}
	if cfg.URL != "" {
		b.client.BaseURL = cfg.URL
		return b, nil
	}
	prog, err := buildProgram(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("eval: self-hosting detect server: %w", err)
	}
	b.srv = serve.NewServer(prog, serve.Config{})
	pipe := cfg.Detect
	b.hs = &http.Server{Handler: serve.NewHandler(b.srv, serve.HandlerConfig{
		InputC: prog.Model().InputC, InputH: cfg.Res, InputW: cfg.Res,
		Detect: &pipe,
		Labels: kitti.ClassNames[:],
	})}
	go b.hs.Serve(ln)
	b.client.BaseURL = "http://" + ln.Addr().String()
	return b, nil
}

func (b *httpBackend) detect(it item) ([]detect.Detection, error) {
	resp, err := b.client.DetectBytes(it.ppm)
	if err != nil {
		return nil, err
	}
	return resp.Boxes(), nil
}

func (b *httpBackend) close() {
	if b.hs != nil {
		b.hs.Close()
	}
	if b.srv != nil {
		b.srv.Close()
	}
}
