package eval

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rtoss/internal/kitti"
	"rtoss/internal/metrics"
	"rtoss/internal/report"
)

// ClassAP is one class's evaluation outcome.
type ClassAP struct {
	Class      int     `json:"class"`
	Name       string  `json:"name"`
	AP         float64 `json:"ap"`
	Truth      int     `json:"truth"`
	Detections int     `json:"detections"`
}

// LatencySummary is the per-image end-to-end latency distribution of
// an evaluation run, in milliseconds.
type LatencySummary struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Report is one evaluation run's outcome: the configuration echo, the
// accuracy section (per-class AP + mAP, which is deterministic for a
// fixed config and bitwise-comparable across backends), and the
// latency section (which is not — it measures this run's wall clock).
type Report struct {
	Arch    string `json:"arch"`
	Variant string `json:"variant"`
	Mode    string `json:"mode"`
	Backend string `json:"backend"`

	Scenes int    `json:"scenes"`
	Seed   uint64 `json:"seed"`
	SceneW int    `json:"scene_w"`
	SceneH int    `json:"scene_h"`
	Res    int    `json:"res"`

	ScoreThreshold float64 `json:"score_threshold"`
	IoUThreshold   float64 `json:"iou_threshold"`
	EvalIoU        float64 `json:"eval_iou"`

	Objects    int            `json:"objects"`
	Detections int            `json:"detections"`
	MAP        float64        `json:"map"`
	PerClass   []ClassAP      `json:"per_class"`
	Latency    LatencySummary `json:"latency"`
}

// buildReport assembles the report from one run's raw outcomes.
func buildReport(cfg Config, perClass []metrics.APResult, mAP float64, samples []metrics.Sample, lats []time.Duration) *Report {
	r := &Report{
		Arch: cfg.Arch, Variant: cfg.Variant, Mode: cfg.Mode.String(), Backend: cfg.Backend,
		Scenes: cfg.Scenes, Seed: cfg.Seed, SceneW: cfg.SceneW, SceneH: cfg.SceneH, Res: cfg.Res,
		ScoreThreshold: cfg.Detect.ScoreThreshold,
		IoUThreshold:   cfg.Detect.IoUThreshold,
		EvalIoU:        cfg.EvalIoU,
		MAP:            mAP,
		Latency:        summarizeLatency(lats),
	}
	for _, s := range samples {
		r.Detections += len(s.Detections)
		for _, g := range s.Truth {
			if !g.Difficult {
				r.Objects++
			}
		}
	}
	for _, c := range perClass {
		if c.NumTruth == 0 && c.NumDet == 0 {
			continue // class absent from the set: nothing to report
		}
		r.PerClass = append(r.PerClass, ClassAP{
			Class: c.Class, Name: kitti.ClassNames[c.Class],
			AP: c.AP, Truth: c.NumTruth, Detections: c.NumDet,
		})
	}
	return r
}

// summarizeLatency reduces per-image wall times to the report's
// distribution summary (nearest-rank percentiles).
func summarizeLatency(lats []time.Duration) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	ds := append([]time.Duration(nil), lats...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	q := func(p float64) float64 {
		i := int(p*float64(len(ds))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i > len(ds)-1 {
			i = len(ds) - 1
		}
		return ms(ds[i])
	}
	return LatencySummary{
		MeanMS: ms(sum) / float64(len(ds)),
		P50MS:  q(0.50),
		P90MS:  q(0.90),
		P99MS:  q(0.99),
		MaxMS:  ms(ds[len(ds)-1]),
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Render formats the report for a terminal: the run header, the
// per-class AP table, and the accuracy/latency summary lines.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "eval %s/%s/%s via %s: %d scenes (%dx%d, seed %d) at res %d\n",
		r.Arch, r.Variant, r.Mode, r.Backend, r.Scenes, r.SceneW, r.SceneH, r.Seed, r.Res)
	t := &report.Table{
		Title:   fmt.Sprintf("Per-class AP @ IoU %.2f", r.EvalIoU),
		Headers: []string{"Class", "AP", "Truth", "Detections"},
	}
	for _, c := range r.PerClass {
		t.AddRow(c.Name, fmt.Sprintf("%.4f", c.AP), c.Truth, c.Detections)
	}
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "mAP@%.2f = %.6f  (%d objects, %d detections, score>=%.2f, nms-iou %.2f)\n",
		r.EvalIoU, r.MAP, r.Objects, r.Detections, r.ScoreThreshold, r.IoUThreshold)
	fmt.Fprintf(&b, "latency/image: mean %.2f ms, p50 %.2f, p90 %.2f, p99 %.2f, max %.2f\n",
		r.Latency.MeanMS, r.Latency.P50MS, r.Latency.P90MS, r.Latency.P99MS, r.Latency.MaxMS)
	return b.String()
}

// WriteJSON writes the report to a file as indented JSON.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
