package eval

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rtoss/internal/engine"
	"rtoss/internal/kitti"
	"rtoss/internal/tensor"
)

// tinyStreamConfig is the shared streaming test run: 2 streams of a
// dozen 30 fps frames of the tiny 8-class model — small enough for
// tier-1, real enough to exercise pacing, sessions and the EDF
// scheduler end to end.
func tinyStreamConfig(mode engine.Mode) StreamConfig {
	return StreamConfig{
		Streams: 2, Frames: 12, FPS: 30,
		Seed: 5, SceneW: 128, SceneH: 64, Res: 64,
		Detect: tinyConfig().Detect,
	}
}

func runTinyStream(t *testing.T, cfg StreamConfig, mode engine.Mode) *StreamReport {
	t.Helper()
	cfg.Program = tinyProgram(t, mode)
	rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestStreamDeadlineHitRateFloor is the acceptance gate: on the
// rendered 30 fps scene set, with the default budget (four frame
// intervals) and the tiny model, the deadline hit rate must be at
// least 0.99 in dense AND sparse mode. The tiny forward takes well
// under a frame interval, so a lower rate means the scheduler or the
// session layer is sitting on frames.
func TestStreamDeadlineHitRateFloor(t *testing.T) {
	if raceEnabled {
		t.Skip("floor premises service time well under a frame interval; race instrumentation breaks the premise, not the scheduler — stream correctness under race is covered by internal/stream")
	}
	for _, mode := range []engine.Mode{engine.ModeDense, engine.ModeSparse} {
		rep := runTinyStream(t, tinyStreamConfig(mode), mode)
		if rep.FramesIn != uint64(rep.Streams*rep.Frames) {
			t.Fatalf("%v: frames_in %d, want %d", mode, rep.FramesIn, rep.Streams*rep.Frames)
		}
		if rep.DeadlineHitRate < 0.99 {
			t.Errorf("%v: deadline hit rate %.4f below the 0.99 floor (served %d, stale %d, deadline %d, errors %d)",
				mode, rep.DeadlineHitRate, rep.FramesServed, rep.DroppedStale, rep.DroppedDeadline, rep.Errors)
		}
		if rep.Errors != 0 {
			t.Errorf("%v: %d pipeline errors", mode, rep.Errors)
		}
		if got := rep.FramesServed + rep.DroppedStale + rep.DroppedDeadline + rep.Errors; got != rep.FramesIn {
			t.Errorf("%v: outcomes %d != frames_in %d", mode, got, rep.FramesIn)
		}
	}
}

// TestStreamMAPParityWithSingleShot: in lockstep mode (drop-free by
// construction) every served frame's detections must be bitwise
// identical to the in-process forwardPipeline on the same canonical
// bytes, and therefore the streaming mAP must equal the single-shot
// mAP over the same frames. This isolates the entire streaming
// transport — framing, mailbox, EDF admission, batch executors — from
// the math.
func TestStreamMAPParityWithSingleShot(t *testing.T) {
	cfg := tinyStreamConfig(engine.ModeSparse)
	cfg.Lockstep = true
	cfg.Budget = -1 // no deadlines: parity wants every frame served
	prog := tinyProgram(t, engine.ModeSparse)
	cfg.Program = prog
	rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesServed != rep.FramesIn || rep.DroppedStale+rep.DroppedDeadline+rep.Errors != 0 {
		t.Fatalf("lockstep run dropped frames: %+v", rep)
	}
	if rep.Detections == 0 {
		t.Fatal("no detections; parity would be vacuous")
	}

	// Reference: the in-process single-shot pipeline over the same
	// canonical PPM bytes, frame by frame.
	pipe := cfg.Detect.WithDefaults()
	pipe.Spec = tinySpec8()
	total := 0
	for _, o := range rep.Outcomes {
		video := kitti.RenderedSequence(cfg.Seed+uint64(o.Stream), cfg.Frames, cfg.SceneW, cfg.SceneH)
		var buf bytes.Buffer
		if err := tensor.EncodePPM(&buf, video[o.Frame].Image); err != nil {
			t.Fatal(err)
		}
		img, err := tensor.DecodeImage(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := forwardPipeline(img, cfg.Res, prog.Heads, pipe)
		if err != nil {
			t.Fatal(err)
		}
		if len(o.Detections) != len(want) {
			t.Fatalf("stream %d frame %d: %d detections via streaming, %d in process",
				o.Stream, o.Frame, len(o.Detections), len(want))
		}
		for j := range want {
			if o.Detections[j] != want[j] {
				t.Fatalf("stream %d frame %d detection %d: %v != %v (bitwise parity broken)",
					o.Stream, o.Frame, j, o.Detections[j], want[j])
			}
		}
		total += len(want)
	}
	if total != rep.Detections {
		t.Fatalf("outcome detections %d != report total %d", total, rep.Detections)
	}
}

// TestStreamOverloadDegradesByDropping: with a budget far below the
// tiny model's service time... impossible — the tiny model is too
// fast. Instead force overload the honest way: a 1ms budget anchored
// at capture with frames pushed as fast as possible makes slack
// negative for queued frames, so the run must shed (stale or
// deadline) rather than error, and the frames it does serve must
// still score.
func TestStreamOverloadDegradesByDropping(t *testing.T) {
	cfg := tinyStreamConfig(engine.ModeSparse)
	cfg.Frames = 40
	cfg.FPS = 100000 // effectively unpaced: floods the mailbox
	cfg.Budget = time.Microsecond
	rep := runTinyStream(t, cfg, engine.ModeSparse)
	if got := rep.FramesServed + rep.DroppedStale + rep.DroppedDeadline + rep.Errors; got != rep.FramesIn {
		t.Fatalf("outcomes %d != frames_in %d", got, rep.FramesIn)
	}
	if rep.Errors != 0 {
		t.Fatalf("overload produced %d errors; it must shed, not fail", rep.Errors)
	}
	if rep.DroppedStale+rep.DroppedDeadline == 0 {
		t.Fatal("microsecond budget at 100k fps dropped nothing; the shed policy is not engaging")
	}
	if rep.DropRate <= 0 || rep.DropRate > 1 {
		t.Fatalf("drop rate %v out of range", rep.DropRate)
	}
}

// TestStreamReportJSONKeys: the report is part of the CLI surface
// (`rtoss stream` prints it); pin the headline keys.
func TestStreamReportJSONKeys(t *testing.T) {
	rep := runTinyStream(t, tinyStreamConfig(engine.ModeSparse), engine.ModeSparse)
	doc := fmt.Sprintf("%+v", *rep)
	_ = doc
	if rep.BudgetMS <= 0 {
		t.Error("default budget missing from report")
	}
	if rep.Streams != 2 || rep.Frames != 12 {
		t.Errorf("report echoes wrong run shape: %d streams x %d frames", rep.Streams, rep.Frames)
	}
}
