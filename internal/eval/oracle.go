package eval

import (
	"fmt"
	"math"
	"sort"

	"rtoss/internal/detect"
	"rtoss/internal/kitti"
	"rtoss/internal/tensor"
)

// oracle.go synthesises detection-head tensors straight from ground
// truth: the exact inverse of the YOLOv5 decode. Running them through
// the unmodified decode -> NMS -> un-letterbox pipeline must recover
// the annotated boxes almost perfectly, so the oracle backend's mAP is
// ~1.0 by construction — and any regression in head decoding, NMS or
// the letterbox round trip drags it toward zero, failing the floor
// test loudly. The network itself is deliberately out of the loop
// (synthetic weights carry no trained signal to score).

const (
	// oracleObjLogit fills unoccupied objectness cells: sigmoid(-12)
	// ~ 6e-6, below any sane score threshold.
	oracleObjLogit = -12
	// oracleConf is the encoded objectness of every ground-truth box.
	oracleConf = 0.98
	// oracleClassLogit marks the true class channel: sigmoid(9.2)
	// ~ 0.9999, far above the 0.5 of the untouched channels.
	oracleClassLogit = 9.2
	// maxAnchorRatio bounds the encodable size ratio: the decode's
	// (2*sigmoid)^2 parameterisation cannot express boxes >= 4x the
	// anchor (3.96 leaves float32 headroom below the asymptote).
	maxAnchorRatio = 3.96
)

// oracleBackend replaces the network with the ground-truth encoder and
// runs only the post-network pipeline.
type oracleBackend struct {
	cfg detect.Config
	res int
}

func (b *oracleBackend) detect(it item) ([]detect.Detection, error) {
	// Letterboxing the real image (not just computing its metadata)
	// keeps the exact transform under test in the loop.
	_, meta := tensor.LetterboxImage(it.img, b.res, b.res, tensor.LetterboxFill)
	heads, err := oracleHeads(it.scene, meta, b.cfg.Spec)
	if err != nil {
		return nil, err
	}
	return detect.Postprocess(heads, meta, b.cfg)
}

func (b *oracleBackend) close() {}

// oracleHeads encodes a scene's ground truth into YOLO head tensors on
// the letterboxed canvas. Each object is mapped to model space, then
// written into the best shape-matching free (level, anchor, cell) slot
// by inverting the decode equations; objects that collide on every
// candidate slot are skipped (a miss the mAP floor tolerates).
func oracleHeads(scene kitti.Scene, meta tensor.LetterboxMeta, spec detect.HeadSpec) ([]*tensor.Tensor, error) {
	if spec.Kind != detect.HeadYOLOv5 {
		return nil, fmt.Errorf("eval: the oracle backend encodes YOLO heads only (got %v)", spec.Kind)
	}
	per := 5 + spec.Classes
	heads := make([]*tensor.Tensor, len(spec.Levels))
	used := make([]map[int]bool, len(spec.Levels))
	for li, lv := range spec.Levels {
		gh, gw := meta.DstH/lv.Stride, meta.DstW/lv.Stride
		h := tensor.New(len(lv.Anchors)*per, gh, gw)
		plane := gh * gw
		for ai := range lv.Anchors {
			obj := h.Data[ai*per*plane+4*plane:]
			for c := 0; c < plane; c++ {
				obj[c] = oracleObjLogit
			}
		}
		heads[li] = h
		used[li] = map[int]bool{}
	}
	for _, g := range scene.Truth {
		x1, y1 := meta.ToModel(g.Box.X1, g.Box.Y1)
		x2, y2 := meta.ToModel(g.Box.X2, g.Box.Y2)
		cx, cy := (x1+x2)/2, (y1+y2)/2
		w, h := x2-x1, y2-y1
		if w <= 0 || h <= 0 {
			continue
		}
		type slot struct {
			li, ai int
			fit    float64
		}
		var cands []slot
		for li, lv := range spec.Levels {
			for ai, a := range lv.Anchors {
				if w >= maxAnchorRatio*a[0] || h >= maxAnchorRatio*a[1] {
					continue
				}
				fit := math.Abs(math.Log(w/a[0])) + math.Abs(math.Log(h/a[1]))
				cands = append(cands, slot{li, ai, fit})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].fit < cands[j].fit })
		for _, c := range cands {
			lv := spec.Levels[c.li]
			stride := float64(lv.Stride)
			gh, gw := meta.DstH/lv.Stride, meta.DstW/lv.Stride
			plane := gh * gw
			gx, gy := clampGrid(cx/stride, gw), clampGrid(cy/stride, gh)
			offX, offY := cx/stride-float64(gx), cy/stride-float64(gy)
			// The decode's 2*sigmoid-0.5 offset only spans (-0.5, 1.5).
			if offX <= -0.499 || offX >= 1.499 || offY <= -0.499 || offY >= 1.499 {
				continue
			}
			cell := gy*gw + gx
			if key := c.ai*plane + cell; used[c.li][key] {
				continue
			} else {
				used[c.li][key] = true
			}
			data := heads[c.li].Data[c.ai*per*plane:]
			data[0*plane+cell] = float32(logit((offX + 0.5) / 2))
			data[1*plane+cell] = float32(logit((offY + 0.5) / 2))
			data[2*plane+cell] = float32(logit(math.Sqrt(w/lv.Anchors[c.ai][0]) / 2))
			data[3*plane+cell] = float32(logit(math.Sqrt(h/lv.Anchors[c.ai][1]) / 2))
			data[4*plane+cell] = float32(logit(oracleConf))
			data[(5+g.Class)*plane+cell] = oracleClassLogit
			break
		}
	}
	return heads, nil
}

// clampGrid floors a grid coordinate into [0, n-1].
func clampGrid(v float64, n int) int {
	g := int(math.Floor(v))
	if g < 0 {
		return 0
	}
	if g > n-1 {
		return n - 1
	}
	return g
}

// logit is the sigmoid inverse on (0, 1).
func logit(p float64) float64 { return math.Log(p / (1 - p)) }
