package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rtoss/internal/core"
	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/nn"
	"rtoss/internal/serve"
	"rtoss/internal/tensor"
)

// tinyProgram compiles the same small pruned detector the serve tests
// use (2 classes, 14-channel stride-4 head) so session tests stay
// cheap.
func tinyProgram(t testing.TB) *engine.Program {
	t.Helper()
	b := nn.NewBuilder("tinydet", 3, 32, 32, 2)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 8, 3, 2, 1, nn.SiLU)
	c3 := b.C3("c3", x, 8, 8, 1, true, nn.SiLU)
	x = b.ConvBNAct("down", c3, 8, 16, 3, 2, 1, nn.SiLU)
	head := b.Conv("head", x, 16, 14, 1, 1, 0, true)
	b.Detect("detect", head)
	m := b.MustBuild()
	m.InitWeights(3)
	if _, err := core.NewVariant(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	p, err := engine.Compile(m, engine.Options{Mode: engine.ModeSparse})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tinySpec() detect.HeadSpec {
	return detect.HeadSpec{
		Kind:    detect.HeadYOLOv5,
		Classes: 2,
		Levels:  []detect.HeadLevel{{Stride: 4, Anchors: [][2]float64{{8, 8}, {16, 16}}}},
	}
}

// samplePPM encodes a deterministic test frame.
func samplePPM(t testing.TB) []byte {
	t.Helper()
	img := tensor.New(3, 24, 48)
	for i := range img.Data {
		img.Data[i] = float32(i%23) / 23
	}
	var buf bytes.Buffer
	if err := tensor.EncodePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestHub(t testing.TB, cfg Config) (*serve.Server, *Hub) {
	t.Helper()
	srv := serve.NewServer(tinyProgram(t), serve.Config{})
	if cfg.Pipe.Spec.Classes == 0 {
		cfg.Pipe = detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05}
	}
	if cfg.ResH == 0 {
		cfg.ResH, cfg.ResW = 32, 32
	}
	hub := NewHub(srv, cfg)
	t.Cleanup(func() { hub.Close(); srv.Close() })
	return srv, hub
}

// TestSessionServesInOrder: a lockstep pusher (next frame only after
// the previous resolved) gets every frame served, in capture order,
// with detections identical to the direct Server.Detect path.
func TestSessionServesInOrder(t *testing.T) {
	srv, hub := newTestHub(t, Config{})
	ppm := samplePPM(t)
	pipe := detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05}
	want, err := srv.Detect(ppm, pipe, 32, 32)
	if err != nil {
		t.Fatal(err)
	}

	results := make(chan Result, 16)
	sess, err := hub.Open(SessionConfig{OnResult: func(r Result) { results <- r }})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 8
	for i := 0; i < frames; i++ {
		if err := sess.Push(ppm); err != nil {
			t.Fatal(err)
		}
		r := <-results
		if r.Err != nil {
			t.Fatalf("frame %d: %v", i, r.Err)
		}
		if r.Seq != uint64(i+1) {
			t.Fatalf("frame %d resolved with seq %d", i, r.Seq)
		}
		if len(r.Det.Detections) != len(want.Detections) {
			t.Fatalf("frame %d: %d detections, direct path %d", i, len(r.Det.Detections), len(want.Detections))
		}
		for j, d := range r.Det.Detections {
			if d != want.Detections[j] {
				t.Fatalf("frame %d detection %d differs from direct path", i, j)
			}
		}
	}
	sess.Close()
	sum := sess.Summary()
	if sum.FramesIn != frames || sum.FramesServed != frames || sum.DroppedStale != 0 {
		t.Fatalf("summary %+v, want %d in / %d served / 0 dropped", sum, frames, frames)
	}
	if sum.DeadlineHitRate != 1 {
		t.Fatalf("hit rate %v, want 1 (no deadlines)", sum.DeadlineHitRate)
	}
}

// TestSessionNewestFrameWins pins the mailbox drop policy
// deterministically: the pump is parked inside the OnResult callback
// while two more frames arrive, so the middle frame must be evicted by
// the newest and resolve as superseded, never served. The gate only
// blocks the pump (seq 1); the eviction callback arrives on the
// pushing goroutine and must not block.
func TestSessionNewestFrameWins(t *testing.T) {
	_, hub := newTestHub(t, Config{})
	ppm := samplePPM(t)

	results := make(chan Result, 16)
	entered := make(chan struct{})
	gate := make(chan struct{})
	sess, err := hub.Open(SessionConfig{OnResult: func(r Result) {
		results <- r
		if r.Seq == 1 {
			close(entered)
			<-gate
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(ppm); err != nil { // seq 1: served, parks the pump
		t.Fatal(err)
	}
	<-entered
	if err := sess.Push(ppm); err != nil { // seq 2: waits in the mailbox
		t.Fatal(err)
	}
	if err := sess.Push(ppm); err != nil { // seq 3: evicts seq 2
		t.Fatal(err)
	}
	close(gate)
	sess.Close() // serves the final mailbox frame (seq 3)

	got := map[uint64]error{}
	for i := 0; i < 3; i++ {
		r := <-results
		got[r.Seq] = r.Err
	}
	if got[1] != nil {
		t.Fatalf("seq 1: %v, want served", got[1])
	}
	if !errors.Is(got[2], serve.ErrSuperseded) {
		t.Fatalf("seq 2: %v, want ErrSuperseded (newest-frame-wins)", got[2])
	}
	if got[3] != nil {
		t.Fatalf("seq 3: %v, want served", got[3])
	}
	sum := sess.Summary()
	if sum.FramesServed != 2 || sum.DroppedStale != 1 {
		t.Fatalf("summary %+v, want 2 served / 1 dropped stale", sum)
	}
}

// TestSessionConservation: on an arbitrary overlapped pushing pattern,
// every pushed frame resolves to exactly one outcome and the counters
// add up.
func TestSessionConservation(t *testing.T) {
	_, hub := newTestHub(t, Config{})
	ppm := samplePPM(t)
	var mu sync.Mutex
	seen := map[uint64]int{}
	sess, err := hub.Open(SessionConfig{OnResult: func(r Result) {
		mu.Lock()
		seen[r.Seq]++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 200
	for i := 0; i < frames; i++ {
		if err := sess.Push(ppm); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	sum := sess.Summary()
	if sum.FramesIn != frames {
		t.Fatalf("frames_in %d, want %d", sum.FramesIn, frames)
	}
	if got := sum.FramesServed + sum.DroppedStale + sum.DroppedDeadline + sum.Errors; got != frames {
		t.Fatalf("outcomes %d (served %d + stale %d + deadline %d + errors %d) != pushed %d",
			got, sum.FramesServed, sum.DroppedStale, sum.DroppedDeadline, sum.Errors, frames)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != frames {
		t.Fatalf("%d distinct seqs resolved, want %d", len(seen), frames)
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d resolved %d times", seq, n)
		}
	}
}

// TestPushAfterClose: a closed session refuses frames.
func TestPushAfterClose(t *testing.T) {
	_, hub := newTestHub(t, Config{})
	sess, err := hub.Open(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if err := sess.Push(samplePPM(t)); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("Push after Close: %v, want ErrHubClosed", err)
	}
	hub.Close()
	if _, err := hub.Open(SessionConfig{}); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("Open after hub Close: %v, want ErrHubClosed", err)
	}
}

// TestStreamHTTP drives POST /stream end-to-end in both wire formats
// and checks the JSON summary conserves frames, then checks the merged
// GET /stats document carries the stream counters.
func TestStreamHTTP(t *testing.T) {
	srv, hub := newTestHub(t, Config{})
	mux := http.NewServeMux()
	mux.Handle("/stream", hub.Handler())
	mux.Handle("/", serve.NewHandler(srv, serve.HandlerConfig{
		InputC: 3, InputH: 32, InputW: 32,
		Detect:     &detect.Config{Spec: tinySpec(), ScoreThreshold: 0.05},
		ExtraStats: hub.StatsMap,
	}))
	ts := httptest.NewServer(mux)
	defer ts.Close()
	ppm := samplePPM(t)

	var multi []byte
	for i := 0; i < 3; i++ {
		multi = AppendMultipartFrame(multi, "frame", ppm)
	}
	multi = FinishMultipart(multi, "frame")
	var raw []byte
	for i := 0; i < 3; i++ {
		raw = AppendRawFrame(raw, ppm)
	}
	raw = FinishRaw(raw)

	for _, tc := range []struct {
		name, ctype string
		body        []byte
	}{
		{"multipart", MultipartContentType("frame"), multi},
		{"raw", RawContentType, raw},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/stream?budget_ms=60000", tc.ctype, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			var sr StreamResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				t.Fatal(err)
			}
			if sr.FramesIn != 3 {
				t.Fatalf("frames_in %d, want 3", sr.FramesIn)
			}
			if got := sr.FramesServed + sr.DroppedStale + sr.DroppedDeadline + sr.Errors; got != 3 {
				t.Fatalf("outcomes %d != 3 (%+v)", got, sr.Summary)
			}
			if sr.FramesServed == 0 {
				t.Fatal("no frames served; the final frame must always be served")
			}
			if sr.Errors != 0 {
				t.Fatalf("%d pipeline errors", sr.Errors)
			}
		})
	}

	// Malformed body → 400; unsupported content type → 415; bad budget → 400.
	resp, err := http.Post(ts.URL+"/stream", MultipartContentType("frame"), bytes.NewReader(multi[:20]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated stream: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/stream", "video/mp4", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("bad content type: status %d, want 415", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/stream?budget_ms=-5", RawContentType, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad budget: status %d, want 400", resp.StatusCode)
	}

	// The merged /stats document must carry the stream section with
	// consistent counters.
	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(statsResp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	streams, ok := doc["streams"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no streams section: %v", doc)
	}
	for _, key := range []string{"frames_in", "frames_served", "dropped_stale", "dropped_deadline", "deadline_hit_rate", "avg_serve_ms", "active", "opened"} {
		if _, ok := streams[key]; !ok {
			t.Errorf("/stats streams section missing %q", key)
		}
	}
	if got := streams["frames_in"].(float64); got != 6 {
		t.Errorf("stats frames_in %v, want 6 (two 3-frame streams)", got)
	}
	if got := streams["active"].(float64); got != 0 {
		t.Errorf("stats active %v, want 0 after streams closed", got)
	}
}

// TestSessionBudgetOverride: the per-session budget reaches the serve
// scheduler — an already-expired budget means the frame is shed with
// ErrDeadline, and both the session and the hub count it.
func TestSessionBudgetOverride(t *testing.T) {
	_, hub := newTestHub(t, Config{})
	// A clock frozen far enough in the past that capture+budget is
	// always already expired against the server's real clock.
	hub.cfg.clock = func() time.Time { return time.Now().Add(-time.Hour) }
	results := make(chan Result, 1)
	sess, err := hub.Open(SessionConfig{
		Budget:   time.Millisecond,
		OnResult: func(r Result) { results <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(samplePPM(t)); err != nil {
		t.Fatal(err)
	}
	r := <-results
	if !errors.Is(r.Err, serve.ErrDeadline) {
		t.Fatalf("expired-budget frame resolved %v, want ErrDeadline", r.Err)
	}
	sess.Close()
	if sum := sess.Summary(); sum.DroppedDeadline != 1 || sum.DeadlineHitRate != 0 {
		t.Fatalf("summary %+v, want 1 deadline drop and hit rate 0", sum)
	}
	if hubSum := hub.Stats(); hubSum.DroppedDeadline != 1 {
		t.Fatalf("hub summary %+v, want the deadline drop mirrored", hubSum)
	}
}
