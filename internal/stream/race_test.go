package stream

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// race_test.go hammers the session machinery under the race detector
// (this package is in the CI race matrix): concurrent pushes into many
// sessions, sessions closed mid-push, stats snapshots taken
// throughout, HTTP clients disconnecting mid-stream, and finally the
// hub and server torn down while traffic is still arriving. The
// assertions are deliberately weak — no panics, no deadlocks, no
// torn counters — because the schedule is adversarial by design.

// TestRaceConcurrentSessions: many sessions, each pushed by two
// goroutines while a third closes it halfway, with stats readers
// spinning the whole time.
func TestRaceConcurrentSessions(t *testing.T) {
	_, hub := newTestHub(t, Config{})
	ppm := samplePPM(t)

	const sessions = 8
	const pushes = 30
	var wg, statsWG sync.WaitGroup
	stop := make(chan struct{})
	// Stats readers: snapshots must be consistent at any instant. They
	// run until the workload drains, on their own WaitGroup.
	for i := 0; i < 2; i++ {
		statsWG.Add(1)
		go func() {
			defer statsWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sum := hub.Stats()
				if out := sum.FramesServed + sum.DroppedStale + sum.DroppedDeadline + sum.Errors; out > sum.FramesIn {
					panic("stats: more outcomes than pushed frames")
				}
				hub.StatsMap()
			}
		}()
	}
	for i := 0; i < sessions; i++ {
		sess, err := hub.Open(SessionConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 2; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < pushes; j++ {
					if err := sess.Push(ppm); err != nil {
						return // session closed underneath us: expected
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess.Close()
		}()
	}
	wg.Wait()
	close(stop)
	statsWG.Wait()
	hub.Close()

	sum := hub.Stats()
	if out := sum.FramesServed + sum.DroppedStale + sum.DroppedDeadline + sum.Errors; out != sum.FramesIn {
		t.Fatalf("after close: outcomes %d != frames_in %d (%+v)", out, sum.FramesIn, sum)
	}
	if hub.Active() != 0 {
		t.Fatalf("%d sessions still active after Close", hub.Active())
	}
}

// TestRaceServerCloseUnderTraffic: the serve.Server is torn down while
// sessions are still pushing; pushes must drain as errors or drops,
// never hang or panic.
func TestRaceServerCloseUnderTraffic(t *testing.T) {
	srv, hub := newTestHub(t, Config{})
	ppm := samplePPM(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		sess, err := hub.Open(SessionConfig{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sess.Close()
			for j := 0; j < 50; j++ {
				if err := sess.Push(ppm); err != nil {
					return
				}
			}
		}()
	}
	srv.Close() // rug-pull the executor mid-traffic
	wg.Wait()
	hub.Close()
	sum := hub.Stats()
	if out := sum.FramesServed + sum.DroppedStale + sum.DroppedDeadline + sum.Errors; out != sum.FramesIn {
		t.Fatalf("outcomes %d != frames_in %d (%+v)", out, sum.FramesIn, sum)
	}
}

// TestRaceHTTPDisconnect: HTTP streaming clients that vanish
// mid-stream (no terminator, closed connection) while other clients
// stream cleanly.
func TestRaceHTTPDisconnect(t *testing.T) {
	_, hub := newTestHub(t, Config{})
	ts := httptest.NewServer(hub.Handler())
	defer ts.Close()
	ppm := samplePPM(t)

	clean := FinishRaw(AppendRawFrame(AppendRawFrame(nil, ppm), ppm))
	torn := AppendRawFrame(AppendRawFrame(nil, ppm), ppm) // no terminator
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		body := clean
		if i%2 == 1 {
			body = torn[:len(torn)-5]
		}
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/stream", RawContentType, bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(body)
	}
	wg.Wait()
	hub.Close()
	sum := hub.Stats()
	if out := sum.FramesServed + sum.DroppedStale + sum.DroppedDeadline + sum.Errors; out != sum.FramesIn {
		t.Fatalf("outcomes %d != frames_in %d (%+v)", out, sum.FramesIn, sum)
	}
}
