package stream

import (
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"
	"strconv"
	"time"

	"rtoss/internal/faultinject"
)

// errInjectedDisconnect is the chaos stand-in for a client connection
// that died mid-sequence; the handler answers 400 like any truncated
// upload.
var errInjectedDisconnect = errors.New("stream: injected mid-frame disconnect")

// http.go mounts the hub on the HTTP front end. POST /stream ingests a
// whole frame sequence on one connection — multipart/x-mixed-replace
// (MJPEG convention) or application/x-rtoss-frames (length-prefixed) —
// pushing each frame into a fresh session as it arrives. Backpressure
// never stalls the connection: a frame that arrives while the previous
// one is still unserved replaces it (newest-frame-wins). When the
// sequence ends the session is closed and a JSON summary of the
// stream's counters is returned; a malformed or truncated sequence
// gets a 400 with the framing error. The per-frame deadline budget
// comes from ?budget_ms (falling back to the hub default).

// maxBudgetMS caps ?budget_ms at one hour.
const maxBudgetMS = 3_600_000

// StreamResponse is the POST /stream response body: the session's
// counter summary once the sequence has fully drained.
type StreamResponse struct {
	Stream uint64 `json:"stream"`
	Summary
}

// Handler serves POST /stream against the hub.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /stream", h.handleStream)
	return mux
}

func (h *Hub) handleStream(w http.ResponseWriter, r *http.Request) {
	framer, err := framerFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnsupportedMediaType)
		return
	}
	budget, err := queryBudget(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sess, err := h.Open(SessionConfig{Budget: budget})
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	var ferr error
	for {
		var img []byte
		img, ferr = framer.Next()
		if ferr != nil {
			break
		}
		// Chaos: a mid-frame disconnect looks exactly like a client
		// whose connection died between frames — the session closes,
		// drains its in-flight frame, and the conservation counters
		// must still balance.
		if h.cfg.FaultInjector.Should(faultinject.PointStreamDisconnect) {
			ferr = errInjectedDisconnect
			break
		}
		if err := sess.Push(img); err != nil {
			ferr = err
			break
		}
	}
	// Close drains the in-flight frame so the summary is final.
	sess.Close()
	if ferr != io.EOF {
		status := http.StatusBadRequest
		if errors.Is(ferr, ErrHubClosed) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, ferr.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(StreamResponse{Stream: sess.ID(), Summary: sess.Summary()})
}

// framerFor picks the frame parser from the request Content-Type.
func framerFor(r *http.Request) (*Framer, error) {
	ct := r.Header.Get("Content-Type")
	mt, params, err := mime.ParseMediaType(ct)
	if err != nil {
		return nil, errors.New("stream: missing or malformed Content-Type")
	}
	switch mt {
	case "multipart/x-mixed-replace", "multipart/mixed":
		boundary := params["boundary"]
		if boundary == "" {
			return nil, errors.New("stream: multipart Content-Type without boundary")
		}
		return NewMultipartFramer(r.Body, boundary), nil
	case RawContentType:
		return NewRawFramer(r.Body), nil
	default:
		return nil, errors.New("stream: unsupported Content-Type " + mt)
	}
}

func queryBudget(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("budget_ms")
	if raw == "" {
		return 0, nil
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms <= 0 || ms > maxBudgetMS {
		return 0, errors.New("stream: budget_ms must be an integer in (0, 3600000]")
	}
	return time.Duration(ms) * time.Millisecond, nil
}
