package stream

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rtoss/internal/faultinject"
)

// TestStreamInjectedMidFrameDisconnect: an injected disconnect between
// frames must close the session like a real dead connection — 400 to
// the uploader, the in-flight frame drained, and the hub's frame
// conservation intact (frames_in == served + stale + deadline +
// errors). Frames after the cut never count as ingested.
func TestStreamInjectedMidFrameDisconnect(t *testing.T) {
	_, hub := newTestHub(t, Config{
		FaultInjector: faultinject.New(1, faultinject.Plan{
			// After: 2 lets two frames through, then the third draw fires.
			faultinject.PointStreamDisconnect: {P: 1, After: 2, Max: 1},
		}),
	})
	ts := httptest.NewServer(hub.Handler())
	defer ts.Close()
	ppm := samplePPM(t)

	var raw []byte
	for i := 0; i < 6; i++ {
		raw = AppendRawFrame(raw, ppm)
	}
	raw = FinishRaw(raw)

	resp, err := http.Post(ts.URL+"/stream?budget_ms=60000", RawContentType, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("disconnected stream answered %d, want 400", resp.StatusCode)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if !strings.Contains(body.String(), "disconnect") {
		t.Fatalf("400 body %q does not name the disconnect", body.String())
	}

	sum := hub.Stats()
	if sum.FramesIn != 2 {
		t.Fatalf("frames_in = %d, want 2 (the cut lands before the third push)", sum.FramesIn)
	}
	if got := sum.FramesServed + sum.DroppedStale + sum.DroppedDeadline + sum.Errors; got != sum.FramesIn {
		t.Fatalf("conservation broken after disconnect: outcomes %d != frames_in %d (%+v)", got, sum.FramesIn, sum)
	}
	if hub.Active() != 0 {
		t.Fatalf("%d sessions still open after the disconnect", hub.Active())
	}

	// The injector is exhausted (Max: 1): the next upload of the same
	// bytes completes cleanly on the same hub.
	resp2, err := http.Post(ts.URL+"/stream?budget_ms=60000", RawContentType, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect stream answered %d, want 200", resp2.StatusCode)
	}
}
