package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"
)

// framing_test.go pins the frame parsers against their own encoders
// and against hand-built malformed inputs. Every multipart case also
// runs through a one-byte-at-a-time reader so the incremental fill
// paths (partial lines, split delimiters) are exercised, not just the
// whole-buffer fast path.

func testFrames() [][]byte {
	return [][]byte{
		[]byte("first frame bytes"),
		bytes.Repeat([]byte{0xAB, 0x00, '\r', '\n', '-'}, 2000), // binary, delimiter-ish bytes
		[]byte("z"),
	}
}

// collect drains a framer, copying each frame (Next reuses buffers).
func collect(f *Framer) ([][]byte, error) {
	var out [][]byte
	for {
		frame, err := f.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, append([]byte(nil), frame...))
	}
}

func checkFrames(t *testing.T, got [][]byte, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d mismatch: %d bytes vs %d bytes", i, len(got[i]), len(want[i]))
		}
	}
}

func TestMultipartRoundTrip(t *testing.T) {
	frames := testFrames()
	var body []byte
	for _, fr := range frames {
		body = AppendMultipartFrame(body, "rtossframe", fr)
	}
	body = FinishMultipart(body, "rtossframe")

	for _, tc := range []struct {
		name string
		r    io.Reader
	}{
		{"whole", bytes.NewReader(body)},
		{"one-byte", iotest.OneByteReader(bytes.NewReader(body))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := collect(NewMultipartFramer(tc.r, "rtossframe"))
			if err != nil {
				t.Fatal(err)
			}
			checkFrames(t, got, frames)
		})
	}
}

// TestMultipartNoContentLength: parts without Content-Length fall back
// to delimiter scanning, including bodies containing near-boundary
// byte runs.
func TestMultipartNoContentLength(t *testing.T) {
	frames := testFrames()
	var body bytes.Buffer
	for _, fr := range frames {
		body.WriteString("--b\r\nContent-Type: application/octet-stream\r\n\r\n")
		body.Write(fr)
		body.WriteString("\r\n")
	}
	body.WriteString("--b--\r\n")
	for _, tc := range []struct {
		name string
		r    io.Reader
	}{
		{"whole", bytes.NewReader(body.Bytes())},
		{"one-byte", iotest.OneByteReader(bytes.NewReader(body.Bytes()))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := collect(NewMultipartFramer(tc.r, "b"))
			if err != nil {
				t.Fatal(err)
			}
			checkFrames(t, got, frames)
		})
	}
}

// TestMultipartPreamble: bytes before the first boundary are skipped,
// per MIME convention.
func TestMultipartPreamble(t *testing.T) {
	body := []byte("ignore me\r\nand me\r\n--b\r\n\r\npayload\r\n--b--\r\n")
	got, err := collect(NewMultipartFramer(bytes.NewReader(body), "b"))
	if err != nil {
		t.Fatal(err)
	}
	checkFrames(t, got, [][]byte{[]byte("payload")})
}

func TestMultipartErrors(t *testing.T) {
	valid := FinishMultipart(AppendMultipartFrame(nil, "b", []byte("x")), "b")
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"truncated boundary", valid[:len(valid)-6], ErrTruncated},
		{"truncated mid-body", AppendMultipartFrame(nil, "b", []byte("hello"))[:20], ErrTruncated},
		{"zero-length part", []byte("--b\r\nContent-Length: 0\r\n\r\n\r\n--b--\r\n"), ErrEmptyFrame},
		{"zero-length scanned part", []byte("--b\r\n\r\n\r\n--b--\r\n"), ErrEmptyFrame},
		{"oversized header line", append(append([]byte("--b\r\nX-Pad: "), bytes.Repeat([]byte{'a'}, maxPartHeader+10)...), "\r\n\r\nx\r\n--b--\r\n"...), ErrHeaderTooLarge},
		{"oversized content-length", []byte("--b\r\nContent-Length: 99999999999999\r\n\r\nx\r\n--b--\r\n"), ErrFrameTooLarge},
		{"bad content-length", []byte("--b\r\nContent-Length: 12abc\r\n\r\nx\r\n--b--\r\n"), ErrBadFraming},
		{"body boundary mismatch", []byte("--b\r\nContent-Length: 1\r\n\r\nxJUNK\r\n--b--\r\n"), ErrBadFraming},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := collect(NewMultipartFramer(bytes.NewReader(tc.body), "b"))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			// A failed framer stays failed.
			f := NewMultipartFramer(bytes.NewReader(tc.body), "b")
			for i := 0; i < 3; i++ {
				if _, err := f.Next(); err != nil {
					if _, err2 := f.Next(); err2 != io.EOF {
						t.Fatalf("Next after error returned %v, want io.EOF", err2)
					}
					return
				}
			}
		})
	}
}

func TestRawRoundTrip(t *testing.T) {
	frames := testFrames()
	var body []byte
	for _, fr := range frames {
		body = AppendRawFrame(body, fr)
	}
	body = FinishRaw(body)
	got, err := collect(NewRawFramer(iotest.OneByteReader(bytes.NewReader(body))))
	if err != nil {
		t.Fatal(err)
	}
	checkFrames(t, got, frames)
}

func TestRawErrors(t *testing.T) {
	full := FinishRaw(AppendRawFrame(nil, []byte("abcdef")))
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"no terminator", AppendRawFrame(nil, []byte("abcdef")), ErrTruncated},
		{"truncated length", full[:4], ErrTruncated},
		{"truncated body", full[:10], ErrTruncated},
		{"oversized length", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, ErrFrameTooLarge},
		{"empty input", nil, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := collect(NewRawFramer(bytes.NewReader(tc.body)))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestFrameTooLargeScanned: a Content-Length-less body larger than
// MaxFrameBytes fails without the terminating boundary ever arriving.
func TestFrameTooLargeScanned(t *testing.T) {
	header := []byte("--b\r\n\r\n")
	r := io.MultiReader(
		bytes.NewReader(header),
		&zeroReader{n: MaxFrameBytes + (1 << 20)},
	)
	_, err := collect(NewMultipartFramer(r, "b"))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

// zeroReader yields n zero bytes.
type zeroReader struct{ n int }

func (z *zeroReader) Read(p []byte) (int, error) {
	if z.n == 0 {
		return 0, io.EOF
	}
	if len(p) > z.n {
		p = p[:z.n]
	}
	for i := range p {
		p[i] = 0
	}
	z.n -= len(p)
	return len(p), nil
}
