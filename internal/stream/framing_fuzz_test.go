package stream

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"
)

// FuzzStreamFraming throws arbitrary bytes at both frame parsers — the
// POST /stream attack surface. The parsers must never panic, never
// return a frame larger than MaxFrameBytes, always terminate within a
// bounded number of frames for bounded input, and behave identically
// whether the input arrives in one read or one byte at a time. The
// seed corpus covers the interesting malformed shapes: truncated
// boundary, oversized frame header, zero-length part, bogus
// content-length, bare terminator, and valid streams of both formats.
func FuzzStreamFraming(f *testing.F) {
	// Valid two-frame multipart stream.
	valid := AppendMultipartFrame(nil, "b", []byte("frame-one"))
	valid = AppendMultipartFrame(valid, "b", []byte("frame-two"))
	valid = FinishMultipart(valid, "b")
	f.Add(valid, true)
	// Truncated boundary: terminator cut mid-token.
	f.Add(valid[:len(valid)-4], true)
	// Oversized part header.
	f.Add(append([]byte("--b\r\nX: "), bytes.Repeat([]byte{'h'}, maxPartHeader+64)...), true)
	// Zero-length part, explicit and scanned.
	f.Add([]byte("--b\r\nContent-Length: 0\r\n\r\n\r\n--b--\r\n"), true)
	f.Add([]byte("--b\r\n\r\n\r\n--b--\r\n"), true)
	// Huge/absurd Content-Length values.
	f.Add([]byte("--b\r\nContent-Length: 184467440737095516150\r\n\r\nx\r\n--b--\r\n"), true)
	f.Add([]byte("--b\r\nContent-Length: 17000000\r\n\r\nx\r\n--b--\r\n"), true)
	// Bare terminator, no parts.
	f.Add([]byte("--b--\r\n"), true)
	// Boundary-like bytes inside a scanned body.
	f.Add([]byte("--b\r\n\r\npayload\r\n--bX not a boundary\r\n--b--\r\n"), true)
	// Valid raw stream and raw corruptions.
	raw := FinishRaw(AppendRawFrame(AppendRawFrame(nil, []byte("one")), []byte("two")))
	f.Add(raw, false)
	f.Add(raw[:len(raw)-3], false)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, false)

	f.Fuzz(func(t *testing.T, data []byte, multipart bool) {
		run := func(r io.Reader) (frames int, sizes int, err error) {
			var fr *Framer
			if multipart {
				fr = NewMultipartFramer(r, "b")
			} else {
				fr = NewRawFramer(r)
			}
			// Bounded input can only contain a bounded number of frames:
			// every frame costs at least one input byte.
			for i := 0; i <= len(data)+1; i++ {
				frame, ferr := fr.Next()
				if ferr != nil {
					return frames, sizes, ferr
				}
				if len(frame) > MaxFrameBytes {
					t.Fatalf("frame of %d bytes exceeds MaxFrameBytes", len(frame))
				}
				if len(frame) == 0 {
					t.Fatal("parser returned an empty frame without error")
				}
				frames++
				sizes += len(frame)
			}
			t.Fatalf("parser did not terminate after %d frames on %d input bytes", frames, len(data))
			return frames, sizes, nil
		}
		n1, s1, err1 := run(bytes.NewReader(data))
		n2, s2, err2 := run(iotest.OneByteReader(bytes.NewReader(data)))
		// Chunking must not change the parse: same frame count, same
		// total bytes, same clean/error classification.
		if n1 != n2 || s1 != s2 || (err1 == io.EOF) != (err2 == io.EOF) {
			t.Fatalf("chunking changed the parse: (%d frames, %d bytes, %v) vs (%d, %d, %v)",
				n1, s1, err1, n2, s2, err2)
		}
	})
}
