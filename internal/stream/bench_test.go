package stream

import (
	"os"
	"testing"

	"rtoss/internal/serve"
)

// TestRunStreamBench smoke-tests the streaming benchmark harness on
// the smallest zoo-scale workload that still paces and sheds.
func TestRunStreamBench(t *testing.T) {
	if testing.Short() {
		t.Skip("stream bench harness runs zoo-scale models; skipped in -short")
	}
	row, err := RunStreamBench(BenchConfig{Streams: 1, Frames: 8, SceneW: 128, SceneH: 64})
	if err != nil {
		t.Fatal(err)
	}
	if row.Name != "stream-30fps" || row.Mode != "stream" {
		t.Fatalf("row identity %s/%s, want stream-30fps/stream", row.Name, row.Mode)
	}
	if row.Images != 8 {
		t.Errorf("row counts %d frames, want 8", row.Images)
	}
	if row.DeadlineHitRate < 0 || row.DeadlineHitRate > 1 {
		t.Errorf("hit rate %v out of range", row.DeadlineHitRate)
	}
	if row.AllocsPerImage <= 0 {
		t.Errorf("allocs/frame %v: the serving path allocates request plumbing; zero means the counter is broken", row.AllocsPerImage)
	}
	if row.Seconds <= 0 {
		t.Errorf("no wall time measured: %+v", row)
	}
}

// TestEmitStreamBenchJSON appends the stream-30fps row to the
// detection benchmark artifact when RTOSS_STREAM_BENCH_JSON names a
// report previously written by serve's TestEmitDetectBenchJSON. CI
// invokes exactly this test after the serve emitter so BENCH_PR8
// carries the streaming trajectory; the regression gate in serve then
// compares the combined report against the committed baseline.
func TestEmitStreamBenchJSON(t *testing.T) {
	path := os.Getenv("RTOSS_STREAM_BENCH_JSON")
	if path == "" {
		t.Skip("set RTOSS_STREAM_BENCH_JSON=<detect bench report> to append the stream scenario")
	}
	row, err := AppendStreamBench(path, BenchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stream bench: %d frames in %.2fs, hit rate %.3f, %.1f drops/s, %.1f allocs/frame",
		row.Images, row.Seconds, row.DeadlineHitRate, row.DropsPerSec, row.AllocsPerImage)
	rep, err := serve.ReadDetectBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Results[len(rep.Results)-1]
	if last.Mode != "stream" || last.Name != row.Name {
		t.Fatalf("appended row not last in %s: %+v", path, last)
	}
}
