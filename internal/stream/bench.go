package stream

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/engine"
	"rtoss/internal/kitti"
	"rtoss/internal/models"
	"rtoss/internal/serve"
	"rtoss/internal/tensor"
)

// bench.go is the streaming serving benchmark: deterministic
// moving-scene videos paced at a fixed frame rate through hub sessions
// into a live server, reported as one mode "stream" row in the
// DetectBenchReport trajectory (BENCH_PR8.json). The row carries two
// gated invariants plus trajectory data:
//
//   - allocs/frame, measured over a lockstep pass (every frame served,
//     so the count is the full serving path's steady-state cost, not a
//     blend that shifts with machine speed) — compared hard by
//     CompareDetectBench;
//   - deadline-hit-rate and drops/s from the paced pass. At a pace the
//     machine cannot sustain the hit rate is the serving capacity as a
//     fraction of offered load, so CompareDetectBench holds it to a
//     relative floor at matching GOMAXPROCS;
//   - img/s of the paced pass (served frames over wall time) — pinned
//     by the pacing clock, recorded but never gated.
//
// The scenario lives here rather than in serve's RunDetectBench
// because serve cannot import stream; the emitter appends the row to
// the report serve already wrote (AppendStreamBench), and `rtoss
// bench` merges the two the same way.

// benchSceneSeed fixes the bench videos; stream i renders seed+i.
const benchSceneSeed = 0xb0c6

// BenchConfig parameterises RunStreamBench. Zero values select the
// defaults.
type BenchConfig struct {
	Arch    string // "YOLOv5s" (default) or "RetinaNet"
	Entries int    // R-TOSS entry patterns for the sparse variant (default 3)
	// Res is the model input resolution (default 64: small enough that
	// a single-core run serves a meaningful fraction of a 30 fps load).
	Res     int
	Streams int     // concurrent paced sessions (default 2)
	Frames  int     // frames per stream (default 90: 3 s at 30 fps)
	FPS     float64 // pacing rate per stream (default 30)
	// BudgetFrames is the per-frame deadline budget in frame intervals
	// (default 8: at 30 fps that is ~267 ms, comfortably above one
	// service time on a single core, so a served frame is an on-time
	// frame and the hit rate degrades with capacity, not with budget
	// quantisation).
	BudgetFrames   float64
	SceneW, SceneH int // rendered frame size (default 192x96)
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.Arch == "" {
		c.Arch = "YOLOv5s"
	}
	if c.Entries == 0 {
		c.Entries = 3
	}
	if c.Res <= 0 {
		c.Res = 64
	}
	if c.Streams <= 0 {
		c.Streams = 2
	}
	if c.Frames <= 0 {
		c.Frames = 90
	}
	if c.FPS <= 0 {
		c.FPS = 30
	}
	if c.BudgetFrames <= 0 {
		c.BudgetFrames = 8
	}
	if c.SceneW <= 0 {
		c.SceneW = 192
	}
	if c.SceneH <= 0 {
		c.SceneH = 96
	}
	return c
}

// RunStreamBench builds the sparse program, replays deterministic
// videos through stream sessions, and returns the scenario row for the
// detection benchmark report.
func RunStreamBench(cfg BenchConfig) (serve.DetectBenchResult, error) {
	cfg = cfg.withDefaults()
	var zero serve.DetectBenchResult
	prog, err := serve.NewRegistry().Program(serve.Key{
		Arch: cfg.Arch, Variant: fmt.Sprintf("rtoss-%dep", cfg.Entries), Mode: engine.ModeSparse,
	})
	if err != nil {
		return zero, err
	}
	spec, err := models.HeadByName(cfg.Arch, models.KITTIClasses)
	if err != nil {
		return zero, err
	}
	if s := spec.MaxStride(); cfg.Res%s != 0 {
		return zero, fmt.Errorf("stream: bench resolution %d must be a multiple of the head stride %d", cfg.Res, s)
	}
	pipe := detect.Config{Spec: spec}

	// Fix the wire bytes up front so pacing measures serving.
	videos := make([][][]byte, cfg.Streams)
	for i := range videos {
		seq := kitti.RenderedSequence(benchSceneSeed+uint64(i), cfg.Frames, cfg.SceneW, cfg.SceneH)
		videos[i] = make([][]byte, len(seq))
		for k, rs := range seq {
			var buf bytes.Buffer
			if err := tensor.EncodePPM(&buf, rs.Image); err != nil {
				return zero, err
			}
			videos[i][k] = buf.Bytes()
		}
	}

	srv := serve.NewServer(prog, serve.Config{})
	defer srv.Close()
	interval := time.Duration(float64(time.Second) / cfg.FPS)
	budget := time.Duration(cfg.BudgetFrames) * interval

	// Allocation pass: lockstep (one frame in flight, nothing shed), so
	// the count is the whole serving path — framer-free push, pooled
	// ingest, EDF admission, batch forward, postprocess, result
	// delivery — once per frame, machine-independent. A warmup pass
	// fills the pools and code caches off the counter.
	allocHub := NewHub(srv, Config{Pipe: pipe, ResH: cfg.Res, ResW: cfg.Res})
	warm := videos[0]
	if len(warm) > 8 {
		warm = warm[:8]
	}
	if err := runLockstep(allocHub, warm); err != nil {
		allocHub.Close()
		return zero, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := runLockstep(allocHub, videos[0]); err != nil {
		allocHub.Close()
		return zero, err
	}
	runtime.ReadMemStats(&after)
	allocHub.Close()
	allocsPerFrame := float64(after.Mallocs-before.Mallocs) / float64(len(videos[0]))

	// Paced pass: every stream pushes at FPS against the wall clock
	// with a capture-anchored deadline, exactly like a camera.
	hub := NewHub(srv, Config{Pipe: pipe, ResH: cfg.Res, ResW: cfg.Res, Budget: budget})
	defer hub.Close()
	var wg sync.WaitGroup
	errC := make(chan error, cfg.Streams)
	start := time.Now()
	for i := 0; i < cfg.Streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errC <- runPaced(hub, videos[i], interval)
		}(i)
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	close(errC)
	for err := range errC {
		if err != nil {
			return zero, err
		}
	}
	sum := hub.Stats()
	if want := uint64(cfg.Streams * cfg.Frames); sum.FramesIn != want {
		return zero, fmt.Errorf("stream: bench pushed %d frames, counted %d", want, sum.FramesIn)
	}
	if sum.Errors != 0 {
		return zero, fmt.Errorf("stream: bench run hit %d pipeline errors", sum.Errors)
	}

	row := serve.DetectBenchResult{
		Name:            fmt.Sprintf("stream-%.0ffps", cfg.FPS),
		Mode:            "stream",
		Images:          int(sum.FramesIn),
		Seconds:         sec,
		AllocsPerImage:  allocsPerFrame,
		DeadlineHitRate: sum.DeadlineHitRate,
	}
	if sec > 0 {
		row.ImagesPerSec = float64(sum.FramesServed) / sec
		row.DropsPerSec = float64(sum.DroppedStale+sum.DroppedDeadline) / sec
	}
	return row, nil
}

// AppendStreamBench runs the scenario and appends its row to the
// DetectBenchReport JSON at path (the artifact serve's emitter already
// wrote) — the cycle-free way the stream row joins the BENCH_PR8
// trajectory.
func AppendStreamBench(path string, cfg BenchConfig) (serve.DetectBenchResult, error) {
	rep, err := serve.ReadDetectBenchJSON(path)
	if err != nil {
		return serve.DetectBenchResult{}, err
	}
	row, err := RunStreamBench(cfg)
	if err != nil {
		return row, err
	}
	rep.Results = append(rep.Results, row)
	return row, rep.WriteJSON(path)
}

// runLockstep replays one video with exactly one frame in flight:
// every frame is served, none shed.
func runLockstep(hub *Hub, frames [][]byte) error {
	resolved := make(chan Result, 1)
	sess, err := hub.Open(SessionConfig{OnResult: func(r Result) { resolved <- r }})
	if err != nil {
		return err
	}
	defer sess.Close()
	for k, f := range frames {
		if err := sess.Push(f); err != nil {
			return err
		}
		if r := <-resolved; r.Err != nil {
			return fmt.Errorf("stream: lockstep frame %d: %w", k, r.Err)
		}
	}
	return nil
}

// runPaced replays one video at one frame per interval against the
// wall clock, letting the mailbox and the scheduler shed as they must.
func runPaced(hub *Hub, frames [][]byte, interval time.Duration) error {
	sess, err := hub.Open(SessionConfig{})
	if err != nil {
		return err
	}
	defer sess.Close()
	start := time.Now()
	for k, f := range frames {
		if wait := time.Until(start.Add(time.Duration(k) * interval)); wait > 0 {
			time.Sleep(wait)
		}
		if err := sess.Push(f); err != nil {
			return err
		}
	}
	return nil
}
