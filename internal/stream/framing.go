// Package stream implements streaming video serving on top of the
// batch executors in internal/serve: a frame parser for MJPEG-style
// multipart and raw length-prefixed frame sequences, per-stream
// sessions with a newest-frame-wins mailbox, and a hub that fans the
// sessions into serve's deadline-aware (EDF) scheduler. Under load a
// stream degrades by dropping stale frames — never by serving an
// ever-older backlog — and every drop/deadline outcome is counted
// atomically for /stats.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire formats accepted by POST /stream and the Framer:
//
//   - multipart/x-mixed-replace; boundary=B — the MJPEG convention:
//     each frame is one part (`--B`, headers, blank line, body), the
//     stream ends with the `--B--` terminator. Bodies may carry a
//     Content-Length header (validated, then read exactly); without
//     one the parser scans for the next `\r\n--B` delimiter.
//   - application/x-rtoss-frames — a raw sequence of frames, each an
//     8-byte little-endian length prefix followed by that many bytes;
//     a zero length marks a clean end of stream.
//
// Both parsers enforce hard limits (maxPartHeader, MaxFrameBytes) so a
// hostile stream cannot balloon memory, and both distinguish a clean
// terminator (io.EOF) from a connection that died mid-frame
// (ErrTruncated) — the session layer reports the two differently.

const (
	// MaxFrameBytes caps a single frame body; larger frames fail with
	// ErrFrameTooLarge before any body bytes are buffered.
	MaxFrameBytes = 16 << 20
	// maxPartHeader caps the header block (and any single header line)
	// of one multipart part.
	maxPartHeader = 4096
)

// RawContentType is the Content-Type of the length-prefixed frame
// sequence format.
const RawContentType = "application/x-rtoss-frames"

// Framing errors. Everything except io.EOF (clean terminator) is
// terminal for the stream.
var (
	ErrTruncated      = errors.New("stream: input truncated mid-frame")
	ErrFrameTooLarge  = fmt.Errorf("stream: frame exceeds %d bytes", MaxFrameBytes)
	ErrHeaderTooLarge = fmt.Errorf("stream: part header exceeds %d bytes", maxPartHeader)
	ErrEmptyFrame     = errors.New("stream: zero-length frame part")
	ErrBadFraming     = errors.New("stream: malformed frame framing")
)

// MultipartContentType returns the Content-Type header value for a
// multipart frame stream with the given boundary.
func MultipartContentType(boundary string) string {
	return "multipart/x-mixed-replace; boundary=" + boundary
}

// Framer incrementally parses a frame sequence from r. Next returns
// each frame body in order; the returned slice aliases an internal
// buffer and is only valid until the next call.
type Framer struct {
	r        io.Reader
	raw      bool
	boundary []byte // "--" + boundary
	started  bool   // multipart: first boundary line consumed
	done     bool

	buf []byte // unconsumed input window
	off int    // consume offset into buf

	lenbuf [8]byte
	frame  []byte // reused frame buffer for the raw format
}

// NewMultipartFramer parses a multipart/x-mixed-replace stream with
// the given boundary token.
func NewMultipartFramer(r io.Reader, boundary string) *Framer {
	return &Framer{r: r, boundary: append([]byte("--"), boundary...)}
}

// NewRawFramer parses a length-prefixed frame sequence
// (application/x-rtoss-frames).
func NewRawFramer(r io.Reader) *Framer {
	return &Framer{r: r, raw: true}
}

// Next returns the next frame body, io.EOF after a clean terminator,
// or a framing error. The slice is valid until the next call.
func (f *Framer) Next() ([]byte, error) {
	if f.done {
		return nil, io.EOF
	}
	var frame []byte
	var err error
	if f.raw {
		frame, err = f.nextRaw()
	} else {
		frame, err = f.nextPart()
	}
	if err != nil {
		f.done = true
	}
	return frame, err
}

func (f *Framer) nextRaw() ([]byte, error) {
	if err := f.readFull(f.lenbuf[:]); err != nil {
		if err == io.EOF {
			// EOF exactly at a frame boundary: the sender vanished
			// without the zero-length terminator.
			return nil, ErrTruncated
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint64(f.lenbuf[:])
	if n == 0 {
		return nil, io.EOF // clean terminator
	}
	if n > MaxFrameBytes {
		return nil, ErrFrameTooLarge
	}
	if cap(f.frame) < int(n) {
		f.frame = make([]byte, n)
	}
	f.frame = f.frame[:n]
	if err := f.readFull(f.frame); err != nil {
		return nil, ErrTruncated
	}
	return f.frame, nil
}

// readFull fills p from the buffered window and then the reader.
// Returns io.EOF only when zero bytes were available, ErrTruncated on
// a partial read.
func (f *Framer) readFull(p []byte) error {
	n := copy(p, f.buf[f.off:])
	f.off += n
	if n == len(p) {
		return nil
	}
	m, err := io.ReadFull(f.r, p[n:])
	if err == nil {
		return nil
	}
	if n+m == 0 && err == io.EOF {
		return io.EOF
	}
	return ErrTruncated
}

// fill reads more input into the window, compacting first. Reports
// io.EOF when the source is exhausted.
func (f *Framer) fill() error {
	if f.off > 0 {
		f.buf = append(f.buf[:0], f.buf[f.off:]...)
		f.off = 0
	}
	if cap(f.buf)-len(f.buf) < 512 {
		grown := make([]byte, len(f.buf), cap(f.buf)*2+4096)
		copy(grown, f.buf)
		f.buf = grown
	}
	n, err := f.r.Read(f.buf[len(f.buf):cap(f.buf)])
	f.buf = f.buf[:len(f.buf)+n]
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.EOF
	}
	return err
}

// readLine returns the next line without its \r\n (or \n) terminator.
// Lines are capped at maxPartHeader bytes.
func (f *Framer) readLine() ([]byte, error) {
	start := f.off
	for {
		if i := indexByteFrom(f.buf, f.off, start, '\n'); i >= 0 {
			line := f.buf[start:i]
			f.off = i + 1
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			if len(line) > maxPartHeader {
				return nil, ErrHeaderTooLarge
			}
			return line, nil
		}
		if len(f.buf)-start > maxPartHeader {
			return nil, ErrHeaderTooLarge
		}
		// fill() compacts from f.off; keep start anchored to the window.
		f.off = start
		if err := f.fill(); err != nil {
			if err == io.EOF {
				return nil, ErrTruncated
			}
			return nil, err
		}
		start = f.off
	}
}

// indexByteFrom finds c in buf[from:] (from >= floor), returning the
// absolute index or -1.
func indexByteFrom(buf []byte, from, floor int, c byte) int {
	if from < floor {
		from = floor
	}
	for i := from; i < len(buf); i++ {
		if buf[i] == c {
			return i
		}
	}
	return -1
}

// boundaryKind classifies a line against the part boundary.
type boundaryKind int

const (
	notBoundary boundaryKind = iota
	partBoundary
	finalBoundary
)

func (f *Framer) classifyBoundary(line []byte) boundaryKind {
	if len(line) < len(f.boundary) || string(line[:len(f.boundary)]) != string(f.boundary) {
		return notBoundary
	}
	rest := line[len(f.boundary):]
	switch {
	case len(rest) == 0:
		return partBoundary
	case len(rest) == 2 && rest[0] == '-' && rest[1] == '-':
		return finalBoundary
	default:
		return notBoundary
	}
}

func (f *Framer) nextPart() ([]byte, error) {
	if !f.started {
		// Skip any preamble: lines until the first boundary.
		for {
			line, err := f.readLine()
			if err != nil {
				return nil, err
			}
			switch f.classifyBoundary(line) {
			case partBoundary:
				f.started = true
			case finalBoundary:
				return nil, io.EOF
			default:
				continue
			}
			break
		}
	}
	// Part headers until the blank line.
	contentLength := -1
	headerBytes := 0
	for {
		line, err := f.readLine()
		if err != nil {
			return nil, err
		}
		if len(line) == 0 {
			break
		}
		headerBytes += len(line) + 2
		if headerBytes > maxPartHeader {
			return nil, ErrHeaderTooLarge
		}
		if v, ok := headerValue(line, "content-length"); ok {
			n, perr := parseDecimal(v)
			if perr != nil || n > MaxFrameBytes {
				if perr == nil {
					return nil, ErrFrameTooLarge
				}
				return nil, fmt.Errorf("%w: bad Content-Length %q", ErrBadFraming, v)
			}
			contentLength = n
		}
	}
	var frame []byte
	if contentLength >= 0 {
		if contentLength == 0 {
			return nil, ErrEmptyFrame
		}
		frame = make([]byte, contentLength)
		if err := f.readFull(frame); err != nil {
			return nil, ErrTruncated
		}
		// The body must be followed by a boundary line.
		line, err := f.readLine()
		if err != nil {
			return nil, err
		}
		if len(line) == 0 { // tolerate the CRLF that closes the body
			if line, err = f.readLine(); err != nil {
				return nil, err
			}
		}
		switch f.classifyBoundary(line) {
		case partBoundary:
		case finalBoundary:
			f.done = true
		default:
			return nil, fmt.Errorf("%w: %d-byte body not followed by boundary", ErrBadFraming, contentLength)
		}
		return frame, nil
	}
	// No Content-Length: scan for the \r\n--boundary delimiter.
	frame, kind, err := f.scanDelimited()
	if err != nil {
		return nil, err
	}
	if kind == finalBoundary {
		f.done = true
	}
	if len(frame) == 0 {
		return nil, ErrEmptyFrame
	}
	return frame, nil
}

// scanDelimited reads a part body up to the next \r\n--boundary line,
// returning the body and whether the boundary was final.
func (f *Framer) scanDelimited() ([]byte, boundaryKind, error) {
	delim := make([]byte, 0, 2+len(f.boundary))
	delim = append(delim, '\r', '\n')
	delim = append(delim, f.boundary...)
	searched := 0
	for {
		window := f.buf[f.off:]
		if i := indexOfFrom(window, delim, searched); i >= 0 {
			// Copy the body out before touching the reader again: fill()
			// compacts the window, which would overwrite these bytes.
			f.frame = append(f.frame[:0], window[:i]...)
			body := f.frame
			f.off += i + len(delim)
			// Classify the boundary suffix: "--" = final, else the part
			// boundary line ends here (consume its CRLF / LF).
			kind := partBoundary
			if err := f.want(2); err == nil && f.buf[f.off] == '-' && f.buf[f.off+1] == '-' {
				kind = finalBoundary
				f.off += 2
			} else {
				if err := f.want(1); err != nil {
					return nil, 0, ErrTruncated
				}
				if f.buf[f.off] == '\r' {
					f.off++
					if err := f.want(1); err != nil {
						return nil, 0, ErrTruncated
					}
				}
				if f.buf[f.off] != '\n' {
					return nil, 0, ErrBadFraming
				}
				f.off++
			}
			return body, kind, nil
		}
		if len(window) > MaxFrameBytes {
			return nil, 0, ErrFrameTooLarge
		}
		// Re-scan only the unsearched tail (keep delim-1 overlap).
		searched = len(window) - len(delim) + 1
		if searched < 0 {
			searched = 0
		}
		if err := f.fill(); err != nil {
			if err == io.EOF {
				return nil, 0, ErrTruncated
			}
			return nil, 0, err
		}
	}
}

// want ensures n bytes are buffered past f.off.
func (f *Framer) want(n int) error {
	for len(f.buf)-f.off < n {
		if err := f.fill(); err != nil {
			return err
		}
	}
	return nil
}

// indexOfFrom is bytes.Index over hay[from:], mapped back to hay
// coordinates.
func indexOfFrom(hay, needle []byte, from int) int {
	if from < 0 {
		from = 0
	}
	if from > len(hay) {
		return -1
	}
	i := indexOf(hay[from:], needle)
	if i < 0 {
		return -1
	}
	return from + i
}

func indexOf(hay, needle []byte) int {
	if len(needle) == 0 {
		return 0
	}
outer:
	for i := 0; i+len(needle) <= len(hay); i++ {
		for j := range needle {
			if hay[i+j] != needle[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}

// headerValue matches a header line against a lowercase name,
// returning the trimmed value.
func headerValue(line []byte, name string) (string, bool) {
	if len(line) < len(name)+1 {
		return "", false
	}
	for i := 0; i < len(name); i++ {
		c := line[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return "", false
		}
	}
	if line[len(name)] != ':' {
		return "", false
	}
	v := line[len(name)+1:]
	for len(v) > 0 && (v[0] == ' ' || v[0] == '\t') {
		v = v[1:]
	}
	for len(v) > 0 && (v[len(v)-1] == ' ' || v[len(v)-1] == '\t') {
		v = v[:len(v)-1]
	}
	return string(v), true
}

func parseDecimal(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-digit %q", c)
		}
		n = n*10 + int(c-'0')
		if n > MaxFrameBytes+1 {
			return MaxFrameBytes + 1, nil // saturate: caller rejects
		}
	}
	return n, nil
}

// AppendMultipartFrame appends one multipart part (boundary line,
// Content-Length header, body) to dst — the encoder half of the MJPEG
// framing, used by tests, the bench harness, and `rtoss stream`.
func AppendMultipartFrame(dst []byte, boundary string, frame []byte) []byte {
	dst = append(dst, "--"...)
	dst = append(dst, boundary...)
	dst = append(dst, "\r\nContent-Type: image/x-portable-pixmap\r\nContent-Length: "...)
	dst = appendDecimal(dst, len(frame))
	dst = append(dst, "\r\n\r\n"...)
	dst = append(dst, frame...)
	dst = append(dst, "\r\n"...)
	return dst
}

// FinishMultipart appends the stream terminator.
func FinishMultipart(dst []byte, boundary string) []byte {
	dst = append(dst, "--"...)
	dst = append(dst, boundary...)
	dst = append(dst, "--\r\n"...)
	return dst
}

// AppendRawFrame appends one length-prefixed frame to dst.
func AppendRawFrame(dst []byte, frame []byte) []byte {
	var l [8]byte
	binary.LittleEndian.PutUint64(l[:], uint64(len(frame)))
	dst = append(dst, l[:]...)
	return append(dst, frame...)
}

// FinishRaw appends the zero-length clean-end marker.
func FinishRaw(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
}

func appendDecimal(dst []byte, n int) []byte {
	if n == 0 {
		return append(dst, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, tmp[i:]...)
}
