package stream

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rtoss/internal/detect"
	"rtoss/internal/faultinject"
	"rtoss/internal/serve"
)

// stream.go is the session layer: a Hub owns the per-stream Sessions
// and fans their frames into one serve.Server. Each session is a
// 1-slot mailbox plus a pump goroutine:
//
//   - Push never blocks on inference. If the mailbox already holds an
//     unserved frame, that frame is evicted and counted dropped_stale —
//     newest-frame-wins at the edge, before a byte reaches the queue.
//   - The pump serves at most one frame at a time through
//     Server.DetectFrame with the stream identity and a deadline of
//     capture+budget, so serve's EDF scheduler orders streams by slack
//     and sheds anything that expired or was superseded in the queue.
//     One in-flight frame per session also means a session's results
//     arrive strictly in capture order: no frame is ever served after
//     a fresher frame of the same stream.
//
// All counters are plain atomics, updated on both the session and the
// hub, so GET /stats can snapshot them without locks and without torn
// reads under the race detector.

// ErrHubClosed is returned by Push and Open after the hub or session
// shut down.
var ErrHubClosed = errors.New("stream: hub closed")

// Config fixes the detection pipeline every session runs.
type Config struct {
	// Pipe is the postprocess config (head spec + thresholds) each
	// frame is decoded with.
	Pipe detect.Config
	// ResH, ResW is the model input resolution frames are letterboxed
	// to (multiples of the head stride).
	ResH, ResW int
	// Budget is the default per-frame deadline budget: a frame's
	// deadline is its capture instant plus Budget. Zero disables
	// deadlines (frames are never shed for lateness).
	Budget time.Duration

	// FaultInjector arms the hub's chaos injection point (mid-frame
	// disconnect in the HTTP ingest loop). Nil — the production
	// configuration — makes the point a nil check.
	FaultInjector *faultinject.Injector

	// clock overrides time.Now for deterministic tests.
	clock func() time.Time
}

// SessionConfig parameterises one stream session.
type SessionConfig struct {
	// Budget overrides the hub's default deadline budget; zero means
	// inherit.
	Budget time.Duration
	// OnResult, when set, is called after every frame resolves
	// (served, shed, or failed). Served/shed outcomes arrive from the
	// session's pump goroutine; mailbox evictions arrive from the
	// pushing goroutine, so the callback must be safe for concurrent
	// use. It must not block for long: the session serves nothing
	// while it runs.
	OnResult func(Result)
}

// Result is the outcome of one pushed frame.
type Result struct {
	Stream uint64
	Seq    uint64
	// Det is the detection result; nil when the frame was shed or
	// failed.
	Det *detect.Result
	// Err is nil for a served frame, serve.ErrSuperseded /
	// serve.ErrDeadline for a shed one, or the pipeline error.
	Err error
	// Latency is push-to-resolution time.
	Latency time.Duration
	// OnTime reports whether a served frame finished within its
	// deadline (always true when deadlines are disabled).
	OnTime bool
}

// counters is the atomic stat block shared by sessions and the hub.
type counters struct {
	framesIn        atomic.Uint64
	framesServed    atomic.Uint64
	droppedStale    atomic.Uint64 // mailbox evictions + queue supersessions
	droppedDeadline atomic.Uint64
	errored         atomic.Uint64
	onTime          atomic.Uint64
	serveNanos      atomic.Uint64 // summed latency of served frames
}

// Summary is a point-in-time snapshot of one counter block.
type Summary struct {
	FramesIn        uint64  `json:"frames_in"`
	FramesServed    uint64  `json:"frames_served"`
	DroppedStale    uint64  `json:"dropped_stale"`
	DroppedDeadline uint64  `json:"dropped_deadline"`
	Errors          uint64  `json:"errors"`
	OnTime          uint64  `json:"on_time"`
	DeadlineHitRate float64 `json:"deadline_hit_rate"`
	AvgServeMS      float64 `json:"avg_serve_ms"`
}

func (c *counters) summary() Summary {
	s := Summary{
		FramesIn:        c.framesIn.Load(),
		FramesServed:    c.framesServed.Load(),
		DroppedStale:    c.droppedStale.Load(),
		DroppedDeadline: c.droppedDeadline.Load(),
		Errors:          c.errored.Load(),
		OnTime:          c.onTime.Load(),
	}
	// Hit rate counts every pushed frame: a dropped frame is a missed
	// deadline from the stream's point of view.
	if s.FramesIn > 0 {
		s.DeadlineHitRate = float64(s.OnTime) / float64(s.FramesIn)
	} else {
		s.DeadlineHitRate = 1
	}
	if s.FramesServed > 0 {
		s.AvgServeMS = float64(c.serveNanos.Load()) / float64(s.FramesServed) / 1e6
	}
	return s
}

// Hub owns the stream sessions of one server.
type Hub struct {
	srv *serve.Server
	cfg Config

	mu       sync.Mutex
	sessions map[uint64]*Session
	nextID   uint64
	closed   bool

	total  counters
	opened atomic.Uint64

	bufs sync.Pool // frame byte buffers, recycled across pushes
}

// NewHub wires a session hub to a server.
func NewHub(srv *serve.Server, cfg Config) *Hub {
	if cfg.clock == nil {
		cfg.clock = time.Now
	}
	return &Hub{srv: srv, cfg: cfg, sessions: make(map[uint64]*Session)}
}

// frame is one mailbox entry.
type frame struct {
	img []byte
	seq uint64
	at  time.Time // capture instant (deadline anchor)
}

// Session is one video stream: push frames in, results come back via
// the OnResult callback in capture order.
type Session struct {
	hub    *Hub
	id     uint64
	budget time.Duration
	onRes  func(Result)

	mail chan frame
	quit chan struct{}
	done chan struct{}

	// mu guards closed and fences Push against Close: a frame enters
	// the mailbox only while closed is false, and Close sets closed
	// before signalling the pump, so every accepted frame is seen by
	// the pump's final drain. Only nonblocking channel ops happen
	// under mu.
	mu     sync.Mutex
	closed bool

	seq   atomic.Uint64
	stats counters

	closeOnce sync.Once
}

// Open starts a new session. Stream IDs start at 1 (serve treats
// stream 0 as "no stream").
func (h *Hub) Open(cfg SessionConfig) (*Session, error) {
	budget := cfg.Budget
	if budget == 0 {
		budget = h.cfg.Budget
	}
	s := &Session{
		hub:    h,
		budget: budget,
		onRes:  cfg.OnResult,
		mail:   make(chan frame, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHubClosed
	}
	h.nextID++
	s.id = h.nextID
	h.sessions[s.id] = s
	h.mu.Unlock()
	h.opened.Add(1)
	go s.pump()
	return s, nil
}

// Close shuts every session down and refuses new ones. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	open := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		open = append(open, s)
	}
	h.mu.Unlock()
	for _, s := range open {
		s.Close()
	}
}

func (h *Hub) remove(id uint64) {
	h.mu.Lock()
	delete(h.sessions, id)
	h.mu.Unlock()
}

// Stats snapshots the hub-wide counters across all sessions, live and
// closed.
func (h *Hub) Stats() Summary { return h.total.summary() }

// Active reports the number of live sessions.
func (h *Hub) Active() int {
	h.mu.Lock()
	n := len(h.sessions)
	h.mu.Unlock()
	return n
}

// StatsMap renders the hub counters for serve.HandlerConfig.ExtraStats
// so GET /stats carries the per-stream drop/deadline counters in the
// same snapshot as the server's own.
func (h *Hub) StatsMap() map[string]any {
	s := h.Stats()
	return map[string]any{
		"streams": map[string]any{
			"active":            h.Active(),
			"opened":            h.opened.Load(),
			"frames_in":         s.FramesIn,
			"frames_served":     s.FramesServed,
			"dropped_stale":     s.DroppedStale,
			"dropped_deadline":  s.DroppedDeadline,
			"errors":            s.Errors,
			"deadline_hit_rate": s.DeadlineHitRate,
			"avg_serve_ms":      s.AvgServeMS,
		},
	}
}

func (h *Hub) getBuf(n int) []byte {
	if b, ok := h.bufs.Get().(*[]byte); ok && cap(*b) >= n {
		return (*b)[:n]
	}
	return make([]byte, n)
}

func (h *Hub) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	h.bufs.Put(&b)
}

// ID is the session's stream identity on the serve queue.
func (s *Session) ID() uint64 { return s.id }

// Summary snapshots this session's counters.
func (s *Session) Summary() Summary { return s.stats.summary() }

// Push submits one captured frame. The image bytes are copied, so the
// caller may reuse img immediately. If an unserved frame is already
// waiting, it is evicted and counted dropped_stale (newest-frame-wins).
// Push never waits on inference; it only fails once the session or hub
// is closed.
func (s *Session) Push(img []byte) error {
	h := s.hub
	buf := h.getBuf(len(img))
	copy(buf, img)
	f := frame{img: buf, seq: s.seq.Add(1), at: h.cfg.clock()}
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			h.putBuf(buf)
			return ErrHubClosed
		}
		select {
		case s.mail <- f:
			// Counted only once accepted, so frames_in always equals the
			// sum of resolved outcomes.
			s.stats.framesIn.Add(1)
			h.total.framesIn.Add(1)
			s.mu.Unlock()
			return nil
		default:
		}
		// Mailbox full: evict the stale frame and retry. The eviction
		// may race with the pump taking the frame to serve — either way
		// exactly one party gets it.
		var old frame
		evicted := false
		select {
		case old = <-s.mail:
			evicted = true
		default:
		}
		s.mu.Unlock()
		if evicted {
			s.dropStale(old)
		}
	}
}

func (s *Session) dropStale(f frame) {
	s.hub.putBuf(f.img)
	s.stats.droppedStale.Add(1)
	s.hub.total.droppedStale.Add(1)
	s.emit(Result{Stream: s.id, Seq: f.seq, Err: serve.ErrSuperseded})
}

// Close stops the pump and removes the session from the hub. It waits
// for the in-flight frame to resolve and serves the final mailbox
// frame (the freshest pushed) before returning. Idempotent and safe
// to race with Push.
func (s *Session) Close() {
	s.closeOnce.Do(func() {
		// Setting closed under mu before signalling quit means no Push
		// can add a frame after the pump's final drain: accepted frames
		// strictly precede the quit signal.
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.quit)
		<-s.done
		s.hub.remove(s.id)
	})
}

func (s *Session) pump() {
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			// A final frame may be sitting in the mailbox. It is the
			// freshest the stream produced, so it is served, not dropped —
			// a finite POSTed sequence always resolves its last frame.
			select {
			case f := <-s.mail:
				s.serveFrame(f)
			default:
			}
			return
		case f := <-s.mail:
			s.serveFrame(f)
		}
	}
}

func (s *Session) serveFrame(f frame) {
	h := s.hub
	opt := serve.FrameOptions{Stream: s.id, Seq: f.seq, Block: true}
	if s.budget > 0 {
		opt.Deadline = f.at.Add(s.budget)
	}
	det, err := h.srv.DetectFrame(f.img, h.cfg.Pipe, h.cfg.ResH, h.cfg.ResW, opt)
	now := h.cfg.clock()
	lat := now.Sub(f.at)
	res := Result{Stream: s.id, Seq: f.seq, Det: det, Err: err, Latency: lat}
	switch {
	case err == nil:
		s.stats.framesServed.Add(1)
		h.total.framesServed.Add(1)
		s.stats.serveNanos.Add(uint64(lat))
		h.total.serveNanos.Add(uint64(lat))
		res.OnTime = opt.Deadline.IsZero() || !now.After(opt.Deadline)
		if res.OnTime {
			s.stats.onTime.Add(1)
			h.total.onTime.Add(1)
		}
	case errors.Is(err, serve.ErrSuperseded):
		s.stats.droppedStale.Add(1)
		h.total.droppedStale.Add(1)
	case errors.Is(err, serve.ErrDeadline):
		s.stats.droppedDeadline.Add(1)
		h.total.droppedDeadline.Add(1)
	default:
		s.stats.errored.Add(1)
		h.total.errored.Add(1)
	}
	h.putBuf(f.img)
	s.emit(res)
}

func (s *Session) emit(r Result) {
	if s.onRes != nil {
		s.onRes(r)
	}
}
