// Package baselines implements the five state-of-the-art pruning
// frameworks the paper compares R-TOSS against (§V.C):
//
//   - PatDNN (PD): 4-entry kernel-pattern pruning on 3×3 kernels plus
//     connectivity pruning that removes whole kernels [30];
//   - Neural Magic SparseML (NMS): global unstructured magnitude
//     pruning [14];
//   - Network Slimming (NS): channel pruning driven by batch-norm
//     scaling factors [23];
//   - Pruning Filters (PF): filter-granularity pruning by L1 norm [20];
//   - Neural Pruning (NP): filter pruning via L2 regularisation
//     combined with L1 unstructured weight pruning [21].
//
// Every framework implements prune.Pruner and mutates models in place,
// so the experiment harness treats them interchangeably with R-TOSS.
package baselines

import (
	"math"
	"sort"
	"time"

	"rtoss/internal/nn"
	"rtoss/internal/pattern"
	"rtoss/internal/prune"
)

// kernelL2 returns the L2 norm of a spatial kernel slice.
func kernelL2(k []float32) float64 {
	s := 0.0
	for _, v := range k {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ---------------------------------------------------------------------
// PatDNN

// PatDNN is the PD baseline: 4EP pattern pruning restricted to 3×3
// kernels, plus connectivity pruning that removes the
// ConnectivityFrac lowest-norm kernels of every 3×3 layer entirely.
// 1×1 kernels are untouched (the limitation §III motivates R-TOSS by).
type PatDNN struct {
	// ConnectivityFrac is the fraction of whole kernels removed per
	// layer by connectivity pruning (PatDNN reports 30-50%; default 0.3).
	ConnectivityFrac float64
	dict             pattern.Dictionary
}

// NewPatDNN returns PD with the published defaults.
func NewPatDNN() *PatDNN {
	return &PatDNN{ConnectivityFrac: 0.3, dict: pattern.NewDictionary(4)}
}

// Name implements prune.Pruner.
func (p *PatDNN) Name() string { return "PatDNN (PD)" }

// Prune implements prune.Pruner.
func (p *PatDNN) Prune(m *nn.Model) (*prune.Result, error) {
	start := time.Now()
	res := &prune.Result{
		Framework:   p.Name(),
		Model:       m.Name,
		Structure:   prune.Pattern,
		PatternHist: map[uint16]int64{},
	}
	for _, l := range nn.PrunableConvs(m) {
		if !l.Is3x3() {
			continue
		}
		stat := prune.StatFor(l)
		inPerGroup := l.InC / l.Group
		type kref struct {
			oc, ic int
			norm   float64
		}
		kernels := make([]kref, 0, l.OutC*inPerGroup)
		// Pattern pass (4EP best fit), collecting post-pattern norms.
		for oc := 0; oc < l.OutC; oc++ {
			for ic := 0; ic < inPerGroup; ic++ {
				k := l.Kernel(oc, ic)
				mask, norm := pattern.BestFit(k, p.dict.Masks)
				mask.Apply(k)
				res.PatternHist[uint16(mask)]++
				res.BestFitSearches++
				kernels = append(kernels, kref{oc, ic, norm})
			}
		}
		// Connectivity pass: zero the lowest-norm kernels entirely.
		sort.Slice(kernels, func(i, j int) bool { return kernels[i].norm < kernels[j].norm })
		remove := int(p.ConnectivityFrac * float64(len(kernels)))
		for i := 0; i < remove; i++ {
			k := l.Kernel(kernels[i].oc, kernels[i].ic)
			for j := range k {
				k[j] = 0
			}
			stat.RemovedKernels++
		}
		stat.Finish(l)
		res.Layers = append(res.Layers, stat)
	}
	res.Duration = time.Since(start)
	res.FillParams(m)
	return res, nil
}

// ---------------------------------------------------------------------
// SparseML (NMS)

// SparseML is the NMS baseline: global unstructured magnitude pruning.
// All prunable weights across the model are ranked by |w| and the
// smallest are zeroed until TargetSparsity is reached, mirroring
// SparseML's magnitude pruning with a global threshold.
type SparseML struct {
	// TargetSparsity is the global fraction of prunable weights to
	// remove (default 0.70, a typical SparseML operating point that
	// roughly matches the paper's relative sparsity bars).
	TargetSparsity float64
}

// NewSparseML returns NMS with the default operating point.
func NewSparseML() *SparseML { return &SparseML{TargetSparsity: 0.70} }

// Name implements prune.Pruner.
func (s *SparseML) Name() string { return "SparseML (NMS)" }

// Prune implements prune.Pruner.
func (s *SparseML) Prune(m *nn.Model) (*prune.Result, error) {
	start := time.Now()
	res := &prune.Result{Framework: s.Name(), Model: m.Name, Structure: prune.Unstructured}
	layers := nn.PrunableConvs(m)
	var all []float32
	for _, l := range layers {
		for _, v := range l.Weight.Data {
			a := v
			if a < 0 {
				a = -a
			}
			all = append(all, a)
		}
	}
	if len(all) == 0 {
		res.Duration = time.Since(start)
		res.FillParams(m)
		return res, nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	cut := int(s.TargetSparsity * float64(len(all)))
	if cut >= len(all) {
		cut = len(all) - 1
	}
	threshold := all[cut]
	for _, l := range layers {
		stat := prune.StatFor(l)
		for i, v := range l.Weight.Data {
			a := v
			if a < 0 {
				a = -a
			}
			if a < threshold {
				l.Weight.Data[i] = 0
			}
		}
		stat.Finish(l)
		res.Layers = append(res.Layers, stat)
	}
	res.Duration = time.Since(start)
	res.FillParams(m)
	return res, nil
}

// ---------------------------------------------------------------------
// Network Slimming (NS)

// NetworkSlimming is the NS baseline: channel pruning by batch-norm
// scaling factor. For every prunable conv followed by a BN layer, the
// output channels with the smallest |gamma| are removed — the conv
// filters producing them are zeroed along with the BN affine pair.
type NetworkSlimming struct {
	// ChannelFrac is the fraction of channels removed per layer
	// (default 0.4, the mid-range of the NS paper's 40-70% sweeps).
	ChannelFrac float64
}

// NewNetworkSlimming returns NS with defaults.
func NewNetworkSlimming() *NetworkSlimming { return &NetworkSlimming{ChannelFrac: 0.4} }

// Name implements prune.Pruner.
func (n *NetworkSlimming) Name() string { return "Network Slimming (NS)" }

// Prune implements prune.Pruner.
func (n *NetworkSlimming) Prune(m *nn.Model) (*prune.Result, error) {
	start := time.Now()
	res := &prune.Result{Framework: n.Name(), Model: m.Name, Structure: prune.Channel}
	// Map conv -> following BN, if any.
	bnAfter := map[int]*nn.Layer{}
	for _, l := range m.Layers {
		if l.Kind == nn.BatchNorm && len(l.Inputs) == 1 {
			bnAfter[l.Inputs[0]] = l
		}
	}
	for _, l := range nn.PrunableConvs(m) {
		bn := bnAfter[l.ID]
		if bn == nil || len(bn.Gamma) != l.OutC {
			continue
		}
		stat := prune.StatFor(l)
		type ch struct {
			idx int
			g   float64
		}
		chans := make([]ch, l.OutC)
		for i := 0; i < l.OutC; i++ {
			chans[i] = ch{i, math.Abs(float64(bn.Gamma[i]))}
		}
		sort.Slice(chans, func(i, j int) bool { return chans[i].g < chans[j].g })
		remove := int(n.ChannelFrac * float64(l.OutC))
		inPerGroup := l.InC / l.Group
		ks := l.KH * l.KW
		for i := 0; i < remove; i++ {
			oc := chans[i].idx
			base := oc * inPerGroup * ks
			for j := 0; j < inPerGroup*ks; j++ {
				l.Weight.Data[base+j] = 0
			}
			bn.Gamma[oc] = 0
			bn.Beta[oc] = 0
			stat.RemovedChannels++
			stat.RemovedFilters++
		}
		stat.Finish(l)
		res.Layers = append(res.Layers, stat)
	}
	res.Duration = time.Since(start)
	res.FillParams(m)
	return res, nil
}

// ---------------------------------------------------------------------
// Pruning Filters (PF)

// PruningFilters is the PF baseline: filters (output channels) with the
// smallest L1 weight sums are zeroed per layer.
type PruningFilters struct {
	// FilterFrac is the fraction of filters removed per layer
	// (default 0.4).
	FilterFrac float64
}

// NewPruningFilters returns PF with defaults.
func NewPruningFilters() *PruningFilters { return &PruningFilters{FilterFrac: 0.4} }

// Name implements prune.Pruner.
func (p *PruningFilters) Name() string { return "Pruning Filters (PF)" }

// Prune implements prune.Pruner.
func (p *PruningFilters) Prune(m *nn.Model) (*prune.Result, error) {
	start := time.Now()
	res := &prune.Result{Framework: p.Name(), Model: m.Name, Structure: prune.Filter}
	for _, l := range nn.PrunableConvs(m) {
		stat := prune.StatFor(l)
		pruneFilters(l, p.FilterFrac, &stat)
		stat.Finish(l)
		res.Layers = append(res.Layers, stat)
	}
	res.Duration = time.Since(start)
	res.FillParams(m)
	return res, nil
}

// pruneFilters zeroes the frac lowest-L1 filters of a conv layer.
func pruneFilters(l *nn.Layer, frac float64, stat *prune.LayerStat) {
	inPerGroup := l.InC / l.Group
	ks := l.KH * l.KW
	per := inPerGroup * ks
	type flt struct {
		idx int
		l1  float64
	}
	filters := make([]flt, l.OutC)
	for oc := 0; oc < l.OutC; oc++ {
		s := 0.0
		for j := 0; j < per; j++ {
			v := float64(l.Weight.Data[oc*per+j])
			if v < 0 {
				v = -v
			}
			s += v
		}
		filters[oc] = flt{oc, s}
	}
	sort.Slice(filters, func(i, j int) bool { return filters[i].l1 < filters[j].l1 })
	remove := int(frac * float64(l.OutC))
	for i := 0; i < remove; i++ {
		base := filters[i].idx * per
		for j := 0; j < per; j++ {
			l.Weight.Data[base+j] = 0
		}
		stat.RemovedFilters++
	}
}

// ---------------------------------------------------------------------
// Neural Pruning (NP)

// NeuralPruning is the NP baseline (growing regularisation): moderate
// L2-driven filter pruning combined with L1 unstructured pruning of the
// surviving weights.
type NeuralPruning struct {
	// FilterFrac is the fraction of filters removed per layer
	// (default 0.25).
	FilterFrac float64
	// WeightSparsity is the unstructured sparsity applied to surviving
	// weights per layer (default 0.35).
	WeightSparsity float64
}

// NewNeuralPruning returns NP with defaults.
func NewNeuralPruning() *NeuralPruning {
	return &NeuralPruning{FilterFrac: 0.25, WeightSparsity: 0.35}
}

// Name implements prune.Pruner.
func (n *NeuralPruning) Name() string { return "Neural Pruning (NP)" }

// Prune implements prune.Pruner.
func (n *NeuralPruning) Prune(m *nn.Model) (*prune.Result, error) {
	start := time.Now()
	res := &prune.Result{Framework: n.Name(), Model: m.Name, Structure: prune.Mixed}
	for _, l := range nn.PrunableConvs(m) {
		stat := prune.StatFor(l)
		pruneFilters(l, n.FilterFrac, &stat)
		// Unstructured pass over survivors (per-layer threshold).
		var alive []float32
		for _, v := range l.Weight.Data {
			if v != 0 {
				a := v
				if a < 0 {
					a = -a
				}
				alive = append(alive, a)
			}
		}
		if len(alive) > 0 {
			sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })
			cut := int(n.WeightSparsity * float64(len(alive)))
			if cut >= len(alive) {
				cut = len(alive) - 1
			}
			threshold := alive[cut]
			for i, v := range l.Weight.Data {
				a := v
				if a < 0 {
					a = -a
				}
				if a != 0 && a < threshold {
					l.Weight.Data[i] = 0
				}
			}
		}
		stat.Finish(l)
		res.Layers = append(res.Layers, stat)
	}
	res.Duration = time.Since(start)
	res.FillParams(m)
	return res, nil
}

// ---------------------------------------------------------------------

// All returns the five baselines with published defaults, in the
// paper's figure order (PD, NMS, NS, PF, NP).
func All() []prune.Pruner {
	return []prune.Pruner{
		NewPatDNN(),
		NewSparseML(),
		NewNetworkSlimming(),
		NewPruningFilters(),
		NewNeuralPruning(),
	}
}
