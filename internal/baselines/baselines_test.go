package baselines

import (
	"math"
	"testing"

	"rtoss/internal/models"
	"rtoss/internal/nn"
	"rtoss/internal/prune"
)

func tiny(t testing.TB) *nn.Model {
	t.Helper()
	b := nn.NewBuilder("tiny", 3, 16, 16, 2)
	x := b.Input()
	x = b.ConvBNAct("c1", x, 3, 16, 3, 1, 1, nn.SiLU)
	x = b.ConvBNAct("c2", x, 16, 16, 3, 1, 1, nn.SiLU)
	x = b.ConvBNAct("p1", x, 16, 32, 1, 1, 0, nn.SiLU)
	b.Detect("out", x)
	m := b.MustBuild()
	m.InitWeights(7)
	return m
}

func TestAllHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if seen[p.Name()] {
			t.Fatalf("duplicate name %q", p.Name())
		}
		seen[p.Name()] = true
	}
	if len(seen) != 5 {
		t.Fatalf("want 5 baselines, got %d", len(seen))
	}
}

func TestPatDNNLeavesOneByOneDense(t *testing.T) {
	m := tiny(t)
	res, err := NewPatDNN().Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range m.ConvLayers() {
		if l.Is1x1() && l.Weight.Sparsity() > 0 {
			t.Fatalf("PatDNN pruned 1x1 layer %s — it must not", l.Name)
		}
	}
	if res.Structure != prune.Pattern {
		t.Fatal("PatDNN should report pattern structure")
	}
}

func TestPatDNNConnectivityRemovesKernels(t *testing.T) {
	m := tiny(t)
	res, err := NewPatDNN().Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	var removed int64
	for _, st := range res.Layers {
		removed += st.RemovedKernels
	}
	if removed == 0 {
		t.Fatal("connectivity pruning removed no kernels")
	}
	// 30% of kernels per 3x3 layer.
	l := m.ConvLayers()[0] // c1: 16*3 = 48 kernels
	wantRemoved := 14      // floor(0.3 * 48)
	zeroKernels := 0
	for oc := 0; oc < l.OutC; oc++ {
		for ic := 0; ic < l.InC; ic++ {
			allZero := true
			for _, v := range l.Kernel(oc, ic) {
				if v != 0 {
					allZero = false
				}
			}
			if allZero {
				zeroKernels++
			}
		}
	}
	if zeroKernels < wantRemoved {
		t.Fatalf("zero kernels %d < expected %d", zeroKernels, wantRemoved)
	}
}

func TestPatDNN4EPKernels(t *testing.T) {
	m := tiny(t)
	if _, err := NewPatDNN().Prune(m); err != nil {
		t.Fatal(err)
	}
	l := m.ConvLayers()[0]
	for oc := 0; oc < l.OutC; oc++ {
		for ic := 0; ic < l.InC; ic++ {
			nnz := 0
			for _, v := range l.Kernel(oc, ic) {
				if v != 0 {
					nnz++
				}
			}
			if nnz != 0 && nnz > 4 {
				t.Fatalf("4EP kernel has %d non-zeros", nnz)
			}
		}
	}
}

func TestSparseMLHitsTargetSparsity(t *testing.T) {
	m := tiny(t)
	s := NewSparseML()
	res, err := s.Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Sparsity()-s.TargetSparsity) > 0.02 {
		t.Fatalf("sparsity %.3f want ~%.2f", res.Sparsity(), s.TargetSparsity)
	}
	if res.Structure != prune.Unstructured {
		t.Fatal("NMS should report unstructured")
	}
}

func TestSparseMLKeepsLargestWeights(t *testing.T) {
	m := tiny(t)
	orig := m.Clone()
	if _, err := NewSparseML().Prune(m); err != nil {
		t.Fatal(err)
	}
	// Every surviving weight must be >= every pruned weight (global
	// threshold property).
	var maxPruned, minKept float64 = 0, math.Inf(1)
	for li, l := range m.ConvLayers() {
		if l.NoPrune {
			continue
		}
		ol := orig.ConvLayers()[li]
		for i, v := range l.Weight.Data {
			a := math.Abs(float64(ol.Weight.Data[i]))
			if v == 0 && ol.Weight.Data[i] != 0 {
				if a > maxPruned {
					maxPruned = a
				}
			} else if v != 0 {
				if a < minKept {
					minKept = a
				}
			}
		}
	}
	if maxPruned > minKept {
		t.Fatalf("pruned |w|=%v exceeds kept |w|=%v", maxPruned, minKept)
	}
}

func TestNetworkSlimmingZeroesBNAndFilters(t *testing.T) {
	m := tiny(t)
	res, err := NewNetworkSlimming().Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, st := range res.Layers {
		removed += st.RemovedChannels
	}
	if removed == 0 {
		t.Fatal("NS removed no channels")
	}
	// BN gammas of removed channels must be zero, and the producing
	// filter rows must be zero.
	for _, l := range m.Layers {
		if l.Kind != nn.BatchNorm {
			continue
		}
		conv := m.Layers[l.Inputs[0]]
		if conv.Kind != nn.Conv {
			continue
		}
		for c := range l.Gamma {
			if l.Gamma[c] == 0 {
				per := (conv.InC / conv.Group) * conv.KH * conv.KW
				for j := 0; j < per; j++ {
					if conv.Weight.Data[c*per+j] != 0 {
						t.Fatalf("channel %d zero gamma but filter alive", c)
					}
				}
			}
		}
	}
}

func TestPruningFiltersRemovesLowestL1(t *testing.T) {
	m := tiny(t)
	orig := m.Clone()
	p := NewPruningFilters()
	res, err := p.Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Structure != prune.Filter {
		t.Fatal("PF should report filter structure")
	}
	// For the first layer, verify the removed filters are exactly the
	// lowest-L1 ones.
	l, ol := m.ConvLayers()[0], orig.ConvLayers()[0]
	per := l.InC * l.KH * l.KW
	type f struct {
		idx  int
		l1   float64
		dead bool
	}
	fs := make([]f, l.OutC)
	for oc := 0; oc < l.OutC; oc++ {
		s := 0.0
		dead := true
		for j := 0; j < per; j++ {
			s += math.Abs(float64(ol.Weight.Data[oc*per+j]))
			if l.Weight.Data[oc*per+j] != 0 {
				dead = false
			}
		}
		fs[oc] = f{oc, s, dead}
	}
	deadCount := 0
	var maxDeadL1, minAliveL1 float64 = 0, math.Inf(1)
	for _, x := range fs {
		if x.dead {
			deadCount++
			if x.l1 > maxDeadL1 {
				maxDeadL1 = x.l1
			}
		} else if x.l1 < minAliveL1 {
			minAliveL1 = x.l1
		}
	}
	if deadCount != int(p.FilterFrac*float64(l.OutC)) {
		t.Fatalf("dead filters %d want %d", deadCount, int(p.FilterFrac*float64(l.OutC)))
	}
	if maxDeadL1 > minAliveL1 {
		t.Fatalf("removed filter with L1 %v while keeping %v", maxDeadL1, minAliveL1)
	}
}

func TestNeuralPruningCombinesBoth(t *testing.T) {
	m := tiny(t)
	n := NewNeuralPruning()
	res, err := n.Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Structure != prune.Mixed {
		t.Fatal("NP should report mixed structure")
	}
	var filters int
	for _, st := range res.Layers {
		filters += st.RemovedFilters
	}
	if filters == 0 {
		t.Fatal("NP removed no filters")
	}
	// Sparsity beyond filter fraction alone proves the unstructured pass ran.
	if res.Sparsity() <= n.FilterFrac+0.01 {
		t.Fatalf("NP sparsity %.3f should exceed filter fraction %.2f", res.Sparsity(), n.FilterFrac)
	}
}

func TestBaselinesRespectNoPrune(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full baseline sweep in -short mode")
	}
	m := models.RetinaNet(models.KITTIClasses)
	for _, p := range All() {
		mm := m.Clone()
		if _, err := p.Prune(mm); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for _, l := range mm.Layers {
			if l.Kind == nn.Conv && l.NoPrune && l.Weight.Sparsity() > 0 {
				t.Fatalf("%s pruned NoPrune layer %s", p.Name(), l.Name)
			}
		}
	}
}

func TestBaselineSparsityOrderOnYOLOv5s(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full baseline sweep in -short mode")
	}
	// NMS (global 70% unstructured) must induce more sparsity than the
	// structured baselines at their defaults; all must be below
	// R-TOSS-2EP's 7/9 on prunable weights (Fig 4's shape).
	sparsities := map[string]float64{}
	for _, p := range All() {
		m := models.YOLOv5s(models.KITTIClasses)
		res, err := p.Prune(m)
		if err != nil {
			t.Fatal(err)
		}
		sparsities[p.Name()] = res.Sparsity()
	}
	if sparsities["SparseML (NMS)"] <= sparsities["Network Slimming (NS)"] {
		t.Errorf("NMS should be sparser than NS: %v", sparsities)
	}
	for name, s := range sparsities {
		if s <= 0 || s >= 7.0/9.0+0.01 {
			t.Errorf("%s sparsity %.3f out of expected band", name, s)
		}
	}
}

func BenchmarkPatDNNYOLOv5s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := models.YOLOv5s(models.KITTIClasses)
		b.StartTimer()
		if _, err := NewPatDNN().Prune(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseMLYOLOv5s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := models.YOLOv5s(models.KITTIClasses)
		b.StartTimer()
		if _, err := NewSparseML().Prune(m); err != nil {
			b.Fatal(err)
		}
	}
}
