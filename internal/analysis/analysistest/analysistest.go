// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against expectations written in the fixtures —
// the same workflow as golang.org/x/tools/go/analysis/analysistest,
// reimplemented on the project's dependency-free framework.
//
// Fixtures live in GOPATH-style layout under the test's
// testdata/src/<path>/ directory. A line expecting a diagnostic ends
// with a comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// Every reported diagnostic must match a want pattern on its line and
// every want pattern must be matched, so fixtures pin both that
// violations are caught and that clean idioms stay clean.
// //rtoss:allow suppression comments are honoured, which lets a
// fixture also pin the escape hatch's behaviour.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rtoss/internal/analysis"
	"rtoss/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory (the conventional fixture root).
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return abs
}

// Run loads each named package from testdata/src, applies the analyzer
// and compares its findings against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := load.Tree(filepath.Join(testdata, "src"), paths)
	if err != nil {
		t.Fatalf("analysistest: loading fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		checkWants(t, pkg, findings)
	}
}

// want is one expectation: a position and the pattern a diagnostic on
// that line must match.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\b(.*)$`)

func checkWants(t *testing.T, pkg *load.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}

// splitQuoted extracts the patterns of a want comment tail: a
// sequence of double-quoted (escapes honoured) or backquoted (raw)
// strings.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexAny(s, "\"`")
		if i < 0 {
			return out
		}
		quote := s[i]
		s = s[i+1:]
		j := -1
		for k := 0; k < len(s); k++ {
			if quote == '"' && s[k] == '\\' {
				k++
				continue
			}
			if s[k] == quote {
				j = k
				break
			}
		}
		if j < 0 {
			return out
		}
		pat := s[:j]
		if quote == '"' {
			if unq, err := strconv.Unquote(`"` + pat + `"`); err == nil {
				pat = unq
			}
		}
		out = append(out, pat)
		s = s[j+1:]
	}
}
