package lockdiscipline_test

import (
	"testing"

	"rtoss/internal/analysis/analysistest"
	"rtoss/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockdiscipline.Analyzer, "srv")
}
