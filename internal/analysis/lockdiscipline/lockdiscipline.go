// Package lockdiscipline implements the rtoss-vet analyzer guarding
// the serving stack's concurrency conventions. It makes two checks:
//
//  1. Lock-held blocking: while a sync.Mutex or sync.RWMutex is held
//     (between Lock/RLock and the matching Unlock in the same
//     function), channel sends and receives, selects without a
//     default case, WaitGroup.Wait and time.Sleep are flagged — a
//     blocking operation under a lock turns the micro-batching
//     queue's backpressure into lock convoy or deadlock. The one
//     sanctioned exception (serve.submit's send under the close
//     read-lock) carries an explicit //rtoss:allow lockdiscipline.
//
//  2. Atomic/plain mixing: a struct field or variable that is
//     accessed through sync/atomic anywhere in the package (the
//     Stats counters) must be accessed that way everywhere —
//     a plain read or write of the same field elsewhere is a data
//     race the race detector only catches if a test happens to
//     exercise both sites concurrently. Declarations and
//     initializations before sharing are exempt.
//
// Both checks are function-local / package-local approximations; they
// trade completeness for zero false positives on the shapes the
// codebase actually uses, with //rtoss:allow as the escape hatch.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rtoss/internal/analysis"
)

// Analyzer is the lock/atomic discipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "flags blocking operations under sync locks and mixed atomic/plain access to the same field",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkLockHeld(pass, fn)
			}
		}
	}
	checkAtomicMixing(pass)
	return nil, nil
}

// --- check 1: blocking operations while a lock is held ---

// lockState maps a lock expression (printed form, e.g. "s.mu") to
// whether the hold is exclusive (Lock) or shared (RLock).
type lockState map[string]bool

func (ls lockState) clone() lockState {
	c := make(lockState, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

func (ls lockState) names() string {
	var keys []string
	for k := range ls {
		keys = append(keys, k)
	}
	// Deterministic order for stable diagnostics.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return strings.Join(keys, ", ")
}

func checkLockHeld(pass *analysis.Pass, fn *ast.FuncDecl) {
	walkStmts(pass, fn.Body.List, lockState{})
}

// walkStmts scans a statement list linearly, tracking lock
// acquisitions and releases, and checks every other statement for
// blocking operations while any lock is held. Branch bodies get a
// copy of the current state (a release inside a branch is assumed to
// be paired with an exit from the enclosing flow, the codebase's
// early-return idiom).
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, held lockState) {
	for _, stmt := range stmts {
		walkStmt(pass, stmt, held)
	}
}

func walkStmt(pass *analysis.Pass, stmt ast.Stmt, held lockState) {
	info := pass.TypesInfo
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, name, ok := syncMethod(info, call); ok {
				switch name {
				case "Lock":
					held[recv] = true
					return
				case "RLock":
					held[recv] = false
					return
				case "Unlock", "RUnlock":
					delete(held, recv)
					return
				}
			}
		}
		checkBlocking(pass, s, held)
	case *ast.DeferStmt:
		// Deferred Unlock keeps the lock held to function exit as far
		// as this linear scan is concerned; deferred anything else is
		// not a blocking point at this statement.
		return
	case *ast.BlockStmt:
		walkStmts(pass, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		checkBlockingExpr(pass, s.Cond, held)
		walkStmts(pass, s.Body.List, held.clone())
		if s.Else != nil {
			walkStmt(pass, s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			checkBlockingExpr(pass, s.Cond, held)
		}
		walkStmts(pass, s.Body.List, held.clone())
	case *ast.RangeStmt:
		checkBlockingExpr(pass, s.X, held)
		walkStmts(pass, s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if s.Tag != nil {
			checkBlockingExpr(pass, s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !hasDefault(s) {
			pass.Reportf(s.Pos(), "blocking select while holding %s", held.names())
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				// The comm op itself is non-blocking inside a select
				// with default (and already reported above without
				// one); only the clause bodies need scanning.
				walkStmts(pass, cc.Body, held.clone())
			}
		}
	case *ast.LabeledStmt:
		walkStmt(pass, s.Stmt, held)
	default:
		checkBlocking(pass, stmt, held)
	}
}

// checkBlocking scans one non-control-flow statement for blocking
// operations performed while a lock is held.
func checkBlocking(pass *analysis.Pass, stmt ast.Stmt, held lockState) {
	if len(held) == 0 {
		return
	}
	info := pass.TypesInfo
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body runs later, under its own discipline
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while holding %s", held.names())
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while holding %s", held.names())
			}
		case *ast.CallExpr:
			if recv, name, ok := syncMethod(info, n); ok && name == "Wait" {
				pass.Reportf(n.Pos(), "%s.Wait while holding %s", recv, held.names())
			}
			if isTimeSleep(info, n) {
				pass.Reportf(n.Pos(), "time.Sleep while holding %s", held.names())
			}
		}
		return true
	})
}

func checkBlockingExpr(pass *analysis.Pass, expr ast.Expr, held lockState) {
	if expr == nil || len(held) == 0 {
		return
	}
	checkBlocking(pass, &ast.ExprStmt{X: expr}, held)
}

// syncMethod matches method calls on sync.Mutex, sync.RWMutex,
// sync.WaitGroup and sync.Cond (directly or via pointer/embedding) and
// returns the receiver's printed expression and the method name.
func syncMethod(info *types.Info, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, isSelection := info.Selections[sel]
	if !isSelection || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	mobj := selection.Obj()
	if mobj.Pkg() == nil || mobj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func isTimeSleep(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// --- check 2: mixed atomic / plain access ---

func checkAtomicMixing(pass *analysis.Pass) {
	info := pass.TypesInfo
	// Pass 1: every variable (field or otherwise) whose address is
	// taken as the first argument of a sync/atomic call.
	atomicVars := map[types.Object]ast.Node{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := addressedVar(info, addr.X); obj != nil {
				atomicVars[obj] = call
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}
	// Pass 2: plain uses of those variables.
	for _, file := range pass.Files {
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			var obj types.Object
			var pos token.Pos
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					obj = sel.Obj()
					pos = n.Pos()
				}
			case *ast.Ident:
				// Skip the .Sel of a selector (reported at the
				// SelectorExpr) so each access is flagged once.
				if len(stack) > 0 {
					if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
						return true
					}
				}
				obj = info.Uses[n]
				pos = n.Pos()
			}
			if obj == nil || atomicVars[obj] == nil {
				return true
			}
			if plainUseExempt(info, n, stack) {
				return true
			}
			pass.Reportf(pos, "plain access to %s, which is accessed atomically elsewhere in the package", obj.Name())
			return true
		})
	}
}

// plainUseExempt reports whether this occurrence of an atomically-
// accessed variable is fine: it is the operand of an & passed (perhaps
// through a helper) onward, part of its own declaration, or the inner
// part of a selector already being reported.
func plainUseExempt(info *types.Info, n ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.SelectorExpr, *ast.ParenExpr:
			continue // x in x.f, or parens
		case *ast.UnaryExpr:
			// &x.f: address taken — either for an atomic call or to
			// hand to a helper that does the atomics (atomicMax).
			return p.Op == token.AND
		case *ast.ValueSpec, *ast.Field, *ast.CompositeLit:
			return true // declaration or initialization
		case *ast.AssignStmt:
			return p.Tok == token.DEFINE
		default:
			return false
		}
	}
	return false
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// addressedVar resolves &expr's operand to a variable object: a struct
// field selector or a plain identifier.
func addressedVar(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.Ident:
		return info.Uses[e]
	}
	return nil
}
