// Package srv exercises the lockdiscipline analyzer: blocking
// operations while a sync lock is held, and plain access to fields
// that are accessed atomically elsewhere in the package.
package srv

import (
	"sync"
	"sync/atomic"
	"time"
)

type server struct {
	mu    sync.Mutex
	close sync.RWMutex
	wg    sync.WaitGroup
	queue chan int
}

func sendUnderLock(s *server, v int) {
	s.mu.Lock()
	s.queue <- v // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

func recvUnderDefer(s *server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.queue // want `channel receive while holding s\.mu`
}

func selectUnderLock(s *server, done chan struct{}) {
	s.mu.Lock()
	select { // want `blocking select while holding s\.mu`
	case s.queue <- 1:
	case <-done:
	}
	s.mu.Unlock()
}

func waitUnderLock(s *server) {
	s.mu.Lock()
	s.wg.Wait() // want `s\.wg\.Wait while holding s\.mu`
	s.mu.Unlock()
}

func sleepUnderLock(s *server) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.mu`
	s.mu.Unlock()
}

// unlockThenSend pins the release tracking: after Unlock the send is
// clean.
func unlockThenSend(s *server, v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.queue <- v
}

// nonBlockingSelect pins that a select with a default case is a
// sanctioned try-send under a lock.
func nonBlockingSelect(s *server, v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.queue <- v:
		return true
	default:
		return false
	}
}

// allowSend pins the escape hatch used by serve.submit: a send under
// the close read-lock, by design, with an explicit allow.
func allowSend(s *server, v int) {
	s.close.RLock()
	s.queue <- v //rtoss:allow lockdiscipline (send is fenced by the close lock by design)
	s.close.RUnlock()
}

type stats struct {
	hits uint64
	cold int
}

func (st *stats) inc() {
	atomic.AddUint64(&st.hits, 1)
}

func (st *stats) snapshot() uint64 {
	return atomic.LoadUint64(&st.hits)
}

func (st *stats) racyRead() uint64 {
	return st.hits // want `plain access to hits`
}

func (st *stats) racyWrite() {
	st.hits = 0 // want `plain access to hits`
}

// helperAddress pins the atomicMax idiom: taking the address to hand
// to an atomic helper is not a plain access.
func helperAddress(st *stats) *uint64 {
	return &st.hits
}

// coldField pins that fields never touched atomically are free.
func coldField(st *stats) int {
	st.cold++
	return st.cold
}
