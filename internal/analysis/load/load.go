// Package load type-checks Go packages for the analysis framework
// without golang.org/x/tools/go/packages: package metadata comes from
// `go list -export -deps -json` (which also yields gc export data for
// every dependency out of the toolchain's build cache, so dependencies
// are imported in compiled form instead of re-type-checked from
// source), and the target packages themselves are parsed and checked
// with the standard library's go/parser and go/types.
//
// Two entry points cover the two consumers: Module loads pattern-
// matched packages of the enclosing module (the rtoss-vet standalone
// driver), and Tree loads GOPATH-style fixture packages rooted at a
// testdata/src directory (the analysistest harness), resolving fixture-
// local imports from source and everything else through the toolchain.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one parsed, type-checked package.
type Package struct {
	// Path is the package's import path (for Tree-loaded fixture
	// packages, the path relative to the source root).
	Path string
	// Dir is the directory holding the package's source files.
	Dir string
	// Fset positions every file in the load session.
	Fset *token.FileSet
	// Files are the parsed source files (comments retained).
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the slice of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// goList runs `go list -export -deps -json` on args in dir and decodes
// the package stream.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-deps", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// newInfo returns a types.Info recording everything the analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// parseDir parses the named files of one package directory.
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// exportImporter satisfies types.Importer over a map of import path ->
// gc export data file, with "unsafe" special-cased. The underlying gc
// importer caches, so shared dependencies are read once per session.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	e := &exportImporter{exports: exports}
	e.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := e.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}

// check type-checks one package's parsed files.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", "amd64"),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

// Module loads the packages matching the go patterns (e.g. "./...")
// relative to dir, which must lie inside a module. Matched packages
// are parsed and type-checked from source; their dependencies are
// imported from toolchain export data.
func Module(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	goVersion := ""
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		files, err := parseDir(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := check(p.ImportPath, fset, files, imp, goVersion)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}

// treeImporter resolves import paths that exist as directories under
// the source root from source (memoized, so fixture packages can
// import each other), and everything else through export data.
type treeImporter struct {
	root    string
	fset    *token.FileSet
	ext     *exportImporter
	srcPkgs map[string]*Package
	loading map[string]bool
}

func (ti *treeImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ti.srcPkgs[path]; ok {
		return pkg.Types, nil
	}
	dir := filepath.Join(ti.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := ti.loadSource(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ti.ext.Import(path)
}

func (ti *treeImporter) loadSource(path, dir string) (*Package, error) {
	if ti.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	ti.loading[path] = true
	defer delete(ti.loading, path)
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	files, err := parseDir(ti.fset, dir, names)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := check(path, ti.fset, files, ti, "")
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: ti.fset, Files: files, Types: tpkg, Info: info}
	ti.srcPkgs[path] = pkg
	return pkg, nil
}

// goFileNames lists the non-test .go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" || len(name) > 8 && name[len(name)-8:] == "_test.go" {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return names, nil
}

// Tree loads the named packages from a GOPATH-style source root
// (testdata/src): each path maps to root/<path>. Imports that resolve
// to directories under root load from source; all other imports are
// resolved through one `go list -export` call against the enclosing
// module/toolchain.
func Tree(root string, paths []string) ([]*Package, error) {
	fset := token.NewFileSet()
	// Discover the external (non-tree) imports up front so one go list
	// call covers them all, then let the tree importer do the rest.
	ext, err := externalImports(root, paths)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(ext) > 0 {
		listed, err := goList("", ext)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	ti := &treeImporter{
		root:    root,
		fset:    fset,
		ext:     newExportImporter(fset, exports),
		srcPkgs: map[string]*Package{},
		loading: map[string]bool{},
	}
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		dir := filepath.Join(root, filepath.FromSlash(path))
		pkg, ok := ti.srcPkgs[path]
		if !ok {
			pkg, err = ti.loadSource(path, dir)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, pkg)
	}
	return out, nil
}

// externalImports walks the tree packages reachable from paths and
// returns the sorted set of imports that do not resolve inside root.
func externalImports(root string, paths []string) ([]string, error) {
	seen := map[string]bool{}
	external := map[string]bool{}
	fset := token.NewFileSet()
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		dir := filepath.Join(root, filepath.FromSlash(path))
		names, err := goFileNames(dir)
		if err != nil {
			return err
		}
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, spec := range f.Imports {
				imp, err := strconv.Unquote(spec.Path.Value)
				if err != nil || imp == "unsafe" {
					continue
				}
				if st, err := os.Stat(filepath.Join(root, filepath.FromSlash(imp))); err == nil && st.IsDir() {
					if err := visit(imp); err != nil {
						return err
					}
				} else {
					external[imp] = true
				}
			}
		}
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	out := make([]string, 0, len(external))
	for imp := range external {
		out = append(out, imp)
	}
	sort.Strings(out)
	return out, nil
}
