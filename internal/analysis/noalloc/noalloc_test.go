package noalloc_test

import (
	"testing"

	"rtoss/internal/analysis/analysistest"
	"rtoss/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noalloc.Analyzer, "a")
}
