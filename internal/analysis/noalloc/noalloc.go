// Package noalloc implements the rtoss-vet analyzer enforcing
// //rtoss:noalloc: functions so annotated (the postprocess hot path,
// the serve stats recorders, the arena-backed kernels) must not
// contain allocation-inducing constructs. It flags make/new, slice and
// map literals, heap-escaping &composite literals, appends to slices
// that cannot carry spare capacity, fmt/errors calls, string
// concatenation and string<->[]byte conversions, interface boxing of
// non-pointer values, escaping closures, method values and go
// statements. Deliberate exceptions (amortized pool growth, cold
// error paths) carry a //rtoss:allow noalloc comment.
//
// The check is syntactic + type-informed, not an escape analysis: it
// cannot see allocations inside callees, and it flags constructs the
// compiler might occasionally optimize away. That asymmetry is the
// point — the annotated functions are the ones where "might allocate"
// already needs a written justification.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"rtoss/internal/analysis"
)

// Analyzer is the //rtoss:noalloc enforcement pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flags allocating constructs inside //rtoss:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, fn := range analysis.MarkedFuncs(pass.Files, "noalloc") {
		if fn.Body == nil {
			continue
		}
		checkFunc(pass, fn)
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	sig := funcSig(info, fn)
	analysis.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates in //rtoss:noalloc function %s", fn.Name.Name)
		case *ast.FuncLit:
			if !immediatelyInvoked(n, stack) {
				pass.Reportf(n.Pos(), "func literal may allocate a closure in //rtoss:noalloc function %s", fn.Name.Name)
			}
			return false // don't descend: the closure body is not this function's hot path
		case *ast.CompositeLit:
			t := typeOf(info, n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in //rtoss:noalloc function %s", fn.Name.Name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in //rtoss:noalloc function %s", fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in //rtoss:noalloc function %s", fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(typeOf(info, n)) && info.Types[n].Value == nil {
				pass.Reportf(n.Pos(), "string concatenation allocates in //rtoss:noalloc function %s", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkCall(pass, fn, n)
		case *ast.SelectorExpr:
			// A method value (x.M referenced, not called) allocates a
			// bound-method closure.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !isCallFun(n, stack) {
				pass.Reportf(n.Pos(), "method value allocates a closure in //rtoss:noalloc function %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			checkAssignBoxing(pass, fn, n)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fn, sig, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in //rtoss:noalloc function %s", fn.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in //rtoss:noalloc function %s", fn.Name.Name)
			case "append":
				if len(call.Args) > 0 && freshSlice(info, call.Args[0]) {
					pass.Reportf(call.Pos(), "append to a capacity-free fresh slice allocates in //rtoss:noalloc function %s", fn.Name.Name)
				}
			}
			return
		}
	}
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, fn, call, tv.Type)
		return
	}
	// Denylisted always-allocating calls.
	if pkg, name := calleePkgFunc(info, call); pkg != "" {
		switch {
		case pkg == "fmt":
			pass.Reportf(call.Pos(), "fmt.%s allocates in //rtoss:noalloc function %s", name, fn.Name.Name)
			return
		case pkg == "errors" && name != "Is" && name != "As" && name != "Unwrap":
			pass.Reportf(call.Pos(), "errors.%s allocates in //rtoss:noalloc function %s", name, fn.Name.Name)
			return
		}
	}
	// Interface boxing of arguments.
	ft := typeOf(info, call.Fun)
	if ft == nil {
		return
	}
	sig, _ := ft.Underlying().(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		if boxes(info, arg, pt) {
			pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes (allocates) in //rtoss:noalloc function %s",
				typeOf(info, arg), fn.Name.Name)
		}
	}
}

func checkConversion(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, target types.Type) {
	info := pass.TypesInfo
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	src := typeOf(info, arg)
	switch {
	case isString(target) && (isByteSlice(src) || isRuneSlice(src)):
		pass.Reportf(call.Pos(), "[]byte/[]rune-to-string conversion allocates in //rtoss:noalloc function %s", fn.Name.Name)
	case (isByteSlice(target) || isRuneSlice(target)) && isString(src):
		pass.Reportf(call.Pos(), "string-to-slice conversion allocates in //rtoss:noalloc function %s", fn.Name.Name)
	case boxes(info, arg, target):
		pass.Reportf(call.Pos(), "conversion of %s to interface boxes (allocates) in //rtoss:noalloc function %s", src, fn.Name.Name)
	}
}

func checkAssignBoxing(pass *analysis.Pass, fn *ast.FuncDecl, n *ast.AssignStmt) {
	info := pass.TypesInfo
	if n.Tok == token.DEFINE || len(n.Lhs) != len(n.Rhs) {
		return // := infers the RHS type; multi-value RHS has no per-expr mapping
	}
	for i, lhs := range n.Lhs {
		lt := typeOf(info, lhs)
		if lt == nil {
			continue
		}
		if boxes(info, n.Rhs[i], lt) {
			pass.Reportf(n.Rhs[i].Pos(), "assigning %s to interface boxes (allocates) in //rtoss:noalloc function %s",
				typeOf(info, n.Rhs[i]), fn.Name.Name)
		}
	}
}

func checkReturnBoxing(pass *analysis.Pass, fn *ast.FuncDecl, sig *types.Signature, n *ast.ReturnStmt) {
	if sig == nil || sig.Results().Len() != len(n.Results) {
		return
	}
	for i, res := range n.Results {
		if boxes(pass.TypesInfo, res, sig.Results().At(i).Type()) {
			pass.Reportf(res.Pos(), "returning %s as interface boxes (allocates) in //rtoss:noalloc function %s",
				typeOf(pass.TypesInfo, res), fn.Name.Name)
		}
	}
}

// boxes reports whether using expr as a value of target type converts
// a concrete value into an interface in a way that allocates: the
// target is an interface, the value's type is concrete, and its
// representation does not already fit the interface data word
// (pointers, channels, maps and funcs do; constants are materialized
// in static data by the compiler).
func boxes(info *types.Info, expr ast.Expr, target types.Type) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false // untracked, or a constant (interned statically)
	}
	src := tv.Type
	if src == types.Typ[types.UntypedNil] || types.IsInterface(src) {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // fits the interface word directly
	}
	return true
}

// freshSlice reports whether expr is a slice expression that cannot
// carry spare capacity: untyped nil, a []T(nil) conversion, or an
// empty slice literal. Appending to it is guaranteed to allocate.
func freshSlice(info *types.Info, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if tv, ok := info.Types[expr]; ok && tv.Type == types.Typ[types.UntypedNil] {
		return true
	}
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name == "nil" && info.Uses[e] == types.Universe.Lookup("nil")
	case *ast.CompositeLit:
		if t := typeOf(info, e); t != nil {
			if _, ok := t.Underlying().(*types.Slice); ok {
				return len(e.Elts) == 0
			}
		}
	case *ast.CallExpr:
		// []T(nil) conversion.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return freshSlice(info, e.Args[0])
		}
	}
	return false
}

func immediatelyInvoked(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == lit
}

func isCallFun(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == sel
}

func funcSig(info *types.Info, fn *ast.FuncDecl) *types.Signature {
	if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkg, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path(), sel.Sel.Name
		}
	}
	return "", ""
}

func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if ellipsis {
			if i == n-1 {
				return sig.Params().At(n - 1).Type()
			}
			return nil
		}
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool { return isSliceOf(t, types.Byte) }
func isRuneSlice(t types.Type) bool { return isSliceOf(t, types.Rune) }

func isSliceOf(t types.Type, kind types.BasicKind) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}
