// Package a exercises the noalloc analyzer: each annotated function
// demonstrates one allocating construct the analyzer must catch, and
// clean/allowGrow pin the idioms that must stay unflagged.
package a

import (
	"errors"
	"fmt"
)

type box struct{ x1, y1, x2, y2 float64 }

type det struct {
	b     box
	class int
	score float64
}

func (d det) get() float64 { return d.score }

func sink(v any) { _ = v }

func helper() {}

// clean is the sanctioned hot-path idiom set: self-append into a
// capacity-retaining buffer, value struct literals, slicing,
// arithmetic, calls with concrete arguments.
//
//rtoss:noalloc
func clean(dst []det, src []det, k int) []det {
	for i := range src {
		if src[i].score > 0.5 {
			dst = append(dst, det{b: box{0, 0, 1, 1}, class: i, score: src[i].score})
		}
	}
	_ = src[:k]
	return dst
}

// iife is fine: an immediately-invoked literal is not a retained
// closure.
//
//rtoss:noalloc
func iife() int {
	return func() int { return 1 }()
}

//rtoss:noalloc
func makes(n int) []int {
	s := make([]int, n) // want `make allocates`
	return s
}

//rtoss:noalloc
func news() *det {
	return new(det) // want `new allocates`
}

//rtoss:noalloc
func sliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

//rtoss:noalloc
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates`
}

//rtoss:noalloc
func heapLit() *det {
	return &det{} // want `&composite literal allocates`
}

//rtoss:noalloc
func freshAppend(d det) []det {
	return append([]det(nil), d) // want `append to a capacity-free fresh slice allocates`
}

//rtoss:noalloc
func fmtCall(err error) error {
	return fmt.Errorf("wrap: %w", err) // want `fmt.Errorf allocates`
}

//rtoss:noalloc
func errCall(msg string) error {
	return errors.New(msg) // want `errors.New allocates`
}

//rtoss:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//rtoss:noalloc
func toBytes(s string) []byte {
	return []byte(s) // want `string-to-slice conversion allocates`
}

//rtoss:noalloc
func boxArg(v int) {
	sink(v) // want `passing int to interface parameter boxes`
}

//rtoss:noalloc
func boxAssign(v int) {
	var i any
	i = v // want `assigning int to interface boxes`
	_ = i
}

//rtoss:noalloc
func closure(xs []int) func() int {
	n := 0
	f := func() int { // want `func literal may allocate a closure`
		n += len(xs)
		return n
	}
	return f
}

//rtoss:noalloc
func goStmt() {
	go helper() // want `go statement allocates`
}

//rtoss:noalloc
func methodValue(d det) func() float64 {
	return d.get // want `method value allocates a closure`
}

// allowGrow pins the escape hatch: amortized pool growth carries an
// explicit //rtoss:allow and stays unflagged.
//
//rtoss:noalloc
func allowGrow(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //rtoss:allow noalloc (amortized grow)
	}
	return buf[:n]
}

// unannotated may allocate freely.
func unannotated() []int {
	return append([]int(nil), make([]int, 4)...)
}
