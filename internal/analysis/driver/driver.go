// Package driver is the multichecker executable logic behind
// cmd/rtoss-vet. It supports two invocation modes:
//
//   - standalone: `rtoss-vet [packages]` loads the pattern-matched
//     packages of the enclosing module (default "./...") and reports
//     findings, exiting 1 if there are any;
//   - vettool: `go vet -vettool=/path/to/rtoss-vet ./...` — the driver
//     speaks cmd/go's vet tool protocol (-V=full version fingerprint
//     for the build cache, -flags discovery, and per-package .cfg
//     analysis units), so runs are incremental: go vet re-analyzes
//     only packages whose inputs changed, exactly like the built-in
//     vet suite.
package driver

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"rtoss/internal/analysis"
	"rtoss/internal/analysis/load"
)

// Main runs the multichecker over the given analyzers and returns the
// process exit code: 0 clean, 1 findings or usage error (standalone),
// 2 findings (vettool protocol, matching x/tools' unitchecker).
func Main(analyzers ...*analysis.Analyzer) int {
	args := os.Args[1:]
	if len(args) > 0 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return 0
		case args[0] == "-flags":
			// No analyzer flags: report an empty set to cmd/go.
			fmt.Println("[]")
			return 0
		case args[0] == "-help" || args[0] == "--help" || args[0] == "help":
			printHelp(analyzers)
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return unitcheck(args[0], analyzers)
		case strings.HasPrefix(args[0], "-"):
			fmt.Fprintf(os.Stderr, "rtoss-vet: unknown flag %q\n\n", args[0])
			printHelp(analyzers)
			return 1
		}
	}
	return standalone(args, analyzers)
}

func printHelp(analyzers []*analysis.Analyzer) {
	fmt.Println("rtoss-vet enforces the repository's hot-path invariants as static checks.")
	fmt.Println()
	fmt.Println("Usage: rtoss-vet [package patterns]        (default ./...)")
	fmt.Println("       go vet -vettool=$(which rtoss-vet) [packages]")
	fmt.Println()
	fmt.Println("Analyzers:")
	for _, a := range analyzers {
		fmt.Printf("  %-15s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
	}
	fmt.Println()
	fmt.Println("Suppress one finding with a '//rtoss:allow <analyzer>' comment on, or")
	fmt.Println("immediately above, the offending line.")
}

// printVersion answers cmd/go's -V=full probe. The output doubles as
// the tool's build-cache fingerprint, so it hashes the executable:
// rebuilding rtoss-vet (new or changed analyzers) invalidates go vet's
// cached results, while an unchanged binary keeps them warm.
func printVersion() {
	progname, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("rtoss-vet version devel buildID=%02x\n", h.Sum(nil))
}

func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Module(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtoss-vet: %v\n", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtoss-vet: %v\n", err)
			return 1
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "rtoss-vet: %d finding(s)\n", found)
		return 1
	}
	return 0
}
